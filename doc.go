// Package dfcheck reproduces "Testing Static Analyses for Precision and
// Soundness" (Taneja, Liu, Regehr; CGO 2020): solver-based algorithms that
// compute sound and maximally precise dataflow facts, used as a test
// oracle against a port of LLVM's static analyses.
//
// The public surface lives in the command-line tools (cmd/...) and the
// examples (examples/...); the library packages are under internal/. See
// README.md for the architecture and EXPERIMENTS.md for the
// paper-versus-measured record.
package dfcheck
