// Modernization tells the paper's §4.8 story: imprecisions the oracle
// surfaces become compiler patches. Every §4.2–4.5 fragment runs against
// two compilers — the LLVM-8-era port and the same port with the
// post-LLVM-8 improvements applied — and the example shows which
// imprecisions each fixes and which require relational reasoning no
// per-value dataflow analysis can provide.
//
//	go run ./examples/modernization
package main

import (
	"fmt"

	"dfcheck/internal/compare"
	"dfcheck/internal/core"
	"dfcheck/internal/harvest"
)

func main() {
	fixed, remaining := 0, 0
	for _, fr := range harvest.PaperFragments {
		f := fr.TestF()
		classic := outcomeFor(core.Check(f, core.Options{}), fr.Analysis)
		modern := outcomeFor(core.Check(f, core.Options{Modern: true}), fr.Analysis)

		// Compare printed facts rather than outcomes: a range query may
		// legitimately report resource exhaustion while both facts match.
		status := "still imprecise (needs relational reasoning)"
		switch {
		case classic.LLVMFact == classic.OracleFact:
			status = "already precise"
		case modern.LLVMFact == classic.OracleFact:
			status = "FIXED by the modern compiler"
			fixed++
		default:
			remaining++
		}
		fmt.Printf("§%-6s %-24s %-14s llvm8=%-12s modern=%-12s oracle=%-12s %s\n",
			fr.Section, fr.Name, fr.Analysis,
			classic.LLVMFact, modern.LLVMFact, classic.OracleFact, status)
	}
	fmt.Printf("\n%d of the paper's imprecision examples are fixed by the post-LLVM-8\n", fixed)
	fmt.Printf("improvements; %d require correlation between values, which single-value\n", remaining)
	fmt.Println("dataflow facts cannot express (the oracle proves them via the solver).")
}

func outcomeFor(results []compare.Result, a harvest.Analysis) compare.Result {
	for _, r := range results {
		if r.Analysis == a {
			return r
		}
	}
	panic("no result for analysis " + string(a))
}
