// Imprecisions walks every code fragment from the paper's §4.2–4.5 — the
// LLVM imprecision examples — and reproduces both sides of each one: the
// maximally precise fact from the solver-based oracle and the imprecise
// fact from the LLVM-port analyses, checked against the values the paper
// prints.
//
//	go run ./examples/imprecisions
package main

import (
	"fmt"
	"os"

	"dfcheck/internal/compare"
	"dfcheck/internal/core"
	"dfcheck/internal/harvest"
)

func main() {
	mismatches := 0
	for _, fr := range harvest.PaperFragments {
		fmt.Printf("=== §%s %s (%s) ===\n", fr.Section, fr.Name, fr.Analysis)
		f := fr.TestF()
		fmt.Print(f)

		results := core.Check(f, core.Options{})
		for _, r := range results {
			if r.Analysis != fr.Analysis {
				continue
			}
			fmt.Printf("Precise %s: %s\n", r.Analysis, r.OracleFact)
			fmt.Printf("LLVM    %s: %s\n", r.Analysis, r.LLVMFact)
			okOracle := factMatches(r.OracleFact, fr.Precise)
			okLLVM := factMatches(r.LLVMFact, fr.LLVM)
			switch {
			case r.Outcome == compare.ResourceExhausted:
				fmt.Println("-> resource exhaustion (sound, possibly imprecise)")
			case okOracle && okLLVM:
				fmt.Println("-> matches the paper's report")
			default:
				fmt.Printf("-> MISMATCH: paper says precise=%s llvm=%s\n", fr.Precise, fr.LLVM)
				mismatches++
			}
		}
		fmt.Println()
	}
	if mismatches > 0 {
		fmt.Fprintf(os.Stderr, "%d fragments deviate from the paper\n", mismatches)
		os.Exit(1)
	}
	fmt.Println("All fragments reproduce the paper's reported facts.")
}

// factMatches maps the paper's yes/no notation onto the tool's booleans.
func factMatches(got, paper string) bool {
	switch paper {
	case "yes":
		return got == "true"
	case "no":
		return got == "false"
	}
	return got == paper
}
