// Optimize demonstrates §4.6 on a single kernel: the same program is
// optimized twice — once with the stock (LLVM-port) dataflow facts and
// once with the maximally precise oracle facts — and the example prints
// both residual programs, their cycle costs under the two machine models,
// and the compile-time price of precision.
//
//	go run ./examples/optimize
package main

import (
	"fmt"
	"log"
	"time"

	"dfcheck/internal/opt"
)

func main() {
	// The bzip2-compress kernel: the one the paper found the largest win
	// on, because its bit-twiddling contains patterns only the precise
	// known-bits facts can fold (§4.2.1).
	k := opt.Kernels[0]
	f := k.F()
	fmt.Printf("kernel %q (%d instructions):\n%s\n", k.Name, f.NumInsts(), f)

	t0 := time.Now()
	base := opt.Optimize(f, opt.NewBaselineSource(f))
	baseTime := time.Since(t0)

	f2 := k.F()
	t0 = time.Now()
	precise := opt.Optimize(f2, opt.NewOracleSource(f2, 0))
	preciseTime := time.Since(t0)

	fmt.Printf("baseline-optimized (%d instructions, compiled in %v):\n%s\n",
		base.NumInsts(), baseTime.Round(time.Microsecond), base)
	fmt.Printf("precise-optimized (%d instructions, compiled in %v — the \"very slow\" compiler of §4.6):\n%s\n",
		precise.NumInsts(), preciseTime.Round(time.Millisecond), precise)

	envs := k.Workload(1000)
	for _, m := range []opt.Machine{opt.AMD(), opt.Intel()} {
		bc, bOut, err := m.RunWorkload(base, envs)
		if err != nil {
			log.Fatal(err)
		}
		pc, pOut, err := m.RunWorkload(precise, envs)
		if err != nil {
			log.Fatal(err)
		}
		for i := range bOut {
			if bOut[i] != pOut[i] {
				log.Fatalf("optimized programs disagree on input %d", i)
			}
		}
		fmt.Printf("%-6s baseline %7d cycles, precise %7d cycles: %+.2f%% speedup\n",
			m.Name, bc, pc, 100*(float64(bc)-float64(pc))/float64(pc))
	}
}
