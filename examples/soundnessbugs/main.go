// Soundnessbugs walks the paper's §4.7: three historical LLVM soundness
// bugs are re-introduced into the compiler under test one at a time, and
// the comparator catches each one because the buggy compiler claims a
// fact that is "more precise" than the maximally precise oracle result —
// an impossibility for a sound analysis.
//
//	go run ./examples/soundnessbugs
package main

import (
	"fmt"
	"os"

	"dfcheck/internal/compare"
	"dfcheck/internal/core"
	"dfcheck/internal/harvest"
	"dfcheck/internal/ir"
	"dfcheck/internal/llvmport"
)

func main() {
	ok := true
	for _, tr := range harvest.SoundnessTriggers {
		var bugs llvmport.BugConfig
		var desc string
		switch tr.Bug {
		case 1:
			bugs.NonZeroAdd = true
			desc = "isKnownNonZero believes a sum of two non-negative values is non-zero\n" +
				"(introduced in r124183, fixed in r124184 and r124188)"
		case 2:
			bugs.SRemSignBits = true
			desc = "ComputeNumSignBits over-counts for srem with a non-power-of-two constant\n" +
				"(the miscompilation of PR23011, fixed in r233225)"
		case 3:
			bugs.SRemKnownBits = true
			desc = "computeKnownBits copies the dividend's trailing zeros through srem\n" +
				"(the wrong-code bug of PR12541, fixed in r155818)"
		}
		fmt.Printf("=== Soundness bug %d ===\n%s\n\n", tr.Bug, desc)
		f := ir.MustParse(tr.Source)
		fmt.Print(f)

		results := core.Check(f, core.Options{Bugs: bugs})
		for _, r := range results {
			if r.Analysis != tr.Analysis {
				continue
			}
			fmt.Printf("\n%s from our tool: %s\n", r.Analysis, r.OracleFact)
			fmt.Printf("%s from llvm: %s\n", r.Analysis, r.LLVMFact)
			if r.Outcome == compare.LLVMMorePrecise {
				fmt.Println("llvm is stronger   <- the impossible outcome that signals a soundness bug")
			} else {
				fmt.Printf("unexpected outcome: %s\n", r.Outcome)
				ok = false
			}
		}
		fmt.Println()
	}
	if !ok {
		os.Exit(1)
	}
}
