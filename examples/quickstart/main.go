// Quickstart: parse one expression, compute the compiler-under-test's
// dataflow facts and the solver-based maximally precise facts, and print
// the comparison — the paper's Figure 1 pipeline in a dozen lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dfcheck/internal/core"
)

func main() {
	// The first example of the paper's §4.2.1: the constant 32 shifted
	// left by an unknown amount. Its three trailing zeros can never be
	// destroyed, yet LLVM 8's known-bits analysis returns "nothing known".
	src := `
		%x:i8 = var
		%0:i8 = shl 32:i8, %x
		infer %0
	`
	results, err := core.CheckSource(src, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	f, _ := core.ParseAuto(src)
	fmt.Println("expression under test:")
	fmt.Println(f)
	fmt.Println("comparison of the compiler's facts against the maximally precise oracle:")
	fmt.Println()
	for _, r := range results {
		name := string(r.Analysis)
		if r.Var != "" {
			name += " of %" + r.Var
		}
		fmt.Printf("  %-22s oracle=%-12s llvm=%-12s -> %s\n",
			name, r.OracleFact, r.LLVMFact, r.Outcome)
	}
}
