# The DESIGN §8 quality gate, runnable as one target. `make check` is
# what CI (and pre-commit) should run.

GO ?= go

.PHONY: check fmt vet build test race race-all bench bench-json

# The packages with real concurrency: the comparator worker pool, the
# engine's cross-goroutine cancellation, the campaign loop, the metrics
# instruments, and the cache. The full suite under the race detector is
# the race-all target; it takes many minutes.
RACE_PKGS = ./internal/compare ./internal/solver ./internal/sat \
            ./internal/campaign ./internal/metrics ./internal/rescache \
            ./internal/trace

check: fmt vet build race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

race-all:
	$(GO) test -race ./...

bench:
	$(GO) test -run NONE -bench . -benchmem ./...

# Record the root-package benchmarks (Table 1 timings, solver counters,
# ablations) as a JSON artifact. EXPERIMENTS.md explains how to compare a
# "current" section against the committed pre-optimization "baseline".
BENCH_OUT ?= BENCH_3.json
BENCH_AS  ?= current
bench-json:
	$(GO) test -run NONE -bench 'BenchmarkTable1|BenchmarkAblation' -benchmem . \
		| $(GO) run ./cmd/bench-json -out $(BENCH_OUT) -as $(BENCH_AS)
