# The DESIGN §9 quality gate, runnable as one target. `make check` is
# what CI (and pre-commit) should run.

GO ?= go

.PHONY: check fmt vet lint build test race race-all bench bench-json dash-smoke

# The packages with real concurrency: the comparator worker pool (which
# now also runs the consistency lint and the n-way cross-check), the
# absint verifier worker pool (which sweeps the tnum and stride transfer
# suites), the engine's cross-goroutine cancellation, the SAT portfolio's
# racing clones, the bit-sliced evaluator both pools share, the campaign
# loop, the metrics instruments, the sharded cache, the fact service
# (single-flight + dispatcher), and the n-way/reducer packages the worker
# pool calls into. The full suite under the race detector is the race-all
# target; it takes many minutes.
RACE_PKGS = ./internal/compare ./internal/solver ./internal/sat \
            ./internal/campaign ./internal/metrics ./internal/rescache \
            ./internal/trace ./internal/absint ./internal/eval \
            ./internal/nway ./internal/reduce ./internal/factsvc \
            ./internal/ops ./internal/tnum ./internal/stride

check: fmt lint build race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# lint = vet + staticcheck. staticcheck is an external tool; when it is
# not on PATH (e.g. a hermetic build container) the step degrades to vet
# with a notice rather than failing — CI installs it and gets the full
# check.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

race-all:
	$(GO) test -race ./...

bench:
	$(GO) test -run NONE -bench . -benchmem ./...

# Record the root-package benchmarks (Table 1 timings, solver counters,
# ablations, fact-service core) as a JSON artifact. EXPERIMENTS.md
# explains how to compare a "current" section against the committed
# pre-optimization "baseline".
BENCH_OUT ?= BENCH_3.json
BENCH_AS  ?= current
bench-json:
	$(GO) test -run NONE -bench 'BenchmarkTable1|BenchmarkAblation|BenchmarkRescache|BenchmarkFactService' -benchmem . \
		| $(GO) run ./cmd/bench-json -out $(BENCH_OUT) -as $(BENCH_AS)

# Build serve mode, hit every ops endpoint, and check the readiness flip
# during the SIGINT drain window — the same sequence CI runs.
DASH_PORT ?= 18129
dash-smoke:
	$(GO) build -o /tmp/dfcheck-fuzz-smoke ./cmd/dfcheck-fuzz
	@/tmp/dfcheck-fuzz-smoke -serve -http 127.0.0.1:$(DASH_PORT) -drain 2s & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		curl -sf http://127.0.0.1:$(DASH_PORT)/readyz >/dev/null && break; sleep 0.2; \
	done; \
	curl -sf http://127.0.0.1:$(DASH_PORT)/healthz >/dev/null || { echo "healthz FAILED"; exit 1; }; \
	curl -sf http://127.0.0.1:$(DASH_PORT)/metricsz | grep -q '^# TYPE ' || { echo "metricsz FAILED"; exit 1; }; \
	curl -sf http://127.0.0.1:$(DASH_PORT)/dashboardz | grep -q '<!doctype html>' || { echo "dashboardz FAILED"; exit 1; }; \
	curl -sf -X POST http://127.0.0.1:$(DASH_PORT)/v1/facts \
		-d '{"exprs":["%x:i8 = var\n%0:i8 = add 1:i8, %x\ninfer %0"]}' | grep -q '"facts"' || { echo "facts FAILED"; exit 1; }; \
	kill -INT $$pid; sleep 0.5; \
	code=$$(curl -s -o /dev/null -w '%{http_code}' http://127.0.0.1:$(DASH_PORT)/readyz); \
	[ "$$code" = 503 ] || { echo "readyz during drain = $$code, want 503"; exit 1; }; \
	wait $$pid; \
	echo "dash-smoke PASSED"
