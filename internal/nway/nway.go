// Package nway implements N-way differential testing of the analyzer
// implementations (Klinger et al., "Differentially Testing Soundness and
// Precision of Program Analyzers"): every registered variant computes its
// dataflow facts for the same expression, the facts are cross-checked
// pairwise per domain using the internal/absint lattice ordering, and
// only expressions on which some pair disagrees need the SAT oracle at
// all. Agreement is the overwhelmingly common case, so the pairwise check
// is a cheap pre-filter in front of the solver; facts with an empty
// intersection — or a claim strictly stronger than exhaustively computed
// exact facts — are soundness findings in their own right, established
// without a single solver query.
//
// Three implementations exist per Table 1 domain: the LLVM-8 port under
// test (possibly bug-injected), the trusted Modern analyzer, and the
// absint-derived best transformers (exact facts by bit-sliced input
// enumeration on small input spaces, per-instruction best transfer
// functions under an enumeration budget above them). The self-contained
// transfer domains (tnum, stride) add a fourth variant: their abstract
// interpreters claim facts in those domains only, cross-checked against
// the exact variant's α of the achievable value set.
package nway

import (
	"fmt"
	"sort"

	"dfcheck/internal/absint"
	"dfcheck/internal/apint"
	"dfcheck/internal/constrange"
	"dfcheck/internal/eval"
	"dfcheck/internal/harvest"
	"dfcheck/internal/ir"
	"dfcheck/internal/knownbits"
	"dfcheck/internal/llvmport"
	"dfcheck/internal/stride"
	"dfcheck/internal/tnum"
)

// Facts is one variant's view of an expression's root value across the
// forward domains of Table 1 (demanded bits is a backward analysis with a
// single implementation and is not cross-checked).
type Facts struct {
	Known knownbits.Bits
	Sign  uint
	Range constrange.Range

	NonZero, Negative, NonNegative, PowerOfTwo bool

	// Tnum and Stride are the transfer-domain facts, claimed only when
	// HasTnum/HasStride is set: most variants implement neither domain.
	// Their cross-check is contradiction-only — the oracle has no tnum or
	// stride implementation, so a mere precision gap escalates nothing.
	Tnum      tnum.T
	Stride    stride.S
	HasTnum   bool
	HasStride bool

	// Exact marks facts obtained by exhaustive enumeration of the input
	// space: the maximally precise sound facts. Any strictly stronger
	// claim by another variant is then a contradiction, not extra
	// precision — including a false predicate, which under Exact is a
	// refutation rather than a failure to prove.
	Exact bool

	// AbstainKnown/AbstainSign/AbstainRange mark domains the variant
	// makes no claim about (the best-transformer variant falls back to
	// top under its enumeration budget). An abstained domain neither
	// agrees nor disagrees, so a budget fallback never forces an oracle
	// escalation the way a genuine top claim from a real analyzer does.
	AbstainKnown, AbstainSign, AbstainRange bool

	// PredsPartial marks predicate values where false means "no claim"
	// rather than "refuted": the non-exact best variant only derives
	// positive predicate facts, so its false values are skipped.
	PredsPartial bool

	// Dead is set when the variant proved the expression has no
	// well-defined input; every fact about it is then vacuous and the
	// expression is not cross-checked.
	Dead bool
}

// Variant is one registered analyzer implementation.
type Variant struct {
	Name  string
	Facts func(f *ir.Function) Facts
}

// Variants returns the implementations cross-checked in n-way mode: the
// analyzer under test, the trusted Modern analyzer (skipped when it is
// the analyzer under test), the absint-derived best transformers, and
// the transfer-domain interpreter (tnum and stride facts only).
func Variants(under *llvmport.Analyzer) []Variant {
	var u llvmport.Analyzer
	if under != nil {
		u = *under
	}
	vs := []Variant{{Name: "under-test", Facts: analyzerFacts(u)}}
	if trusted := (llvmport.Analyzer{Modern: true}); u != trusted {
		vs = append(vs, Variant{Name: "modern", Facts: analyzerFacts(trusted)})
	}
	return append(vs,
		Variant{Name: "absint-best", Facts: Best{}.Facts},
		Variant{Name: "domain-interp", Facts: DomainInterp{}.Facts})
}

// DomainInterp is the transfer-domain variant: it abstract-interprets
// the expression under the self-contained tnum and stride suites
// (possibly bug-seeded, for testing the tester) and claims facts in
// those two domains only. Every Table 1 domain is abstained from, so
// the variant adds reduced-product coverage without ever forcing an
// oracle escalation by itself.
type DomainInterp struct {
	Tnum   tnum.Analysis
	Stride stride.Analysis
}

// Facts interprets f and reports the root's tnum and stride elements. A
// bottom root means the interpreter proved no execution of f is
// well-defined, which makes every fact vacuous — the expression is
// flagged dead, like the exact variant does on an empty image.
func (di DomainInterp) Facts(f *ir.Function) Facts {
	t := di.Tnum.Analyze(f)[f.Root]
	s := di.Stride.Analyze(f)[f.Root]
	if t.IsBottom() || s.Empty {
		return Facts{Dead: true}
	}
	return Facts{
		Tnum:         t,
		Stride:       s,
		HasTnum:      true,
		HasStride:    true,
		Sign:         1,
		AbstainKnown: true,
		AbstainSign:  true,
		AbstainRange: true,
		PredsPartial: true,
	}
}

func analyzerFacts(an llvmport.Analyzer) func(*ir.Function) Facts {
	return func(f *ir.Function) Facts {
		fa := an.Analyze(f)
		return Facts{
			Known:       fa.KnownBits(),
			Sign:        fa.NumSignBits(),
			Range:       fa.Range(),
			NonZero:     fa.NonZero(),
			Negative:    fa.Negative(),
			NonNegative: fa.NonNegative(),
			PowerOfTwo:  fa.PowerOfTwo(),
		}
	}
}

// Contradiction is a pair of claims that cannot both be sound: their
// concretizations have an empty intersection, or one is strictly more
// precise than exhaustively computed exact facts. At least one of the two
// variants has an unsound transfer function (on a live expression).
type Contradiction struct {
	Analysis     harvest.Analysis
	A, B         string // variant names
	AFact, BFact string
}

// Comparison is the pairwise cross-check of all variants' facts for one
// expression.
type Comparison struct {
	// Checks counts the per-domain pairwise comparisons performed;
	// Disagreements counts those whose facts were not equivalent.
	Checks        int
	Disagreements int
	// Contradictions are disagreements no pair of sound analyzers could
	// produce (see Contradiction).
	Contradictions []Contradiction
	// Dead is set when a variant proved the expression has no
	// well-defined input: nothing is cross-checked, and there is nothing
	// for the oracle to decide either.
	Dead bool
}

// Escalate reports whether the expression needs the oracle: some pair of
// variants disagreed, so at least one of them is imprecise or unsound and
// only the maximally precise oracle can tell which.
func (c Comparison) Escalate() bool { return c.Disagreements > 0 }

// Compare evaluates every variant on f and cross-checks the resulting
// facts pairwise per domain.
func Compare(f *ir.Function, variants []Variant) Comparison {
	fs := make([]Facts, len(variants))
	for i, v := range variants {
		fs[i] = v.Facts(f)
		if fs[i].Dead {
			return Comparison{Dead: true}
		}
	}
	var cmp Comparison
	for i := range fs {
		for j := i + 1; j < len(fs); j++ {
			cmp.comparePair(variants[i].Name, fs[i], variants[j].Name, fs[j])
		}
	}
	return cmp
}

// comparePair cross-checks one pair of fact sets domain by domain.
func (c *Comparison) comparePair(na string, a Facts, nb string, b Facts) {
	w := a.Known.Width()
	contradict := func(an harvest.Analysis, fa, fb string) {
		c.Contradictions = append(c.Contradictions, Contradiction{
			Analysis: an, A: na, B: nb, AFact: fa, BFact: fb})
	}

	if !a.AbstainKnown && !b.AbstainKnown {
		c.Checks++
		ka, kb := a.Known, b.Known
		switch {
		case ka.Eq(kb):
		default:
			c.Disagreements++
			// An exact fact set is at least as precise as (and consistent
			// with) every sound claim; a bare conflict between two
			// non-exact claims is equally fatal.
			switch {
			case ka.Meet(kb).HasConflict(),
				a.Exact && !ka.AtLeastAsPreciseAs(kb),
				b.Exact && !kb.AtLeastAsPreciseAs(ka):
				contradict(harvest.KnownBits, ka.String(), kb.String())
			}
		}
	}

	if !a.AbstainSign && !b.AbstainSign {
		c.Checks++
		if a.Sign != b.Sign {
			c.Disagreements++
			if (a.Exact && b.Sign > a.Sign) || (b.Exact && a.Sign > b.Sign) {
				contradict(harvest.SignBits, fmt.Sprint(a.Sign), fmt.Sprint(b.Sign))
			}
		}
	}

	if !a.AbstainRange && !b.AbstainRange {
		c.Checks++
		ra, rb := a.Range, b.Range
		switch {
		case ra.Eq(rb):
		case ra.Intersect(rb).IsEmpty(),
			a.Exact && rb.SizeLT(ra), // smaller than the minimal cover
			b.Exact && ra.SizeLT(rb):
			c.Disagreements++
			contradict(harvest.IntegerRange, ra.String(), rb.String())
		case !ra.SizeLT(rb) && !rb.SizeLT(ra):
			// Equal-size different sets are both minimal covers of some
			// value set — the same equivalence compareRange uses.
		default:
			c.Disagreements++
		}
	}

	// The transfer domains are contradiction-only: there is no oracle to
	// escalate a precision gap to, so differing-but-compatible claims
	// neither agree nor disagree. A disjoint meet is fatal outright, and
	// so is any claim the exact α is not below — the domains are Moore
	// families (meets are exact), so α of the achievable set is below
	// every sound claim.
	if a.HasTnum && b.HasTnum {
		c.Checks++
		ta, tb := a.Tnum, b.Tnum
		switch {
		case ta.Eq(tb):
		case ta.Intersect(tb).IsBottom(),
			a.Exact && !ta.Leq(tb),
			b.Exact && !tb.Leq(ta):
			c.Disagreements++
			contradict(harvest.Tnum, ta.String(), tb.String())
		}
	}
	if a.HasStride && b.HasStride {
		c.Checks++
		sa, sb := a.Stride, b.Stride
		switch {
		case sa.Eq(sb):
		case sa.Meet(sb).Empty,
			a.Exact && !sa.Leq(sb),
			b.Exact && !sb.Leq(sa):
			c.Disagreements++
			contradict(harvest.Stride, sa.String(), sb.String())
		}
	}

	preds := [4]struct {
		an     harvest.Analysis
		av, bv bool
	}{
		{harvest.NonZero, a.NonZero, b.NonZero},
		{harvest.Negative, a.Negative, b.Negative},
		{harvest.NonNegative, a.NonNegative, b.NonNegative},
		{harvest.PowerOfTwo, a.PowerOfTwo, b.PowerOfTwo},
	}
	for _, p := range preds {
		if (a.PredsPartial && !p.av) || (b.PredsPartial && !p.bv) {
			continue // an unproved predicate from a partial variant claims nothing
		}
		c.Checks++
		if p.av == p.bv {
			continue
		}
		c.Disagreements++
		if (a.Exact && !p.av) || (b.Exact && !p.bv) {
			contradict(p.an, fmt.Sprint(p.av), fmt.Sprint(p.bv))
		}
	}
	_ = w
}

// DefaultExactBits is the summed input width at or below which the best
// variant enumerates the whole input space (bit-sliced, 64 lanes at a
// time) and reports exact facts. It matches solver.DefaultEnumCutoff.
const DefaultExactBits = 14

// DefaultOpBudget caps the operand-tuple enumeration per instruction for
// the per-instruction best transformers used above DefaultExactBits.
const DefaultOpBudget = 4096

// Best is the absint-derived best-transformer variant: exact facts by
// exhaustive enumeration when the input space is small, per-instruction
// best abstract transformers (α ∘ op ∘ γ, computed by enumeration under
// OpBudget with a sound fall-back to top) otherwise.
type Best struct {
	// ExactBits overrides DefaultExactBits (0 selects the default).
	ExactBits uint
	// OpBudget overrides DefaultOpBudget (0 selects the default).
	OpBudget int
}

// Facts computes the best variant's fact set for f.
func (bst Best) Facts(f *ir.Function) Facts {
	exactBits := bst.ExactBits
	if exactBits == 0 {
		exactBits = DefaultExactBits
	}
	if eval.TotalInputBits(f) <= exactBits {
		return exactFacts(f)
	}
	budget := bst.OpBudget
	if budget == 0 {
		budget = DefaultOpBudget
	}
	return aiFacts(f, budget)
}

// exactFacts sweeps the entire input space with the bit-sliced evaluator
// and abstracts the set of achievable root values in every domain: the
// maximally precise facts, computed solver-free.
func exactFacts(f *ir.Function) Facts {
	w := f.Width()
	prog := eval.CompileSliced(f)
	total := eval.TotalInputBits(f)
	count := uint64(1) << total
	seen := make(map[uint64]struct{})
	for base := uint64(0); base < count; base += 64 {
		planes, ok := prog.EvalIndexed(base)
		lanes := uint(prog.NumLanes())
		for l := uint(0); l < lanes; l++ {
			if ok>>l&1 == 1 {
				seen[eval.Lane(planes, l)] = struct{}{}
			}
		}
	}
	if len(seen) == 0 {
		return Facts{Dead: true, Exact: true}
	}
	vals := make([]apint.Int, 0, len(seen))
	for v := range seen {
		vals = append(vals, apint.New(w, v))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].Uint64() < vals[j].Uint64() })
	return Facts{
		Known:       absint.KnownBits.Abstract(w, vals).(knownbits.Bits),
		Sign:        absint.SignBits.Abstract(w, vals).(absint.SignCount).N,
		Range:       absint.IntegerRange.Abstract(w, vals).(constrange.Range),
		NonZero:     absint.NonZero.Abstract(w, vals).(bool),
		Negative:    absint.Negative.Abstract(w, vals).(bool),
		NonNegative: absint.NonNegative.Abstract(w, vals).(bool),
		PowerOfTwo:  absint.PowerOfTwo.Abstract(w, vals).(bool),
		Tnum:        tnum.Abstract(w, vals),
		Stride:      stride.Abstract(w, vals),
		HasTnum:     true,
		HasStride:   true,
		Exact:       true,
	}
}

// aiFacts abstract-interprets the DAG with per-instruction best
// transformers in the known-bits and range domains, then derives the
// remaining facts from the root elements by sound entailment. Domains
// where nothing beyond top was established are abstained from rather
// than claimed.
func aiFacts(f *ir.Function, budget int) Facts {
	k := interpret(f, absint.KnownBits, budget)[f.Root].(knownbits.Bits)
	r := interpret(f, absint.IntegerRange, budget)[f.Root].(constrange.Range)
	if k.HasConflict() || r.IsEmpty() {
		// An empty best-transformer image over top inputs means no
		// execution of the expression is well-defined.
		return Facts{Dead: true}
	}
	w := f.Width()
	fx := Facts{
		Known:        k,
		Range:        r,
		Sign:         1,
		AbstainKnown: k.IsUnknown(),
		AbstainRange: r.IsFull(),
		AbstainSign:  true, // sign-bit γ sets are too large to enumerate
		PredsPartial: true,
	}
	nonneg := constrange.NonEmpty(apint.Zero(w), apint.MinSigned(w))
	neg := constrange.NonEmpty(apint.MinSigned(w), apint.Zero(w))
	fx.NonZero = !k.UMin().IsZero() || !r.Contains(apint.Zero(w))
	fx.Negative = k.IsNegative() || r.Intersect(nonneg).IsEmpty()
	fx.NonNegative = k.IsNonNegative() || r.Intersect(neg).IsEmpty()
	fx.PowerOfTwo = k.IsConstant() && k.Constant().PopCount() == 1
	return fx
}

// interpret runs the per-instruction best-transformer abstract
// interpretation of f in one domain, returning the element computed for
// every instruction.
func interpret(f *ir.Function, d absint.Domain, budget int) map[*ir.Inst]absint.Elem {
	elems := make(map[*ir.Inst]absint.Elem)
	isRange := d.Name() == absint.IntegerRange.Name()
	for _, n := range f.Insts() {
		switch {
		case n.IsConst():
			elems[n] = d.Abstract(n.Width, []apint.Int{n.Val})
		case n.IsVar():
			if n.HasRange && isRange {
				elems[n] = constrange.NonEmpty(n.Lo, n.Hi)
			} else {
				elems[n] = d.Top(n.Width)
			}
		default:
			elems[n] = bestTransfer(d, n, elems, budget)
		}
	}
	return elems
}

// bestTransfer computes α(op(γ(operand elements))) for one instruction by
// enumerating the operand concretizations, provided their product fits
// the budget; otherwise it soundly falls back to top. Duplicate operands
// share one enumeration variable, so x op x stays correlated. An empty
// image (every tuple hits UB/poison) is bottom: no well-defined execution
// reaches past this instruction.
func bestTransfer(d absint.Domain, n *ir.Inst, elems map[*ir.Inst]absint.Elem, budget int) absint.Elem {
	var ops []*ir.Inst
	for _, a := range n.Args {
		dup := false
		for _, o := range ops {
			dup = dup || o == a
		}
		if !dup {
			ops = append(ops, a)
		}
	}
	prod := 1
	for _, o := range ops {
		if d.IsBottom(elems[o]) {
			return d.Bottom(n.Width)
		}
		sz := gammaSize(d, elems[o])
		if sz <= 0 || prod > budget/sz {
			return d.Top(n.Width)
		}
		prod *= sz
	}

	b := ir.NewBuilder()
	vars := make([]*ir.Inst, len(ops))
	for i, o := range ops {
		vars[i] = b.Var(fmt.Sprintf("x%d", i), o.Width)
	}
	args := make([]*ir.Inst, len(n.Args))
	for i, a := range n.Args {
		for j, o := range ops {
			if o == a {
				args[i] = vars[j]
			}
		}
	}
	var root *ir.Inst
	if n.Op.IsCast() {
		root = b.BuildCast(n.Op, n.Width, args[0])
	} else {
		root = b.Build(n.Op, n.Flags, args...)
	}
	prog := eval.Compile(b.Function(root))

	env := make(eval.Env, len(vars))
	dedup := make(map[uint64]struct{})
	var outs []apint.Int
	var walk func(i int)
	walk = func(i int) {
		if i == len(ops) {
			if v, ok := prog.Eval(env); ok {
				if _, dup := dedup[v.Uint64()]; !dup {
					dedup[v.Uint64()] = struct{}{}
					outs = append(outs, v)
				}
			}
			return
		}
		forEachGamma(d, elems[ops[i]], func(v apint.Int) {
			env[vars[i]] = v
			walk(i + 1)
		})
	}
	walk(0)
	if len(outs) == 0 {
		return d.Bottom(n.Width)
	}
	sort.Slice(outs, func(i, j int) bool { return outs[i].Uint64() < outs[j].Uint64() })
	return d.Abstract(n.Width, outs)
}

// gammaSize returns |γ(e)| for the two interpreted domains, or -1 when it
// does not fit an int budget comparison.
func gammaSize(d absint.Domain, e absint.Elem) int {
	switch v := e.(type) {
	case knownbits.Bits:
		unknown := v.Width() - v.NumKnown()
		if unknown >= 31 {
			return -1
		}
		return 1 << unknown
	case constrange.Range:
		n, huge := v.Size()
		if huge || n > 1<<30 {
			return -1
		}
		return int(n)
	}
	panic(fmt.Sprintf("nway: gammaSize on unsupported domain %s", d.Name()))
}

func forEachGamma(d absint.Domain, e absint.Elem, fn func(v apint.Int)) {
	switch v := e.(type) {
	case knownbits.Bits:
		v.ForEach(func(x apint.Int) bool { fn(x); return true })
	case constrange.Range:
		v.ForEach(func(x apint.Int) bool { fn(x); return true })
	default:
		panic(fmt.Sprintf("nway: forEachGamma on unsupported domain %s", d.Name()))
	}
}
