package nway

import (
	"testing"

	"dfcheck/internal/absint"
	"dfcheck/internal/apint"
	"dfcheck/internal/constrange"
	"dfcheck/internal/eval"
	"dfcheck/internal/harvest"
	"dfcheck/internal/ir"
	"dfcheck/internal/knownbits"
	"dfcheck/internal/llvmport"
	"dfcheck/internal/stride"
	"dfcheck/internal/tnum"
)

// bruteFacts computes reference facts by scalar enumeration of the whole
// input space — the ground truth exactFacts' bit-sliced sweep must match.
func bruteFacts(t *testing.T, f *ir.Function) (Facts, bool) {
	t.Helper()
	w := f.Width()
	seen := make(map[uint64]bool)
	var vals []apint.Int
	eval.ForEachInput(f, func(env eval.Env) bool {
		if v, ok := eval.Eval(f, env); ok && !seen[v.Uint64()] {
			seen[v.Uint64()] = true
			vals = append(vals, v)
		}
		return true
	})
	if len(vals) == 0 {
		return Facts{}, false
	}
	return Facts{
		Known:       absint.KnownBits.Abstract(w, vals).(knownbits.Bits),
		Sign:        absint.SignBits.Abstract(w, vals).(absint.SignCount).N,
		Range:       absint.IntegerRange.Abstract(w, vals).(constrange.Range),
		NonZero:     absint.NonZero.Abstract(w, vals).(bool),
		Negative:    absint.Negative.Abstract(w, vals).(bool),
		NonNegative: absint.NonNegative.Abstract(w, vals).(bool),
		PowerOfTwo:  absint.PowerOfTwo.Abstract(w, vals).(bool),
		Tnum:        tnum.Abstract(w, vals),
		Stride:      stride.Abstract(w, vals),
		HasTnum:     true,
		HasStride:   true,
		Exact:       true,
	}, true
}

func TestExactFactsMatchBruteForce(t *testing.T) {
	srcs := []string{
		"%x:i4 = var\n%0:i4 = and %x, 3:i4\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = add %x, %y\ninfer %0",
		"%x:i8 = var (range=[3,10))\n%0:i8 = mul %x, 2:i8\ninfer %0",
		"%x:i5 = var\n%0:i5 = udiv %x, %x\ninfer %0", // correlated operands
		"%0:i6 = add 7:i6, 9:i6\ninfer %0",           // zero input bits
		"%x:i3 = var\n%c:i1 = eq %x, 2:i3\n%0:i3 = select %c, %x, 5:i3\ninfer %0",
	}
	for _, src := range srcs {
		f := ir.MustParse(src)
		got := (Best{}).Facts(f)
		want, live := bruteFacts(t, f)
		if !live {
			t.Fatalf("%s: reference says dead", src)
		}
		if got.Dead || !got.Exact {
			t.Fatalf("%s: got Dead=%v Exact=%v", src, got.Dead, got.Exact)
		}
		if !got.Known.Eq(want.Known) || got.Sign != want.Sign || !got.Range.Eq(want.Range) ||
			got.NonZero != want.NonZero || got.Negative != want.Negative ||
			got.NonNegative != want.NonNegative || got.PowerOfTwo != want.PowerOfTwo ||
			!got.HasTnum || !got.Tnum.Eq(want.Tnum) ||
			!got.HasStride || !got.Stride.Eq(want.Stride) {
			t.Errorf("%s:\n got  %+v\n want %+v", src, got, want)
		}
	}
}

func TestExactFactsDeadExpression(t *testing.T) {
	f := ir.MustParse("%x:i4 = var\n%0:i4 = udiv %x, 0:i4\ninfer %0")
	got := (Best{}).Facts(f)
	if !got.Dead {
		t.Fatalf("udiv by zero not flagged dead: %+v", got)
	}
}

// TestAIFactsSound drives the per-instruction best-transformer path (by
// shrinking ExactBits below the input width) and checks its claims
// against scalar enumeration.
func TestAIFactsSound(t *testing.T) {
	srcs := []string{
		"%x:i8 = var\n%0:i8 = udiv %x, 32:i8\ninfer %0",
		"%x:i8 = var (range=[3,10))\n%0:i8 = add %x, 1:i8\ninfer %0",
		"%x:i8 = var\n%y:i8 = var (range=[1,5))\n%0:i8 = urem %x, %y\ninfer %0",
		"%x:i8 = var\n%0:i8 = sub %x, %x\ninfer %0", // correlation via sharing
	}
	for _, src := range srcs {
		f := ir.MustParse(src)
		got := (Best{ExactBits: 1}).Facts(f)
		if got.Exact {
			t.Fatalf("%s: expected the AI path, got exact facts", src)
		}
		if got.Dead {
			t.Fatalf("%s: live expression flagged dead", src)
		}
		eval.ForEachInput(f, func(env eval.Env) bool {
			v, ok := eval.Eval(f, env)
			if !ok {
				return true
			}
			if !got.AbstainKnown && !got.Known.Contains(v) {
				t.Errorf("%s: known %s excludes achievable %d", src, got.Known, v.Uint64())
			}
			if !got.AbstainRange && !got.Range.Contains(v) {
				t.Errorf("%s: range %s excludes achievable %d", src, got.Range, v.Uint64())
			}
			if got.NonZero && v.IsZero() {
				t.Errorf("%s: claims non-zero but 0 achievable", src)
			}
			if got.Negative && !v.IsNegative() {
				t.Errorf("%s: claims negative but %d achievable", src, v.Uint64())
			}
			if got.NonNegative && v.IsNegative() {
				t.Errorf("%s: claims non-negative but %d achievable", src, v.Uint64())
			}
			return true
		})
	}
}

func TestAIFactsPrecision(t *testing.T) {
	// udiv %x, 32 over i8 has image [0,8): the best transformer should
	// find the range exactly even though the input space (2^8) is above
	// the forced ExactBits.
	f := ir.MustParse("%x:i8 = var\n%0:i8 = udiv %x, 32:i8\ninfer %0")
	got := (Best{ExactBits: 1}).Facts(f)
	want := constrange.NonEmpty(apint.New(8, 0), apint.New(8, 8))
	if got.AbstainRange || !got.Range.Eq(want) {
		t.Fatalf("range = %s (abstain=%v), want %s", got.Range, got.AbstainRange, want)
	}
	if !got.NonNegative {
		t.Fatalf("image [0,8) should entail non-negative")
	}
}

func TestAIFactsAbstainOverBudget(t *testing.T) {
	// Two unconstrained i32 inputs: every concretization is astronomically
	// over budget, so the best variant must abstain everywhere rather than
	// claim top — and a clean pair comparison must not escalate because
	// of it.
	f := ir.MustParse("%x:i32 = var\n%y:i32 = var\n%0:i32 = add %x, %y\ninfer %0")
	got := (Best{}).Facts(f)
	if !got.AbstainKnown || !got.AbstainRange || !got.AbstainSign || !got.PredsPartial {
		t.Fatalf("over-budget facts should abstain: %+v", got)
	}
	if got.NonZero || got.Negative || got.NonNegative || got.PowerOfTwo {
		t.Fatalf("over-budget facts should claim no predicate: %+v", got)
	}
	modern := Variant{Name: "modern", Facts: analyzerFacts(llvmport.Analyzer{Modern: true})}
	cmp := Compare(f, []Variant{modern, {Name: "best", Facts: (Best{}).Facts}})
	if cmp.Disagreements != 0 {
		t.Fatalf("abstaining variant caused %d disagreements", cmp.Disagreements)
	}
}

func TestCleanVariantsNeverContradict(t *testing.T) {
	corpus := harvest.Generate(harvest.Config{
		Seed:     7,
		NumExprs: 60,
		MaxInsts: 4,
		Widths:   []harvest.WidthWeight{{Width: 4, Weight: 2}, {Width: 8, Weight: 3}},
	})
	vs := Variants(&llvmport.Analyzer{})
	agreed := 0
	for _, e := range corpus {
		cmp := Compare(e.F, vs)
		if len(cmp.Contradictions) != 0 {
			t.Errorf("%s: clean variants contradict: %+v\n%s", e.Name, cmp.Contradictions, e.F)
		}
		if !cmp.Dead && !cmp.Escalate() {
			agreed++
		}
	}
	if agreed == 0 {
		t.Fatalf("pre-filter never agreed on %d clean expressions", len(corpus))
	}
}

func TestVariantsSkipsModernDuplicate(t *testing.T) {
	if n := len(Variants(&llvmport.Analyzer{Modern: true})); n != 3 {
		t.Fatalf("modern under test: %d variants, want 3", n)
	}
	if n := len(Variants(&llvmport.Analyzer{})); n != 4 {
		t.Fatalf("llvm8 under test: %d variants, want 4", n)
	}
}

// TestDomainInterpCrossChecked: on a small expression the exact variant
// claims tnum and stride facts, so the transfer-domain interpreter is
// genuinely cross-checked — and on a clean interpreter the exact α must
// be below the interpreted claim, never contradictory.
func TestDomainInterpCrossChecked(t *testing.T) {
	f := ir.MustParse("%x:i4 = var\n%0:i4 = shl %x, 1:i4\ninfer %0")
	di := DomainInterp{}.Facts(f)
	if !di.HasTnum || !di.HasStride {
		t.Fatalf("domain-interp claims nothing: %+v", di)
	}
	// shl by 1 makes the low bit known zero and the stride even.
	if di.Tnum.Contains(apint.New(4, 1)) {
		t.Errorf("tnum %s admits odd value after shl 1", di.Tnum)
	}
	if di.Stride.Contains(apint.New(4, 1)) {
		t.Errorf("stride %s admits odd value after shl 1", di.Stride)
	}
	cmp := Compare(f, Variants(&llvmport.Analyzer{}))
	if len(cmp.Contradictions) != 0 {
		t.Fatalf("clean transfer domains contradict: %+v", cmp.Contradictions)
	}
}

// TestDomainInterpCatchesSeededTnumBug: the seeded mask-recurrence bug
// makes the tnum multiply claim "constant 0" for x·1 at i1, which the
// exact variant's α (top) refutes — a solver-free variant contradiction
// in the tnum domain.
func TestDomainInterpCatchesSeededTnumBug(t *testing.T) {
	f := ir.MustParse("%x:i1 = var\n%0:i1 = mul %x, 1:i1\ninfer %0")
	vs := []Variant{
		{Name: "exact", Facts: (Best{}).Facts},
		{Name: "bugged-tnum", Facts: DomainInterp{Tnum: tnum.Analysis{Bugs: tnum.Bugs{MulMask: true}}}.Facts},
	}
	cmp := Compare(f, vs)
	found := false
	for _, cd := range cmp.Contradictions {
		if cd.Analysis == harvest.Tnum {
			found = true
		}
	}
	if !found {
		t.Fatalf("seeded tnum-mul bug not contradicted: %+v", cmp)
	}
	if !cmp.Escalate() {
		t.Errorf("tnum contradiction did not count as a disagreement")
	}
}

// TestSeededBugsCaught checks each §4.7 bug against its trigger: the
// exact-facts path turns bugs 1 and 3 into solver-free contradictions,
// while bug 2 (32-bit input space) must at least escalate.
func TestSeededBugsCaught(t *testing.T) {
	for _, tr := range harvest.SoundnessTriggers {
		an := &llvmport.Analyzer{}
		switch tr.Bug {
		case 1:
			an.Bugs.NonZeroAdd = true
		case 2:
			an.Bugs.SRemSignBits = true
		case 3:
			an.Bugs.SRemKnownBits = true
		}
		f := ir.MustParse(tr.Source)
		cmp := Compare(f, Variants(an))
		if cmp.Dead {
			t.Fatalf("%s: trigger flagged dead", tr.Name)
		}
		if !cmp.Escalate() {
			t.Errorf("%s: seeded bug did not escalate", tr.Name)
		}
		if tr.Bug == 2 {
			continue // 32-bit input space: disagreement only, oracle decides
		}
		found := false
		for _, c := range cmp.Contradictions {
			if c.Analysis == tr.Analysis {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no %s contradiction; got %+v", tr.Name, tr.Analysis, cmp.Contradictions)
		}
	}
}

func TestCompareEscalatesOnlyOnDisagreement(t *testing.T) {
	// Identical variants can never disagree with themselves.
	an := analyzerFacts(llvmport.Analyzer{})
	vs := []Variant{{Name: "a", Facts: an}, {Name: "b", Facts: an}}
	corpus := harvest.Generate(harvest.Config{Seed: 11, NumExprs: 20, MaxInsts: 4, Widths: []harvest.WidthWeight{{Width: 8, Weight: 1}}})
	for _, e := range corpus {
		cmp := Compare(e.F, vs)
		if cmp.Escalate() || len(cmp.Contradictions) != 0 {
			t.Fatalf("%s: identical variants disagreed: %+v", e.Name, cmp)
		}
	}
}
