package absint

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"dfcheck/internal/apint"
	"dfcheck/internal/constrange"
	"dfcheck/internal/eval"
	"dfcheck/internal/ir"
	"dfcheck/internal/knownbits"
	"dfcheck/internal/llvmport"
)

// Config controls an exhaustive transfer-function verification sweep.
type Config struct {
	// Analyzer is the compiler under test; nil means the clean LLVM-8
	// port (zero llvmport.Analyzer).
	Analyzer *llvmport.Analyzer
	// MinWidth and MaxWidth bound the operand bit widths swept
	// (defaults 1 and 4; MaxWidth is clamped to 6, the widest width the
	// concrete-image machinery supports).
	MinWidth, MaxWidth uint
	// MaxRangeWidth bounds the widths at which the integer-range domain
	// is swept; its element count grows as 4^w, so the default caps it
	// at min(4, MaxWidth).
	MaxRangeWidth uint
	// MaxTuples caps the abstract input tuples per task; ternary ops
	// blow past any budget at width 6, so operands are progressively
	// restricted to singletons plus top (and the task marked Limited)
	// until the product fits. Default 1<<22.
	MaxTuples uint64
	// Workers sizes the worker pool (default GOMAXPROCS).
	Workers int
	// Ops restricts the sweep to the given operations (nil = all).
	Ops []ir.Op
	// Domains restricts the sweep to the given input domains (nil = the
	// classic three LLVM-port fact domains: known bits, sign bits,
	// integer range). TransferDomains in the list (tnum, stride) are
	// graded through their own Transfer suites with no analyzer or
	// harness in the loop.
	Domains []Domain
	// Lint additionally runs the cross-domain consistency check
	// (CheckFacts) on every analyzed harness expression.
	Lint bool
	// Progress, when non-nil, is called after each completed task with
	// the done and total task counts. It must be safe for concurrent
	// use.
	Progress func(done, total int)
	// NoSliced builds the concrete-image tables with the scalar
	// interpreter instead of the 64-lane bit-sliced evaluator — the
	// ablation path behind domain-check's -no-sliced flag.
	NoSliced bool
}

func (cfg Config) withDefaults() Config {
	if cfg.Analyzer == nil {
		cfg.Analyzer = &llvmport.Analyzer{}
	}
	if cfg.MinWidth == 0 {
		cfg.MinWidth = 1
	}
	if cfg.MaxWidth == 0 {
		cfg.MaxWidth = 4
	}
	if cfg.MaxWidth > 6 {
		cfg.MaxWidth = 6
	}
	if cfg.MinWidth > cfg.MaxWidth {
		cfg.MinWidth = cfg.MaxWidth
	}
	if cfg.MaxRangeWidth == 0 {
		cfg.MaxRangeWidth = 4
	}
	if cfg.MaxRangeWidth > cfg.MaxWidth {
		cfg.MaxRangeWidth = cfg.MaxWidth
	}
	if cfg.MaxTuples == 0 {
		cfg.MaxTuples = 1 << 22
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Ops == nil {
		cfg.Ops = ir.AllOps()
	}
	return cfg
}

// Stat is one verification row: one op variant at one width, swept over
// one input domain and graded against one output domain.
type Stat struct {
	Op       string `json:"op"`
	Width    string `json:"width"`
	InDomain string `json:"input_domain"`
	Domain   string `json:"domain"`
	// Tuples counts graded abstract input tuples; Dead counts tuples
	// whose concrete image is empty (all inputs trigger UB), which are
	// vacuously sound and not graded for precision.
	Tuples    uint64 `json:"tuples"`
	Sound     uint64 `json:"sound"`
	Precise   uint64 `json:"precise"`
	Imprecise uint64 `json:"imprecise"`
	Unsound   uint64 `json:"unsound"`
	Dead      uint64 `json:"dead"`
	// Limited marks tasks whose tuple count hit MaxTuples, with some
	// operands restricted to singleton and top elements only.
	Limited bool `json:"limited,omitempty"`
}

// Witness is one minimal counterexample: the smallest-width abstract
// input tuple on which a transfer function was caught unsound (or, for
// Kind "inconsistent", on which two domains contradicted each other).
type Witness struct {
	Kind     string `json:"kind"` // "unsound" or "inconsistent"
	Op       string `json:"op"`
	Width    string `json:"width"`
	InDomain string `json:"input_domain"`
	Domain   string `json:"domain"`
	// Inputs holds the abstract operand facts ("const 4" for
	// singletons that were materialized as literals).
	Inputs []string `json:"inputs"`
	// Got is the analyzer's abstract output; Want is the best
	// abstraction of the concrete image (unsound witnesses only).
	Got  string `json:"got,omitempty"`
	Want string `json:"want,omitempty"`
	// ConcreteIn/ConcreteOut is a concrete evaluation that escapes the
	// claimed abstract output (unsound witnesses only).
	ConcreteIn  []string `json:"concrete_in,omitempty"`
	ConcreteOut string   `json:"concrete_out,omitempty"`
	// Detail carries the contradiction text for inconsistent witnesses.
	Detail string `json:"detail,omitempty"`
}

func (w Witness) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s at %s over %s inputs (%s)", w.Kind, w.Op, w.Width, w.InDomain,
		strings.Join(w.Inputs, "; "))
	if w.Kind == "inconsistent" {
		fmt.Fprintf(&b, ": %s", w.Detail)
		return b.String()
	}
	fmt.Fprintf(&b, ": %s claims %s, best is %s", w.Domain, w.Got, w.Want)
	if w.ConcreteOut != "" {
		fmt.Fprintf(&b, "; counterexample %s = %s", strings.Join(w.ConcreteIn, ", "), w.ConcreteOut)
	}
	return b.String()
}

// Report is the outcome of one Verify sweep.
type Report struct {
	Stats    []Stat    `json:"stats"`
	Findings []Witness `json:"findings"`
	// Tuples is the total graded tuple count, LintChecks the total
	// consistency checks performed (zero unless Config.Lint).
	Tuples     uint64 `json:"tuples"`
	LintChecks uint64 `json:"lint_checks"`
}

// Sound reports whether the sweep found no soundness or consistency
// violation.
func (r *Report) Sound() bool { return len(r.Findings) == 0 }

// variant is an op together with one legal flag subset.
type variant struct {
	op    ir.Op
	flags ir.Flags
}

func (v variant) String() string { return v.op.String() + v.flags.String() }

type task struct {
	v     variant
	w     uint // operand width (source width for casts)
	dstW  uint // result width
	inDom Domain
}

func (t task) widthLabel() string {
	if t.v.op.IsCast() {
		return fmt.Sprintf("i%d→i%d", t.w, t.dstW)
	}
	return fmt.Sprintf("i%d", t.w)
}

func (t task) operandWidths() []uint {
	switch {
	case t.v.op.IsCast():
		return []uint{t.w}
	case t.v.op == ir.OpSelect:
		return []uint{1, t.w, t.w}
	default:
		ws := make([]uint, t.v.op.Arity())
		for i := range ws {
			ws[i] = t.w
		}
		return ws
	}
}

// inElem is one abstract element of an input domain together with its
// enumerated concretization.
type inElem struct {
	e      Elem
	vals   []apint.Int
	single bool
}

// inputDomains are the default domains swept as inputs; each maps to the
// output domains its facts feed. Known-bits facts feed the known-bits,
// sign-bits and predicate transfer functions (ValueTracking derives all
// of them from known bits); range facts feed only the range analysis;
// sign-bits facts feed only ComputeNumSignBits.
var inputDomains = []Domain{KnownBits, SignBits, IntegerRange}

func (cfg Config) inputDomains() []Domain {
	if cfg.Domains != nil {
		return cfg.Domains
	}
	return inputDomains
}

func outputDomains(in Domain) []Domain {
	if _, ok := in.(TransferDomain); ok {
		// A self-contained transfer suite is graded against itself.
		return []Domain{in}
	}
	switch in {
	case KnownBits:
		return []Domain{KnownBits, SignBits, NonZero, Negative, NonNegative, PowerOfTwo}
	case SignBits:
		return []Domain{SignBits}
	default:
		return []Domain{IntegerRange}
	}
}

// widthCapped reports whether dom's element count grows too fast for
// uncapped sweeping (4^w for ranges, 2^w + 4^(w-1) for strides); these
// domains respect Config.MaxRangeWidth.
func widthCapped(dom Domain) bool {
	return dom == IntegerRange || dom == Strides
}

// Verify exhaustively checks every transfer function of cfg.Analyzer at
// widths MinWidth..MaxWidth: for every op variant and every abstract
// input tuple, the analyzer's output fact is compared against the
// enumerated concrete image — unsound if some concrete result escapes
// it, imprecise if it is strictly weaker than the image's best
// abstraction. No SAT query is issued anywhere on this path.
func Verify(cfg Config) *Report {
	cfg = cfg.withDefaults()
	tasks := buildTasks(cfg)
	elems := precomputeElems(cfg, tasks)

	outs := make([]*taskOut, len(tasks))
	var done int64
	var wg sync.WaitGroup
	ch := make(chan int)
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range ch {
				outs[ti] = runTask(cfg, tasks[ti], elems)
				if cfg.Progress != nil {
					cfg.Progress(int(atomic.AddInt64(&done, 1)), len(tasks))
				}
			}
		}()
	}
	for i := range tasks {
		ch <- i
	}
	close(ch)
	wg.Wait()

	// Merge in task order: tasks are sorted width-ascending, so the
	// first witness kept per (op, domain, kind) is a minimal one.
	rep := &Report{}
	seen := make(map[[3]string]bool)
	for _, out := range outs {
		rep.Stats = append(rep.Stats, out.stats...)
		rep.Tuples += out.tuples
		rep.LintChecks += out.lintChecks
		for _, w := range out.findings {
			key := [3]string{w.Op, w.Domain, w.Kind}
			if !seen[key] {
				seen[key] = true
				rep.Findings = append(rep.Findings, w)
			}
		}
	}
	return rep
}

func buildTasks(cfg Config) []task {
	var variants []variant
	for _, op := range cfg.Ops {
		valid := op.ValidFlags()
		for f := ir.Flags(0); f < 8; f++ {
			if f&^valid == 0 {
				variants = append(variants, variant{op, f})
			}
		}
	}
	var tasks []task
	emit := func(t task) {
		for _, dom := range cfg.inputDomains() {
			if widthCapped(dom) && maxWidth(t.w, t.dstW) > cfg.MaxRangeWidth {
				continue
			}
			t.inDom = dom
			tasks = append(tasks, t)
		}
	}
	// Outer loop over the effective width keeps the task list sorted
	// width-ascending, so merged witnesses are minimal.
	for w := cfg.MinWidth; w <= cfg.MaxWidth; w++ {
		for _, v := range variants {
			switch {
			case v.op == ir.OpBSwap && w%8 != 0:
				// bswap only exists at byte-multiple widths, so it is
				// never sweepable at the ≤6-bit widths supported here.
			case v.op.IsCast():
				// Emit the cast pairs whose larger width is w.
				for small := uint(1); small < w; small++ {
					if v.op == ir.OpTrunc {
						emit(task{v: v, w: w, dstW: small})
					} else {
						emit(task{v: v, w: small, dstW: w})
					}
				}
			case v.op.HasBoolResult():
				emit(task{v: v, w: w, dstW: 1})
			default:
				emit(task{v: v, w: w, dstW: w})
			}
		}
	}
	return tasks
}

type elemKey struct {
	dom string
	w   uint
}

func precomputeElems(cfg Config, tasks []task) map[elemKey][]inElem {
	cache := make(map[elemKey][]inElem)
	for _, t := range tasks {
		for _, w := range t.operandWidths() {
			key := elemKey{t.inDom.Name(), w}
			if _, ok := cache[key]; ok {
				continue
			}
			var list []inElem
			t.inDom.Enum(w, func(e Elem) bool {
				vals := gammaList(t.inDom, w, e)
				if len(vals) == 0 {
					return true // bottom-like elements are not inputs
				}
				list = append(list, inElem{e: e, vals: vals, single: len(vals) == 1})
				return true
			})
			cache[key] = list
		}
	}
	return cache
}

func gammaList(d Domain, w uint, e Elem) []apint.Int {
	var out []apint.Int
	for x, max := uint64(0), uint64(1)<<w; x < max; x++ {
		if v := apint.New(w, x); d.Contains(e, v) {
			out = append(out, v)
		}
	}
	return out
}

type taskOut struct {
	stats      []Stat
	findings   []Witness
	tuples     uint64
	lintChecks uint64
}

var argNames = [3]string{"a", "b", "c"}

func runTask(cfg Config, t task, elems map[elemKey][]inElem) *taskOut {
	ws := t.operandWidths()
	arity := len(ws)
	lists := make([][]inElem, arity)
	for i, w := range ws {
		lists[i] = elems[elemKey{t.inDom.Name(), w}]
	}
	// Cap the tuple count by restricting trailing operands to singleton
	// and top elements; the first operand stays fully swept the longest.
	limited := false
	for j := arity - 1; j >= 0 && tupleCount(lists) > cfg.MaxTuples; j-- {
		lists[j] = restrictList(t.inDom, ws[j], lists[j])
		limited = true
	}

	tbl := buildTable(t, ws, cfg.NoSliced)
	outDoms := outputDomains(t.inDom)
	stats := make([]Stat, len(outDoms))
	for i, d := range outDoms {
		stats[i] = Stat{Op: t.v.String(), Width: t.widthLabel(), InDomain: t.inDom.Name(),
			Domain: d.Name(), Limited: limited}
	}
	out := &taskOut{}

	// Transfer domains are graded directly: no harness, no analyzer.
	td, _ := t.inDom.(TransferDomain)
	targs := make([]Elem, arity)

	idx := make([]int, arity)
	tuple := make([]inElem, arity)
	scratch := make([]apint.Int, 0, 64)
	for {
		for i := range idx {
			tuple[i] = lists[i][idx[i]]
		}
		var f *ir.Function
		var fa *llvmport.Facts
		var tgot Elem
		if td != nil {
			for i := range tuple {
				targs[i] = tuple[i].e
			}
			tgot = td.Transfer(t.v.op, t.v.flags, t.dstW, targs)
		} else {
			var inputs map[string]llvmport.AbsInput
			f, inputs = buildHarness(t, ws, tuple)
			fa = cfg.Analyzer.AnalyzeWithInputs(f, inputs)
		}
		image := concreteImage(tbl, ws, tuple)
		scratch = scratch[:0]
		for x := uint64(0); x < uint64(1)<<t.dstW; x++ {
			if image&(1<<x) != 0 {
				scratch = append(scratch, apint.New(t.dstW, x))
			}
		}
		out.tuples++
		for i, d := range outDoms {
			st := &stats[i]
			st.Tuples++
			if len(scratch) == 0 {
				st.Dead++
				continue
			}
			got := tgot
			if td == nil {
				got = outputFact(fa, t.dstW, d)
			}
			bad, unsound := escapee(d, got, scratch)
			if unsound {
				st.Unsound++
				if !hasWitness(out, t, d) {
					out.findings = append(out.findings, unsoundWitness(t, d, tuple, got, scratch, tbl, ws, bad))
				}
				continue
			}
			st.Sound++
			if d.Eq(got, d.Abstract(t.dstW, scratch)) {
				st.Precise++
			} else {
				st.Imprecise++
			}
		}
		// Lint only live tuples: when every concrete input is poison/UB
		// (empty image) the expression has no well-defined value, so
		// mutually contradictory facts are all vacuously sound — LLVM
		// really produces such fact sets for e.g. "add nuw 1, 1".
		// Transfer-domain tasks have no analyzer facts to lint against.
		if cfg.Lint && td == nil && len(scratch) > 0 {
			incons, n := CheckFactsDomains(f, fa, cfg.extraFacts(f))
			out.lintChecks += uint64(n)
			if len(incons) > 0 && !hasLintWitness(out, t) {
				out.findings = append(out.findings, Witness{
					Kind: "inconsistent", Op: t.v.String(), Width: t.widthLabel(),
					InDomain: t.inDom.Name(), Domain: "consistency",
					Inputs: formatInputs(t, tuple), Detail: incons[0].String(),
				})
			}
		}
		if !advance(idx, lists) {
			break
		}
	}
	out.stats = stats
	return out
}

func tupleCount(lists [][]inElem) uint64 {
	n := uint64(1)
	for _, l := range lists {
		n *= uint64(len(l))
	}
	return n
}

func restrictList(d Domain, w uint, list []inElem) []inElem {
	top := d.Top(w)
	out := list[:0:0]
	for _, e := range list {
		if e.single || d.Eq(e.e, top) {
			out = append(out, e)
		}
	}
	return out
}

func advance(idx []int, lists [][]inElem) bool {
	for i := len(idx) - 1; i >= 0; i-- {
		idx[i]++
		if idx[i] < len(lists[i]) {
			return true
		}
		idx[i] = 0
	}
	return false
}

func maxWidth(a, b uint) uint {
	if a > b {
		return a
	}
	return b
}

// buildTable enumerates the op's full concrete function: operand i
// occupies the i-th group of bits (lowest first) of the table index, and
// each entry holds the result value or -1 for UB/poison. The sweep runs
// on the bit-sliced evaluator (64 table entries per evaluation) unless
// the scalar ablation path is selected; the two fill identical tables,
// which TestBuildTableSlicedMatchesScalar pins.
func buildTable(t task, ws []uint, scalar bool) []int16 {
	b := ir.NewBuilder()
	vars := make([]*ir.Inst, len(ws))
	args := make([]*ir.Inst, len(ws))
	for i, w := range ws {
		vars[i] = b.Var(argNames[i], w)
		args[i] = vars[i]
	}
	f := b.Function(buildRoot(b, t, args))
	var total uint
	for _, w := range ws {
		total += w
	}
	tbl := make([]int16, uint64(1)<<total)
	if scalar {
		prog := eval.Compile(f)
		env := make(eval.Env, len(vars))
		for i := range tbl {
			bits := uint64(i)
			for j, v := range vars {
				env[v] = apint.New(ws[j], bits)
				bits >>= ws[j]
			}
			if r, ok := prog.Eval(env); ok {
				tbl[i] = int16(r.Uint64())
			} else {
				tbl[i] = -1
			}
		}
		return tbl
	}
	prog := eval.CompileSliced(f)
	lanes := uint64(prog.NumLanes())
	for base := uint64(0); base < uint64(len(tbl)); base += 64 {
		planes, ok := prog.EvalIndexed(base)
		for l := uint64(0); l < lanes; l++ {
			if ok>>l&1 == 1 {
				tbl[base+l] = int16(eval.Lane(planes, uint(l)))
			} else {
				tbl[base+l] = -1
			}
		}
	}
	return tbl
}

func buildRoot(b *ir.Builder, t task, args []*ir.Inst) *ir.Inst {
	if t.v.op.IsCast() {
		return b.BuildCast(t.v.op, t.dstW, args[0])
	}
	return b.Build(t.v.op, t.v.flags, args...)
}

// buildHarness builds the per-tuple expression: singleton abstract
// operands become literal constants (so the syntactic special cases of
// the ported transfer functions fire, matching how a compiler would see
// them), everything else a variable with the abstract fact injected.
func buildHarness(t task, ws []uint, tuple []inElem) (*ir.Function, map[string]llvmport.AbsInput) {
	b := ir.NewBuilder()
	args := make([]*ir.Inst, len(tuple))
	var inputs map[string]llvmport.AbsInput
	for i, e := range tuple {
		if e.single {
			args[i] = b.Const(e.vals[0])
			continue
		}
		args[i] = b.Var(argNames[i], ws[i])
		in := llvmport.TopInput(ws[i])
		switch t.inDom {
		case KnownBits:
			in.Known = e.e.(knownbits.Bits)
		case IntegerRange:
			in.Range = e.e.(constrange.Range)
		case SignBits:
			in.SignBits = e.e.(SignCount).N
		}
		if inputs == nil {
			inputs = make(map[string]llvmport.AbsInput, len(tuple))
		}
		inputs[argNames[i]] = in
	}
	return b.Function(buildRoot(b, t, args)), inputs
}

func concreteImage(tbl []int16, ws []uint, tuple []inElem) uint64 {
	var image uint64
	switch len(tuple) {
	case 1:
		for _, v0 := range tuple[0].vals {
			if r := tbl[v0.Uint64()]; r >= 0 {
				image |= 1 << uint(r)
			}
		}
	case 2:
		for _, v0 := range tuple[0].vals {
			i0 := v0.Uint64()
			for _, v1 := range tuple[1].vals {
				if r := tbl[i0|v1.Uint64()<<ws[0]]; r >= 0 {
					image |= 1 << uint(r)
				}
			}
		}
	case 3:
		for _, v0 := range tuple[0].vals {
			i0 := v0.Uint64()
			for _, v1 := range tuple[1].vals {
				i1 := i0 | v1.Uint64()<<ws[0]
				for _, v2 := range tuple[2].vals {
					if r := tbl[i1|v2.Uint64()<<(ws[0]+ws[1])]; r >= 0 {
						image |= 1 << uint(r)
					}
				}
			}
		}
	}
	return image
}

func outputFact(fa *llvmport.Facts, dstW uint, d Domain) Elem {
	// Switch on the name: the predicate domains carry a func field and
	// are not comparable as interface values.
	switch d.Name() {
	case KnownBits.Name():
		return fa.KnownBits()
	case IntegerRange.Name():
		return fa.Range()
	case SignBits.Name():
		return SignCount{W: dstW, N: fa.NumSignBits()}
	case NonZero.Name():
		return fa.NonZero()
	case Negative.Name():
		return fa.Negative()
	case NonNegative.Name():
		return fa.NonNegative()
	case PowerOfTwo.Name():
		return fa.PowerOfTwo()
	}
	panic("absint: unknown output domain")
}

// escapee returns a concrete image value outside γ(got), if any.
func escapee(d Domain, got Elem, image []apint.Int) (apint.Int, bool) {
	for _, v := range image {
		if !d.Contains(got, v) {
			return v, true
		}
	}
	return apint.Int{}, false
}

func hasWitness(out *taskOut, t task, d Domain) bool {
	for _, w := range out.findings {
		if w.Kind == "unsound" && w.Op == t.v.String() && w.Domain == d.Name() {
			return true
		}
	}
	return false
}

func hasLintWitness(out *taskOut, t task) bool {
	for _, w := range out.findings {
		if w.Kind == "inconsistent" && w.Op == t.v.String() {
			return true
		}
	}
	return false
}

func formatInputs(t task, tuple []inElem) []string {
	out := make([]string, len(tuple))
	for i, e := range tuple {
		if e.single {
			out[i] = fmt.Sprintf("%s = const %s", argNames[i], e.vals[0])
		} else {
			out[i] = fmt.Sprintf("%s = %s", argNames[i], t.inDom.Format(e.e))
		}
	}
	return out
}

func unsoundWitness(t task, d Domain, tuple []inElem, got Elem, image []apint.Int, tbl []int16, ws []uint, bad apint.Int) Witness {
	w := Witness{
		Kind: "unsound", Op: t.v.String(), Width: t.widthLabel(),
		InDomain: t.inDom.Name(), Domain: d.Name(),
		Inputs: formatInputs(t, tuple),
		Got:    d.Format(got),
		Want:   d.Format(d.Abstract(t.dstW, image)),
	}
	// Rescan the concrete product for an input tuple that produces the
	// escaping value.
	target := int16(bad.Uint64())
	var rec func(i int, packed uint64, off uint, ins []string) bool
	rec = func(i int, packed uint64, off uint, ins []string) bool {
		if i == len(tuple) {
			if tbl[packed] == target {
				w.ConcreteIn = append([]string(nil), ins...)
				w.ConcreteOut = bad.String()
				return true
			}
			return false
		}
		for _, v := range tuple[i].vals {
			if rec(i+1, packed|v.Uint64()<<off, off+ws[i], append(ins, fmt.Sprintf("%s=%s", argNames[i], v))) {
				return true
			}
		}
		return false
	}
	rec(0, 0, 0, nil)
	return w
}

// Summary renders per-output-domain aggregate totals.
func (r *Report) Summary() string {
	type agg struct {
		tuples, sound, precise, imprecise, unsound, dead uint64
	}
	byDom := map[string]*agg{}
	var order []string
	for _, st := range r.Stats {
		a := byDom[st.Domain]
		if a == nil {
			a = &agg{}
			byDom[st.Domain] = a
			order = append(order, st.Domain)
		}
		a.tuples += st.Tuples
		a.sound += st.Sound
		a.precise += st.Precise
		a.imprecise += st.Imprecise
		a.unsound += st.Unsound
		a.dead += st.Dead
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %12s %12s %12s %12s %10s %8s\n",
		"DOMAIN", "TUPLES", "SOUND", "PRECISE", "IMPRECISE", "UNSOUND", "DEAD")
	for _, name := range order {
		a := byDom[name]
		fmt.Fprintf(&b, "%-14s %12d %12d %12d %12d %10d %8d\n",
			name, a.tuples, a.sound, a.precise, a.imprecise, a.unsound, a.dead)
	}
	fmt.Fprintf(&b, "total graded tuples: %d", r.Tuples)
	if r.LintChecks > 0 {
		fmt.Fprintf(&b, "; consistency checks: %d", r.LintChecks)
	}
	b.WriteString("\n")
	return b.String()
}

// OpTable renders the per-op table the sweep is named for: one row per
// (op variant, output domain), aggregated over widths and input domains.
func (r *Report) OpTable() string {
	type key struct{ op, dom string }
	type agg struct {
		tuples, precise, imprecise, unsound uint64
		limited                             bool
	}
	rows := map[key]*agg{}
	var order []key
	for _, st := range r.Stats {
		k := key{st.Op, st.Domain}
		a := rows[k]
		if a == nil {
			a = &agg{}
			rows[k] = a
			order = append(order, k)
		}
		a.tuples += st.Tuples
		a.precise += st.Precise
		a.imprecise += st.Imprecise
		a.unsound += st.Unsound
		a.limited = a.limited || st.Limited
	}
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].op != order[j].op {
			return order[i].op < order[j].op
		}
		return order[i].dom < order[j].dom
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-14s %10s %10s %10s %8s\n",
		"OP", "DOMAIN", "TUPLES", "PRECISE", "IMPRECISE", "UNSOUND")
	for _, k := range order {
		a := rows[k]
		note := ""
		if a.limited {
			note = " *"
		}
		fmt.Fprintf(&b, "%-18s %-14s %10d %10d %10d %8d%s\n",
			k.op, k.dom, a.tuples, a.precise, a.imprecise, a.unsound, note)
	}
	b.WriteString("(* = tuple budget hit; some operands restricted to constants and top)\n")
	return b.String()
}
