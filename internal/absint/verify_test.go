package absint

import (
	"strings"
	"testing"

	"dfcheck/internal/ir"
	"dfcheck/internal/llvmport"
	"dfcheck/internal/tnum"
)

// TestVerifyCleanAnalyzer: the exhaustive sweep over every op at widths
// 1–3 must grade the fixed LLVM-8 port sound everywhere, and the
// cross-domain lint must stay silent too. Workers > 1 exercises the
// worker pool under the race detector.
func TestVerifyCleanAnalyzer(t *testing.T) {
	rep := Verify(Config{MaxWidth: 3, Workers: 4, Lint: true})
	if !rep.Sound() {
		msgs := make([]string, 0, len(rep.Findings))
		for _, w := range rep.Findings {
			msgs = append(msgs, w.String())
		}
		t.Fatalf("clean analyzer graded unsound:\n%s", strings.Join(msgs, "\n"))
	}
	if rep.Tuples == 0 || rep.LintChecks == 0 {
		t.Fatalf("sweep did no work: %d tuples, %d lint checks", rep.Tuples, rep.LintChecks)
	}
	// Every op variant must have produced at least one stat row.
	ops := map[string]bool{}
	for _, st := range rep.Stats {
		ops[st.Op] = true
	}
	for _, op := range ir.AllOps() {
		if op == ir.OpBSwap {
			continue // byte widths only; never sweepable at <= 6 bits
		}
		if !ops[op.String()] {
			t.Errorf("no stats for %s", op)
		}
	}
	if ops[ir.OpBSwap.String()] {
		t.Errorf("bswap swept at a non-byte width")
	}
}

// TestVerifyPrecisionGrading: some transfer functions are deliberately
// weaker than the best abstraction (LLVM trades precision for compile
// time), so a clean sweep must grade a nonzero imprecise share — if
// every tuple came back precise the grading itself would be suspect.
func TestVerifyPrecisionGrading(t *testing.T) {
	rep := Verify(Config{MaxWidth: 2, Ops: []ir.Op{ir.OpMul, ir.OpAdd}})
	var precise, imprecise uint64
	for _, st := range rep.Stats {
		precise += st.Precise
		imprecise += st.Imprecise
	}
	if precise == 0 || imprecise == 0 {
		t.Fatalf("grading looks degenerate: %d precise, %d imprecise", precise, imprecise)
	}
}

func findWitness(rep *Report, kind, domain string) *Witness {
	for i := range rep.Findings {
		if rep.Findings[i].Kind == kind && rep.Findings[i].Domain == domain {
			return &rep.Findings[i]
		}
	}
	return nil
}

// TestVerifyDetectsBug1: the non-zero add bug must be caught at the
// minimal width i1 with the abstract inputs named in the witness, with
// no solver anywhere on the path.
func TestVerifyDetectsBug1(t *testing.T) {
	rep := Verify(Config{
		Analyzer: &llvmport.Analyzer{Bugs: llvmport.BugConfig{NonZeroAdd: true}},
		Ops:      []ir.Op{ir.OpAdd},
		Lint:     true,
		Workers:  4,
	})
	w := findWitness(rep, "unsound", "non-zero")
	if w == nil {
		t.Fatalf("bug 1 not detected; findings: %v", rep.Findings)
	}
	if w.Op != "add" || w.Width != "i1" {
		t.Errorf("witness not minimal: op %s at %s, want add at i1", w.Op, w.Width)
	}
	if len(w.Inputs) != 2 || w.Got == "" || w.Want == "" {
		t.Errorf("witness incomplete: %+v", *w)
	}
	// The same bug is also a cross-domain contradiction (non-zero vs the
	// zero the other domains prove), so the lint must flag it too.
	if lw := findWitness(rep, "inconsistent", "consistency"); lw == nil {
		t.Errorf("bug 1 not caught by the consistency lint")
	}
}

// TestVerifyDetectsBug2: the srem sign-bits bug appears first at i3
// (smaller widths cannot distinguish the off-by-one), in the sign-bits
// output domain.
func TestVerifyDetectsBug2(t *testing.T) {
	rep := Verify(Config{
		Analyzer: &llvmport.Analyzer{Bugs: llvmport.BugConfig{SRemSignBits: true}},
		Ops:      []ir.Op{ir.OpSRem},
	})
	w := findWitness(rep, "unsound", "sign bits")
	if w == nil {
		t.Fatalf("bug 2 not detected; findings: %v", rep.Findings)
	}
	if w.Op != "srem" || w.Width != "i3" {
		t.Errorf("witness not minimal: op %s at %s, want srem at i3", w.Op, w.Width)
	}
	if len(w.Inputs) != 2 || w.ConcreteOut == "" {
		t.Errorf("witness missing inputs or counterexample: %+v", *w)
	}
}

// TestVerifyDetectsBug3: the srem known-bits wrong-operand bug (LLVM
// PR12541) appears first at i3 — the witness is the paper's own "4 srem
// 3" shape — in the known-bits output domain.
func TestVerifyDetectsBug3(t *testing.T) {
	rep := Verify(Config{
		Analyzer: &llvmport.Analyzer{Bugs: llvmport.BugConfig{SRemKnownBits: true}},
		Ops:      []ir.Op{ir.OpSRem},
	})
	w := findWitness(rep, "unsound", "known bits")
	if w == nil {
		t.Fatalf("bug 3 not detected; findings: %v", rep.Findings)
	}
	if w.Op != "srem" || w.Width != "i3" {
		t.Errorf("witness not minimal: op %s at %s, want srem at i3", w.Op, w.Width)
	}
	if len(w.ConcreteIn) != 2 || w.ConcreteOut == "" {
		t.Errorf("witness has no concrete counterexample: %+v", *w)
	}
}

// TestVerifyNoBugEscapesRestriction: the tuple budget's progressive
// operand restriction must not mask a bug — bug 2 is still found when
// the budget forces every operand list down to singletons and top.
func TestVerifyNoBugEscapesRestriction(t *testing.T) {
	rep := Verify(Config{
		Analyzer:  &llvmport.Analyzer{Bugs: llvmport.BugConfig{SRemSignBits: true}},
		Ops:       []ir.Op{ir.OpSRem},
		MaxTuples: 1,
	})
	limited := false
	for _, st := range rep.Stats {
		limited = limited || st.Limited
	}
	if !limited {
		t.Fatalf("MaxTuples=1 did not limit any task")
	}
	if w := findWitness(rep, "unsound", "sign bits"); w == nil {
		t.Fatalf("bug 2 masked by tuple restriction; findings: %v", rep.Findings)
	}
}

// TestVerifyTransferDomainsClean: the self-contained tnum and stride
// suites must grade sound on every op at widths 1–3, with every stat row
// attributed to the transfer domains and no LLVM-port task in the sweep.
func TestVerifyTransferDomainsClean(t *testing.T) {
	rep := Verify(Config{MaxWidth: 3, Workers: 4, Domains: []Domain{Tnums, Strides}})
	if !rep.Sound() {
		msgs := make([]string, 0, len(rep.Findings))
		for _, w := range rep.Findings {
			msgs = append(msgs, w.String())
		}
		t.Fatalf("transfer suites graded unsound:\n%s", strings.Join(msgs, "\n"))
	}
	if rep.Tuples == 0 {
		t.Fatalf("sweep did no work")
	}
	var sawTnum, sawStride bool
	for _, st := range rep.Stats {
		switch st.InDomain {
		case "tnum":
			sawTnum = true
		case "stride":
			sawStride = true
		default:
			t.Fatalf("unexpected input domain %q in a restricted sweep", st.InDomain)
		}
		if st.InDomain != st.Domain {
			t.Fatalf("transfer domain %q graded against %q", st.InDomain, st.Domain)
		}
	}
	if !sawTnum || !sawStride {
		t.Fatalf("missing stats: tnum=%t stride=%t", sawTnum, sawStride)
	}
}

// TestVerifyDetectsTnumMulBug: the seeded mask-recurrence off-by-one in
// the verified tnum multiply must surface with the minimal
// width-ascending witness — mul at i1, where x · 1 comes back as the
// constant 0.
func TestVerifyDetectsTnumMulBug(t *testing.T) {
	rep := Verify(Config{
		MaxWidth: 3,
		Domains:  []Domain{TnumsWithBugs(tnum.Bugs{MulMask: true})},
	})
	w := findWitness(rep, "unsound", "tnum")
	if w == nil {
		t.Fatalf("tnum mul bug not detected; findings: %v", rep.Findings)
	}
	if w.Op != "mul" || w.Width != "i1" {
		t.Errorf("witness not minimal: op %s at %s, want mul at i1", w.Op, w.Width)
	}
	if len(w.ConcreteIn) != 2 || w.ConcreteOut == "" {
		t.Errorf("witness has no concrete counterexample: %+v", *w)
	}
	// Only mul variants share the broken kernel; no other op may be blamed.
	for _, f := range rep.Findings {
		if !strings.HasPrefix(f.Op, "mul") {
			t.Errorf("clean op %s blamed: %s", f.Op, f.String())
		}
	}
}

// TestVerifyWidthClamp: widths above 6 are clamped (the concrete-image
// bitset is a uint64), and MinWidth > MaxWidth degrades sanely.
func TestVerifyWidthClamp(t *testing.T) {
	rep := Verify(Config{MinWidth: 9, MaxWidth: 9, Ops: []ir.Op{ir.OpAnd}})
	for _, st := range rep.Stats {
		if st.Width != "i6" {
			t.Fatalf("width not clamped to i6: %s", st.Width)
		}
	}
	if len(rep.Stats) == 0 {
		t.Fatalf("clamped sweep did nothing")
	}
}

// TestVerifyProgress: the progress callback must reach done == total.
func TestVerifyProgress(t *testing.T) {
	var last, total int
	Verify(Config{MaxWidth: 2, Ops: []ir.Op{ir.OpXor}, Workers: 1, Progress: func(d, tot int) {
		if d > last {
			last = d
		}
		total = tot
	}})
	if last == 0 || last != total {
		t.Fatalf("progress stopped at %d/%d", last, total)
	}
}

// TestBuildTableSlicedMatchesScalar pins the sliced and scalar
// concrete-table builders to identical output across every task of a
// width-1..5 sweep (all ops, all flag variants, including UB entries).
func TestBuildTableSlicedMatchesScalar(t *testing.T) {
	cfg := Config{MinWidth: 1, MaxWidth: 5}.withDefaults()
	for _, task := range buildTasks(cfg) {
		if task.inDom != inputDomains[0] {
			continue // the table depends only on (op, widths)
		}
		ws := task.operandWidths()
		sliced := buildTable(task, ws, false)
		scalar := buildTable(task, ws, true)
		for i := range sliced {
			if sliced[i] != scalar[i] {
				t.Fatalf("%s %s: table[%d] sliced=%d scalar=%d",
					task.v, task.widthLabel(), i, sliced[i], scalar[i])
			}
		}
	}
}

// TestVerifyNoSlicedAblation: the scalar ablation path must produce the
// same report as the default sliced path.
func TestVerifyNoSlicedAblation(t *testing.T) {
	ops := []ir.Op{ir.OpAdd, ir.OpSDiv, ir.OpShl, ir.OpCttz}
	fast := Verify(Config{MaxWidth: 3, Ops: ops, Workers: 1})
	slow := Verify(Config{MaxWidth: 3, Ops: ops, Workers: 1, NoSliced: true})
	if len(fast.Stats) != len(slow.Stats) {
		t.Fatalf("stat counts differ: sliced %d, scalar %d", len(fast.Stats), len(slow.Stats))
	}
	for i := range fast.Stats {
		if fast.Stats[i] != slow.Stats[i] {
			t.Fatalf("stat %d differs:\nsliced: %+v\nscalar: %+v", i, fast.Stats[i], slow.Stats[i])
		}
	}
	if len(fast.Findings) != len(slow.Findings) {
		t.Fatalf("finding counts differ: sliced %d, scalar %d", len(fast.Findings), len(slow.Findings))
	}
}
