package absint

import (
	"fmt"

	"dfcheck/internal/apint"
	"dfcheck/internal/constrange"
	"dfcheck/internal/ir"
	"dfcheck/internal/knownbits"
	"dfcheck/internal/llvmport"
	"dfcheck/internal/stride"
	"dfcheck/internal/tnum"
)

// Inconsistency is one contradiction between facts the analyzer computed
// about the same value. Each fact is individually an over-approximation
// of the value's concrete behaviors, so two facts with no common concrete
// member cannot both be sound: at least one transfer function has a
// soundness bug, found without a solver or an oracle (the reduced-product
// cross-check of the Klinger et al. methodology).
type Inconsistency struct {
	// Inst names the instruction the facts are about: "%name:iW" for
	// variables, "op:iW" otherwise.
	Inst string
	// Detail states the contradiction, naming the facts involved.
	Detail string
}

func (i Inconsistency) String() string {
	return fmt.Sprintf("%s: %s", i.Inst, i.Detail)
}

// CheckFacts cross-checks the four domains' facts for every instruction
// of f (and the boolean predicates for the root) against each other,
// returning the contradictions found and the number of pairwise checks
// performed. Facts that claim the instruction is dead (conflicted known
// bits, empty range) suppress the remaining checks for that instruction:
// on dead code every fact is vacuously sound. All checks are exact in
// the contradiction direction — a reported inconsistency is always a
// genuine empty intersection, never an artifact of approximation.
func CheckFacts(f *ir.Function, fa *llvmport.Facts) ([]Inconsistency, int) {
	var out []Inconsistency
	checks := 0
	report := func(n *ir.Inst, format string, args ...any) {
		out = append(out, Inconsistency{Inst: instLabel(n), Detail: fmt.Sprintf(format, args...)})
	}
	for _, n := range f.Insts() {
		if n.Op == ir.OpConst {
			continue // facts about literals are exact by construction
		}
		w := n.Width
		k := fa.KnownBitsOf(n)
		r := fa.RangeOf(n)
		s := fa.NumSignBitsOf(n)
		if s < 1 {
			s = 1
		}
		if k.HasConflict() || r.IsEmpty() {
			continue // analysis claims dead code; everything is vacuous
		}
		mask := ^uint64(0) >> (64 - w)

		// Known bits vs range: both must admit a common value.
		checks++
		if _, ok := kRangeMember(k, r, 0, mask); !ok {
			report(n, "known bits %s and range %s share no value", k, r)
		}
		// Sign bits vs known bits: the top s bits must be completable to
		// all-zero or all-one.
		checks++
		if s >= 2 && !kSignFeasible(k, s) {
			report(n, "%d sign bits contradict known bits %s", s, k)
		}
		// Sign bits vs range: the sign-extended band must intersect the
		// range (Intersect is exact for emptiness).
		checks++
		if s >= 2 && r.Intersect(signBand(w, s)).IsEmpty() {
			report(n, "%d sign bits contradict range %s", s, r)
		}
	}

	// The single-bit predicates are computed for the root only.
	root := f.Root
	k := fa.KnownBitsOf(root)
	r := fa.RangeOf(root)
	s := fa.NumSignBitsOf(root)
	if s < 1 {
		s = 1
	}
	if k.HasConflict() || r.IsEmpty() {
		return out, checks
	}
	w := root.Width
	mask := ^uint64(0) >> (64 - w)
	half := uint64(1) << (w - 1)
	neg, nn := fa.Negative(), fa.NonNegative()

	checks++
	if neg && nn {
		report(root, "negative and non-negative both proved")
	}
	if fa.NonZero() {
		checks++
		if _, ok := kRangeMember(k, r, 1, mask); !ok {
			report(root, "non-zero proved but known bits %s and range %s admit only zero", k, r)
		}
	}
	if neg {
		checks++
		if _, ok := kRangeMember(k, r, half, mask); !ok {
			report(root, "negative proved but known bits %s and range %s admit no negative value", k, r)
		}
	}
	if nn {
		checks++
		if _, ok := kRangeMember(k, r, 0, half-1); !ok {
			report(root, "non-negative proved but known bits %s and range %s admit no non-negative value", k, r)
		}
	}
	if fa.PowerOfTwo() {
		checks++
		feasible := false
		for i := uint(0); i < w; i++ {
			v := apint.New(w, uint64(1)<<i)
			if !k.Contains(v) || !r.Contains(v) || v.NumSignBits() < s {
				continue
			}
			if neg && !v.IsNegative() || nn && v.IsNegative() {
				continue
			}
			feasible = true
			break
		}
		if !feasible {
			report(root, "power of two proved but no power of two is consistent with known bits %s, range %s, %d sign bits", k, r, s)
		}
	}
	return out, checks
}

// ExtraFacts carries the per-instruction facts of the self-contained
// abstract interpreters, for the extended consistency lint. Nil maps
// mean the corresponding domain is not enabled.
type ExtraFacts struct {
	Tnum   map[*ir.Inst]tnum.T
	Stride map[*ir.Inst]stride.S
}

// extraFacts interprets f under every transfer domain enabled in cfg, so
// the lint can cross-check those facts against the analyzer's.
func (cfg Config) extraFacts(f *ir.Function) ExtraFacts {
	var ex ExtraFacts
	for _, d := range cfg.inputDomains() {
		switch td := d.(type) {
		case tnumDomain:
			ex.Tnum = td.analyze(f)
		case strideDomain:
			ex.Stride = td.analyze(f)
		}
	}
	return ex
}

// AnalyzeExtra interprets f under the clean tnum and stride suites — the
// convenience constructor comparator callers use.
func AnalyzeExtra(f *ir.Function) ExtraFacts {
	return ExtraFacts{
		Tnum:   tnum.Analysis{}.Analyze(f),
		Stride: stride.Analysis{}.Analyze(f),
	}
}

// ExtraFactsFor interprets f under whichever transfer domains appear in
// doms (others are ignored); a nil or transfer-free doms yields the
// zero ExtraFacts, under which CheckFactsDomains degrades to CheckFacts.
func ExtraFactsFor(f *ir.Function, doms []Domain) ExtraFacts {
	return Config{Domains: doms}.extraFacts(f)
}

// CheckFactsDomains is CheckFacts extended with the tnum and stride
// reduced products: per instruction it additionally cross-checks
// tnum×known-bits (exact ternary meet), tnum×range (exact segment walk
// over the tnum's known bits) and stride×range (exact arithmetic-
// progression membership per unsigned segment). As with the base lint,
// every reported contradiction is a genuine empty intersection.
func CheckFactsDomains(f *ir.Function, fa *llvmport.Facts, ex ExtraFacts) ([]Inconsistency, int) {
	out, checks := CheckFacts(f, fa)
	if ex.Tnum == nil && ex.Stride == nil {
		return out, checks
	}
	report := func(n *ir.Inst, format string, args ...any) {
		out = append(out, Inconsistency{Inst: instLabel(n), Detail: fmt.Sprintf(format, args...)})
	}
	for _, n := range f.Insts() {
		if n.Op == ir.OpConst {
			continue
		}
		w := n.Width
		k := fa.KnownBitsOf(n)
		r := fa.RangeOf(n)
		if k.HasConflict() || r.IsEmpty() {
			continue // analysis claims dead code; everything is vacuous
		}
		mask := ^uint64(0) >> (64 - w)
		if t, ok := ex.Tnum[n]; ok && !t.IsBottom() {
			tk := t.KnownBits()
			checks++
			if k.Meet(tk).HasConflict() {
				report(n, "tnum %s and known bits %s share no value", t, k)
			}
			checks++
			if _, found := kRangeMember(tk, r, 0, mask); !found {
				report(n, "tnum %s and range %s share no value", t, r)
			}
		}
		if s, ok := ex.Stride[n]; ok && !s.Empty {
			checks++
			found := false
			for _, sg := range unsignedSegs(r) {
				if strideSegMember(s, sg[0], sg[1]) {
					found = true
					break
				}
			}
			if !found {
				report(n, "stride %s and range %s share no value", s, r)
			}
		}
	}
	return out, checks
}

// strideSegMember reports whether the congruence has a member in the
// inclusive unsigned interval [lo, hi]: the smallest member at or above
// lo is computed directly, with the window bound checked before the
// multiply so nothing overflows even at width 64.
func strideSegMember(s stride.S, lo, hi uint64) bool {
	switch {
	case s.Empty:
		return false
	case s.M == 0:
		return lo <= s.R && s.R <= hi
	case lo <= s.R:
		return s.R <= hi
	}
	d := lo - s.R
	k := d / s.M
	if d%s.M != 0 {
		k++
	}
	if k > (s.Max()-s.R)/s.M {
		return false // no member of the window is at or above lo
	}
	return s.R+k*s.M <= hi
}

func instLabel(n *ir.Inst) string {
	if n.Op == ir.OpVar {
		return fmt.Sprintf("%%%s:i%d", n.Name, n.Width)
	}
	return fmt.Sprintf("%s%s:i%d", n.Op, n.Flags, n.Width)
}

// signBand returns the set of width-w values with at least s sign bits:
// the signed interval [-2^(w-s), 2^(w-s)-1], which wraps as an unsigned
// range. s = 1 yields the full set.
func signBand(w, s uint) constrange.Range {
	lo := apint.NewSigned(w, -(int64(1) << (w - s)))
	hi := apint.New(w, uint64(1)<<(w-s))
	return constrange.NonEmpty(lo, hi)
}

// kSignFeasible reports whether some value consistent with k has at
// least s sign bits: the top s bit positions must all be completable to
// zero, or all to one.
func kSignFeasible(k knownbits.Bits, s uint) bool {
	w := k.Width()
	topMask := (^uint64(0) >> (64 - s)) << (w - s)
	zero, one := k.Zero.Uint64(), k.One.Uint64()
	return one&topMask == 0 || zero&topMask == 0
}

// kRangeMember finds a value that is simultaneously in γ(k), in r, and
// in the unsigned interval [clipLo, clipHi]. It walks r's unsigned
// segments and, per segment, computes the smallest member of γ(k) at or
// above the segment start — exact, O(w²), no enumeration.
func kRangeMember(k knownbits.Bits, r constrange.Range, clipLo, clipHi uint64) (uint64, bool) {
	for _, sg := range unsignedSegs(r) {
		lo, hi := sg[0], sg[1]
		if clipLo > lo {
			lo = clipLo
		}
		if clipHi < hi {
			hi = clipHi
		}
		if lo > hi {
			continue
		}
		if v, ok := smallestGE(k, lo); ok && v <= hi {
			return v, true
		}
	}
	return 0, false
}

// unsignedSegs decomposes r into at most two inclusive unsigned
// intervals [lo, hi].
func unsignedSegs(r constrange.Range) [][2]uint64 {
	w := r.Width()
	mask := ^uint64(0) >> (64 - w)
	switch {
	case r.IsEmpty():
		return nil
	case r.IsFull():
		return [][2]uint64{{0, mask}}
	case r.IsWrapped():
		lo, hi := r.Lower().Uint64(), r.Upper().Uint64()
		segs := [][2]uint64{{lo, mask}}
		if hi > 0 {
			segs = append(segs, [2]uint64{0, hi - 1})
		}
		return segs
	default:
		return [][2]uint64{{r.Lower().Uint64(), r.Upper().Uint64() - 1}}
	}
}

// smallestGE returns the smallest member of γ(k) that is >= a
// (unsigned), or false if none exists. Any member v > a diverges from a
// at a highest bit position i with v_i = 1 and a_i = 0; for each
// feasible divergence position the minimal completion sets the unknown
// bits below i to k's known ones, and the overall minimum over positions
// is the answer.
func smallestGE(k knownbits.Bits, a uint64) (uint64, bool) {
	w := k.Width()
	mask := ^uint64(0) >> (64 - w)
	zero, one := k.Zero.Uint64(), k.One.Uint64()
	a &= mask
	if a&zero == 0 && ^a&one&mask == 0 {
		return a, true // a itself is a member
	}
	best, found := uint64(0), false
	for i := uint(0); i < w; i++ {
		bit := uint64(1) << i
		if a&bit != 0 || zero&bit != 0 {
			continue // need a_i = 0 and bit i free to be 1
		}
		prefixMask := mask &^ (bit<<1 - 1)
		p := a & prefixMask
		if p&zero != 0 || ^p&one&prefixMask != 0 {
			continue // a's prefix above i conflicts with k
		}
		cand := p | bit | one&(bit-1)
		if !found || cand < best {
			best, found = cand, true
		}
	}
	return best, found
}
