// Package absint gives the four dataflow domains of the paper a common
// abstract-interpretation interface — bounded lattices with explicit
// concretization (γ) membership and best abstraction (α) over concrete
// sets — and builds two solver-free checkers on top of it:
//
//   - Verify exhaustively checks every transfer function of the compiler
//     under test for soundness and maximal precision at small bit widths
//     (the tristate-numbers methodology of Vishwanathan et al.): every
//     abstract input tuple is pushed through the analyzer, and the
//     abstract output is compared against the enumerated concrete image.
//
//   - CheckFacts cross-checks the domains against each other on one
//     analyzed expression (a reduced-product consistency lint, after
//     Klinger et al.'s analyzer-vs-analyzer differential testing): two
//     sound facts about the same value must share a concrete member, so
//     any contradiction is a soundness bug found without an oracle.
//
// Neither checker issues a SAT query; the package does not import the
// solver.
package absint

import (
	"fmt"
	"strings"

	"dfcheck/internal/apint"
	"dfcheck/internal/constrange"
	"dfcheck/internal/ir"
	"dfcheck/internal/knownbits"
	"dfcheck/internal/stride"
	"dfcheck/internal/tnum"
)

// Elem is one abstract element. Each Domain defines its own dynamic type
// (knownbits.Bits, constrange.Range, SignCount, bool); the interface
// boxes them so the checkers are written once.
type Elem any

// Domain is the abstract-domain interface shared by the verifier and
// the consistency lint: a bounded lattice with a concretization and a
// best abstraction over (small-width) concrete sets.
type Domain interface {
	// Name matches the harvest.Analysis naming so reports line up.
	Name() string
	// Top is the no-information element at width w.
	Top(w uint) Elem
	// Bottom is the most precise element at width w: the element with
	// empty concretization where the lattice has one, otherwise the
	// least element.
	Bottom(w uint) Elem
	// IsBottom reports whether γ(a) is empty.
	IsBottom(a Elem) bool
	// Join is the least upper bound, Meet the greatest lower bound (or
	// the domain's standard sound approximation of it, as in LLVM).
	Join(a, b Elem) Elem
	Meet(a, b Elem) Elem
	// Leq reports a ⊑ b, that is γ(a) ⊆ γ(b).
	Leq(a, b Elem) bool
	Eq(a, b Elem) bool
	// Contains reports v ∈ γ(a): concretization membership.
	Contains(a Elem, v apint.Int) bool
	// Abstract returns α(vs): the least element whose concretization
	// includes every value of vs.
	Abstract(w uint, vs []apint.Int) Elem
	// Enum enumerates every element with non-empty concretization at
	// width w, stopping early if fn returns false. Feasible only at
	// the small widths the exhaustive verifier sweeps.
	Enum(w uint, fn func(Elem) bool)
	// Format renders an element the way reports print it.
	Format(a Elem) string
}

// TransferDomain is a Domain that carries its own transfer-function
// suite instead of reading facts off the LLVM-port analyzer: Verify
// grades Transfer directly against the concrete image, with no harness
// and no analyzer in the loop. Transfer must map operand tuples with no
// well-defined execution to a bottom element and must never panic on any
// op/flag/width combination the IR admits.
type TransferDomain interface {
	Domain
	Transfer(op ir.Op, flags ir.Flags, dstW uint, args []Elem) Elem
}

// The domain instances, one per analysis of the compiler under test.
var (
	KnownBits    Domain = knownBitsDomain{}
	IntegerRange Domain = rangeDomain{}
	SignBits     Domain = signBitsDomain{}
	NonZero      Domain = predDomain{"non-zero", func(v apint.Int) bool { return !v.IsZero() }}
	Negative     Domain = predDomain{"negative", apint.Int.IsNegative}
	NonNegative  Domain = predDomain{"non-negative", apint.Int.IsNonNegative}
	PowerOfTwo   Domain = predDomain{"power of two", apint.Int.IsPowerOfTwo}

	// Tnums and Strides carry their own verified transfer suites
	// (internal/tnum, internal/stride) and are graded as TransferDomains.
	Tnums   Domain = tnumDomain{}
	Strides Domain = strideDomain{}
)

// TnumsWithBugs returns the tnum domain with the given deliberately
// re-broken transfer functions, for seeded-bug detection sweeps.
func TnumsWithBugs(bugs tnum.Bugs) Domain {
	return tnumDomain{an: tnum.Analysis{Bugs: bugs}}
}

// DomainByName resolves a command-line domain name; the accepted names
// are the Name() strings with spaces dashed, plus common short forms.
func DomainByName(name string) (Domain, bool) {
	switch name {
	case "known-bits", "knownbits", "kb":
		return KnownBits, true
	case "integer-range", "range":
		return IntegerRange, true
	case "sign-bits", "signbits":
		return SignBits, true
	case "tnum", "tnums":
		return Tnums, true
	case "stride", "strides", "congruence":
		return Strides, true
	}
	return nil, false
}

// DomainsByNames parses a comma-separated -domains flag value with
// DomainByName; the empty string yields nil, leaving the caller's
// default in force.
func DomainsByNames(csv string) ([]Domain, error) {
	if csv == "" {
		return nil, nil
	}
	var doms []Domain
	for _, name := range strings.Split(csv, ",") {
		d, ok := DomainByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unknown domain %q", name)
		}
		doms = append(doms, d)
	}
	return doms, nil
}

// AllInputDomains lists every domain accepted as a Verify input domain,
// in sweep order: the three LLVM-port fact domains, then the two
// self-contained transfer suites.
func AllInputDomains() []Domain {
	return []Domain{KnownBits, SignBits, IntegerRange, Tnums, Strides}
}

// tnumDomain adapts internal/tnum to the Domain interface; an holds the
// transfer suite (possibly with seeded bugs — the lattice is always
// clean, so only Transfer grading can go unsound).
type tnumDomain struct{ an tnum.Analysis }

func (tnumDomain) Name() string                         { return "tnum" }
func (tnumDomain) Top(w uint) Elem                      { return tnum.Top(w) }
func (tnumDomain) Bottom(w uint) Elem                   { return tnum.Bottom(w) }
func (tnumDomain) IsBottom(a Elem) bool                 { return a.(tnum.T).IsBottom() }
func (tnumDomain) Join(a, b Elem) Elem                  { return a.(tnum.T).Union(b.(tnum.T)) }
func (tnumDomain) Meet(a, b Elem) Elem                  { return a.(tnum.T).Intersect(b.(tnum.T)) }
func (tnumDomain) Leq(a, b Elem) bool                   { return a.(tnum.T).Leq(b.(tnum.T)) }
func (tnumDomain) Eq(a, b Elem) bool                    { return a.(tnum.T).Eq(b.(tnum.T)) }
func (tnumDomain) Contains(a Elem, v apint.Int) bool    { return a.(tnum.T).Contains(v) }
func (tnumDomain) Abstract(w uint, vs []apint.Int) Elem { return tnum.Abstract(w, vs) }
func (tnumDomain) Format(a Elem) string                 { return a.(tnum.T).String() }
func (tnumDomain) Enum(w uint, fn func(Elem) bool) {
	tnum.Enum(w, func(t tnum.T) bool { return fn(t) })
}

func (d tnumDomain) Transfer(op ir.Op, flags ir.Flags, dstW uint, args []Elem) Elem {
	ts := make([]tnum.T, len(args))
	for i, a := range args {
		ts[i] = a.(tnum.T)
	}
	return d.an.Transfer(op, flags, dstW, ts)
}

// analyze runs the per-instruction interpreter, for the consistency lint
// and the comparator.
func (d tnumDomain) analyze(f *ir.Function) map[*ir.Inst]tnum.T { return d.an.Analyze(f) }

// strideDomain adapts internal/stride to the Domain interface.
type strideDomain struct{ an stride.Analysis }

func (strideDomain) Name() string                         { return "stride" }
func (strideDomain) Top(w uint) Elem                      { return stride.Top(w) }
func (strideDomain) Bottom(w uint) Elem                   { return stride.Bottom(w) }
func (strideDomain) IsBottom(a Elem) bool                 { return a.(stride.S).Empty }
func (strideDomain) Join(a, b Elem) Elem                  { return a.(stride.S).Join(b.(stride.S)) }
func (strideDomain) Meet(a, b Elem) Elem                  { return a.(stride.S).Meet(b.(stride.S)) }
func (strideDomain) Leq(a, b Elem) bool                   { return a.(stride.S).Leq(b.(stride.S)) }
func (strideDomain) Eq(a, b Elem) bool                    { return a.(stride.S).Eq(b.(stride.S)) }
func (strideDomain) Contains(a Elem, v apint.Int) bool    { return a.(stride.S).Contains(v) }
func (strideDomain) Abstract(w uint, vs []apint.Int) Elem { return stride.Abstract(w, vs) }
func (strideDomain) Format(a Elem) string                 { return a.(stride.S).String() }
func (strideDomain) Enum(w uint, fn func(Elem) bool) {
	stride.Enum(w, func(s stride.S) bool { return fn(s) })
}

func (d strideDomain) Transfer(op ir.Op, flags ir.Flags, dstW uint, args []Elem) Elem {
	ss := make([]stride.S, len(args))
	for i, a := range args {
		ss[i] = a.(stride.S)
	}
	return d.an.Transfer(op, flags, dstW, ss)
}

func (d strideDomain) analyze(f *ir.Function) map[*ir.Inst]stride.S { return d.an.Analyze(f) }

// knownBitsDomain wraps the ternary known-bits lattice of knownbits.Bits.
type knownBitsDomain struct{}

func (knownBitsDomain) Name() string    { return "known bits" }
func (knownBitsDomain) Top(w uint) Elem { return knownbits.Unknown(w) }
func (knownBitsDomain) Bottom(w uint) Elem {
	return knownbits.Make(apint.AllOnes(w), apint.AllOnes(w))
}
func (knownBitsDomain) IsBottom(a Elem) bool { return a.(knownbits.Bits).HasConflict() }
func (knownBitsDomain) Join(a, b Elem) Elem {
	return a.(knownbits.Bits).Join(b.(knownbits.Bits))
}
func (knownBitsDomain) Meet(a, b Elem) Elem {
	return a.(knownbits.Bits).Meet(b.(knownbits.Bits))
}
func (knownBitsDomain) Leq(a, b Elem) bool {
	return a.(knownbits.Bits).AtLeastAsPreciseAs(b.(knownbits.Bits))
}
func (knownBitsDomain) Eq(a, b Elem) bool { return a.(knownbits.Bits).Eq(b.(knownbits.Bits)) }
func (knownBitsDomain) Contains(a Elem, v apint.Int) bool {
	return a.(knownbits.Bits).Contains(v)
}

func (knownBitsDomain) Abstract(w uint, vs []apint.Int) Elem {
	zero, one := apint.AllOnes(w), apint.AllOnes(w)
	for _, v := range vs {
		zero = zero.And(v.Not())
		one = one.And(v)
	}
	return knownbits.Make(zero, one)
}

func (knownBitsDomain) Enum(w uint, fn func(Elem) bool) {
	// Ternary counter: each bit position is known-zero, known-one, or
	// unknown, so exactly 3^w conflict-free elements exist.
	digits := make([]byte, w)
	for {
		var zero, one uint64
		for i, d := range digits {
			switch d {
			case 0:
				zero |= 1 << uint(i)
			case 1:
				one |= 1 << uint(i)
			}
		}
		if !fn(knownbits.Make(apint.New(w, zero), apint.New(w, one))) {
			return
		}
		i := 0
		for ; i < len(digits); i++ {
			if digits[i] < 2 {
				digits[i]++
				break
			}
			digits[i] = 0
		}
		if i == len(digits) {
			return
		}
	}
}

func (knownBitsDomain) Format(a Elem) string { return a.(knownbits.Bits).String() }

// rangeDomain wraps the wrapped-interval lattice of constrange.Range.
// Join (Union) is a minimal upper bound — the wrapped-interval poset has
// no unique least one (two disjoint singletons can be covered two
// incomparable ways around the circle); Meet (Intersect) is
// LLVM's sound approximation of the greatest lower bound — exact
// whenever the intersection is circularly contiguous, and in particular
// exact for emptiness, which is all the consistency lint relies on.
type rangeDomain struct{}

func (rangeDomain) Name() string         { return "integer range" }
func (rangeDomain) Top(w uint) Elem      { return constrange.Full(w) }
func (rangeDomain) Bottom(w uint) Elem   { return constrange.Empty(w) }
func (rangeDomain) IsBottom(a Elem) bool { return a.(constrange.Range).IsEmpty() }
func (rangeDomain) Join(a, b Elem) Elem  { return a.(constrange.Range).Union(b.(constrange.Range)) }
func (rangeDomain) Meet(a, b Elem) Elem {
	return a.(constrange.Range).Intersect(b.(constrange.Range))
}
func (rangeDomain) Leq(a, b Elem) bool {
	return b.(constrange.Range).ContainsRange(a.(constrange.Range))
}
func (rangeDomain) Eq(a, b Elem) bool { return a.(constrange.Range).Eq(b.(constrange.Range)) }
func (rangeDomain) Contains(a Elem, v apint.Int) bool {
	return a.(constrange.Range).Contains(v)
}
func (rangeDomain) Abstract(w uint, vs []apint.Int) Elem { return constrange.AbstractSet(w, vs) }

func (rangeDomain) Enum(w uint, fn func(Elem) bool) {
	// Every (lo, hi) pair with lo != hi is a distinct non-empty range,
	// plus the full set; Empty (the bottom) is skipped.
	max := uint64(1) << w
	for lo := uint64(0); lo < max; lo++ {
		for hi := uint64(0); hi < max; hi++ {
			if lo == hi {
				continue
			}
			if !fn(constrange.New(apint.New(w, lo), apint.New(w, hi))) {
				return
			}
		}
	}
	fn(constrange.Full(w))
}

func (rangeDomain) Format(a Elem) string { return a.(constrange.Range).String() }

// SignCount is the sign-bits domain element: at least N of the top bits
// of a width-W value equal the sign bit (N ≥ 1 for every value; N > W
// is the synthetic bottom with empty concretization).
type SignCount struct {
	W, N uint
}

type signBitsDomain struct{}

func (signBitsDomain) Name() string         { return "sign bits" }
func (signBitsDomain) Top(w uint) Elem      { return SignCount{W: w, N: 1} }
func (signBitsDomain) Bottom(w uint) Elem   { return SignCount{W: w, N: w + 1} }
func (signBitsDomain) IsBottom(a Elem) bool { s := a.(SignCount); return s.N > s.W }
func (signBitsDomain) Join(a, b Elem) Elem {
	x, y := a.(SignCount), b.(SignCount)
	if y.N < x.N {
		x.N = y.N
	}
	return x
}
func (signBitsDomain) Meet(a, b Elem) Elem {
	x, y := a.(SignCount), b.(SignCount)
	if y.N > x.N {
		x.N = y.N
	}
	return x
}
func (signBitsDomain) Leq(a, b Elem) bool { return a.(SignCount).N >= b.(SignCount).N }
func (signBitsDomain) Eq(a, b Elem) bool  { return a.(SignCount).N == b.(SignCount).N }
func (signBitsDomain) Contains(a Elem, v apint.Int) bool {
	return v.NumSignBits() >= a.(SignCount).N
}

func (signBitsDomain) Abstract(w uint, vs []apint.Int) Elem {
	if len(vs) == 0 {
		return SignCount{W: w, N: w + 1}
	}
	min := w
	for _, v := range vs {
		if n := v.NumSignBits(); n < min {
			min = n
		}
	}
	return SignCount{W: w, N: min}
}

func (signBitsDomain) Enum(w uint, fn func(Elem) bool) {
	for n := uint(1); n <= w; n++ {
		if !fn(SignCount{W: w, N: n}) {
			return
		}
	}
}

func (signBitsDomain) Format(a Elem) string { return fmt.Sprint(a.(SignCount).N) }

// predDomain is the two-point lattice of one boolean predicate: true
// means the property is proved for every concrete value (γ = the
// satisfying values), false means nothing is claimed (γ = all values).
// The lattice has no empty element, so Bottom is the proved point.
type predDomain struct {
	name string
	pred func(v apint.Int) bool
}

func (d predDomain) Name() string         { return d.name }
func (d predDomain) Top(w uint) Elem      { return false }
func (d predDomain) Bottom(w uint) Elem   { return true }
func (d predDomain) IsBottom(a Elem) bool { return false }
func (d predDomain) Join(a, b Elem) Elem  { return a.(bool) && b.(bool) }
func (d predDomain) Meet(a, b Elem) Elem  { return a.(bool) || b.(bool) }
func (d predDomain) Leq(a, b Elem) bool   { return a.(bool) || !b.(bool) }
func (d predDomain) Eq(a, b Elem) bool    { return a.(bool) == b.(bool) }
func (d predDomain) Contains(a Elem, v apint.Int) bool {
	return !a.(bool) || d.pred(v)
}

func (d predDomain) Abstract(w uint, vs []apint.Int) Elem {
	for _, v := range vs {
		if !d.pred(v) {
			return false
		}
	}
	return true
}

func (d predDomain) Enum(w uint, fn func(Elem) bool) {
	if fn(false) {
		fn(true)
	}
}

func (d predDomain) Format(a Elem) string { return fmt.Sprint(a.(bool)) }
