package absint

import (
	"testing"

	"dfcheck/internal/apint"
)

var allDomains = []Domain{KnownBits, IntegerRange, SignBits, NonZero, Negative, NonNegative, PowerOfTwo, Tnums, Strides}

// gamma enumerates γ(a) at width w.
func gamma(d Domain, w uint, a Elem) []apint.Int {
	var out []apint.Int
	for x, max := uint64(0), uint64(1)<<w; x < max; x++ {
		if v := apint.New(w, x); d.Contains(a, v) {
			out = append(out, v)
		}
	}
	return out
}

func subset(a, b []apint.Int) bool {
	in := make(map[uint64]bool, len(b))
	for _, v := range b {
		in[v.Uint64()] = true
	}
	for _, v := range a {
		if !in[v.Uint64()] {
			return false
		}
	}
	return true
}

func enumAll(d Domain, w uint) []Elem {
	var out []Elem
	d.Enum(w, func(e Elem) bool { out = append(out, e); return true })
	return out
}

// TestEnumCounts pins each domain's element count: 3^w conflict-free
// known-bits (and tnum) elements, 2^w·(2^w−1)+1 non-empty ranges, w
// sign-bit levels, 2^w singletons plus 4^(w−1) true progressions for
// strides, and the two points of each predicate lattice.
func TestEnumCounts(t *testing.T) {
	for w := uint(1); w <= 3; w++ {
		pow3, pow4 := 1, 1
		for i := uint(0); i < w; i++ {
			pow3 *= 3
		}
		for i := uint(1); i < w; i++ {
			pow4 *= 4
		}
		n := int(uint64(1) << w)
		wantCounts := map[string]int{
			"known bits":    pow3,
			"integer range": n*(n-1) + 1,
			"sign bits":     int(w),
			"non-zero":      2,
			"negative":      2,
			"non-negative":  2,
			"power of two":  2,
			"tnum":          pow3,
			"stride":        n + pow4,
		}
		for _, d := range allDomains {
			if got := len(enumAll(d, w)); got != wantCounts[d.Name()] {
				t.Errorf("%s at w=%d: Enum yields %d elements, want %d", d.Name(), w, got, wantCounts[d.Name()])
			}
		}
	}
}

// TestTopBottom: γ(Top) is everything, and IsBottom identifies exactly
// the empty-concretization elements (the predicate lattices have none).
func TestTopBottom(t *testing.T) {
	for w := uint(1); w <= 3; w++ {
		for _, d := range allDomains {
			if got := len(gamma(d, w, d.Top(w))); got != int(uint64(1)<<w) {
				t.Errorf("%s at w=%d: |γ(Top)| = %d, want %d", d.Name(), w, got, 1<<w)
			}
			bot := d.Bottom(w)
			if d.IsBottom(bot) {
				if got := len(gamma(d, w, bot)); got != 0 {
					t.Errorf("%s at w=%d: IsBottom(Bottom) but |γ(Bottom)| = %d", d.Name(), w, got)
				}
			}
			// Enum must only yield elements with non-empty concretization.
			d.Enum(w, func(e Elem) bool {
				if len(gamma(d, w, e)) == 0 {
					t.Errorf("%s at w=%d: Enum yields %s with empty γ", d.Name(), w, d.Format(e))
					return false
				}
				if d.IsBottom(e) {
					t.Errorf("%s at w=%d: Enum yields bottom element %s", d.Name(), w, d.Format(e))
					return false
				}
				return true
			})
		}
	}
}

// TestBottomContract pins the Bottom/IsBottom contract for every
// registered domain: Bottom is the least element (below everything Enum
// yields), it is a Join identity and a Meet absorber, IsBottom agrees
// exactly with empty concretization, and α of the empty set is Bottom.
func TestBottomContract(t *testing.T) {
	for w := uint(1); w <= 3; w++ {
		for _, d := range allDomains {
			bot := d.Bottom(w)
			if got, want := d.IsBottom(bot), len(gamma(d, w, bot)) == 0; got != want {
				t.Errorf("%s at w=%d: IsBottom(Bottom) = %t but |γ(Bottom)| = 0 is %t",
					d.Name(), w, got, want)
			}
			if !d.Eq(d.Abstract(w, nil), bot) {
				t.Errorf("%s at w=%d: α(∅) = %s, want Bottom %s",
					d.Name(), w, d.Format(d.Abstract(w, nil)), d.Format(bot))
			}
			d.Enum(w, func(e Elem) bool {
				if !d.Leq(bot, e) {
					t.Errorf("%s at w=%d: Bottom is not below %s", d.Name(), w, d.Format(e))
					return false
				}
				if !d.Eq(d.Join(bot, e), e) {
					t.Errorf("%s at w=%d: Join(Bottom, %s) is not an identity", d.Name(), w, d.Format(e))
					return false
				}
				if !d.Eq(d.Join(e, bot), e) {
					t.Errorf("%s at w=%d: Join(%s, Bottom) is not an identity", d.Name(), w, d.Format(e))
					return false
				}
				if !d.Eq(d.Meet(bot, e), bot) || !d.Eq(d.Meet(e, bot), bot) {
					t.Errorf("%s at w=%d: Meet with Bottom does not absorb on %s", d.Name(), w, d.Format(e))
					return false
				}
				return true
			})
		}
	}
}

// TestLeqMatchesGamma: the lattice order must coincide with
// concretization inclusion on every enumerated pair.
func TestLeqMatchesGamma(t *testing.T) {
	for w := uint(1); w <= 2; w++ {
		for _, d := range allDomains {
			es := enumAll(d, w)
			gs := make([][]apint.Int, len(es))
			for i, e := range es {
				gs[i] = gamma(d, w, e)
			}
			for i, a := range es {
				for j, b := range es {
					if got, want := d.Leq(a, b), subset(gs[i], gs[j]); got != want {
						t.Fatalf("%s at w=%d: Leq(%s, %s) = %t, γ-inclusion says %t",
							d.Name(), w, d.Format(a), d.Format(b), got, want)
					}
					if got, want := d.Eq(a, b), i == j; got != want {
						t.Fatalf("%s at w=%d: Eq(%s, %s) = %t on distinct enumerated elements",
							d.Name(), w, d.Format(a), d.Format(b), got)
					}
				}
			}
		}
	}
}

// TestJoinIsLub: Join must be an upper bound of both arguments, and for
// the true lattices it must also be the least one. The wrapped-interval
// poset has no unique least upper bound (two disjoint singletons can be
// covered two incomparable ways around the circle), so for ranges the
// requirement is minimality by concretization size instead.
func TestJoinIsLub(t *testing.T) {
	for w := uint(1); w <= 2; w++ {
		for _, d := range allDomains {
			es := enumAll(d, w)
			for _, a := range es {
				for _, b := range es {
					j := d.Join(a, b)
					if !d.Leq(a, j) || !d.Leq(b, j) {
						t.Fatalf("%s at w=%d: Join(%s, %s) = %s is not an upper bound",
							d.Name(), w, d.Format(a), d.Format(b), d.Format(j))
					}
					jSize := len(gamma(d, w, j))
					for _, c := range es {
						if !d.Leq(a, c) || !d.Leq(b, c) {
							continue
						}
						if d == IntegerRange {
							if len(gamma(d, w, c)) < jSize {
								t.Fatalf("%s at w=%d: Join(%s, %s) = %s beaten by smaller bound %s",
									d.Name(), w, d.Format(a), d.Format(b), d.Format(j), d.Format(c))
							}
						} else if !d.Leq(j, c) {
							t.Fatalf("%s at w=%d: Join(%s, %s) = %s is not least (%s is smaller)",
								d.Name(), w, d.Format(a), d.Format(b), d.Format(j), d.Format(c))
						}
					}
				}
			}
		}
	}
}

// TestMeetSound: γ(Meet(a,b)) must cover γ(a) ∩ γ(b), and — what the
// consistency lint relies on — an empty intersection must surface as an
// element the lint recognizes as dead (bottom for the domains that have
// one). The range meet (LLVM's Intersect) is approximate in general but
// exact for emptiness.
func TestMeetSound(t *testing.T) {
	for w := uint(1); w <= 2; w++ {
		for _, d := range allDomains {
			es := enumAll(d, w)
			for _, a := range es {
				for _, b := range es {
					m := d.Meet(a, b)
					var inter []apint.Int
					for _, v := range gamma(d, w, a) {
						if d.Contains(b, v) {
							inter = append(inter, v)
						}
					}
					if !subset(inter, gamma(d, w, m)) {
						t.Fatalf("%s at w=%d: γ(Meet(%s, %s)) misses part of the intersection",
							d.Name(), w, d.Format(a), d.Format(b))
					}
					if len(inter) == 0 && (d == KnownBits || d == IntegerRange || d == SignBits || d == Tnums || d == Strides) {
						if !d.IsBottom(m) {
							t.Fatalf("%s at w=%d: Meet(%s, %s) has empty intersection but is not bottom",
								d.Name(), w, d.Format(a), d.Format(b))
						}
					}
				}
			}
		}
	}
}

// TestAbstractIsAlpha: Abstract must contain every input value and be at
// least as small (by concretization size) as every enumerated element
// that does — the best-abstraction property the precision grading of the
// verifier depends on.
func TestAbstractIsAlpha(t *testing.T) {
	for w := uint(1); w <= 2; w++ {
		max := uint64(1) << w
		for _, d := range allDomains {
			es := enumAll(d, w)
			for set := uint64(1); set < uint64(1)<<max; set++ {
				var vs []apint.Int
				for x := uint64(0); x < max; x++ {
					if set&(1<<x) != 0 {
						vs = append(vs, apint.New(w, x))
					}
				}
				a := d.Abstract(w, vs)
				for _, v := range vs {
					if !d.Contains(a, v) {
						t.Fatalf("%s at w=%d: Abstract(%v) = %s misses %s", d.Name(), w, vs, d.Format(a), v)
					}
				}
				size := len(gamma(d, w, a))
				for _, e := range es {
					covers := true
					for _, v := range vs {
						if !d.Contains(e, v) {
							covers = false
							break
						}
					}
					if covers && len(gamma(d, w, e)) < size {
						t.Fatalf("%s at w=%d: Abstract(%v) = %s (|γ|=%d) beaten by %s (|γ|=%d)",
							d.Name(), w, vs, d.Format(a), size, d.Format(e), len(gamma(d, w, e)))
					}
				}
			}
		}
	}
}
