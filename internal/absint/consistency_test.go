package absint

import (
	"testing"

	"dfcheck/internal/apint"
	"dfcheck/internal/constrange"
	"dfcheck/internal/harvest"
	"dfcheck/internal/ir"
	"dfcheck/internal/knownbits"
	"dfcheck/internal/llvmport"
	"dfcheck/internal/stride"
	"dfcheck/internal/tnum"
)

// TestSmallestGEExhaustive checks smallestGE against brute force for
// every conflict-free known-bits element and every start value at width
// 4: the result must be the true minimum of γ(k) ∩ [a, 2^w).
func TestSmallestGEExhaustive(t *testing.T) {
	const w = 4
	KnownBits.Enum(w, func(e Elem) bool {
		k := e.(knownbits.Bits)
		for a := uint64(0); a < 1<<w; a++ {
			wantV, wantOK := uint64(0), false
			for x := a; x < 1<<w; x++ {
				if k.Contains(apint.New(w, x)) {
					wantV, wantOK = x, true
					break
				}
			}
			gotV, gotOK := smallestGE(k, a)
			if gotOK != wantOK || (gotOK && gotV != wantV) {
				t.Fatalf("smallestGE(%s, %d) = (%d, %t), want (%d, %t)", k, a, gotV, gotOK, wantV, wantOK)
			}
		}
		return true
	})
}

// TestSignBandExhaustive: signBand(w, s) must be exactly the set of
// values with at least s sign bits.
func TestSignBandExhaustive(t *testing.T) {
	for w := uint(1); w <= 4; w++ {
		for s := uint(1); s <= w; s++ {
			band := signBand(w, s)
			for x := uint64(0); x < 1<<w; x++ {
				v := apint.New(w, x)
				want := v.NumSignBits() >= s
				if got := band.Contains(v); got != want {
					t.Fatalf("signBand(%d, %d) = %s: Contains(%s) = %t, want %t", w, s, band, v, got, want)
				}
			}
		}
	}
}

// TestKSignFeasibleExhaustive checks the known-bits/sign-bits
// feasibility predicate against enumeration at width 4.
func TestKSignFeasibleExhaustive(t *testing.T) {
	const w = 4
	KnownBits.Enum(w, func(e Elem) bool {
		k := e.(knownbits.Bits)
		for s := uint(1); s <= w; s++ {
			want := false
			for x := uint64(0); x < 1<<w; x++ {
				if v := apint.New(w, x); k.Contains(v) && v.NumSignBits() >= s {
					want = true
					break
				}
			}
			if got := kSignFeasible(k, s); got != want {
				t.Fatalf("kSignFeasible(%s, %d) = %t, want %t", k, s, got, want)
			}
		}
		return true
	})
}

// TestKRangeMemberExhaustive: for every known-bits element and every
// non-empty range at width 3, kRangeMember must agree with brute-force
// intersection — both on existence and on validity of the returned value.
func TestKRangeMemberExhaustive(t *testing.T) {
	const w = 3
	mask := uint64(1)<<w - 1
	KnownBits.Enum(w, func(ke Elem) bool {
		k := ke.(knownbits.Bits)
		IntegerRange.Enum(w, func(re Elem) bool {
			r := re.(constrange.Range)
			want := false
			for x := uint64(0); x <= mask; x++ {
				if v := apint.New(w, x); k.Contains(v) && r.Contains(v) {
					want = true
					break
				}
			}
			v, ok := kRangeMember(k, r, 0, mask)
			if ok != want {
				t.Fatalf("kRangeMember(%s, %s) = %t, want %t", k, r, ok, want)
			}
			if ok {
				av := apint.New(w, v)
				if !k.Contains(av) || !r.Contains(av) {
					t.Fatalf("kRangeMember(%s, %s) returned %d, not a common member", k, r, v)
				}
			}
			return true
		})
		return true
	})
}

// buggedFacts analyzes src under the given bug configuration.
func buggedFacts(t *testing.T, src string, bugs llvmport.BugConfig) (*ir.Function, *llvmport.Facts) {
	t.Helper()
	f := ir.MustParse(src)
	an := &llvmport.Analyzer{Bugs: bugs}
	return f, an.Analyze(f)
}

// TestCheckFactsFindsContradiction: bug 1 (the non-zero analysis's bad
// add rule) proves "0 + 0" non-zero while known bits and the range both
// prove the value is exactly zero — a cross-domain contradiction
// CheckFacts must report, with the lint's exactness guarantee that the
// clean analyzer reports nothing on the same expression.
func TestCheckFactsFindsContradiction(t *testing.T) {
	src := "%0:i8 = add 0:i8, 0:i8\ninfer %0"
	f, fa := buggedFacts(t, src, llvmport.BugConfig{NonZeroAdd: true})
	incons, checks := CheckFacts(f, fa)
	if checks == 0 {
		t.Fatalf("no consistency checks ran")
	}
	if len(incons) == 0 {
		t.Fatalf("bug 1 contradiction not reported (known bits %s, range %s)",
			fa.KnownBits(), fa.Range())
	}
	if incons[0].Inst == "" || incons[0].Detail == "" {
		t.Errorf("inconsistency missing inst/detail: %+v", incons[0])
	}

	cf, cfa := buggedFacts(t, src, llvmport.BugConfig{})
	if clean, _ := CheckFacts(cf, cfa); len(clean) != 0 {
		t.Fatalf("clean analyzer flagged inconsistent: %v", clean)
	}
}

// TestCheckFactsPoisonOnlyIsCallerGated documents the division of
// labor: "add nuw 1, 1" at i1 always overflows, so every fact about it
// is vacuously sound, yet the facts genuinely contradict each other
// (non-zero proved, known bits zero) and CheckFacts — which judges only
// the facts — reports that. Suppressing it is the caller's job: the
// verifier lints only tuples with a live concrete image, and the
// comparator checks the expression has a well-defined input first.
func TestCheckFactsPoisonOnlyIsCallerGated(t *testing.T) {
	f := ir.MustParse("%0:i1 = addnuw 1:i1, 1:i1\ninfer %0")
	an := &llvmport.Analyzer{}
	fa := an.Analyze(f)
	if incons, _ := CheckFacts(f, fa); len(incons) == 0 {
		t.Fatalf("expected the vacuous contradiction to be visible to CheckFacts itself")
	}
}

// TestStrideSegMemberExhaustive: stride×segment membership must agree
// with brute force for every canonical element and every inclusive
// interval at width 4.
func TestStrideSegMemberExhaustive(t *testing.T) {
	const w = 4
	Strides.Enum(w, func(e Elem) bool {
		s := e.(stride.S)
		for lo := uint64(0); lo < 1<<w; lo++ {
			for hi := lo; hi < 1<<w; hi++ {
				want := false
				for x := lo; x <= hi; x++ {
					if s.Contains(apint.New(w, x)) {
						want = true
						break
					}
				}
				if got := strideSegMember(s, lo, hi); got != want {
					t.Fatalf("strideSegMember(%s, %d, %d) = %t, want %t", s, lo, hi, got, want)
				}
			}
		}
		return true
	})
}

// TestCheckFactsDomainsFindsContradictions: hand-planted tnum and stride
// facts that exclude everything the analyzer's facts admit must each be
// reported by the extended lint, and the clean interpreters' real facts
// on the same expression must not be.
func TestCheckFactsDomainsFindsContradictions(t *testing.T) {
	src := "%x:i8 = var\n%0:i8 = and %x, 1:i8\ninfer %0"
	f := ir.MustParse(src)
	an := &llvmport.Analyzer{}
	fa := an.Analyze(f)

	if incons, checks := CheckFactsDomains(f, fa, AnalyzeExtra(f)); len(incons) != 0 {
		t.Fatalf("clean extra facts flagged inconsistent: %v", incons)
	} else if checks <= 3 {
		t.Fatalf("extended lint ran only %d checks", checks)
	}

	// The analyzer proves the top seven bits zero; a tnum claiming the
	// value is exactly 2 and a stride claiming v ≡ 2 (mod 4) both
	// contradict that.
	root := f.Root
	badTnum := ExtraFacts{Tnum: map[*ir.Inst]tnum.T{root: tnum.Const(apint.New(8, 2))}}
	if incons, _ := CheckFactsDomains(f, fa, badTnum); len(incons) == 0 {
		t.Fatalf("planted tnum contradiction not reported (known bits %s)", fa.KnownBits())
	}
	badStride := ExtraFacts{Stride: map[*ir.Inst]stride.S{root: stride.Make(8, 2, 4)}}
	if incons, _ := CheckFactsDomains(f, fa, badStride); len(incons) == 0 {
		t.Fatalf("planted stride contradiction not reported (range %s)", fa.Range())
	}
}

// TestModernAnalyzerConsistentOnCorpus is the corpus property test: the
// Modern analyzer's facts must pass the cross-domain lint on every
// expression of a 1000-expression harvested corpus, without any solver
// involvement.
func TestModernAnalyzerConsistentOnCorpus(t *testing.T) {
	corpus := harvest.Generate(harvest.Config{
		Seed:     7,
		NumExprs: 1000,
		MaxInsts: 6,
		Widths:   []harvest.WidthWeight{{Width: 4, Weight: 2}, {Width: 8, Weight: 2}, {Width: 16, Weight: 1}},
	})
	if len(corpus) < 1000 {
		t.Fatalf("corpus has %d exprs, want 1000", len(corpus))
	}
	an := &llvmport.Analyzer{Modern: true}
	totalChecks := 0
	for _, e := range corpus {
		fa := an.Analyze(e.F)
		// The extended lint cross-checks the clean tnum and stride
		// interpreters against the analyzer on every expression too.
		incons, checks := CheckFactsDomains(e.F, fa, AnalyzeExtra(e.F))
		totalChecks += checks
		if len(incons) != 0 {
			t.Fatalf("%s: modern analyzer inconsistent on\n%s\n%v", e.Name, e.F, incons)
		}
	}
	if totalChecks == 0 {
		t.Fatalf("no consistency checks ran over the corpus")
	}
}
