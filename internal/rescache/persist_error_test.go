package rescache

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// A kill (or full disk) mid-write leaves a truncated file. Loading it
// must fail cleanly and leave the in-memory cache exactly as it was —
// Load validates the whole document before committing anything.
func TestLoadTruncatedFileLeavesCacheIntact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.cache")
	full := New()
	for key, e := range sampleEntries() {
		full.Put(key, e)
	}
	if err := full.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	c := New()
	c.Put(k("warm"), sampleEntries()[Key{Expr: "e1", Analysis: "sign bits", Budget: 1, Config: "c"}])
	if err := c.LoadFile(path); err == nil {
		t.Fatal("loading a truncated file succeeded")
	}
	if c.Len() != 1 {
		t.Fatalf("failed load changed the cache: %d entries, want 1", c.Len())
	}
	if _, ok := c.Get(k("warm")); !ok {
		t.Fatal("failed load evicted pre-existing entry")
	}
}

// SaveFile against an unwritable destination must return the error (the
// CLI warns instead of silently losing the campaign's oracle work) and
// must not leave a temp file behind.
func TestSaveFileUnwritableDir(t *testing.T) {
	dir := t.TempDir()
	// A path whose parent is a regular file fails for every uid (a
	// read-only directory would not stop root, which CI may run as).
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := New()
	for key, e := range sampleEntries() {
		c.Put(key, e)
	}
	path := filepath.Join(blocker, "results.cache")
	if err := c.SaveFile(path); err == nil {
		t.Fatal("SaveFile into non-directory succeeded")
	}

	if os.Getuid() != 0 {
		ro := filepath.Join(dir, "ro")
		if err := os.Mkdir(ro, 0o555); err != nil {
			t.Fatal(err)
		}
		if err := c.SaveFile(filepath.Join(ro, "results.cache")); err == nil {
			t.Fatal("SaveFile into read-only dir succeeded")
		}
		ents, err := os.ReadDir(ro)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), ".rescache-") {
				t.Fatalf("temp file %s left behind", e.Name())
			}
		}
	}
}
