package rescache

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"dfcheck/internal/apint"
	"dfcheck/internal/constrange"
	"dfcheck/internal/knownbits"
	"dfcheck/internal/oracle"
)

// The on-disk format is one JSON document: a version header plus the
// entries, each carrying its key, a kind tag, and a width-tagged integer
// encoding of the result — the analog of the artifact's dump.rdb, but
// text so a cache file is diffable and hand-inspectable. Save writes
// entries in sorted key order, so saving an unchanged cache is
// byte-stable.
//
// Load validates everything (version, kinds, widths) before committing,
// and returns an error on any mismatch; callers treat a failed load as a
// cold cache rather than crashing.

// FormatVersion identifies the cache file layout. Loading any other
// version fails, forcing a cold start instead of misinterpreting results.
const FormatVersion = 1

const formatTool = "dfcheck-rescache"

type wireInt struct {
	W uint   `json:"w"`
	V uint64 `json:"v"`
}

func toWire(v apint.Int) wireInt { return wireInt{W: v.Width(), V: v.Uint64()} }

func (wi wireInt) decode() (apint.Int, error) {
	if wi.W == 0 || wi.W > apint.MaxWidth {
		return apint.Int{}, fmt.Errorf("rescache: invalid width %d", wi.W)
	}
	return apint.New(wi.W, wi.V), nil
}

// Entry kinds, one per oracle result type.
const (
	kindKnownBits = "knownbits"
	kindSignBits  = "signbits"
	kindBool      = "bool"
	kindRange     = "range"
	kindDemanded  = "demanded"
)

type wireEntry struct {
	Expr     string `json:"expr"`
	Analysis string `json:"analysis"`
	Budget   int64  `json:"budget,omitempty"`
	Config   string `json:"config,omitempty"`

	Kind      string `json:"kind"`
	ElapsedNs int64  `json:"elapsed_ns"`
	Feasible  bool   `json:"feasible"`
	Exhausted bool   `json:"exhausted,omitempty"`

	// Kind-specific payloads.
	Zero        *wireInt           `json:"zero,omitempty"` // knownbits
	One         *wireInt           `json:"one,omitempty"`  // knownbits
	NumSignBits uint               `json:"sign_bits,omitempty"`
	Proved      bool               `json:"proved,omitempty"`
	Lo          *wireInt           `json:"lo,omitempty"` // range
	Hi          *wireInt           `json:"hi,omitempty"` // range
	Demanded    map[string]wireInt `json:"demanded,omitempty"`
}

type wireFile struct {
	Tool    string      `json:"tool"`
	Version int         `json:"version"`
	Entries []wireEntry `json:"entries"`
}

// encodeEntry flattens one cache entry; unknown value types are skipped
// (reported via the bool) rather than failing the whole save.
func encodeEntry(k Key, e Entry) (wireEntry, bool) {
	we := wireEntry{
		Expr:      k.Expr,
		Analysis:  k.Analysis,
		Budget:    k.Budget,
		Config:    k.Config,
		ElapsedNs: e.Elapsed.Nanoseconds(),
	}
	switch v := e.Value.(type) {
	case oracle.KnownBitsResult:
		we.Kind = kindKnownBits
		we.Feasible, we.Exhausted = v.Feasible, v.Exhausted
		z, o := toWire(v.Bits.Zero), toWire(v.Bits.One)
		we.Zero, we.One = &z, &o
	case oracle.SignBitsResult:
		we.Kind = kindSignBits
		we.Feasible, we.Exhausted = v.Feasible, v.Exhausted
		we.NumSignBits = v.NumSignBits
	case oracle.BoolResult:
		we.Kind = kindBool
		we.Feasible, we.Exhausted = v.Feasible, v.Exhausted
		we.Proved = v.Proved
	case oracle.RangeResult:
		we.Kind = kindRange
		we.Feasible, we.Exhausted = v.Feasible, v.Exhausted
		lo, hi := toWire(v.Range.Lower()), toWire(v.Range.Upper())
		we.Lo, we.Hi = &lo, &hi
	case oracle.DemandedBitsResult:
		we.Kind = kindDemanded
		we.Feasible, we.Exhausted = v.Feasible, v.Exhausted
		we.Demanded = make(map[string]wireInt, len(v.Demanded))
		for name, mask := range v.Demanded {
			we.Demanded[name] = toWire(mask)
		}
	default:
		return wireEntry{}, false
	}
	return we, true
}

func decodeRange(lo, hi *wireInt) (constrange.Range, error) {
	if lo == nil || hi == nil {
		return constrange.Range{}, fmt.Errorf("rescache: range entry missing bounds")
	}
	l, err := lo.decode()
	if err != nil {
		return constrange.Range{}, err
	}
	h, err := hi.decode()
	if err != nil {
		return constrange.Range{}, err
	}
	if l.Width() != h.Width() {
		return constrange.Range{}, fmt.Errorf("rescache: range bound widths %d vs %d", l.Width(), h.Width())
	}
	if l.Eq(h) {
		// The two degenerate encodings of constrange.
		switch {
		case l.IsAllOnes():
			return constrange.Full(l.Width()), nil
		case l.IsZero():
			return constrange.Empty(l.Width()), nil
		default:
			return constrange.Range{}, fmt.Errorf("rescache: ambiguous range bounds [%v,%v)", l, h)
		}
	}
	return constrange.New(l, h), nil
}

func decodeEntry(we wireEntry) (Key, Entry, error) {
	k := Key{Expr: we.Expr, Analysis: we.Analysis, Budget: we.Budget, Config: we.Config}
	if we.Expr == "" || we.Analysis == "" {
		return k, Entry{}, fmt.Errorf("rescache: entry missing key fields")
	}
	out := oracle.Outcome{Feasible: we.Feasible, Exhausted: we.Exhausted}
	e := Entry{Elapsed: time.Duration(we.ElapsedNs)}
	switch we.Kind {
	case kindKnownBits:
		if we.Zero == nil || we.One == nil {
			return k, Entry{}, fmt.Errorf("rescache: knownbits entry missing masks")
		}
		z, err := we.Zero.decode()
		if err != nil {
			return k, Entry{}, err
		}
		o, err := we.One.decode()
		if err != nil {
			return k, Entry{}, err
		}
		if z.Width() != o.Width() {
			return k, Entry{}, fmt.Errorf("rescache: knownbits mask widths %d vs %d", z.Width(), o.Width())
		}
		e.Value = oracle.KnownBitsResult{Outcome: out, Bits: knownbits.Make(z, o)}
	case kindSignBits:
		e.Value = oracle.SignBitsResult{Outcome: out, NumSignBits: we.NumSignBits}
	case kindBool:
		e.Value = oracle.BoolResult{Outcome: out, Proved: we.Proved}
	case kindRange:
		r, err := decodeRange(we.Lo, we.Hi)
		if err != nil {
			return k, Entry{}, err
		}
		e.Value = oracle.RangeResult{Outcome: out, Range: r}
	case kindDemanded:
		dem := make(map[string]apint.Int, len(we.Demanded))
		for name, wi := range we.Demanded {
			mask, err := wi.decode()
			if err != nil {
				return k, Entry{}, err
			}
			dem[name] = mask
		}
		e.Value = oracle.DemandedBitsResult{Outcome: out, Demanded: dem}
	default:
		return k, Entry{}, fmt.Errorf("rescache: unknown entry kind %q", we.Kind)
	}
	return k, e, nil
}

// Save writes the cache in the versioned on-disk format, entries in
// sorted key order.
func (c *Cache) Save(w io.Writer) error {
	snap := c.snapshot()
	keys := make([]Key, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Expr != b.Expr {
			return a.Expr < b.Expr
		}
		if a.Analysis != b.Analysis {
			return a.Analysis < b.Analysis
		}
		if a.Budget != b.Budget {
			return a.Budget < b.Budget
		}
		return a.Config < b.Config
	})
	wf := wireFile{Tool: formatTool, Version: FormatVersion, Entries: make([]wireEntry, 0, len(keys))}
	for _, k := range keys {
		if we, ok := encodeEntry(k, snap[k]); ok {
			wf.Entries = append(wf.Entries, we)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(wf)
}

// Load merges entries from a cache file written by Save. Nothing is
// committed unless the whole file validates: on any error — malformed
// JSON, a version or tool mismatch, an invalid entry — the cache is left
// exactly as it was, so callers can fall back to running cold.
func (c *Cache) Load(r io.Reader) error {
	var wf wireFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&wf); err != nil {
		return fmt.Errorf("rescache: corrupt cache file: %w", err)
	}
	if wf.Tool != formatTool {
		return fmt.Errorf("rescache: not a %s file (tool=%q)", formatTool, wf.Tool)
	}
	if wf.Version != FormatVersion {
		return fmt.Errorf("rescache: cache file version %d, want %d", wf.Version, FormatVersion)
	}
	loaded := make(map[Key]Entry, len(wf.Entries))
	for i, we := range wf.Entries {
		k, e, err := decodeEntry(we)
		if err != nil {
			return fmt.Errorf("rescache: entry %d: %w", i, err)
		}
		loaded[k] = e
	}
	c.commit(loaded)
	return nil
}

// SaveFile writes the cache to path atomically: the snapshot is encoded
// into a fresh unique temp file in path's directory and renamed into
// place, the same discipline as internal/campaign's checkpoints. A
// unique temp name (rather than the fixed path+".tmp" this used to use)
// means two concurrent SaveFile calls — e.g. a periodic saver racing a
// shutdown flush while other goroutines keep writing shards — cannot
// interleave bytes into one file; each rename installs one complete,
// individually valid snapshot, and the loser's snapshot simply wins.
// A reader that crashes us mid-save sees either the old file or the new
// one, never a torn mix (plus at worst a stray ".rescache-*" temp).
func (c *Cache) SaveFile(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".rescache-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := c.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadFile merges entries from the cache file at path. A missing file is
// reported via os.IsNotExist on the returned error.
func (c *Cache) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.Load(f)
}
