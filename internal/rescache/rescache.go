// Package rescache memoizes oracle results across expressions and runs.
// It is the in-process analog of the original artifact's Redis store: the
// paper's corpus statistics (§3.1) show 71.6% of harvested expressions
// recur, and every recurrence would otherwise re-pay dozens of SAT
// queries. Results are keyed by the expression's canonical form
// (internal/canon), the analysis name, the solver budget, and the
// compiler-under-test configuration, and each entry carries the original
// computation time so that cached reports replay deterministic timings.
//
// The cache is safe for concurrent use by the comparator's worker pool,
// and persists to a versioned on-disk format (persist.go) — the analog of
// the artifact's dump.rdb — so cmd/precision-table and cmd/dfcheck-fuzz
// amortize oracle work across process runs via their -cache flag.
package rescache

import (
	"sync"
	"time"
)

// Key identifies one memoized oracle result.
type Key struct {
	// Expr is the canonical Souper text of the expression (canon.Canon.Key).
	Expr string
	// Analysis is the analysis name (a harvest.Analysis value).
	Analysis string
	// Budget is the per-query solver conflict budget the result was
	// computed under.
	Budget int64
	// Config encodes the comparator configuration (bug injection, modern
	// mode, expression timeout) the result was computed under.
	Config string
}

// Entry is a memoized result: one of the oracle result types
// (oracle.KnownBitsResult, oracle.RangeResult, ...) plus the time the
// original computation took. Replaying Elapsed on hits keeps cached
// reports byte-identical across runs.
type Entry struct {
	Value   any
	Elapsed time.Duration
}

// Stats counts cache traffic.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// HitRate returns the hit fraction in [0,1], or 0 with no traffic.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a concurrency-safe result cache.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]Entry
	stats   Stats
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{entries: make(map[Key]Entry)}
}

// Get returns the entry for k, counting a hit or miss.
func (c *Cache) Get(k Key) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if ok {
		c.stats.Hits++
	} else {
		c.stats.Misses++
	}
	return e, ok
}

// Put stores (or replaces) the entry for k.
func (c *Cache) Put(k Key, e Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[k] = e
}

// Len returns the number of stored entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the cumulative hit/miss counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ResetStats zeroes the hit/miss counters, keeping the entries.
func (c *Cache) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = Stats{}
}

// snapshot copies the entry map for persistence.
func (c *Cache) snapshot() map[Key]Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[Key]Entry, len(c.entries))
	for k, e := range c.entries {
		out[k] = e
	}
	return out
}

// commit installs loaded entries, replacing any existing ones with the
// same key. It is called only after a load fully validates, so a corrupt
// file never leaves the cache half-populated.
func (c *Cache) commit(entries map[Key]Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range entries {
		c.entries[k] = e
	}
}
