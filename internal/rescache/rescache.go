// Package rescache memoizes oracle results across expressions and runs.
// It is the in-process analog of the original artifact's Redis store: the
// paper's corpus statistics (§3.1) show 71.6% of harvested expressions
// recur, and every recurrence would otherwise re-pay dozens of SAT
// queries. Results are keyed by the expression's canonical form
// (internal/canon), the analysis name, the solver budget, and the
// compiler-under-test configuration, and each entry carries the original
// computation time so that cached reports replay deterministic timings.
//
// The cache is safe for concurrent use by the comparator's worker pool
// and the fact service's dispatcher. Internally it is lock-striped:
// entries live in a power-of-two number of shards selected by a hash of
// the key, each shard guarded by its own sync.RWMutex with a read-lock
// fast path for lookups, and the hit/miss counters are lock-free
// atomics. Under concurrent load the shards keep lookups from
// serializing behind one global mutex (DESIGN §12); with a single
// goroutine the behavior is identical to the old global-mutex cache.
//
// The cache persists to a versioned on-disk format (persist.go) — the
// analog of the artifact's dump.rdb — so cmd/precision-table and
// cmd/dfcheck-fuzz amortize oracle work across process runs via their
// -cache flag. The wire format is shard-oblivious: Save flattens all
// shards into one sorted entry list, so files written by any shard count
// load into any other.
package rescache

import (
	"sync"
	"sync/atomic"
	"time"
)

// Key identifies one memoized oracle result.
type Key struct {
	// Expr is the canonical Souper text of the expression (canon.Canon.Key).
	Expr string
	// Analysis is the analysis name (a harvest.Analysis value).
	Analysis string
	// Budget is the per-query solver conflict budget the result was
	// computed under.
	Budget int64
	// Config encodes the comparator configuration (bug injection, modern
	// mode, expression timeout) the result was computed under.
	Config string
}

// Entry is a memoized result: one of the oracle result types
// (oracle.KnownBitsResult, oracle.RangeResult, ...) plus the time the
// original computation took. Replaying Elapsed on hits keeps cached
// reports byte-identical across runs.
type Entry struct {
	Value   any
	Elapsed time.Duration
}

// Stats counts cache traffic.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// HitRate returns the hit fraction in [0,1], or 0 with no traffic.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// DefaultShards is the shard count New uses. 64 stripes keep the
// per-shard collision probability low for worker pools in the tens of
// goroutines while costing only 64 small maps when idle.
const DefaultShards = 64

// shard is one lock stripe. Lookups take the read lock, so concurrent
// hits on the same stripe do not serialize. Hit/miss counters live on
// the shard (one lock-free add per lookup), so per-stripe traffic is
// observable — the totals Stats reports are just their sum.
type shard struct {
	mu      sync.RWMutex
	entries map[Key]Entry
	hits    atomic.Uint64
	misses  atomic.Uint64
}

// Cache is a concurrency-safe, lock-striped result cache.
type Cache struct {
	shards []*shard
	mask   uint64 // len(shards)-1; len is a power of two
}

// New returns an empty cache with DefaultShards stripes.
func New() *Cache { return NewSharded(DefaultShards) }

// NewSharded returns an empty cache with n lock stripes, rounded up to
// the next power of two. n < 1 selects a single stripe (the old
// global-mutex behavior, useful for ablation).
func NewSharded(n int) *Cache {
	if n < 1 {
		n = 1
	}
	np := 1
	for np < n {
		np <<= 1
	}
	c := &Cache{shards: make([]*shard, np), mask: uint64(np - 1)}
	for i := range c.shards {
		c.shards[i] = &shard{entries: make(map[Key]Entry)}
	}
	return c
}

// shardHash distributes keys across stripes. It intentionally samples a
// handful of bytes instead of digesting the whole key: canonical
// expression texts are tens to hundreds of bytes, and a full FNV pass
// would cost as much as the map lookup it is sharding. The sampled
// positions mix the head (analysis name prefix differences), the tail
// (canonical value-number suffixes differ even for same-length exprs),
// and the lengths, which spreads the real key population well (the
// shard-occupancy gauge in factsvc makes skew observable).
func shardHash(k Key) uint64 {
	h := uint64(len(k.Expr))<<6 ^ uint64(len(k.Analysis)) ^ uint64(k.Budget)
	if n := len(k.Expr); n > 0 {
		h ^= uint64(k.Expr[0]) << 8
		h ^= uint64(k.Expr[n-1]) << 16
		h ^= uint64(k.Expr[n/2]) << 24
		if n > 4 {
			h ^= uint64(k.Expr[n-2]) << 32
			h ^= uint64(k.Expr[1]) << 40
		}
	}
	if n := len(k.Analysis); n > 0 {
		h ^= uint64(k.Analysis[0]) << 4
		h ^= uint64(k.Analysis[n-1]) << 12
	}
	// Final avalanche so the low bits (the shard index) see every
	// sampled byte. Two multiply-xor-shift rounds of splitmix64.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

func (c *Cache) shardFor(k Key) *shard {
	return c.shards[shardHash(k)&c.mask]
}

// Get returns the entry for k, counting a hit or miss on k's shard.
func (c *Cache) Get(k Key) (Entry, bool) {
	s := c.shardFor(k)
	s.mu.RLock()
	e, ok := s.entries[k]
	s.mu.RUnlock()
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return e, ok
}

// Put stores (or replaces) the entry for k.
func (c *Cache) Put(k Key, e Entry) {
	s := c.shardFor(k)
	s.mu.Lock()
	s.entries[k] = e
	s.mu.Unlock()
}

// Len returns the number of stored entries.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.RLock()
		n += len(s.entries)
		s.mu.RUnlock()
	}
	return n
}

// Shards returns the number of lock stripes.
func (c *Cache) Shards() int { return len(c.shards) }

// ShardLens returns the entry count per stripe, for occupancy/skew
// accounting (the factsvc_shard_occupancy gauge).
func (c *Cache) ShardLens() []int {
	out := make([]int, len(c.shards))
	for i, s := range c.shards {
		s.mu.RLock()
		out[i] = len(s.entries)
		s.mu.RUnlock()
	}
	return out
}

// ShardStat is one stripe's occupancy and traffic, for the per-shard
// rescache gauges on /metricsz.
type ShardStat struct {
	Len    int
	Hits   uint64
	Misses uint64
}

// HitRate returns the stripe's hit fraction in [0,1], or 0 with no
// traffic.
func (s ShardStat) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// ShardStats returns per-stripe occupancy and hit/miss counters.
func (c *Cache) ShardStats() []ShardStat {
	out := make([]ShardStat, len(c.shards))
	for i, s := range c.shards {
		s.mu.RLock()
		out[i].Len = len(s.entries)
		s.mu.RUnlock()
		out[i].Hits = s.hits.Load()
		out[i].Misses = s.misses.Load()
	}
	return out
}

// Stats returns the cumulative hit/miss counters (the sum over shards).
func (c *Cache) Stats() Stats {
	var st Stats
	for _, s := range c.shards {
		st.Hits += s.hits.Load()
		st.Misses += s.misses.Load()
	}
	return st
}

// ResetStats zeroes the hit/miss counters, keeping the entries.
func (c *Cache) ResetStats() {
	for _, s := range c.shards {
		s.hits.Store(0)
		s.misses.Store(0)
	}
}

// snapshot copies the entry map for persistence. Shards are copied one
// at a time, so a snapshot taken during concurrent writes is a
// point-in-time view per shard rather than globally — fine for a
// memoization cache, where every entry is individually valid.
func (c *Cache) snapshot() map[Key]Entry {
	out := make(map[Key]Entry, c.Len())
	for _, s := range c.shards {
		s.mu.RLock()
		for k, e := range s.entries {
			out[k] = e
		}
		s.mu.RUnlock()
	}
	return out
}

// commit installs loaded entries, replacing any existing ones with the
// same key. It is called only after a load fully validates, so a corrupt
// file never leaves the cache half-populated.
func (c *Cache) commit(entries map[Key]Entry) {
	for k, e := range entries {
		c.Put(k, e)
	}
}
