package rescache

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dfcheck/internal/oracle"
)

func TestNewShardedRoundsToPowerOfTwo(t *testing.T) {
	cases := []struct{ n, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {17, 32}, {64, 64}, {100, 128},
	}
	for _, tc := range cases {
		if got := NewSharded(tc.n).Shards(); got != tc.want {
			t.Errorf("NewSharded(%d).Shards() = %d, want %d", tc.n, got, tc.want)
		}
	}
	if got := New().Shards(); got != DefaultShards {
		t.Errorf("New().Shards() = %d, want %d", got, DefaultShards)
	}
}

// A single-stripe cache must behave exactly like the old global-mutex
// cache: every operation works, and ShardLens sums to Len.
func TestSingleShardEquivalence(t *testing.T) {
	c := NewSharded(1)
	for key, e := range sampleEntries() {
		c.Put(key, e)
	}
	for key, e := range sampleEntries() {
		got, ok := c.Get(key)
		if !ok || got.Elapsed != e.Elapsed {
			t.Fatalf("single-shard Get(%+v) = %+v, %v", key, got, ok)
		}
	}
	lens := c.ShardLens()
	if len(lens) != 1 || lens[0] != c.Len() {
		t.Fatalf("ShardLens = %v, Len = %d", lens, c.Len())
	}
}

// The shard hash must actually spread a realistic key population: with
// many more keys than stripes, no stripe may stay empty-heavy. (The keys
// mimic canonical Souper texts: shared prefix, differing bodies.)
func TestShardLensSpread(t *testing.T) {
	c := NewSharded(8)
	const n = 4096
	for i := 0; i < n; i++ {
		key := Key{
			Expr:     fmt.Sprintf("%%0:i8 = add 1:i8, %%x%d\ninfer %%0 ; v%d", i, i*7),
			Analysis: "known bits",
			Budget:   100,
		}
		c.Put(key, Entry{Value: oracle.BoolResult{}})
	}
	lens := c.ShardLens()
	total, max := 0, 0
	for _, l := range lens {
		total += l
		if l > max {
			max = l
		}
	}
	if total != n || total != c.Len() {
		t.Fatalf("ShardLens sums to %d, want %d (Len %d)", total, n, c.Len())
	}
	// Perfect balance is n/8 = 512 per stripe; reject gross skew (any
	// stripe holding more than 3x its fair share).
	if max > 3*n/8 {
		t.Fatalf("shard skew: max stripe holds %d of %d (lens %v)", max, n, lens)
	}
}

// The satellite race test: concurrent Get/Put across shards while other
// goroutines Save and Load the same cache. Run under -race this proves
// the striped locking and the snapshot/commit paths are data-race free;
// run normally it proves every concurrently-taken snapshot is a valid,
// loadable file (each entry individually complete — no torn entries).
func TestConcurrentGetPutSaveAcrossShards(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "results.cache")
	c := New()
	// Pre-populate so early saves have content.
	for key, e := range sampleEntries() {
		c.Put(key, e)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := k(fmt.Sprintf("expr-%d-%d", g, i%64))
				if _, ok := c.Get(key); !ok {
					c.Put(key, Entry{
						Value:   oracle.BoolResult{Outcome: oracle.Outcome{Feasible: true}, Proved: i%2 == 0},
						Elapsed: time.Duration(i) * time.Microsecond,
					})
				}
			}
		}(g)
	}
	// Saver + loader: every snapshot written during the write storm must
	// load cleanly into a fresh cache.
	for round := 0; round < 20; round++ {
		if err := c.SaveFile(path); err != nil {
			t.Fatalf("round %d: SaveFile: %v", round, err)
		}
		fresh := New()
		if err := fresh.LoadFile(path); err != nil {
			t.Fatalf("round %d: snapshot does not load: %v", round, err)
		}
		if fresh.Len() == 0 {
			t.Fatalf("round %d: snapshot empty", round)
		}
	}
	close(stop)
	wg.Wait()

	// Final full round trip.
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	fresh := New()
	if err := fresh.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != c.Len() {
		t.Fatalf("final snapshot has %d entries, cache has %d", fresh.Len(), c.Len())
	}
}

// Crash-mid-save: a process killed between CreateTemp and Rename leaves
// a stray temp file but never a torn cache file. Simulate the stray (a
// half-written temp as the dying save would leave) and assert (a) the
// installed cache file is untouched and still loads, and (b) a
// subsequent SaveFile with its own unique temp is not confused by the
// debris and installs a complete snapshot.
func TestCrashMidSaveLeavesLoadableFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "results.cache")

	c := New()
	for key, e := range sampleEntries() {
		c.Put(key, e)
	}
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// The crash: a torn temp file from an interrupted save.
	stray := filepath.Join(dir, ".rescache-crashed123")
	if err := os.WriteFile(stray, before[:len(before)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	// The installed file is unaffected by the crashed writer.
	got := New()
	if err := got.LoadFile(path); err != nil {
		t.Fatalf("cache file unreadable after simulated crash: %v", err)
	}
	if got.Len() != c.Len() {
		t.Fatalf("loaded %d entries, want %d", got.Len(), c.Len())
	}

	// The next save writes through its own temp and wins cleanly.
	c.Put(k("post-crash"), Entry{Value: oracle.BoolResult{Proved: true}})
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got2 := New()
	if err := got2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if got2.Len() != c.Len() {
		t.Fatalf("post-crash save has %d entries, want %d", got2.Len(), c.Len())
	}
	if _, ok := got2.Get(k("post-crash")); !ok {
		t.Fatal("post-crash entry missing from snapshot")
	}
}
