package rescache

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"dfcheck/internal/apint"
	"dfcheck/internal/constrange"
	"dfcheck/internal/knownbits"
	"dfcheck/internal/oracle"
)

func k(expr string) Key {
	return Key{Expr: expr, Analysis: "known bits", Budget: 100, Config: "cfg"}
}

func sampleEntries() map[Key]Entry {
	feasible := oracle.Outcome{Feasible: true}
	return map[Key]Entry{
		{Expr: "e1", Analysis: "known bits", Budget: 1, Config: "c"}: {
			Value: oracle.KnownBitsResult{
				Outcome: feasible,
				Bits:    knownbits.Make(apint.New(8, 0xf0), apint.New(8, 0x01)),
			},
			Elapsed: 123 * time.Microsecond,
		},
		{Expr: "e1", Analysis: "sign bits", Budget: 1, Config: "c"}: {
			Value:   oracle.SignBitsResult{Outcome: feasible, NumSignBits: 3},
			Elapsed: 45 * time.Microsecond,
		},
		{Expr: "e2", Analysis: "non-zero", Budget: 1, Config: "c"}: {
			Value:   oracle.BoolResult{Outcome: feasible, Proved: true},
			Elapsed: 7 * time.Microsecond,
		},
		{Expr: "e2", Analysis: "integer range", Budget: 1, Config: "c"}: {
			Value: oracle.RangeResult{
				Outcome: feasible,
				Range:   constrange.New(apint.New(8, 3), apint.New(8, 200)),
			},
			Elapsed: 99 * time.Microsecond,
		},
		{Expr: "e2", Analysis: "integer range", Budget: 1, Config: "full"}: {
			Value:   oracle.RangeResult{Outcome: feasible, Range: constrange.Full(8)},
			Elapsed: 1 * time.Microsecond,
		},
		{Expr: "e3", Analysis: "integer range", Budget: 1, Config: "c"}: {
			Value:   oracle.RangeResult{Outcome: oracle.Outcome{}, Range: constrange.Empty(8)},
			Elapsed: 2 * time.Microsecond,
		},
		{Expr: "e3", Analysis: "demanded bits", Budget: 1, Config: "c"}: {
			Value: oracle.DemandedBitsResult{
				Outcome: feasible,
				Demanded: map[string]apint.Int{
					"x0": apint.New(8, 0xff),
					"x1": apint.New(8, 0x0f),
				},
			},
			Elapsed: 88 * time.Microsecond,
		},
		{Expr: "e4", Analysis: "known bits", Budget: 2, Config: "c"}: {
			Value: oracle.KnownBitsResult{
				Outcome: oracle.Outcome{Feasible: true, Exhausted: true},
				Bits:    knownbits.Unknown(13),
			},
			Elapsed: 5 * time.Second,
		},
	}
}

func TestGetPutStats(t *testing.T) {
	c := New()
	if _, ok := c.Get(k("missing")); ok {
		t.Fatal("empty cache returned a hit")
	}
	e := Entry{Value: oracle.BoolResult{Proved: true}, Elapsed: time.Millisecond}
	c.Put(k("a"), e)
	got, ok := c.Get(k("a"))
	if !ok || !reflect.DeepEqual(got, e) {
		t.Fatalf("Get = %+v, %v; want %+v, true", got, ok, e)
	}
	if _, ok := c.Get(Key{Expr: "a", Analysis: "known bits", Budget: 100, Config: "other"}); ok {
		t.Fatal("different config must not hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses", st)
	}
	if got, want := st.HitRate(), 1.0/3; got != want {
		t.Fatalf("hit rate = %v, want %v", got, want)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	c.ResetStats()
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("stats after reset = %+v", st)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := k(fmt.Sprintf("expr-%d", i%17))
				if _, ok := c.Get(key); !ok {
					c.Put(key, Entry{Value: oracle.SignBitsResult{NumSignBits: uint(g)}})
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 17 {
		t.Fatalf("Len = %d, want 17", c.Len())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c := New()
	want := sampleEntries()
	for key, e := range want {
		c.Put(key, e)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}

	c2 := New()
	if err := c2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if c2.Len() != len(want) {
		t.Fatalf("loaded %d entries, want %d", c2.Len(), len(want))
	}
	for key, e := range want {
		got, ok := c2.Get(key)
		if !ok {
			t.Fatalf("key %+v missing after round trip", key)
		}
		if !reflect.DeepEqual(got, e) {
			t.Errorf("key %+v: got %+v, want %+v", key, got, e)
		}
	}
}

func TestSaveByteStable(t *testing.T) {
	c := New()
	for key, e := range sampleEntries() {
		c.Put(key, e)
	}
	var a, b bytes.Buffer
	if err := c.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of the same cache differ")
	}
}

// rejectingLoad asserts that loading data fails and leaves the cache
// exactly as it was.
func rejectingLoad(t *testing.T, data string, wantErr string) {
	t.Helper()
	c := New()
	c.Put(k("pre-existing"), Entry{Value: oracle.BoolResult{Proved: true}})
	err := c.Load(strings.NewReader(data))
	if err == nil {
		t.Fatalf("Load(%q) succeeded, want error containing %q", data, wantErr)
	}
	if !strings.Contains(err.Error(), wantErr) {
		t.Fatalf("Load error %q does not contain %q", err, wantErr)
	}
	if c.Len() != 1 {
		t.Fatalf("failed load changed the cache: Len = %d", c.Len())
	}
	if _, ok := c.Get(k("pre-existing")); !ok {
		t.Fatal("failed load evicted an existing entry")
	}
}

func TestLoadRejectsCorruptFile(t *testing.T) {
	rejectingLoad(t, "not json at all {", "corrupt")
	rejectingLoad(t, `{"tool":"something-else","version":1,"entries":[]}`, "not a dfcheck-rescache file")
	rejectingLoad(t, `{"tool":"dfcheck-rescache","version":99,"entries":[]}`, "version 99")
	rejectingLoad(t,
		`{"tool":"dfcheck-rescache","version":1,"entries":[{"expr":"e","analysis":"known bits","kind":"nonsense"}]}`,
		"unknown entry kind")
	rejectingLoad(t,
		`{"tool":"dfcheck-rescache","version":1,"entries":[{"expr":"e","analysis":"known bits","kind":"knownbits","zero":{"w":900,"v":0},"one":{"w":900,"v":0}}]}`,
		"invalid width")
	rejectingLoad(t,
		`{"tool":"dfcheck-rescache","version":1,"entries":[{"expr":"","analysis":"","kind":"bool"}]}`,
		"missing key fields")
	rejectingLoad(t,
		`{"tool":"dfcheck-rescache","version":1,"entries":[{"expr":"e","analysis":"integer range","kind":"range","lo":{"w":8,"v":5},"hi":{"w":8,"v":5}}]}`,
		"ambiguous range")
}

func TestFileRoundTripAndMissing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "results.cache")

	c := New()
	if err := c.LoadFile(path); !os.IsNotExist(err) {
		t.Fatalf("LoadFile(missing) = %v, want IsNotExist", err)
	}
	for key, e := range sampleEntries() {
		c.Put(key, e)
	}
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".rescache-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}

	c2 := New()
	if err := c2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if c2.Len() != c.Len() {
		t.Fatalf("loaded %d entries, want %d", c2.Len(), c.Len())
	}
	// Every loaded entry must hit.
	for key := range sampleEntries() {
		if _, ok := c2.Get(key); !ok {
			t.Fatalf("key %+v missing after file round trip", key)
		}
	}

	// Corrupt the file on disk: load fails, cache stays usable (cold).
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	c3 := New()
	if err := c3.LoadFile(path); err == nil {
		t.Fatal("loading corrupt file succeeded")
	}
	if c3.Len() != 0 {
		t.Fatal("corrupt load populated the cache")
	}
	c3.Put(k("new"), Entry{Value: oracle.BoolResult{}})
	if c3.Len() != 1 {
		t.Fatal("cache unusable after failed load")
	}
}

// The wire format must stay valid JSON with the declared version header —
// external tooling may inspect it.
func TestWireFormatShape(t *testing.T) {
	c := New()
	for key, e := range sampleEntries() {
		c.Put(key, e)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("saved cache is not valid JSON: %v", err)
	}
	if doc["tool"] != "dfcheck-rescache" || doc["version"] != float64(FormatVersion) {
		t.Fatalf("header = tool %v version %v", doc["tool"], doc["version"])
	}
}
