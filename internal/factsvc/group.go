// Package factsvc is the in-process performance core of the fact
// service (DESIGN §12): a single-flight layer that collapses identical
// in-flight oracle queries to one solve, and a batching dispatcher that
// shards submitted expressions by canonical hash across a worker pool.
// The paper's artifact served repeated fact queries out of a shared
// Redis cache; this package covers the half the cache cannot — queries
// for the same expression that race before any of them finishes — and
// gives the result a service surface (an HTTP query API, backpressure,
// and factsvc_* metrics) so "precision as a service" is a running
// process rather than a batch report.
package factsvc

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// flightCall is one in-flight computation: the leader fills val/err and
// closes done; waiters block on done and read the shared result.
type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// Group collapses concurrent calls with the same key to one execution
// of fn, all callers sharing the one result — the single-flight pattern,
// implemented here (rather than imported) so waiters can be counted
// deterministically and so a panicking leader releases its waiters with
// an error instead of deadlocking them.
//
// Unlike a cache, a Group holds no history: the key is forgotten the
// moment the leader finishes, so sequential calls with the same key each
// execute. Memoization is the result cache's job; the Group only
// deduplicates the race window the cache cannot see.
//
// The zero value is ready to use.
type Group struct {
	mu        sync.Mutex
	calls     map[string]*flightCall
	collapsed atomic.Uint64
}

// Do executes fn once among concurrent callers sharing key and returns
// fn's result to all of them. shared is false for the caller that
// executed fn (the leader) and true for callers that waited on it.
//
// A waiter increments the collapsed counter before blocking, so a
// leader can observe (via Collapsed) how many callers it is solving
// for while still inside fn — the hook the deterministic collapse
// tests rely on.
//
// If fn panics, waiters receive an error describing the panic and the
// panic is re-raised on the leader's goroutine.
func (g *Group) Do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.collapsed.Add(1)
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	release := func() {
		// Delete before closing done: a caller arriving after the close
		// must start a fresh flight, never attach to a finished one.
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}
	defer func() {
		if r := recover(); r != nil {
			c.err = fmt.Errorf("factsvc: flight %q panicked: %v", key, r)
			release()
			panic(r)
		}
		release()
	}()
	c.val, c.err = fn()
	return c.val, c.err, false
}

// Collapsed returns the cumulative number of calls that shared another
// caller's execution instead of running their own.
func (g *Group) Collapsed() uint64 { return g.collapsed.Load() }

// InFlight returns the number of keys currently executing.
func (g *Group) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}
