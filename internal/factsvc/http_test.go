package factsvc

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dfcheck/internal/ir"
	"dfcheck/internal/metrics"
)

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.Solve == nil {
		cfg.Solve = func(ctx context.Context, f *ir.Function) ([]Fact, error) {
			return []Fact{{Analysis: "known bits", Fact: "xxxxxxxx"}}, nil
		}
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

func postFacts(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/facts", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decodeResp(t *testing.T, w *httptest.ResponseRecorder) queryResponse {
	t.Helper()
	var resp queryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response not JSON: %v\n%s", err, w.Body.String())
	}
	return resp
}

func TestHandlerRejectsBadRequests(t *testing.T) {
	h := newTestService(t, Config{Workers: 1}).Handler()

	req := httptest.NewRequest(http.MethodGet, "/v1/facts", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET = %d, want 405", w.Code)
	}
	if w.Header().Get("Allow") != http.MethodPost {
		t.Fatalf("Allow = %q", w.Header().Get("Allow"))
	}

	if w := postFacts(t, h, "{not json"); w.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d, want 400", w.Code)
	}
	if w := postFacts(t, h, `{"exprs": []}`); w.Code != http.StatusBadRequest {
		t.Fatalf("empty batch = %d, want 400", w.Code)
	}
	big, _ := json.Marshal(map[string]any{"exprs": make([]string, MaxBatch+1)})
	if w := postFacts(t, h, string(big)); w.Code != http.StatusBadRequest {
		t.Fatalf("oversized batch = %d, want 400", w.Code)
	}
}

// A batch mixing valid, duplicate, and malformed expressions: the valid
// ones are answered, duplicates collapse onto one solve, the malformed
// one gets a per-expression parse error — and the whole thing is 200,
// never a 5xx.
func TestHandlerBatchWithDuplicatesAndParseErrors(t *testing.T) {
	reg := metrics.NewRegistry()
	svc := newTestService(t, Config{Workers: 1, Metrics: reg})
	h := svc.Handler()

	body, _ := json.Marshal(map[string][]string{"exprs": {
		exprSrc,
		"%x:i8 = var\ninfer %x %% garbage",
		exprSrc, // exact duplicate of the first
	}})
	w := postFacts(t, h, string(body))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200\n%s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	resp := decodeResp(t, w)
	if len(resp.Results) != 3 {
		t.Fatalf("%d results, want 3", len(resp.Results))
	}
	if resp.Results[0].Error != "" || len(resp.Results[0].Facts) == 0 {
		t.Fatalf("result 0: %+v", resp.Results[0])
	}
	if !strings.Contains(resp.Results[1].Error, "parse") {
		t.Fatalf("result 1 error = %q, want parse error", resp.Results[1].Error)
	}
	if resp.Results[2].Error != "" || len(resp.Results[2].Facts) == 0 {
		t.Fatalf("result 2: %+v", resp.Results[2])
	}
	if resp.Results[0].Hash != resp.Results[2].Hash {
		t.Fatalf("duplicate hashes differ: %q vs %q", resp.Results[0].Hash, resp.Results[2].Hash)
	}
	// Whether the duplicate collapsed in flight or was answered by the
	// live map depends only on submission order here: both were
	// submitted before any wait, so the duplicate must have collapsed.
	if !resp.Results[2].Collapsed {
		t.Fatal("intra-batch duplicate did not collapse")
	}
	if got := reg.Snapshot().Counters["factsvc_inflight_collapsed"]; got != 1 {
		t.Fatalf("factsvc_inflight_collapsed = %d, want 1", got)
	}
}

// Saturation: with a blocked single worker and a full queue, extra
// distinct expressions come back 429 with a Retry-After header, while
// the accepted ones still answer — graceful degradation, not failure.
func TestHandlerSaturationReturns429RetryAfter(t *testing.T) {
	reg := metrics.NewRegistry()
	release := make(chan struct{})
	first := make(chan struct{})
	started := false
	svc := newTestService(t, Config{
		Workers:    1,
		QueueDepth: 1,
		Metrics:    reg,
		RetryAfter: 3 * time.Second,
		Solve: func(ctx context.Context, f *ir.Function) ([]Fact, error) {
			if !started {
				started = true
				close(first)
			}
			<-release
			return []Fact{{Analysis: "non-zero", Fact: "true"}}, nil
		},
	})
	h := svc.Handler()

	// Fill the pipeline: one solving, one queued.
	if _, err := svc.Submit(ir.MustParse("%x:i8 = var\n%0:i8 = add 9:i8, %x\ninfer %0")); err != nil {
		t.Fatal(err)
	}
	<-first // the worker is now stuck in the first solve
	if _, err := svc.Submit(ir.MustParse("%x:i8 = var\n%0:i8 = add 10:i8, %x\ninfer %0")); err != nil {
		t.Fatal(err)
	}

	// The request's expressions cannot be accepted.
	body, _ := json.Marshal(map[string][]string{"exprs": {
		"%x:i8 = var\n%0:i8 = add 11:i8, %x\ninfer %0",
		"%x:i8 = var\n%0:i8 = add 12:i8, %x\ninfer %0",
	}})
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- postFacts(t, h, string(body)) }()
	var w *httptest.ResponseRecorder
	select {
	case w = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("saturated request blocked instead of failing fast")
	}
	close(release)

	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429\n%s", w.Code, w.Body.String())
	}
	// The queue is completely full (1 queued / capacity 1), so the
	// advertised backoff is the saturation ceiling: base × 4 (see
	// RetryAfterSecs).
	if got := w.Header().Get("Retry-After"); got != "12" {
		t.Fatalf("Retry-After = %q, want \"12\" (4×base at full saturation)", got)
	}
	resp := decodeResp(t, w)
	if resp.Rejected != 2 {
		t.Fatalf("rejected = %d, want 2", resp.Rejected)
	}
	for i, r := range resp.Results {
		if !strings.Contains(r.Error, "saturated") {
			t.Fatalf("result %d error = %q, want saturation", i, r.Error)
		}
	}
	if got := reg.Snapshot().Counters["factsvc_rejected"]; got != 2 {
		t.Fatalf("factsvc_rejected = %d, want 2", got)
	}
}
