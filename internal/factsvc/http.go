package factsvc

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"dfcheck/internal/ir"
)

// The HTTP query API: POST /v1/facts with a batch of expressions, get
// the dataflow facts back. The endpoint mounts on the same mux as the
// -http debug server (expvar, pprof), so one listener serves queries,
// metrics, and profiles.
//
// Error discipline: the endpoint never 5xxes. Client mistakes (wrong
// method, bad JSON, oversized batch) are 4xx; a per-expression parse or
// solve failure is reported in that expression's answer while the rest
// of the batch proceeds; saturation is 429 with a Retry-After header
// and per-expression "queue saturated" errors — partial answers are
// still returned, and the cache makes the retry cheap.

// MaxBatch bounds expressions per request; larger batches are a client
// error (split them), not a reason to queue unbounded parse work.
const MaxBatch = 1024

// queryRequest is the POST /v1/facts body.
type queryRequest struct {
	Exprs []string `json:"exprs"`
}

// ExprAnswer is one expression's slot in the response, in submission
// order.
type ExprAnswer struct {
	Expr string `json:"expr"`
	// Hash is the canonical hash (%016x) — the dedup identity; two
	// answers with equal hashes came from one solve or cache line.
	Hash  string `json:"hash,omitempty"`
	Facts []Fact `json:"facts,omitempty"`
	// ElapsedNs is the solve's own duration; collapsed and cached
	// answers replay the original computation's time.
	ElapsedNs int64 `json:"elapsed_ns,omitempty"`
	// Collapsed marks answers that shared an in-flight solve (either
	// an earlier expression in this batch or a concurrent request).
	Collapsed bool `json:"collapsed,omitempty"`
	// Error is set for per-expression failures: parse errors, solve
	// errors, or "queue saturated" under backpressure.
	Error string `json:"error,omitempty"`
}

// queryResponse is the POST /v1/facts response body.
type queryResponse struct {
	Results []ExprAnswer `json:"results"`
	// Rejected counts expressions refused for saturation; when > 0 the
	// status is 429 and Retry-After is set.
	Rejected int `json:"rejected,omitempty"`
}

// Handler returns the /v1/facts handler. Mount with
// mux.Handle("/v1/facts", svc.Handler()).
func (s *Service) Handler() http.Handler {
	return http.HandlerFunc(s.serveFacts)
}

func (s *Service) serveFacts(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if m := s.cfg.Metrics; m != nil {
		m.Counter("factsvc_requests").Inc()
		defer func() { m.Histogram("factsvc_batch_latency").Observe(time.Since(start)) }()
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req queryRequest
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Exprs) == 0 {
		http.Error(w, `empty batch: body must be {"exprs": ["<souper text>", ...]}`, http.StatusBadRequest)
		return
	}
	if len(req.Exprs) > MaxBatch {
		http.Error(w, fmt.Sprintf("batch of %d exceeds limit %d", len(req.Exprs), MaxBatch), http.StatusBadRequest)
		return
	}

	// Two passes: submit everything first, then wait. Submitting the
	// whole batch up front is what lets intra-batch duplicates collapse
	// onto one solve instead of running back to back.
	resp := queryResponse{Results: make([]ExprAnswer, len(req.Exprs))}
	tickets := make([]*Ticket, len(req.Exprs))
	for i, src := range req.Exprs {
		resp.Results[i].Expr = src
		f, err := ir.Parse(src)
		if err != nil {
			resp.Results[i].Error = "parse: " + err.Error()
			continue
		}
		tk, err := s.Submit(f)
		switch {
		case err == ErrSaturated:
			resp.Results[i].Error = "queue saturated"
			resp.Rejected++
		case err != nil:
			resp.Results[i].Error = err.Error()
		default:
			tickets[i] = tk
		}
	}
	for i, tk := range tickets {
		if tk == nil {
			continue
		}
		ans := &resp.Results[i]
		ans.Hash = fmt.Sprintf("%016x", tk.Hash)
		ans.Collapsed = tk.Collapsed
		res, err := tk.Wait(r.Context())
		if err != nil {
			ans.Error = err.Error()
			continue
		}
		ans.Facts = res.Facts
		ans.ElapsedNs = res.Elapsed.Nanoseconds()
	}

	status := http.StatusOK
	if resp.Rejected > 0 {
		// Retry-After scales with how full the queues are right now (see
		// RetryAfterSecs): a transient spike advertises the base backoff,
		// sustained saturation up to 4× it.
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
		status = http.StatusTooManyRequests
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(resp); err != nil && s.cfg.Metrics != nil {
		// The client went away mid-write; nothing to serve them.
		s.cfg.Metrics.Counter("factsvc_write_errors").Inc()
	}
}
