package factsvc

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"dfcheck/internal/ir"
	"dfcheck/internal/metrics"
	"dfcheck/internal/trace"
)

func TestRetryAfterSecs(t *testing.T) {
	cases := []struct {
		base     time.Duration
		queued   int
		capacity int
		want     int
	}{
		{time.Second, 0, 64, 1},            // empty queues → base
		{time.Second, 64, 64, 4},           // full → 4×base
		{time.Second, 32, 64, 3},           // half full → ceil(1×2.5)
		{3 * time.Second, 64, 64, 12},      // full, larger base
		{3 * time.Second, 0, 64, 3},        // empty, larger base
		{0, 10, 64, 2},                     // zero base clamps to 1s before scaling
		{time.Second, 100, 64, 4},          // fill clamps at 1
		{time.Second, 10, 0, 1},            // no capacity info → base
		{10 * time.Minute, 64, 64, 300},    // ceiling cap
		{500 * time.Millisecond, 0, 64, 1}, // sub-second base clamps to 1s
	}
	for _, tc := range cases {
		if got := RetryAfterSecs(tc.base, tc.queued, tc.capacity); got != tc.want {
			t.Errorf("RetryAfterSecs(%v, %d, %d) = %d, want %d",
				tc.base, tc.queued, tc.capacity, tc.want, got)
		}
	}
}

// TestOutcomeHistogramsAndWorkerGauges drives one solve through each
// outcome and checks the labeled factsvc_solve_latency series plus the
// collector-fed per-worker gauges.
func TestOutcomeHistogramsAndWorkerGauges(t *testing.T) {
	reg := metrics.NewRegistry()
	release := make(chan struct{})
	first := make(chan struct{})
	started := false
	svc, err := New(Config{
		Workers:    1,
		QueueDepth: 1,
		Metrics:    reg,
		Solve: func(ctx context.Context, f *ir.Function) ([]Fact, error) {
			if !started {
				started = true
				close(first)
				<-release
			}
			if strings.Contains(f.Root.Op.String(), "mul") {
				return nil, errors.New("boom")
			}
			return []Fact{{Analysis: "non-zero", Fact: "true"}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// One in-flight solve, one collapsed duplicate of it.
	src := "%x:i8 = var\n%0:i8 = add 1:i8, %x\ninfer %0"
	tk1, err := svc.Submit(mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	<-first
	tk2, err := svc.Submit(mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if !tk2.Collapsed {
		t.Fatal("duplicate did not collapse")
	}
	// Fill the queue, then overflow it → saturated.
	if _, err := svc.Submit(mustParse(t, "%x:i8 = var\n%0:i8 = add 2:i8, %x\ninfer %0")); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(mustParse(t, "%x:i8 = var\n%0:i8 = add 3:i8, %x\ninfer %0")); err != ErrSaturated {
		t.Fatalf("overflow submit err = %v, want ErrSaturated", err)
	}

	// While the worker is stuck: the collector must report depth 1 and
	// in-flight 1 for worker 0.
	snap := reg.Snapshot()
	if got := snap.Gauges[`factsvc_worker_queue_depth{worker="0"}`]; got != 1 {
		t.Fatalf("worker queue depth gauge = %d, want 1 (%v)", got, snap.Gauges)
	}
	if got := snap.Gauges[`factsvc_worker_inflight{worker="0"}`]; got != 1 {
		t.Fatalf("worker inflight gauge = %d, want 1", got)
	}

	close(release)
	ctx := context.Background()
	if _, err := tk1.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := tk2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	// An erroring solve.
	tkErr, err := svc.Submit(mustParse(t, "%x:i8 = var\n%0:i8 = mul 2:i8, %x\ninfer %0"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tkErr.Wait(ctx); err == nil {
		t.Fatal("error solve did not propagate")
	}

	snap = reg.Snapshot()
	wantCounts := map[string]int64{
		`factsvc_solve_latency{outcome="solved"}`:    3, // add-1, add-2, add-3 queue drains too... see below
		`factsvc_solve_latency{outcome="collapsed"}`: 1,
		`factsvc_solve_latency{outcome="saturated"}`: 1,
		`factsvc_solve_latency{outcome="error"}`:     1,
	}
	for name, want := range wantCounts {
		h, ok := snap.Histograms[name]
		if !ok {
			t.Fatalf("histogram %s missing (have %v)", name, keys(snap.Histograms))
		}
		// The queued add-2 task drains asynchronously, so "solved" may be
		// 2 or 3 depending on timing; the others are exact.
		if strings.Contains(name, "solved") {
			if h.Count < want-1 || h.Count > want {
				t.Fatalf("%s count = %d, want %d±1", name, h.Count, want)
			}
			continue
		}
		if h.Count != want {
			t.Fatalf("%s count = %d, want %d", name, h.Count, want)
		}
	}
	if got := snap.Gauges[`factsvc_worker_inflight{worker="0"}`]; got != 0 {
		t.Fatalf("worker inflight after drain = %d, want 0", got)
	}
}

func keys(m map[string]metrics.HistogramSnapshot) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestSlowLogForceSamplesTrace: a solve the 1-in-N sampler skipped must
// still appear in the trace when the slow log admits it.
func TestSlowLogForceSamplesTrace(t *testing.T) {
	var sb strings.Builder
	tr := trace.New(&sb)
	slow := metrics.NewSlowLog(4)
	reg := metrics.NewRegistry()
	svc, err := New(Config{
		Workers:     1,
		Metrics:     reg,
		Tracer:      tr,
		TraceSample: 1 << 30, // sampler effectively never fires
		SlowLog:     slow,
		Solve: func(ctx context.Context, f *ir.Function) ([]Fact, error) {
			time.Sleep(2 * time.Millisecond)
			return []Fact{{Analysis: "non-zero", Fact: "true"}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The sampler admits solve #1 (seq 1 ≡ 1 mod N) and skips solve #2,
	// so the second slow solve exercises the force-record path.
	for _, src := range []string{
		"%x:i8 = var\n%0:i8 = add 5:i8, %x\ninfer %0",
		"%x:i8 = var\n%0:i8 = add 6:i8, %x\ninfer %0",
	} {
		tk, err := svc.Submit(mustParse(t, src))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	svc.Close()
	tr.Close()

	entries := slow.Snapshot()
	if len(entries) != 2 {
		t.Fatalf("slow log has %d entries, want 2", len(entries))
	}
	e := entries[0]
	if e.Elapsed < 2*time.Millisecond || e.Op != "add" || e.Width != 8 || len(e.Hash) != 16 {
		t.Fatalf("slow entry = %+v", e)
	}
	if !strings.Contains(e.Detail, "facts=1") {
		t.Fatalf("slow entry detail = %q", e.Detail)
	}
	out := sb.String()
	if !strings.Contains(out, "factsvc-slow") {
		t.Fatalf("trace missing force-sampled slow span:\n%s", out)
	}
	if !strings.Contains(out, `"slow":1`) && !strings.Contains(out, `"slow": 1`) {
		t.Fatalf("slow span missing slow attribute:\n%s", out)
	}
}

// TestQueueAccounting pins the QueuedTasks/QueueCapacity pair the
// Retry-After derivation reads.
func TestQueueAccounting(t *testing.T) {
	release := make(chan struct{})
	first := make(chan struct{})
	started := false
	svc, err := New(Config{
		Workers:    2,
		QueueDepth: 8,
		Solve: func(ctx context.Context, f *ir.Function) ([]Fact, error) {
			if !started {
				started = true
				close(first)
			}
			<-release
			return nil, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(release); svc.Close() }()
	if got := svc.QueueCapacity(); got != 16 {
		t.Fatalf("QueueCapacity = %d, want 16", got)
	}
	if got := svc.QueuedTasks(); got != 0 {
		t.Fatalf("QueuedTasks = %d, want 0", got)
	}
	if _, err := svc.Submit(mustParse(t, "%x:i8 = var\n%0:i8 = add 6:i8, %x\ninfer %0")); err != nil {
		t.Fatal(err)
	}
	<-first
	if _, err := svc.Submit(mustParse(t, "%x:i8 = var\n%0:i8 = add 7:i8, %x\ninfer %0")); err != nil {
		t.Fatal(err)
	}
	// One task is being solved (not queued); the other may sit in either
	// worker's queue or already be in flight on worker 2.
	if got := svc.QueuedTasks(); got > 1 {
		t.Fatalf("QueuedTasks = %d, want ≤1", got)
	}
}
