package factsvc

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dfcheck/internal/canon"
	"dfcheck/internal/ir"
	"dfcheck/internal/metrics"
	"dfcheck/internal/rescache"
	"dfcheck/internal/trace"
)

// Fact is one rendered dataflow fact: an analysis name (a
// harvest.Analysis value; demanded bits carries a "(var)" suffix per
// input variable) and the fact text in the paper's print format.
type Fact struct {
	Analysis string `json:"analysis"`
	Fact     string `json:"fact"`
}

// SolveFunc computes the dataflow facts for one expression. The
// comparator provides the production implementation
// (compare.Comparator.OracleFacts), which consults the result cache and
// its own single-flight layer; tests substitute stubs.
type SolveFunc func(ctx context.Context, f *ir.Function) ([]Fact, error)

// ErrSaturated is returned by Submit when the target worker queue is
// full. The HTTP layer maps it to 429 + Retry-After; programmatic
// callers back off and retry.
var ErrSaturated = errors.New("factsvc: solve queue saturated")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("factsvc: service closed")

// Config configures a Service.
type Config struct {
	// Workers is the solver pool size; 0 selects 4.
	Workers int
	// QueueDepth is the per-worker pending-task bound; 0 selects 64.
	// When a worker's queue is full, Submit fails fast with ErrSaturated
	// instead of queueing unbounded work.
	QueueDepth int
	// Solve computes the facts for one expression. Required.
	Solve SolveFunc
	// Cache, when set, feeds the factsvc_shard_occupancy and per-shard
	// rescache gauges through the registry's collector hook. The service
	// never reads or writes entries itself — Solve owns cache policy.
	Cache *rescache.Cache
	// Metrics, when set, gains the factsvc_* instruments: counters and
	// outcome-labeled latency histograms on the solve path, and
	// pull-style per-worker queue-depth/in-flight gauges refreshed on
	// every snapshot or scrape.
	Metrics *metrics.Registry
	// Tracer, when set, records one expr-level span per solved task
	// (subject to TraceSample).
	Tracer *trace.Tracer
	// TraceSample records only one in every N solve spans (0 and 1 mean
	// every solve). Slow solves are exempt: a solve admitted to SlowLog
	// is force-recorded into the trace even when the sampler skipped it.
	TraceSample int
	// SlowLog, when set, retains the slowest solves (canonical hash,
	// opcode, width, duration, solver-stat detail) for /dashboardz and
	// post-mortems.
	SlowLog *metrics.SlowLog
	// RetryAfter is the *base* backoff the HTTP layer advertises on
	// saturation; 0 selects 1s. The advertised value scales with queue
	// fill (see RetryAfterSecs).
	RetryAfter time.Duration
}

// task is one scheduled solve. Duplicate submissions attach to the
// existing task instead of scheduling their own; everyone waits on done
// and shares the result fields.
type task struct {
	key     string // canonical key (canon.Canon.Key)
	hash    uint64 // canonical hash, routes the task to its worker
	f       *ir.Function
	done    chan struct{}
	facts   []Fact
	elapsed time.Duration
	err     error
}

// Service is the batched query pipeline: Submit canonicalizes, collapses
// duplicates of any live (queued or solving) task, and routes new tasks
// by canonical hash to a fixed worker — so two submissions of the same
// expression can never solve concurrently, and a hot expression costs
// one solve no matter how many callers race on it.
type Service struct {
	cfg    Config
	queues []chan *task
	busy   []atomic.Int64 // 1 while worker i is inside Solve
	seq    atomic.Uint64  // solve counter, drives trace sampling
	wg     sync.WaitGroup

	mu     sync.Mutex
	live   map[string]*task
	closed bool

	// Instruments, resolved once at construction (nil registry → nil
	// instruments, checked at use).
	mExprs, mCollapsed, mRejected, mSolved, mErrors *metrics.Counter
	gQueue                                          *metrics.Gauge
	hLatency                                        *metrics.Histogram
	hSolved, hErrored, hCollapsed, hSaturated       *metrics.Histogram
	cSolverQ                                        *metrics.Counter // shared solver_queries, for slow-log deltas
}

// New starts the worker pool. Close releases it.
func New(cfg Config) (*Service, error) {
	if cfg.Solve == nil {
		return nil, errors.New("factsvc: Config.Solve is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	s := &Service{
		cfg:    cfg,
		queues: make([]chan *task, cfg.Workers),
		busy:   make([]atomic.Int64, cfg.Workers),
		live:   make(map[string]*task),
	}
	if m := cfg.Metrics; m != nil {
		s.mExprs = m.Counter("factsvc_exprs")
		s.mCollapsed = m.Counter("factsvc_inflight_collapsed")
		s.mRejected = m.Counter("factsvc_rejected")
		s.mSolved = m.Counter("factsvc_solved")
		s.mErrors = m.Counter("factsvc_errors")
		s.gQueue = m.Gauge("factsvc_queue_depth")
		s.hLatency = m.Histogram("factsvc_latency")
		s.hSolved = m.HistogramL("factsvc_solve_latency", metrics.Labels{"outcome": "solved"})
		s.hErrored = m.HistogramL("factsvc_solve_latency", metrics.Labels{"outcome": "error"})
		s.hCollapsed = m.HistogramL("factsvc_solve_latency", metrics.Labels{"outcome": "collapsed"})
		s.hSaturated = m.HistogramL("factsvc_solve_latency", metrics.Labels{"outcome": "saturated"})
		s.cSolverQ = m.Counter("solver_queries")
	}
	for i := range s.queues {
		s.queues[i] = make(chan *task, cfg.QueueDepth)
		s.wg.Add(1)
		go s.worker(i)
	}
	if m := cfg.Metrics; m != nil {
		// Pull-style gauges, refreshed by the registry on every snapshot
		// or scrape instead of on the solve hot path: per-worker queue
		// depth and in-flight flags, plus the fullest cache stripe (the
		// occupancy scan used to run after every task — 64 shard locks
		// per solve; as a collector it costs one scan per scrape).
		queueDepth := make([]*metrics.Gauge, cfg.Workers)
		inflight := make([]*metrics.Gauge, cfg.Workers)
		for i := range queueDepth {
			w := strconv.Itoa(i)
			queueDepth[i] = m.GaugeL("factsvc_worker_queue_depth", metrics.Labels{"worker": w})
			inflight[i] = m.GaugeL("factsvc_worker_inflight", metrics.Labels{"worker": w})
		}
		gShardOcc := m.Gauge("factsvc_shard_occupancy")
		m.RegisterCollector(func() {
			for i := range s.queues {
				queueDepth[i].Set(int64(len(s.queues[i])))
				inflight[i].Set(s.busy[i].Load())
			}
			if s.cfg.Cache != nil {
				max := 0
				for _, l := range s.cfg.Cache.ShardLens() {
					if l > max {
						max = l
					}
				}
				gShardOcc.Set(int64(max))
			}
		})
	}
	return s, nil
}

// RetryAfter returns the base advisory backoff for saturated
// submissions.
func (s *Service) RetryAfter() time.Duration { return s.cfg.RetryAfter }

// QueuedTasks returns the number of tasks sitting in worker queues
// (excluding the ones currently being solved).
func (s *Service) QueuedTasks() int {
	n := 0
	for _, q := range s.queues {
		n += len(q)
	}
	return n
}

// QueueCapacity returns the total queue slots across workers.
func (s *Service) QueueCapacity() int { return len(s.queues) * s.cfg.QueueDepth }

// RetryAfterSecs derives the Retry-After value (whole seconds) a
// saturated service should advertise. The formula is deliberately
// simple and bounded:
//
//	fill = queued / capacity, clamped to [0, 1]
//	secs = ceil(base_seconds × (1 + 3×fill)), clamped to [1, 300]
//
// An almost-empty service (one hot worker queue filled while the rest
// idle) advertises its base backoff; a fully saturated one advertises
// 4× base, so retry pressure decays instead of synchronizing every
// rejected client onto the same instant.
func RetryAfterSecs(base time.Duration, queued, capacity int) int {
	baseSecs := base.Seconds()
	if baseSecs < 1 {
		baseSecs = 1
	}
	fill := 0.0
	if capacity > 0 {
		fill = float64(queued) / float64(capacity)
		if fill > 1 {
			fill = 1
		}
		if fill < 0 {
			fill = 0
		}
	}
	secs := int(baseSecs * (1 + 3*fill))
	if float64(secs) < baseSecs*(1+3*fill) {
		secs++ // ceil
	}
	if secs < 1 {
		secs = 1
	}
	if secs > 300 {
		secs = 300
	}
	return secs
}

// retryAfterSecs applies RetryAfterSecs to the service's current queue
// state.
func (s *Service) retryAfterSecs() int {
	return RetryAfterSecs(s.cfg.RetryAfter, s.QueuedTasks(), s.QueueCapacity())
}

// Ticket is a claim on a scheduled (or shared) solve.
type Ticket struct {
	t   *task
	svc *Service
	// Collapsed reports that this submission attached to an already
	// live task instead of scheduling its own solve.
	Collapsed bool
	// Hash is the expression's canonical hash.
	Hash uint64
}

// Submit schedules f (or attaches to a live duplicate) and returns a
// Ticket to Wait on. It never blocks on a full queue: saturation is
// ErrSaturated, and the caller decides whether to retry.
func (s *Service) Submit(f *ir.Function) (*Ticket, error) {
	var start time.Time
	if s.hSaturated != nil {
		start = time.Now()
	}
	cn := canon.Canonicalize(f)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.mExprs != nil {
		s.mExprs.Inc()
	}
	if t, ok := s.live[cn.Key]; ok {
		s.mu.Unlock()
		if s.mCollapsed != nil {
			s.mCollapsed.Inc()
		}
		return &Ticket{t: t, svc: s, Collapsed: true, Hash: cn.Hash}, nil
	}
	t := &task{key: cn.Key, hash: cn.Hash, f: cn.F, done: make(chan struct{})}
	// Hash-affinity routing: the same canonical expression always lands
	// on the same worker, so even if the live map missed (task finished
	// a moment ago), duplicates serialize instead of solving twice in
	// parallel.
	q := s.queues[cn.Hash%uint64(len(s.queues))]
	select {
	case q <- t:
		s.live[cn.Key] = t
		s.mu.Unlock()
		if s.gQueue != nil {
			s.gQueue.Add(1)
		}
		return &Ticket{t: t, svc: s, Hash: cn.Hash}, nil
	default:
		s.mu.Unlock()
		if s.mRejected != nil {
			s.mRejected.Inc()
		}
		if s.hSaturated != nil {
			// The "latency" of a rejection: how long the fast-fail path
			// held the caller. Its _count is the saturation rate.
			s.hSaturated.Observe(time.Since(start))
		}
		return nil, ErrSaturated
	}
}

// Result is one answered query.
type Result struct {
	Facts   []Fact
	Elapsed time.Duration // the solve's own duration (shared by waiters)
}

// Wait blocks until the ticket's solve completes or ctx is done.
func (tk *Ticket) Wait(ctx context.Context) (Result, error) {
	var start time.Time
	observeCollapsed := tk.Collapsed && tk.svc != nil && tk.svc.hCollapsed != nil
	if observeCollapsed {
		start = time.Now()
	}
	select {
	case <-tk.t.done:
		if observeCollapsed {
			// A collapsed waiter's cost is its wall wait, not the
			// original solve's duration (which hLatency already has).
			tk.svc.hCollapsed.Observe(time.Since(start))
		}
		if tk.t.err != nil {
			return Result{}, tk.t.err
		}
		return Result{Facts: tk.t.facts, Elapsed: tk.t.elapsed}, nil
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

func (s *Service) worker(i int) {
	defer s.wg.Done()
	for t := range s.queues[i] {
		s.runTask(i, t)
	}
}

// sampleSolve reports whether this solve's span should be recorded,
// honoring Config.TraceSample.
func (s *Service) sampleSolve() bool {
	n := s.cfg.TraceSample
	if n <= 1 {
		return true
	}
	return s.seq.Add(1)%uint64(n) == 1
}

// runTask solves one task, publishes the result to every waiter, and
// retires the live-map entry. A panicking Solve is converted to an
// error so one poisonous expression cannot take a worker down.
func (s *Service) runTask(worker int, t *task) {
	s.busy[worker].Store(1)
	var sp *trace.Span
	var start time.Time
	var qBefore int64
	defer func() {
		if r := recover(); r != nil {
			t.err = fmt.Errorf("factsvc: solve panicked: %v", r)
		}
		if t.elapsed == 0 && !start.IsZero() {
			t.elapsed = time.Since(start) // panic path: Solve never returned
		}
		s.mu.Lock()
		delete(s.live, t.key)
		s.mu.Unlock()
		close(t.done)
		s.busy[worker].Store(0)
		if s.gQueue != nil {
			s.gQueue.Add(-1)
		}
		if s.mSolved != nil {
			s.mSolved.Inc()
			if t.err != nil {
				s.mErrors.Inc()
			}
		}
		if s.hLatency != nil {
			s.hLatency.Observe(t.elapsed)
			if t.err != nil {
				s.hErrored.Observe(t.elapsed)
			} else {
				s.hSolved.Observe(t.elapsed)
			}
		}
		s.noteSlow(worker, t, sp, start, qBefore)
		sp.End()
	}()
	ctx := context.Background()
	if s.sampleSolve() {
		sp = s.cfg.Tracer.Start(nil, trace.KindExpr, "factsvc")
	}
	if sp != nil {
		sp.SetInt("worker", int64(worker))
		sp.SetStr("hash", fmt.Sprintf("%016x", t.hash))
		ctx = trace.NewContext(ctx, sp)
	}
	if s.cSolverQ != nil {
		qBefore = s.cSolverQ.Value()
	}
	start = time.Now()
	t.facts, t.err = s.cfg.Solve(ctx, t.f)
	t.elapsed = time.Since(start)
}

// noteSlow offers the finished task to the slow-solve log and, on
// admission, makes sure the solve is visible in the trace: a sampled
// span gets a slow=1 attribute; a sampler-skipped solve is force-
// recorded after the fact via Tracer.Record.
func (s *Service) noteSlow(worker int, t *task, sp *trace.Span, start time.Time, qBefore int64) {
	if s.cfg.SlowLog == nil {
		return
	}
	// The solver-query delta is read off the shared process-wide
	// counter; with several workers solving concurrently it attributes
	// some neighbors' queries to this solve, so it is labeled ≈.
	var qDelta int64
	if s.cSolverQ != nil {
		qDelta = s.cSolverQ.Value() - qBefore
	}
	e := metrics.SlowEntry{
		When:    start,
		Hash:    fmt.Sprintf("%016x", t.hash),
		Op:      t.f.Root.Op.String(),
		Width:   t.f.Width(),
		Elapsed: t.elapsed,
		Worker:  worker,
		Detail:  fmt.Sprintf("facts=%d solver_queries≈%d", len(t.facts), qDelta),
	}
	if t.err != nil {
		e.Err = t.err.Error()
	}
	if !s.cfg.SlowLog.Note(e) {
		return
	}
	if sp != nil {
		sp.SetInt("slow", 1)
	} else if tr := s.cfg.Tracer; tr != nil {
		tr.Record(trace.KindExpr, "factsvc-slow", start, t.elapsed, map[string]any{
			"worker": worker,
			"hash":   e.Hash,
			"op":     e.Op,
			"width":  e.Width,
			"slow":   1,
		})
	}
}

// QueueLen returns the total number of queued-or-running tasks.
func (s *Service) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.live)
}

// Close stops accepting submissions, drains the queues, and waits for
// the workers to exit. Safe to call once.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	for _, q := range s.queues {
		close(q)
	}
	s.wg.Wait()
}
