package factsvc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dfcheck/internal/canon"
	"dfcheck/internal/ir"
	"dfcheck/internal/metrics"
	"dfcheck/internal/rescache"
	"dfcheck/internal/trace"
)

// Fact is one rendered dataflow fact: an analysis name (a
// harvest.Analysis value; demanded bits carries a "(var)" suffix per
// input variable) and the fact text in the paper's print format.
type Fact struct {
	Analysis string `json:"analysis"`
	Fact     string `json:"fact"`
}

// SolveFunc computes the dataflow facts for one expression. The
// comparator provides the production implementation
// (compare.Comparator.OracleFacts), which consults the result cache and
// its own single-flight layer; tests substitute stubs.
type SolveFunc func(ctx context.Context, f *ir.Function) ([]Fact, error)

// ErrSaturated is returned by Submit when the target worker queue is
// full. The HTTP layer maps it to 429 + Retry-After; programmatic
// callers back off and retry.
var ErrSaturated = errors.New("factsvc: solve queue saturated")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("factsvc: service closed")

// Config configures a Service.
type Config struct {
	// Workers is the solver pool size; 0 selects 4.
	Workers int
	// QueueDepth is the per-worker pending-task bound; 0 selects 64.
	// When a worker's queue is full, Submit fails fast with ErrSaturated
	// instead of queueing unbounded work.
	QueueDepth int
	// Solve computes the facts for one expression. Required.
	Solve SolveFunc
	// Cache, when set, feeds the factsvc_shard_occupancy gauge (the
	// fullest stripe of the sharded result cache). The service never
	// reads or writes entries itself — Solve owns cache policy.
	Cache *rescache.Cache
	// Metrics, when set, gains the factsvc_* instruments.
	Metrics *metrics.Registry
	// Tracer, when set, records one expr-level span per solved task.
	Tracer *trace.Tracer
	// RetryAfter is the backoff the HTTP layer advertises on
	// saturation; 0 selects 1s.
	RetryAfter time.Duration
}

// task is one scheduled solve. Duplicate submissions attach to the
// existing task instead of scheduling their own; everyone waits on done
// and shares the result fields.
type task struct {
	key     string // canonical key (canon.Canon.Key)
	hash    uint64 // canonical hash, routes the task to its worker
	f       *ir.Function
	done    chan struct{}
	facts   []Fact
	elapsed time.Duration
	err     error
}

// Service is the batched query pipeline: Submit canonicalizes, collapses
// duplicates of any live (queued or solving) task, and routes new tasks
// by canonical hash to a fixed worker — so two submissions of the same
// expression can never solve concurrently, and a hot expression costs
// one solve no matter how many callers race on it.
type Service struct {
	cfg    Config
	queues []chan *task
	wg     sync.WaitGroup

	mu     sync.Mutex
	live   map[string]*task
	closed bool

	// Instruments, resolved once at construction (nil registry → nil
	// instruments, checked at use).
	mExprs, mCollapsed, mRejected, mSolved, mErrors *metrics.Counter
	gQueue, gShardOcc                               *metrics.Gauge
	hLatency                                        *metrics.Histogram
}

// New starts the worker pool. Close releases it.
func New(cfg Config) (*Service, error) {
	if cfg.Solve == nil {
		return nil, errors.New("factsvc: Config.Solve is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	s := &Service{
		cfg:    cfg,
		queues: make([]chan *task, cfg.Workers),
		live:   make(map[string]*task),
	}
	if m := cfg.Metrics; m != nil {
		s.mExprs = m.Counter("factsvc_exprs")
		s.mCollapsed = m.Counter("factsvc_inflight_collapsed")
		s.mRejected = m.Counter("factsvc_rejected")
		s.mSolved = m.Counter("factsvc_solved")
		s.mErrors = m.Counter("factsvc_errors")
		s.gQueue = m.Gauge("factsvc_queue_depth")
		s.gShardOcc = m.Gauge("factsvc_shard_occupancy")
		s.hLatency = m.Histogram("factsvc_latency")
	}
	for i := range s.queues {
		s.queues[i] = make(chan *task, cfg.QueueDepth)
		s.wg.Add(1)
		go s.worker(i)
	}
	return s, nil
}

// RetryAfter returns the advisory backoff for saturated submissions.
func (s *Service) RetryAfter() time.Duration { return s.cfg.RetryAfter }

// Ticket is a claim on a scheduled (or shared) solve.
type Ticket struct {
	t *task
	// Collapsed reports that this submission attached to an already
	// live task instead of scheduling its own solve.
	Collapsed bool
	// Hash is the expression's canonical hash.
	Hash uint64
}

// Submit schedules f (or attaches to a live duplicate) and returns a
// Ticket to Wait on. It never blocks on a full queue: saturation is
// ErrSaturated, and the caller decides whether to retry.
func (s *Service) Submit(f *ir.Function) (*Ticket, error) {
	cn := canon.Canonicalize(f)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.mExprs != nil {
		s.mExprs.Inc()
	}
	if t, ok := s.live[cn.Key]; ok {
		s.mu.Unlock()
		if s.mCollapsed != nil {
			s.mCollapsed.Inc()
		}
		return &Ticket{t: t, Collapsed: true, Hash: cn.Hash}, nil
	}
	t := &task{key: cn.Key, hash: cn.Hash, f: cn.F, done: make(chan struct{})}
	// Hash-affinity routing: the same canonical expression always lands
	// on the same worker, so even if the live map missed (task finished
	// a moment ago), duplicates serialize instead of solving twice in
	// parallel.
	q := s.queues[cn.Hash%uint64(len(s.queues))]
	select {
	case q <- t:
		s.live[cn.Key] = t
		s.mu.Unlock()
		if s.gQueue != nil {
			s.gQueue.Add(1)
		}
		return &Ticket{t: t, Hash: cn.Hash}, nil
	default:
		s.mu.Unlock()
		if s.mRejected != nil {
			s.mRejected.Inc()
		}
		return nil, ErrSaturated
	}
}

// Result is one answered query.
type Result struct {
	Facts   []Fact
	Elapsed time.Duration // the solve's own duration (shared by waiters)
}

// Wait blocks until the ticket's solve completes or ctx is done.
func (tk *Ticket) Wait(ctx context.Context) (Result, error) {
	select {
	case <-tk.t.done:
		if tk.t.err != nil {
			return Result{}, tk.t.err
		}
		return Result{Facts: tk.t.facts, Elapsed: tk.t.elapsed}, nil
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

func (s *Service) worker(i int) {
	defer s.wg.Done()
	for t := range s.queues[i] {
		s.runTask(i, t)
	}
}

// runTask solves one task, publishes the result to every waiter, and
// retires the live-map entry. A panicking Solve is converted to an
// error so one poisonous expression cannot take a worker down.
func (s *Service) runTask(worker int, t *task) {
	defer func() {
		if r := recover(); r != nil {
			t.err = fmt.Errorf("factsvc: solve panicked: %v", r)
		}
		s.mu.Lock()
		delete(s.live, t.key)
		s.mu.Unlock()
		close(t.done)
		if s.gQueue != nil {
			s.gQueue.Add(-1)
		}
		if s.mSolved != nil {
			s.mSolved.Inc()
			if t.err != nil {
				s.mErrors.Inc()
			}
		}
		if s.hLatency != nil {
			s.hLatency.Observe(t.elapsed)
		}
		if s.gShardOcc != nil && s.cfg.Cache != nil {
			max := 0
			for _, l := range s.cfg.Cache.ShardLens() {
				if l > max {
					max = l
				}
			}
			s.gShardOcc.Set(int64(max))
		}
	}()
	ctx := context.Background()
	sp := s.cfg.Tracer.Start(nil, trace.KindExpr, "factsvc")
	if sp != nil {
		sp.SetInt("worker", int64(worker))
		sp.SetStr("hash", fmt.Sprintf("%016x", t.hash))
		ctx = trace.NewContext(ctx, sp)
		defer sp.End()
	}
	start := time.Now()
	t.facts, t.err = s.cfg.Solve(ctx, t.f)
	t.elapsed = time.Since(start)
}

// QueueLen returns the total number of queued-or-running tasks.
func (s *Service) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.live)
}

// Close stops accepting submissions, drains the queues, and waits for
// the workers to exit. Safe to call once.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	for _, q := range s.queues {
		close(q)
	}
	s.wg.Wait()
}
