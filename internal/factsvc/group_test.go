package factsvc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The satellite requirement: under 100 concurrent identical queries,
// exactly one execution is observed, everyone shares its result, and
// the other 99 are counted as collapsed. The barrier holds the leader
// inside fn until every other caller has attached, so the count is
// deterministic, not timing-dependent.
func TestGroupCollapses100ConcurrentIdenticalCalls(t *testing.T) {
	const n = 100
	var g Group
	var execs atomic.Int64
	fn := func() (any, error) {
		execs.Add(1)
		// Hold the flight open until all n-1 waiters have attached.
		deadline := time.Now().Add(10 * time.Second)
		for g.Collapsed() < n-1 {
			if time.Now().After(deadline) {
				return nil, errors.New("timed out waiting for waiters")
			}
			time.Sleep(50 * time.Microsecond)
		}
		return "the result", nil
	}

	var wg sync.WaitGroup
	vals := make([]any, n)
	errs := make([]error, n)
	shared := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], errs[i], shared[i] = g.Do("same-key", fn)
		}(i)
	}
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want exactly 1", got)
	}
	leaders := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if vals[i] != "the result" {
			t.Fatalf("caller %d got %v", i, vals[i])
		}
		if !shared[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders, want 1", leaders)
	}
	if got := g.Collapsed(); got != n-1 {
		t.Fatalf("Collapsed() = %d, want %d", got, n-1)
	}
	if g.InFlight() != 0 {
		t.Fatalf("InFlight() = %d after completion", g.InFlight())
	}
}

// Distinct keys must not serialize on each other.
func TestGroupDistinctKeysRunIndependently(t *testing.T) {
	var g Group
	var execs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, _ := g.Do(fmt.Sprintf("key-%d", i), func() (any, error) {
				execs.Add(1)
				return i, nil
			})
			if err != nil || v != i {
				t.Errorf("key-%d: got %v, %v", i, v, err)
			}
		}(i)
	}
	wg.Wait()
	if execs.Load() != 8 {
		t.Fatalf("execs = %d, want 8", execs.Load())
	}
}

// A Group is not a cache: sequential calls with the same key each
// execute (memoization belongs to rescache).
func TestGroupSequentialCallsRerun(t *testing.T) {
	var g Group
	var execs int
	for i := 0; i < 3; i++ {
		if _, err, shared := g.Do("k", func() (any, error) { execs++; return nil, nil }); err != nil || shared {
			t.Fatalf("call %d: err=%v shared=%v", i, err, shared)
		}
	}
	if execs != 3 {
		t.Fatalf("execs = %d, want 3", execs)
	}
	if g.Collapsed() != 0 {
		t.Fatalf("Collapsed = %d, want 0", g.Collapsed())
	}
}

// Errors are shared like values.
func TestGroupSharesError(t *testing.T) {
	var g Group
	want := errors.New("solve failed")
	_, err, _ := g.Do("k", func() (any, error) { return nil, want })
	if err != want {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

// A panicking leader must release its waiters with an error, then
// re-panic on its own goroutine — waiters deadlocking on a dead flight
// would hang the whole worker pool.
func TestGroupPanicReleasesWaiters(t *testing.T) {
	var g Group
	started := make(chan struct{})
	waiterDone := make(chan error, 1)
	go func() {
		<-started
		for g.InFlight() == 0 { // wait for the leader's flight to exist
			time.Sleep(50 * time.Microsecond)
		}
		_, err, _ := g.Do("k", func() (any, error) {
			return nil, errors.New("waiter must not execute")
		})
		waiterDone <- err
	}()

	leaderPanicked := make(chan any, 1)
	go func() {
		defer func() { leaderPanicked <- recover() }()
		close(started)
		g.Do("k", func() (any, error) {
			for g.Collapsed() == 0 { // hold until the waiter attaches
				time.Sleep(50 * time.Microsecond)
			}
			panic("boom")
		})
	}()

	select {
	case r := <-leaderPanicked:
		if r != "boom" {
			t.Fatalf("leader recovered %v, want boom", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("leader never finished")
	}
	select {
	case err := <-waiterDone:
		if err == nil {
			t.Fatal("waiter got nil error from a panicked flight")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter deadlocked on panicked flight")
	}
	if g.InFlight() != 0 {
		t.Fatalf("InFlight = %d after panic", g.InFlight())
	}
}
