package factsvc

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dfcheck/internal/ir"
	"dfcheck/internal/metrics"
)

const exprSrc = "%x:i8 = var\n%0:i8 = and 1:i8, %x\n%1:i8 = add %x, %0\ninfer %1"

func mustParse(t *testing.T, src string) *ir.Function {
	t.Helper()
	f, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// 100 concurrent submissions of the same expression must cost exactly
// one Solve call: the first schedules a task, the other 99 attach to it.
// The solve blocks until every submission is in, so the collapse count
// is deterministic.
func TestServiceCollapses100ConcurrentIdenticalQueries(t *testing.T) {
	const n = 100
	reg := metrics.NewRegistry()
	var solves atomic.Int64
	submitted := make(chan struct{})
	svc, err := New(Config{
		Workers:    4,
		QueueDepth: 8,
		Metrics:    reg,
		Solve: func(ctx context.Context, f *ir.Function) ([]Fact, error) {
			solves.Add(1)
			<-submitted // hold until all n submissions are in
			return []Fact{{Analysis: "known bits", Fact: "xxxxxxx0"}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	f := mustParse(t, exprSrc)
	tickets := make([]*Ticket, n)
	for i := 0; i < n; i++ {
		tk, err := svc.Submit(f)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		tickets[i] = tk
	}
	close(submitted)

	collapsed := 0
	var wg sync.WaitGroup
	results := make([]Result, n)
	for i, tk := range tickets {
		if tk.Collapsed {
			collapsed++
		}
		wg.Add(1)
		go func(i int, tk *Ticket) {
			defer wg.Done()
			res, err := tk.Wait(context.Background())
			if err != nil {
				t.Errorf("wait %d: %v", i, err)
				return
			}
			results[i] = res
		}(i, tk)
	}
	wg.Wait()

	if got := solves.Load(); got != 1 {
		t.Fatalf("Solve called %d times, want exactly 1", got)
	}
	if collapsed != n-1 {
		t.Fatalf("%d tickets collapsed, want %d", collapsed, n-1)
	}
	for i, res := range results {
		if len(res.Facts) != 1 || res.Facts[0].Fact != "xxxxxxx0" {
			t.Fatalf("result %d: %+v", i, res)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["factsvc_inflight_collapsed"]; got != n-1 {
		t.Fatalf("factsvc_inflight_collapsed = %d, want %d", got, n-1)
	}
	if got := snap.Counters["factsvc_solved"]; got != 1 {
		t.Fatalf("factsvc_solved = %d, want 1", got)
	}
}

// With one worker and a bounded queue, excess distinct submissions fail
// fast with ErrSaturated instead of blocking the caller.
func TestServiceSaturationFailsFast(t *testing.T) {
	reg := metrics.NewRegistry()
	release := make(chan struct{})
	svc, err := New(Config{
		Workers:    1,
		QueueDepth: 1,
		Metrics:    reg,
		RetryAfter: 2 * time.Second,
		Solve: func(ctx context.Context, f *ir.Function) ([]Fact, error) {
			<-release
			return nil, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	defer close(release)

	// Distinct expressions so nothing collapses: constants vary.
	srcs := []string{
		"%x:i8 = var\n%0:i8 = add 1:i8, %x\ninfer %0",
		"%x:i8 = var\n%0:i8 = add 2:i8, %x\ninfer %0",
		"%x:i8 = var\n%0:i8 = add 3:i8, %x\ninfer %0",
		"%x:i8 = var\n%0:i8 = add 4:i8, %x\ninfer %0",
		"%x:i8 = var\n%0:i8 = add 5:i8, %x\ninfer %0",
	}
	saturated := 0
	for _, src := range srcs {
		_, err := svc.Submit(mustParse(t, src))
		if errors.Is(err, ErrSaturated) {
			saturated++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	// One task is running (or about to), one fits in the queue; the
	// rest must be rejected.
	if saturated == 0 {
		t.Fatal("no submission saturated with Workers=1, QueueDepth=1 and 5 distinct exprs")
	}
	if got := reg.Snapshot().Counters["factsvc_rejected"]; got != int64(saturated) {
		t.Fatalf("factsvc_rejected = %d, want %d", got, saturated)
	}
	if svc.RetryAfter() != 2*time.Second {
		t.Fatalf("RetryAfter = %v", svc.RetryAfter())
	}
}

// Solve errors propagate to every waiter; panics become errors instead
// of killing the worker.
func TestServiceErrorAndPanicPropagation(t *testing.T) {
	boom := errors.New("solver exploded")
	mode := "error"
	svc, err := New(Config{
		Workers: 1,
		Solve: func(ctx context.Context, f *ir.Function) ([]Fact, error) {
			if mode == "panic" {
				panic("kaboom")
			}
			return nil, boom
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	tk, err := svc.Submit(mustParse(t, exprSrc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want %v", err, boom)
	}

	mode = "panic"
	tk, err = svc.Submit(mustParse(t, exprSrc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(context.Background()); err == nil {
		t.Fatal("panicking solve returned nil error")
	}
	// The worker survived: a further submission still completes.
	mode = "error"
	tk, err = svc.Submit(mustParse(t, exprSrc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("post-panic Wait = %v, want %v", err, boom)
	}
}

// Wait honors its context while the solve is stuck.
func TestTicketWaitContext(t *testing.T) {
	release := make(chan struct{})
	svc, err := New(Config{
		Workers: 1,
		Solve: func(ctx context.Context, f *ir.Function) ([]Fact, error) {
			<-release
			return nil, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	defer close(release)

	tk, err := svc.Submit(mustParse(t, exprSrc))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := tk.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait = %v, want deadline exceeded", err)
	}
}

// Close drains in-flight work and rejects later submissions.
func TestServiceClose(t *testing.T) {
	var solves atomic.Int64
	svc, err := New(Config{
		Workers: 2,
		Solve: func(ctx context.Context, f *ir.Function) ([]Fact, error) {
			solves.Add(1)
			return []Fact{{Analysis: "non-zero", Fact: "false"}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := svc.Submit(mustParse(t, exprSrc))
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	// The queued task was drained, not dropped.
	if _, err := tk.Wait(context.Background()); err != nil {
		t.Fatalf("pre-close ticket failed: %v", err)
	}
	if solves.Load() != 1 {
		t.Fatalf("solves = %d, want 1", solves.Load())
	}
	if _, err := svc.Submit(mustParse(t, exprSrc)); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Submit = %v, want ErrClosed", err)
	}
	svc.Close() // idempotent
}
