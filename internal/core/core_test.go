package core

import (
	"strings"
	"testing"

	"dfcheck/internal/compare"
	"dfcheck/internal/harvest"
	"dfcheck/internal/ir"
	"dfcheck/internal/llvmport"
)

func TestParseAutoSouper(t *testing.T) {
	f, err := ParseAuto("%x:i8 = var\n%0:i8 = add %x, 1:i8\ninfer %0")
	if err != nil {
		t.Fatal(err)
	}
	if f.Root.Op != ir.OpAdd {
		t.Errorf("root = %v", f.Root.Op)
	}
}

func TestParseAutoLLVM(t *testing.T) {
	f, err := ParseAuto("%0 = add i8 %x, 1")
	if err != nil {
		t.Fatal(err)
	}
	if f.Root.Op != ir.OpAdd || f.Root.Width != 8 {
		t.Errorf("root = %v i%d", f.Root.Op, f.Root.Width)
	}
}

func TestParseAutoErrors(t *testing.T) {
	if _, err := ParseAuto("garbage = text"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestCheckSourceFindsImprecision(t *testing.T) {
	results, err := CheckSource("%0 = shl i8 32, %x", Options{})
	if err != nil {
		t.Fatal(err)
	}
	var kb *compare.Result
	for i := range results {
		if results[i].Analysis == harvest.KnownBits {
			kb = &results[i]
		}
	}
	if kb == nil {
		t.Fatal("no known-bits result")
	}
	if kb.Outcome != compare.OracleMorePrecise {
		t.Errorf("outcome = %v, want oracle more precise", kb.Outcome)
	}
	if kb.OracleFact != "xxx00000" || kb.LLVMFact != "xxxxxxxx" {
		t.Errorf("facts = (%s, %s)", kb.OracleFact, kb.LLVMFact)
	}
}

func TestCheckWithInjectedBug(t *testing.T) {
	f := ir.MustParse(harvest.SoundnessTriggers[1].Source)
	results := Check(f, Options{Bugs: llvmport.BugConfig{SRemSignBits: true}})
	found := false
	for _, r := range results {
		if r.Analysis == harvest.SignBits && r.Outcome == compare.LLVMMorePrecise {
			found = true
		}
	}
	if !found {
		t.Error("injected bug not detected through core.Check")
	}
}

func TestInferAndCompilerFacts(t *testing.T) {
	f := ir.MustParse("%x:i8 = var (range=[1,3))\ninfer %x")
	all := Infer(f, 0)
	if !all.PowerOfTwo.Proved {
		t.Error("oracle power-of-two not proved")
	}
	cf := CompilerFacts(f, llvmport.BugConfig{})
	if cf.PowerOfTwo() {
		t.Error("LLVM port should miss this power-of-two fact")
	}
}

func TestFormatResults(t *testing.T) {
	f := ir.MustParse("%x:i8 = var\n%0:i8 = shl 32:i8, %x\ninfer %0")
	out := FormatResults(f, Check(f, Options{}))
	for _, want := range []string{
		"known bits from our tool: xxx00000",
		"known bits from llvm: xxxxxxxx",
		"souper is more precise",
		"demanded bits for %x",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
