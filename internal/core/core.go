// Package core is the high-level entry point tying the system together:
// parse an expression in either textual form, compute the compiler-under-
// test's dataflow facts and the solver-based maximally precise facts, and
// compare them — the full pipeline of the paper's Figure 1 for a single
// expression.
package core

import (
	"fmt"
	"strings"

	"dfcheck/internal/compare"
	"dfcheck/internal/harvest"
	"dfcheck/internal/ir"
	"dfcheck/internal/llvmir"
	"dfcheck/internal/llvmport"
	"dfcheck/internal/oracle"
)

// Options configure a check.
type Options struct {
	// Budget bounds each solver query in conflicts (0 = default).
	Budget int64
	// Bugs re-introduces historical soundness bugs into the compiler
	// under test (§4.7).
	Bugs llvmport.BugConfig
	// Modern applies the post-LLVM-8 precision improvements (§4.8).
	Modern bool
}

// ParseAuto reads an expression in Souper form (contains an "infer" line)
// or LLVM-like form (anything else).
func ParseAuto(src string) (*ir.Function, error) {
	for _, line := range strings.Split(src, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "infer ") {
			return ir.Parse(src)
		}
	}
	return llvmir.Parse(src)
}

// Check runs every Table 1 analysis on one expression and returns the
// per-analysis comparisons.
func Check(f *ir.Function, opts Options) []compare.Result {
	c := &compare.Comparator{
		Analyzer: &llvmport.Analyzer{Bugs: opts.Bugs, Modern: opts.Modern},
		Budget:   opts.Budget,
	}
	return c.CompareExpr(f)
}

// CheckSource parses and checks in one step.
func CheckSource(src string, opts Options) ([]compare.Result, error) {
	f, err := ParseAuto(src)
	if err != nil {
		return nil, err
	}
	return Check(f, opts), nil
}

// Infer computes only the oracle facts (the artifact's souper-check
// -infer-* mode).
func Infer(f *ir.Function, budget int64) oracle.All {
	return oracle.AnalyzeAll(f, budget)
}

// CompilerFacts computes only the LLVM-port facts (the artifact's
// -print-*-at-return mode).
func CompilerFacts(f *ir.Function, bugs llvmport.BugConfig) *llvmport.Facts {
	an := &llvmport.Analyzer{Bugs: bugs}
	return an.Analyze(f)
}

// CompilerFactsWith computes LLVM-port facts for a fully configured
// analyzer (bug injection and/or the Modern improvements).
func CompilerFactsWith(f *ir.Function, an llvmport.Analyzer) *llvmport.Facts {
	return an.Analyze(f)
}

// FormatResults renders comparison results the way the artifact's tool
// prints them.
func FormatResults(f *ir.Function, results []compare.Result) string {
	var sb strings.Builder
	sb.WriteString(f.String())
	for _, r := range results {
		label := string(r.Analysis)
		if r.Analysis == harvest.DemandedBits {
			label = fmt.Sprintf("%s for %%%s", r.Analysis, r.Var)
		}
		fmt.Fprintf(&sb, "%s from our tool: %s\n", label, r.OracleFact)
		fmt.Fprintf(&sb, "%s from llvm: %s\n", label, r.LLVMFact)
		fmt.Fprintf(&sb, "  -> %s\n", r.Outcome)
	}
	return sb.String()
}
