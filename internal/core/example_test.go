package core_test

import (
	"fmt"
	"log"

	"dfcheck/internal/core"
	"dfcheck/internal/harvest"
)

// The Figure 1 pipeline on the paper's first §4.2.1 example: both the
// compiler-under-test's fact and the maximally precise fact for the same
// expression, classified.
func ExampleCheckSource() {
	results, err := core.CheckSource(`
		%x:i8 = var
		%0:i8 = shl 32:i8, %x
		infer %0
	`, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		if r.Analysis == harvest.KnownBits {
			fmt.Printf("precise: %s\n", r.OracleFact)
			fmt.Printf("llvm:    %s\n", r.LLVMFact)
			fmt.Printf("-> %s\n", r.Outcome)
		}
	}
	// Output:
	// precise: xxx00000
	// llvm:    xxxxxxxx
	// -> souper is more precise
}

// LLVM-like syntax, as the paper prints its examples, is auto-detected.
func ExampleParseAuto() {
	f, err := core.ParseAuto("%0 = srem i32 %x, 8")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(f)
	// Output:
	// %x:i32 = var
	// %0:i32 = srem %x, 8:i32
	// infer %0
}

// Infer computes only the oracle-side facts (the artifact's -infer-* mode).
func ExampleInfer() {
	f, err := core.ParseAuto("%x = range [1,3)\n%0 = add i8 0, %x")
	if err != nil {
		log.Fatal(err)
	}
	all := core.Infer(f, 0)
	fmt.Println("known bits:", all.Known.Bits)
	fmt.Println("range:", all.Range.Range)
	fmt.Println("power of two:", all.PowerOfTwo.Proved)
	// Output:
	// known bits: 000000xx
	// range: [1,3)
	// power of two: true
}
