package compare

import (
	"context"
	"testing"

	"dfcheck/internal/harvest"
	"dfcheck/internal/ir"
	"dfcheck/internal/llvmport"
	"dfcheck/internal/metrics"
	"dfcheck/internal/reduce"
	"dfcheck/internal/rescache"
)

func analyzerWithBug(bug int) *llvmport.Analyzer {
	an := &llvmport.Analyzer{}
	switch bug {
	case 1:
		an.Bugs.NonZeroAdd = true
	case 2:
		an.Bugs.SRemSignBits = true
	case 3:
		an.Bugs.SRemKnownBits = true
	}
	return an
}

// TestNWayReducesOracleInvocations is the pre-filter's whole point: on a
// clean compiler the variants agree almost everywhere, so the SAT oracle
// runs on strictly fewer expressions than it does without -nway — and
// never produces a finding the plain comparison would not.
func TestNWayReducesOracleInvocations(t *testing.T) {
	corpus := ablationCorpus()

	plain := metrics.NewRegistry()
	prep := (&Comparator{Analyzer: &llvmport.Analyzer{}, Workers: 1, Metrics: plain}).Run(corpus)
	if len(prep.Findings) != 0 {
		t.Fatalf("clean baseline produced %d findings", len(prep.Findings))
	}

	nw := metrics.NewRegistry()
	nrep := (&Comparator{Analyzer: &llvmport.Analyzer{}, Workers: 1, Metrics: nw, NWay: true}).Run(corpus)
	if len(nrep.Findings) != 0 {
		t.Fatalf("clean n-way run produced %d findings", len(nrep.Findings))
	}

	if nrep.NWay == nil {
		t.Fatal("n-way run reported no NWay stats")
	}
	st := nrep.NWay
	if st.Exprs != len(corpus) {
		t.Errorf("NWay.Exprs = %d, want %d", st.Exprs, len(corpus))
	}
	if st.Agreed+st.Escalated+st.Dead != st.Exprs {
		t.Errorf("NWay partition does not add up: %+v", *st)
	}
	if st.Agreed == 0 {
		t.Errorf("pre-filter never agreed on a clean corpus: %+v", *st)
	}
	if st.Escalated >= st.Comparisons {
		t.Errorf("escalations (%d) not below comparisons (%d)", st.Escalated, st.Comparisons)
	}

	pq := plain.Counter("solver_queries").Value()
	nq := nw.Counter("solver_queries").Value()
	if nq >= pq {
		t.Errorf("solver_queries with n-way = %d, without = %d; want a reduction", nq, pq)
	}
	pe := plain.Counter("exprs_compared").Value()
	ne := nw.Counter("exprs_compared").Value()
	if ne >= pe {
		t.Errorf("exprs_compared with n-way = %d, without = %d; want a reduction", ne, pe)
	}
	if ne != int64(st.Escalated) {
		t.Errorf("oracle ran on %d expressions but %d escalated", ne, st.Escalated)
	}
	if got := nw.Counter("nway_escalations").Value(); got != int64(st.Escalated) {
		t.Errorf("nway_escalations counter = %d, report says %d", got, st.Escalated)
	}
}

// TestNWaySeededBugFindings runs each §4.7 trigger under its bug with
// -nway: bugs 1 and 3 (small input spaces) must surface as solver-free
// variant contradictions, and bug 2 (32-bit input space) must escalate
// and be caught by the oracle as a plain soundness finding.
func TestNWaySeededBugFindings(t *testing.T) {
	for _, tr := range harvest.SoundnessTriggers {
		corpus := []harvest.Expr{{Name: "trigger-" + tr.Name, F: ir.MustParse(tr.Source), Freq: 1}}
		c := &Comparator{Analyzer: analyzerWithBug(tr.Bug), Workers: 1, NWay: true}
		rep := c.Run(corpus)
		if rep.NWay == nil || rep.NWay.Escalated == 0 {
			t.Errorf("%s: seeded bug did not escalate: %+v", tr.Name, rep.NWay)
			continue
		}
		wantKind := FindingVariant
		if tr.Bug == 2 {
			wantKind = FindingSoundness
		}
		found := false
		for _, f := range rep.Findings {
			if f.Kind == wantKind && f.Result.Analysis == tr.Analysis {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no %s finding for %s in %d findings", tr.Name, wantKind, tr.Analysis, len(rep.Findings))
		}
	}
}

// TestNWayCachedParity: the cached worker path must produce the same
// report — rows, findings, and NWay totals — as the uncached path, with
// the n-way check run once per canonical group and folded back per
// member.
func TestNWayCachedParity(t *testing.T) {
	corpus := ablationCorpus()
	for _, tr := range harvest.SoundnessTriggers {
		corpus = append(corpus, harvest.Expr{Name: "trigger-" + tr.Name, F: ir.MustParse(tr.Source), Freq: 1})
	}
	bugs := llvmport.BugConfig{NonZeroAdd: true, SRemSignBits: true, SRemKnownBits: true}
	plain := (&Comparator{Analyzer: &llvmport.Analyzer{Bugs: bugs}, Workers: 1, NWay: true}).Run(corpus)
	cached := (&Comparator{Analyzer: &llvmport.Analyzer{Bugs: bugs}, Workers: 1, NWay: true, Cache: rescache.New()}).Run(corpus)
	compareReports(t, "nway-cached", cached, plain)
	if plain.NWay == nil || cached.NWay == nil {
		t.Fatalf("missing NWay stats: plain %v, cached %v", plain.NWay, cached.NWay)
	}
	if *plain.NWay != *cached.NWay {
		t.Errorf("NWay totals differ:\nuncached: %+v\ncached:   %+v", *plain.NWay, *cached.NWay)
	}
	if len(plain.Findings) == 0 {
		t.Fatal("bugged n-way run produced no findings")
	}
}

// TestReducedFindingsAreOneMinimal is the reducer's acceptance contract:
// every seeded-bug finding carries a reduced source that still triggers
// the same finding kind and cannot be shrunk by any further single step.
func TestReducedFindingsAreOneMinimal(t *testing.T) {
	for _, tr := range harvest.SoundnessTriggers {
		corpus := []harvest.Expr{{Name: "trigger-" + tr.Name, F: ir.MustParse(tr.Source), Freq: 1}}
		c := &Comparator{Analyzer: analyzerWithBug(tr.Bug), Workers: 1, NWay: true, Reduce: true}
		rep := c.Run(corpus)
		if len(rep.Findings) == 0 {
			t.Errorf("%s: no findings to reduce", tr.Name)
			continue
		}
		for _, fd := range rep.Findings {
			if fd.Reduced == "" {
				t.Errorf("%s: finding %s/%s has no reduced source", tr.Name, fd.Kind, fd.Result.Analysis)
				continue
			}
			g, err := ir.Parse(fd.Reduced)
			if err != nil {
				t.Errorf("%s: reduced source does not re-parse: %v\n%s", tr.Name, err, fd.Reduced)
				continue
			}
			prop := c.FindingProperty(context.Background(), fd)
			if !prop(g) {
				t.Errorf("%s: reduced expression lost the finding:\n%s", tr.Name, fd.Reduced)
				continue
			}
			if again := reduce.Reduce(g, prop); again.Steps != 0 {
				t.Errorf("%s: reduced expression shrank further by %d steps:\n%s\n->\n%s",
					tr.Name, again.Steps, fd.Reduced, again.F)
			}
		}
	}
}
