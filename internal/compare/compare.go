// Package compare implements the pipeline of the paper's Figure 1: run
// the LLVM-port analyses and the solver-based oracle over the same
// expression and classify each result pair as equal precision, oracle
// more precise (an LLVM imprecision), or LLVM more precise (an LLVM
// soundness bug, since the oracle is maximally precise), with resource
// exhaustion tracked separately — exactly the categories of Table 1.
package compare

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"dfcheck/internal/absint"
	"dfcheck/internal/canon"
	"dfcheck/internal/eval"
	"dfcheck/internal/factsvc"
	"dfcheck/internal/harvest"
	"dfcheck/internal/ir"
	"dfcheck/internal/llvmport"
	"dfcheck/internal/metrics"
	"dfcheck/internal/nway"
	"dfcheck/internal/oracle"
	"dfcheck/internal/reduce"
	"dfcheck/internal/rescache"
	"dfcheck/internal/solver"
	"dfcheck/internal/trace"
)

// Outcome classifies one (expression, analysis) comparison.
type Outcome int

// Outcomes, in Table 1 column order. Inconsistent sits outside the
// table: it is produced by the solver-free cross-domain lint, not by an
// oracle comparison.
const (
	Same Outcome = iota
	OracleMorePrecise
	LLVMMorePrecise // a soundness bug in the compiler under test
	ResourceExhausted
	// Inconsistent marks a contradiction between two of the compiler's
	// own domains on the same live value (reduced-product check): at
	// least one transfer function is unsound, detected with zero solver
	// queries.
	Inconsistent
	// VariantsContradict marks two analyzer variants whose facts for the
	// same live value cannot both be sound (n-way differential mode): the
	// concretizations are disjoint, or one claim is strictly stronger
	// than exhaustively computed exact facts. Like Inconsistent, it is
	// established without any solver query.
	VariantsContradict
)

func (o Outcome) String() string {
	switch o {
	case Same:
		return "same precision"
	case OracleMorePrecise:
		return "souper is more precise"
	case LLVMMorePrecise:
		return "llvm is stronger"
	case ResourceExhausted:
		return "resource exhaustion"
	case Inconsistent:
		return "inconsistent domains"
	case VariantsContradict:
		return "variants contradict"
	}
	return "unknown"
}

// ConsistencyAnalysis labels results produced by the cross-domain
// consistency lint; it is not a Table 1 analysis.
const ConsistencyAnalysis harvest.Analysis = "consistency"

// Result is one comparison: the outcome and both facts rendered the way
// the paper prints them.
type Result struct {
	Analysis   harvest.Analysis
	Outcome    Outcome
	OracleFact string
	LLVMFact   string
	// Var is set for demanded-bits results (one per input variable).
	Var string
	// Elapsed is the oracle computation time attributed to this result
	// (for demanded bits, the whole per-expression time is attributed to
	// the first variable's entry). Cache hits replay the time the
	// original computation took, keeping cached reports deterministic.
	Elapsed time.Duration
}

// Comparator runs the oracle against a (possibly bug-injected) LLVM port.
type Comparator struct {
	Analyzer *llvmport.Analyzer
	// Budget is the per-query solver conflict budget (0 = default),
	// standing in for the paper's 30-second Z3 timeout.
	Budget int64
	// Workers sets the number of expressions compared concurrently by
	// Run (the paper spread its evaluation across several machines;
	// expressions are independent). 0 or 1 means sequential.
	Workers int
	// ExprTimeout caps the total oracle time per expression; queries
	// beyond it come back as resource exhaustion, like the paper's
	// five-minute cap (§4.1). Zero means no cap.
	ExprTimeout time.Duration
	// Cache, when set, switches Run to the duplication-aware path: the
	// corpus is grouped by canonical form (internal/canon), each unique
	// expression is analyzed once, and oracle results are memoized in
	// the cache — within the run and, if the cache is persisted, across
	// runs. This exploits the §3.1 duplication statistics the way the
	// original artifact's Redis store did.
	Cache *rescache.Cache
	// Metrics, when set, is instrumented with solver query counters,
	// per-expression latency histograms, worker utilization, cache
	// traffic, and finding counts — the observability a long unattended
	// campaign needs. Nil disables instrumentation at zero cost.
	Metrics *metrics.Registry
	// NoSeed disables sound-fact seeding of the oracle (the -no-seed
	// ablation): every fact is then established by solver queries alone.
	NoSeed bool
	// NoStrash disables structural hashing during bit-blasting (the
	// -no-strash ablation), restoring the one-gate-per-request circuits.
	NoStrash bool
	// EnumCutoff overrides the input-width bound below which expressions
	// are analyzed by exhaustive enumeration instead of SAT: 0 selects
	// solver.DefaultEnumCutoff, negative disables the fast path.
	EnumCutoff int
	// Portfolio overrides the clone count for hard-query portfolio
	// solving: 0 selects solver.DefaultPortfolio, negative disables the
	// portfolio (the -no-portfolio ablation). PortfolioAfter overrides
	// the conflict threshold before a query escalates (0 selects
	// sat.DefaultPortfolioAfter).
	Portfolio      int
	PortfolioAfter int64
	// PortfolioSeed perturbs the portfolio clones' decision heuristics.
	// Reports are identical for every seed (clone results agree on
	// SAT/UNSAT; only which clone wins the race varies), so the seed is
	// excluded from cache keys and campaign fingerprints — a property
	// locked in by the portfolio-determinism tests.
	PortfolioSeed int64
	// Tracer, when set, records a hierarchical span per run, expression,
	// analysis, oracle iteration, and solver query (the -trace flag).
	// Nil compiles to the untraced near-zero-cost path.
	Tracer *trace.Tracer
	// Consistency additionally runs the solver-free cross-domain lint
	// (internal/absint.CheckFacts) on every analyzed expression:
	// contradictions between the compiler's own domains surface as
	// Inconsistent findings without costing a single oracle query.
	Consistency bool
	// Domains widens the consistency lint's reduced product with the
	// self-contained transfer domains listed here (absint.Tnums,
	// absint.Strides — resolve names with absint.DomainByName): their
	// abstract interpreters run per expression and their facts join the
	// tnum×known-bits, tnum×range, and stride×range contradiction
	// checks. Nil keeps the classic four-domain lint; the Table 1 oracle
	// comparison is unaffected either way.
	Domains []absint.Domain
	// NWay switches on the n-way differential pre-filter (internal/nway):
	// every registered analyzer variant computes its facts, the facts are
	// cross-checked pairwise per domain, and the oracle runs only on
	// expressions where some pair disagrees. Contradictory pairs surface
	// as VariantsContradict findings; agreeing expressions skip the
	// oracle entirely, so Table 1 rows cover escalated expressions only
	// (Report.NWay accounts for the rest).
	NWay bool
	// Reduce shrinks every finding to a 1-minimal expression preserving
	// its finding kind (internal/reduce) and attaches the reduced source
	// to the finding. Reduction re-runs the finding's check (oracle
	// comparison, n-way cross-check, or consistency lint) per candidate,
	// so it costs time proportional to finding count, not corpus size.
	Reduce bool

	// flight collapses identical in-flight oracle work across the
	// worker pool (and across concurrent Runs sharing this Comparator,
	// as the fact service and a campaign do): the cache answers queries
	// that finished, the flight answers queries that are still running.
	// Waiters count into the flight_collapsed metric and adopt the
	// leader's result like a cache hit, so the report is unchanged —
	// only the redundant solver work disappears.
	flight factsvc.Group
	// flightHook, when set, runs at the start of every flight leader's
	// computation. Tests use it to hold the leader until all expected
	// waiters have attached, making collapse counts deterministic.
	flightHook func()
}

// analysisOrder maps oracleSet.Elapsed indices to analysis names, in the
// Table 1 order computeOracle runs them.
var analysisOrder = [8]harvest.Analysis{
	harvest.KnownBits, harvest.SignBits, harvest.NonZero, harvest.Negative,
	harvest.NonNegative, harvest.PowerOfTwo, harvest.IntegerRange, harvest.DemandedBits,
}

// rootSpan returns ctx carrying the span this run's expression spans nest
// under: the span already in ctx (a campaign batch), else a fresh root on
// the configured tracer. The returned func ends the span only when it was
// opened here.
func (c *Comparator) rootSpan(ctx context.Context, name string) (context.Context, func()) {
	if trace.FromContext(ctx) != nil {
		return ctx, func() {}
	}
	sp := c.Tracer.Start(nil, trace.KindBatch, name)
	if sp == nil {
		return ctx, func() {}
	}
	return trace.NewContext(ctx, sp), sp.End
}

// exprSpan opens the per-expression span, named by the root opcode and
// carrying the width and canonical hash/key that let trace-report group
// hotspots and collapse duplicates. The canonicalization is paid only
// when tracing is live.
func (c *Comparator) exprSpan(ctx context.Context, f *ir.Function, cn *canon.Canon) *trace.Span {
	sp := trace.FromContext(ctx).Child(trace.KindExpr, f.Root.Op.String())
	if sp == nil {
		return nil
	}
	if cn == nil {
		cn = canon.Canonicalize(f)
	}
	sp.SetInt("width", int64(f.Width()))
	sp.SetStr("hash", fmt.Sprintf("%016x", cn.Hash))
	sp.SetStr("key", cn.Key)
	return sp
}

// endExprSpan closes an expression span, stamping the solver totals the
// expression cost.
func endExprSpan(sp *trace.Span, st solver.Stats) {
	if sp == nil {
		return
	}
	sp.SetInt("queries", st.Queries)
	sp.SetInt("conflicts", st.Conflicts)
	sp.SetInt("exhausted", st.Exhausted)
	sp.End()
}

// newEngine builds an engine honoring the per-expression deadline and the
// run's cancellation context; small expressions get the enumeration fast
// path, everything else the SAT engine.
func (c *Comparator) newEngine(ctx context.Context, f *ir.Function, deadline time.Time) solver.Engine {
	if ctx == context.Background() {
		ctx = nil
	}
	return solver.NewEngine(f, solver.Config{
		Budget:         c.Budget,
		Deadline:       deadline,
		Ctx:            ctx,
		NoStrash:       c.NoStrash,
		EnumCutoff:     c.EnumCutoff,
		Portfolio:      c.Portfolio,
		PortfolioAfter: c.PortfolioAfter,
		PortfolioSeed:  c.PortfolioSeed,
	})
}

// seed computes the sound-fact seed for f, or the empty seed under the
// -no-seed ablation.
func (c *Comparator) seed(f *ir.Function) oracle.Seed {
	if c.NoSeed {
		return oracle.Seed{}
	}
	return oracle.ComputeSeed(f)
}

// recordOracle rolls one expression's solver work into the metrics
// registry (worker goroutine; all instruments are atomic).
func (c *Comparator) recordOracle(o *oracleSet) {
	if c.Metrics == nil {
		return
	}
	var total time.Duration
	for _, d := range o.Elapsed {
		total += d
	}
	c.Metrics.Counter("exprs_compared").Inc()
	c.Metrics.Counter("solver_queries").Add(o.Solver.Queries)
	c.Metrics.Counter("solver_conflicts").Add(o.Solver.Conflicts)
	c.Metrics.Counter("solver_propagations").Add(o.Solver.Propagations)
	c.Metrics.Counter("solver_decisions").Add(o.Solver.Decisions)
	c.Metrics.Counter("solver_restarts").Add(o.Solver.Restarts)
	c.Metrics.Counter("solver_learned").Add(o.Solver.Learned)
	c.Metrics.Counter("solver_exhausted").Add(o.Solver.Exhausted)
	c.Metrics.Counter("solver_pruned_queries").Add(o.Solver.Pruned)
	c.Metrics.Counter("solver_enum_queries").Add(o.Solver.EnumQueries)
	c.Metrics.Counter("solver_gates_built").Add(o.Solver.GatesBuilt)
	c.Metrics.Counter("solver_gates_deduped").Add(o.Solver.GatesDeduped)
	c.Metrics.Counter("solver_portfolio_runs").Add(o.Solver.PortfolioRuns)
	c.Metrics.Counter("solver_portfolio_wins").Add(o.Solver.PortfolioWins)
	c.Metrics.Counter("solver_units_imported").Add(o.Solver.UnitsImported)
	c.Metrics.Counter("solver_units_exported").Add(o.Solver.UnitsExported)
	c.Metrics.Histogram("expr_latency").Observe(total)
	// The outcome split separates expressions the solver budget covered
	// from ones it exhausted — the saturated tail would otherwise hide
	// inside the bare expr_latency histogram.
	outcome := "solved"
	if o.Solver.Exhausted > 0 {
		outcome = "exhausted"
	}
	c.Metrics.HistogramL("expr_latency", metrics.Labels{"outcome": outcome}).Observe(total)
}

// markBusy tracks worker utilization around one expression.
func (c *Comparator) markBusy(delta int64) {
	if c.Metrics != nil {
		c.Metrics.Gauge("workers_busy").Add(delta)
	}
}

// oracleSet bundles the eight oracle facts for one expression, plus the
// time each took and the solver work they cost. Indices into Elapsed
// follow the Table 1 analysis order.
type oracleSet struct {
	Known    oracle.KnownBitsResult
	Sign     oracle.SignBitsResult
	NonZero  oracle.BoolResult
	Negative oracle.BoolResult
	NonNeg   oracle.BoolResult
	Pow2     oracle.BoolResult
	Range    oracle.RangeResult
	Demanded oracle.DemandedBitsResult
	Elapsed  [8]time.Duration
	Solver   solver.Stats
}

// computeOracle computes the oracle set for f. With Workers > 1,
// textually identical expressions that race within the pool collapse to
// one computation through the single-flight group; waiters adopt the
// leader's result set. The flight keys on the exact source text, not the
// canonical form: demanded-bits results are named in the expression's
// own variables, so only byte-identical duplicates can share a set
// (alpha-variants are the cached path's job).
func (c *Comparator) computeOracle(ctx context.Context, f *ir.Function) *oracleSet {
	if c.Workers <= 1 {
		return c.computeOracleOnce(ctx, f)
	}
	v, _, shared := c.flight.Do("expr\x00"+f.String(), func() (any, error) {
		if c.flightHook != nil {
			c.flightHook()
		}
		return c.computeOracleOnce(ctx, f), nil
	})
	o := v.(*oracleSet)
	if shared {
		c.recordFlightWaiter(o)
	}
	return o
}

// recordFlightWaiter accounts one expression answered by another
// worker's in-flight computation: it counts as a compared expression
// with the leader's replayed latency, but none of the solver work is
// re-counted (it happened exactly once, on the leader).
func (c *Comparator) recordFlightWaiter(o *oracleSet) {
	if c.Metrics == nil {
		return
	}
	c.Metrics.Counter("flight_collapsed").Inc()
	c.Metrics.Counter("exprs_compared").Inc()
	var total time.Duration
	for _, d := range o.Elapsed {
		total += d
	}
	c.Metrics.Histogram("expr_latency").Observe(total)
}

// countFlightCollapsed counts one per-analysis collapse on the cached
// path.
func (c *Comparator) countFlightCollapsed() {
	if c.Metrics != nil {
		c.Metrics.Counter("flight_collapsed").Inc()
	}
}

// computeOracleOnce runs all eight oracle algorithms on f under the
// per-expression deadline, timing each. One engine serves every analysis,
// so the bit-blasted circuit, learned clauses, and the expression's total
// conflict budget are shared across them (earlier versions paid eight
// cold bit-blasts and leaked eight independent budgets per expression).
func (c *Comparator) computeOracleOnce(ctx context.Context, f *ir.Function) *oracleSet {
	var deadline time.Time
	if c.ExprTimeout > 0 {
		deadline = time.Now().Add(c.ExprTimeout)
	}
	o := &oracleSet{}
	eng := c.newEngine(ctx, f, deadline)
	sd := c.seed(f)
	sp := c.exprSpan(ctx, f, nil)
	run := func(i int, compute func()) {
		asp := sp.Child(trace.KindAnalysis, string(analysisOrder[i]))
		eng.SetTraceSpan(asp)
		start := time.Now()
		compute()
		o.Elapsed[i] = time.Since(start)
		asp.End()
	}
	run(0, func() { o.Known = oracle.KnownBitsSeeded(eng, f, sd) })
	if o.Known.Feasible {
		sd.EnrichFromKnown(o.Known.Bits, !o.Known.Exhausted)
	}
	run(1, func() { o.Sign = oracle.SignBitsSeeded(eng, f, sd) })
	run(2, func() { o.NonZero = oracle.NonZeroSeeded(eng, f, sd) })
	run(3, func() { o.Negative = oracle.NegativeSeeded(eng, f, sd) })
	run(4, func() { o.NonNeg = oracle.NonNegativeSeeded(eng, f, sd) })
	run(5, func() { o.Pow2 = oracle.PowerOfTwoSeeded(eng, f, sd) })
	run(6, func() { o.Range = oracle.IntegerRangeSeeded(eng, f, sd) })
	run(7, func() { o.Demanded = oracle.DemandedBits(eng, f) })
	o.Solver = eng.Stats()
	endExprSpan(sp, o.Solver)
	c.recordOracle(o)
	return o
}

// cacheConfig renders the comparator configuration that oracle cache
// entries are keyed under. The oracle itself is independent of the
// compiler under test, but keying on the full configuration keeps cache
// files unambiguous about what produced them (as the artifact's Redis
// keys did) at the cost of re-running when a bug flag changes.
func (c *Comparator) cacheConfig() string {
	var an llvmport.Analyzer
	if c.Analyzer != nil {
		an = *c.Analyzer
	}
	return fmt.Sprintf("bug-nonzero=%t;bug-sremsign=%t;bug-sremknown=%t;modern=%t;timeout=%s;no-seed=%t;no-strash=%t;enum-cutoff=%d;portfolio=%d",
		an.Bugs.NonZeroAdd, an.Bugs.SRemSignBits, an.Bugs.SRemKnownBits, an.Modern, c.ExprTimeout,
		c.NoSeed, c.NoStrash, c.EnumCutoff, c.Portfolio)
}

// DomainNames renders the extended-lint domain list (e.g. "tnum,stride")
// for checkpoint fingerprints and logs; empty for the classic lint.
func (c *Comparator) DomainNames() string {
	var sb strings.Builder
	for i, d := range c.Domains {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(d.Name())
	}
	return sb.String()
}

// flightVal is what one cached-path flight computes: the analysis
// result and the time it took (replayed by waiters, like a cache hit).
type flightVal struct {
	v       any
	elapsed time.Duration
}

// flightKey renders a rescache key for the single-flight map. NUL
// separators keep distinct keys from colliding (no key field contains
// NUL).
func flightKey(k rescache.Key) string {
	return k.Expr + "\x00" + k.Analysis + "\x00" + strconv.FormatInt(k.Budget, 10) + "\x00" + k.Config
}

// oracleCached assembles the oracle set for a canonical expression,
// consulting the cache per analysis and computing (then storing) the
// misses. Demanded-bits entries are stored in the canonical variable
// namespace, so they apply to every alpha-variant of the expression.
//
// Results computed while ctx is (or becomes) cancelled are never written
// back: a cancellation-degraded result in a persisted cache would make a
// resumed campaign silently diverge from an uninterrupted one.
func (c *Comparator) oracleCached(ctx context.Context, cn *canon.Canon) *oracleSet {
	f := cn.F
	var deadline time.Time
	if c.ExprTimeout > 0 {
		deadline = time.Now().Add(c.ExprTimeout)
	}
	cfg := c.cacheConfig()
	o := &oracleSet{}
	sp := c.exprSpan(ctx, f, cn)
	// The engine and seed are built lazily: a fully cache-hit expression
	// never constructs either.
	var eng solver.Engine
	engine := func() solver.Engine {
		if eng == nil {
			eng = c.newEngine(ctx, f, deadline)
		}
		return eng
	}
	var sd oracle.Seed
	seeded := false
	seed := func() oracle.Seed {
		if !seeded {
			sd = c.seed(f)
			seeded = true
		}
		return sd
	}
	step := func(i int, a harvest.Analysis, fromCache func(any) bool, compute func(e solver.Engine) any) {
		k := rescache.Key{Expr: cn.Key, Analysis: string(a), Budget: c.Budget, Config: cfg}
		if e, ok := c.Cache.Get(k); ok && fromCache(e.Value) {
			o.Elapsed[i] = e.Elapsed
			return
		}
		solve := func() (any, error) {
			if c.flightHook != nil {
				c.flightHook()
			}
			start := time.Now()
			e := engine()
			asp := sp.Child(trace.KindAnalysis, string(a))
			e.SetTraceSpan(asp)
			v := compute(e)
			asp.End()
			elapsed := time.Since(start)
			if ctx.Err() != nil {
				// Possibly degraded by cancellation: do not memoize.
				return flightVal{v: v, elapsed: elapsed}, nil
			}
			c.Cache.Put(k, rescache.Entry{Value: v, Elapsed: elapsed})
			return flightVal{v: v, elapsed: elapsed}, nil
		}
		if c.Workers <= 1 {
			fv, _ := solve()
			o.Elapsed[i] = fv.(flightVal).elapsed
			return
		}
		// Collapse the race window the cache cannot see: an identical
		// (expr, analysis, budget, config) query already being solved by
		// another worker — in this Run, a concurrent Run, or the fact
		// service — is joined instead of recomputed.
		res, _, shared := c.flight.Do(flightKey(k), solve)
		fv := res.(flightVal)
		if shared {
			if fromCache(fv.v) {
				o.Elapsed[i] = fv.elapsed
				c.countFlightCollapsed()
				return
			}
			// Unreachable for equal keys (the leader's value always has
			// the key's result type); recompute locally as a safety net.
			res, _ = solve()
			fv = res.(flightVal)
		}
		o.Elapsed[i] = fv.elapsed
	}
	step(0, harvest.KnownBits,
		func(v any) (ok bool) { o.Known, ok = v.(oracle.KnownBitsResult); return },
		func(e solver.Engine) any { o.Known = oracle.KnownBitsSeeded(e, f, seed()); return o.Known })
	// Whether the known bits came from the cache or a fresh run, they
	// enrich the seed for the analyses below.
	if o.Known.Feasible {
		s := seed()
		s.EnrichFromKnown(o.Known.Bits, !o.Known.Exhausted)
		sd = s
	}
	step(1, harvest.SignBits,
		func(v any) (ok bool) { o.Sign, ok = v.(oracle.SignBitsResult); return },
		func(e solver.Engine) any { o.Sign = oracle.SignBitsSeeded(e, f, seed()); return o.Sign })
	step(2, harvest.NonZero,
		func(v any) (ok bool) { o.NonZero, ok = v.(oracle.BoolResult); return },
		func(e solver.Engine) any { o.NonZero = oracle.NonZeroSeeded(e, f, seed()); return o.NonZero })
	step(3, harvest.Negative,
		func(v any) (ok bool) { o.Negative, ok = v.(oracle.BoolResult); return },
		func(e solver.Engine) any { o.Negative = oracle.NegativeSeeded(e, f, seed()); return o.Negative })
	step(4, harvest.NonNegative,
		func(v any) (ok bool) { o.NonNeg, ok = v.(oracle.BoolResult); return },
		func(e solver.Engine) any { o.NonNeg = oracle.NonNegativeSeeded(e, f, seed()); return o.NonNeg })
	step(5, harvest.PowerOfTwo,
		func(v any) (ok bool) { o.Pow2, ok = v.(oracle.BoolResult); return },
		func(e solver.Engine) any { o.Pow2 = oracle.PowerOfTwoSeeded(e, f, seed()); return o.Pow2 })
	step(6, harvest.IntegerRange,
		func(v any) (ok bool) { o.Range, ok = v.(oracle.RangeResult); return },
		func(e solver.Engine) any { o.Range = oracle.IntegerRangeSeeded(e, f, seed()); return o.Range })
	step(7, harvest.DemandedBits,
		func(v any) (ok bool) { o.Demanded, ok = v.(oracle.DemandedBitsResult); return },
		func(e solver.Engine) any { o.Demanded = oracle.DemandedBits(e, f); return o.Demanded })
	if eng != nil {
		o.Solver = eng.Stats()
	}
	endExprSpan(sp, o.Solver)
	c.recordOracle(o)
	return o
}

// classify turns the oracle facts and the LLVM-port facts for f into the
// Table 1 result list: one entry per forward analysis plus one entry per
// input variable for demanded bits.
func (c *Comparator) classify(f *ir.Function, fa *llvmport.Facts, o *oracleSet) []Result {
	out := make([]Result, 0, 7+len(f.Vars))
	add := func(i int, r Result) {
		r.Elapsed = o.Elapsed[i]
		out = append(out, r)
	}
	add(0, compareKnownBits(o.Known, fa))
	add(1, compareSignBits(o.Sign, fa))
	add(2, compareBool(harvest.NonZero, o.NonZero, fa.NonZero()))
	add(3, compareBool(harvest.Negative, o.Negative, fa.Negative()))
	add(4, compareBool(harvest.NonNegative, o.NonNeg, fa.NonNegative()))
	add(5, compareBool(harvest.PowerOfTwo, o.Pow2, fa.PowerOfTwo()))
	add(6, compareRange(o.Range, fa))
	dm := compareDemanded(o.Demanded, fa, f)
	if len(dm) > 0 {
		dm[0].Elapsed = o.Elapsed[7]
	}
	out = append(out, dm...)
	return out
}

// CompareExpr runs all eight analyses of Table 1 on one expression. The
// returned results contain one entry per forward analysis plus one entry
// per input variable for demanded bits (the paper counts demanded-bits
// comparisons per variable).
func (c *Comparator) CompareExpr(f *ir.Function) []Result {
	return c.CompareExprContext(context.Background(), f)
}

// CompareExprContext is CompareExpr under a cancellation context: when
// ctx is cancelled, in-flight solver queries abort within one check
// interval and the remaining queries fail fast, so the expression still
// comes back with well-formed (exhaustion-degraded) results promptly.
func (c *Comparator) CompareExprContext(ctx context.Context, f *ir.Function) []Result {
	results, _, _ := c.compareOne(ctx, f)
	return results
}

// nwayExprStats is one expression's n-way pre-filter outcome.
type nwayExprStats struct {
	comparisons, disagreements, contradictions int
	escalated, agreed, dead                    bool
}

// nwayCheck cross-checks all analyzer variants on f, returning the
// pre-filter stats and the contradiction results (gated, like the
// consistency lint, on the expression having a well-defined input: on
// dead code arbitrary fact sets are vacuously sound).
func (c *Comparator) nwayCheck(ctx context.Context, f *ir.Function) (*nwayExprStats, []Result) {
	sp := trace.FromContext(ctx).Child(trace.KindAnalysis, "nway")
	cmp := nway.Compare(f, nway.Variants(c.Analyzer))
	st := &nwayExprStats{
		comparisons:    cmp.Checks,
		disagreements:  cmp.Disagreements,
		contradictions: len(cmp.Contradictions),
		escalated:      cmp.Escalate(),
		dead:           cmp.Dead,
	}
	st.agreed = !cmp.Dead && !cmp.Escalate()
	if sp != nil {
		sp.SetInt("comparisons", int64(st.comparisons))
		sp.SetInt("disagreements", int64(st.disagreements))
		sp.SetInt("contradictions", int64(st.contradictions))
		sp.End()
	}
	if c.Metrics != nil {
		c.Metrics.Counter("nway_exprs").Inc()
		c.Metrics.Counter("nway_comparisons").Add(int64(st.comparisons))
		if st.escalated {
			c.Metrics.Counter("nway_escalations").Inc()
		}
		if st.agreed {
			c.Metrics.Counter("nway_agreed").Inc()
		}
	}
	if len(cmp.Contradictions) == 0 || !hasWellDefinedInput(f) {
		return st, nil
	}
	out := make([]Result, 0, len(cmp.Contradictions))
	for _, cd := range cmp.Contradictions {
		out = append(out, Result{
			Analysis:   cd.Analysis,
			Outcome:    VariantsContradict,
			Var:        cd.A + " vs " + cd.B,
			OracleFact: cd.AFact,
			LLVMFact:   cd.BFact,
		})
	}
	return st, out
}

// compareOne runs the per-expression pipeline: the n-way pre-filter when
// enabled (skipping the oracle on agreement), the oracle comparison, and
// the cross-domain consistency lint. It additionally returns the number
// of consistency checks performed and the n-way stats (nil unless NWay).
func (c *Comparator) compareOne(ctx context.Context, f *ir.Function) ([]Result, int, *nwayExprStats) {
	var results []Result
	var nw *nwayExprStats
	runOracle := true
	if c.NWay {
		var nwResults []Result
		nw, nwResults = c.nwayCheck(ctx, f)
		results = nwResults
		// Escalate to the oracle only when some variant pair disagreed;
		// agreement (or a dead expression) leaves nothing to decide.
		runOracle = nw.escalated
	}
	var fa *llvmport.Facts
	if runOracle || c.Consistency {
		fa = c.Analyzer.Analyze(f)
	}
	if runOracle {
		results = append(c.classify(f, fa, c.computeOracle(ctx, f)), results...)
	}
	if !c.Consistency {
		return results, 0, nw
	}
	sp := trace.FromContext(ctx).Child(trace.KindAnalysis, "consistency")
	lint, checks := c.lintExpr(f, fa)
	if sp != nil {
		sp.SetInt("checks", int64(checks))
		sp.End()
	}
	return append(results, lint...), checks, nw
}

// lintExpr cross-checks the compiler's own domain facts for one analyzed
// expression (absint.CheckFacts) and renders contradictions as
// Inconsistent results. A contradiction only implies a bug when the
// expression has at least one well-defined input — on an expression
// whose every evaluation is poison/UB, arbitrary fact sets are vacuously
// sound — so findings on dead expressions are suppressed. The
// definedness probe runs only when a contradiction was found.
func (c *Comparator) lintExpr(f *ir.Function, fa *llvmport.Facts) ([]Result, int) {
	incons, checks := absint.CheckFactsDomains(f, fa, absint.ExtraFactsFor(f, c.Domains))
	if c.Metrics != nil {
		c.Metrics.Counter("consistency_checks").Add(int64(checks))
	}
	if len(incons) == 0 || !hasWellDefinedInput(f) {
		return nil, checks
	}
	out := make([]Result, 0, len(incons))
	for _, ic := range incons {
		out = append(out, Result{
			Analysis: ConsistencyAnalysis,
			Outcome:  Inconsistent,
			Var:      ic.Inst,
			LLVMFact: ic.Detail,
		})
	}
	return out, checks
}

// hasWellDefinedInput reports whether some input assignment evaluates f
// without hitting UB/poison: exhaustively for small input spaces,
// otherwise by deterministic random sampling (which can only err toward
// suppressing a finding, never toward a false positive).
func hasWellDefinedInput(f *ir.Function) bool {
	if eval.TotalInputBits(f) <= 16 {
		found := false
		eval.ForEachInput(f, func(env eval.Env) bool {
			if _, ok := eval.Eval(f, env); ok {
				found = true
				return false
			}
			return true
		})
		return found
	}
	rng := rand.New(rand.NewSource(1))
	_, ok := eval.RandomWellDefinedEnv(f, rng, 4096)
	return ok
}

func compareKnownBits(o oracle.KnownBitsResult, fa *llvmport.Facts) Result {
	r := Result{
		Analysis:   harvest.KnownBits,
		OracleFact: o.Bits.String(),
		LLVMFact:   fa.KnownBits().String(),
	}
	switch {
	case o.Exhausted:
		r.Outcome = ResourceExhausted
	case !o.Feasible:
		// Dead code (no well-defined input): every fact is vacuously
		// sound, and the oracle's bottom element is maximally precise.
		r.OracleFact = "<dead code>"
		r.Outcome = OracleMorePrecise
	case !fa.KnownBits().AtLeastAsPreciseAs(o.Bits) && !o.Bits.AtLeastAsPreciseAs(fa.KnownBits()):
		// Incomparable claims: LLVM asserts a bit the maximally precise
		// result does not — unsound.
		r.Outcome = LLVMMorePrecise
	case fa.KnownBits().Eq(o.Bits):
		r.Outcome = Same
	case o.Bits.AtLeastAsPreciseAs(fa.KnownBits()):
		r.Outcome = OracleMorePrecise
	default:
		r.Outcome = LLVMMorePrecise
	}
	return r
}

func compareSignBits(o oracle.SignBitsResult, fa *llvmport.Facts) Result {
	llvm := fa.NumSignBits()
	r := Result{
		Analysis:   harvest.SignBits,
		OracleFact: fmt.Sprint(o.NumSignBits),
		LLVMFact:   fmt.Sprint(llvm),
	}
	switch {
	case o.Exhausted:
		r.Outcome = ResourceExhausted
	case !o.Feasible && llvm != o.NumSignBits:
		r.Outcome = OracleMorePrecise
	case llvm == o.NumSignBits:
		r.Outcome = Same
	case llvm < o.NumSignBits:
		r.Outcome = OracleMorePrecise
	default:
		r.Outcome = LLVMMorePrecise
	}
	return r
}

func compareBool(a harvest.Analysis, o oracle.BoolResult, llvm bool) Result {
	r := Result{
		Analysis:   a,
		OracleFact: fmt.Sprint(o.Proved),
		LLVMFact:   fmt.Sprint(llvm),
	}
	switch {
	case o.Exhausted:
		r.Outcome = ResourceExhausted
	case !o.Feasible && o.Proved != llvm:
		r.Outcome = OracleMorePrecise // vacuously provable on dead code
	case o.Proved == llvm:
		r.Outcome = Same
	case o.Proved:
		r.Outcome = OracleMorePrecise
	default:
		r.Outcome = LLVMMorePrecise
	}
	return r
}

func compareRange(o oracle.RangeResult, fa *llvmport.Facts) Result {
	llvm := fa.Range()
	r := Result{
		Analysis:   harvest.IntegerRange,
		OracleFact: o.Range.String(),
		LLVMFact:   llvm.String(),
	}
	switch {
	case o.Exhausted:
		r.Outcome = ResourceExhausted
	case !o.Feasible:
		r.OracleFact = "<dead code>"
		if llvm.IsEmpty() {
			r.Outcome = Same
		} else {
			r.Outcome = OracleMorePrecise
		}
	case llvm.Eq(o.Range):
		r.Outcome = Same
	case llvm.SizeLT(o.Range):
		// A range smaller than the maximally precise one must exclude
		// an achievable value.
		r.Outcome = LLVMMorePrecise
	case o.Range.SizeLT(llvm):
		r.Outcome = OracleMorePrecise
	default:
		// Equal size, different sets: both are minimal covers.
		r.Outcome = Same
	}
	return r
}

func compareDemanded(o oracle.DemandedBitsResult, fa *llvmport.Facts, f *ir.Function) []Result {
	llvm := fa.DemandedBits()
	out := make([]Result, 0, len(f.Vars))
	for _, v := range f.Vars {
		om := o.Demanded[v.Name]
		lm := llvm[v.Name]
		r := Result{
			Analysis:   harvest.DemandedBits,
			Var:        v.Name,
			OracleFact: om.BitString(),
			LLVMFact:   lm.BitString(),
		}
		switch {
		case o.Exhausted:
			r.Outcome = ResourceExhausted
		case !o.Feasible && !lm.Eq(om):
			r.Outcome = OracleMorePrecise // dead code demands nothing
		case lm.Eq(om):
			r.Outcome = Same
		case lm.Or(om).Eq(lm):
			// LLVM demands a superset: oracle proved more bits dead.
			r.Outcome = OracleMorePrecise
		default:
			// LLVM claims some bit dead that the oracle proved matters.
			r.Outcome = LLVMMorePrecise
		}
		out = append(out, r)
	}
	return out
}

// FindingKind separates the ways a soundness bug surfaces: the oracle
// disagreeing with the compiler, the compiler's own domains disagreeing
// with each other, or two analyzer variants contradicting each other.
type FindingKind string

// Finding kinds.
const (
	FindingSoundness    FindingKind = "soundness"   // LLVM claims more than the oracle allows
	FindingInconsistent FindingKind = "consistency" // two LLVM domains contradict each other
	FindingVariant      FindingKind = "nway"        // two analyzer variants contradict each other
)

// Finding is a soundness-bug report, printed the way §4.7 shows them.
type Finding struct {
	ExprName string
	Source   string
	Kind     FindingKind
	Result   Result
	// Reduced is the 1-minimal expression still triggering this finding
	// kind, set when the comparator ran with Reduce; ReduceSteps counts
	// the accepted shrinking transformations that produced it.
	Reduced     string
	ReduceSteps int
}

// String renders the finding in the paper's report format. Consistency
// findings name the contradicting instruction (Result.Var) and the
// contradiction itself (Result.LLVMFact); n-way findings name the
// contradicting variant pair (Result.Var) and both claims.
func (f Finding) String() string {
	var s string
	switch f.Kind {
	case FindingInconsistent:
		s = fmt.Sprintf("%s\nconsistency: %s: %s\ndomains are contradictory\n",
			f.Source, f.Result.Var, f.Result.LLVMFact)
	case FindingVariant:
		s = fmt.Sprintf("%s\nnway %s (%s): %s vs %s\nvariants are contradictory\n",
			f.Source, f.Result.Analysis, f.Result.Var, f.Result.OracleFact, f.Result.LLVMFact)
	default:
		s = fmt.Sprintf("%s\n%s from our tool: %s\n%s from llvm: %s\nllvm is stronger\n",
			f.Source, f.Result.Analysis, f.Result.OracleFact, f.Result.Analysis, f.Result.LLVMFact)
	}
	if f.Reduced != "" {
		s += fmt.Sprintf("reduced (%d steps):\n%s\n", f.ReduceSteps, f.Reduced)
	}
	return s
}

// Row aggregates Table 1 counts for one analysis.
type Row struct {
	Analysis  harvest.Analysis
	Same      int
	OracleMP  int
	LLVMMP    int
	Exhausted int
	CPUTime   time.Duration
	Exprs     int // expressions contributing to CPUTime
}

// Total returns the number of comparisons in the row.
func (r Row) Total() int { return r.Same + r.OracleMP + r.LLVMMP + r.Exhausted }

// CacheStats reports how the duplication-aware cached path performed for
// one Run: cache traffic, and how far canonical grouping shrank the
// corpus before any oracle work was dispatched.
type CacheStats struct {
	// Hits and Misses count oracle result lookups during this run.
	Hits, Misses uint64
	// Entries is the cache size after the run.
	Entries int
	// TotalExprs and UniqueExprs measure canonical deduplication:
	// TotalExprs corpus entries collapsed to UniqueExprs canonical forms.
	TotalExprs, UniqueExprs int
}

// HitRate returns the hit fraction of this run's lookups, in [0,1].
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// NWayStats summarizes the n-way pre-filter over a run: how many
// expressions agreed (and therefore skipped the oracle entirely), how
// many escalated, and the pairwise comparison volume behind that.
type NWayStats struct {
	// Exprs counts expressions cross-checked; Agreed + Escalated + Dead
	// partition it.
	Exprs, Agreed, Escalated, Dead int
	// Comparisons counts the per-domain pairwise fact comparisons;
	// Disagreements the non-equivalent ones; Contradictions the subset no
	// pair of sound analyzers could produce.
	Comparisons, Disagreements, Contradictions int
}

func (s *NWayStats) add(e *nwayExprStats) {
	if s == nil || e == nil {
		return
	}
	s.Exprs++
	s.Comparisons += e.comparisons
	s.Disagreements += e.disagreements
	s.Contradictions += e.contradictions
	switch {
	case e.dead:
		s.Dead++
	case e.escalated:
		s.Escalated++
	default:
		s.Agreed++
	}
}

// Report is a full Table 1 run.
type Report struct {
	Rows     map[harvest.Analysis]*Row
	Findings []Finding
	// ConsistencyChecks counts the cross-domain checks performed by the
	// consistency lint (zero unless Comparator.Consistency).
	ConsistencyChecks int
	// NWay summarizes the n-way pre-filter (nil unless Comparator.NWay).
	// In n-way mode the Table 1 rows cover escalated expressions only.
	NWay *NWayStats
	// Cache is set by cached runs (Comparator.Cache != nil).
	Cache *CacheStats
	// Interrupted is true when the run's context was cancelled before
	// every corpus entry was compared; Skipped counts the entries that
	// were never analyzed. The rows and findings cover only the analyzed
	// entries — a partial but well-formed report.
	Interrupted bool
	Skipped     int
}

func newReport() *Report {
	rep := &Report{Rows: make(map[harvest.Analysis]*Row)}
	for _, a := range harvest.AllAnalyses {
		rep.Rows[a] = &Row{Analysis: a}
	}
	return rep
}

// absorb aggregates one expression's results into the report. Cached and
// uncached runs share this, so their Table 1 counts agree by construction.
func (rep *Report) absorb(e harvest.Expr, results []Result) {
	seen := map[harvest.Analysis]bool{}
	for _, r := range results {
		if r.Outcome == Inconsistent || r.Outcome == VariantsContradict {
			// Lint and n-way findings sit outside the Table 1 rows.
			kind := FindingInconsistent
			if r.Outcome == VariantsContradict {
				kind = FindingVariant
			}
			rep.Findings = append(rep.Findings, Finding{
				ExprName: e.Name, Source: e.F.String(), Kind: kind, Result: r})
			continue
		}
		row := rep.Rows[r.Analysis]
		switch r.Outcome {
		case Same:
			row.Same++
		case OracleMorePrecise:
			row.OracleMP++
		case LLVMMorePrecise:
			row.LLVMMP++
			rep.Findings = append(rep.Findings, Finding{
				ExprName: e.Name, Source: e.F.String(), Kind: FindingSoundness, Result: r})
		case ResourceExhausted:
			row.Exhausted++
		}
		row.CPUTime += r.Elapsed
		if !seen[r.Analysis] {
			seen[r.Analysis] = true
			row.Exprs++
		}
	}
}

// Run compares every expression in the corpus and aggregates Table 1.
// With Workers > 1, expressions are compared concurrently; aggregation
// order (and thus the report) stays deterministic. With Cache set, the
// corpus is first grouped by canonical form and each unique expression
// is analyzed once (see runCached); the aggregated counts and findings
// are identical to the uncached path.
func (c *Comparator) Run(corpus []harvest.Expr) *Report {
	return c.RunContext(context.Background(), corpus)
}

// forEach runs job(i) for i in [0, n) on the worker pool (or inline when
// Workers <= 1), stopping the dispatch of new work once ctx is cancelled.
// Jobs already running when the cancel lands finish on their own — their
// solver queries abort via the engine context — so forEach returns
// promptly either way.
func (c *Comparator) forEach(ctx context.Context, n int, job func(i int)) {
	guarded := func(i int) {
		if ctx.Err() != nil {
			return
		}
		c.markBusy(1)
		job(i)
		c.markBusy(-1)
	}
	if c.Workers <= 1 {
		for i := 0; i < n; i++ {
			guarded(i)
		}
		return
	}
	var wg sync.WaitGroup
	// Buffered so the dispatcher never serializes on slow workers.
	jobs := make(chan int, n)
	for w := 0; w < c.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				guarded(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// RunContext is Run under a cancellation context: cancelling ctx stops
// workers at the next expression boundary (and aborts their in-flight
// solver queries), returning a partial report with Interrupted set
// instead of tearing the process down mid-batch.
func (c *Comparator) RunContext(ctx context.Context, corpus []harvest.Expr) *Report {
	ctx, endRoot := c.rootSpan(ctx, "run")
	defer endRoot()
	if c.Cache != nil {
		return c.runCached(ctx, corpus)
	}
	perExpr := make([][]Result, len(corpus))
	perChecks := make([]int, len(corpus))
	perNWay := make([]*nwayExprStats, len(corpus))
	analyzed := make([]bool, len(corpus))
	c.forEach(ctx, len(corpus), func(i int) {
		perExpr[i], perChecks[i], perNWay[i] = c.compareOne(ctx, corpus[i].F)
		analyzed[i] = true
	})

	rep := newReport()
	if c.NWay {
		rep.NWay = &NWayStats{}
	}
	for i, e := range corpus {
		if !analyzed[i] {
			rep.Skipped++
			continue
		}
		rep.ConsistencyChecks += perChecks[i]
		rep.NWay.add(perNWay[i])
		rep.absorb(e, perExpr[i])
	}
	rep.Interrupted = rep.Skipped > 0
	if c.Reduce {
		c.reduceFindings(ctx, rep, corpus)
	}
	c.recordReport(rep)
	return rep
}

// reduceFindings shrinks every finding in rep to a 1-minimal expression
// preserving its finding kind, attaching the reduced source text. A
// cancelled context stops between findings, leaving the rest unreduced.
func (c *Comparator) reduceFindings(ctx context.Context, rep *Report, corpus []harvest.Expr) {
	if len(rep.Findings) == 0 {
		return
	}
	byName := make(map[string]*ir.Function, len(corpus))
	for _, e := range corpus {
		byName[e.Name] = e.F
	}
	for i := range rep.Findings {
		if ctx.Err() != nil {
			return
		}
		fd := &rep.Findings[i]
		f := byName[fd.ExprName]
		if f == nil {
			continue
		}
		sp := trace.FromContext(ctx).Child(trace.KindAnalysis, "reduce")
		res := reduce.Reduce(f, c.FindingProperty(ctx, *fd))
		fd.Reduced = res.F.String()
		fd.ReduceSteps = res.Steps
		if sp != nil {
			sp.SetStr("expr", fd.ExprName)
			sp.SetInt("steps", int64(res.Steps))
			sp.SetInt("tried", int64(res.Tried))
			sp.End()
		}
		if c.Metrics != nil {
			c.Metrics.Counter("reduce_findings").Inc()
			c.Metrics.Counter("reduce_steps").Add(int64(res.Steps))
			c.Metrics.Counter("reduce_candidates").Add(int64(res.Tried))
		}
	}
}

// FindingProperty returns the reducer property for one finding: does a
// candidate expression still trigger the same finding kind in the same
// analysis? Soundness findings re-run the full oracle comparison (on a
// fresh untraced, uncached sub-comparator), n-way findings re-run the
// variant cross-check, consistency findings re-run the lint; all three
// require the candidate to keep a well-defined input, so reduction can
// never land on a vacuously-contradictory dead expression.
func (c *Comparator) FindingProperty(ctx context.Context, fd Finding) reduce.Property {
	switch fd.Kind {
	case FindingInconsistent:
		return func(g *ir.Function) bool {
			incons, _ := absint.CheckFactsDomains(g, c.Analyzer.Analyze(g), absint.ExtraFactsFor(g, c.Domains))
			return len(incons) > 0 && hasWellDefinedInput(g)
		}
	case FindingVariant:
		vs := nway.Variants(c.Analyzer)
		return func(g *ir.Function) bool {
			cmp := nway.Compare(g, vs)
			for _, cd := range cmp.Contradictions {
				if cd.Analysis == fd.Result.Analysis {
					return hasWellDefinedInput(g)
				}
			}
			return false
		}
	default:
		sub := c.reducerComparator()
		return func(g *ir.Function) bool {
			for _, r := range sub.CompareExprContext(ctx, g) {
				if r.Analysis == fd.Result.Analysis && r.Outcome == LLVMMorePrecise {
					return true
				}
			}
			return false
		}
	}
}

// reducerComparator clones the oracle-relevant configuration for
// re-checking reduction candidates, without the cache (candidate churn
// would pollute it), metrics, tracer, or the n-way/consistency extras.
func (c *Comparator) reducerComparator() *Comparator {
	return &Comparator{
		Analyzer:       c.Analyzer,
		Budget:         c.Budget,
		ExprTimeout:    c.ExprTimeout,
		NoSeed:         c.NoSeed,
		NoStrash:       c.NoStrash,
		EnumCutoff:     c.EnumCutoff,
		Portfolio:      c.Portfolio,
		PortfolioAfter: c.PortfolioAfter,
		PortfolioSeed:  c.PortfolioSeed,
	}
}

// recordReport rolls aggregate outcomes into the metrics registry
// (aggregation goroutine, after workers are done).
func (c *Comparator) recordReport(rep *Report) {
	if c.Metrics == nil {
		return
	}
	var sound, incons, variant int64
	for _, f := range rep.Findings {
		switch f.Kind {
		case FindingInconsistent:
			incons++
		case FindingVariant:
			variant++
		default:
			sound++
		}
	}
	c.Metrics.Counter("findings").Add(sound)
	if incons > 0 {
		c.Metrics.Counter("inconsistent_findings").Add(incons)
	}
	if variant > 0 {
		c.Metrics.Counter("nway_findings").Add(variant)
	}
	if rep.Skipped > 0 {
		c.Metrics.Counter("exprs_skipped").Add(int64(rep.Skipped))
	}
	if rep.Cache != nil {
		c.Metrics.Counter("cache_hits").Add(int64(rep.Cache.Hits))
		c.Metrics.Counter("cache_misses").Add(int64(rep.Cache.Misses))
		c.Metrics.Gauge("cache_entries").Set(int64(rep.Cache.Entries))
	}
}

// groupResult is one canonical group's classification: the seven scalar
// results shared verbatim by every member, and the demanded-bits results
// in the canonical variable namespace, remapped per member at fold-back.
type groupResult struct {
	scalar   []Result
	demanded map[string]Result // canonical var name -> result (Elapsed zeroed)
	demTime  time.Duration     // attributed to each member's first variable
	nway     *nwayExprStats    // pre-filter outcome, folded back per member
}

// runCached is the duplication-aware path: group by canonical key,
// analyze each unique expression once (memoizing oracle results in the
// cache), then fold results back onto every corpus entry with its own
// name, source text, and variable names. Cancelling ctx skips the
// unanalyzed groups; their member entries count as Skipped.
func (c *Comparator) runCached(ctx context.Context, corpus []harvest.Expr) *Report {
	before := c.Cache.Stats()

	cns := make([]*canon.Canon, len(corpus))
	for i := range corpus {
		cns[i] = canon.Canonicalize(corpus[i].F)
	}
	groupOf := make(map[string]int, len(corpus))
	gidx := make([]int, len(corpus))
	var reps []int // representative corpus index per group, first-appearance order
	for i := range corpus {
		if g, ok := groupOf[cns[i].Key]; ok {
			gidx[i] = g
			continue
		}
		g := len(reps)
		groupOf[cns[i].Key] = g
		reps = append(reps, i)
		gidx[i] = g
	}

	groups := make([]*groupResult, len(reps))
	c.forEach(ctx, len(reps), func(g int) {
		cn := cns[reps[g]]
		gr := &groupResult{demanded: make(map[string]Result, len(cn.F.Vars))}
		var nwResults []Result
		runOracle := true
		if c.NWay {
			// The pre-filter runs once per canonical group (facts are
			// invariant under canonicalization, like the scalar results);
			// its stats fold back per member for parity with the uncached
			// path.
			gr.nway, nwResults = c.nwayCheck(ctx, cn.F)
			runOracle = gr.nway.escalated
		}
		if runOracle {
			fa := c.Analyzer.Analyze(cn.F)
			o := c.oracleCached(ctx, cn)
			gr.demTime = o.Elapsed[7]
			for _, r := range c.classify(cn.F, fa, o) {
				if r.Analysis == harvest.DemandedBits {
					r.Elapsed = 0
					gr.demanded[r.Var] = r
				} else {
					gr.scalar = append(gr.scalar, r)
				}
			}
		}
		gr.scalar = append(gr.scalar, nwResults...)
		groups[g] = gr
	})

	rep := newReport()
	if c.NWay {
		rep.NWay = &NWayStats{}
	}
	for i, e := range corpus {
		gr := groups[gidx[i]]
		if gr == nil {
			rep.Skipped++
			continue
		}
		rep.NWay.add(gr.nway)
		results := make([]Result, 0, len(gr.scalar)+len(e.F.Vars))
		results = append(results, gr.scalar...)
		for vi, v := range e.F.Vars {
			r, ok := gr.demanded[cns[i].CanonName(v.Name)]
			if !ok {
				continue
			}
			r.Var = v.Name
			if vi == 0 {
				r.Elapsed = gr.demTime
			}
			results = append(results, r)
		}
		if c.Consistency {
			// The lint is solver-free and names instructions, so it runs
			// per member (not per canonical group): a cheap re-analysis
			// buys findings in the member's own variable namespace and
			// counts identical to the uncached path.
			lint, checks := c.lintExpr(e.F, c.Analyzer.Analyze(e.F))
			results = append(results, lint...)
			rep.ConsistencyChecks += checks
		}
		rep.absorb(e, results)
	}
	rep.Interrupted = rep.Skipped > 0
	if c.Reduce {
		c.reduceFindings(ctx, rep, corpus)
	}

	after := c.Cache.Stats()
	rep.Cache = &CacheStats{
		Hits:        after.Hits - before.Hits,
		Misses:      after.Misses - before.Misses,
		Entries:     c.Cache.Len(),
		TotalExprs:  len(corpus),
		UniqueExprs: len(reps),
	}
	c.recordReport(rep)
	return rep
}
