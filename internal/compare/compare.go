// Package compare implements the pipeline of the paper's Figure 1: run
// the LLVM-port analyses and the solver-based oracle over the same
// expression and classify each result pair as equal precision, oracle
// more precise (an LLVM imprecision), or LLVM more precise (an LLVM
// soundness bug, since the oracle is maximally precise), with resource
// exhaustion tracked separately — exactly the categories of Table 1.
package compare

import (
	"fmt"
	"sync"
	"time"

	"dfcheck/internal/harvest"
	"dfcheck/internal/ir"
	"dfcheck/internal/llvmport"
	"dfcheck/internal/oracle"
	"dfcheck/internal/solver"
)

// Outcome classifies one (expression, analysis) comparison.
type Outcome int

// Outcomes, in Table 1 column order.
const (
	Same Outcome = iota
	OracleMorePrecise
	LLVMMorePrecise // a soundness bug in the compiler under test
	ResourceExhausted
)

func (o Outcome) String() string {
	switch o {
	case Same:
		return "same precision"
	case OracleMorePrecise:
		return "souper is more precise"
	case LLVMMorePrecise:
		return "llvm is stronger"
	case ResourceExhausted:
		return "resource exhaustion"
	}
	return "unknown"
}

// Result is one comparison: the outcome and both facts rendered the way
// the paper prints them.
type Result struct {
	Analysis   harvest.Analysis
	Outcome    Outcome
	OracleFact string
	LLVMFact   string
	// Var is set for demanded-bits results (one per input variable).
	Var string
	// Elapsed is the oracle computation time attributed to this result
	// (for demanded bits, the whole per-expression time is attributed to
	// the first variable's entry).
	Elapsed time.Duration
}

// Comparator runs the oracle against a (possibly bug-injected) LLVM port.
type Comparator struct {
	Analyzer *llvmport.Analyzer
	// Budget is the per-query solver conflict budget (0 = default),
	// standing in for the paper's 30-second Z3 timeout.
	Budget int64
	// Workers sets the number of expressions compared concurrently by
	// Run (the paper spread its evaluation across several machines;
	// expressions are independent). 0 or 1 means sequential.
	Workers int
	// ExprTimeout caps the total oracle time per expression; queries
	// beyond it come back as resource exhaustion, like the paper's
	// five-minute cap (§4.1). Zero means no cap.
	ExprTimeout time.Duration
}

// newEngine builds a SAT engine honoring the per-expression deadline.
func (c *Comparator) newEngine(f *ir.Function, deadline time.Time) *solver.SATEngine {
	e := solver.NewSAT(f, c.Budget)
	e.Deadline = deadline
	return e
}

// CompareExpr runs all eight analyses of Table 1 on one expression. The
// returned results contain one entry per forward analysis plus one entry
// per input variable for demanded bits (the paper counts demanded-bits
// comparisons per variable).
func (c *Comparator) CompareExpr(f *ir.Function) []Result {
	fa := c.Analyzer.Analyze(f)
	var out []Result
	timed := func(r Result, start time.Time) Result {
		r.Elapsed = time.Since(start)
		return r
	}
	var deadline time.Time
	if c.ExprTimeout > 0 {
		deadline = time.Now().Add(c.ExprTimeout)
	}

	start := time.Now()
	kb := oracle.KnownBits(c.newEngine(f, deadline), f)
	out = append(out, timed(compareKnownBits(kb, fa), start))

	start = time.Now()
	sb := oracle.SignBits(c.newEngine(f, deadline), f)
	out = append(out, timed(compareSignBits(sb, fa), start))

	start = time.Now()
	nz := oracle.NonZero(c.newEngine(f, deadline), f)
	out = append(out, timed(compareBool(harvest.NonZero, nz, fa.NonZero()), start))

	start = time.Now()
	ng := oracle.Negative(c.newEngine(f, deadline), f)
	out = append(out, timed(compareBool(harvest.Negative, ng, fa.Negative()), start))

	start = time.Now()
	nn := oracle.NonNegative(c.newEngine(f, deadline), f)
	out = append(out, timed(compareBool(harvest.NonNegative, nn, fa.NonNegative()), start))

	start = time.Now()
	p2 := oracle.PowerOfTwo(c.newEngine(f, deadline), f)
	out = append(out, timed(compareBool(harvest.PowerOfTwo, p2, fa.PowerOfTwo()), start))

	start = time.Now()
	rg := oracle.IntegerRange(c.newEngine(f, deadline), f)
	out = append(out, timed(compareRange(rg, fa), start))

	start = time.Now()
	dm := oracle.DemandedBits(c.newEngine(f, deadline), f)
	dmResults := compareDemanded(dm, fa, f)
	if len(dmResults) > 0 {
		dmResults[0].Elapsed = time.Since(start)
	}
	out = append(out, dmResults...)
	return out
}

func compareKnownBits(o oracle.KnownBitsResult, fa *llvmport.Facts) Result {
	r := Result{
		Analysis:   harvest.KnownBits,
		OracleFact: o.Bits.String(),
		LLVMFact:   fa.KnownBits().String(),
	}
	switch {
	case o.Exhausted:
		r.Outcome = ResourceExhausted
	case !o.Feasible:
		// Dead code (no well-defined input): every fact is vacuously
		// sound, and the oracle's bottom element is maximally precise.
		r.OracleFact = "<dead code>"
		r.Outcome = OracleMorePrecise
	case !fa.KnownBits().AtLeastAsPreciseAs(o.Bits) && !o.Bits.AtLeastAsPreciseAs(fa.KnownBits()):
		// Incomparable claims: LLVM asserts a bit the maximally precise
		// result does not — unsound.
		r.Outcome = LLVMMorePrecise
	case fa.KnownBits().Eq(o.Bits):
		r.Outcome = Same
	case o.Bits.AtLeastAsPreciseAs(fa.KnownBits()):
		r.Outcome = OracleMorePrecise
	default:
		r.Outcome = LLVMMorePrecise
	}
	return r
}

func compareSignBits(o oracle.SignBitsResult, fa *llvmport.Facts) Result {
	llvm := fa.NumSignBits()
	r := Result{
		Analysis:   harvest.SignBits,
		OracleFact: fmt.Sprint(o.NumSignBits),
		LLVMFact:   fmt.Sprint(llvm),
	}
	switch {
	case o.Exhausted:
		r.Outcome = ResourceExhausted
	case !o.Feasible && llvm != o.NumSignBits:
		r.Outcome = OracleMorePrecise
	case llvm == o.NumSignBits:
		r.Outcome = Same
	case llvm < o.NumSignBits:
		r.Outcome = OracleMorePrecise
	default:
		r.Outcome = LLVMMorePrecise
	}
	return r
}

func compareBool(a harvest.Analysis, o oracle.BoolResult, llvm bool) Result {
	r := Result{
		Analysis:   a,
		OracleFact: fmt.Sprint(o.Proved),
		LLVMFact:   fmt.Sprint(llvm),
	}
	switch {
	case o.Exhausted:
		r.Outcome = ResourceExhausted
	case !o.Feasible && o.Proved != llvm:
		r.Outcome = OracleMorePrecise // vacuously provable on dead code
	case o.Proved == llvm:
		r.Outcome = Same
	case o.Proved:
		r.Outcome = OracleMorePrecise
	default:
		r.Outcome = LLVMMorePrecise
	}
	return r
}

func compareRange(o oracle.RangeResult, fa *llvmport.Facts) Result {
	llvm := fa.Range()
	r := Result{
		Analysis:   harvest.IntegerRange,
		OracleFact: o.Range.String(),
		LLVMFact:   llvm.String(),
	}
	switch {
	case o.Exhausted:
		r.Outcome = ResourceExhausted
	case !o.Feasible:
		r.OracleFact = "<dead code>"
		if llvm.IsEmpty() {
			r.Outcome = Same
		} else {
			r.Outcome = OracleMorePrecise
		}
	case llvm.Eq(o.Range):
		r.Outcome = Same
	case llvm.SizeLT(o.Range):
		// A range smaller than the maximally precise one must exclude
		// an achievable value.
		r.Outcome = LLVMMorePrecise
	case o.Range.SizeLT(llvm):
		r.Outcome = OracleMorePrecise
	default:
		// Equal size, different sets: both are minimal covers.
		r.Outcome = Same
	}
	return r
}

func compareDemanded(o oracle.DemandedBitsResult, fa *llvmport.Facts, f *ir.Function) []Result {
	llvm := fa.DemandedBits()
	out := make([]Result, 0, len(f.Vars))
	for _, v := range f.Vars {
		om := o.Demanded[v.Name]
		lm := llvm[v.Name]
		r := Result{
			Analysis:   harvest.DemandedBits,
			Var:        v.Name,
			OracleFact: om.BitString(),
			LLVMFact:   lm.BitString(),
		}
		switch {
		case o.Exhausted:
			r.Outcome = ResourceExhausted
		case !o.Feasible && !lm.Eq(om):
			r.Outcome = OracleMorePrecise // dead code demands nothing
		case lm.Eq(om):
			r.Outcome = Same
		case lm.Or(om).Eq(lm):
			// LLVM demands a superset: oracle proved more bits dead.
			r.Outcome = OracleMorePrecise
		default:
			// LLVM claims some bit dead that the oracle proved matters.
			r.Outcome = LLVMMorePrecise
		}
		out = append(out, r)
	}
	return out
}

// Finding is a soundness-bug report, printed the way §4.7 shows them.
type Finding struct {
	ExprName string
	Source   string
	Result   Result
}

// String renders the finding in the paper's report format.
func (f Finding) String() string {
	return fmt.Sprintf("%s\n%s from our tool: %s\n%s from llvm: %s\nllvm is stronger\n",
		f.Source, f.Result.Analysis, f.Result.OracleFact, f.Result.Analysis, f.Result.LLVMFact)
}

// Row aggregates Table 1 counts for one analysis.
type Row struct {
	Analysis  harvest.Analysis
	Same      int
	OracleMP  int
	LLVMMP    int
	Exhausted int
	CPUTime   time.Duration
	Exprs     int // expressions contributing to CPUTime
}

// Total returns the number of comparisons in the row.
func (r Row) Total() int { return r.Same + r.OracleMP + r.LLVMMP + r.Exhausted }

// Report is a full Table 1 run.
type Report struct {
	Rows     map[harvest.Analysis]*Row
	Findings []Finding
}

// Run compares every expression in the corpus and aggregates Table 1.
// With Workers > 1, expressions are compared concurrently; aggregation
// order (and thus the report) stays deterministic.
func (c *Comparator) Run(corpus []harvest.Expr) *Report {
	rep := &Report{Rows: make(map[harvest.Analysis]*Row)}
	for _, a := range harvest.AllAnalyses {
		rep.Rows[a] = &Row{Analysis: a}
	}

	perExpr := make([][]Result, len(corpus))
	if c.Workers > 1 {
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < c.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					perExpr[i] = c.CompareExpr(corpus[i].F)
				}
			}()
		}
		for i := range corpus {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	} else {
		for i := range corpus {
			perExpr[i] = c.CompareExpr(corpus[i].F)
		}
	}

	for i, e := range corpus {
		results := perExpr[i]
		seen := map[harvest.Analysis]bool{}
		for _, r := range results {
			row := rep.Rows[r.Analysis]
			switch r.Outcome {
			case Same:
				row.Same++
			case OracleMorePrecise:
				row.OracleMP++
			case LLVMMorePrecise:
				row.LLVMMP++
				rep.Findings = append(rep.Findings, Finding{ExprName: e.Name, Source: e.F.String(), Result: r})
			case ResourceExhausted:
				row.Exhausted++
			}
			row.CPUTime += r.Elapsed
			if !seen[r.Analysis] {
				seen[r.Analysis] = true
				row.Exprs++
			}
		}
	}
	return rep
}
