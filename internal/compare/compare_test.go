package compare

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"dfcheck/internal/harvest"
	"dfcheck/internal/ir"
	"dfcheck/internal/llvmport"
)

func cleanComparator() *Comparator {
	return &Comparator{Analyzer: &llvmport.Analyzer{}}
}

func resultFor(t *testing.T, results []Result, a harvest.Analysis) Result {
	t.Helper()
	for _, r := range results {
		if r.Analysis == a {
			return r
		}
	}
	t.Fatalf("no result for %s", a)
	return Result{}
}

// TestPaperFragmentsClassified: every §4.2–4.5 fragment must classify as
// "oracle more precise" for its analysis, with both facts matching the
// paper's reported strings.
func TestPaperFragmentsClassified(t *testing.T) {
	c := cleanComparator()
	for _, fr := range harvest.PaperFragments {
		results := c.CompareExpr(fr.TestF())
		r := resultFor(t, results, fr.Analysis)
		if fr.Analysis == harvest.PowerOfTwo {
			// The paper prints yes/no; the comparator prints true/false.
			want := map[string]string{"yes": "true", "no": "false"}
			if r.OracleFact != want[fr.Precise] || r.LLVMFact != want[fr.LLVM] {
				t.Errorf("%s: facts = (%s, %s), paper says (%s, %s)",
					fr.Name, r.OracleFact, r.LLVMFact, fr.Precise, fr.LLVM)
			}
		} else {
			if r.OracleFact != fr.Precise {
				t.Errorf("%s: oracle fact = %s, paper says %s", fr.Name, r.OracleFact, fr.Precise)
			}
			if r.LLVMFact != fr.LLVM {
				t.Errorf("%s: llvm fact = %s, paper says %s", fr.Name, r.LLVMFact, fr.LLVM)
			}
		}
		if r.Outcome != OracleMorePrecise && r.Outcome != ResourceExhausted {
			t.Errorf("%s: outcome = %v, want oracle more precise", fr.Name, r.Outcome)
		}
		if r.Outcome == ResourceExhausted && fr.Analysis != harvest.IntegerRange {
			t.Errorf("%s: unexpected exhaustion", fr.Name)
		}
	}
}

// TestNoFalseSoundnessAlarms: the clean (fixed) compiler must never be
// classified as "LLVM more precise" over a generated corpus — the paper
// found no soundness bugs in LLVM 8 (§4.1).
func TestNoFalseSoundnessAlarms(t *testing.T) {
	corpus := harvest.Generate(harvest.Config{
		Seed:     99,
		NumExprs: 60,
		MaxInsts: 5,
		Widths:   []harvest.WidthWeight{{Width: 4, Weight: 2}, {Width: 8, Weight: 3}},
	})
	rep := cleanComparator().Run(corpus)
	if len(rep.Findings) != 0 {
		msgs := make([]string, 0, len(rep.Findings))
		for _, f := range rep.Findings {
			msgs = append(msgs, f.String())
		}
		t.Fatalf("clean compiler flagged unsound %d times:\n%s",
			len(rep.Findings), strings.Join(msgs, "\n"))
	}
	for _, a := range harvest.AllAnalyses {
		if rep.Rows[a].Total() == 0 {
			t.Errorf("no comparisons recorded for %s", a)
		}
	}
}

// TestInjectedBugsDetected: §4.7 — each re-introduced historical bug must
// be caught on its trigger expression, with the paper's facts.
func TestInjectedBugsDetected(t *testing.T) {
	for _, tr := range harvest.SoundnessTriggers {
		var bugs llvmport.BugConfig
		switch tr.Bug {
		case 1:
			bugs.NonZeroAdd = true
		case 2:
			bugs.SRemSignBits = true
		case 3:
			bugs.SRemKnownBits = true
		}
		c := &Comparator{Analyzer: &llvmport.Analyzer{Bugs: bugs}}
		results := c.CompareExpr(ir.MustParse(tr.Source))
		r := resultFor(t, results, tr.Analysis)
		if r.Outcome != LLVMMorePrecise {
			t.Errorf("bug %d (%s): outcome = %v, want llvm more precise", tr.Bug, tr.Name, r.Outcome)
		}
		if r.OracleFact != tr.OracleFact {
			t.Errorf("bug %d: oracle fact = %s, paper says %s", tr.Bug, r.OracleFact, tr.OracleFact)
		}
		if r.LLVMFact != tr.BuggyLLVMFact {
			t.Errorf("bug %d: llvm fact = %s, paper says %s", tr.Bug, r.LLVMFact, tr.BuggyLLVMFact)
		}

		// The clean compiler must NOT be flagged on the same trigger.
		clean := cleanComparator().CompareExpr(ir.MustParse(tr.Source))
		rc := resultFor(t, clean, tr.Analysis)
		if rc.Outcome == LLVMMorePrecise {
			t.Errorf("bug %d: clean compiler flagged unsound", tr.Bug)
		}
	}
}

// TestInjectedBugsCaughtByCorpusSweep: like the paper's workflow, a
// corpus sweep with a buggy compiler should surface at least one finding
// when the corpus includes the trigger.
func TestInjectedBugsCaughtByCorpusSweep(t *testing.T) {
	corpus := []harvest.Expr{
		{Name: "trigger-bug2", F: ir.MustParse(harvest.SoundnessTriggers[1].Source), Freq: 1},
		{Name: "benign", F: ir.MustParse("%x:i8 = var\n%0:i8 = add %x, 1:i8\ninfer %0"), Freq: 3},
	}
	c := &Comparator{Analyzer: &llvmport.Analyzer{Bugs: llvmport.BugConfig{SRemSignBits: true}}}
	rep := c.Run(corpus)
	if len(rep.Findings) == 0 {
		t.Fatal("corpus sweep missed the injected bug")
	}
	found := false
	for _, f := range rep.Findings {
		if f.ExprName == "trigger-bug2" && f.Result.Analysis == harvest.SignBits {
			found = true
			if !strings.Contains(f.String(), "llvm is stronger") {
				t.Errorf("finding not in paper format:\n%s", f)
			}
		}
	}
	if !found {
		t.Error("finding does not identify the trigger expression")
	}
	if rep.Rows[harvest.SignBits].LLVMMP == 0 {
		t.Error("table row does not count the soundness finding")
	}
}

// TestNoFalseSoundnessAlarmsOddWidth repeats the clean-compiler sweep at
// an odd bit width (13), where masking and boundary bugs like to hide.
func TestNoFalseSoundnessAlarmsOddWidth(t *testing.T) {
	corpus := harvest.Generate(harvest.Config{
		Seed:         123,
		NumExprs:     25,
		MaxInsts:     4,
		Widths:       []harvest.WidthWeight{{Width: 13, Weight: 1}},
		MaxCastWidth: 16,
	})
	rep := cleanComparator().Run(corpus)
	for _, f := range rep.Findings {
		t.Errorf("clean compiler flagged unsound at width 13:\n%s", f)
	}
}

func TestDemandedBitsCountedPerVariable(t *testing.T) {
	// An expression with two inputs contributes two demanded-bits
	// comparisons (the paper counts 2.1M variables over 269k exprs).
	f := ir.MustParse("%a:i4 = var\n%b:i4 = var\n%0:i4 = add %a, %b\ninfer %0")
	results := cleanComparator().CompareExpr(f)
	n := 0
	for _, r := range results {
		if r.Analysis == harvest.DemandedBits {
			n++
			if r.Var == "" {
				t.Error("demanded-bits result missing variable name")
			}
		}
	}
	if n != 2 {
		t.Errorf("demanded-bits comparisons = %d, want 2", n)
	}
}

func TestTableRendering(t *testing.T) {
	corpus := harvest.Generate(harvest.Config{
		Seed: 5, NumExprs: 10, MaxInsts: 4,
		Widths: []harvest.WidthWeight{{Width: 4, Weight: 1}},
	})
	rep := cleanComparator().Run(corpus)
	table := rep.Table()
	for _, a := range harvest.AllAnalyses {
		if !strings.Contains(table, string(a)) {
			t.Errorf("table missing row for %s:\n%s", a, table)
		}
	}
	if !strings.Contains(table, "%") {
		t.Error("table missing percentages")
	}
}

func TestOutcomeStrings(t *testing.T) {
	cases := map[Outcome]string{
		Same:              "same precision",
		OracleMorePrecise: "souper is more precise",
		LLVMMorePrecise:   "llvm is stronger",
		ResourceExhausted: "resource exhaustion",
	}
	for o, want := range cases {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), want)
		}
	}
}

func TestReportJSON(t *testing.T) {
	corpus := []harvest.Expr{
		{Name: "t", F: ir.MustParse(harvest.SoundnessTriggers[1].Source), Freq: 1},
	}
	c := &Comparator{Analyzer: &llvmport.Analyzer{Bugs: llvmport.BugConfig{SRemSignBits: true}}}
	rep := c.Run(corpus)
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Rows []struct {
			Analysis string `json:"analysis"`
			LLVMMP   int    `json:"llvm_more_precise"`
		} `json:"rows"`
		Findings []struct {
			Analysis   string `json:"analysis"`
			OracleFact string `json:"oracle_fact"`
			LLVMFact   string `json:"llvm_fact"`
		} `json:"soundness_findings"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if len(decoded.Findings) == 0 {
		t.Fatalf("no findings in JSON:\n%s", data)
	}
	if decoded.Findings[0].Analysis != "sign bits" ||
		decoded.Findings[0].OracleFact != "30" || decoded.Findings[0].LLVMFact != "31" {
		t.Errorf("finding = %+v", decoded.Findings[0])
	}
	foundRow := false
	for _, r := range decoded.Rows {
		if r.Analysis == "sign bits" && r.LLVMMP == 1 {
			foundRow = true
		}
	}
	if !foundRow {
		t.Errorf("sign-bits row missing soundness count:\n%s", data)
	}
}

func TestParallelRunMatchesSequential(t *testing.T) {
	corpus := harvest.Generate(harvest.Config{
		Seed: 321, NumExprs: 24, MaxInsts: 4,
		Widths: []harvest.WidthWeight{{Width: 4, Weight: 1}, {Width: 8, Weight: 1}},
	})
	seq := cleanComparator().Run(corpus)
	par := (&Comparator{Analyzer: &llvmport.Analyzer{}, Workers: 8}).Run(corpus)
	for _, a := range harvest.AllAnalyses {
		s, p := seq.Rows[a], par.Rows[a]
		if s.Same != p.Same || s.OracleMP != p.OracleMP || s.LLVMMP != p.LLVMMP || s.Exhausted != p.Exhausted {
			t.Errorf("%s: sequential %+v != parallel %+v", a, *s, *p)
		}
	}
	if len(seq.Findings) != len(par.Findings) {
		t.Errorf("findings differ: %d vs %d", len(seq.Findings), len(par.Findings))
	}
}

func TestExprTimeoutProducesExhaustion(t *testing.T) {
	c := &Comparator{Analyzer: &llvmport.Analyzer{}, ExprTimeout: time.Nanosecond}
	results := c.CompareExpr(ir.MustParse("%x:i8 = var\n%0:i8 = mul %x, %x\ninfer %0"))
	for _, r := range results {
		if r.Outcome != ResourceExhausted {
			t.Errorf("%s: outcome = %v, want resource exhaustion under 1ns budget", r.Analysis, r.Outcome)
		}
	}
}

// TestDeadCodeNeverFlagsSoundness: an expression with no well-defined
// input (here udiv 0, 0 by construction) makes every oracle fact the
// bottom element; the comparator must classify that as the oracle being
// more precise, never as an LLVM soundness bug. Regression for a false
// alarm found by a corpus sweep.
func TestDeadCodeNeverFlagsSoundness(t *testing.T) {
	srcs := []string{
		// The sweep's original false-alarm shape.
		"%v0:i8 = var\n%v1:i8 = var\n%0:i8 = and 4:i8, %v0\n%1:i8 = abs %0\n%2:i8 = urem %v1, %v1\n%3:i8 = udiv %2, %2\n%4:i8 = xor %1, %3\ninfer %4",
		"%x:i8 = var\n%0:i8 = udiv %x, 0:i8\ninfer %0",
		"%x:i8 = var\n%0:i8 = shl %x, 9:i8\ninfer %0",
	}
	for _, src := range srcs {
		results := cleanComparator().CompareExpr(ir.MustParse(src))
		for _, r := range results {
			if r.Outcome == LLVMMorePrecise {
				t.Errorf("%s: %s flagged as soundness bug on dead code\noracle=%s llvm=%s",
					src, r.Analysis, r.OracleFact, r.LLVMFact)
			}
		}
	}
}

// TestModernCompilerAgreesMore: with the post-LLVM-8 improvements applied,
// the compiler matches the oracle on strictly more comparisons than the
// LLVM-8 port, and still never looks unsound.
func TestModernCompilerAgreesMore(t *testing.T) {
	corpus := harvest.Generate(harvest.Config{
		Seed: 555, NumExprs: 40, MaxInsts: 5,
		Widths: []harvest.WidthWeight{{Width: 4, Weight: 1}, {Width: 8, Weight: 2}},
	})
	for _, fr := range harvest.PaperFragments {
		corpus = append(corpus, harvest.Expr{Name: "paper-" + fr.Name, F: fr.TestF(), Freq: 1})
	}
	classic := cleanComparator().Run(corpus)
	modern := (&Comparator{Analyzer: &llvmport.Analyzer{Modern: true}}).Run(corpus)
	if len(modern.Findings) != 0 {
		t.Fatalf("modern compiler flagged unsound %d times:\n%s",
			len(modern.Findings), modern.Findings[0])
	}
	var classicSame, modernSame int
	for _, a := range harvest.AllAnalyses {
		classicSame += classic.Rows[a].Same
		modernSame += modern.Rows[a].Same
	}
	if modernSame <= classicSame {
		t.Errorf("modern same-precision %d should exceed classic %d", modernSame, classicSame)
	}
}
