package compare

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"dfcheck/internal/harvest"
	"dfcheck/internal/ir"
	"dfcheck/internal/llvmport"
	"dfcheck/internal/rescache"
)

// dupCorpus builds a small duplication-heavy corpus: generated
// expressions each appearing as several shuffled alpha-variants, the
// shape the paper reports for the SPEC harvest (§3.1).
func dupCorpus() []harvest.Expr {
	return harvest.DuplicationShaped(harvest.Config{
		Seed:     42,
		NumExprs: 12,
		MaxInsts: 5,
		Widths:   []harvest.WidthWeight{{Width: 8, Weight: 3}, {Width: 4, Weight: 1}},
	}, 4)
}

// stripElapsed zeroes the timing fields the cached path replays, leaving
// only the semantic content for comparison.
func stripElapsed(rep *Report) *Report {
	out := &Report{Rows: make(map[harvest.Analysis]*Row), Findings: rep.Findings}
	for a, row := range rep.Rows {
		r := *row
		r.CPUTime = 0
		out.Rows[a] = &r
	}
	return out
}

func requireSameReport(t *testing.T, want, got *Report, label string) {
	t.Helper()
	w, g := stripElapsed(want), stripElapsed(got)
	if !reflect.DeepEqual(w.Rows, g.Rows) {
		t.Errorf("%s: rows differ:\nwant %v\ngot  %v", label, dumpRows(w), dumpRows(g))
	}
	if len(w.Findings) != len(g.Findings) {
		t.Fatalf("%s: %d findings, want %d", label, len(g.Findings), len(w.Findings))
	}
	for i := range w.Findings {
		if !reflect.DeepEqual(stripFindingTime(w.Findings[i]), stripFindingTime(g.Findings[i])) {
			t.Errorf("%s: finding %d differs:\nwant %+v\ngot  %+v", label, i, w.Findings[i], g.Findings[i])
		}
	}
}

func stripFindingTime(f Finding) Finding {
	f.Result.Elapsed = 0
	return f
}

func dumpRows(rep *Report) map[harvest.Analysis]Row {
	out := make(map[harvest.Analysis]Row, len(rep.Rows))
	for a, r := range rep.Rows {
		out[a] = *r
	}
	return out
}

// TestCachedRunMatchesUncached: the duplication-aware cached path must
// produce the same Table 1 rows and the same findings as the plain path,
// sequentially and with a worker pool.
func TestCachedRunMatchesUncached(t *testing.T) {
	corpus := dupCorpus()
	want := cleanComparator().Run(corpus)
	for _, workers := range []int{0, 8} {
		c := cleanComparator()
		c.Workers = workers
		c.Cache = rescache.New()
		got := c.Run(corpus)
		requireSameReport(t, want, got, "cached run")

		if got.Cache == nil {
			t.Fatal("cached run did not report cache stats")
		}
		if got.Cache.TotalExprs != len(corpus) {
			t.Errorf("TotalExprs = %d, want %d", got.Cache.TotalExprs, len(corpus))
		}
		if got.Cache.UniqueExprs >= len(corpus) {
			t.Errorf("no deduplication: %d unique of %d — the corpus is duplication-shaped",
				got.Cache.UniqueExprs, len(corpus))
		}
	}
}

// TestCachedRunFindingsPerEntry: findings from a cached run must carry
// each duplicate's own name and source text, not the canonical
// representative's — the cached path dedups work, not reports.
func TestCachedRunFindingsPerEntry(t *testing.T) {
	trigger := ir.MustParse(harvest.SoundnessTriggers[1].Source) // PR23011 srem sign bits
	rng := rand.New(rand.NewSource(5))
	corpus := []harvest.Expr{
		{Name: "orig", F: trigger, Freq: 1},
		{Name: "copy-a", F: harvest.ShuffledCopy(trigger, rng), Freq: 1},
		{Name: "copy-b", F: harvest.ShuffledCopy(trigger, rng), Freq: 1},
	}
	c := &Comparator{
		Analyzer: &llvmport.Analyzer{Bugs: llvmport.BugConfig{SRemSignBits: true}},
		Cache:    rescache.New(),
	}
	rep := c.Run(corpus)
	if rep.Cache.UniqueExprs != 1 {
		t.Fatalf("UniqueExprs = %d, want 1 (all entries are alpha-variants)", rep.Cache.UniqueExprs)
	}
	seen := map[string]string{}
	for _, f := range rep.Findings {
		seen[f.ExprName] = f.Source
	}
	for i, e := range corpus {
		src, ok := seen[e.Name]
		if !ok {
			t.Errorf("no finding for %s", e.Name)
			continue
		}
		if src != e.F.String() {
			t.Errorf("finding %d: source is not the entry's own text:\nwant %q\ngot  %q", i, e.F.String(), src)
		}
	}
	// Uncached runs must find the same bugs on the same entries.
	c2 := &Comparator{Analyzer: &llvmport.Analyzer{Bugs: llvmport.BugConfig{SRemSignBits: true}}}
	requireSameReport(t, c2.Run(corpus), rep, "bug-injected cached run")
}

// TestWarmCacheSecondRun: a second run over the same corpus must be all
// hits and report identically.
func TestWarmCacheSecondRun(t *testing.T) {
	corpus := dupCorpus()
	c := cleanComparator()
	c.Cache = rescache.New()
	first := c.Run(corpus)
	second := c.Run(corpus)
	if second.Cache.Misses != 0 {
		t.Fatalf("second run had %d misses, want 0", second.Cache.Misses)
	}
	if second.Cache.Hits == 0 {
		t.Fatal("second run recorded no hits")
	}
	// With Elapsed replayed from the cache, even the timings must agree.
	if !reflect.DeepEqual(dumpRows(first), dumpRows(second)) {
		t.Errorf("warm rerun rows differ (timings should replay):\nfirst  %v\nsecond %v",
			dumpRows(first), dumpRows(second))
	}
	requireSameReport(t, first, second, "warm rerun")
}

// TestCacheFileAcrossRuns: save after a cold run, load into a fresh
// cache, and the next run must be all hits with an identical report —
// the artifact's persist-to-Redis workflow.
func TestCacheFileAcrossRuns(t *testing.T) {
	corpus := dupCorpus()
	path := filepath.Join(t.TempDir(), "oracle.cache")

	c1 := cleanComparator()
	c1.Cache = rescache.New()
	first := c1.Run(corpus)
	if err := c1.Cache.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	c2 := cleanComparator()
	c2.Cache = rescache.New()
	if err := c2.Cache.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	second := c2.Run(corpus)
	if second.Cache.Misses != 0 {
		t.Fatalf("run against loaded cache had %d misses, want 0", second.Cache.Misses)
	}
	if !reflect.DeepEqual(dumpRows(first), dumpRows(second)) {
		t.Errorf("reloaded-cache rows differ:\nfirst  %v\nsecond %v", dumpRows(first), dumpRows(second))
	}
	requireSameReport(t, first, second, "reloaded cache run")
}

// TestCacheKeyedOnConfig: results computed under one bug configuration
// must not be served to a comparator in another.
func TestCacheKeyedOnConfig(t *testing.T) {
	corpus := []harvest.Expr{
		{Name: "t", F: ir.MustParse(harvest.SoundnessTriggers[1].Source), Freq: 1},
	}
	cache := rescache.New()

	clean := cleanComparator()
	clean.Cache = cache
	cleanRep := clean.Run(corpus)
	if len(cleanRep.Findings) != 0 {
		t.Fatalf("clean compiler produced findings: %v", cleanRep.Findings)
	}

	buggy := &Comparator{
		Analyzer: &llvmport.Analyzer{Bugs: llvmport.BugConfig{SRemSignBits: true}},
		Cache:    cache,
	}
	buggyRep := buggy.Run(corpus)
	if len(buggyRep.Findings) == 0 {
		t.Fatal("injected bug not detected when sharing a cache with a clean run")
	}
}
