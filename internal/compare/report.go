package compare

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"dfcheck/internal/harvest"
)

// jsonRow is the machine-readable form of one Table 1 row.
type jsonRow struct {
	Analysis          string  `json:"analysis"`
	Same              int     `json:"same_precision"`
	OracleMorePrecise int     `json:"oracle_more_precise"`
	LLVMMorePrecise   int     `json:"llvm_more_precise"`
	ResourceExhausted int     `json:"resource_exhausted"`
	AvgCPUMillis      float64 `json:"avg_cpu_ms_per_expr"`
}

type jsonFinding struct {
	Expr        string `json:"expr"`
	Kind        string `json:"kind,omitempty"`
	Analysis    string `json:"analysis"`
	Var         string `json:"var,omitempty"`
	OracleFact  string `json:"oracle_fact"`
	LLVMFact    string `json:"llvm_fact"`
	Source      string `json:"source"`
	Reduced     string `json:"reduced,omitempty"`
	ReduceSteps int    `json:"reduce_steps,omitempty"`
}

// jsonNWay is the machine-readable form of the n-way pre-filter summary.
type jsonNWay struct {
	Exprs          int `json:"exprs"`
	Agreed         int `json:"agreed"`
	Escalated      int `json:"escalated"`
	Dead           int `json:"dead"`
	Comparisons    int `json:"comparisons"`
	Disagreements  int `json:"disagreements"`
	Contradictions int `json:"contradictions"`
}

type jsonCache struct {
	Hits        uint64  `json:"hits"`
	Misses      uint64  `json:"misses"`
	HitRate     float64 `json:"hit_rate"`
	Entries     int     `json:"entries"`
	TotalExprs  int     `json:"total_exprs"`
	UniqueExprs int     `json:"unique_exprs"`
}

type jsonReport struct {
	Rows              []jsonRow     `json:"rows"`
	Findings          []jsonFinding `json:"soundness_findings"`
	ConsistencyChecks int           `json:"consistency_checks,omitempty"`
	NWay              *jsonNWay     `json:"nway,omitempty"`
	Cache             *jsonCache    `json:"cache,omitempty"`
}

// JSON renders the report as machine-readable JSON, rows in Table 1 order.
func (rep *Report) JSON() ([]byte, error) {
	out := jsonReport{Findings: []jsonFinding{}}
	for _, a := range harvest.AllAnalyses {
		row := rep.Rows[a]
		if row == nil || row.Total() == 0 {
			continue
		}
		avg := 0.0
		if row.Exprs > 0 {
			avg = float64(row.CPUTime.Microseconds()) / float64(row.Exprs) / 1000
		}
		out.Rows = append(out.Rows, jsonRow{
			Analysis:          string(a),
			Same:              row.Same,
			OracleMorePrecise: row.OracleMP,
			LLVMMorePrecise:   row.LLVMMP,
			ResourceExhausted: row.Exhausted,
			AvgCPUMillis:      avg,
		})
	}
	for _, f := range rep.Findings {
		kind := f.Kind
		if kind == "" {
			kind = FindingSoundness
		}
		out.Findings = append(out.Findings, jsonFinding{
			Expr:        f.ExprName,
			Kind:        string(kind),
			Analysis:    string(f.Result.Analysis),
			Var:         f.Result.Var,
			OracleFact:  f.Result.OracleFact,
			LLVMFact:    f.Result.LLVMFact,
			Source:      f.Source,
			Reduced:     f.Reduced,
			ReduceSteps: f.ReduceSteps,
		})
	}
	out.ConsistencyChecks = rep.ConsistencyChecks
	if rep.NWay != nil {
		out.NWay = &jsonNWay{
			Exprs:          rep.NWay.Exprs,
			Agreed:         rep.NWay.Agreed,
			Escalated:      rep.NWay.Escalated,
			Dead:           rep.NWay.Dead,
			Comparisons:    rep.NWay.Comparisons,
			Disagreements:  rep.NWay.Disagreements,
			Contradictions: rep.NWay.Contradictions,
		}
	}
	if rep.Cache != nil {
		out.Cache = &jsonCache{
			Hits:        rep.Cache.Hits,
			Misses:      rep.Cache.Misses,
			HitRate:     rep.Cache.HitRate(),
			Entries:     rep.Cache.Entries,
			TotalExprs:  rep.Cache.TotalExprs,
			UniqueExprs: rep.Cache.UniqueExprs,
		}
	}
	return json.MarshalIndent(out, "", "  ")
}

// CacheSummary renders the cache statistics of a cached run in one line,
// or "" for uncached runs. Callers print it to stderr so that the table
// on stdout stays byte-identical between cold and warm runs.
func (rep *Report) CacheSummary() string {
	s := rep.Cache
	if s == nil {
		return ""
	}
	return fmt.Sprintf("cache: %d/%d exprs unique; %d hits, %d misses (%.1f%% hit rate), %d entries",
		s.UniqueExprs, s.TotalExprs, s.Hits, s.Misses, 100*s.HitRate(), s.Entries)
}

// Table renders the report in the layout of the paper's Table 1.
func (rep *Report) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %18s %18s %18s %18s %12s\n",
		"Dataflow", "Same precision", "Souper is more", "LLVM is more", "Resource", "Avg CPU")
	fmt.Fprintf(&sb, "%-14s %18s %18s %18s %18s %12s\n",
		"analysis", "", "precise", "precise", "exhaustion", "per expr")
	for _, a := range harvest.AllAnalyses {
		row := rep.Rows[a]
		if row == nil {
			continue
		}
		total := row.Total()
		if total == 0 {
			continue
		}
		pct := func(n int) string {
			return fmt.Sprintf("%d (%.1f%%)", n, 100*float64(n)/float64(total))
		}
		avg := time.Duration(0)
		if row.Exprs > 0 {
			avg = row.CPUTime / time.Duration(row.Exprs)
		}
		fmt.Fprintf(&sb, "%-14s %18s %18s %18s %18s %12s\n",
			a, pct(row.Same), pct(row.OracleMP), pct(row.LLVMMP), pct(row.Exhausted),
			avg.Round(10*time.Microsecond))
	}
	if rep.ConsistencyChecks > 0 {
		fmt.Fprintf(&sb, "\nconsistency checks: %d\n", rep.ConsistencyChecks)
	}
	if s := rep.NWay; s != nil {
		fmt.Fprintf(&sb, "\nnway: %d exprs (%d agreed, %d escalated, %d dead); %d comparisons, %d disagreements, %d contradictions\n",
			s.Exprs, s.Agreed, s.Escalated, s.Dead, s.Comparisons, s.Disagreements, s.Contradictions)
	}
	var sound, incons, variant []Finding
	for _, f := range rep.Findings {
		switch f.Kind {
		case FindingInconsistent:
			incons = append(incons, f)
		case FindingVariant:
			variant = append(variant, f)
		default:
			sound = append(sound, f)
		}
	}
	if len(sound) > 0 {
		fmt.Fprintf(&sb, "\nSOUNDNESS FINDINGS (%d):\n\n", len(sound))
		for _, f := range sound {
			sb.WriteString(f.String())
			sb.WriteByte('\n')
		}
	}
	if len(incons) > 0 {
		fmt.Fprintf(&sb, "\nINCONSISTENT FINDINGS (%d):\n\n", len(incons))
		for _, f := range incons {
			sb.WriteString(f.String())
			sb.WriteByte('\n')
		}
	}
	if len(variant) > 0 {
		fmt.Fprintf(&sb, "\nNWAY FINDINGS (%d):\n\n", len(variant))
		for _, f := range variant {
			sb.WriteString(f.String())
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
