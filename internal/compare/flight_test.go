package compare

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"dfcheck/internal/harvest"
	"dfcheck/internal/ir"
	"dfcheck/internal/llvmport"
	"dfcheck/internal/metrics"
	"dfcheck/internal/rescache"
)

// A moderately hard expression: wide enough to skip the enumeration
// fast path, so the oracle pays real solver queries that the flight can
// save.
const flightExprSrc = "%x:i14 = var\n%y:i14 = var\n%0:i14 = mul %x, %y\n%1:i14 = xor %0, %y\ninfer %1"

// The deterministic single-flight contract on the uncached parallel
// path: 8 textually identical expressions racing on 8 workers cost
// exactly one oracle computation. The flight hook holds the leader
// until all 7 waiters have attached, so the collapse count — and
// therefore the solver-query total — is exact, not a timing accident.
func TestFlightCollapsesConcurrentDuplicates(t *testing.T) {
	const n = 8
	// Solo baseline: the same expression, once.
	soloReg := metrics.NewRegistry()
	solo := &Comparator{Analyzer: &llvmport.Analyzer{}, Workers: 1, Metrics: soloReg}
	soloRep := solo.Run([]harvest.Expr{{Name: "solo", F: ir.MustParse(flightExprSrc), Freq: 1}})
	soloQueries := soloReg.Snapshot().Counters["solver_queries"]
	if soloQueries == 0 {
		t.Fatal("baseline expression cost zero solver queries; pick a harder one")
	}

	reg := metrics.NewRegistry()
	c := &Comparator{Analyzer: &llvmport.Analyzer{}, Workers: n, Metrics: reg}
	c.flightHook = func() {
		// Leader parks until every duplicate has attached (bounded so a
		// scheduling pathology fails the test instead of hanging it).
		deadline := time.Now().Add(30 * time.Second)
		for c.flight.Collapsed() < n-1 && time.Now().Before(deadline) {
			time.Sleep(50 * time.Microsecond)
		}
	}
	corpus := make([]harvest.Expr, n)
	for i := range corpus {
		// Distinct parses of identical text: the flight keys on the
		// source, not the pointer.
		corpus[i] = harvest.Expr{Name: fmt.Sprintf("dup-%d", i), F: ir.MustParse(flightExprSrc), Freq: 1}
	}
	rep := c.Run(corpus)

	snap := reg.Snapshot()
	if got := snap.Counters["solver_queries"]; got != soloQueries {
		t.Errorf("solver_queries = %d for %d duplicates, want the solo cost %d (exactly one solve)", got, n, soloQueries)
	}
	if got := snap.Counters["flight_collapsed"]; got != n-1 {
		t.Errorf("flight_collapsed = %d, want %d", got, n-1)
	}
	if got := snap.Counters["exprs_compared"]; got != n {
		t.Errorf("exprs_compared = %d, want %d", got, n)
	}
	// Waiters adopt the leader's results, so the report is the solo
	// report scaled by n.
	for _, a := range harvest.AllAnalyses {
		s, p := soloRep.Rows[a], rep.Rows[a]
		if p.Same != n*s.Same || p.OracleMP != n*s.OracleMP || p.LLVMMP != n*s.LLVMMP || p.Exhausted != n*s.Exhausted {
			t.Errorf("%s: collapsed rows %+v are not %d x solo rows %+v", a, *p, n, *s)
		}
	}
}

// Sequential duplicates must NOT collapse (the flight only spans the
// in-flight window; memoization across time is the cache's job), and
// Workers <= 1 must bypass the flight map entirely.
func TestFlightSequentialRunsDoNotCollapse(t *testing.T) {
	reg := metrics.NewRegistry()
	c := &Comparator{Analyzer: &llvmport.Analyzer{}, Workers: 1, Metrics: reg}
	f := ir.MustParse("%x:i8 = var\n%0:i8 = add 1:i8, %x\ninfer %0")
	c.Run([]harvest.Expr{{Name: "a", F: f, Freq: 1}, {Name: "b", F: f, Freq: 1}})
	if got := reg.Snapshot().Counters["flight_collapsed"]; got != 0 {
		t.Errorf("flight_collapsed = %d on a sequential run, want 0", got)
	}
}

// The cached path's per-analysis flight: 8 goroutines querying the same
// expression through OracleFacts (the fact service's solve path) share
// one comparator with a cold sharded cache. Every (analysis) solve must
// happen exactly once — answered by the cache for late arrivals or by
// the flight for racers — never 8 times.
func TestCachedFlightDeduplicatesOracleFacts(t *testing.T) {
	const n = 8
	reg := metrics.NewRegistry()
	c := &Comparator{
		Analyzer: &llvmport.Analyzer{},
		Workers:  n, // >1 arms the flight; OracleFacts runs on caller goroutines
		Cache:    rescache.New(),
		Metrics:  reg,
	}
	c.flightHook = func() {
		// Hold the first leader until all racers have reached the
		// flight; later leaders see the condition already satisfied.
		deadline := time.Now().Add(30 * time.Second)
		for c.flight.Collapsed() < n-1 && time.Now().Before(deadline) {
			time.Sleep(50 * time.Microsecond)
		}
	}
	f := ir.MustParse(flightExprSrc)
	var wg sync.WaitGroup
	factSets := make([][]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var rendered []string
			for _, fc := range c.OracleFacts(context.Background(), ir.MustParse(flightExprSrc)) {
				rendered = append(rendered, fc.Analysis+"="+fc.Fact)
			}
			factSets[i] = rendered
		}(i)
	}
	wg.Wait()

	// Each analysis was solved at most once: a solo uncached run of the
	// same expression bounds the concurrent total. (Engine state differs
	// slightly between a shared-engine solo run and per-leader engines,
	// so allow headroom — the point is the 8x redundancy is gone.)
	soloReg := metrics.NewRegistry()
	solo := &Comparator{Analyzer: &llvmport.Analyzer{}, Workers: 1, Metrics: soloReg}
	solo.Run([]harvest.Expr{{Name: "solo", F: f, Freq: 1}})
	soloQ := soloReg.Snapshot().Counters["solver_queries"]
	gotQ := reg.Snapshot().Counters["solver_queries"]
	if gotQ > 2*soloQ {
		t.Errorf("concurrent cached queries cost %d solver queries; solo costs %d — dedup failed", gotQ, soloQ)
	}
	if collapsed := c.flight.Collapsed(); collapsed < n-1 {
		t.Errorf("flight collapsed %d queries, want at least %d", collapsed, n-1)
	}
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(factSets[i], factSets[0]) {
			t.Errorf("goroutine %d facts differ:\n%v\nvs\n%v", i, factSets[i], factSets[0])
		}
	}
}

// OracleFacts must render identically on every path: uncached, cache
// miss, and cache hit — including the demanded-bits remap through the
// canonical variable namespace that the cached path performs.
func TestOracleFactsRenderingPathsAgree(t *testing.T) {
	src := "%a:i8 = var\n%b:i8 = var\n%0:i8 = and 15:i8, %a\n%1:i8 = or %0, %b\ninfer %1"
	ctx := context.Background()

	uncached := &Comparator{Analyzer: &llvmport.Analyzer{}}
	plain := uncached.OracleFacts(ctx, ir.MustParse(src))

	cached := &Comparator{Analyzer: &llvmport.Analyzer{}, Cache: rescache.New()}
	miss := cached.OracleFacts(ctx, ir.MustParse(src))
	hit := cached.OracleFacts(ctx, ir.MustParse(src))

	if len(plain) != 7+2 {
		t.Fatalf("%d facts, want 9 (7 scalar + 2 demanded)", len(plain))
	}
	if !reflect.DeepEqual(plain, miss) {
		t.Errorf("uncached vs cache-miss facts differ:\n%v\nvs\n%v", plain, miss)
	}
	if !reflect.DeepEqual(miss, hit) {
		t.Errorf("cache-miss vs cache-hit facts differ:\n%v\nvs\n%v", miss, hit)
	}
	// An alpha-variant (renamed variables) must get facts under its own
	// names, served from the same cache lines.
	variant := cached.OracleFacts(ctx, ir.MustParse(
		"%p:i8 = var\n%q:i8 = var\n%0:i8 = and 15:i8, %p\n%1:i8 = or %0, %q\ninfer %1"))
	if len(variant) != len(plain) {
		t.Fatalf("variant has %d facts, want %d", len(variant), len(plain))
	}
	for i := range plain {
		if i < 7 && variant[i] != plain[i] {
			t.Errorf("scalar fact %d differs for alpha-variant: %v vs %v", i, variant[i], plain[i])
		}
	}
	if variant[7].Analysis != "demanded bits (p)" || variant[8].Analysis != "demanded bits (q)" {
		t.Errorf("variant demanded labels = %q, %q", variant[7].Analysis, variant[8].Analysis)
	}
	if variant[7].Fact != plain[7].Fact || variant[8].Fact != plain[8].Fact {
		t.Errorf("variant demanded masks differ: %v/%v vs %v/%v",
			variant[7].Fact, variant[8].Fact, plain[7].Fact, plain[8].Fact)
	}
}
