package compare

import (
	"context"
	"fmt"

	"dfcheck/internal/canon"
	"dfcheck/internal/factsvc"
	"dfcheck/internal/harvest"
	"dfcheck/internal/ir"
)

// The fact-service glue: the service package defines the transport
// (single-flight group, dispatcher, HTTP surface) and this file supplies
// the solver — the comparator's cached, deduplicated oracle pipeline —
// keeping the dependency one-way (factsvc never imports compare).

// OracleFacts computes the eight Table 1 oracle facts for f, rendered
// in the paper's print format, going through the comparator's result
// cache and single-flight layers when configured. Demanded bits yields
// one fact per input variable, in declaration order, labeled
// "demanded bits (<var>)".
func (c *Comparator) OracleFacts(ctx context.Context, f *ir.Function) []factsvc.Fact {
	var o *oracleSet
	demName := func(v string) string { return v }
	if c.Cache != nil {
		cn := canon.Canonicalize(f)
		o = c.oracleCached(ctx, cn)
		// Cached demanded-bits results live in the canonical variable
		// namespace; map each of f's own variables through it.
		demName = cn.CanonName
	} else {
		o = c.computeOracle(ctx, f)
	}
	facts := make([]factsvc.Fact, 0, 7+len(f.Vars))
	add := func(a harvest.Analysis, fact string) {
		facts = append(facts, factsvc.Fact{Analysis: string(a), Fact: fact})
	}
	add(harvest.KnownBits, o.Known.Bits.String())
	add(harvest.SignBits, fmt.Sprint(o.Sign.NumSignBits))
	add(harvest.NonZero, fmt.Sprint(o.NonZero.Proved))
	add(harvest.Negative, fmt.Sprint(o.Negative.Proved))
	add(harvest.NonNegative, fmt.Sprint(o.NonNeg.Proved))
	add(harvest.PowerOfTwo, fmt.Sprint(o.Pow2.Proved))
	add(harvest.IntegerRange, o.Range.Range.String())
	for _, v := range f.Vars {
		mask, ok := o.Demanded.Demanded[demName(v.Name)]
		if !ok {
			continue
		}
		add(harvest.DemandedBits+" ("+harvest.Analysis(v.Name)+")", mask.BitString())
	}
	return facts
}

// SolveFunc adapts the comparator to the fact service's solver
// interface.
func (c *Comparator) SolveFunc() factsvc.SolveFunc {
	return func(ctx context.Context, f *ir.Function) ([]factsvc.Fact, error) {
		return c.OracleFacts(ctx, f), nil
	}
}

// NewFactService builds the batched query pipeline on top of this
// comparator: the service's workers solve through OracleFacts, so every
// query flows through the same sharded cache and single-flight group a
// concurrently running campaign uses — queries and campaign batches
// deduplicate against each other.
func (c *Comparator) NewFactService(cfg factsvc.Config) (*factsvc.Service, error) {
	cfg.Solve = c.SolveFunc()
	if cfg.Cache == nil {
		cfg.Cache = c.Cache
	}
	if cfg.Metrics == nil {
		cfg.Metrics = c.Metrics
	}
	if cfg.Tracer == nil {
		cfg.Tracer = c.Tracer
	}
	return factsvc.New(cfg)
}
