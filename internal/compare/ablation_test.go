package compare

import (
	"testing"

	"dfcheck/internal/harvest"
	"dfcheck/internal/ir"
	"dfcheck/internal/llvmport"
)

func ablationCorpus() []harvest.Expr {
	return harvest.Generate(harvest.Config{
		Seed:     77,
		NumExprs: 40,
		MaxInsts: 5,
		Widths:   []harvest.WidthWeight{{Width: 4, Weight: 2}, {Width: 8, Weight: 3}},
	})
}

// compareReports asserts two comparator runs reached identical Table-1
// outcomes and identical findings on the same corpus.
func compareReports(t *testing.T, label string, fast, slow *Report) {
	t.Helper()
	for _, a := range harvest.AllAnalyses {
		fr, sr := fast.Rows[a], slow.Rows[a]
		if fr.Same != sr.Same || fr.OracleMP != sr.OracleMP || fr.LLVMMP != sr.LLVMMP || fr.Exhausted != sr.Exhausted {
			t.Errorf("%s: %s row differs: fast %+v, historical %+v", label, a, *fr, *sr)
		}
	}
	if len(fast.Findings) != len(slow.Findings) {
		t.Fatalf("%s: finding counts differ: fast %d, historical %d", label, len(fast.Findings), len(slow.Findings))
	}
	for i := range fast.Findings {
		if fast.Findings[i].String() != slow.Findings[i].String() {
			t.Errorf("%s: finding %d differs:\nfast:       %s\nhistorical: %s",
				label, i, fast.Findings[i], slow.Findings[i])
		}
	}
}

// TestAblationFlagsPreserveResults is the PR's contract: the fast paths
// (structural hashing, sound-fact seeding, the enumeration cutoff) must
// not change a single Table-1 outcome compared to the historical
// configuration with all three disabled.
func TestAblationFlagsPreserveResults(t *testing.T) {
	corpus := ablationCorpus()
	fast := (&Comparator{Analyzer: &llvmport.Analyzer{}, Workers: 1}).Run(corpus)
	slow := (&Comparator{
		Analyzer:   &llvmport.Analyzer{},
		Workers:    1,
		NoStrash:   true,
		NoSeed:     true,
		EnumCutoff: -1,
	}).Run(corpus)
	compareReports(t, "clean", fast, slow)
	if len(fast.Findings) != 0 {
		t.Errorf("clean compiler produced %d findings", len(fast.Findings))
	}
}

// TestPortfolioAblationEquivalence is the portfolio's contract: racing
// perturbed solver clones on hard queries must not change a single
// Table-1 outcome or finding versus sequential solving. EnumCutoff -1
// forces every expression through the SAT engine so the portfolio policy
// is actually in the loop, and the corpus solves well inside the default
// budget (asserted via Exhausted == 0) — a portfolio can only perturb
// results at budget edges, which this corpus therefore avoids.
func TestPortfolioAblationEquivalence(t *testing.T) {
	corpus := ablationCorpus()
	seq := (&Comparator{
		Analyzer:   &llvmport.Analyzer{},
		Workers:    1,
		EnumCutoff: -1,
		Portfolio:  -1,
	}).Run(corpus)
	por := (&Comparator{
		Analyzer:   &llvmport.Analyzer{},
		Workers:    1,
		EnumCutoff: -1,
		Portfolio:  3,
	}).Run(corpus)
	compareReports(t, "portfolio", por, seq)
	for _, a := range harvest.AllAnalyses {
		if n := seq.Rows[a].Exhausted; n != 0 {
			t.Fatalf("%s: %d expressions exhausted; the equivalence corpus must stay off budget edges", a, n)
		}
	}
}

// TestAblationFlagsPreserveBugDetection re-runs the comparison with the
// PR12541 bug injected (§4.7): the fast paths must catch exactly the
// soundness findings the historical paths catch.
func TestAblationFlagsPreserveBugDetection(t *testing.T) {
	corpus := ablationCorpus()
	for _, tr := range harvest.SoundnessTriggers {
		corpus = append(corpus, harvest.Expr{Name: "trigger-" + tr.Name, F: ir.MustParse(tr.Source), Freq: 1})
	}
	bugs := llvmport.BugConfig{NonZeroAdd: true, SRemSignBits: true, SRemKnownBits: true}
	fast := (&Comparator{Analyzer: &llvmport.Analyzer{Bugs: bugs}, Workers: 1}).Run(corpus)
	slow := (&Comparator{
		Analyzer:   &llvmport.Analyzer{Bugs: bugs},
		Workers:    1,
		NoStrash:   true,
		NoSeed:     true,
		EnumCutoff: -1,
	}).Run(corpus)
	compareReports(t, "bugged", fast, slow)
	if len(fast.Findings) == 0 {
		t.Fatal("injected bugs produced no findings")
	}
}
