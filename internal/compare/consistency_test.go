package compare

import (
	"encoding/json"
	"strings"
	"testing"

	"dfcheck/internal/absint"
	"dfcheck/internal/harvest"
	"dfcheck/internal/ir"
	"dfcheck/internal/llvmport"
	"dfcheck/internal/metrics"
	"dfcheck/internal/rescache"
)

func zeroAddCorpus() []harvest.Expr {
	// Bug 1 proves "0 + 0" non-zero while known bits and the range prove
	// it zero: a cross-domain contradiction on a well-defined expression.
	return []harvest.Expr{
		{Name: "zero-add", F: ir.MustParse("%0:i8 = add 0:i8, 0:i8\ninfer %0"), Freq: 1},
	}
}

// TestInconsistentFindingThreaded: a bugged analyzer under the
// consistency lint must surface an Inconsistent finding in the report,
// flagged with the consistency kind and counted separately from the
// soundness findings in both the text table and the JSON rendering.
func TestInconsistentFindingThreaded(t *testing.T) {
	reg := metrics.NewRegistry()
	c := &Comparator{
		Analyzer:    &llvmport.Analyzer{Bugs: llvmport.BugConfig{NonZeroAdd: true}},
		Consistency: true,
		Metrics:     reg,
	}
	rep := c.Run(zeroAddCorpus())
	if rep.ConsistencyChecks == 0 {
		t.Fatalf("no consistency checks recorded")
	}
	var incons []Finding
	for _, f := range rep.Findings {
		if f.Kind == FindingInconsistent {
			incons = append(incons, f)
		}
	}
	if len(incons) == 0 {
		t.Fatalf("no inconsistent finding; findings: %v", rep.Findings)
	}
	f := incons[0]
	if f.Result.Analysis != ConsistencyAnalysis || f.Result.Outcome != Inconsistent {
		t.Errorf("finding misclassified: analysis %s, outcome %v", f.Result.Analysis, f.Result.Outcome)
	}
	if f.ExprName != "zero-add" || f.Source == "" || f.Result.LLVMFact == "" {
		t.Errorf("finding not self-contained: %+v", f)
	}
	if s := f.String(); !strings.Contains(s, "consistency") {
		t.Errorf("finding text does not name the lint: %q", s)
	}

	table := rep.Table()
	if !strings.Contains(table, "INCONSISTENT FINDINGS (1)") {
		t.Errorf("table missing inconsistent section:\n%s", table)
	}
	if !strings.Contains(table, "consistency checks:") {
		t.Errorf("table missing consistency check count:\n%s", table)
	}

	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		ConsistencyChecks int `json:"consistency_checks"`
		Findings          []struct {
			Kind string `json:"kind"`
		} `json:"soundness_findings"`
	}
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.ConsistencyChecks != rep.ConsistencyChecks {
		t.Errorf("JSON consistency_checks = %d, want %d", parsed.ConsistencyChecks, rep.ConsistencyChecks)
	}
	found := false
	for _, jf := range parsed.Findings {
		if jf.Kind == string(FindingInconsistent) {
			found = true
		}
	}
	if !found {
		t.Errorf("JSON findings missing consistency kind:\n%s", data)
	}

	if got := reg.Counter("consistency_checks").Value(); got == 0 {
		t.Errorf("consistency_checks metric not bumped")
	}
	if got := reg.Counter("inconsistent_findings").Value(); got == 0 {
		t.Errorf("inconsistent_findings metric not bumped")
	}
}

// TestConsistencyCleanAnalyzerSilent: the clean analyzer must run the
// lint (checks counted) without producing a single inconsistent finding
// over a generated corpus.
func TestConsistencyCleanAnalyzerSilent(t *testing.T) {
	corpus := harvest.Generate(harvest.Config{
		Seed:     3,
		NumExprs: 40,
		MaxInsts: 5,
		Widths:   []harvest.WidthWeight{{Width: 4, Weight: 1}, {Width: 8, Weight: 1}},
	})
	c := &Comparator{Analyzer: &llvmport.Analyzer{}, Consistency: true}
	rep := c.Run(corpus)
	if rep.ConsistencyChecks == 0 {
		t.Fatalf("no consistency checks recorded")
	}
	for _, f := range rep.Findings {
		if f.Kind == FindingInconsistent {
			t.Fatalf("clean analyzer flagged inconsistent: %s", f)
		}
	}
}

// TestConsistencySuppressedOnPoisonOnlyExpr: "add nuw 1, 1" at i1 has no
// well-defined evaluation, so the analyzer's (genuinely contradictory,
// but vacuously sound) facts must not become a finding.
func TestConsistencySuppressedOnPoisonOnlyExpr(t *testing.T) {
	corpus := []harvest.Expr{
		{Name: "poison-only", F: ir.MustParse("%0:i1 = addnuw 1:i1, 1:i1\ninfer %0"), Freq: 1},
	}
	c := &Comparator{Analyzer: &llvmport.Analyzer{}, Consistency: true}
	rep := c.Run(corpus)
	for _, f := range rep.Findings {
		if f.Kind == FindingInconsistent {
			t.Fatalf("vacuous contradiction reported as finding: %s", f)
		}
	}
	if rep.ConsistencyChecks == 0 {
		t.Fatalf("lint did not run at all")
	}
}

// TestConsistencyOffByDefault: without the flag the lint must not run —
// no checks, no consistency results.
func TestConsistencyOffByDefault(t *testing.T) {
	c := &Comparator{Analyzer: &llvmport.Analyzer{Bugs: llvmport.BugConfig{NonZeroAdd: true}}}
	rep := c.Run(zeroAddCorpus())
	if rep.ConsistencyChecks != 0 {
		t.Errorf("lint ran with Consistency unset: %d checks", rep.ConsistencyChecks)
	}
	for _, f := range rep.Findings {
		if f.Kind == FindingInconsistent {
			t.Errorf("inconsistent finding with Consistency unset: %s", f)
		}
	}
}

// TestConsistencyCachedParity: a cached run must report the same
// consistency findings and check counts as an uncached one, including on
// the cache-hit (fold-back) path — the corpus repeats the trigger under
// two names to force a hit.
func TestConsistencyCachedParity(t *testing.T) {
	corpus := append(zeroAddCorpus(), harvest.Expr{
		Name: "zero-add-again", F: ir.MustParse("%0:i8 = add 0:i8, 0:i8\ninfer %0"), Freq: 1,
	})
	mk := func(cached bool) *Report {
		c := &Comparator{
			Analyzer:    &llvmport.Analyzer{Bugs: llvmport.BugConfig{NonZeroAdd: true}},
			Consistency: true,
		}
		if cached {
			c.Cache = rescache.New()
		}
		return c.Run(corpus)
	}
	plain, cached := mk(false), mk(true)
	count := func(rep *Report) (n int, names []string) {
		for _, f := range rep.Findings {
			if f.Kind == FindingInconsistent {
				n++
				names = append(names, f.ExprName)
			}
		}
		return
	}
	pn, pNames := count(plain)
	cn, cNames := count(cached)
	if pn != 2 || cn != 2 {
		t.Fatalf("inconsistent finding counts: plain %d (%v), cached %d (%v)", pn, pNames, cn, cNames)
	}
	if plain.ConsistencyChecks != cached.ConsistencyChecks {
		t.Errorf("check counts diverge: plain %d, cached %d", plain.ConsistencyChecks, cached.ConsistencyChecks)
	}
}

// TestConsistencyDomainsWidenLint: listing transfer domains on the
// comparator adds the tnum/stride reduced-product checks on top of the
// classic four-domain lint — strictly more checks over the same corpus —
// while a clean analyzer stays silent either way. Nil Domains must keep
// the classic check count exactly, so the default path is unchanged.
func TestConsistencyDomainsWidenLint(t *testing.T) {
	corpus := harvest.Generate(harvest.Config{
		Seed:     3,
		NumExprs: 25,
		MaxInsts: 5,
		Widths:   []harvest.WidthWeight{{Width: 4, Weight: 1}, {Width: 8, Weight: 1}},
	})
	run := func(doms []absint.Domain) *Report {
		c := &Comparator{Analyzer: &llvmport.Analyzer{}, Consistency: true, Domains: doms}
		return c.Run(corpus)
	}
	classic, classicAgain := run(nil), run(nil)
	if classic.ConsistencyChecks != classicAgain.ConsistencyChecks {
		t.Fatalf("classic lint not deterministic: %d vs %d checks",
			classic.ConsistencyChecks, classicAgain.ConsistencyChecks)
	}
	extended := run(absint.AllInputDomains())
	if extended.ConsistencyChecks <= classic.ConsistencyChecks {
		t.Fatalf("domain lint added no checks: classic %d, extended %d",
			classic.ConsistencyChecks, extended.ConsistencyChecks)
	}
	for _, f := range extended.Findings {
		if f.Kind == FindingInconsistent {
			t.Fatalf("clean analyzer flagged inconsistent under domain lint: %s", f)
		}
	}
}

// TestDomainNames: the fingerprint rendering of the domain list — empty
// for the classic lint, comma-joined Name() strings otherwise.
func TestDomainNames(t *testing.T) {
	if got := (&Comparator{}).DomainNames(); got != "" {
		t.Errorf("nil domains rendered %q", got)
	}
	got := (&Comparator{Domains: absint.AllInputDomains()}).DomainNames()
	want := "known bits,sign bits,integer range,tnum,stride"
	if got != want {
		t.Errorf("DomainNames() = %q, want %q", got, want)
	}
}
