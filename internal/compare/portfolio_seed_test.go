package compare

import (
	"testing"

	"dfcheck/internal/harvest"
	"dfcheck/internal/llvmport"
	"dfcheck/internal/metrics"
)

// TestPortfolioSeedEquivalence locks in the reason -portfolio-seed is
// excluded from cache keys and checkpoint fingerprints: the seed perturbs
// which clone wins a race, never what any clone concludes. EnumCutoff -1
// forces every expression through the SAT engine and PortfolioAfter 1
// escalates essentially every query to the portfolio, so the seeds are
// genuinely in the loop; the reports must still be identical.
func TestPortfolioSeedEquivalence(t *testing.T) {
	corpus := ablationCorpus()
	run := func(seed int64, reg *metrics.Registry) *Report {
		return (&Comparator{
			Analyzer:       &llvmport.Analyzer{},
			Workers:        1,
			EnumCutoff:     -1,
			Portfolio:      3,
			PortfolioAfter: 1,
			PortfolioSeed:  seed,
			Metrics:        reg,
		}).Run(corpus)
	}
	reg := metrics.NewRegistry()
	a := run(0, reg)
	b := run(99, nil)
	compareReports(t, "portfolio-seed", a, b)
	for _, an := range harvest.AllAnalyses {
		if n := a.Rows[an].Exhausted; n != 0 {
			t.Fatalf("%s: %d expressions exhausted; the equivalence corpus must stay off budget edges", an, n)
		}
	}
	if reg.Counter("solver_portfolio_runs").Value() == 0 {
		t.Fatal("portfolio never engaged; the seed equivalence was not exercised")
	}
}
