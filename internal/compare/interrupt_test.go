package compare

import (
	"context"
	"testing"
	"time"

	"dfcheck/internal/canon"
	"dfcheck/internal/harvest"
	"dfcheck/internal/ir"
	"dfcheck/internal/llvmport"
	"dfcheck/internal/metrics"
	"dfcheck/internal/rescache"
)

// slowSrc is the 20-bit factoring instance from the solver's deadline
// tests: a single CanBeZero query on it takes the CDCL solver minutes,
// so a corpus of these keeps workers busy until cancellation.
const slowSrc = `%a:i20 = var
%b:i20 = var
%x:i40 = zext %a
%y:i40 = zext %b
%0:i40 = mul %x, %y
%1:i40 = xor %0, 389311259137:i40
infer %1`

func slowCorpus(n int) []harvest.Expr {
	corpus := make([]harvest.Expr, n)
	for i := range corpus {
		corpus[i] = harvest.Expr{Name: "slow", F: ir.MustParse(slowSrc), Freq: 1}
	}
	return corpus
}

func checkPartialReport(t *testing.T, rep *Report, corpusLen int, elapsed time.Duration) {
	t.Helper()
	if elapsed > 30*time.Second {
		t.Fatalf("RunContext took %v after cancel; workers did not exit promptly", elapsed)
	}
	if !rep.Interrupted {
		t.Fatalf("report not marked interrupted (skipped=%d)", rep.Skipped)
	}
	if rep.Skipped == 0 {
		t.Fatal("no entries skipped; cancel landed too late to test interruption")
	}
	// Well-formed: every corpus entry is either aggregated or skipped,
	// and rows are internally consistent.
	analyzed := rep.Rows[harvest.KnownBits].Exprs
	if analyzed+rep.Skipped != corpusLen {
		t.Fatalf("analyzed %d + skipped %d != corpus %d", analyzed, rep.Skipped, corpusLen)
	}
	for a, row := range rep.Rows {
		if row.Total() < 0 || row.Exprs > corpusLen {
			t.Fatalf("row %s malformed: %+v", a, row)
		}
	}
}

// TestRunContextCancelMidCorpus: cancelling mid-run must stop workers at
// the next query-check interval and still yield a well-formed partial
// report.
func TestRunContextCancelMidCorpus(t *testing.T) {
	c := &Comparator{
		Analyzer: &llvmport.Analyzer{},
		Workers:  2,
		Metrics:  metrics.NewRegistry(),
	}
	corpus := slowCorpus(8)
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(200*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()

	start := time.Now()
	rep := c.RunContext(ctx, corpus)
	checkPartialReport(t, rep, len(corpus), time.Since(start))

	if got := c.Metrics.Gauge("workers_busy").Value(); got != 0 {
		t.Fatalf("workers_busy = %d after run, want 0", got)
	}
	if c.Metrics.Counter("exprs_skipped").Value() == 0 {
		t.Fatal("skip counter not recorded")
	}
}

// TestRunContextCancelMidCorpusCached covers the duplication-aware path:
// skipped groups count every member, and nothing cancellation-degraded is
// memoized into the cache.
func TestRunContextCancelMidCorpusCached(t *testing.T) {
	cache := rescache.New()
	c := &Comparator{
		Analyzer: &llvmport.Analyzer{},
		Workers:  2,
		Cache:    cache,
	}
	// Distinct-width semiprime variants defeat canonical dedup so there
	// are several slow groups to interrupt.
	corpus := []harvest.Expr{
		{Name: "s1", F: ir.MustParse(slowSrc), Freq: 1},
		{Name: "s2", F: ir.MustParse("%a:i19 = var\n%b:i19 = var\n%x:i38 = zext %a\n%y:i38 = zext %b\n%0:i38 = mul %x, %y\n%1:i38 = xor %0, 109243065467:i38\ninfer %1"), Freq: 1},
		{Name: "s3", F: ir.MustParse("%a:i18 = var\n%b:i18 = var\n%x:i36 = zext %a\n%y:i36 = zext %b\n%0:i36 = mul %x, %y\n%1:i36 = xor %0, 22712542403:i36\ninfer %1"), Freq: 1},
		{Name: "s4", F: ir.MustParse("%a:i17 = var\n%b:i17 = var\n%x:i34 = zext %a\n%y:i34 = zext %b\n%0:i34 = mul %x, %y\n%1:i34 = xor %0, 11220699701:i34\ninfer %1"), Freq: 1},
	}
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(200*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()

	start := time.Now()
	rep := c.RunContext(ctx, corpus)
	checkPartialReport(t, rep, len(corpus), time.Since(start))
}

// TestOracleCachedNeverMemoizesCancelled: results computed under a
// cancelled context are degraded by query aborts and must not poison the
// persistent cache (a resumed campaign would silently diverge). The
// oracle set is computed directly so the cancel provably lands during,
// not before, the group analysis.
func TestOracleCachedNeverMemoizesCancelled(t *testing.T) {
	cache := rescache.New()
	c := &Comparator{Analyzer: &llvmport.Analyzer{}, Cache: cache}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // every query degrades immediately, as mid-flight ones would

	cn := canon.Canonicalize(ir.MustParse("%x:i8 = var\ninfer %x"))
	o := c.oracleCached(ctx, cn)
	if !o.Known.Exhausted {
		t.Fatal("cancelled oracle not degraded; test premise broken")
	}
	if n := cache.Len(); n != 0 {
		t.Fatalf("cancelled computation memoized %d entries; cache poisoned", n)
	}

	// The same expression analyzed under a live context memoizes normally.
	o2 := c.oracleCached(context.Background(), cn)
	if o2.Known.Exhausted {
		t.Fatal("clean recompute unexpectedly exhausted")
	}
	if cache.Len() == 0 {
		t.Fatal("clean recompute did not memoize")
	}
}
