package compare

import (
	"bytes"
	"encoding/json"
	"testing"

	"dfcheck/internal/harvest"
	"dfcheck/internal/llvmport"
	"dfcheck/internal/rescache"
	"dfcheck/internal/trace"
)

// traceSpans runs a comparator over corpus with tracing on and returns
// the parsed span events.
func traceSpans(t *testing.T, c *Comparator, corpus []harvest.Expr) []map[string]any {
	t.Helper()
	var buf bytes.Buffer
	c.Tracer = trace.New(&buf)
	c.Run(corpus)
	if err := c.Tracer.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	var spans []map[string]any
	for _, ev := range evs {
		if ev["ph"] == "X" {
			spans = append(spans, ev)
		}
	}
	return spans
}

// TestTracedRunConcurrent exercises span emission from the comparator
// worker pool (run under -race in CI): every expression, analysis, and
// query span must land in one well-formed trace with intact parent links.
func TestTracedRunConcurrent(t *testing.T) {
	corpus := harvest.Generate(harvest.Config{
		Seed: 99, NumExprs: 16, MaxInsts: 4,
		Widths: []harvest.WidthWeight{{Width: 4, Weight: 1}, {Width: 8, Weight: 1}},
	})
	c := &Comparator{Analyzer: &llvmport.Analyzer{}, Workers: 8}
	spans := traceSpans(t, c, corpus)

	byID := map[float64]map[string]any{}
	count := map[string]int{}
	for _, ev := range spans {
		count[ev["cat"].(string)]++
		args := ev["args"].(map[string]any)
		id := args["id"].(float64)
		if byID[id] != nil {
			t.Fatalf("duplicate span id %v", id)
		}
		byID[id] = ev
	}
	if count["batch"] != 1 {
		t.Errorf("got %d root spans, want 1", count["batch"])
	}
	if count["expr"] != len(corpus) {
		t.Errorf("got %d expr spans, want %d", count["expr"], len(corpus))
	}
	// Eight analyses per expression, every one traced.
	if want := len(corpus) * 8; count["analysis"] != want {
		t.Errorf("got %d analysis spans, want %d", count["analysis"], want)
	}
	if count["query"] == 0 {
		t.Errorf("no query spans recorded")
	}
	// Every non-root span's parent must exist, and the chain must reach
	// the root (no orphaned subtrees from the worker pool).
	for _, ev := range spans {
		args := ev["args"].(map[string]any)
		seen := 0
		for cur := ev; ; {
			p, ok := cur["args"].(map[string]any)["parent"].(float64)
			if !ok {
				if cur["cat"] != "batch" {
					t.Fatalf("span %v (%v) chain ends at non-root %v", args["id"], ev["name"], cur["name"])
				}
				break
			}
			cur = byID[p]
			if cur == nil {
				t.Fatalf("span %v has dangling parent %v", args["id"], p)
			}
			if seen++; seen > 10 {
				t.Fatalf("parent chain too deep at span %v", args["id"])
			}
		}
	}
	// Expression spans carry the grouping args trace-report needs.
	for _, ev := range spans {
		if ev["cat"] != "expr" {
			continue
		}
		args := ev["args"].(map[string]any)
		for _, k := range []string{"width", "hash", "key", "queries", "conflicts"} {
			if _, ok := args[k]; !ok {
				t.Errorf("expr span missing %q: %v", k, args)
			}
		}
	}
}

// TestTracedCachedRunMatchesUncached: tracing must not perturb results,
// and the cached path must emit expr spans per unique canonical form.
func TestTracedCachedRunMatchesUncached(t *testing.T) {
	corpus := harvest.Generate(harvest.Config{
		Seed: 7, NumExprs: 12, MaxInsts: 3,
		Widths: []harvest.WidthWeight{{Width: 4, Weight: 1}},
	})
	plain := cleanComparator().Run(corpus)

	cached := cleanComparator()
	cached.Cache = rescache.New()
	spans := traceSpans(t, cached, corpus)
	traced := cached.Run(corpus) // second run: all hits, still well-formed

	for _, a := range harvest.AllAnalyses {
		p, q := plain.Rows[a], traced.Rows[a]
		if p.Same != q.Same || p.OracleMP != q.OracleMP || p.LLVMMP != q.LLVMMP {
			t.Errorf("%s: traced cached run diverged: %+v vs %+v", a, *p, *q)
		}
	}
	exprs := 0
	for _, ev := range spans {
		if ev["cat"] == "expr" {
			exprs++
		}
	}
	if exprs == 0 || exprs > len(corpus) {
		t.Errorf("cached run emitted %d expr spans for %d entries", exprs, len(corpus))
	}
}
