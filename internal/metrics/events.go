package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// EventLog writes a JSONL stream of campaign events: one self-contained
// JSON object per line, so a finding can be reproduced from the log alone
// and a batch history can be grepped or replayed without parsing state.
// Every event carries its type and a wall-clock timestamp; the rest of
// the fields are the caller's.
//
// A nil *EventLog is a valid no-op sink, so instrumented code never
// guards emission.
type EventLog struct {
	mu  sync.Mutex
	w   io.Writer
	err error
	now func() time.Time // test override
}

// NewEventLog returns an event log writing to w.
func NewEventLog(w io.Writer) *EventLog {
	return &EventLog{w: w, now: time.Now}
}

// Emit writes one event. Fields must JSON-marshal; the reserved keys
// "event" and "time" are overwritten. The first write error is retained
// and returned by Err (and by every subsequent Emit), so a full disk
// surfaces once instead of spamming every batch.
func (l *EventLog) Emit(event string, fields map[string]any) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	rec := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		rec[k] = v
	}
	rec["event"] = event
	rec["time"] = l.now().UTC().Format(time.RFC3339Nano)
	data, err := json.Marshal(rec)
	if err != nil {
		l.err = fmt.Errorf("events: %w", err)
		return l.err
	}
	data = append(data, '\n')
	if _, err := l.w.Write(data); err != nil {
		l.err = fmt.Errorf("events: %w", err)
		return l.err
	}
	return nil
}

// Err returns the first write error, if any.
func (l *EventLog) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}
