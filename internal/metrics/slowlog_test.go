package metrics

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSlowLogKeepsSlowest(t *testing.T) {
	l := NewSlowLog(3)
	for i := 1; i <= 10; i++ {
		l.Note(SlowEntry{Hash: fmt.Sprintf("%016x", i), Elapsed: time.Duration(i) * time.Millisecond})
	}
	got := l.Snapshot()
	if len(got) != 3 {
		t.Fatalf("retained %d entries, want 3", len(got))
	}
	for i, want := range []time.Duration{10, 9, 8} {
		if got[i].Elapsed != want*time.Millisecond {
			t.Fatalf("entry %d = %v, want %v (slowest first)", i, got[i].Elapsed, want*time.Millisecond)
		}
	}
	if f := l.Floor(); f != 8*time.Millisecond {
		t.Fatalf("floor = %v, want 8ms", f)
	}
}

func TestSlowLogAdmissionVerdict(t *testing.T) {
	l := NewSlowLog(2)
	if !l.Note(SlowEntry{Elapsed: time.Millisecond}) {
		t.Fatal("entry into a non-full log must be admitted")
	}
	if !l.Note(SlowEntry{Elapsed: 2 * time.Millisecond}) {
		t.Fatal("second entry must be admitted")
	}
	if l.Note(SlowEntry{Elapsed: time.Microsecond}) {
		t.Fatal("entry below the floor must be rejected")
	}
	if l.Note(SlowEntry{Elapsed: time.Millisecond}) {
		t.Fatal("entry exactly at the floor must be rejected (strictly slower wins)")
	}
	if !l.Note(SlowEntry{Elapsed: 3 * time.Millisecond}) {
		t.Fatal("entry above the floor must displace the fastest")
	}
	got := l.Snapshot()
	if got[0].Elapsed != 3*time.Millisecond || got[1].Elapsed != 2*time.Millisecond {
		t.Fatalf("retained %v", got)
	}
}

func TestSlowLogNilSafe(t *testing.T) {
	var l *SlowLog
	if l.Note(SlowEntry{Elapsed: time.Hour}) {
		t.Fatal("nil log admitted an entry")
	}
	if l.Snapshot() != nil || l.Floor() != 0 {
		t.Fatal("nil log not inert")
	}
}

func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Note(SlowEntry{Worker: w, Elapsed: time.Duration(i) * time.Microsecond})
				if i%100 == 0 {
					_ = l.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	got := l.Snapshot()
	if len(got) != 8 {
		t.Fatalf("retained %d, want 8", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Elapsed > got[i-1].Elapsed {
			t.Fatalf("not sorted slowest-first: %v", got)
		}
	}
	if got[0].Elapsed != 499*time.Microsecond {
		t.Fatalf("slowest = %v, want 499µs", got[0].Elapsed)
	}
}
