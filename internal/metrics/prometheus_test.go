package metrics

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenRegistry builds a deterministic registry exercising every
// exposition shape: bare and labeled counters, gauges (including a
// family whose name would interleave under naive key sorting), and
// histograms with and without labels, plus label-value escaping.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("solver_queries").Add(1234)
	r.CounterL("findings", Labels{"kind": "soundness"}).Add(3)
	r.CounterL("findings", Labels{"kind": "inconsistent"}).Add(1)
	r.Counter("findings").Add(4)
	// "findings_reduced" must not split the "findings" family in the
	// output ('_' sorts before '{').
	r.Counter("findings_reduced").Add(2)
	r.CounterL("escape", Labels{"v": "a\\b\"c\nd"}).Add(1)
	r.Gauge("workers_busy").Set(7)
	r.GaugeL("queue_depth", Labels{"worker": "0"}).Set(5)
	r.GaugeL("queue_depth", Labels{"worker": "1"}).Set(9)
	h := r.Histogram("solve_latency")
	h.Observe(500 * time.Nanosecond) // bucket 0
	h.Observe(time.Microsecond)      // bucket 1
	h.Observe(3 * time.Microsecond)  // bucket 2
	h.Observe(100 * time.Microsecond)
	h.Observe(20 * time.Millisecond)
	hl := r.HistogramL("solve_latency_by", Labels{"outcome": "solved"})
	hl.Observe(2 * time.Millisecond)
	hl.Observe(2 * time.Millisecond)
	return r
}

func TestPrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	path := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// Determinism: a second encode of identical state is byte-identical.
	var sb2 strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != got {
		t.Fatal("two encodes of identical state differ")
	}
}

// promLine matches one Prometheus text-format sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.e+\-]+(e[+-][0-9]+)?$|^\S+\{[^{}]*le="\+Inf"[^{}]*\} [0-9]+$`)

func TestPrometheusShapeAndHistogramContract(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	typeSeen := map[string]bool{}
	var bucketCum int64
	var bucketFamily string
	var lastLe float64
	infSeen := map[string]int64{}
	for _, ln := range lines {
		if strings.HasPrefix(ln, "# TYPE ") {
			parts := strings.Fields(ln)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", ln)
			}
			if typeSeen[parts[2]] {
				t.Fatalf("family %s declared twice", parts[2])
			}
			typeSeen[parts[2]] = true
			continue
		}
		if !promLine.MatchString(ln) {
			t.Fatalf("line %q does not match the text-format shape", ln)
		}
		// Histogram bucket contract: cumulative, monotone in both count
		// and le, terminated by +Inf equal to _count.
		if i := strings.Index(ln, "_bucket{"); i >= 0 {
			family := ln[:i]
			fields := strings.Fields(ln)
			v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatalf("bucket value in %q: %v", ln, err)
			}
			leM := regexp.MustCompile(`le="([^"]+)"`).FindStringSubmatch(ln)
			if leM == nil {
				t.Fatalf("bucket line without le: %q", ln)
			}
			if family != bucketFamily {
				bucketFamily, bucketCum, lastLe = family, 0, 0
			}
			if v < bucketCum {
				t.Fatalf("bucket counts not monotone at %q (prev %d)", ln, bucketCum)
			}
			bucketCum = v
			if leM[1] == "+Inf" {
				infSeen[family] = v
				bucketFamily, bucketCum, lastLe = "", 0, 0
			} else {
				le, err := strconv.ParseFloat(leM[1], 64)
				if err != nil {
					t.Fatalf("le in %q: %v", ln, err)
				}
				if le <= lastLe {
					t.Fatalf("le bounds not ascending at %q (prev %g)", ln, lastLe)
				}
				lastLe = le
			}
		}
		if i := strings.Index(ln, "_count"); i >= 0 && !strings.Contains(ln, "_bucket") {
			family := ln[:i]
			fields := strings.Fields(ln)
			v, _ := strconv.ParseInt(fields[len(fields)-1], 10, 64)
			if inf, ok := infSeen[family]; !ok || inf != v {
				t.Fatalf("%s_count = %d but le=\"+Inf\" bucket = %d", family, v, inf)
			}
		}
	}
	for _, fam := range []string{"findings", "queue_depth", "solve_latency", "solve_latency_by"} {
		if !typeSeen[fam] {
			t.Fatalf("family %s missing a TYPE line", fam)
		}
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterL("esc", Labels{"v": `back\slash "quote" and` + "\nnewline"}).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `esc{v="back\\slash \"quote\" and\nnewline"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("escaping wrong:\n%s\nwant line %q", sb.String(), want)
	}
}
