package metrics

import (
	"sort"
	"sync"
	"time"
)

// SlowLog is a bounded ring of the N slowest operations a service has
// performed — the "what is eating the solver" view an operator checks
// when p99 moves. Admission is by duration: once the ring is full, a new
// entry must beat the current floor (the fastest retained entry) to get
// in, so the log converges on the campaign's pathological expressions
// instead of its most recent ones. Memory is bounded by capacity; cost
// per Note is O(capacity) only on admission and O(1) (one lock, one
// compare) on the overwhelmingly common rejection path.
//
// A nil *SlowLog is a valid no-op sink, so instrumented code never
// guards recording.
type SlowLog struct {
	mu      sync.Mutex
	cap     int
	entries []SlowEntry // sorted slowest-first
}

// SlowEntry is one retained slow operation. Detail carries free-form
// solver statistics (fact counts, approximate solver-query deltas);
// everything else is structured so dashboards can sort and link.
type SlowEntry struct {
	When    time.Time     `json:"when"`
	Hash    string        `json:"hash"`  // canonical hash, %016x
	Op      string        `json:"op"`    // root opcode
	Width   uint          `json:"width"` // root bit width
	Elapsed time.Duration `json:"elapsed_ns"`
	Worker  int           `json:"worker"`
	Detail  string        `json:"detail,omitempty"`
	Err     string        `json:"err,omitempty"`
}

// DefaultSlowLogSize is the ring capacity NewSlowLog selects for n <= 0.
const DefaultSlowLogSize = 32

// NewSlowLog returns a log retaining the n slowest entries.
func NewSlowLog(n int) *SlowLog {
	if n <= 0 {
		n = DefaultSlowLogSize
	}
	return &SlowLog{cap: n}
}

// Note offers an entry and reports whether it was admitted — callers use
// the verdict to force-sample the corresponding span into the trace.
// Nil-safe.
func (l *SlowLog) Note(e SlowEntry) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) >= l.cap {
		if e.Elapsed <= l.entries[len(l.entries)-1].Elapsed {
			return false
		}
		l.entries = l.entries[:len(l.entries)-1]
	}
	// Insert keeping slowest-first order.
	i := sort.Search(len(l.entries), func(i int) bool {
		return l.entries[i].Elapsed < e.Elapsed
	})
	l.entries = append(l.entries, SlowEntry{})
	copy(l.entries[i+1:], l.entries[i:])
	l.entries[i] = e
	return true
}

// Floor returns the admission threshold: the duration a new entry must
// exceed to displace the fastest retained one. Zero until the ring
// fills. Nil-safe.
func (l *SlowLog) Floor() time.Duration {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) < l.cap {
		return 0
	}
	return l.entries[len(l.entries)-1].Elapsed
}

// Snapshot returns a copy of the retained entries, slowest first.
// Nil-safe (returns nil).
func (l *SlowLog) Snapshot() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, len(l.entries))
	copy(out, l.entries)
	return out
}
