// Package metrics is the observability substrate for long-running
// campaigns: a small registry of named counters, gauges, and latency
// histograms, snapshotable as JSON and publishable through expvar. The
// paper's authors ran their differential-testing loop unattended for
// weeks (§4.7); this package is what lets our loop answer "is it still
// making progress, and at what rate?" without stopping it.
//
// All instruments are safe for concurrent use by the comparator's worker
// pool; reads (snapshots) never block writers for more than a histogram
// bucket update.
package metrics

import (
	"encoding/json"
	"expvar"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta (delta < 0 is a programming error
// but is not checked on the hot path).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous int64 value (e.g. busy workers).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of exponential latency buckets: bucket i
// holds observations in [2^i, 2^(i+1)) microseconds, so the histogram
// spans 1µs to ~2×10^5 s — wider than any per-expression cap.
const histBuckets = 38

// Histogram records latency observations in exponential buckets.
type Histogram struct {
	mu      sync.Mutex
	buckets [histBuckets]int64
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := d.Microseconds()
	b := 0
	if us > 0 {
		b = int(math.Log2(float64(us))) + 1
		if b >= histBuckets {
			b = histBuckets - 1
		}
	}
	h.mu.Lock()
	h.buckets[b]++
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.mu.Unlock()
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	Count int64         `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
}

// Mean returns the average observation, or 0 with no samples.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// quantile returns the upper edge of the bucket holding the q-quantile —
// an overestimate by at most 2×, which is all a progress report needs.
func quantile(buckets *[histBuckets]int64, count int64, q float64) time.Duration {
	if count == 0 {
		return 0
	}
	rank := int64(q * float64(count))
	if rank >= count {
		rank = count - 1
	}
	var seen int64
	for i, n := range buckets {
		seen += n
		if seen > rank {
			return time.Duration(1<<uint(i)) * time.Microsecond
		}
	}
	return time.Duration(1<<uint(histBuckets)) * time.Microsecond
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Count: h.count,
		Sum:   h.sum,
		Min:   h.min,
		Max:   h.max,
		P50:   quantile(&h.buckets, h.count, 0.50),
		P90:   quantile(&h.buckets, h.count, 0.90),
		P99:   quantile(&h.buckets, h.count, 0.99),
	}
}

// Registry holds named instruments. Lookups create on first use, so
// instrumented code never needs registration boilerplate. The zero value
// is not usable; call NewRegistry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter. Safe to call
// from the hot path: the instrument should be looked up once and reused,
// but repeated lookups only cost a mutex.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time view of every instrument, ready for JSON.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every instrument.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	r.mu.Unlock()

	snap := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for k, c := range counters {
		snap.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		snap.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		snap.Histograms[k] = h.Snapshot()
	}
	return snap
}

// JSON renders the snapshot with sorted keys (encoding/json sorts map
// keys), indented for the campaign's -metrics file.
func (r *Registry) JSON() ([]byte, error) {
	return json.MarshalIndent(r.Snapshot(), "", "  ")
}

// String renders a compact one-line summary of the counters, sorted by
// name — the progress-report form.
func (r *Registry) String() string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap.Counters))
	for k := range snap.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	out := ""
	for i, k := range names {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", k, snap.Counters[k])
	}
	return out
}

// expvarMu serializes Publish: expvar.Publish panics on duplicate names,
// and tests may publish more than one registry.
var expvarMu sync.Mutex

// PublishExpvar exposes the registry under the given expvar name (e.g. on
// /debug/vars when an HTTP listener is up). Publishing the same name
// twice rebinds it to this registry instead of panicking.
func (r *Registry) PublishExpvar(name string) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if v := expvar.Get(name); v != nil {
		// Already published (e.g. a previous campaign in this process):
		// rebind if it is one of ours, otherwise leave it alone.
		if rb, ok := v.(*rebindable); ok {
			rb.set(r)
		}
		return
	}
	rb := &rebindable{}
	rb.set(r)
	expvar.Publish(name, rb)
}

// rebindable is an expvar.Var whose backing registry can be swapped, so
// republishing a name is an update instead of a panic.
type rebindable struct {
	mu sync.Mutex
	r  *Registry
}

func (rb *rebindable) set(r *Registry) {
	rb.mu.Lock()
	rb.r = r
	rb.mu.Unlock()
}

func (rb *rebindable) String() string {
	rb.mu.Lock()
	r := rb.r
	rb.mu.Unlock()
	if r == nil {
		return "{}"
	}
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(data)
}
