// Package metrics is the observability substrate for long-running
// campaigns: a small registry of named counters, gauges, and latency
// histograms, snapshotable as JSON and publishable through expvar. The
// paper's authors ran their differential-testing loop unattended for
// weeks (§4.7); this package is what lets our loop answer "is it still
// making progress, and at what rate?" without stopping it.
//
// All instruments are safe for concurrent use by the comparator's worker
// pool; reads (snapshots) never block writers for more than a histogram
// bucket update.
package metrics

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta (delta < 0 is a programming error
// but is not checked on the hot path).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous int64 value (e.g. busy workers).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of exponential latency buckets: bucket i
// holds observations in [2^i, 2^(i+1)) microseconds, so the histogram
// spans 1µs to ~2×10^5 s — wider than any per-expression cap.
const histBuckets = 38

// Histogram records latency observations in exponential buckets.
type Histogram struct {
	mu      sync.Mutex
	buckets [histBuckets]int64
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := d.Microseconds()
	b := 0
	if us > 0 {
		b = int(math.Log2(float64(us))) + 1
		if b >= histBuckets {
			b = histBuckets - 1
		}
	}
	h.mu.Lock()
	h.buckets[b]++
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.mu.Unlock()
}

// HistogramSnapshot is a point-in-time summary of a histogram. The
// quantiles are streaming estimates read off the exponential buckets
// (upper bucket edge, so an overestimate by at most 2x) — cheap enough
// to compute on every scrape of a live service.
type HistogramSnapshot struct {
	Count int64         `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
}

// Mean returns the average observation, or 0 with no samples.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// quantile returns the upper edge of the bucket holding the q-quantile —
// an overestimate by at most 2×, which is all a progress report needs.
func quantile(buckets *[histBuckets]int64, count int64, q float64) time.Duration {
	if count == 0 {
		return 0
	}
	rank := int64(q * float64(count))
	if rank >= count {
		rank = count - 1
	}
	var seen int64
	for i, n := range buckets {
		seen += n
		if seen > rank {
			return time.Duration(1<<uint(i)) * time.Microsecond
		}
	}
	return time.Duration(1<<uint(histBuckets)) * time.Microsecond
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Count: h.count,
		Sum:   h.sum,
		Min:   h.min,
		Max:   h.max,
		P50:   quantile(&h.buckets, h.count, 0.50),
		P90:   quantile(&h.buckets, h.count, 0.90),
		P95:   quantile(&h.buckets, h.count, 0.95),
		P99:   quantile(&h.buckets, h.count, 0.99),
	}
}

// buckets returns a copy of the raw bucket counts plus count and sum —
// what the Prometheus encoder turns into cumulative _bucket series.
func (h *Histogram) bucketCounts() (b [histBuckets]int64, count int64, sum time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.buckets, h.count, h.sum
}

// Labels distinguish series of one metric family: a counter named
// "findings" with labels {kind: soundness} and {kind: inconsistent} is
// two independent counters exported under one family name. Label names
// must match Prometheus rules ([a-zA-Z_][a-zA-Z0-9_]*); values are
// arbitrary and escaped on exposition.
type Labels map[string]string

// labelPair is one resolved label, kept sorted by key so series identity
// and exposition order are deterministic.
type labelPair struct{ K, V string }

// seriesMeta records how a series key decomposes, for the Prometheus
// encoder (which must re-expand histograms with an extra "le" label).
type seriesMeta struct {
	family string
	labels []labelPair
}

// escapeLabelValue escapes a label value per the Prometheus text format:
// backslash, double-quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// seriesKey canonicalizes (name, labels) into the display form
// name{k="v",k2="v2"} with keys sorted — the map key for the instrument,
// the snapshot key, and (for counters and gauges) the exposition line
// prefix, all at once.
func seriesKey(name string, labels Labels) (string, []labelPair) {
	if len(labels) == 0 {
		return name, nil
	}
	pairs := make([]labelPair, 0, len(labels))
	for k, v := range labels {
		pairs = append(pairs, labelPair{k, v})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].K < pairs[j].K })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.K)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.V))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String(), pairs
}

// Registry holds named instruments. Lookups create on first use, so
// instrumented code never needs registration boilerplate. The zero value
// is not usable; call NewRegistry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	meta       map[string]seriesMeta
	collectors []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		meta:       make(map[string]seriesMeta),
	}
}

// RegisterCollector adds a hook that runs before every Snapshot (and
// therefore before every expvar render, Prometheus scrape, and SSE
// push). Collectors refresh pull-style gauges — queue depths, shard
// occupancy — so instrumented code does not have to update them on its
// hot path. A collector must not call Snapshot itself.
func (r *Registry) RegisterCollector(f func()) {
	r.mu.Lock()
	r.collectors = append(r.collectors, f)
	r.mu.Unlock()
}

// collect runs the registered collectors outside the registry lock (they
// look instruments up, which needs the lock).
func (r *Registry) collect() {
	r.mu.Lock()
	cs := make([]func(), len(r.collectors))
	copy(cs, r.collectors)
	r.mu.Unlock()
	for _, f := range cs {
		f()
	}
}

// Counter returns (creating if needed) the named counter. Safe to call
// from the hot path: the instrument should be looked up once and reused,
// but repeated lookups only cost a mutex.
func (r *Registry) Counter(name string) *Counter { return r.CounterL(name, nil) }

// CounterL returns (creating if needed) the counter series with the
// given labels. Hot paths should resolve the series once and reuse it —
// each lookup re-canonicalizes the label set.
func (r *Registry) CounterL(name string, labels Labels) *Counter {
	key, pairs := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
		r.meta[key] = seriesMeta{family: name, labels: pairs}
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge { return r.GaugeL(name, nil) }

// GaugeL returns (creating if needed) the gauge series with the given
// labels.
func (r *Registry) GaugeL(name string, labels Labels) *Gauge {
	key, pairs := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{}
		r.gauges[key] = g
		r.meta[key] = seriesMeta{family: name, labels: pairs}
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram { return r.HistogramL(name, nil) }

// HistogramL returns (creating if needed) the histogram series with the
// given labels.
func (r *Registry) HistogramL(name string, labels Labels) *Histogram {
	key, pairs := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[key]
	if !ok {
		h = &Histogram{}
		r.histograms[key] = h
		r.meta[key] = seriesMeta{family: name, labels: pairs}
	}
	return h
}

// Snapshot is a point-in-time view of every instrument, ready for JSON.
// Labeled series appear under their full series key, e.g.
// `findings{kind="soundness"}`; unlabeled ones under the bare name.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every instrument, after running the registered
// collectors so pull-style gauges are fresh.
func (r *Registry) Snapshot() Snapshot {
	r.collect()
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	r.mu.Unlock()

	snap := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for k, c := range counters {
		snap.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		snap.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		snap.Histograms[k] = h.Snapshot()
	}
	return snap
}

// JSON renders the snapshot with sorted keys (encoding/json sorts map
// keys), indented for the campaign's -metrics file.
func (r *Registry) JSON() ([]byte, error) {
	return json.MarshalIndent(r.Snapshot(), "", "  ")
}

// String renders a compact one-line summary of the counters, sorted by
// name — the progress-report form.
func (r *Registry) String() string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap.Counters))
	for k := range snap.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	out := ""
	for i, k := range names {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", k, snap.Counters[k])
	}
	return out
}

// expvarMu serializes Publish: expvar.Publish panics on duplicate names,
// and tests may publish more than one registry.
var expvarMu sync.Mutex

// ErrRebound reports that PublishExpvar displaced a different registry
// previously published under the same name. The rebind still happens —
// the newest registry wins, matching the old silent behavior — but the
// caller can now notice that two registries in one process (e.g. serve
// mode plus a campaign) are shadowing each other and log it.
var ErrRebound = errors.New("metrics: expvar name was bound to another registry (rebound; newest wins)")

// ErrDuplicateName reports that the expvar name is held by a variable
// this package did not publish, so the registry cannot be exposed under
// it at all.
var ErrDuplicateName = errors.New("metrics: expvar name already taken by a foreign variable")

// PublishExpvar exposes the registry under the given expvar name (e.g. on
// /debug/vars when an HTTP listener is up). Republishing never panics:
// publishing the same registry again is a no-op, publishing a different
// registry rebinds the name and returns ErrRebound, and a name held by a
// non-registry expvar returns ErrDuplicateName with the binding left
// untouched.
func (r *Registry) PublishExpvar(name string) error {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if v := expvar.Get(name); v != nil {
		rb, ok := v.(*rebindable)
		if !ok {
			return fmt.Errorf("%w: %q", ErrDuplicateName, name)
		}
		if rb.get() == r {
			return nil
		}
		rb.set(r)
		return fmt.Errorf("%w: %q", ErrRebound, name)
	}
	rb := &rebindable{}
	rb.set(r)
	expvar.Publish(name, rb)
	return nil
}

// rebindable is an expvar.Var whose backing registry can be swapped, so
// republishing a name is an update instead of a panic.
type rebindable struct {
	mu sync.Mutex
	r  *Registry
}

func (rb *rebindable) set(r *Registry) {
	rb.mu.Lock()
	rb.r = r
	rb.mu.Unlock()
}

func (rb *rebindable) get() *Registry {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.r
}

func (rb *rebindable) String() string {
	rb.mu.Lock()
	r := rb.r
	rb.mu.Unlock()
	if r == nil {
		return "{}"
	}
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(data)
}
