package metrics

import (
	"encoding/json"
	"errors"
	"expvar"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("queries")
			g := r.Gauge("busy")
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("queries").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("busy").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency")
	// 90 fast observations, 10 slow ones.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.Min != 100*time.Microsecond || s.Max != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	// Bucket upper edges overestimate by at most 2x.
	if s.P50 < 100*time.Microsecond || s.P50 > 256*time.Microsecond {
		t.Fatalf("p50 = %v, want ~100µs..256µs", s.P50)
	}
	if s.P99 < 100*time.Millisecond || s.P99 > 256*time.Millisecond {
		t.Fatalf("p99 = %v, want ~100ms..256ms", s.P99)
	}
	if mean := s.Mean(); mean < 5*time.Millisecond || mean > 20*time.Millisecond {
		t.Fatalf("mean = %v, want ~10ms", mean)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("exprs").Add(42)
	r.Gauge("workers").Set(4)
	r.Histogram("lat").Observe(time.Millisecond)
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if snap.Counters["exprs"] != 42 || snap.Gauges["workers"] != 4 {
		t.Fatalf("round-tripped snapshot = %+v", snap)
	}
	if snap.Histograms["lat"].Count != 1 {
		t.Fatalf("histogram lost: %+v", snap.Histograms)
	}
}

func TestStringSummary(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	if got := r.String(); got != "a=1 b=2" {
		t.Fatalf("String() = %q, want %q", got, "a=1 b=2")
	}
}

func TestPublishExpvarRebinds(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("n").Add(1)
	if err := r1.PublishExpvar("test_metrics"); err != nil {
		t.Fatalf("first publish: %v", err)
	}
	if err := r1.PublishExpvar("test_metrics"); err != nil {
		t.Fatalf("republishing the same registry must be a silent no-op, got %v", err)
	}
	r2 := NewRegistry()
	r2.Counter("n").Add(7)
	err := r2.PublishExpvar("test_metrics") // must not panic; rebinds loudly
	if !errors.Is(err, ErrRebound) {
		t.Fatalf("rebinding a second registry returned %v, want ErrRebound", err)
	}
	v := expvar.Get("test_metrics")
	if v == nil {
		t.Fatal("not published")
	}
	if !strings.Contains(v.String(), `"n":7`) {
		t.Fatalf("expvar shows %s, want rebound registry with n=7", v.String())
	}
}

// TestPublishExpvarForeignName is the regression test for the silent
// no-op: a name held by an expvar this package did not publish must
// surface ErrDuplicateName instead of quietly serving the foreign
// variable while the caller believes their registry is exposed.
func TestPublishExpvarForeignName(t *testing.T) {
	expvar.NewString("test_metrics_foreign").Set("not ours")
	r := NewRegistry()
	r.Counter("n").Add(3)
	err := r.PublishExpvar("test_metrics_foreign")
	if !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("publishing over a foreign expvar returned %v, want ErrDuplicateName", err)
	}
	if got := expvar.Get("test_metrics_foreign").String(); !strings.Contains(got, "not ours") {
		t.Fatalf("foreign binding was clobbered: %s", got)
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	r.CounterL("findings", Labels{"kind": "soundness"}).Add(2)
	r.CounterL("findings", Labels{"kind": "inconsistent"}).Add(5)
	r.Counter("findings").Add(1) // the bare series is a third, distinct one
	// Label order in the map must not matter.
	r.GaugeL("depth", Labels{"worker": "0", "queue": "a"}).Set(4)
	if got := r.GaugeL("depth", Labels{"queue": "a", "worker": "0"}).Value(); got != 4 {
		t.Fatalf("label-order-insensitive lookup = %d, want 4", got)
	}
	snap := r.Snapshot()
	if got := snap.Counters[`findings{kind="soundness"}`]; got != 2 {
		t.Fatalf("labeled counter = %d, want 2 (snapshot %v)", got, snap.Counters)
	}
	if got := snap.Counters[`findings{kind="inconsistent"}`]; got != 5 {
		t.Fatalf("labeled counter = %d, want 5", got)
	}
	if got := snap.Counters["findings"]; got != 1 {
		t.Fatalf("bare counter = %d, want 1", got)
	}
	if got := snap.Gauges[`depth{queue="a",worker="0"}`]; got != 4 {
		t.Fatalf("labeled gauge missing from snapshot: %v", snap.Gauges)
	}
}

func TestCollectorRunsOnSnapshot(t *testing.T) {
	r := NewRegistry()
	calls := 0
	r.RegisterCollector(func() {
		calls++
		r.Gauge("pulled").Set(int64(calls))
	})
	if got := r.Snapshot().Gauges["pulled"]; got != 1 {
		t.Fatalf("collector gauge = %d, want 1", got)
	}
	if got := r.Snapshot().Gauges["pulled"]; got != 2 {
		t.Fatalf("collector gauge after second snapshot = %d, want 2", got)
	}
	if calls != 2 {
		t.Fatalf("collector ran %d times, want 2", calls)
	}
}

// TestHistogramBucketBoundaries pins the exponential bucketing at the
// exact edges: an observation of exactly 2^i microseconds must land in
// the bucket covering [2^i, 2^(i+1)), zero and negative durations in
// bucket 0, and durations past the last edge in the final bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{-time.Second, 0}, // clamped to zero
		{0, 0},
		{500 * time.Nanosecond, 0}, // < 1µs truncates to 0µs
		{time.Microsecond, 1},      // exactly on the first edge
		{2 * time.Microsecond, 2},  // exactly on an edge: [2µs, 4µs)
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 3},
		{1024 * time.Microsecond, 11},
		{(1 << 36) * time.Microsecond, 37}, // within the last bucket
		{(1 << 37) * time.Microsecond, 37}, // clamped into the last bucket
		{1<<63 - 1, 37},                    // max duration clamps too
	}
	for _, tc := range cases {
		h := &Histogram{}
		h.Observe(tc.d)
		buckets, count, _ := h.bucketCounts()
		if count != 1 {
			t.Fatalf("Observe(%v): count = %d", tc.d, count)
		}
		for i, n := range buckets {
			want := int64(0)
			if i == tc.bucket {
				want = 1
			}
			if n != want {
				t.Errorf("Observe(%v): bucket[%d] = %d, want %d", tc.d, i, n, want)
			}
		}
	}
}

func TestHistogramP95(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for i := 0; i < 96; i++ {
		h.Observe(10 * time.Microsecond)
	}
	for i := 0; i < 4; i++ {
		h.Observe(10 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.P95 < 10*time.Microsecond || s.P95 > 32*time.Microsecond {
		t.Fatalf("p95 = %v, want ~10µs..32µs (fast cohort)", s.P95)
	}
	if s.P99 < 10*time.Millisecond || s.P99 > 32*time.Millisecond {
		t.Fatalf("p99 = %v, want ~10ms..32ms (slow cohort)", s.P99)
	}
}

func TestEventLogJSONL(t *testing.T) {
	var sb strings.Builder
	l := NewEventLog(&sb)
	l.now = func() time.Time { return time.Unix(0, 0) }
	if err := l.Emit("batch", map[string]any{"seed": int64(12345), "exprs": 50}); err != nil {
		t.Fatal(err)
	}
	if err := l.Emit("finding", map[string]any{"expr": "e1"}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if rec["event"] != "batch" || rec["seed"] != float64(12345) {
		t.Fatalf("line 0 = %v", rec)
	}
}

func TestEventLogNilIsNoOp(t *testing.T) {
	var l *EventLog
	if err := l.Emit("x", nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, errWrite
}

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "disk full" }

func TestEventLogRetainsFirstError(t *testing.T) {
	w := &failWriter{}
	l := NewEventLog(w)
	if err := l.Emit("a", nil); err == nil {
		t.Fatal("write error not surfaced")
	}
	_ = l.Emit("b", nil)
	_ = l.Emit("c", nil)
	if w.n != 1 {
		t.Fatalf("writer called %d times after failure, want 1", w.n)
	}
	if l.Err() == nil {
		t.Fatal("Err() lost the failure")
	}
}
