package metrics

import (
	"encoding/json"
	"expvar"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("queries")
			g := r.Gauge("busy")
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("queries").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("busy").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency")
	// 90 fast observations, 10 slow ones.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.Min != 100*time.Microsecond || s.Max != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	// Bucket upper edges overestimate by at most 2x.
	if s.P50 < 100*time.Microsecond || s.P50 > 256*time.Microsecond {
		t.Fatalf("p50 = %v, want ~100µs..256µs", s.P50)
	}
	if s.P99 < 100*time.Millisecond || s.P99 > 256*time.Millisecond {
		t.Fatalf("p99 = %v, want ~100ms..256ms", s.P99)
	}
	if mean := s.Mean(); mean < 5*time.Millisecond || mean > 20*time.Millisecond {
		t.Fatalf("mean = %v, want ~10ms", mean)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("exprs").Add(42)
	r.Gauge("workers").Set(4)
	r.Histogram("lat").Observe(time.Millisecond)
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if snap.Counters["exprs"] != 42 || snap.Gauges["workers"] != 4 {
		t.Fatalf("round-tripped snapshot = %+v", snap)
	}
	if snap.Histograms["lat"].Count != 1 {
		t.Fatalf("histogram lost: %+v", snap.Histograms)
	}
}

func TestStringSummary(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	if got := r.String(); got != "a=1 b=2" {
		t.Fatalf("String() = %q, want %q", got, "a=1 b=2")
	}
}

func TestPublishExpvarRebinds(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("n").Add(1)
	r1.PublishExpvar("test_metrics")
	r2 := NewRegistry()
	r2.Counter("n").Add(7)
	r2.PublishExpvar("test_metrics") // must not panic; rebinds
	v := expvar.Get("test_metrics")
	if v == nil {
		t.Fatal("not published")
	}
	if !strings.Contains(v.String(), `"n":7`) {
		t.Fatalf("expvar shows %s, want rebound registry with n=7", v.String())
	}
}

func TestEventLogJSONL(t *testing.T) {
	var sb strings.Builder
	l := NewEventLog(&sb)
	l.now = func() time.Time { return time.Unix(0, 0) }
	if err := l.Emit("batch", map[string]any{"seed": int64(12345), "exprs": 50}); err != nil {
		t.Fatal(err)
	}
	if err := l.Emit("finding", map[string]any{"expr": "e1"}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if rec["event"] != "batch" || rec["seed"] != float64(12345) {
		t.Fatalf("line 0 = %v", rec)
	}
}

func TestEventLogNilIsNoOp(t *testing.T) {
	var l *EventLog
	if err := l.Emit("x", nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, errWrite
}

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "disk full" }

func TestEventLogRetainsFirstError(t *testing.T) {
	w := &failWriter{}
	l := NewEventLog(w)
	if err := l.Emit("a", nil); err == nil {
		t.Fatal("write error not surfaced")
	}
	_ = l.Emit("b", nil)
	_ = l.Emit("c", nil)
	if w.n != 1 {
		t.Fatalf("writer called %d times after failure, want 1", w.n)
	}
	if l.Err() == nil {
		t.Fatal("Err() lost the failure")
	}
}
