package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format (version 0.0.4) exposition of the registry —
// what a scraper reads off /metricsz. The encoder is deterministic:
// families sort by name, series within a family sort by their canonical
// label string, and histogram buckets ascend by bound, so two scrapes of
// identical state are byte-identical (the golden-file test pins this).
//
// Counters and gauges export as-is. Histograms export the standard
// cumulative triple: `name_bucket{le="<seconds>"}` series over the real
// exponential duration bounds (bucket i of the Histogram covers
// [2^(i-1), 2^i) microseconds), `name_sum` in seconds, and `name_count`.
// Trailing empty buckets are elided — exposition stops at the first
// bucket that already holds every observation, then emits `le="+Inf"` —
// which keeps 38-bucket histograms from dominating the scrape while
// staying cumulative and monotone. One boundary nit is inherited from
// the internal [lo, hi) buckets: an observation of exactly 2^i µs lands
// in the bucket whose `le` is 2^(i+1) µs, one bucket above the tightest
// `le` that would admit it. Quantile error from this is bounded by the
// same 2x the JSON snapshot already accepts.

// formatLe renders a bucket's upper bound in seconds ("1e-06",
// "0.004096", "68719.476736").
func formatLe(bucket int) string {
	us := uint64(1) << uint(bucket)
	return strconv.FormatFloat(float64(us)/1e6, 'g', -1, 64)
}

// promSeries renders one sample line: the family name, the sorted label
// pairs plus any extra pairs (already escaped where needed), and the
// value. With no labels at all, the braces are omitted, matching
// canonical Prometheus output.
func promSeries(b *strings.Builder, family, suffix string, labels []labelPair, extra []labelPair, value string) {
	b.WriteString(family)
	b.WriteString(suffix)
	if len(labels)+len(extra) > 0 {
		b.WriteByte('{')
		n := 0
		for _, p := range append(append([]labelPair{}, labels...), extra...) {
			if n > 0 {
				b.WriteByte(',')
			}
			b.WriteString(p.K)
			b.WriteString(`="`)
			b.WriteString(escapeLabelValue(p.V))
			b.WriteString(`"`)
			n++
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// WritePrometheus encodes every instrument in Prometheus text exposition
// format v0.0.4, running the registered collectors first so pull-style
// gauges are fresh.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.collect()

	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	meta := make(map[string]seriesMeta, len(r.meta))
	for k, v := range r.meta {
		meta[k] = v
	}
	r.mu.Unlock()

	metaFor := func(key string) seriesMeta {
		m := meta[key]
		if m.family == "" {
			m.family = key // pre-labels series; the key is the bare name
		}
		return m
	}

	var b strings.Builder
	writeFamilies(&b, "counter", keysOf(counters), metaFor, func(key string, m seriesMeta) {
		promSeries(&b, m.family, "", m.labels, nil, strconv.FormatInt(counters[key].Value(), 10))
	})
	writeFamilies(&b, "gauge", keysOf(gauges), metaFor, func(key string, m seriesMeta) {
		promSeries(&b, m.family, "", m.labels, nil, strconv.FormatInt(gauges[key].Value(), 10))
	})
	writeFamilies(&b, "histogram", keysOf(hists), metaFor, func(key string, m seriesMeta) {
		writeHistogram(&b, m, hists[key])
	})
	_, err := io.WriteString(w, b.String())
	return err
}

func keysOf[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// writeFamilies orders series by (family, series key) — NOT by raw
// series key, under which "foo_bar" would interleave between "foo" and
// "foo{...}" and split the foo family in two — emits one `# TYPE` line
// per family, then each series via emit.
func writeFamilies(b *strings.Builder, typ string, keys []string, metaFor func(string) seriesMeta, emit func(key string, m seriesMeta)) {
	sort.SliceStable(keys, func(i, j int) bool {
		fi, fj := metaFor(keys[i]).family, metaFor(keys[j]).family
		if fi != fj {
			return fi < fj
		}
		return keys[i] < keys[j]
	})
	lastFamily := ""
	for _, key := range keys {
		m := metaFor(key)
		if m.family != lastFamily {
			fmt.Fprintf(b, "# TYPE %s %s\n", m.family, typ)
			lastFamily = m.family
		}
		emit(key, m)
	}
}

// writeHistogram emits the cumulative _bucket/_sum/_count triple for one
// histogram series.
func writeHistogram(b *strings.Builder, m seriesMeta, h *Histogram) {
	buckets, count, sum := h.bucketCounts()
	var cum int64
	for i := 0; i < histBuckets-1; i++ {
		cum += buckets[i]
		promSeries(b, m.family, "_bucket", m.labels,
			[]labelPair{{"le", formatLe(i)}}, strconv.FormatInt(cum, 10))
		if cum == count {
			break
		}
	}
	promSeries(b, m.family, "_bucket", m.labels,
		[]labelPair{{"le", "+Inf"}}, strconv.FormatInt(count, 10))
	promSeries(b, m.family, "_sum", m.labels, nil,
		strconv.FormatFloat(sum.Seconds(), 'g', -1, 64))
	promSeries(b, m.family, "_count", m.labels, nil,
		strconv.FormatInt(count, 10))
}
