// Package reduce shrinks expressions to minimal reproducers. Given a
// finding-preserving property (does this expression still trigger the
// same n-way contradiction / oracle finding / consistency violation?),
// Reduce greedily applies shrinking transformations — operand hoisting,
// substitution by constants or fresh variables, range-metadata removal,
// global width narrowing — keeping a candidate only when the property
// still holds, until no single transformation preserves it (1-minimal),
// in the delta-debugging tradition and following the width-ascending
// minimal-witness machinery of internal/absint.
//
// Every transformation strictly decreases the lexicographic measure
// (instructions, variables, range-constrained variables, summed width),
// so the loop terminates regardless of the property; MaxTried bounds the
// number of property evaluations as a backstop for expensive properties.
package reduce

import (
	"fmt"

	"dfcheck/internal/apint"
	"dfcheck/internal/ir"
)

// Property reports whether a candidate expression still exhibits the
// finding being reduced. It must be deterministic: Reduce re-evaluates
// it on every candidate and keeps only candidates where it holds.
type Property func(f *ir.Function) bool

// MaxTried caps the total number of property evaluations per Reduce
// call. §4.7-style findings reduce in well under a hundred tries; the
// cap only matters for pathological properties over large expressions.
const MaxTried = 10000

// Result is the outcome of a reduction.
type Result struct {
	// F is the reduced expression; if the property never held (including
	// on the input itself), F is the unmodified input.
	F *ir.Function
	// Steps counts accepted shrinking transformations.
	Steps int
	// Tried counts property evaluations.
	Tried int
}

// Reduce shrinks f to a 1-minimal expression preserving keep. The input
// itself is not required to satisfy keep, but if it does not, no
// candidate is accepted against it and the input comes back unchanged
// (Steps 0): reduction never substitutes an expression with a property
// the original lacked.
func Reduce(f *ir.Function, keep Property) Result {
	res := Result{F: f}
	if f == nil || keep == nil || !keep(f) {
		return res
	}
	for {
		improved := false
		for _, g := range candidates(res.F) {
			if res.Tried >= MaxTried {
				return res
			}
			res.Tried++
			if keep(g) {
				res.F = g
				res.Steps++
				improved = true
				break
			}
		}
		if !improved {
			return res // 1-minimal: no single transformation preserves keep
		}
	}
}

// measure is the termination order: candidates must be lexicographically
// smaller than the expression they shrink.
type measure struct {
	insts, vars, rangeVars, width int
}

func measureOf(f *ir.Function) measure {
	var m measure
	for _, n := range f.Insts() {
		switch {
		case n.IsVar():
			m.vars++
			if n.HasRange {
				m.rangeVars++
			}
		case n.IsConst():
		default:
			m.insts++
		}
		m.width += int(n.Width)
	}
	return m
}

func (m measure) less(o measure) bool {
	switch {
	case m.insts != o.insts:
		return m.insts < o.insts
	case m.vars != o.vars:
		return m.vars < o.vars
	case m.rangeVars != o.rangeVars:
		return m.rangeVars < o.rangeVars
	default:
		return m.width < o.width
	}
}

// candidates returns every single-step shrink of f, deterministically
// ordered root-first so the most aggressive reductions are tried first.
// Candidates that fail to rebuild (width rules, bswap alignment) or fail
// to shrink the measure are dropped.
func candidates(f *ir.Function) []*ir.Function {
	base := measureOf(f)
	var out []*ir.Function
	add := func(g *ir.Function) {
		if g != nil && measureOf(g).less(base) {
			out = append(out, g)
		}
	}

	insts := f.Insts()
	fresh := freshVarName(f)
	for i := len(insts) - 1; i >= 0; i-- {
		n := insts[i]
		if n.IsConst() {
			continue
		}
		if n.IsVar() {
			for _, v := range leafValues(n.Width) {
				c := v
				add(substitute(f, n, func(b *ir.Builder, _ []*ir.Inst) *ir.Inst {
					return b.Const(c)
				}))
			}
			if n.HasRange {
				add(substitute(f, n, func(b *ir.Builder, _ []*ir.Inst) *ir.Inst {
					return b.Var(n.Name, n.Width)
				}))
			}
			continue
		}
		for j, a := range n.Args {
			if a.Width == n.Width {
				arg := j
				add(substitute(f, n, func(_ *ir.Builder, args []*ir.Inst) *ir.Inst {
					return args[arg]
				}))
			}
		}
		for _, v := range leafValues(n.Width) {
			c := v
			add(substitute(f, n, func(b *ir.Builder, _ []*ir.Inst) *ir.Inst {
				return b.Const(c)
			}))
		}
		add(substitute(f, n, func(b *ir.Builder, _ []*ir.Inst) *ir.Inst {
			return b.Var(fresh, n.Width)
		}))
	}
	add(narrowed(f))
	return out
}

// leafValues lists the constants tried as replacements: the lattice
// corner cases 0, 1, and all-ones.
func leafValues(w uint) []apint.Int {
	if w == 1 {
		return []apint.Int{apint.Zero(w), apint.AllOnes(w)} // one == all-ones at i1
	}
	return []apint.Int{apint.Zero(w), apint.One(w), apint.AllOnes(w)}
}

// substitute rebuilds f with target replaced (everywhere, the DAG is
// hash-consed) by mk's result; mk receives the already-cloned operands
// of target. Returns nil when the rebuild is structurally invalid.
func substitute(f *ir.Function, target *ir.Inst, mk func(b *ir.Builder, args []*ir.Inst) *ir.Inst) *ir.Function {
	return rebuild(f, func(b *ir.Builder, n *ir.Inst, args []*ir.Inst) *ir.Inst {
		if n == target {
			return mk(b, args)
		}
		return nil
	})
}

// rebuild clones f through a fresh Builder, letting edit override the
// clone of any instruction (nil keeps the default clone). Builder panics
// (width rules, flag rules) reject the candidate; Verify is the final
// safety net.
func rebuild(f *ir.Function, edit func(b *ir.Builder, n *ir.Inst, args []*ir.Inst) *ir.Inst) (g *ir.Function) {
	defer func() {
		if recover() != nil {
			g = nil
		}
	}()
	b := ir.NewBuilder()
	memo := make(map[*ir.Inst]*ir.Inst)
	var clone func(n *ir.Inst) *ir.Inst
	clone = func(n *ir.Inst) *ir.Inst {
		if m, ok := memo[n]; ok {
			return m
		}
		args := make([]*ir.Inst, len(n.Args))
		for i, a := range n.Args {
			args[i] = clone(a)
		}
		m := edit(b, n, args)
		if m == nil {
			m = cloneInst(b, n, args)
		}
		memo[n] = m
		return m
	}
	g = b.Function(clone(f.Root))
	if ir.Verify(g) != nil {
		return nil
	}
	return g
}

func cloneInst(b *ir.Builder, n *ir.Inst, args []*ir.Inst) *ir.Inst {
	switch {
	case n.IsConst():
		return b.Const(n.Val)
	case n.IsVar():
		if n.HasRange {
			return b.VarRange(n.Name, n.Width, n.Lo, n.Hi)
		}
		return b.Var(n.Name, n.Width)
	case n.Op.IsCast():
		return b.BuildCast(n.Op, n.Width, args[0])
	default:
		return b.Build(n.Op, n.Flags, args...)
	}
}

// narrowed rebuilds f with every width above 1 decreased by one:
// constants re-masked, range metadata re-masked (or dropped when it
// degenerates), casts that become identities elided. Returns nil when
// the narrower function is invalid (e.g. bswap alignment).
func narrowed(f *ir.Function) (g *ir.Function) {
	defer func() {
		if recover() != nil {
			g = nil
		}
	}()
	b := ir.NewBuilder()
	memo := make(map[*ir.Inst]*ir.Inst)
	var clone func(n *ir.Inst) *ir.Inst
	clone = func(n *ir.Inst) *ir.Inst {
		if m, ok := memo[n]; ok {
			return m
		}
		nw := n.Width
		if nw > 1 {
			nw--
		}
		var m *ir.Inst
		switch {
		case n.IsConst():
			m = b.Const(apint.New(nw, n.Val.Uint64()))
		case n.IsVar():
			lo, hi := apint.New(nw, n.Lo.Uint64()), apint.New(nw, n.Hi.Uint64())
			if n.HasRange && lo.Uint64() != hi.Uint64() {
				m = b.VarRange(n.Name, nw, lo, hi)
			} else {
				m = b.Var(n.Name, nw)
			}
		case n.Op.IsCast():
			arg := clone(n.Args[0])
			if arg.Width == nw {
				m = arg // the cast became an identity
			} else {
				m = b.BuildCast(n.Op, nw, arg)
			}
		default:
			args := make([]*ir.Inst, len(n.Args))
			for i, a := range n.Args {
				args[i] = clone(a)
			}
			m = b.Build(n.Op, n.Flags, args...)
		}
		memo[n] = m
		return m
	}
	g = b.Function(clone(f.Root))
	if ir.Verify(g) != nil {
		return nil
	}
	return g
}

// freshVarName returns a variable name unused in f.
func freshVarName(f *ir.Function) string {
	used := make(map[string]bool, len(f.Vars))
	for _, v := range f.Vars {
		used[v.Name] = true
	}
	for i := 0; ; i++ {
		name := fmt.Sprintf("r%d", i)
		if !used[name] {
			return name
		}
	}
}
