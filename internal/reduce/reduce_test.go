package reduce

import (
	"testing"

	"dfcheck/internal/ir"
)

// hasOp is the classic reducer test property: the expression still
// contains the given opcode.
func hasOp(op ir.Op) Property {
	return func(f *ir.Function) bool {
		for _, n := range f.Insts() {
			if n.Op == op {
				return true
			}
		}
		return false
	}
}

const bigSrc = "%x:i8 = var\n%y:i8 = var (range=[2,9))\n" +
	"%0:i8 = add %x, %y\n%1:i8 = mul %0, 3:i8\n%2:i8 = xor %1, %x\n" +
	"%3:i8 = sub %2, %y\ninfer %3"

func TestReduceToSingleInstruction(t *testing.T) {
	f := ir.MustParse(bigSrc)
	res := Reduce(f, hasOp(ir.OpMul))
	if !hasOp(ir.OpMul)(res.F) {
		t.Fatalf("property lost:\n%s", res.F)
	}
	if got := res.F.NumInsts(); got != 1 {
		t.Fatalf("reduced to %d instructions, want 1:\n%s", got, res.F)
	}
	if got := res.F.Width(); got != 1 {
		t.Fatalf("reduced to width %d, want 1:\n%s", got, res.F)
	}
	if res.Steps == 0 {
		t.Fatalf("no steps recorded for a real reduction")
	}
}

func TestReduceIsOneMinimal(t *testing.T) {
	f := ir.MustParse(bigSrc)
	keep := hasOp(ir.OpMul)
	res := Reduce(f, keep)
	if again := Reduce(res.F, keep); again.Steps != 0 {
		t.Fatalf("reduced expression shrank further by %d steps:\n%s\n->\n%s",
			again.Steps, res.F, again.F)
	}
}

func TestReduceDeterministic(t *testing.T) {
	keep := hasOp(ir.OpXor)
	a := Reduce(ir.MustParse(bigSrc), keep)
	b := Reduce(ir.MustParse(bigSrc), keep)
	if a.F.String() != b.F.String() || a.Steps != b.Steps || a.Tried != b.Tried {
		t.Fatalf("nondeterministic reduction:\n%s\nvs\n%s", a.F, b.F)
	}
}

func TestReduceRejectsAllCandidates(t *testing.T) {
	f := ir.MustParse(bigSrc)
	res := Reduce(f, func(g *ir.Function) bool { return g == f })
	if res.F != f || res.Steps != 0 {
		t.Fatalf("input-only property must return the input unchanged")
	}
}

func TestReduceFalseProperty(t *testing.T) {
	f := ir.MustParse(bigSrc)
	res := Reduce(f, func(*ir.Function) bool { return false })
	if res.F != f || res.Steps != 0 || res.Tried != 0 {
		t.Fatalf("a property that never holds must not reduce: %+v", res)
	}
}

func TestReduceTrivialProperty(t *testing.T) {
	res := Reduce(ir.MustParse(bigSrc), func(*ir.Function) bool { return true })
	if got := res.F.NumInsts(); got != 0 {
		t.Fatalf("always-true property left %d instructions:\n%s", got, res.F)
	}
	if got := res.F.Width(); got != 1 {
		t.Fatalf("always-true property left width %d:\n%s", got, res.F)
	}
	for _, v := range res.F.Vars {
		if v.HasRange {
			t.Fatalf("range metadata survived an always-true property:\n%s", res.F)
		}
	}
}

func TestReduceDropsRangeMetadata(t *testing.T) {
	f := ir.MustParse("%y:i8 = var (range=[2,9))\n%0:i8 = mul %y, %y\ninfer %0")
	res := Reduce(f, hasOp(ir.OpMul))
	for _, v := range res.F.Vars {
		if v.HasRange {
			t.Fatalf("range metadata not needed by the property survived:\n%s", res.F)
		}
	}
}

func TestReduceKeepsCastShapes(t *testing.T) {
	// The property needs the zext; reduction may narrow widths but the
	// result must still verify and keep a genuine widening cast.
	f := ir.MustParse("%x:i4 = var\n%0:i8 = zext %x\n%1:i8 = add %0, 1:i8\ninfer %1")
	res := Reduce(f, hasOp(ir.OpZExt))
	if err := ir.Verify(res.F); err != nil {
		t.Fatalf("reduced function does not verify: %v\n%s", err, res.F)
	}
	if !hasOp(ir.OpZExt)(res.F) {
		t.Fatalf("property lost:\n%s", res.F)
	}
}

func TestReduceBSwapAlignment(t *testing.T) {
	// bswap only exists at widths divisible by 8: global narrowing must
	// skip it rather than produce an invalid function.
	f := ir.MustParse("%x:i8 = var\n%0:i8 = bswap %x\n%1:i8 = add %0, %x\ninfer %1")
	res := Reduce(f, hasOp(ir.OpBSwap))
	if err := ir.Verify(res.F); err != nil {
		t.Fatalf("reduced function does not verify: %v\n%s", err, res.F)
	}
	if res.F.Width() != 8 {
		t.Fatalf("bswap function narrowed to %d:\n%s", res.F.Width(), res.F)
	}
}
