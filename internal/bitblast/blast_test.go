package bitblast

import (
	"testing"

	"dfcheck/internal/apint"
	"dfcheck/internal/eval"
	"dfcheck/internal/ir"
	"dfcheck/internal/sat"
)

// checkAgainstEval exhaustively compares the circuit with the interpreter:
// for every input assignment, WellDefined must equal eval's ok, and the
// output word must equal eval's value on well-defined inputs.
func checkAgainstEval(t *testing.T, src string) {
	t.Helper()
	f := ir.MustParse(src)
	if eval.TotalInputBits(f) > 12 {
		t.Fatalf("test corpus function too wide: %s", src)
	}
	s := sat.New()
	b := Blast(s, f)

	litValue := func(l sat.Lit) bool {
		v := s.Value(l.Var())
		if l.IsNeg() {
			v = !v
		}
		return v
	}

	eval.ForEachInput(f, func(env eval.Env) bool {
		var assumptions []sat.Lit
		for v, word := range b.Inputs {
			val := env[v]
			for i := uint(0); i < val.Width(); i++ {
				l := word[i]
				if !val.Bit(i) {
					l = l.Not()
				}
				assumptions = append(assumptions, l)
			}
		}
		if got := s.Solve(assumptions...); got != sat.Sat {
			t.Fatalf("%s: circuit unsatisfiable for input %v", src, env)
		}
		want, wantOK := eval.Eval(f, env)
		gotOK := litValue(b.WellDefined)
		if gotOK != wantOK {
			t.Fatalf("%s: WellDefined = %v, eval ok = %v for %v", src, gotOK, wantOK, fmtEnv(f, env))
		}
		if wantOK {
			got := b.C.Value(b.Output)
			if got.Ne(want) {
				t.Fatalf("%s: circuit = %v, eval = %v for %v", src, got, want, fmtEnv(f, env))
			}
		}
		return true
	})
}

func fmtEnv(f *ir.Function, env eval.Env) map[string]uint64 {
	m := make(map[string]uint64)
	for _, v := range f.Vars {
		m[v.Name] = env[v].Uint64()
	}
	return m
}

func TestBlastArithmetic(t *testing.T) {
	for _, src := range []string{
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = add %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = sub %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = mul %x, %y\ninfer %0",
		"%x:i5 = var\n%y:i5 = var\n%0:i5 = mul %x, %y\ninfer %0",
		"%x:i1 = var\n%y:i1 = var\n%0:i1 = add %x, %y\ninfer %0",
	} {
		checkAgainstEval(t, src)
	}
}

func TestBlastFlaggedArithmetic(t *testing.T) {
	for _, src := range []string{
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = addnsw %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = addnuw %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = addnw %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = subnsw %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = subnuw %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = mulnsw %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = mulnuw %x, %y\ninfer %0",
	} {
		checkAgainstEval(t, src)
	}
}

func TestBlastDivRem(t *testing.T) {
	for _, src := range []string{
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = udiv %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = urem %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = sdiv %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = srem %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = udivexact %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = sdivexact %x, %y\ninfer %0",
		"%x:i3 = var\n%0:i3 = srem 4:i3, %x\ninfer %0",
		"%x:i4 = var\n%0:i4 = srem %x, 3:i4\ninfer %0",
	} {
		checkAgainstEval(t, src)
	}
}

func TestBlastShifts(t *testing.T) {
	for _, src := range []string{
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = shl %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = lshr %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = ashr %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = shlnuw %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = shlnsw %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = lshrexact %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = ashrexact %x, %y\ninfer %0",
		"%x:i3 = var\n%y:i3 = var\n%0:i3 = shl %x, %y\ninfer %0", // non-power-of-two width
		"%x:i1 = var\n%y:i1 = var\n%0:i1 = shl %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = rotl %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = rotr %x, %y\ninfer %0",
		"%x:i3 = var\n%y:i3 = var\n%0:i3 = rotl %x, %y\ninfer %0",
	} {
		checkAgainstEval(t, src)
	}
}

func TestBlastBitwiseAndCompare(t *testing.T) {
	for _, src := range []string{
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = and %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = or %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = xor %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i1 = eq %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i1 = ne %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i1 = ult %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i1 = ule %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i1 = slt %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i1 = sle %x, %y\ninfer %0",
	} {
		checkAgainstEval(t, src)
	}
}

func TestBlastSelectCastsIntrinsics(t *testing.T) {
	for _, src := range []string{
		"%c:i1 = var\n%x:i4 = var\n%y:i4 = var\n%0:i4 = select %c, %x, %y\ninfer %0",
		"%x:i4 = var\n%0:i8 = zext %x\ninfer %0",
		"%x:i4 = var\n%0:i8 = sext %x\ninfer %0",
		"%x:i8 = var\n%0:i3 = trunc %x\ninfer %0",
		"%x:i8 = var\n%0:i8 = ctpop %x\ninfer %0",
		"%x:i8 = var\n%0:i8 = cttz %x\ninfer %0",
		"%x:i8 = var\n%0:i8 = ctlz %x\ninfer %0",
		"%x:i8 = var\n%0:i8 = bswap %x\ninfer %0",
		"%x:i8 = var\n%0:i8 = bitreverse %x\ninfer %0",
	} {
		checkAgainstEval(t, src)
	}
}

func TestBlastRangeMetadata(t *testing.T) {
	for _, src := range []string{
		"%x:i8 = var (range=[1,7))\ninfer %x",
		"%x:i8 = var (range=[1,0))\ninfer %x",
		"%x:i8 = var (range=[250,5))\ninfer %x",
		"%x:i8 = var (range=[-7,8))\n%0:i8 = add %x, 1:i8\ninfer %0",
	} {
		checkAgainstEval(t, src)
	}
}

func TestBlastCompositePaperExamples(t *testing.T) {
	for _, src := range []string{
		"%x:i8 = var\n%0:i8 = shl 32:i8, %x\ninfer %0",
		"%x:i4 = var\n%y:i8 = var\n%0:i8 = zext %x\n%1:i8 = lshr %0, %y\ninfer %1",
		"%x:i4 = var\n%0:i4 = and 1:i4, %x\n%1:i4 = add %x, %0\ninfer %1",
		"%x:i4 = var\n%0:i4 = mulnsw 5:i4, %x\n%1:i4 = srem %0, 5:i4\ninfer %1",
		"%x:i8 = var\n%0:i1 = eq 0:i8, %x\n%1:i8 = select %0, 1:i8, %x\ninfer %1",
		"%x:i8 = var\n%0:i8 = sub 0:i8, %x\n%1:i8 = and %x, %0\ninfer %1",
	} {
		checkAgainstEval(t, src)
	}
}

func TestBlastSharedInputsTwoCopies(t *testing.T) {
	// The demanded-bits pattern: blast f twice, second copy with one input
	// bit pinned to zero; check the miter against brute force.
	f := ir.MustParse("%x:i4 = var\n%0:i4 = udiv %x, 5:i4\ninfer %0")
	s := sat.New()
	b1 := Blast(s, f)
	v := f.Vars[0]

	// Copy with bit 0 of x forced to zero.
	forced := append(Word{}, b1.Inputs[v]...)
	forced[0] = b1.C.False()
	b2 := BlastWith(b1.C, f, map[*ir.Inst]Word{v: forced})

	differ := b1.C.Eq(b1.Output, b2.Output).Not()
	cond := b1.C.AndN(b1.WellDefined, b2.WellDefined, differ)
	got := s.Solve(cond)

	// Brute force: does forcing bit 0 of x ever change x udiv 5?
	want := false
	for x := uint64(0); x < 16; x++ {
		a := apint.New(4, x).UDiv(apint.New(4, 5))
		bb := apint.New(4, x&^1).UDiv(apint.New(4, 5))
		if a.Ne(bb) {
			want = true
		}
	}
	if (got == sat.Sat) != want {
		t.Errorf("miter solve = %v, brute force differ = %v", got, want)
	}
}

func TestCircuitGateSimplification(t *testing.T) {
	s := sat.New()
	c := NewCircuit(s)
	a := c.Lit()
	if c.And(a, c.True()) != a || c.And(c.False(), a) != c.False() {
		t.Error("And constant folding wrong")
	}
	if c.Or(a, c.False()) != a || c.Or(c.True(), a) != c.True() {
		t.Error("Or constant folding wrong")
	}
	if c.Xor(a, c.False()) != a || c.Xor(a, c.True()) != a.Not() {
		t.Error("Xor constant folding wrong")
	}
	if c.And(a, a) != a || c.And(a, a.Not()) != c.False() {
		t.Error("And idempotence/contradiction wrong")
	}
	if c.Xor(a, a) != c.False() || c.Xor(a, a.Not()) != c.True() {
		t.Error("Xor self rules wrong")
	}
	if c.Mux(c.True(), a, c.False()) != a {
		t.Error("Mux constant select wrong")
	}
}

func TestConstWordRoundTrip(t *testing.T) {
	s := sat.New()
	c := NewCircuit(s)
	v := apint.New(8, 0xA5)
	w := c.ConstWord(v)
	if got := s.Solve(); got != sat.Sat {
		t.Fatalf("Solve = %v", got)
	}
	if got := c.Value(w); got.Ne(v) {
		t.Errorf("ConstWord round trip = %v", got)
	}
}

func TestBlastNewOps(t *testing.T) {
	for _, src := range []string{
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = umin %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = umax %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = smin %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = smax %x, %y\ninfer %0",
		"%x:i4 = var\n%0:i4 = abs %x\ninfer %0",
		"%a:i4 = var\n%b:i4 = var\n%s:i4 = var\n%0:i4 = fshl %a, %b, %s\ninfer %0",
		"%a:i4 = var\n%b:i4 = var\n%s:i4 = var\n%0:i4 = fshr %a, %b, %s\ninfer %0",
		"%a:i3 = var\n%b:i3 = var\n%s:i3 = var\n%0:i3 = fshl %a, %b, %s\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i1 = uaddo %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i1 = saddo %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i1 = usubo %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i1 = ssubo %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i1 = umulo %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i1 = smulo %x, %y\ninfer %0",
		"%x:i5 = var\n%y:i5 = var\n%0:i1 = smulo %x, %y\ninfer %0",
	} {
		checkAgainstEval(t, src)
	}
}
