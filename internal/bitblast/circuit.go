// Package bitblast compiles ir expressions to CNF over a sat.Solver,
// turning bit-vector queries into SAT queries — the QF_BV decision
// procedure that stands in for the paper's use of Z3. Words are little-
// endian literal vectors; gates are Tseitin-encoded with constant
// simplification so that constant subcircuits fold away.
package bitblast

import (
	"dfcheck/internal/apint"
	"dfcheck/internal/sat"
)

// Word is a bit-vector of SAT literals, least significant bit first.
type Word []sat.Lit

// Width returns the word's bit width.
func (w Word) Width() uint { return uint(len(w)) }

// Circuit builds Tseitin-encoded gates over a SAT solver. Gates are
// structurally hashed by default (see strash.go); DisableStrash restores
// the plain one-gate-per-request construction.
type Circuit struct {
	S   *sat.Solver
	tru sat.Lit

	sh    *strash // nil when strashing is disabled
	stats CircuitStats
}

// NewCircuit wraps a solver, allocating the constant-true literal.
func NewCircuit(s *sat.Solver) *Circuit {
	t := sat.PosLit(s.NewVar())
	s.AddClause(t)
	return &Circuit{S: s, tru: t, sh: newStrash()}
}

// True returns the constant-true literal.
func (c *Circuit) True() sat.Lit { return c.tru }

// False returns the constant-false literal.
func (c *Circuit) False() sat.Lit { return c.tru.Not() }

// Lit allocates a fresh unconstrained literal.
func (c *Circuit) Lit() sat.Lit { return sat.PosLit(c.S.NewVar()) }

// FreshWord allocates w unconstrained bits.
func (c *Circuit) FreshWord(w uint) Word {
	out := make(Word, w)
	for i := range out {
		out[i] = c.Lit()
	}
	return out
}

// ConstWord encodes a constant.
func (c *Circuit) ConstWord(v apint.Int) Word {
	out := make(Word, v.Width())
	for i := uint(0); i < v.Width(); i++ {
		if v.Bit(i) {
			out[i] = c.tru
		} else {
			out[i] = c.tru.Not()
		}
	}
	return out
}

// LitFromBool returns the constant literal for b.
func (c *Circuit) LitFromBool(b bool) sat.Lit {
	if b {
		return c.True()
	}
	return c.False()
}

func (c *Circuit) isTrue(l sat.Lit) bool  { return l == c.tru }
func (c *Circuit) isFalse(l sat.Lit) bool { return l == c.tru.Not() }

// And returns a ∧ b.
func (c *Circuit) And(a, b sat.Lit) sat.Lit {
	switch {
	case c.isFalse(a) || c.isFalse(b):
		return c.False()
	case c.isTrue(a):
		return b
	case c.isTrue(b):
		return a
	case a == b:
		return a
	case a == b.Not():
		return c.False()
	}
	if c.sh == nil {
		return c.andGate(a, b)
	}
	if a > b {
		a, b = b, a
	}
	if r, ok := c.rewriteAnd(a, b); ok {
		c.stats.Rewrites++
		return r
	}
	key := gateKey{op: gateAnd, a: a, b: b}
	if g, ok := c.sh.gates[key]; ok {
		c.stats.Deduped++
		return g
	}
	g := c.andGate(a, b)
	c.sh.gates[key] = g
	c.sh.andDef[g] = [2]sat.Lit{a, b}
	return g
}

// andGate emits the Tseitin encoding of g ↔ a ∧ b.
func (c *Circuit) andGate(a, b sat.Lit) sat.Lit {
	g := c.Lit()
	c.stats.Gates++
	c.S.AddClause(g.Not(), a)
	c.S.AddClause(g.Not(), b)
	c.S.AddClause(g, a.Not(), b.Not())
	return g
}

// Or returns a ∨ b.
func (c *Circuit) Or(a, b sat.Lit) sat.Lit {
	return c.And(a.Not(), b.Not()).Not()
}

// Xor returns a ⊕ b.
func (c *Circuit) Xor(a, b sat.Lit) sat.Lit {
	switch {
	case c.isFalse(a):
		return b
	case c.isFalse(b):
		return a
	case c.isTrue(a):
		return b.Not()
	case c.isTrue(b):
		return a.Not()
	case a == b:
		return c.False()
	case a == b.Not():
		return c.True()
	}
	if c.sh == nil {
		return c.xorGate(a, b)
	}
	// ⊕ commutes with negation: pull the polarities out and hash-cons on
	// the sorted positive pair.
	neg := a.IsNeg() != b.IsNeg()
	a, b = a&^1, b&^1
	if a > b {
		a, b = b, a
	}
	key := gateKey{op: gateXor, a: a, b: b}
	g, ok := c.sh.gates[key]
	if ok {
		c.stats.Deduped++
	} else {
		g = c.xorGate(a, b)
		c.sh.gates[key] = g
	}
	if neg {
		return g.Not()
	}
	return g
}

// xorGate emits the Tseitin encoding of g ↔ a ⊕ b.
func (c *Circuit) xorGate(a, b sat.Lit) sat.Lit {
	g := c.Lit()
	c.stats.Gates++
	c.S.AddClause(g.Not(), a, b)
	c.S.AddClause(g.Not(), a.Not(), b.Not())
	c.S.AddClause(g, a, b.Not())
	c.S.AddClause(g, a.Not(), b)
	return g
}

// Xnor returns a ↔ b.
func (c *Circuit) Xnor(a, b sat.Lit) sat.Lit { return c.Xor(a, b).Not() }

// Mux returns s ? a : b.
func (c *Circuit) Mux(s, a, b sat.Lit) sat.Lit {
	switch {
	case c.isTrue(s):
		return a
	case c.isFalse(s):
		return b
	case a == b:
		return a
	}
	if c.sh == nil {
		return c.muxGate(s, a, b)
	}
	// Local rewrites: complementary, constant, or selector-entangled arms
	// collapse to a single two-input gate, which then hash-conses in its
	// own right (barrel shifters and restoring division hit the constant
	// cases constantly).
	switch {
	case a == b.Not():
		c.stats.Rewrites++
		return c.Xnor(s, a) // s?a:¬a = s↔a
	case c.isTrue(a):
		c.stats.Rewrites++
		return c.Or(s, b)
	case c.isFalse(a):
		c.stats.Rewrites++
		return c.And(s.Not(), b)
	case c.isTrue(b):
		c.stats.Rewrites++
		return c.Or(s.Not(), a)
	case c.isFalse(b):
		c.stats.Rewrites++
		return c.And(s, a)
	case s == a:
		c.stats.Rewrites++
		return c.Or(s, b) // s?s:b = s ∨ b
	case s == a.Not():
		c.stats.Rewrites++
		return c.And(s.Not(), b) // s?¬s:b = ¬s ∧ b
	case s == b:
		c.stats.Rewrites++
		return c.And(s, a) // s?a:s = s ∧ a
	case s == b.Not():
		c.stats.Rewrites++
		return c.Or(s.Not(), a) // s?a:¬s = ¬s ∨ a
	}
	// Canonicalize: positive selector (negating it swaps the arms), then
	// positive then-arm (negating both arms negates the output).
	if s.IsNeg() {
		s = s.Not()
		a, b = b, a
	}
	neg := false
	if a.IsNeg() {
		neg = true
		a, b = a.Not(), b.Not()
	}
	key := gateKey{op: gateMux, a: s, b: a, c: b}
	g, ok := c.sh.gates[key]
	if ok {
		c.stats.Deduped++
	} else {
		g = c.muxGate(s, a, b)
		c.sh.gates[key] = g
	}
	if neg {
		return g.Not()
	}
	return g
}

// muxGate emits the Tseitin encoding of g ↔ (s ? a : b).
func (c *Circuit) muxGate(s, a, b sat.Lit) sat.Lit {
	g := c.Lit()
	c.stats.Gates++
	c.S.AddClause(g.Not(), s.Not(), a)
	c.S.AddClause(g.Not(), s, b)
	c.S.AddClause(g, s.Not(), a.Not())
	c.S.AddClause(g, s, b.Not())
	return g
}

// AndN folds And over any number of literals (true for none).
func (c *Circuit) AndN(lits ...sat.Lit) sat.Lit {
	out := c.True()
	for _, l := range lits {
		out = c.And(out, l)
	}
	return out
}

// OrN folds Or over any number of literals (false for none).
func (c *Circuit) OrN(lits ...sat.Lit) sat.Lit {
	out := c.False()
	for _, l := range lits {
		out = c.Or(out, l)
	}
	return out
}

// fullAdder returns (sum, carry) of a+b+cin.
func (c *Circuit) fullAdder(a, b, cin sat.Lit) (sum, cout sat.Lit) {
	axb := c.Xor(a, b)
	sum = c.Xor(axb, cin)
	cout = c.Or(c.And(a, b), c.And(axb, cin))
	return sum, cout
}

// AddCarry returns a+b+cin and the carry out.
func (c *Circuit) AddCarry(a, b Word, cin sat.Lit) (Word, sat.Lit) {
	if len(a) != len(b) {
		panic("bitblast: add width mismatch")
	}
	out := make(Word, len(a))
	carry := cin
	for i := range a {
		out[i], carry = c.fullAdder(a[i], b[i], carry)
	}
	return out, carry
}

// Add returns a+b.
func (c *Circuit) Add(a, b Word) Word {
	out, _ := c.AddCarry(a, b, c.False())
	return out
}

// NotWord returns the bitwise complement.
func (c *Circuit) NotWord(a Word) Word {
	out := make(Word, len(a))
	for i := range a {
		out[i] = a[i].Not()
	}
	return out
}

// Sub returns a-b and the carry out (carry=1 means no borrow, a >= b
// unsigned).
func (c *Circuit) Sub(a, b Word) (Word, sat.Lit) {
	return c.AddCarry(a, c.NotWord(b), c.True())
}

// Neg returns -a.
func (c *Circuit) Neg(a Word) Word {
	zero := c.ConstWord(apint.Zero(uint(len(a))))
	out, _ := c.Sub(zero, a)
	return out
}

// AndWord, OrWord, XorWord are bitwise word operations.
func (c *Circuit) AndWord(a, b Word) Word { return c.zipWord(a, b, c.And) }

// OrWord returns the bitwise disjunction.
func (c *Circuit) OrWord(a, b Word) Word { return c.zipWord(a, b, c.Or) }

// XorWord returns the bitwise exclusive-or.
func (c *Circuit) XorWord(a, b Word) Word { return c.zipWord(a, b, c.Xor) }

func (c *Circuit) zipWord(a, b Word, f func(x, y sat.Lit) sat.Lit) Word {
	if len(a) != len(b) {
		panic("bitblast: word width mismatch")
	}
	out := make(Word, len(a))
	for i := range a {
		out[i] = f(a[i], b[i])
	}
	return out
}

// MuxWord returns s ? a : b elementwise.
func (c *Circuit) MuxWord(s sat.Lit, a, b Word) Word {
	return c.zipWord(a, b, func(x, y sat.Lit) sat.Lit { return c.Mux(s, x, y) })
}

// Eq returns a == b.
func (c *Circuit) Eq(a, b Word) sat.Lit {
	out := c.True()
	for i := range a {
		out = c.And(out, c.Xnor(a[i], b[i]))
	}
	return out
}

// ULT returns a <u b.
func (c *Circuit) ULT(a, b Word) sat.Lit {
	// Ripple from LSB: lt = (~a_i & b_i) | (a_i==b_i) & lt.
	lt := c.False()
	for i := range a {
		lt = c.Or(c.And(a[i].Not(), b[i]), c.And(c.Xnor(a[i], b[i]), lt))
	}
	return lt
}

// ULE returns a <=u b.
func (c *Circuit) ULE(a, b Word) sat.Lit { return c.ULT(b, a).Not() }

// SLT returns a <s b (flip sign bits and compare unsigned).
func (c *Circuit) SLT(a, b Word) sat.Lit {
	af := append(Word{}, a...)
	bf := append(Word{}, b...)
	af[len(af)-1] = af[len(af)-1].Not()
	bf[len(bf)-1] = bf[len(bf)-1].Not()
	return c.ULT(af, bf)
}

// SLE returns a <=s b.
func (c *Circuit) SLE(a, b Word) sat.Lit { return c.SLT(b, a).Not() }

// ZExt widens with zero bits.
func (c *Circuit) ZExt(a Word, w uint) Word {
	out := append(Word{}, a...)
	for uint(len(out)) < w {
		out = append(out, c.False())
	}
	return out
}

// SExt widens with copies of the sign bit.
func (c *Circuit) SExt(a Word, w uint) Word {
	out := append(Word{}, a...)
	sign := a[len(a)-1]
	for uint(len(out)) < w {
		out = append(out, sign)
	}
	return out
}

// Trunc narrows to w bits.
func (c *Circuit) Trunc(a Word, w uint) Word {
	return append(Word{}, a[:w]...)
}

// ShlConst shifts left by a constant amount.
func (c *Circuit) ShlConst(a Word, s uint) Word {
	w := uint(len(a))
	out := make(Word, w)
	for i := uint(0); i < w; i++ {
		if i < s {
			out[i] = c.False()
		} else {
			out[i] = a[i-s]
		}
	}
	return out
}

// LShrConst shifts right logically by a constant amount.
func (c *Circuit) LShrConst(a Word, s uint) Word {
	w := uint(len(a))
	out := make(Word, w)
	for i := uint(0); i < w; i++ {
		if i+s < w {
			out[i] = a[i+s]
		} else {
			out[i] = c.False()
		}
	}
	return out
}

// AShrConst shifts right arithmetically by a constant amount.
func (c *Circuit) AShrConst(a Word, s uint) Word {
	w := uint(len(a))
	sign := a[w-1]
	out := make(Word, w)
	for i := uint(0); i < w; i++ {
		if i+s < w {
			out[i] = a[i+s]
		} else {
			out[i] = sign
		}
	}
	return out
}

// shiftKind selects a barrel shifter's fill behaviour.
type shiftKind int

const (
	shiftLeft shiftKind = iota
	shiftRightLogical
	shiftRightArith
)

// BarrelShift shifts a by the amount word s. overshift is true when
// s >= width (the result bits are then the fill value, and the caller
// treats the execution as ill-defined for shl/lshr/ashr).
func (c *Circuit) BarrelShift(a Word, s Word, kind shiftKind) (out Word, overshift sat.Lit) {
	w := uint(len(a))
	out = append(Word{}, a...)
	// Mux stages for each amount bit that can matter.
	for k := uint(0); (uint(1) << k) < w; k++ {
		shifted := make(Word, w)
		amt := uint(1) << k
		for i := uint(0); i < w; i++ {
			switch kind {
			case shiftLeft:
				if i < amt {
					shifted[i] = c.False()
				} else {
					shifted[i] = out[i-amt]
				}
			case shiftRightLogical:
				if i+amt < w {
					shifted[i] = out[i+amt]
				} else {
					shifted[i] = c.False()
				}
			case shiftRightArith:
				if i+amt < w {
					shifted[i] = out[i+amt]
				} else {
					shifted[i] = out[w-1]
				}
			}
		}
		out = c.MuxWord(s[k], shifted, out)
	}
	// Overshift: the amount, as an unsigned w-bit number, is >= w.
	overshift = c.ULT(s, c.ConstWord(apint.New(w, uint64(w)))).Not()
	if w == 1 {
		// Width 1: amount >= 1 means overshift; ULT(s, 1) = ~s0.
		overshift = s[0]
	}
	fill := c.False()
	if kind == shiftRightArith {
		fill = a[w-1]
	}
	fillWord := make(Word, w)
	for i := range fillWord {
		fillWord[i] = fill
	}
	out = c.MuxWord(overshift, fillWord, out)
	return out, overshift
}

// Mul returns the low-w product and overflow indicators: umulOv (the 2w-bit
// product exceeds w bits) and smulOv (signed overflow).
func (c *Circuit) Mul(a, b Word) (out Word, umulOv, smulOv sat.Lit) {
	w := uint(len(a))
	// The working product is 2w bits wide, which can exceed apint's
	// maximum width: build the accumulator literally.
	w2 := 2 * w
	az := c.ZExt(a, w2)
	bz := c.ZExt(b, w2)
	acc := make(Word, w2)
	for i := range acc {
		acc[i] = c.False()
	}
	for i := uint(0); i < w; i++ { // b's high zext bits contribute nothing
		shifted := c.ShlConst(az, i)
		gated := make(Word, w2)
		for j := range shifted {
			gated[j] = c.And(shifted[j], bz[i])
		}
		acc = c.Add(acc, gated)
	}
	out = c.Trunc(acc, w)
	// Unsigned overflow: any high bit of the unsigned 2w product set.
	umulOv = c.OrN(acc[w:]...)
	// Signed product = unsigned product adjusted: s(a)*s(b) at 2w equals
	// zext product minus (a<0 ? b<<w : 0) minus (b<0 ? a<<w : 0).
	sprod := acc
	aNeg, bNeg := a[w-1], b[w-1]
	bShift := c.ShlConst(bz, w)
	aShift := c.ShlConst(az, w)
	gate := func(g sat.Lit, x Word) Word {
		out := make(Word, len(x))
		for i := range x {
			out[i] = c.And(g, x[i])
		}
		return out
	}
	sprod, _ = c.Sub(sprod, gate(aNeg, bShift))
	sprod, _ = c.Sub(sprod, gate(bNeg, aShift))
	// Signed overflow: the top w+1 bits of sprod are not all equal.
	ref := sprod[w-1]
	var diff []sat.Lit
	for i := w; i < w2; i++ {
		diff = append(diff, c.Xor(sprod[i], ref))
	}
	smulOv = c.OrN(diff...)
	return out, umulOv, smulOv
}

// UDivURem returns the unsigned quotient and remainder via restoring
// division. For a zero divisor the outputs are unconstrained placeholders;
// callers exclude that case with a side condition.
func (c *Circuit) UDivURem(a, b Word) (quot, rem Word) {
	w := uint(len(a))
	// The working remainder needs one extra bit (it can reach 2*b-1
	// mid-step); build the extended words literally since ext may exceed
	// apint's maximum width.
	ext := w + 1
	bExt := c.ZExt(b, ext)
	r := make(Word, ext)
	for i := range r {
		r[i] = c.False()
	}
	quot = make(Word, w)
	for i := int(w) - 1; i >= 0; i-- {
		// r = (r << 1) | a_i
		r = c.ShlConst(r, 1)
		r[0] = a[i]
		diff, carry := c.Sub(r, bExt) // carry=1 iff r >= b
		quot[i] = carry
		r = c.MuxWord(carry, diff, r)
	}
	rem = c.Trunc(r, w)
	return quot, rem
}

// SDivSRem returns the signed (truncate-toward-zero) quotient and
// remainder built from unsigned division of magnitudes.
func (c *Circuit) SDivSRem(a, b Word) (quot, rem Word) {
	w := uint(len(a))
	aNeg, bNeg := a[w-1], b[w-1]
	absA := c.MuxWord(aNeg, c.Neg(a), a)
	absB := c.MuxWord(bNeg, c.Neg(b), b)
	uq, ur := c.UDivURem(absA, absB)
	qNeg := c.Xor(aNeg, bNeg)
	quot = c.MuxWord(qNeg, c.Neg(uq), uq)
	rem = c.MuxWord(aNeg, c.Neg(ur), ur)
	return quot, rem
}

// PopCount returns the number of set bits, as a word of the same width.
func (c *Circuit) PopCount(a Word) Word {
	w := uint(len(a))
	acc := c.ConstWord(apint.Zero(w))
	one := c.ConstWord(apint.One(w))
	zero := c.ConstWord(apint.Zero(w))
	for i := range a {
		acc = c.Add(acc, c.MuxWord(a[i], one, zero))
	}
	return acc
}

// Cttz returns the count of trailing zeros (width for zero input).
func (c *Circuit) Cttz(a Word) Word {
	w := uint(len(a))
	out := c.ConstWord(apint.New(w, uint64(w)))
	for i := int(w) - 1; i >= 0; i-- {
		out = c.MuxWord(a[i], c.ConstWord(apint.New(w, uint64(i))), out)
	}
	return out
}

// Ctlz returns the count of leading zeros (width for zero input).
func (c *Circuit) Ctlz(a Word) Word {
	w := uint(len(a))
	out := c.ConstWord(apint.New(w, uint64(w)))
	for i := 0; i < int(w); i++ {
		out = c.MuxWord(a[i], c.ConstWord(apint.New(w, uint64(int(w)-1-i))), out)
	}
	return out
}

// BSwap reverses byte order.
func (c *Circuit) BSwap(a Word) Word {
	w := uint(len(a))
	if w%8 != 0 {
		panic("bitblast: bswap of non-byte width")
	}
	nb := w / 8
	out := make(Word, w)
	for byteIdx := uint(0); byteIdx < nb; byteIdx++ {
		for bit := uint(0); bit < 8; bit++ {
			out[byteIdx*8+bit] = a[(nb-1-byteIdx)*8+bit]
		}
	}
	return out
}

// BitReverse reverses bit order.
func (c *Circuit) BitReverse(a Word) Word {
	w := len(a)
	out := make(Word, w)
	for i := range a {
		out[i] = a[w-1-i]
	}
	return out
}

// RotLConst rotates left by a constant amount.
func (c *Circuit) RotLConst(a Word, s uint) Word {
	w := uint(len(a))
	s %= w
	out := make(Word, w)
	for i := uint(0); i < w; i++ {
		out[(i+s)%w] = a[i]
	}
	return out
}

// Rotate rotates by a variable amount (taken modulo the width), left or
// right. Built as a mux chain over all residues — width is small.
func (c *Circuit) Rotate(a Word, s Word, left bool) Word {
	w := uint(len(a))
	_, amt := c.UDivURem(s, c.ConstWord(apint.New(w, uint64(w))))
	out := c.ConstWord(apint.Zero(w))
	for k := uint(0); k < w; k++ {
		rot := k
		if !left {
			rot = (w - k) % w
		}
		isK := c.Eq(amt, c.ConstWord(apint.New(w, uint64(k))))
		out = c.MuxWord(isK, c.RotLConst(a, rot), out)
	}
	return out
}

// UMin returns the unsigned minimum of two words.
func (c *Circuit) UMin(a, b Word) Word {
	return c.MuxWord(c.ULT(a, b), a, b)
}

// UMax returns the unsigned maximum of two words.
func (c *Circuit) UMax(a, b Word) Word {
	return c.MuxWord(c.ULT(a, b), b, a)
}

// SMin returns the signed minimum of two words.
func (c *Circuit) SMin(a, b Word) Word {
	return c.MuxWord(c.SLT(a, b), a, b)
}

// SMax returns the signed maximum of two words.
func (c *Circuit) SMax(a, b Word) Word {
	return c.MuxWord(c.SLT(a, b), b, a)
}

// Abs returns |a| (MinSigned maps to itself, as the flagless llvm.abs
// does).
func (c *Circuit) Abs(a Word) Word {
	return c.MuxWord(a[len(a)-1], c.Neg(a), a)
}

// FunnelShift builds llvm.fshl/fshr: concatenate a (high) and b (low) and
// shift by s modulo the width, keeping the high (fshl) or low (fshr) half.
// Like Rotate, it is a mux chain over residues.
func (c *Circuit) FunnelShift(a, b, s Word, left bool) Word {
	w := uint(len(a))
	_, amt := c.UDivURem(s, c.ConstWord(apint.New(w, uint64(w))))
	var out Word
	if left {
		out = append(Word{}, a...) // residue 0: fshl = a
	} else {
		out = append(Word{}, b...) // residue 0: fshr = b
	}
	for k := uint(1); k < w; k++ {
		var shifted Word
		if left {
			shifted = c.OrWord(c.ShlConst(a, k), c.LShrConst(b, w-k))
		} else {
			shifted = c.OrWord(c.ShlConst(a, w-k), c.LShrConst(b, k))
		}
		isK := c.Eq(amt, c.ConstWord(apint.New(w, uint64(k))))
		out = c.MuxWord(isK, shifted, out)
	}
	return out
}

// Value reads a word's value from the solver's model.
func (c *Circuit) Value(w Word) apint.Int {
	v := apint.Zero(uint(len(w)))
	for i, l := range w {
		bit := c.S.Value(l.Var())
		if l.IsNeg() {
			bit = !bit
		}
		if bit {
			v = v.SetBit(uint(i))
		}
	}
	return v
}
