package bitblast

import "dfcheck/internal/sat"

// This file implements AIG-style structural hashing ("strashing") for the
// circuit builder. Every gate request is canonicalized — commutative
// operands sorted, negations pulled out of ⊕ and mux through their
// algebraic identities — and hash-consed, so structurally identical
// subcircuits (rampant in adder, shifter, and divider trees, and across
// the oracle's per-bit query families) produce one Tseitin gate instead of
// N. A small set of local rewrite rules (idempotence, contradiction,
// absorption) runs before the hash lookup; double negation is free in the
// literal encoding. The Tseitin encodings are full equivalences
// (g ↔ gate(a,b)), so a consed gate is sound in both polarities.
//
// Strashing is on by default and can be disabled per circuit
// (DisableStrash) — the ablation mode behind the -no-strash flag, which
// reproduces the historical one-gate-per-request construction exactly.

// CircuitStats counts how much CNF a circuit emitted and how much work the
// structural hash avoided.
type CircuitStats struct {
	// Gates counts Tseitin gates actually encoded into the solver.
	Gates int64
	// Deduped counts gate requests answered by an existing gate.
	Deduped int64
	// Rewrites counts gate requests eliminated by a local rewrite rule
	// (beyond the constant folding the unstrashed builder also performs).
	Rewrites int64
	// Clauses is the solver's problem-clause count (set by Stats; it
	// covers every clause on the shared solver, not just this circuit's).
	Clauses int64
}

// Add accumulates o into s.
func (s *CircuitStats) Add(o CircuitStats) {
	s.Gates += o.Gates
	s.Deduped += o.Deduped
	s.Rewrites += o.Rewrites
	s.Clauses += o.Clauses
}

type gateOp uint8

const (
	gateAnd gateOp = iota
	gateXor
	gateMux
)

// gateKey is a canonicalized gate request. For gateAnd, a and b are the
// sorted operands; for gateXor, the sorted positive forms; for gateMux,
// (selector, then, else) with the selector and then-arm positive.
type gateKey struct {
	op      gateOp
	a, b, c sat.Lit
}

// strash is the per-circuit structural-hash state.
type strash struct {
	gates map[gateKey]sat.Lit
	// andDef records each And gate's canonical operands by its (positive)
	// output literal — the one-level lookback the absorption and
	// subsumption rewrites need.
	andDef map[sat.Lit][2]sat.Lit
}

func newStrash() *strash {
	return &strash{
		gates:  make(map[gateKey]sat.Lit),
		andDef: make(map[sat.Lit][2]sat.Lit),
	}
}

// DisableStrash turns structural hashing off for every gate built from now
// on, restoring the historical one-gate-per-request construction. Gates
// already hash-consed remain valid.
func (c *Circuit) DisableStrash() { c.sh = nil }

// Stats returns the circuit's construction counters, with Clauses read
// from the underlying solver.
func (c *Circuit) Stats() CircuitStats {
	st := c.stats
	st.Clauses = c.S.NumClauses()
	return st
}

// rewriteAnd applies the one-level-lookback And rules in both operand
// roles: idempotence/subsumption through structure (x ∧ (x∧y) → x∧y),
// contradiction (x ∧ (¬x∧y) → 0), and absorption (x ∧ (x∨y) → x).
func (c *Circuit) rewriteAnd(a, b sat.Lit) (sat.Lit, bool) {
	if r, ok := c.rewriteAndOne(a, b); ok {
		return r, true
	}
	return c.rewriteAndOne(b, a)
}

// rewriteAndOne checks the rules with g as the (possible) gate literal and
// x as the other operand.
func (c *Circuit) rewriteAndOne(x, g sat.Lit) (sat.Lit, bool) {
	d, ok := c.sh.andDef[g&^1]
	if !ok {
		return 0, false
	}
	if !g.IsNeg() {
		// g = d0 ∧ d1.
		if d[0] == x || d[1] == x {
			return g, true // x ∧ (x∧y) = x∧y
		}
		if d[0] == x.Not() || d[1] == x.Not() {
			return c.False(), true // x ∧ (¬x∧y) = 0
		}
	} else if d[0] == x.Not() || d[1] == x.Not() {
		// g = ¬(d0∧d1) = ¬d0 ∨ ¬d1, with ¬d_i = x.
		return x, true // x ∧ (x ∨ z) = x
	}
	return 0, false
}
