package bitblast

import (
	"testing"

	"dfcheck/internal/eval"
	"dfcheck/internal/ir"
	"dfcheck/internal/sat"
)

// checkStrashEquivalence blasts src twice — structural hashing on and off —
// and exhaustively compares both circuits against the interpreter on every
// input. The strashed circuit must also never encode more gates than the
// historical construction.
func checkStrashEquivalence(t *testing.T, src string) {
	t.Helper()
	f := ir.MustParse(src)
	if eval.TotalInputBits(f) > 8 {
		t.Fatalf("test corpus function too wide: %s", src)
	}

	sOn := sat.New()
	bOn := Blast(sOn, f)
	sOff := sat.New()
	cOff := NewCircuit(sOff)
	cOff.DisableStrash()
	bOff := BlastCircuit(cOff, f)

	onStats, offStats := bOn.C.Stats(), cOff.Stats()
	if onStats.Gates > offStats.Gates {
		t.Errorf("%s: strashed circuit has %d gates, unstrashed %d", src, onStats.Gates, offStats.Gates)
	}
	if offStats.Deduped != 0 || offStats.Rewrites != 0 {
		t.Errorf("%s: unstrashed circuit reports strash work (%d deduped, %d rewrites)",
			src, offStats.Deduped, offStats.Rewrites)
	}

	check := func(which string, s *sat.Solver, b *Blasted, env eval.Env) {
		var assumptions []sat.Lit
		for v, word := range b.Inputs {
			val := env[v]
			for i := uint(0); i < val.Width(); i++ {
				l := word[i]
				if !val.Bit(i) {
					l = l.Not()
				}
				assumptions = append(assumptions, l)
			}
		}
		if got := s.Solve(assumptions...); got != sat.Sat {
			t.Fatalf("%s (%s): circuit unsatisfiable for input %v", src, which, fmtEnv(f, env))
		}
		want, wantOK := eval.Eval(f, env)
		wd := b.WellDefined
		gotOK := s.Value(wd.Var()) != wd.IsNeg()
		if gotOK != wantOK {
			t.Fatalf("%s (%s): WellDefined = %v, eval ok = %v for %v", src, which, gotOK, wantOK, fmtEnv(f, env))
		}
		if wantOK {
			if got := b.C.Value(b.Output); got.Ne(want) {
				t.Fatalf("%s (%s): circuit = %v, eval = %v for %v", src, which, got, want, fmtEnv(f, env))
			}
		}
	}
	eval.ForEachInput(f, func(env eval.Env) bool {
		check("strash", sOn, bOn, env)
		check("no-strash", sOff, bOff, env)
		return true
	})
}

// TestStrashEquivalencePerOp covers every operation the blaster supports:
// for each, the strashed and unstrashed circuits must agree with the
// interpreter on the whole input space.
func TestStrashEquivalencePerOp(t *testing.T) {
	srcs := []string{
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = add %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = addnsw %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = addnuw %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = sub %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = subnsw %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = mul %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = mulnw %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = udiv %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = udivexact %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = sdiv %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = urem %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = srem %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = and %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = or %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = xor %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = shl %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = shlnsw %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = lshr %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = lshrexact %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = ashr %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i1 = eq %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i1 = ne %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i1 = ult %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i1 = ule %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i1 = slt %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i1 = sle %x, %y\ninfer %0",
		"%c:i1 = var\n%x:i3 = var\n%y:i3 = var\n%0:i3 = select %c, %x, %y\ninfer %0",
		"%x:i4 = var\n%0:i8 = zext %x\ninfer %0",
		"%x:i4 = var\n%0:i8 = sext %x\ninfer %0",
		"%x:i8 = var\n%0:i4 = trunc %x\ninfer %0",
		"%x:i8 = var\n%0:i8 = ctpop %x\ninfer %0",
		"%x:i8 = var\n%0:i8 = bswap %x\ninfer %0",
		"%x:i8 = var\n%0:i8 = bitreverse %x\ninfer %0",
		"%x:i8 = var\n%0:i8 = cttz %x\ninfer %0",
		"%x:i8 = var\n%0:i8 = ctlz %x\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = rotl %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = rotr %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = umin %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = umax %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = smin %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = smax %x, %y\ninfer %0",
		"%x:i8 = var\n%0:i8 = abs %x\ninfer %0",
		"%x:i2 = var\n%y:i2 = var\n%z:i2 = var\n%0:i2 = fshl %x, %y, %z\ninfer %0",
		"%x:i2 = var\n%y:i2 = var\n%z:i2 = var\n%0:i2 = fshr %x, %y, %z\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i1 = uaddo %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i1 = saddo %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i1 = usubo %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i1 = ssubo %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i1 = umulo %x, %y\ninfer %0",
		"%x:i4 = var\n%y:i4 = var\n%0:i1 = smulo %x, %y\ninfer %0",
	}
	for _, src := range srcs {
		checkStrashEquivalence(t, src)
	}
}

// TestStrashDedupesSharedSubexpressions checks the hash-cons actually
// fires on a DAG with commuted duplicate subexpressions, and that the
// deduplication does not change behaviour.
func TestStrashDedupesSharedSubexpressions(t *testing.T) {
	srcs := []string{
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = add %x, %y\n%1:i4 = add %y, %x\n%2:i4 = xor %0, %1\ninfer %2",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = and %x, %y\n%1:i4 = and %y, %x\n%2:i4 = or %0, %1\ninfer %2",
		"%x:i4 = var\n%y:i4 = var\n%0:i4 = mul %x, %y\n%1:i4 = mul %y, %x\n%2:i4 = sub %0, %1\ninfer %2",
	}
	for _, src := range srcs {
		f := ir.MustParse(src)
		s := sat.New()
		b := Blast(s, f)
		if st := b.C.Stats(); st.Deduped+st.Rewrites == 0 {
			t.Errorf("%s: commuted duplicate subexpressions produced no strash hits", src)
		}
		checkStrashEquivalence(t, src)
	}
}
