package bitblast

import (
	"fmt"

	"dfcheck/internal/apint"
	"dfcheck/internal/ir"
	"dfcheck/internal/sat"
)

// Blasted is a compiled function: one word per instruction, plus the
// WellDefined literal that is true exactly when the execution is
// well-defined for the chosen inputs (no UB per eval's rules) and every
// input satisfies its range metadata. Dataflow queries always conjoin
// WellDefined, mirroring Souper's UB-aware quantification.
type Blasted struct {
	C           *Circuit
	F           *ir.Function
	Inputs      map[*ir.Inst]Word
	Values      map[*ir.Inst]Word
	Output      Word
	WellDefined sat.Lit
}

// Blast compiles f onto a fresh circuit over s, allocating free input
// words for every variable.
func Blast(s *sat.Solver, f *ir.Function) *Blasted {
	return BlastCircuit(NewCircuit(s), f)
}

// BlastCircuit compiles f onto an existing circuit, allocating free input
// words for every variable — the hook engines use to configure the
// circuit (e.g. DisableStrash) before blasting, or to blast several
// functions onto one shared structural hash.
func BlastCircuit(c *Circuit, f *ir.Function) *Blasted {
	inputs := make(map[*ir.Inst]Word, len(f.Vars))
	for _, v := range f.Vars {
		inputs[v] = c.FreshWord(v.Width)
	}
	return BlastWith(c, f, inputs)
}

// BlastWith compiles f reusing the given circuit and input words — the
// mechanism behind the demanded-bits oracle, which blasts the same
// function twice sharing all inputs except one forced bit.
func BlastWith(c *Circuit, f *ir.Function, inputs map[*ir.Inst]Word) *Blasted {
	b := &Blasted{
		C:           c,
		F:           f,
		Inputs:      inputs,
		Values:      make(map[*ir.Inst]Word),
		WellDefined: c.True(),
	}
	for _, n := range f.Insts() {
		b.Values[n] = b.blastInst(n)
	}
	b.Output = b.Values[f.Root]
	return b
}

func (b *Blasted) requireDefined(cond sat.Lit) {
	b.WellDefined = b.C.And(b.WellDefined, cond)
}

func (b *Blasted) blastInst(n *ir.Inst) Word {
	c := b.C
	arg := func(i int) Word { return b.Values[n.Args[i]] }

	switch n.Op {
	case ir.OpConst:
		return c.ConstWord(n.Val)

	case ir.OpVar:
		w, ok := b.Inputs[n]
		if !ok {
			panic(fmt.Sprintf("bitblast: no input word for %%%s", n.Name))
		}
		if n.HasRange {
			b.requireDefined(b.inRange(w, n.Lo, n.Hi))
		}
		return w

	case ir.OpAdd:
		out, carry := c.AddCarry(arg(0), arg(1), c.False())
		if n.Flags&ir.FlagNUW != 0 {
			b.requireDefined(carry.Not())
		}
		if n.Flags&ir.FlagNSW != 0 {
			b.requireDefined(addSignedOverflow(c, arg(0), arg(1), out).Not())
		}
		return out

	case ir.OpSub:
		out, carry := c.Sub(arg(0), arg(1))
		if n.Flags&ir.FlagNUW != 0 {
			b.requireDefined(carry) // carry=1 means no borrow
		}
		if n.Flags&ir.FlagNSW != 0 {
			b.requireDefined(subSignedOverflow(c, arg(0), arg(1), out).Not())
		}
		return out

	case ir.OpMul:
		out, uov, sov := c.Mul(arg(0), arg(1))
		if n.Flags&ir.FlagNUW != 0 {
			b.requireDefined(uov.Not())
		}
		if n.Flags&ir.FlagNSW != 0 {
			b.requireDefined(sov.Not())
		}
		return out

	case ir.OpUDiv:
		quot, rem := c.UDivURem(arg(0), arg(1))
		b.requireDefined(b.nonZeroWord(arg(1)))
		if n.Flags&ir.FlagExact != 0 {
			b.requireDefined(b.zeroWord(rem))
		}
		return quot
	case ir.OpURem:
		_, rem := c.UDivURem(arg(0), arg(1))
		b.requireDefined(b.nonZeroWord(arg(1)))
		return rem
	case ir.OpSDiv:
		quot, rem := c.SDivSRem(arg(0), arg(1))
		b.requireSDivDefined(n, arg(0), arg(1))
		if n.Flags&ir.FlagExact != 0 {
			b.requireDefined(b.zeroWord(rem))
		}
		return quot
	case ir.OpSRem:
		_, rem := c.SDivSRem(arg(0), arg(1))
		b.requireSDivDefined(n, arg(0), arg(1))
		return rem

	case ir.OpAnd:
		return c.AndWord(arg(0), arg(1))
	case ir.OpOr:
		return c.OrWord(arg(0), arg(1))
	case ir.OpXor:
		return c.XorWord(arg(0), arg(1))

	case ir.OpShl:
		out, over := c.BarrelShift(arg(0), arg(1), shiftLeft)
		b.requireDefined(over.Not())
		if n.Flags&ir.FlagNUW != 0 {
			// No set bit may be shifted out: shifting back recovers a.
			back, _ := c.BarrelShift(out, arg(1), shiftRightLogical)
			b.requireDefined(c.Eq(back, arg(0)))
		}
		if n.Flags&ir.FlagNSW != 0 {
			back, _ := c.BarrelShift(out, arg(1), shiftRightArith)
			b.requireDefined(c.Eq(back, arg(0)))
		}
		return out
	case ir.OpLShr:
		out, over := c.BarrelShift(arg(0), arg(1), shiftRightLogical)
		b.requireDefined(over.Not())
		if n.Flags&ir.FlagExact != 0 {
			back, _ := c.BarrelShift(out, arg(1), shiftLeft)
			b.requireDefined(c.Eq(back, arg(0)))
		}
		return out
	case ir.OpAShr:
		out, over := c.BarrelShift(arg(0), arg(1), shiftRightArith)
		b.requireDefined(over.Not())
		if n.Flags&ir.FlagExact != 0 {
			back, _ := c.BarrelShift(out, arg(1), shiftLeft)
			b.requireDefined(c.Eq(back, arg(0)))
		}
		return out

	case ir.OpEq:
		return Word{c.Eq(arg(0), arg(1))}
	case ir.OpNe:
		return Word{c.Eq(arg(0), arg(1)).Not()}
	case ir.OpULT:
		return Word{c.ULT(arg(0), arg(1))}
	case ir.OpULE:
		return Word{c.ULE(arg(0), arg(1))}
	case ir.OpSLT:
		return Word{c.SLT(arg(0), arg(1))}
	case ir.OpSLE:
		return Word{c.SLE(arg(0), arg(1))}

	case ir.OpSelect:
		return c.MuxWord(arg(0)[0], arg(1), arg(2))

	case ir.OpZExt:
		return c.ZExt(arg(0), n.Width)
	case ir.OpSExt:
		return c.SExt(arg(0), n.Width)
	case ir.OpTrunc:
		return c.Trunc(arg(0), n.Width)

	case ir.OpCtPop:
		return c.PopCount(arg(0))
	case ir.OpBSwap:
		return c.BSwap(arg(0))
	case ir.OpBitReverse:
		return c.BitReverse(arg(0))
	case ir.OpCttz:
		return c.Cttz(arg(0))
	case ir.OpCtlz:
		return c.Ctlz(arg(0))

	case ir.OpRotL:
		return c.Rotate(arg(0), arg(1), true)
	case ir.OpRotR:
		return c.Rotate(arg(0), arg(1), false)

	case ir.OpUMin:
		return c.UMin(arg(0), arg(1))
	case ir.OpUMax:
		return c.UMax(arg(0), arg(1))
	case ir.OpSMin:
		return c.SMin(arg(0), arg(1))
	case ir.OpSMax:
		return c.SMax(arg(0), arg(1))
	case ir.OpAbs:
		return c.Abs(arg(0))

	case ir.OpFshl:
		return c.FunnelShift(arg(0), arg(1), arg(2), true)
	case ir.OpFshr:
		return c.FunnelShift(arg(0), arg(1), arg(2), false)

	case ir.OpUAddO:
		_, carry := c.AddCarry(arg(0), arg(1), c.False())
		return Word{carry}
	case ir.OpSAddO:
		sum := c.Add(arg(0), arg(1))
		return Word{addSignedOverflow(c, arg(0), arg(1), sum)}
	case ir.OpUSubO:
		_, carry := c.Sub(arg(0), arg(1))
		return Word{carry.Not()} // borrow
	case ir.OpSSubO:
		diff, _ := c.Sub(arg(0), arg(1))
		return Word{subSignedOverflow(c, arg(0), arg(1), diff)}
	case ir.OpUMulO:
		_, uov, _ := c.Mul(arg(0), arg(1))
		return Word{uov}
	case ir.OpSMulO:
		_, _, sov := c.Mul(arg(0), arg(1))
		return Word{sov}
	}
	panic(fmt.Sprintf("bitblast: unhandled op %v", n.Op))
}

// requireSDivDefined excludes zero divisors and the MinSigned/-1 overflow.
func (b *Blasted) requireSDivDefined(n *ir.Inst, a, d Word) {
	c := b.C
	b.requireDefined(b.nonZeroWord(d))
	minS := c.Eq(a, c.ConstWord(apint.MinSigned(n.Width)))
	negOne := c.Eq(d, c.ConstWord(apint.AllOnes(n.Width)))
	b.requireDefined(c.And(minS, negOne).Not())
}

func (b *Blasted) nonZeroWord(w Word) sat.Lit { return b.C.OrN(w...) }
func (b *Blasted) zeroWord(w Word) sat.Lit    { return b.C.OrN(w...).Not() }

// inRange encodes membership in the possibly-wrapping [lo, hi) interval
// (lo == hi denotes the full set).
func (b *Blasted) inRange(w Word, lo, hi apint.Int) sat.Lit {
	c := b.C
	if lo.Eq(hi) {
		return c.True()
	}
	geLo := c.ULT(w, c.ConstWord(lo)).Not()
	ltHi := c.ULT(w, c.ConstWord(hi))
	if lo.ULT(hi) {
		return c.And(geLo, ltHi)
	}
	return c.Or(geLo, ltHi)
}

func addSignedOverflow(c *Circuit, a, b, sum Word) sat.Lit {
	w := len(a)
	sameSign := c.Xnor(a[w-1], b[w-1])
	flipped := c.Xor(sum[w-1], a[w-1])
	return c.And(sameSign, flipped)
}

func subSignedOverflow(c *Circuit, a, b, diff Word) sat.Lit {
	w := len(a)
	diffSign := c.Xor(a[w-1], b[w-1])
	flipped := c.Xor(diff[w-1], a[w-1])
	return c.And(diffSign, flipped)
}

// Model extracts the input assignment from a satisfying model.
func (b *Blasted) Model() map[*ir.Inst]apint.Int {
	env := make(map[*ir.Inst]apint.Int, len(b.Inputs))
	for v, w := range b.Inputs {
		env[v] = b.C.Value(w)
	}
	return env
}
