package bitblast

import (
	"math/rand"
	"testing"

	"dfcheck/internal/eval"
	"dfcheck/internal/harvest"
	"dfcheck/internal/sat"
)

// TestBlastRandomCorpusWide cross-checks the circuit against the
// interpreter on randomly generated expressions at widths too large to
// enumerate, using random sampled inputs.
func TestBlastRandomCorpusWide(t *testing.T) {
	corpus := harvest.Generate(harvest.Config{
		Seed:     1234,
		NumExprs: 60,
		MaxInsts: 6,
		Widths: []harvest.WidthWeight{
			{Width: 13, Weight: 1}, {Width: 16, Weight: 1}, {Width: 24, Weight: 1},
		},
		MaxCastWidth: 32,
	})
	rng := rand.New(rand.NewSource(99))
	for _, e := range corpus {
		s := sat.New()
		b := Blast(s, e.F)
		litValue := func(l sat.Lit) bool {
			v := s.Value(l.Var())
			if l.IsNeg() {
				v = !v
			}
			return v
		}
		for trial := 0; trial < 15; trial++ {
			env := eval.RandomEnv(e.F, rng)
			var assumptions []sat.Lit
			for v, word := range b.Inputs {
				val := env[v]
				for i := uint(0); i < val.Width(); i++ {
					l := word[i]
					if !val.Bit(i) {
						l = l.Not()
					}
					assumptions = append(assumptions, l)
				}
			}
			if got := s.Solve(assumptions...); got != sat.Sat {
				t.Fatalf("%s: circuit unsat under full input assignment", e.Name)
			}
			want, wantOK := eval.Eval(e.F, env)
			if gotOK := litValue(b.WellDefined); gotOK != wantOK {
				t.Fatalf("%s: WellDefined=%v, eval ok=%v\n%s", e.Name, gotOK, wantOK, e.F)
			}
			if wantOK {
				if got := b.C.Value(b.Output); got.Ne(want) {
					t.Fatalf("%s: circuit=%v eval=%v\n%s", e.Name, got, want, e.F)
				}
			}
		}
	}
}
