package llvmport

import (
	"testing"

	"dfcheck/internal/apint"
	"dfcheck/internal/eval"
	"dfcheck/internal/ir"
)

func analyzeModern(t *testing.T, src string) *Facts {
	t.Helper()
	an := Analyzer{Modern: true}
	return an.Analyze(ir.MustParse(src))
}

// TestModernFixesPaperImprecisions: the post-LLVM-8 improvements resolve
// several of the §4.2–4.5 examples that LLVM 8 missed.
func TestModernFixesPaperImprecisions(t *testing.T) {
	// §4.2.1 example 1: shl 32, %x now keeps its trailing zeros.
	fa := analyzeModern(t, "%x:i8 = var\n%0:i8 = shl 32:i8, %x\ninfer %0")
	if got := fa.KnownBits().String(); got != "xxx00000" {
		t.Errorf("modern shl known bits = %s, want xxx00000", got)
	}

	// §4.2.1 example 2: zext+lshr keeps its leading zeros.
	fa = analyzeModern(t, "%x:i4 = var\n%y:i8 = var\n%0:i8 = zext %x\n%1:i8 = lshr %0, %y\ninfer %1")
	if got := fa.KnownBits().String(); got != "0000xxxx" {
		t.Errorf("modern zext/lshr known bits = %s, want 0000xxxx", got)
	}

	// §4.5 select example: the range becomes the precise [1,0).
	fa = analyzeModern(t, "%x:i32 = var\n%0:i1 = eq 0:i32, %x\n%1:i32 = select %0, 1:i32, %x\ninfer %1")
	if got := fa.Range().String(); got != "[1,0)" {
		t.Errorf("modern select range = %s, want [1,0)", got)
	}

	// §4.3 example 2: x & -x with range-backed non-zero is a power of two.
	fa = analyzeModern(t, "%x:i64 = var (range=[1,0))\n%0:i64 = sub 0:i64, %x\n%1:i64 = and %x, %0\ninfer %1")
	if !fa.PowerOfTwo() {
		t.Error("modern x & -x with non-zero x should be a power of two")
	}

	// The classic analyzer still shows the paper's imprecisions.
	var classic Analyzer
	fc := classic.Analyze(ir.MustParse("%x:i8 = var\n%0:i8 = shl 32:i8, %x\ninfer %0"))
	if got := fc.KnownBits().String(); got != "xxxxxxxx" {
		t.Errorf("classic shl known bits = %s, want xxxxxxxx", got)
	}
}

// TestModernStillImprecise: improvements or not, the correlation-dependent
// examples stay imprecise (as they do in real modern LLVM).
func TestModernStillImprecise(t *testing.T) {
	fa := analyzeModern(t, "%x:i8 = var\n%0:i8 = and 1:i8, %x\n%1:i8 = add %x, %0\ninfer %1")
	if got := fa.KnownBits().String(); got != "xxxxxxxx" {
		t.Errorf("add correlation = %s, want xxxxxxxx (needs relational reasoning)", got)
	}
}

// TestModernFactsSound: all Modern facts stay sound over the corpus.
func TestModernFactsSound(t *testing.T) {
	an := Analyzer{Modern: true}
	for _, src := range soundnessCorpus {
		f := ir.MustParse(src)
		fa := an.Analyze(f)
		kb := fa.KnownBits()
		rg := fa.Range()
		sb := fa.NumSignBits()
		nz := fa.NonZero()
		pow2 := fa.PowerOfTwo()
		forAllInputs(t, f, func(env eval.Env, v apint.Int) {
			if !kb.Contains(v) {
				t.Fatalf("%s: modern known bits %v excludes %v", src, kb, v)
			}
			if !rg.Contains(v) {
				t.Fatalf("%s: modern range %v excludes %v", src, rg, v)
			}
			if v.NumSignBits() < sb {
				t.Fatalf("%s: modern sign bits claim %d but %v has %d", src, sb, v, v.NumSignBits())
			}
			if nz && v.IsZero() {
				t.Fatalf("%s: modern non-zero violated", src)
			}
			if pow2 && !v.IsPowerOfTwo() {
				t.Fatalf("%s: modern power-of-two violated by %v", src, v)
			}
		})
	}
}

// TestModernVariableShiftJoinSound checks the shift join exhaustively on
// dedicated shift expressions with constrained amounts.
func TestModernVariableShiftJoinSound(t *testing.T) {
	an := Analyzer{Modern: true}
	srcs := []string{
		"%x:i8 = var\n%y:i8 = var (range=[0,3))\n%0:i8 = shl %x, %y\ninfer %0",
		"%x:i8 = var (range=[16,64))\n%y:i8 = var\n%0:i8 = lshr %x, %y\ninfer %0",
		"%x:i8 = var\n%y:i8 = var (range=[4,8))\n%0:i8 = ashr %x, %y\ninfer %0",
		"%x:i8 = var\n%y:i8 = var\n%0:i8 = shl 32:i8, %y\n%1:i8 = lshr %0, %x\ninfer %1",
	}
	for _, src := range srcs {
		f := ir.MustParse(src)
		kb := an.Analyze(f).KnownBits()
		eval.ForEachInput(f, func(env eval.Env) bool {
			if v, ok := eval.Eval(f, env); ok && !kb.Contains(v) {
				t.Fatalf("%s: %v excludes %v", src, kb, v)
			}
			return true
		})
	}
}
