package llvmport

import (
	"dfcheck/internal/apint"
	"dfcheck/internal/constrange"
	"dfcheck/internal/ir"
)

// computeRange ports an LLVM-8-era Lazy-Value-Info-style forward range
// propagation. Coverage mirrors LLVM 8's LVI/ConstantRange support and its
// documented gaps (§4.5):
//
//   - udiv and sdiv are not handled (the "udiv i64 128, %x" example
//     returns the full set),
//   - select arms merge without correlating on the condition (the
//     "select (x == 0), 1, x" example returns the full set),
//   - srem with a constant divisor C returns [-|C|, |C|) — one wider at
//     the bottom than necessary (the "srem i32 %x, 8" → [-8,8) example),
//   - "and" uses the unsigned-max approximation (the "[1,7) & -1" → [0,7)
//     example).
func (fa *Facts) computeRange(n *ir.Inst) constrange.Range {
	w := n.Width
	rg := func(i int) constrange.Range { return fa.ranges[n.Args[i]] }

	switch n.Op {
	case ir.OpConst:
		return constrange.Single(n.Val)
	case ir.OpVar:
		if n.HasRange {
			return constrange.NonEmpty(n.Lo, n.Hi)
		}
		return constrange.Full(w)

	case ir.OpAdd:
		return rg(0).Add(rg(1))
	case ir.OpSub:
		return rg(0).Sub(rg(1))
	case ir.OpMul:
		return rg(0).Mul(rg(1))

	case ir.OpUDiv, ir.OpSDiv:
		// Not handled by LLVM 8's LVI.
		return constrange.Full(w)

	case ir.OpURem:
		return rg(0).URem(rg(1))
	case ir.OpSRem:
		// LLVM-8 shape: constant divisor C bounds the result by
		// [-|C|, |C|); anything else gives up.
		if c, ok := constantOf(n.Args[1]); ok && !c.IsZero() {
			d := c.AbsValue()
			return constrange.NonEmpty(d.Neg(), d)
		}
		return constrange.Full(w)

	case ir.OpAnd:
		return rg(0).And(rg(1))
	case ir.OpOr:
		return rg(0).Or(rg(1))
	case ir.OpXor:
		return rg(0).Xor(rg(1))

	case ir.OpShl:
		return rg(0).Shl(rg(1))
	case ir.OpLShr:
		return rg(0).LShr(rg(1))
	case ir.OpAShr:
		return rg(0).AShr(rg(1))

	case ir.OpSelect:
		if fa.an.Modern {
			// Post-LLVM-8 LVI correlates the arms with an eq/ne
			// condition against a constant: the paper's §4.5 select
			// example becomes precise.
			t, f := rg(1), rg(2)
			cond := n.Args[0]
			if cond.Op == ir.OpEq || cond.Op == ir.OpNe {
				for i := 0; i < 2; i++ {
					c, ok := constantOf(cond.Args[i])
					if !ok {
						continue
					}
					x := cond.Args[1-i]
					eqArm, neArm := &t, &f
					if cond.Op == ir.OpNe {
						eqArm, neArm = &f, &t
					}
					if n.Args[1] == x || n.Args[2] == x {
						// On the equal path x is exactly c; on the
						// not-equal path x excludes c.
						if n.Args[1] == x {
							if cond.Op == ir.OpEq {
								*eqArm = constrange.Single(c)
							} else {
								*neArm = (*neArm).Exclude(c)
							}
						}
						if n.Args[2] == x {
							if cond.Op == ir.OpEq {
								*neArm = (*neArm).Exclude(c)
							} else {
								*eqArm = constrange.Single(c)
							}
						}
					}
					break
				}
			}
			return t.Union(f)
		}
		// No condition correlation: union of the arms.
		return rg(1).Union(rg(2))

	case ir.OpEq, ir.OpNe, ir.OpULT, ir.OpULE, ir.OpSLT, ir.OpSLE:
		if res, known := constrange.ICmpDecide(icmpPred(n.Op), rg(0), rg(1)); known {
			return constrange.Single(boolInt(res))
		}
		return constrange.Full(1)

	case ir.OpZExt:
		return rg(0).ZExt(w)
	case ir.OpSExt:
		return rg(0).SExt(w)
	case ir.OpTrunc:
		return rg(0).Trunc(w)

	case ir.OpCtPop, ir.OpCttz, ir.OpCtlz:
		// Result is 0..width (at width 1 that is the full set).
		return constrange.NonEmpty(apint.Zero(w), apint.New(w, uint64(w)+1))

	case ir.OpUMin:
		return rg(0).UMin(rg(1))
	case ir.OpUMax:
		return rg(0).UMax(rg(1))
	case ir.OpSMin:
		return rg(0).SMin(rg(1))
	case ir.OpSMax:
		return rg(0).SMax(rg(1))
	case ir.OpAbs:
		return rg(0).Abs()

	case ir.OpUAddO, ir.OpSAddO, ir.OpUSubO, ir.OpSSubO, ir.OpUMulO, ir.OpSMulO:
		// The known-bits port already decides these when possible; LVI
		// itself treats them as opaque booleans.
		return constrange.Full(1)
	}
	return constrange.Full(w)
}

func icmpPred(op ir.Op) constrange.Pred {
	switch op {
	case ir.OpEq:
		return constrange.EQ
	case ir.OpNe:
		return constrange.NE
	case ir.OpULT:
		return constrange.ULT
	case ir.OpULE:
		return constrange.ULE
	case ir.OpSLT:
		return constrange.SLT
	case ir.OpSLE:
		return constrange.SLE
	}
	panic("llvmport: not a comparison")
}
