package llvmport

import (
	"math/bits"

	"dfcheck/internal/ir"
)

// computeNumSignBits ports LLVM's ComputeNumSignBits: the number of
// high-order bits guaranteed to equal the sign bit (always at least 1).
// The srem-with-constant-divisor case carries the PR23011 bug injectably.
func (fa *Facts) computeNumSignBits(n *ir.Inst) uint {
	w := n.Width
	sb := func(i int) uint { return fa.signBits[n.Args[i]] }

	result := uint(1)
	switch n.Op {
	case ir.OpConst:
		result = n.Val.NumSignBits()

	case ir.OpVar:
		// Fall back to the known-bits fact derived from range metadata.
		result = 1

	case ir.OpSExt:
		srcW := n.Args[0].Width
		result = sb(0) + (w - srcW)

	case ir.OpZExt:
		// At least the new zero bits plus... the extended value is
		// non-negative, so sign bits = new bits + leading zeros of src.
		srcW := n.Args[0].Width
		result = w - srcW
		if lz := fa.known[n.Args[0]].CountMinLeadingZeros(); lz > 0 {
			result += lz
		}
		if result < 1 {
			result = 1
		}

	case ir.OpTrunc:
		src := sb(0)
		dropped := n.Args[0].Width - w
		if src > dropped {
			result = src - dropped
		}

	case ir.OpAShr:
		if c, ok := constantOf(n.Args[1]); ok && c.Uint64() < uint64(w) {
			result = sb(0) + uint(c.Uint64())
			if result > w {
				result = w
			}
		} else {
			result = sb(0)
		}

	case ir.OpShl:
		if c, ok := constantOf(n.Args[1]); ok && c.Uint64() < uint64(w) {
			if s := sb(0); s > uint(c.Uint64()) {
				result = s - uint(c.Uint64())
			}
		}

	case ir.OpAdd, ir.OpSub:
		// Addition can lose at most one sign bit.
		m := minUint(sb(0), sb(1))
		if m > 1 {
			result = m - 1
		}

	case ir.OpAnd, ir.OpOr, ir.OpXor:
		result = minUint(sb(0), sb(1))

	case ir.OpUMin, ir.OpUMax, ir.OpSMin, ir.OpSMax:
		// The result is always one of the operands.
		result = minUint(sb(0), sb(1))

	case ir.OpSelect:
		result = minUint(sb(1), sb(2))

	case ir.OpSRem:
		result = fa.signBitsSRem(n)

	case ir.OpSDiv:
		// The quotient magnitude is no larger than the dividend's
		// (divisor of magnitude < 1 is impossible): keep LHS sign bits
		// minus one for the MinSigned edge.
		if s := sb(0); s > 1 {
			result = s - 1
		}

	case ir.OpEq, ir.OpNe, ir.OpULT, ir.OpULE, ir.OpSLT, ir.OpSLE:
		result = 1 // i1 always has exactly one sign bit

	default:
		result = 1
	}

	// Like LLVM, fall back to known bits when they say more: a run of
	// equal known high bits is a sign-bit count.
	kb := fa.known[n]
	fromKB := uint(1)
	if lo := kb.CountMinLeadingOnes(); lo > fromKB {
		fromKB = lo
	}
	if lz := kb.CountMinLeadingZeros(); lz > fromKB {
		fromKB = lz
	}
	if fromKB > result {
		result = fromKB
	}
	if result > w {
		result = w
	}
	if result < 1 {
		result = 1
	}
	return result
}

// signBitsSRem handles "srem X, C": the remainder's magnitude is less than
// |C|, so at least w - ceil(log2(|C|)) high bits equal the sign bit. The
// PR23011 bug used the floor instead of the ceiling, over-counting by one
// for non-power-of-two divisors.
func (fa *Facts) signBitsSRem(n *ir.Inst) uint {
	w := n.Width
	lhsBits := fa.signBits[n.Args[0]]
	c, ok := constantOf(n.Args[1])
	if !ok || c.IsZero() {
		return lhsBits // remainder magnitude never exceeds the dividend's
	}
	d := c.AbsValue().Uint64()
	if d == 0 { // |MinSigned| wrapped: no information beyond the dividend
		return lhsBits
	}
	var log2d uint
	if fa.an.Bugs.SRemSignBits {
		log2d = uint(63 - bits.LeadingZeros64(d)) // floor: unsound
	} else {
		log2d = uint(64 - bits.LeadingZeros64(d-1)) // ceiling of log2(d)
	}
	if log2d >= w {
		return lhsBits
	}
	fromDivisor := w - log2d
	if fromDivisor > lhsBits {
		return fromDivisor
	}
	return lhsBits
}
