package llvmport

import (
	"dfcheck/internal/apint"
	"dfcheck/internal/ir"
)

// This file ports ValueTracking's single-bit predicates. Like LLVM 8:
//   - isKnownNonZero reads range metadata on the value itself but performs
//     no relational reasoning;
//   - isKnownToBeAPowerOfTwo recognizes the syntactic patterns LLVM 8
//     matched (shl 1, x; zext/sext of a power of two; select of powers of
//     two) and, as the paper's §4.3 documents, does not combine the
//     x & -x idiom or truncation with non-zero range information.

// NonZero ports isKnownNonZero for the root value.
func (fa *Facts) NonZero() bool { return fa.nonZero(fa.f.Root, 0) }

const maxPredDepth = 6 // LLVM's MaxAnalysisRecursionDepth flavor

func (fa *Facts) nonZero(n *ir.Inst, depth int) bool {
	if depth > maxPredDepth {
		return false
	}
	// Known bits may already settle it.
	if !fa.known[n].One.IsZero() {
		return true
	}
	switch n.Op {
	case ir.OpConst:
		return !n.Val.IsZero()
	case ir.OpVar:
		// Range metadata excluding zero (LLVM's
		// rangeMetadataExcludesValue). Injected facts
		// (AnalyzeWithInputs) count as metadata.
		if _, ok := fa.overrides[n]; ok {
			return !fa.ranges[n].Contains(apint.Zero(n.Width))
		}
		return n.HasRange && !fa.ranges[n].Contains(apint.Zero(n.Width))
	case ir.OpOr:
		return fa.nonZero(n.Args[0], depth+1) || fa.nonZero(n.Args[1], depth+1)
	case ir.OpUMax:
		return fa.nonZero(n.Args[0], depth+1) || fa.nonZero(n.Args[1], depth+1)
	case ir.OpUMin:
		return fa.nonZero(n.Args[0], depth+1) && fa.nonZero(n.Args[1], depth+1)
	case ir.OpAbs, ir.OpBSwap, ir.OpBitReverse:
		return fa.nonZero(n.Args[0], depth+1)
	case ir.OpRotL, ir.OpRotR:
		return fa.nonZero(n.Args[0], depth+1)
	case ir.OpSelect:
		return fa.nonZero(n.Args[1], depth+1) && fa.nonZero(n.Args[2], depth+1)
	case ir.OpZExt, ir.OpSExt:
		return fa.nonZero(n.Args[0], depth+1)
	case ir.OpShl:
		// shl nuw preserves non-zero-ness; so does shl of an odd-or-
		// known-one-low-bit value... keep the nuw case LLVM has.
		if n.Flags&ir.FlagNUW != 0 {
			return fa.nonZero(n.Args[0], depth+1)
		}
	case ir.OpLShr, ir.OpAShr:
		if n.Flags&ir.FlagExact != 0 {
			return fa.nonZero(n.Args[0], depth+1)
		}
	case ir.OpUDiv, ir.OpSDiv:
		if n.Flags&ir.FlagExact != 0 {
			return fa.nonZero(n.Args[0], depth+1)
		}
	case ir.OpMul:
		if n.Flags&(ir.FlagNSW|ir.FlagNUW) != 0 {
			return fa.nonZero(n.Args[0], depth+1) && fa.nonZero(n.Args[1], depth+1)
		}
	case ir.OpAdd:
		if n.Flags&ir.FlagNUW != 0 {
			// No unsigned wrap: either operand non-zero suffices.
			if fa.nonZero(n.Args[0], depth+1) || fa.nonZero(n.Args[1], depth+1) {
				return true
			}
		}
		lhs, rhs := fa.known[n.Args[0]], fa.known[n.Args[1]]
		if fa.an.Bugs.NonZeroAdd {
			// r124183: "the sum of two non-negative values is
			// non-zero" — forgetting both may be zero.
			if lhs.IsNonNegative() && rhs.IsNonNegative() {
				return true
			}
		}
		// Fixed rule (r124184/r124188): non-negative operands cannot
		// wrap to zero, so one of them being non-zero suffices.
		if lhs.IsNonNegative() && rhs.IsNonNegative() {
			return fa.nonZero(n.Args[0], depth+1) || fa.nonZero(n.Args[1], depth+1)
		}
	}
	return false
}

// Negative ports isKnownNegative: the sign bit is known one. Range
// metadata is already folded into the known-bits fact for variables, which
// is exactly how much of it ValueTracking sees.
func (fa *Facts) Negative() bool { return fa.known[fa.f.Root].IsNegative() }

// NonNegative ports isKnownNonNegative: the sign bit is known zero.
func (fa *Facts) NonNegative() bool { return fa.known[fa.f.Root].IsNonNegative() }

// PowerOfTwo ports isKnownToBeAPowerOfTwo (strict: zero is not a power of
// two).
func (fa *Facts) PowerOfTwo() bool { return fa.powerOfTwo(fa.f.Root, 0) }

func (fa *Facts) powerOfTwo(n *ir.Inst, depth int) bool {
	if depth > maxPredDepth {
		return false
	}
	switch n.Op {
	case ir.OpConst:
		return n.Val.IsPowerOfTwo()
	case ir.OpShl:
		// shl 1, x is a power of two (or poison, which is excluded).
		if c, ok := constantOf(n.Args[0]); ok && c.IsOne() {
			return true
		}
		// shl of a power of two with nuw stays a power of two.
		if n.Flags&ir.FlagNUW != 0 {
			return fa.powerOfTwo(n.Args[0], depth+1)
		}
	case ir.OpLShr:
		if n.Flags&ir.FlagExact != 0 {
			return fa.powerOfTwo(n.Args[0], depth+1)
		}
	case ir.OpZExt:
		return fa.powerOfTwo(n.Args[0], depth+1)
	case ir.OpSelect:
		return fa.powerOfTwo(n.Args[1], depth+1) && fa.powerOfTwo(n.Args[2], depth+1)
	case ir.OpUDiv:
		if n.Flags&ir.FlagExact != 0 {
			return fa.powerOfTwo(n.Args[0], depth+1)
		}
	case ir.OpAnd:
		// Post-LLVM-8: x & -x isolates the lowest set bit, a power of
		// two whenever x is non-zero (the fix §4.3's second example
		// motivated).
		if fa.an.Modern {
			for i := 0; i < 2; i++ {
				x, neg := n.Args[i], n.Args[1-i]
				if neg.Op == ir.OpSub && neg.Args[1] == x {
					if c, ok := constantOf(neg.Args[0]); ok && c.IsZero() && fa.nonZero(x, depth+1) {
						return true
					}
				}
			}
		}
		// Note: LLVM 8 has no case for trunc (§4.3's third example), no
		// case for x & -x without the or-zero caller flag (§4.3's second
		// example), and no range-metadata case (§4.3's first example).
	}
	return false
}
