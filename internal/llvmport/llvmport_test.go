package llvmport

import (
	"math/rand"
	"testing"

	"dfcheck/internal/apint"
	"dfcheck/internal/eval"
	"dfcheck/internal/ir"
)

func analyze(t *testing.T, src string) *Facts {
	t.Helper()
	var an Analyzer
	return an.Analyze(ir.MustParse(src))
}

// --- §4.2.1: known-bits imprecision examples (LLVM-side behaviour) ---

func TestKnownBitsPaperShlVariable(t *testing.T) {
	fa := analyze(t, "%x:i8 = var\n%0:i8 = shl 32:i8, %x\ninfer %0")
	if got := fa.KnownBits().String(); got != "xxxxxxxx" {
		t.Errorf("LLVM known bits = %s, want xxxxxxxx (paper §4.2.1)", got)
	}
}

func TestKnownBitsPaperZextLshr(t *testing.T) {
	fa := analyze(t, "%x:i4 = var\n%y:i8 = var\n%0:i8 = zext %x\n%1:i8 = lshr %0, %y\ninfer %1")
	if got := fa.KnownBits().String(); got != "xxxxxxxx" {
		t.Errorf("LLVM known bits = %s, want xxxxxxxx (paper §4.2.1)", got)
	}
}

func TestKnownBitsPaperAddCorrelation(t *testing.T) {
	fa := analyze(t, "%x:i8 = var\n%0:i8 = and 1:i8, %x\n%1:i8 = add %x, %0\ninfer %1")
	if got := fa.KnownBits().String(); got != "xxxxxxxx" {
		t.Errorf("LLVM known bits = %s, want xxxxxxxx (paper §4.2.1)", got)
	}
}

func TestKnownBitsPaperMulSrem(t *testing.T) {
	fa := analyze(t, "%x:i8 = var\n%0:i8 = mulnsw 10:i8, %x\n%1:i8 = srem %0, 10:i8\ninfer %1")
	if got := fa.KnownBits().String(); got != "xxxxxxxx" {
		t.Errorf("LLVM known bits = %s, want xxxxxxxx (paper §4.2.1)", got)
	}
}

func TestKnownBitsPaperRangeAdd(t *testing.T) {
	fa := analyze(t, "%x:i8 = var (range=[0,5))\n%0:i8 = add 1:i8, %x\ninfer %0")
	if got := fa.KnownBits().String(); got != "0000xxxx" {
		t.Errorf("LLVM known bits = %s, want 0000xxxx (paper §4.2.1)", got)
	}
}

// --- §4.3: power-of-two imprecision examples ---

func TestPowerOfTwoPaperExamples(t *testing.T) {
	cases := []string{
		// range [1,3): value is 1 or 2, clearly a power of two.
		"%x:i32 = var (range=[1,3))\ninfer %x",
		// x & -x with x known non-zero via range metadata.
		"%x:i64 = var (range=[1,0))\n%0:i64 = sub 0:i64, %x\n%1:i64 = and %x, %0\ninfer %1",
		// trunc of an in-range shl 1, (x&7).
		"%x:i32 = var\n%0:i32 = and 7:i32, %x\n%1:i32 = shl 1:i32, %0\n%2:i8 = trunc %1\ninfer %2",
	}
	for i, src := range cases {
		if analyze(t, src).PowerOfTwo() {
			t.Errorf("case %d: LLVM port claims power of two; the paper says LLVM 8 fails here", i)
		}
	}
	// Sanity: the patterns LLVM does catch.
	yes := []string{
		"%x:i8 = var\n%0:i8 = shl 1:i8, %x\ninfer %0",
		"%x:i8 = var\n%0:i8 = shl 1:i8, %x\n%1:i16 = zext %0\ninfer %1",
		"%c:i1 = var\n%0:i8 = select %c, 4:i8, 16:i8\ninfer %0",
	}
	for i, src := range yes {
		if !analyze(t, src).PowerOfTwo() {
			t.Errorf("positive case %d: LLVM port should prove power of two", i)
		}
	}
}

// --- §4.4: demanded-bits imprecision examples ---

func TestDemandedBitsPaperICmp(t *testing.T) {
	fa := analyze(t, "%x:i8 = var\n%0:i1 = slt %x, 0:i8\ninfer %0")
	d := fa.DemandedBits()
	if got := d["x"].BitString(); got != "11111111" {
		t.Errorf("LLVM demanded bits = %s, want 11111111 (paper §4.4)", got)
	}
}

func TestDemandedBitsPaperUDiv(t *testing.T) {
	fa := analyze(t, "%x:i16 = var\n%0:i16 = udiv %x, 1000:i16\ninfer %0")
	d := fa.DemandedBits()
	if got := d["x"].BitString(); got != "1111111111111111" {
		t.Errorf("LLVM demanded bits = %s, want all ones (paper §4.4)", got)
	}
}

func TestDemandedBitsTrunc(t *testing.T) {
	// The motivating example of §2.2: truncating i32 to i8 demands only
	// the low 8 bits.
	fa := analyze(t, "%x:i32 = var\n%0:i8 = trunc %x\ninfer %0")
	d := fa.DemandedBits()
	want := apint.New(32, 0xFF)
	if d["x"].Ne(want) {
		t.Errorf("demanded = %s, want low 8 bits", d["x"].BitString())
	}
}

func TestDemandedBitsShiftAndMask(t *testing.T) {
	// (x << 4) & 0xF0 — the AND known-zero refinement plus shl.
	fa := analyze(t, "%x:i8 = var\n%0:i8 = shl %x, 4:i8\n%1:i8 = and %0, 240:i8\ninfer %1")
	d := fa.DemandedBits()
	if got := d["x"].BitString(); got != "00001111" {
		t.Errorf("demanded = %s, want 00001111", got)
	}
}

func TestDemandedBitsAddCarry(t *testing.T) {
	// Only the low 4 bits of an add feed a trunc: operands' high bits
	// are dead.
	fa := analyze(t, "%x:i8 = var\n%y:i8 = var\n%0:i8 = add %x, %y\n%1:i4 = trunc %0\ninfer %1")
	d := fa.DemandedBits()
	if got := d["x"].BitString(); got != "00001111" {
		t.Errorf("demanded x = %s, want 00001111", got)
	}
	if got := d["y"].BitString(); got != "00001111" {
		t.Errorf("demanded y = %s, want 00001111", got)
	}
}

// --- §4.5: integer-range imprecision examples ---

func TestRangePaperSelect(t *testing.T) {
	fa := analyze(t, `
		%x:i32 = var
		%0:i1 = eq 0:i32, %x
		%1:i32 = select %0, 1:i32, %x
		infer %1
	`)
	if got := fa.Range(); !got.IsFull() {
		t.Errorf("LLVM range = %v, want full set (paper §4.5)", got)
	}
}

func TestRangePaperAnd(t *testing.T) {
	fa := analyze(t, "%x:i32 = var (range=[1,7))\n%0:i32 = and 4294967295:i32, %x\ninfer %0")
	if got := fa.Range().String(); got != "[0,7)" {
		t.Errorf("LLVM range = %s, want [0,7) (paper §4.5)", got)
	}
}

func TestRangePaperSRem(t *testing.T) {
	fa := analyze(t, "%x:i32 = var\n%0:i32 = srem %x, 8:i32\ninfer %0")
	if got := fa.Range().String(); got != "[-8,8)" {
		t.Errorf("LLVM range = %s, want [-8,8) (paper §4.5)", got)
	}
}

func TestRangePaperUDiv(t *testing.T) {
	fa := analyze(t, "%x:i64 = var\n%0:i64 = udiv 128:i64, %x\ninfer %0")
	if got := fa.Range(); !got.IsFull() {
		t.Errorf("LLVM range = %v, want full set (paper §4.5)", got)
	}
}

// --- §4.8: concrete improvements that are now in LLVM ---

func TestConcreteImprovementAndSub(t *testing.T) {
	// x ∧ (x − y) with y odd has the bottom bit... the generalized patch
	// is about known bits of and+sub; at minimum x ∧ (x − 1) keeps low
	// known-one bits consistent. Check our port is sound and reasonably
	// precise on the simple form: and(x, sub(x, 1)) has bit 0 = x0 & ~...
	// The check here is soundness-only (the exact precision is the
	// oracle's job).
	fa := analyze(t, "%x:i8 = var\n%0:i8 = sub %x, 1:i8\n%1:i8 = and %x, %0\ninfer %1")
	f := ir.MustParse("%x:i8 = var\n%0:i8 = sub %x, 1:i8\n%1:i8 = and %x, %0\ninfer %1")
	kb := fa.KnownBits()
	eval.ForEachInput(f, func(env eval.Env) bool {
		if v, ok := eval.Eval(f, env); ok && !kb.Contains(v) {
			t.Fatalf("known bits %v excludes reachable value %v", kb, v)
		}
		return true
	})
}

func TestConcreteImprovementAndSubOdd(t *testing.T) {
	// §4.8 item 1: x ∧ (x − y) with y odd has bit zero clear — the
	// generalized pattern the upstreamed patch handles.
	for _, src := range []string{
		"%x:i8 = var\n%0:i8 = sub %x, 1:i8\n%1:i8 = and %x, %0\ninfer %1",
		"%x:i8 = var\n%0:i8 = sub %x, 5:i8\n%1:i8 = and %0, %x\ninfer %1", // commuted
		"%x:i8 = var\n%y:i8 = var\n%0:i8 = or %y, 1:i8\n%1:i8 = sub %x, %0\n%2:i8 = and %x, %1\ninfer %2",
	} {
		fa := analyze(t, src)
		kb := fa.KnownBits()
		if known, one := kb.KnownBit(0); !known || one {
			t.Errorf("%s: bit 0 = (%v,%v), want known zero", src, known, one)
		}
		// Soundness: the claim must hold on every input.
		f := ir.MustParse(src)
		forAllInputs(t, f, func(env eval.Env, v apint.Int) {
			if !kb.Contains(v) {
				t.Fatalf("%s: %v excludes reachable %v", src, kb, v)
			}
		})
	}
	// Even y gets no claim.
	fa := analyze(t, "%x:i8 = var\n%0:i8 = sub %x, 2:i8\n%1:i8 = and %x, %0\ninfer %1")
	if known, _ := fa.KnownBits().KnownBit(0); known {
		t.Error("even subtrahend should not pin bit 0")
	}
}

func TestConcreteImprovementBSwap(t *testing.T) {
	// §4.8 item 2: bswap now propagates known bits.
	fa := analyze(t, "%x:i16 = var (range=[0,256))\n%0:i16 = bswap %x\ninfer %0")
	kb := fa.KnownBits()
	// Low byte of input is unconstrained; high byte is 0 → after swap,
	// low byte known zero.
	if got := kb.String(); got != "xxxxxxxx00000000" {
		t.Errorf("bswap known bits = %s, want xxxxxxxx00000000", got)
	}
}

func TestConcreteImprovementNegZext(t *testing.T) {
	// §4.8 item 3: 0 - zext(x) is never positive; with x known non-zero
	// it is negative. Here check 0-zext(x) has its high bits pinned when
	// x's range keeps it small and non-zero.
	fa := analyze(t, "%x:i8 = var (range=[1,3))\n%0:i16 = zext %x\n%1:i16 = sub 0:i16, %0\ninfer %1")
	kb := fa.KnownBits()
	if !kb.IsNegative() {
		t.Errorf("0 - zext([1,3)) should be known negative, got %v", kb)
	}
}

func TestConcreteImprovementCtpop(t *testing.T) {
	// §4.8 item 4: ctpop result is bounded by the width.
	fa := analyze(t, "%x:i32 = var\n%0:i32 = ctpop %x\ninfer %0")
	kb := fa.KnownBits()
	if kb.CountMinLeadingZeros() < 26 {
		t.Errorf("ctpop known bits = %v, want at least 26 leading zeros", kb)
	}
}

func TestConcreteImprovementICmpResolution(t *testing.T) {
	// §4.8 item 5: eq resolves when a bit position disagrees.
	fa := analyze(t, `
		%x:i8 = var
		%0:i8 = or 1:i8, %x
		%1:i8 = shl %x, 1:i8
		%2:i1 = eq %0, %1
		infer %2
	`)
	kb := fa.KnownBits()
	if !kb.IsConstant() || !kb.Constant().IsZero() {
		t.Errorf("eq of always-odd and always-even = %v, want known 0", kb)
	}
}

// --- §4.7: injected soundness bugs reproduce the paper's outputs ---

func TestSoundnessBug1NonZeroAdd(t *testing.T) {
	src := "%a:i32 = var (range=[0,10))\n%b:i32 = var (range=[0,10))\n%0:i32 = add %a, %b\ninfer %0"
	clean := Analyzer{}
	if clean.Analyze(ir.MustParse(src)).NonZero() {
		t.Error("fixed compiler claims non-zero for sum of possibly-zero values")
	}
	buggy := Analyzer{Bugs: BugConfig{NonZeroAdd: true}}
	if !buggy.Analyze(ir.MustParse(src)).NonZero() {
		t.Error("buggy compiler should claim non-zero (paper §4.7 bug 1)")
	}
}

func TestSoundnessBug2SRemSignBits(t *testing.T) {
	src := "%0:i32 = var\n%1:i32 = srem %0, 3:i32\ninfer %1"
	clean := Analyzer{}
	if got := clean.Analyze(ir.MustParse(src)).NumSignBits(); got != 30 {
		t.Errorf("fixed compiler sign bits = %d, want 30 (paper §4.7 bug 2)", got)
	}
	buggy := Analyzer{Bugs: BugConfig{SRemSignBits: true}}
	if got := buggy.Analyze(ir.MustParse(src)).NumSignBits(); got != 31 {
		t.Errorf("buggy compiler sign bits = %d, want 31 (paper §4.7 bug 2)", got)
	}
}

func TestSoundnessBug3SRemKnownBits(t *testing.T) {
	src := "%0:i8 = var\n%1:i8 = srem 4:i8, %0\ninfer %1"
	clean := Analyzer{}
	got := clean.Analyze(ir.MustParse(src)).KnownBits()
	if got.String() != "00000xxx" {
		t.Errorf("fixed compiler known bits = %s, want 00000xxx", got)
	}
	buggy := Analyzer{Bugs: BugConfig{SRemKnownBits: true}}
	gotBuggy := buggy.Analyze(ir.MustParse(src)).KnownBits()
	if gotBuggy.String() != "00000x00" {
		t.Errorf("buggy compiler known bits = %s, want 00000x00 (paper §4.7 bug 3)", gotBuggy)
	}
	// The buggy fact is genuinely unsound: srem 4, 3 = 1.
	f := ir.MustParse(src)
	env := eval.Env{f.Vars[0]: apint.New(8, 3)}
	if v, ok := eval.Eval(f, env); !ok || gotBuggy.Contains(v) {
		t.Errorf("expected concrete counterexample, got v=%v contained=%v", v, gotBuggy.Contains(v))
	}
}

// --- Soundness properties over a corpus ---

var soundnessCorpus = []string{
	"%x:i8 = var\n%0:i8 = shl 32:i8, %x\ninfer %0",
	"%x:i4 = var\n%y:i8 = var\n%0:i8 = zext %x\n%1:i8 = lshr %0, %y\ninfer %1",
	"%x:i8 = var\n%0:i8 = and 1:i8, %x\n%1:i8 = add %x, %0\ninfer %1",
	"%x:i8 = var\n%0:i8 = mulnsw 10:i8, %x\n%1:i8 = srem %0, 10:i8\ninfer %1",
	"%x:i8 = var (range=[0,5))\n%0:i8 = add 1:i8, %x\ninfer %0",
	"%x:i8 = var\n%0:i8 = srem %x, 8:i8\ninfer %0",
	"%x:i8 = var\n%0:i8 = srem 4:i8, %x\ninfer %0",
	"%x:i8 = var\n%0:i8 = udiv 128:i8, %x\ninfer %0",
	"%x:i8 = var (range=[1,7))\n%0:i8 = and 255:i8, %x\ninfer %0",
	"%x:i8 = var\n%0:i1 = eq 0:i8, %x\n%1:i8 = select %0, 1:i8, %x\ninfer %1",
	"%x:i8 = var\n%0:i8 = sub 0:i8, %x\n%1:i8 = and %x, %0\ninfer %1",
	"%x:i8 = var\n%y:i8 = var\n%0:i8 = xor %x, %y\n%1:i8 = or %0, 128:i8\ninfer %1",
	"%x:i8 = var\n%0:i8 = ashr %x, 5:i8\ninfer %0",
	"%x:i8 = var\n%0:i8 = lshr %x, 3:i8\n%1:i8 = mul %0, 6:i8\ninfer %1",
	"%x:i8 = var\n%0:i8 = urem %x, 16:i8\ninfer %0",
	"%x:i8 = var\n%0:i8 = urem %x, 12:i8\ninfer %0",
	"%x:i8 = var\n%y:i8 = var\n%0:i1 = ult %x, %y\n%1:i8 = select %0, %x, %y\ninfer %1",
	"%x:i8 = var\n%0:i4 = trunc %x\n%1:i8 = sext %0\ninfer %1",
	"%x:i8 = var\n%0:i8 = ctpop %x\ninfer %0",
	"%x:i16 = var\n%0:i16 = bswap %x\n%1:i16 = addnuw %0, 1:i16\ninfer %1",
	"%x:i8 = var\n%0:i8 = rotl %x, 3:i8\ninfer %0",
	"%x:i8 = var\n%0:i8 = cttz %x\n%1:i8 = ctlz %x\n%2:i8 = add %0, %1\ninfer %2",
	"%x:i8 = var (range=[-7,8))\n%0:i8 = sdiv %x, 2:i8\ninfer %0",
	"%x:i8 = var\n%0:i8 = subnsw %x, 1:i8\n%1:i8 = and %x, %0\ninfer %1",
	"%x:i8 = var\n%0:i8 = bitreverse %x\n%1:i8 = lshrexact %0, 1:i8\ninfer %1",
	"%x:i8 = var\n%y:i8 = var\n%0:i8 = umin %x, %y\ninfer %0",
	"%x:i8 = var (range=[0,16))\n%y:i8 = var\n%0:i8 = umax %x, %y\ninfer %0",
	"%x:i8 = var\n%y:i8 = var (range=[0,100))\n%0:i8 = smin %x, %y\ninfer %0",
	"%x:i8 = var (range=[0,50))\n%y:i8 = var (range=[0,60))\n%0:i8 = smax %x, %y\ninfer %0",
	"%x:i8 = var (range=[0,100))\n%0:i8 = abs %x\ninfer %0",
	"%x:i8 = var (range=[-30,-2))\n%0:i8 = abs %x\ninfer %0",
	"%a:i4 = var\n%b:i4 = var\n%0:i4 = fshl %a, %b, 5:i4\ninfer %0",
	"%a:i4 = var\n%b:i4 = var\n%0:i4 = fshr %a, %b, 3:i4\ninfer %0",
	"%x:i8 = var (range=[0,100))\n%y:i8 = var (range=[0,100))\n%0:i1 = uaddo %x, %y\ninfer %0",
	"%x:i8 = var (range=[0,64))\n%y:i8 = var (range=[0,64))\n%0:i1 = saddo %x, %y\ninfer %0",
	"%x:i8 = var (range=[100,120))\n%y:i8 = var (range=[0,50))\n%0:i1 = usubo %x, %y\ninfer %0",
	"%x:i8 = var\n%y:i8 = var\n%0:i1 = ssubo %x, %y\ninfer %0",
	"%x:i8 = var (range=[0,15))\n%y:i8 = var (range=[0,15))\n%0:i1 = umulo %x, %y\ninfer %0",
	"%x:i8 = var (range=[0,11))\n%y:i8 = var (range=[0,11))\n%0:i1 = smulo %x, %y\ninfer %0",
}

func forAllInputs(t *testing.T, f *ir.Function, check func(env eval.Env, v apint.Int)) {
	t.Helper()
	if eval.TotalInputBits(f) <= 16 {
		eval.ForEachInput(f, func(env eval.Env) bool {
			if v, ok := eval.Eval(f, env); ok {
				check(env, v)
			}
			return true
		})
		return
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		env := eval.RandomEnv(f, rng)
		if v, ok := eval.Eval(f, env); ok {
			check(env, v)
		}
	}
}

func TestForwardFactsSound(t *testing.T) {
	var an Analyzer
	for _, src := range soundnessCorpus {
		f := ir.MustParse(src)
		fa := an.Analyze(f)
		kb := fa.KnownBits()
		rg := fa.Range()
		sb := fa.NumSignBits()
		nz := fa.NonZero()
		neg := fa.Negative()
		nonneg := fa.NonNegative()
		pow2 := fa.PowerOfTwo()
		forAllInputs(t, f, func(env eval.Env, v apint.Int) {
			if !kb.Contains(v) {
				t.Fatalf("%sknown bits %v excludes %v", src, kb, v)
			}
			if !rg.Contains(v) {
				t.Fatalf("%srange %v excludes %v", src, rg, v)
			}
			if v.NumSignBits() < sb {
				t.Fatalf("%ssign bits claim %d but %v has %d", src, sb, v, v.NumSignBits())
			}
			if nz && v.IsZero() {
				t.Fatalf("%snon-zero claim violated by zero", src)
			}
			if neg && !v.IsNegative() {
				t.Fatalf("%snegative claim violated by %v", src, v)
			}
			if nonneg && v.IsNegative() {
				t.Fatalf("%snon-negative claim violated by %v", src, v)
			}
			if pow2 && !v.IsPowerOfTwo() {
				t.Fatalf("%spower-of-two claim violated by %v", src, v)
			}
		})
	}
}

func TestDemandedBitsSound(t *testing.T) {
	var an Analyzer
	for _, src := range soundnessCorpus {
		f := ir.MustParse(src)
		if eval.TotalInputBits(f) > 16 {
			continue
		}
		d := an.Analyze(f).DemandedBits()
		for _, v := range f.Vars {
			mask := d[v.Name]
			for i := uint(0); i < v.Width; i++ {
				if mask.Bit(i) {
					continue // demanded: no claim
				}
				// Not demanded: forcing the bit must never change a
				// well-defined result.
				eval.ForEachInput(f, func(env eval.Env) bool {
					base, okBase := eval.Eval(f, env)
					for _, forced := range []apint.Int{env[v].SetBit(i), env[v].ClearBit(i)} {
						env2 := make(eval.Env, len(env))
						for k, val := range env {
							env2[k] = val
						}
						env2[v] = forced
						v2, ok2 := eval.Eval(f, env2)
						if okBase && ok2 && base.Ne(v2) {
							t.Fatalf("%s: bit %d of %%%s not demanded but changes result (%v vs %v)",
								src, i, v.Name, base, v2)
						}
					}
					return true
				})
			}
		}
	}
}

func TestAnalyzeFactsPerInst(t *testing.T) {
	f := ir.MustParse("%x:i8 = var (range=[0,5))\n%0:i8 = add 1:i8, %x\ninfer %0")
	var an Analyzer
	fa := an.Analyze(f)
	// Facts are available for interior nodes too.
	v := f.Vars[0]
	if got := fa.KnownBitsOf(v).String(); got != "00000xxx" {
		t.Errorf("var known bits = %s, want 00000xxx", got)
	}
	if got := fa.RangeOf(v).String(); got != "[0,5)" {
		t.Errorf("var range = %s", got)
	}
	if got := fa.NumSignBitsOf(v); got != 5 {
		t.Errorf("var sign bits = %d, want 5", got)
	}
}
