package llvmport

import (
	"dfcheck/internal/apint"
	"dfcheck/internal/ir"
)

// DemandedBits ports LLVM's DemandedBits analysis (DemandedBits.cpp as of
// LLVM 8): a backward pass computing, per input variable, which bits can
// affect the function's result. A clear bit means "not demanded": forcing
// it to either value never changes the output.
//
// Coverage mirrors LLVM 8's determineLiveOperandBits: bitwise logic,
// add/sub (everything at or below the highest live bit), constant-amount
// shifts, casts, bswap/bitreverse, and the bit-counting intrinsics'
// operands. Unhandled instructions — comparisons, division, remainder,
// select, variable-amount shifts — demand every operand bit, which is
// exactly why the paper's §4.4 examples ("icmp slt %x, 0" and
// "udiv %x, 1000") come out fully demanded in LLVM.
func (fa *Facts) DemandedBits() map[string]apint.Int {
	demanded := fa.InstDemandedBits()
	out := make(map[string]apint.Int, len(fa.f.Vars))
	for _, v := range fa.f.Vars {
		d, ok := demanded[v]
		if !ok {
			d = apint.Zero(v.Width)
		}
		out[v.Name] = d
	}
	return out
}

// InstDemandedBits returns the demanded mask of every instruction in the
// function (the union over its users' operand demands; the root is fully
// demanded). The optimizer's bit-level DCE consumes this.
func (fa *Facts) InstDemandedBits() map[*ir.Inst]apint.Int {
	demanded := make(map[*ir.Inst]apint.Int)
	insts := fa.f.Insts()
	// The root is fully demanded; walk users before operands (reverse
	// topological order).
	demanded[fa.f.Root] = apint.AllOnes(fa.f.Root.Width)
	for i := len(insts) - 1; i >= 0; i-- {
		n := insts[i]
		aOut, ok := demanded[n]
		if !ok {
			continue // dead (unreachable from root)
		}
		for argIdx, arg := range n.Args {
			ab := fa.operandDemanded(n, aOut, argIdx)
			if cur, ok := demanded[arg]; ok {
				ab = ab.Or(cur)
			}
			demanded[arg] = ab
		}
	}
	return demanded
}

// operandDemanded is determineLiveOperandBits: given the demanded bits
// aOut of instruction n, return the demanded bits of operand argIdx.
func (fa *Facts) operandDemanded(n *ir.Inst, aOut apint.Int, argIdx int) apint.Int {
	arg := n.Args[argIdx]
	all := apint.AllOnes(arg.Width)
	if aOut.IsZero() {
		return apint.Zero(arg.Width)
	}

	switch n.Op {
	case ir.OpAnd:
		// A bit of X is demanded only where the result is demanded and
		// the other operand is not known zero there.
		other := fa.known[n.Args[1-argIdx]]
		return aOut.And(other.Zero.Not())
	case ir.OpOr:
		other := fa.known[n.Args[1-argIdx]]
		return aOut.And(other.One.Not())
	case ir.OpXor:
		return aOut
	case ir.OpAdd, ir.OpSub:
		// Carries only flow upward: bits at or below the highest
		// demanded bit matter. nsw/nuw make overflow observable, so
		// flags demand everything.
		if n.Flags != 0 {
			return all
		}
		return lowOnes(n.Width, activeBits(aOut))
	case ir.OpMul:
		if n.Flags != 0 {
			return all
		}
		return lowOnes(n.Width, activeBits(aOut))
	case ir.OpShl:
		if c, ok := constantOf(n.Args[1]); ok && c.Uint64() < uint64(n.Width) && argIdx == 0 && n.Flags == 0 {
			return aOut.LShr(uint(c.Uint64()))
		}
		return all
	case ir.OpLShr:
		if c, ok := constantOf(n.Args[1]); ok && c.Uint64() < uint64(n.Width) && argIdx == 0 && n.Flags == 0 {
			return aOut.Shl(uint(c.Uint64()))
		}
		return all
	case ir.OpAShr:
		if c, ok := constantOf(n.Args[1]); ok && c.Uint64() < uint64(n.Width) && argIdx == 0 && n.Flags == 0 {
			s := uint(c.Uint64())
			ab := aOut.Shl(s)
			// If any of the top s result bits are demanded, the sign
			// bit is demanded (it replicates into them).
			if !aOut.LShr(n.Width-s).IsZero() && s > 0 {
				ab = ab.SetBit(n.Width - 1)
			}
			return ab
		}
		return all
	case ir.OpZExt:
		return aOut.Trunc(arg.Width)
	case ir.OpSExt:
		ab := aOut.Trunc(arg.Width)
		// Demanded extension bits demand the source sign bit.
		if !aOut.LShr(arg.Width).IsZero() {
			ab = ab.SetBit(arg.Width - 1)
		}
		return ab
	case ir.OpTrunc:
		return aOut.ZExt(arg.Width)
	case ir.OpBSwap:
		return aOut.ByteSwap()
	case ir.OpBitReverse:
		return aOut.ReverseBits()
	}
	// icmp, select, div/rem, rotates, ctpop/cttz/ctlz, variable shifts:
	// not handled by LLVM 8 — all bits demanded.
	return all
}

// activeBits returns the position above the highest set bit (LLVM's
// APInt::getActiveBits).
func activeBits(v apint.Int) uint {
	return v.Width() - v.CountLeadingZeros()
}
