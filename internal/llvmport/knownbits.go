package llvmport

import (
	"math/bits"

	"dfcheck/internal/apint"
	"dfcheck/internal/constrange"
	"dfcheck/internal/ir"
	"dfcheck/internal/knownbits"
)

// computeKnownBits ports LLVM's computeKnownBits / KnownBits.cpp transfer
// functions as of LLVM 8, including their documented imprecision profile:
// shifts by non-constant amounts give up entirely (the paper's §4.2.1
// "shl i8 32, %x" example), and no cross-operand correlation is tracked.
func (fa *Facts) computeKnownBits(n *ir.Inst) knownbits.Bits {
	w := n.Width
	kb := func(i int) knownbits.Bits { return fa.known[n.Args[i]] }

	switch n.Op {
	case ir.OpConst:
		return knownbits.FromConst(n.Val)

	case ir.OpVar:
		// ValueTracking reads range metadata (the paper's §4.2.1 "add
		// i8 1, %x with %x = range [0,5)" example shows LLVM using it).
		if n.HasRange {
			return constrange.NonEmpty(n.Lo, n.Hi).ToKnownBits()
		}
		return knownbits.Unknown(w)

	case ir.OpAdd:
		return computeForAddSub(true, n.Flags&ir.FlagNSW != 0, kb(0), kb(1))
	case ir.OpSub:
		if n.Args[0] == n.Args[1] {
			return knownbits.FromConst(apint.Zero(w))
		}
		out := computeForAddSub(false, n.Flags&ir.FlagNSW != 0, kb(0), kb(1))
		// §4.8 item 3 (now fixed in LLVM): 0 - zext(x) with x non-zero
		// is 2^w - x, so every extension bit is one.
		if c, ok := constantOf(n.Args[0]); ok && c.IsZero() && n.Args[1].Op == ir.OpZExt {
			if src := n.Args[1].Args[0]; fa.nonZero(src, 1) {
				out = out.Meet(knownbits.Make(apint.Zero(w), highOnes(w, w-src.Width)))
			}
		}
		return out

	case ir.OpMul:
		// Multiplying by a constant power of two is a left shift of the
		// known bits.
		for i := 0; i < 2; i++ {
			if c, ok := constantOf(n.Args[i]); ok && c.IsPowerOfTwo() {
				sh := c.CountTrailingZeros()
				a := kb(1 - i)
				return knownbits.Make(a.Zero.Shl(sh).Or(lowOnes(w, sh)), a.One.Shl(sh))
			}
		}
		return knownBitsMul(kb(0), kb(1))

	case ir.OpAnd:
		a, b := kb(0), kb(1)
		out := knownbits.Make(a.Zero.Or(b.Zero), a.One.And(b.One))
		// §4.8 item 1 (now fixed in LLVM): x ∧ (x − y) with y odd has a
		// clear bottom bit — subtracting an odd number flips bit zero.
		for i := 0; i < 2; i++ {
			x, sub := n.Args[i], n.Args[1-i]
			if sub.Op == ir.OpSub && sub.Args[0] == x {
				if yk := fa.known[sub.Args[1]]; yk.One.Bit(0) {
					out = out.Meet(knownbits.Make(apint.One(w), apint.Zero(w)))
				}
			}
		}
		return out
	case ir.OpOr:
		a, b := kb(0), kb(1)
		return knownbits.Make(a.Zero.And(b.Zero), a.One.Or(b.One))
	case ir.OpXor:
		if n.Args[0] == n.Args[1] {
			return knownbits.FromConst(apint.Zero(w))
		}
		a, b := kb(0), kb(1)
		known := a.Zero.Or(a.One).And(b.Zero.Or(b.One))
		val := a.One.Xor(b.One)
		return knownbits.Make(val.Not().And(known), val.And(known))

	case ir.OpShl, ir.OpLShr, ir.OpAShr:
		// LLVM 8 only propagates through constant shift amounts; a
		// variable amount yields ⊤ (§4.2.1's first two examples). The
		// modern compiler joins over every feasible amount
		// (computeKnownBitsFromShiftOperator).
		a := kb(0)
		shiftKB := func(s uint) knownbits.Bits {
			switch n.Op {
			case ir.OpShl:
				return knownbits.Make(a.Zero.Shl(s).Or(lowOnes(w, s)), a.One.Shl(s))
			case ir.OpLShr:
				return knownbits.Make(a.Zero.LShr(s).Or(highOnes(w, s)), a.One.LShr(s))
			default: // ashr
				return knownbits.Make(a.Zero.AShr(s), a.One.AShr(s))
			}
		}
		if c, ok := constantOf(n.Args[1]); ok && c.Uint64() < uint64(w) {
			return shiftKB(uint(c.Uint64()))
		}
		if fa.an.Modern {
			amt := kb(1)
			var out knownbits.Bits
			first := true
			for s := uint(0); s < w; s++ {
				if !amt.Contains(apint.New(n.Args[1].Width, uint64(s))) {
					continue // amount impossible per its known bits
				}
				if first {
					out = shiftKB(s)
					first = false
				} else {
					out = out.Join(shiftKB(s))
				}
			}
			if !first {
				return out
			}
			// Every in-range amount excluded: all executions poison.
		}
		return knownbits.Unknown(w)

	case ir.OpUDiv:
		if n.Args[0] == n.Args[1] {
			// x/x = 1 on every well-defined input (x != 0).
			return knownbits.FromConst(apint.One(w))
		}
		// Dividing by a constant power of two is a logical right shift.
		if c, ok := constantOf(n.Args[1]); ok && c.IsPowerOfTwo() {
			sh := c.CountTrailingZeros()
			a := kb(0)
			return knownbits.Make(a.Zero.LShr(sh).Or(highOnes(w, sh)), a.One.LShr(sh))
		}
		// The quotient is no larger than the dividend: its leading
		// zeros carry over.
		lz := kb(0).CountMinLeadingZeros()
		return knownbits.Make(highOnes(w, lz), apint.Zero(w))

	case ir.OpURem:
		if n.Args[0] == n.Args[1] {
			// x %u x = 0 on every well-defined input.
			return knownbits.FromConst(apint.Zero(w))
		}
		a, b := kb(0), kb(1)
		if c, ok := constantOf(n.Args[1]); ok && c.IsPowerOfTwo() {
			// x urem 2^k = x & (2^k - 1).
			low := c.Sub(apint.One(w))
			return knownbits.Make(a.Zero.And(low).Or(low.Not()), a.One.And(low))
		}
		// The remainder is no larger than the dividend and strictly
		// smaller than the divisor's maximum: the larger leading-zero
		// count applies.
		lz := b.UMax().CountLeadingZeros()
		if lzA := a.CountMinLeadingZeros(); lzA > lz {
			lz = lzA
		}
		return knownbits.Make(highOnes(w, lz), apint.Zero(w))

	case ir.OpSRem:
		return fa.knownBitsSRem(n)

	case ir.OpSDiv:
		return knownbits.Unknown(w)

	case ir.OpSelect:
		// Join of the two arms; the condition is not correlated.
		return kb(1).Join(kb(2))

	case ir.OpEq, ir.OpNe, ir.OpULT, ir.OpULE, ir.OpSLT, ir.OpSLE:
		// Resolvable comparisons fold to a constant (§4.8 item 5): a
		// position where one side is known 0 and the other known 1
		// settles eq/ne; unsigned/signed orders settle via KB bounds.
		a, b := kb(0), kb(1)
		if res, known := decideICmpFromKnownBits(n.Op, a, b); known {
			return knownbits.FromConst(boolInt(res))
		}
		return knownbits.Unknown(1)

	case ir.OpZExt:
		a := kb(0)
		srcW := n.Args[0].Width
		return knownbits.Make(a.Zero.ZExt(w).Or(highOnes(w, w-srcW)), a.One.ZExt(w))
	case ir.OpSExt:
		a := kb(0)
		srcW := n.Args[0].Width
		if known, one := a.KnownBit(srcW - 1); known {
			// Sign known: extension bits are known too.
			if one {
				return knownbits.Make(a.Zero.ZExt(w), a.One.SExt(w))
			}
			return knownbits.Make(a.Zero.SExt(w), a.One.ZExt(w))
		}
		return knownbits.Make(a.Zero.ZExt(w), a.One.ZExt(w))
	case ir.OpTrunc:
		a := kb(0)
		return knownbits.Make(a.Zero.Trunc(w), a.One.Trunc(w))

	case ir.OpCtPop:
		// ctpop(x) <= width: high bits are zero (§4.8 item 4).
		maxPop := uint64(w) - uint64(kb(0).Zero.PopCount())
		return knownbits.Make(highOnes(w, leadingZerosOfBound(w, maxPop)), apint.Zero(w))
	case ir.OpCttz, ir.OpCtlz:
		// Result <= width.
		return knownbits.Make(highOnes(w, leadingZerosOfBound(w, uint64(w))), apint.Zero(w))

	case ir.OpBSwap:
		// §4.8 item 2: byte-swap permutes known bits.
		a := kb(0)
		return knownbits.Make(a.Zero.ByteSwap(), a.One.ByteSwap())
	case ir.OpBitReverse:
		a := kb(0)
		return knownbits.Make(a.Zero.ReverseBits(), a.One.ReverseBits())

	case ir.OpRotL, ir.OpRotR:
		if c, ok := constantOf(n.Args[1]); ok {
			s := uint(c.Uint64() % uint64(w))
			a := kb(0)
			if n.Op == ir.OpRotL {
				return knownbits.Make(a.Zero.RotL(s), a.One.RotL(s))
			}
			return knownbits.Make(a.Zero.RotR(s), a.One.RotR(s))
		}
		return knownbits.Unknown(w)

	case ir.OpUMin:
		// The result is no larger than either input.
		lz := maxUint(kb(0).CountMinLeadingZeros(), kb(1).CountMinLeadingZeros())
		return knownbits.Make(highOnes(w, lz), apint.Zero(w))
	case ir.OpUMax:
		lz := minUint(kb(0).CountMinLeadingZeros(), kb(1).CountMinLeadingZeros())
		return knownbits.Make(highOnes(w, lz), apint.Zero(w))
	case ir.OpSMin, ir.OpSMax:
		a, b := kb(0), kb(1)
		if a.IsNonNegative() && b.IsNonNegative() {
			return knownbits.Make(apint.SignBitValue(w), apint.Zero(w))
		}
		if a.IsNegative() && b.IsNegative() {
			return knownbits.Make(apint.Zero(w), apint.SignBitValue(w))
		}
		return knownbits.Unknown(w)
	case ir.OpAbs:
		if kb(0).IsNonNegative() {
			return kb(0)
		}
		return knownbits.Unknown(w)

	case ir.OpFshl, ir.OpFshr:
		if c, ok := constantOf(n.Args[2]); ok {
			s := uint(c.Uint64() % uint64(w))
			if n.Op == ir.OpFshr {
				s = (w - s) % w
			}
			if s == 0 {
				if n.Op == ir.OpFshl {
					return kb(0)
				}
				return kb(1)
			}
			a, b := kb(0), kb(1)
			return knownbits.Make(a.Zero.Shl(s).Or(b.Zero.LShr(w-s)), a.One.Shl(s).Or(b.One.LShr(w-s)))
		}
		return knownbits.Unknown(w)

	case ir.OpUAddO:
		a, b := kb(0), kb(1)
		if !a.UMax().UAddOverflow(b.UMax()) {
			return knownbits.FromConst(apint.Zero(1))
		}
		if a.UMin().UAddOverflow(b.UMin()) {
			return knownbits.FromConst(apint.One(1))
		}
		return knownbits.Unknown(1)
	case ir.OpUSubO:
		a, b := kb(0), kb(1)
		if a.UMin().UGE(b.UMax()) {
			return knownbits.FromConst(apint.Zero(1))
		}
		if a.UMax().ULT(b.UMin()) {
			return knownbits.FromConst(apint.One(1))
		}
		return knownbits.Unknown(1)
	case ir.OpSAddO:
		a, b := kb(0), kb(1)
		if !smax(a).SAddOverflow(smax(b)) && !smin(a).SAddOverflow(smin(b)) {
			return knownbits.FromConst(apint.Zero(1))
		}
		return knownbits.Unknown(1)
	case ir.OpSSubO:
		a, b := kb(0), kb(1)
		if !smax(a).SSubOverflow(smin(b)) && !smin(a).SSubOverflow(smax(b)) {
			return knownbits.FromConst(apint.Zero(1))
		}
		return knownbits.Unknown(1)
	case ir.OpUMulO:
		a, b := kb(0), kb(1)
		if !a.UMax().UMulOverflow(b.UMax()) {
			return knownbits.FromConst(apint.Zero(1))
		}
		return knownbits.Unknown(1)
	case ir.OpSMulO:
		a, b := kb(0), kb(1)
		ov := false
		for _, x := range []apint.Int{smin(a), smax(a)} {
			for _, y := range []apint.Int{smin(b), smax(b)} {
				if x.SMulOverflow(y) {
					ov = true
				}
			}
		}
		if !ov {
			return knownbits.FromConst(apint.Zero(1))
		}
		return knownbits.Unknown(1)
	}
	return knownbits.Unknown(w)
}

func maxUint(a, b uint) uint {
	if a > b {
		return a
	}
	return b
}

// knownBitsSRem ports LLVM's srem case, with the PR12541 bug injectable.
func (fa *Facts) knownBitsSRem(n *ir.Inst) knownbits.Bits {
	w := n.Width
	lhs := fa.known[n.Args[0]]
	zero, one := apint.Zero(w), apint.Zero(w)

	if c, ok := constantOf(n.Args[1]); ok && !c.IsZero() {
		ra := c.AbsValue()
		if ra.IsPowerOfTwo() {
			lowBits := ra.Sub(apint.One(w))
			// The low bits of the dividend pass through.
			zero = lhs.Zero.And(lowBits)
			one = lhs.One.And(lowBits)
			switch {
			case lhs.IsNonNegative() || lowBits.And(lhs.Zero).Eq(lowBits):
				// Non-negative dividend (or low bits all zero):
				// upper bits are zero.
				zero = zero.Or(lowBits.Not())
			case lhs.IsNegative() && !lowBits.And(lhs.One).IsZero():
				// Negative dividend with a known-set low bit:
				// upper bits are one.
				one = one.Or(lowBits.Not())
			}
		}
	}

	// The result's sign follows the dividend (when the remainder is
	// non-zero); a non-negative dividend gives a non-negative result,
	// with magnitude no larger than the dividend's.
	if lhs.IsNonNegative() {
		zero = zero.Or(highOnes(w, lhs.CountMinLeadingZeros()))
	}

	if fa.an.Modern {
		// Post-LLVM-8: trailing zero bits common to both operands are
		// preserved by the remainder (remainder = a - q*b).
		if rk, ok := constantOf(n.Args[1]); ok {
			tz := minUint(lhs.CountMinTrailingZeros(), rk.CountTrailingZeros())
			zero = zero.Or(lowOnes(w, tz))
		}
	}

	if fa.an.Bugs.SRemKnownBits {
		// PR12541: unsound copy of the dividend's trailing zeros.
		tz := lhs.CountMinTrailingZeros()
		zero = zero.Or(lowOnes(w, tz))
	}
	return knownbits.Make(zero, one)
}

// computeForAddSub ports KnownBits::computeForAddSub: carry propagation
// over known bits, plus the nsw sign refinement.
func computeForAddSub(add, nsw bool, lhs, rhs knownbits.Bits) knownbits.Bits {
	if !add {
		// a - b = a + ~b + 1; the inverted operand makes the nsw sign
		// rule below apply unchanged.
		rhs = knownbits.Make(rhs.One, rhs.Zero)
		return addCarry(lhs, rhs, nsw, true)
	}
	return addCarry(lhs, rhs, nsw, false)
}

func addCarry(lhs, rhs knownbits.Bits, nsw, carryIn bool) knownbits.Bits {
	w := lhs.Width()
	one := apint.One(w)
	carry := apint.Zero(w)
	if carryIn {
		carry = one
	}
	possibleSumZero := lhs.UMax().Add(rhs.UMax()).Add(carry)
	possibleSumOne := lhs.UMin().Add(rhs.UMin()).Add(carry)

	carryKnownZero := possibleSumZero.Xor(lhs.Zero).Xor(rhs.Zero).Not()
	carryKnownOne := possibleSumOne.Xor(lhs.One).Xor(rhs.One)

	lhsKnown := lhs.Zero.Or(lhs.One)
	rhsKnown := rhs.Zero.Or(rhs.One)
	carryKnown := carryKnownZero.Or(carryKnownOne)
	known := lhsKnown.And(rhsKnown).And(carryKnown)

	out := knownbits.Make(possibleSumZero.Not().And(known), possibleSumOne.And(known))

	if nsw {
		// nsw: same-signed operands force the result's sign.
		if lhs.IsNonNegative() && rhs.IsNonNegative() {
			out = out.Meet(knownbits.Make(apint.SignBitValue(w), apint.Zero(w)))
		} else if lhs.IsNegative() && rhs.IsNegative() {
			out = out.Meet(knownbits.Make(apint.Zero(w), apint.SignBitValue(w)))
		}
	}
	return out
}

// knownBitsMul ports LLVM 8's computeKnownBitsMul: trailing zeros add, and
// leading zeros come from the product of the unsigned bounds when it
// cannot wrap.
func knownBitsMul(lhs, rhs knownbits.Bits) knownbits.Bits {
	w := lhs.Width()
	tz := lhs.CountMinTrailingZeros() + rhs.CountMinTrailingZeros()
	if tz > w {
		tz = w
	}
	zero := lowOnes(w, tz)
	if !lhs.UMax().UMulOverflow(rhs.UMax()) {
		bound := lhs.UMax().Mul(rhs.UMax())
		zero = zero.Or(highOnes(w, bound.CountLeadingZeros()))
	}
	return knownbits.Make(zero, apint.Zero(w))
}

// decideICmpFromKnownBits resolves a comparison when the known bits of the
// operands already force the outcome (§4.8 item 5).
func decideICmpFromKnownBits(op ir.Op, a, b knownbits.Bits) (bool, bool) {
	switch op {
	case ir.OpEq, ir.OpNe:
		// A position known 0 on one side and known 1 on the other
		// forces inequality.
		mismatch := !a.Zero.And(b.One).IsZero() || !a.One.And(b.Zero).IsZero()
		if mismatch {
			return op == ir.OpNe, true
		}
		if a.IsConstant() && b.IsConstant() {
			return (op == ir.OpEq) == a.Constant().Eq(b.Constant()), true
		}
	case ir.OpULT:
		if a.UMax().ULT(b.UMin()) {
			return true, true
		}
		if a.UMin().UGE(b.UMax()) {
			return false, true
		}
	case ir.OpULE:
		if a.UMax().ULE(b.UMin()) {
			return true, true
		}
		if a.UMin().UGT(b.UMax()) {
			return false, true
		}
	case ir.OpSLT:
		if smax(a).SLT(smin(b)) {
			return true, true
		}
		if smin(a).SGE(smax(b)) {
			return false, true
		}
	case ir.OpSLE:
		if smax(a).SLE(smin(b)) {
			return true, true
		}
		if smin(a).SGT(smax(b)) {
			return false, true
		}
	}
	return false, false
}

// smin and smax give signed bounds implied by known bits.
func smin(k knownbits.Bits) apint.Int {
	w := k.Width()
	v := k.UMin()
	if known, _ := k.KnownBit(w - 1); !known {
		v = v.SetBit(w - 1)
	}
	return v
}

func smax(k knownbits.Bits) apint.Int {
	w := k.Width()
	v := k.UMax()
	if known, _ := k.KnownBit(w - 1); !known {
		v = v.ClearBit(w - 1)
	}
	return v
}

func constantOf(n *ir.Inst) (apint.Int, bool) {
	if n.Op == ir.OpConst {
		return n.Val, true
	}
	return apint.Int{}, false
}

func lowOnes(w, n uint) apint.Int {
	if n >= w {
		return apint.AllOnes(w)
	}
	return apint.One(w).Shl(n).Sub(apint.One(w))
}

func highOnes(w, n uint) apint.Int {
	return lowOnes(w, n).Shl(w - minUint(n, w))
}

func minUint(a, b uint) uint {
	if a < b {
		return a
	}
	return b
}

// leadingZerosOfBound returns how many leading zeros a value <= bound must
// have at width w.
func leadingZerosOfBound(w uint, bound uint64) uint {
	if bound == 0 {
		return w
	}
	sig := uint(64 - bits.LeadingZeros64(bound))
	if sig >= w {
		return 0
	}
	return w - sig
}

func boolInt(b bool) apint.Int {
	if b {
		return apint.One(1)
	}
	return apint.Zero(1)
}
