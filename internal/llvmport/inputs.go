package llvmport

import (
	"dfcheck/internal/constrange"
	"dfcheck/internal/ir"
	"dfcheck/internal/knownbits"
)

// AbsInput pins the forward facts of one input variable to explicit
// abstract values, in place of what Analyze would derive from range
// metadata. The transfer-function verifier (internal/absint) uses this
// to drive each analysis with arbitrary abstract operands; ordinary
// analysis never constructs one.
type AbsInput struct {
	Known    knownbits.Bits
	Range    constrange.Range
	SignBits uint
}

// TopInput returns the no-information input at width w: nothing known,
// the full range, one sign bit.
func TopInput(w uint) AbsInput {
	return AbsInput{Known: knownbits.Unknown(w), Range: constrange.Full(w), SignBits: 1}
}

// AnalyzeWithInputs computes forward facts like Analyze, but takes each
// listed variable's facts verbatim from inputs (keyed by variable name)
// instead of computing them. Variables absent from the map are analyzed
// normally. The injected facts then flow through exactly the transfer
// functions ordinary analysis uses, which is what lets internal/absint
// exercise those functions on every abstract input in isolation.
func (an *Analyzer) AnalyzeWithInputs(f *ir.Function, inputs map[string]AbsInput) *Facts {
	fa := &Facts{
		an:       an,
		f:        f,
		known:    make(map[*ir.Inst]knownbits.Bits),
		ranges:   make(map[*ir.Inst]constrange.Range),
		signBits: make(map[*ir.Inst]uint),
	}
	if len(inputs) > 0 {
		fa.overrides = make(map[*ir.Inst]AbsInput, len(inputs))
		for _, v := range f.Vars {
			if in, ok := inputs[v.Name]; ok {
				fa.overrides[v] = in
			}
		}
	}
	for _, n := range f.Insts() {
		if in, ok := fa.overrides[n]; ok {
			fa.known[n] = in.Known
			fa.ranges[n] = in.Range
			fa.signBits[n] = in.SignBits
			continue
		}
		fa.known[n] = fa.computeKnownBits(n)
		fa.ranges[n] = fa.computeRange(n)
		fa.signBits[n] = fa.computeNumSignBits(n)
	}
	return fa
}
