// Package llvmport is the compiler under test: a Go port of the LLVM-8-era
// static analyses that the paper compares against its solver-based oracle —
// computeKnownBits, ComputeNumSignBits, the single-bit predicates of
// ValueTracking (isKnownNonZero, isKnownNegative, isKnownNonNegative,
// isKnownToBeAPowerOfTwo), a Lazy-Value-Info-style integer range analysis,
// and the DemandedBits backward analysis.
//
// The ports intentionally mirror the precision profile the paper documents
// for LLVM 8 (§4.2–4.5): where LLVM 8 returned an imprecise fact (e.g. all
// bits unknown for "shl 32, %x", or the [-8,8) range for "srem %x, 8"), so
// does this package. They also carry the three historical soundness bugs of
// §4.7 behind BugConfig flags, re-introduced exactly as the reverse-applied
// patches would.
//
// Like LLVM's ValueTracking, the forward analyses read a variable's range
// metadata (Souper's (range=[lo,hi)) attribute) but perform no relational
// or path-sensitive reasoning.
package llvmport

import (
	"dfcheck/internal/constrange"
	"dfcheck/internal/ir"
	"dfcheck/internal/knownbits"
)

// BugConfig re-introduces previously-fixed LLVM soundness bugs (§4.7).
type BugConfig struct {
	// NonZeroAdd reproduces the bug introduced in r124183 and fixed in
	// r124184/r124188: isKnownNonZero claims the sum of two known
	// non-negative values is non-zero, forgetting that both may be zero.
	NonZeroAdd bool

	// SRemSignBits reproduces the bug behind PR23011, fixed in r233225:
	// ComputeNumSignBits for "srem X, C" over-counts by using the floor
	// instead of the ceiling of log2|C|, claiming 31 sign bits for
	// "srem i32 X, 3" where only 30 are sound.
	SRemSignBits bool

	// SRemKnownBits reproduces the bug behind PR12541, fixed in r155818:
	// computeKnownBits for srem copies the dividend's trailing zero bits
	// to the result, which is wrong for divisors that do not share them
	// (srem 4, 3 = 1 has bit zero set).
	SRemKnownBits bool
}

// Analyzer runs the ported analyses. The zero value is the fixed LLVM-8-
// era compiler; set Bugs fields to re-break it, or Modern to apply the
// post-LLVM-8 precision improvements that solver-based testing motivated
// (§4.8's trajectory): known bits through variable shift amounts, select
// condition correlation in the range analysis, the x & -x power-of-two
// idiom combined with non-zero facts, and srem trailing-zero propagation.
type Analyzer struct {
	Bugs   BugConfig
	Modern bool
}

// Facts caches per-instruction analysis results for one function.
type Facts struct {
	an       *Analyzer
	f        *ir.Function
	known    map[*ir.Inst]knownbits.Bits
	ranges   map[*ir.Inst]constrange.Range
	signBits map[*ir.Inst]uint
	// overrides holds injected per-variable facts (AnalyzeWithInputs);
	// nil for ordinary analysis.
	overrides map[*ir.Inst]AbsInput
}

// Analyze computes all forward facts for f.
func (an *Analyzer) Analyze(f *ir.Function) *Facts {
	return an.AnalyzeWithInputs(f, nil)
}

// KnownBits returns the known-bits fact for the root value.
func (fa *Facts) KnownBits() knownbits.Bits { return fa.known[fa.f.Root] }

// KnownBitsOf returns the known-bits fact for any instruction.
func (fa *Facts) KnownBitsOf(n *ir.Inst) knownbits.Bits { return fa.known[n] }

// Range returns the LVI-style constant range for the root value.
func (fa *Facts) Range() constrange.Range { return fa.ranges[fa.f.Root] }

// RangeOf returns the range fact for any instruction.
func (fa *Facts) RangeOf(n *ir.Inst) constrange.Range { return fa.ranges[n] }

// NumSignBits returns the sign-bit count for the root value.
func (fa *Facts) NumSignBits() uint { return fa.signBits[fa.f.Root] }

// NumSignBitsOf returns the sign-bit count for any instruction.
func (fa *Facts) NumSignBitsOf(n *ir.Inst) uint { return fa.signBits[n] }
