package harvest

import (
	"fmt"
	"strings"
)

// Stats summarizes a corpus the way §3.1 reports the SPEC CPU 2017
// harvest: unique expression count, duplication quantiles, and expression
// sizes.
type Stats struct {
	Unique          int
	TotalEncounters int64
	PctMoreThan1    float64 // encountered more than once
	PctMoreThan10   float64
	PctMoreThan100  float64
	AvgInsts        float64
	MaxInsts        int
}

// StreamingStats generates cfg.NumExprs expressions one at a time and
// accumulates their statistics without retaining the corpus — the
// full-scale §3.1 run (269,113 expressions averaging ~100 instructions)
// would otherwise hold several gigabytes of DAGs.
func StreamingStats(cfg Config) Stats {
	cfg = cfg.Default()
	rng := newGenRand(cfg.Seed)
	var s Stats
	var more1, more10, more100 int
	var instSum int64
	for i := 0; i < cfg.NumExprs; i++ {
		f := genExpr(rng, cfg)
		freq := sampleFreq(rng)
		s.Unique++
		s.TotalEncounters += int64(freq)
		if freq > 1 {
			more1++
		}
		if freq > 10 {
			more10++
		}
		if freq > 100 {
			more100++
		}
		n := f.NumInsts()
		instSum += int64(n)
		if n > s.MaxInsts {
			s.MaxInsts = n
		}
	}
	if s.Unique > 0 {
		u := float64(s.Unique)
		s.PctMoreThan1 = 100 * float64(more1) / u
		s.PctMoreThan10 = 100 * float64(more10) / u
		s.PctMoreThan100 = 100 * float64(more100) / u
		s.AvgInsts = float64(instSum) / u
	}
	return s
}

// ComputeStats derives corpus statistics.
func ComputeStats(corpus []Expr) Stats {
	var s Stats
	s.Unique = len(corpus)
	if s.Unique == 0 {
		return s
	}
	var more1, more10, more100 int
	var instSum int64
	for _, e := range corpus {
		s.TotalEncounters += int64(e.Freq)
		if e.Freq > 1 {
			more1++
		}
		if e.Freq > 10 {
			more10++
		}
		if e.Freq > 100 {
			more100++
		}
		n := e.F.NumInsts()
		instSum += int64(n)
		if n > s.MaxInsts {
			s.MaxInsts = n
		}
	}
	u := float64(s.Unique)
	s.PctMoreThan1 = 100 * float64(more1) / u
	s.PctMoreThan10 = 100 * float64(more10) / u
	s.PctMoreThan100 = 100 * float64(more100) / u
	s.AvgInsts = float64(instSum) / u
	return s
}

// String renders the statistics in the §3.1 reporting style.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "unique expressions:        %d\n", s.Unique)
	fmt.Fprintf(&sb, "total encounters:          %d\n", s.TotalEncounters)
	fmt.Fprintf(&sb, "encountered more than 1x:  %.1f%%\n", s.PctMoreThan1)
	fmt.Fprintf(&sb, "encountered more than 10x: %.1f%%\n", s.PctMoreThan10)
	fmt.Fprintf(&sb, "encountered more than 100x:%.1f%%\n", s.PctMoreThan100)
	fmt.Fprintf(&sb, "average instructions:      %.1f\n", s.AvgInsts)
	fmt.Fprintf(&sb, "largest expression:        %d instructions\n", s.MaxInsts)
	return sb.String()
}
