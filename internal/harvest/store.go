package harvest

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dfcheck/internal/ir"
)

// This file persists corpora, standing in for the artifact's Redis dump
// (dump.rdb) of harvested Souper expressions: the authors shipped their
// SPEC harvest as a database so others could rerun the precision
// experiment without the benchmark's license. The format here is plain
// text, one record per expression:
//
//	expr <name> <freq>
//	<souper text, indented one tab>
//	end
//
// Records round-trip through the Souper parser, so a stored corpus is also
// human-readable and hand-editable.

// WriteCorpus serializes a corpus.
func WriteCorpus(w io.Writer, corpus []Expr) error {
	bw := bufio.NewWriter(w)
	for _, e := range corpus {
		if strings.ContainsAny(e.Name, " \t\n") {
			return fmt.Errorf("harvest: expression name %q contains whitespace", e.Name)
		}
		fmt.Fprintf(bw, "expr %s %d\n", e.Name, e.Freq)
		for _, line := range strings.Split(strings.TrimRight(e.F.String(), "\n"), "\n") {
			fmt.Fprintf(bw, "\t%s\n", line)
		}
		fmt.Fprintln(bw, "end")
	}
	return bw.Flush()
}

// ReadCorpus parses a corpus written by WriteCorpus.
func ReadCorpus(r io.Reader) ([]Expr, error) {
	var corpus []Expr
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	var cur *Expr
	var body strings.Builder
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "expr "):
			if cur != nil {
				return nil, fmt.Errorf("harvest: line %d: nested expr record", lineNo)
			}
			fields := strings.Fields(line)
			if len(fields) != 3 {
				return nil, fmt.Errorf("harvest: line %d: want 'expr <name> <freq>'", lineNo)
			}
			freq, err := strconv.Atoi(fields[2])
			if err != nil || freq < 1 {
				return nil, fmt.Errorf("harvest: line %d: bad frequency %q", lineNo, fields[2])
			}
			cur = &Expr{Name: fields[1], Freq: freq}
			body.Reset()
		case line == "end":
			if cur == nil {
				return nil, fmt.Errorf("harvest: line %d: end without expr", lineNo)
			}
			f, err := ir.Parse(body.String())
			if err != nil {
				return nil, fmt.Errorf("harvest: record %q: %w", cur.Name, err)
			}
			cur.F = f
			corpus = append(corpus, *cur)
			cur = nil
		case cur != nil:
			body.WriteString(strings.TrimPrefix(line, "\t"))
			body.WriteByte('\n')
		case strings.TrimSpace(line) == "" || strings.HasPrefix(line, "#"):
			// blank lines and comments between records
		default:
			return nil, fmt.Errorf("harvest: line %d: unexpected text outside record", lineNo)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("harvest: unterminated record %q", cur.Name)
	}
	return corpus, nil
}
