package harvest

import (
	"fmt"
	"math"
	"math/rand"

	"dfcheck/internal/apint"
	"dfcheck/internal/ir"
)

// Expr is one corpus entry: an expression plus how many times the
// (simulated) compilation encountered it. The paper's precision experiment
// analyzes each unique expression once; the frequency reproduces the §3.1
// duplication statistics.
type Expr struct {
	Name string
	F    *ir.Function
	Freq int
}

// Config tunes the generator. The zero value is completed by Default.
type Config struct {
	Seed int64
	// NumExprs is the number of unique expressions to generate.
	NumExprs int
	// MinInsts/MaxInsts bound the instruction count per expression.
	MinInsts, MaxInsts int
	// Widths are the candidate base bit widths with selection weights.
	Widths []WidthWeight
	// MaxExpensive caps multiply/divide/remainder instructions per
	// expression, keeping solver queries tractable.
	MaxExpensive int
	// MaxCastWidth caps zext/sext target widths (casts also never more
	// than double a width, matching how real IR widens).
	MaxCastWidth uint
}

// WidthWeight weights a base width for selection.
type WidthWeight struct {
	Width  uint
	Weight int
}

// Default fills unset fields with the SPEC-shaped defaults: widths skewed
// toward i32 (as C code is), expression sizes in the handful-of-
// instructions regime.
func (c Config) Default() Config {
	if c.NumExprs == 0 {
		c.NumExprs = 1000
	}
	if c.MinInsts == 0 {
		c.MinInsts = 1
	}
	if c.MaxInsts == 0 {
		c.MaxInsts = 12
	}
	if len(c.Widths) == 0 {
		c.Widths = []WidthWeight{
			{8, 15}, {16, 10}, {32, 45}, {64, 20}, {4, 5}, {13, 5},
		}
	}
	if c.MaxExpensive == 0 {
		c.MaxExpensive = 2
	}
	if c.MaxCastWidth == 0 {
		c.MaxCastWidth = apint.MaxWidth
	}
	return c
}

// opWeight models the instruction mix of optimized LLVM IR from C/C++.
type opWeight struct {
	op     ir.Op
	weight int
}

var opMix = []opWeight{
	{ir.OpAdd, 14}, {ir.OpSub, 6}, {ir.OpMul, 4},
	{ir.OpUDiv, 1}, {ir.OpSDiv, 1}, {ir.OpURem, 1}, {ir.OpSRem, 1},
	{ir.OpAnd, 9}, {ir.OpOr, 6}, {ir.OpXor, 4},
	{ir.OpShl, 6}, {ir.OpLShr, 4}, {ir.OpAShr, 3},
	{ir.OpEq, 6}, {ir.OpNe, 4}, {ir.OpULT, 3}, {ir.OpULE, 2},
	{ir.OpSLT, 4}, {ir.OpSLE, 2},
	{ir.OpSelect, 6},
	{ir.OpZExt, 6}, {ir.OpSExt, 4}, {ir.OpTrunc, 5},
	{ir.OpCtPop, 1}, {ir.OpBSwap, 1}, {ir.OpBitReverse, 1},
	{ir.OpCttz, 1}, {ir.OpCtlz, 1}, {ir.OpRotL, 1}, {ir.OpRotR, 1},
	{ir.OpUMin, 2}, {ir.OpUMax, 2}, {ir.OpSMin, 1}, {ir.OpSMax, 1},
	{ir.OpAbs, 1}, {ir.OpFshl, 1}, {ir.OpFshr, 1},
	{ir.OpUAddO, 1}, {ir.OpSAddO, 1}, {ir.OpUSubO, 1}, {ir.OpSMulO, 1},
}

// newGenRand builds the deterministic generator stream for a seed.
func newGenRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Generate produces cfg.NumExprs unique expressions deterministically from
// cfg.Seed, each with a frequency drawn from the duplication model.
func Generate(cfg Config) []Expr {
	cfg = cfg.Default()
	rng := newGenRand(cfg.Seed)
	out := make([]Expr, 0, cfg.NumExprs)
	for i := 0; i < cfg.NumExprs; i++ {
		f := genExpr(rng, cfg)
		out = append(out, Expr{
			Name: fmt.Sprintf("gen-%06d", i),
			F:    f,
			Freq: sampleFreq(rng),
		})
	}
	return out
}

// sampleFreq draws an encounter count matching §3.1: 28.4% of unique
// expressions are seen once; the rest follow a Pareto tail fit to the
// paper's ">10 times: 11.4%" and ">100 times: 1.6%" quantiles.
func sampleFreq(rng *rand.Rand) int {
	if rng.Float64() < 0.284 {
		return 1
	}
	// Among duplicated expressions, P(F > x) = x^-alpha with alpha
	// chosen so P(F > 10) = 0.114/0.716 ≈ 0.159.
	const alpha = 0.797
	u := rng.Float64()
	f := math.Pow(1-u, -1/alpha)
	if f > 1e6 {
		f = 1e6
	}
	n := int(f)
	if n < 2 {
		n = 2
	}
	return n
}

type genState struct {
	rng        *rand.Rand
	cfg        Config
	b          *ir.Builder
	pools      map[uint][]*ir.Inst // values by width
	widthOrder []uint              // pool keys in first-use order (determinism)
	used       map[*ir.Inst]bool   // values consumed as operands
	vars       int
	expensive  int
}

func genExpr(rng *rand.Rand, cfg Config) *ir.Function {
	g := &genState{rng: rng, cfg: cfg, b: ir.NewBuilder(), pools: map[uint][]*ir.Inst{}, used: map[*ir.Inst]bool{}}
	base := g.pickWidth()
	target := cfg.MinInsts + rng.Intn(cfg.MaxInsts-cfg.MinInsts+1)

	// Seed with one to three variables at the base width.
	nVars := 1 + rng.Intn(3)
	for i := 0; i < nVars; i++ {
		g.addToPool(g.newVar(base))
	}

	// A long tail of jumbo expressions mirrors the harvest's largest
	// entries (§3.1 reports a 3,665-instruction maximum).
	if rng.Intn(1000) == 0 {
		target *= 20
	}

	var instrs []*ir.Inst
	seen := make(map[*ir.Inst]bool)
	misses := 0
	for len(instrs) < target && misses < 8*target+64 {
		n := g.step(base)
		if n == nil || seen[n] {
			misses++ // inapplicable op or hash-consed duplicate
			continue
		}
		seen[n] = true
		g.addToPool(n)
		instrs = append(instrs, n)
	}
	if len(instrs) == 0 {
		// Degenerate fallback: a fresh add over the seeded variables.
		instrs = append(instrs, g.b.Add(g.operand(base), g.operand(base)))
	}
	// Root: fold every base-width instruction that nothing else consumes
	// into one value, so the whole build is reachable (expressions are
	// counted by their root's cone, as the paper counts them).
	var dangling []*ir.Inst
	for _, n := range instrs {
		if n.Width == base && !g.used[n] {
			dangling = append(dangling, n)
		}
	}
	var root *ir.Inst
	switch len(dangling) {
	case 0:
		root = instrs[len(instrs)-1]
		for i := len(instrs) - 1; i >= 0; i-- {
			if instrs[i].Width == base {
				root = instrs[i]
				break
			}
		}
	default:
		root = dangling[0]
		for i, n := range dangling[1:] {
			if i%2 == 0 {
				root = g.b.Xor(root, n)
			} else {
				root = g.b.Add(root, n)
			}
		}
	}
	f := g.b.Function(root)
	if err := ir.Verify(f); err != nil {
		panic(fmt.Sprintf("harvest: generated invalid function: %v", err))
	}
	return f
}

func (g *genState) pickWidth() uint {
	total := 0
	for _, ww := range g.cfg.Widths {
		total += ww.Weight
	}
	pick := g.rng.Intn(total)
	for _, ww := range g.cfg.Widths {
		if pick < ww.Weight {
			return ww.Width
		}
		pick -= ww.Weight
	}
	return g.cfg.Widths[0].Width
}

func (g *genState) newVar(w uint) *ir.Inst {
	name := fmt.Sprintf("v%d", g.vars)
	g.vars++
	// Occasionally attach range metadata, as Souper's harvester does when
	// the source carried it.
	if g.rng.Intn(100) < 15 {
		lo := apint.New(w, g.rng.Uint64())
		hi := apint.New(w, g.rng.Uint64())
		if lo.Ne(hi) {
			return g.b.VarRange(name, w, lo, hi)
		}
	}
	return g.b.Var(name, w)
}

func (g *genState) addToPool(n *ir.Inst) {
	if _, ok := g.pools[n.Width]; !ok {
		g.widthOrder = append(g.widthOrder, n.Width)
	}
	g.pools[n.Width] = append(g.pools[n.Width], n)
}

// operand picks (or creates) a value of width w, biased toward recent
// values so expressions grow as deep chains rather than disjoint islands.
func (g *genState) operand(w uint) *ir.Inst {
	pool := g.pools[w]
	switch {
	case len(pool) > 0 && g.rng.Intn(100) < 70:
		idx := len(pool) - 1
		if g.rng.Intn(100) < 40 {
			idx = g.rng.Intn(len(pool))
		}
		n := pool[idx]
		g.used[n] = true
		return n
	case g.rng.Intn(100) < 50 && g.vars < 4:
		v := g.newVar(w)
		g.addToPool(v)
		g.used[v] = true
		return v
	default:
		c := g.b.Const(g.interestingConst(w))
		g.used[c] = true
		return c
	}
}

// interestingConst favors the constants real code uses: small numbers,
// powers of two, masks, and -1.
func (g *genState) interestingConst(w uint) apint.Int {
	switch g.rng.Intn(6) {
	case 0:
		return apint.New(w, uint64(g.rng.Intn(8)))
	case 1:
		return apint.One(w).Shl(uint(g.rng.Intn(int(w))))
	case 2:
		return apint.One(w).Shl(uint(g.rng.Intn(int(w)))).Sub(apint.One(w))
	case 3:
		return apint.AllOnes(w)
	case 4:
		return apint.NewSigned(w, -int64(1+g.rng.Intn(8)))
	default:
		return apint.New(w, g.rng.Uint64())
	}
}

// step builds one random instruction, or nil when the choice was
// inapplicable (retried by the caller).
func (g *genState) step(base uint) *ir.Inst {
	total := 0
	for _, ow := range opMix {
		total += ow.weight
	}
	pick := g.rng.Intn(total)
	var op ir.Op
	for _, ow := range opMix {
		if pick < ow.weight {
			op = ow.op
			break
		}
		pick -= ow.weight
	}

	expensive := op == ir.OpMul || op.IsDivRem() ||
		op == ir.OpUMulO || op == ir.OpSMulO
	if expensive && g.expensive >= g.cfg.MaxExpensive {
		return nil
	}

	w := g.anyPoolWidth(base)
	switch {
	case op.IsCast():
		return g.stepCast(op, w)
	case op == ir.OpSelect:
		c := g.operand(1)
		t := g.operand(w)
		f := g.operand(w)
		return g.b.Select(c, t, f)
	case op.HasBoolResult():
		return g.b.Build(op, 0, g.operand(w), g.operand(w))
	case op == ir.OpFshl || op == ir.OpFshr:
		return g.b.Build(op, 0, g.operand(w), g.operand(w), g.operand(w))
	case op == ir.OpBSwap:
		if w%8 != 0 {
			return nil
		}
		return g.b.Build(op, 0, g.operand(w))
	case op.Arity() == 1:
		return g.b.Build(op, 0, g.operand(w))
	default:
		if expensive {
			g.expensive++
		}
		return g.b.Build(op, g.randomFlags(op), g.operand(w), g.operand(w))
	}
}

// anyPoolWidth mostly stays at the base width but sometimes picks another
// width that already has values (from casts).
func (g *genState) anyPoolWidth(base uint) uint {
	if g.rng.Intn(100) < 75 {
		return base
	}
	var widths []uint
	for _, w := range g.widthOrder {
		if len(g.pools[w]) > 0 && w != 1 {
			widths = append(widths, w)
		}
	}
	if len(widths) == 0 {
		return base
	}
	return widths[g.rng.Intn(len(widths))]
}

func (g *genState) stepCast(op ir.Op, w uint) *ir.Inst {
	switch op {
	case ir.OpTrunc:
		if w <= 1 {
			return nil
		}
		to := 1 + uint(g.rng.Intn(int(w-1)))
		return g.b.Trunc(g.operand(w), to)
	case ir.OpZExt, ir.OpSExt:
		hi := 2 * w
		if hi > g.cfg.MaxCastWidth {
			hi = g.cfg.MaxCastWidth
		}
		if hi <= w {
			return nil
		}
		to := w + 1 + uint(g.rng.Intn(int(hi-w)))
		if op == ir.OpZExt {
			return g.b.ZExt(g.operand(w), to)
		}
		return g.b.SExt(g.operand(w), to)
	}
	return nil
}

func (g *genState) randomFlags(op ir.Op) ir.Flags {
	valid := op.ValidFlags()
	var f ir.Flags
	if valid&ir.FlagNSW != 0 && g.rng.Intn(100) < 25 {
		f |= ir.FlagNSW
	}
	if valid&ir.FlagNUW != 0 && g.rng.Intn(100) < 12 {
		f |= ir.FlagNUW
	}
	if valid&ir.FlagExact != 0 && g.rng.Intn(100) < 8 {
		f |= ir.FlagExact
	}
	return f
}
