package harvest

import (
	"fmt"
	"math/rand"

	"dfcheck/internal/ir"
)

// ShuffledCopy rebuilds f as a structurally equivalent alpha-variant: the
// input variables are renamed (d0, d1, ... in a random permutation of
// first-occurrence order) and the operands of commutative instructions
// are randomly swapped. Widths, flags, constants, and range metadata are
// preserved, so the copy canonicalizes (internal/canon) to the same key
// as the original — it is "the same expression, harvested from another
// compilation unit", the duplication the paper measures in §3.1.
func ShuffledCopy(f *ir.Function, rng *rand.Rand) *ir.Function {
	perm := rng.Perm(len(f.Vars))
	names := make(map[string]string, len(f.Vars))
	for i, v := range f.Vars {
		names[v.Name] = fmt.Sprintf("d%d", perm[i])
	}
	b := ir.NewBuilder()
	memo := make(map[*ir.Inst]*ir.Inst)
	var build func(n *ir.Inst) *ir.Inst
	build = func(n *ir.Inst) *ir.Inst {
		if m, ok := memo[n]; ok {
			return m
		}
		var m *ir.Inst
		switch {
		case n.IsVar():
			if n.HasRange {
				m = b.VarRange(names[n.Name], n.Width, n.Lo, n.Hi)
			} else {
				m = b.Var(names[n.Name], n.Width)
			}
		case n.IsConst():
			m = b.Const(n.Val)
		case n.Op.IsCast():
			m = b.BuildCast(n.Op, n.Width, build(n.Args[0]))
		default:
			args := append([]*ir.Inst(nil), n.Args...)
			if n.Op.IsCommutative() && rng.Intn(2) == 0 {
				args[0], args[1] = args[1], args[0]
			}
			built := make([]*ir.Inst, len(args))
			for i, a := range args {
				built[i] = build(a)
			}
			m = b.Build(n.Op, n.Flags, built...)
		}
		memo[n] = m
		return m
	}
	return b.Function(build(f.Root))
}

// DuplicationShaped expands Generate's corpus into one with explicit
// duplicate entries: each unique expression appears min(Freq, maxCopies)
// times, the copies being shuffled alpha-variants rather than pointer
// aliases. The result has the §3.1 shape a real harvest would have before
// deduplication — the corpus the duplication-aware cached comparator path
// is designed for. All entries have Freq 1. maxCopies <= 0 means no cap.
func DuplicationShaped(cfg Config, maxCopies int) []Expr {
	base := Generate(cfg)
	rng := newGenRand(cfg.Seed ^ 0x5f3a_22e1)
	var out []Expr
	for _, e := range base {
		n := e.Freq
		if maxCopies > 0 && n > maxCopies {
			n = maxCopies
		}
		out = append(out, Expr{Name: e.Name, F: e.F, Freq: 1})
		for c := 1; c < n; c++ {
			out = append(out, Expr{
				Name: fmt.Sprintf("%s-dup%d", e.Name, c),
				F:    ShuffledCopy(e.F, rng),
				Freq: 1,
			})
		}
	}
	return out
}
