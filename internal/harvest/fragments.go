// Package harvest supplies the expression corpus the comparator runs on:
// the paper's own code fragments (§4.2–4.7), and a deterministic weighted
// generator standing in for the 269,113 Souper expressions the authors
// harvested by compiling SPEC CPU 2017 (which is license-gated). The
// generator's op mix, width mix, and duplication model are calibrated to
// reproduce the corpus statistics of §3.1.
package harvest

import "dfcheck/internal/ir"

// Analysis names a dataflow analysis under test; the comparator and the
// reports index rows by these.
type Analysis string

// The eight analyses of Table 1.
const (
	KnownBits    Analysis = "known bits"
	SignBits     Analysis = "sign bits"
	NonZero      Analysis = "non-zero"
	Negative     Analysis = "negative"
	NonNegative  Analysis = "non-negative"
	PowerOfTwo   Analysis = "power of two"
	IntegerRange Analysis = "integer range"
	DemandedBits Analysis = "demanded bits"
)

// The self-contained transfer domains (internal/tnum, internal/stride)
// sit outside Table 1: they have no oracle implementation, so they never
// contribute rows, but n-way contradictions and consistency findings are
// labeled with them.
const (
	Tnum   Analysis = "tnum"
	Stride Analysis = "stride"
)

// AllAnalyses lists the Table 1 rows in the paper's order.
var AllAnalyses = []Analysis{
	KnownBits, SignBits, NonZero, Negative, NonNegative,
	PowerOfTwo, IntegerRange, DemandedBits,
}

// Fragment is one example from the paper, with the facts the paper
// reports for it.
type Fragment struct {
	Name     string
	Section  string
	Analysis Analysis
	Source   string
	// Reduced, when set, is the same fragment at a smaller bit width
	// whose reported facts are identical. The paper reduced widths "to
	// make the examples easier to understand" (§4.2); we additionally
	// use reduced widths where the full-width query involves 32/64-bit
	// division — the paper's own adversarial case for the solver (§3.3).
	Reduced string
	// Precise and LLVM are the paper's reported facts, rendered the way
	// the paper prints them (bit strings for known/demanded bits, range
	// notation for ranges, yes/no for single-bit facts).
	Precise string
	LLVM    string
}

// F parses the fragment's source at the paper's width.
func (fr Fragment) F() *ir.Function { return ir.MustParse(fr.Source) }

// TestSource returns the solver-friendly source (the reduced variant when
// one exists).
func (fr Fragment) TestSource() string {
	if fr.Reduced != "" {
		return fr.Reduced
	}
	return fr.Source
}

// TestF parses the solver-friendly source.
func (fr Fragment) TestF() *ir.Function { return ir.MustParse(fr.TestSource()) }

// PaperFragments are the imprecision examples of §4.2–4.5, exactly as
// printed in the paper (bitwidths included).
var PaperFragments = []Fragment{
	{
		Name: "shl-const-by-var", Section: "4.2.1", Analysis: KnownBits,
		Source:  "%x:i8 = var\n%0:i8 = shl 32:i8, %x\ninfer %0",
		Precise: "xxx00000", LLVM: "xxxxxxxx",
	},
	{
		Name: "zext-lshr", Section: "4.2.1", Analysis: KnownBits,
		Source:  "%x:i4 = var\n%y:i8 = var\n%0:i8 = zext %x\n%1:i8 = lshr %0, %y\ninfer %1",
		Precise: "0000xxxx", LLVM: "xxxxxxxx",
	},
	{
		Name: "add-low-bit-correlation", Section: "4.2.1", Analysis: KnownBits,
		Source:  "%x:i8 = var\n%0:i8 = and 1:i8, %x\n%1:i8 = add %x, %0\ninfer %1",
		Precise: "xxxxxxx0", LLVM: "xxxxxxxx",
	},
	{
		Name: "mul-nsw-srem", Section: "4.2.1", Analysis: KnownBits,
		Source:  "%x:i8 = var\n%0:i8 = mulnsw 10:i8, %x\n%1:i8 = srem %0, 10:i8\ninfer %1",
		Precise: "00000000", LLVM: "xxxxxxxx",
	},
	{
		Name: "range-add-one", Section: "4.2.1", Analysis: KnownBits,
		Source:  "%x:i8 = var (range=[0,5))\n%0:i8 = add 1:i8, %x\ninfer %0",
		Precise: "00000xxx", LLVM: "0000xxxx",
	},
	{
		Name: "pow2-from-range", Section: "4.3", Analysis: PowerOfTwo,
		Source:  "%x:i32 = var (range=[1,3))\ninfer %x",
		Reduced: "%x:i16 = var (range=[1,3))\ninfer %x",
		Precise: "yes", LLVM: "no",
	},
	{
		Name: "pow2-isolate-low-bit", Section: "4.3", Analysis: PowerOfTwo,
		Source:  "%x:i64 = var (range=[1,0))\n%0:i64 = sub 0:i64, %x\n%1:i64 = and %x, %0\ninfer %1",
		Reduced: "%x:i16 = var (range=[1,0))\n%0:i16 = sub 0:i16, %x\n%1:i16 = and %x, %0\ninfer %1",
		Precise: "yes", LLVM: "no",
	},
	{
		Name: "pow2-trunc-shl", Section: "4.3", Analysis: PowerOfTwo,
		Source:  "%x:i32 = var\n%0:i32 = and 7:i32, %x\n%1:i32 = shl 1:i32, %0\n%2:i8 = trunc %1\ninfer %2",
		Reduced: "%x:i16 = var\n%0:i16 = and 7:i16, %x\n%1:i16 = shl 1:i16, %0\n%2:i8 = trunc %1\ninfer %2",
		Precise: "yes", LLVM: "no",
	},
	{
		Name: "demanded-icmp-sign", Section: "4.4", Analysis: DemandedBits,
		Source:  "%x:i8 = var\n%0:i1 = slt %x, 0:i8\ninfer %0",
		Precise: "10000000", LLVM: "11111111",
	},
	{
		Name: "demanded-udiv-1000", Section: "4.4", Analysis: DemandedBits,
		Source:  "%x:i16 = var\n%0:i16 = udiv %x, 1000:i16\ninfer %0",
		Precise: "1111111111111000", LLVM: "1111111111111111",
	},
	{
		Name: "range-select-nonzero", Section: "4.5", Analysis: IntegerRange,
		Source:  "%x:i32 = var\n%0:i1 = eq 0:i32, %x\n%1:i32 = select %0, 1:i32, %x\ninfer %1",
		Reduced: "%x:i16 = var\n%0:i1 = eq 0:i16, %x\n%1:i16 = select %0, 1:i16, %x\ninfer %1",
		Precise: "[1,0)", LLVM: "full set",
	},
	{
		Name: "range-and-allones", Section: "4.5", Analysis: IntegerRange,
		Source:  "%x:i32 = var (range=[1,7))\n%0:i32 = and 4294967295:i32, %x\ninfer %0",
		Reduced: "%x:i16 = var (range=[1,7))\n%0:i16 = and 65535:i16, %x\ninfer %0",
		Precise: "[1,7)", LLVM: "[0,7)",
	},
	{
		Name: "range-srem-8", Section: "4.5", Analysis: IntegerRange,
		Source:  "%x:i32 = var\n%0:i32 = srem %x, 8:i32\ninfer %0",
		Reduced: "%x:i16 = var\n%0:i16 = srem %x, 8:i16\ninfer %0",
		Precise: "[-7,8)", LLVM: "[-8,8)",
	},
	{
		Name: "range-udiv-128", Section: "4.5", Analysis: IntegerRange,
		Source:  "%x:i64 = var\n%0:i64 = udiv 128:i64, %x\ninfer %0",
		Reduced: "%x:i16 = var\n%0:i16 = udiv 128:i16, %x\ninfer %0",
		Precise: "[0,129)", LLVM: "full set",
	},
}

// SoundnessTrigger is a §4.7 expression that exposes an injected
// historical bug.
type SoundnessTrigger struct {
	Name     string
	Bug      int // 1..3, matching llvmport.BugConfig fields
	Analysis Analysis
	Source   string
	// The paper's reported outputs.
	OracleFact    string
	BuggyLLVMFact string
}

// SoundnessTriggers are the §4.7 trigger expressions.
var SoundnessTriggers = []SoundnessTrigger{
	{
		// The paper's trivial trigger: both summands are the constant
		// zero, which is of course non-negative — and zero.
		Name: "nonzero-add-of-nonneg", Bug: 1, Analysis: NonZero,
		Source:        "%0:i32 = add 0:i32, 0:i32\ninfer %0",
		OracleFact:    "false",
		BuggyLLVMFact: "true",
	},
	{
		Name: "srem-sign-bits", Bug: 2, Analysis: SignBits,
		Source:        "%0:i32 = var\n%1:i32 = srem %0, 3:i32\ninfer %1",
		OracleFact:    "30",
		BuggyLLVMFact: "31",
	},
	{
		Name: "srem-known-bits", Bug: 3, Analysis: KnownBits,
		Source:        "%0:i8 = var\n%1:i8 = srem 4:i8, %0\ninfer %1",
		OracleFact:    "00000x0x",
		BuggyLLVMFact: "00000x00",
	},
}
