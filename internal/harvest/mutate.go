package harvest

import (
	"math/rand"

	"dfcheck/internal/apint"
	"dfcheck/internal/ir"
)

// Mutate returns a structurally valid variant of f with one random edit
// applied: a constant tweaked, a commutative operation's operands swapped,
// an operation replaced within its class, or a poison flag toggled. The
// fuzzing loop uses mutants to probe near-misses of expressions already
// seen, the way Csmith-style differential testing mutates its seeds
// (§4.7's workflow).
func Mutate(f *ir.Function, rng *rand.Rand) *ir.Function {
	insts := f.Insts()
	// Collect mutable instructions (non-leaves).
	var mutable []*ir.Inst
	for _, n := range insts {
		if !n.IsVar() && !n.IsConst() {
			mutable = append(mutable, n)
		}
	}
	if len(mutable) == 0 {
		return f
	}
	target := mutable[rng.Intn(len(mutable))]
	kind := rng.Intn(4)

	b := ir.NewBuilder()
	rebuilt := make(map[*ir.Inst]*ir.Inst)
	for _, n := range insts {
		rebuilt[n] = rebuildMutated(b, n, rebuilt, target, kind, rng)
	}
	out := b.Function(rebuilt[f.Root])
	if err := ir.Verify(out); err != nil {
		panic("harvest: mutation produced invalid function: " + err.Error())
	}
	return out
}

func rebuildMutated(b *ir.Builder, n *ir.Inst, done map[*ir.Inst]*ir.Inst,
	target *ir.Inst, kind int, rng *rand.Rand) *ir.Inst {
	switch n.Op {
	case ir.OpVar:
		if n.HasRange {
			return b.VarRange(n.Name, n.Width, n.Lo, n.Hi)
		}
		return b.Var(n.Name, n.Width)
	case ir.OpConst:
		return b.Const(n.Val)
	}

	args := make([]*ir.Inst, len(n.Args))
	for i, a := range n.Args {
		args[i] = done[a]
	}
	op, flags := n.Op, n.Flags

	if n == target {
		switch kind {
		case 0:
			// Tweak a constant operand (or inject one in place of the
			// second operand when none exists and widths allow).
			for i, a := range n.Args {
				if a.IsConst() {
					delta := apint.New(a.Width, uint64(1+rng.Intn(4)))
					args[i] = b.Const(a.ConstValue().Add(delta))
					break
				}
			}
		case 1:
			// Swap operands of a two-operand op.
			if len(args) == 2 && args[0].Width == args[1].Width {
				args[0], args[1] = args[1], args[0]
			}
		case 2:
			// Replace the op within its class (width- and arity-
			// preserving).
			op = replaceOp(op, rng)
			if op.ValidFlags()&flags != flags {
				flags &= op.ValidFlags()
			}
		case 3:
			// Toggle a legal flag.
			valid := op.ValidFlags()
			if valid != 0 {
				choices := []ir.Flags{ir.FlagNSW, ir.FlagNUW, ir.FlagExact}
				for _, fl := range choices {
					if valid&fl != 0 && rng.Intn(2) == 0 {
						flags ^= fl
					}
				}
			}
		}
	}

	if op.IsCast() {
		return b.BuildCast(op, n.Width, args[0])
	}
	return b.Build(op, flags, args...)
}

// replaceOp picks another op from the same interchangeable class.
var opClasses = [][]ir.Op{
	{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpUMin, ir.OpUMax, ir.OpSMin, ir.OpSMax},
	{ir.OpUDiv, ir.OpSDiv, ir.OpURem, ir.OpSRem},
	{ir.OpShl, ir.OpLShr, ir.OpAShr, ir.OpRotL, ir.OpRotR},
	{ir.OpEq, ir.OpNe, ir.OpULT, ir.OpULE, ir.OpSLT, ir.OpSLE, ir.OpUAddO, ir.OpSAddO, ir.OpUSubO, ir.OpSSubO, ir.OpUMulO, ir.OpSMulO},
	{ir.OpCtPop, ir.OpCttz, ir.OpCtlz, ir.OpBitReverse, ir.OpAbs},
	{ir.OpFshl, ir.OpFshr},
}

func replaceOp(op ir.Op, rng *rand.Rand) ir.Op {
	for _, class := range opClasses {
		for _, member := range class {
			if member == op {
				next := class[rng.Intn(len(class))]
				// Flags are filtered by the caller.
				return next
			}
		}
	}
	return op // bswap, casts, select: no same-shape replacement
}
