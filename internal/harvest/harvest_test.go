package harvest

import (
	"math/rand"
	"strings"
	"testing"

	"dfcheck/internal/eval"
	"dfcheck/internal/ir"
)

func TestPaperFragmentsParse(t *testing.T) {
	if len(PaperFragments) != 14 {
		t.Errorf("fragment count = %d, want 14 (5 known-bits + 3 pow2 + 2 demanded + 4 range)", len(PaperFragments))
	}
	for _, fr := range PaperFragments {
		f := fr.F()
		if err := ir.Verify(f); err != nil {
			t.Errorf("%s: %v", fr.Name, err)
		}
		if fr.Precise == "" || fr.LLVM == "" || fr.Section == "" {
			t.Errorf("%s: incomplete metadata", fr.Name)
		}
	}
}

func TestSoundnessTriggersParse(t *testing.T) {
	if len(SoundnessTriggers) != 3 {
		t.Fatalf("trigger count = %d, want 3", len(SoundnessTriggers))
	}
	bugs := map[int]bool{}
	for _, tr := range SoundnessTriggers {
		if err := ir.Verify(ir.MustParse(tr.Source)); err != nil {
			t.Errorf("%s: %v", tr.Name, err)
		}
		bugs[tr.Bug] = true
	}
	for b := 1; b <= 3; b++ {
		if !bugs[b] {
			t.Errorf("no trigger for bug %d", b)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, NumExprs: 50}
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("counts = %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].F.String() != b[i].F.String() {
			t.Fatalf("expression %d differs between runs", i)
		}
		if a[i].Freq != b[i].Freq {
			t.Fatalf("frequency %d differs between runs", i)
		}
	}
	// Different seeds give different corpora.
	c := Generate(Config{Seed: 8, NumExprs: 50})
	same := 0
	for i := range a {
		if a[i].F.String() == c[i].F.String() {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical corpus")
	}
}

func TestGeneratedExpressionsValid(t *testing.T) {
	corpus := Generate(Config{Seed: 3, NumExprs: 300})
	for _, e := range corpus {
		if err := ir.Verify(e.F); err != nil {
			t.Fatalf("%s invalid: %v\n%s", e.Name, err, e.F)
		}
		if e.F.NumInsts() < 1 {
			t.Errorf("%s has no instructions", e.Name)
		}
		if e.Freq < 1 {
			t.Errorf("%s has frequency %d", e.Name, e.Freq)
		}
	}
}

func TestGeneratedExpressionsEvaluable(t *testing.T) {
	// Every generated expression must round-trip through the printer and
	// be evaluable (not crash) on random inputs.
	corpus := Generate(Config{Seed: 11, NumExprs: 150})
	rng := rand.New(rand.NewSource(5))
	for _, e := range corpus {
		f2, err := ir.Parse(e.F.String())
		if err != nil {
			t.Fatalf("%s: reparse failed: %v\n%s", e.Name, err, e.F)
		}
		if f2.String() != e.F.String() {
			t.Fatalf("%s: print/parse not stable", e.Name)
		}
		for i := 0; i < 20; i++ {
			env := eval.RandomEnv(e.F, rng)
			eval.Eval(e.F, env) // must not panic
		}
	}
}

func TestDuplicationModelMatchesPaper(t *testing.T) {
	// With a large sample the duplication quantiles must land near the
	// §3.1 numbers: 71.6% > 1x, 11.4% > 10x, 1.6% > 100x.
	rng := rand.New(rand.NewSource(1))
	n := 200000
	var more1, more10, more100 int
	for i := 0; i < n; i++ {
		f := sampleFreq(rng)
		if f > 1 {
			more1++
		}
		if f > 10 {
			more10++
		}
		if f > 100 {
			more100++
		}
	}
	p1 := 100 * float64(more1) / float64(n)
	p10 := 100 * float64(more10) / float64(n)
	p100 := 100 * float64(more100) / float64(n)
	if p1 < 69 || p1 > 74 {
		t.Errorf(">1x = %.1f%%, want ~71.6%%", p1)
	}
	if p10 < 9.5 || p10 > 13.5 {
		t.Errorf(">10x = %.1f%%, want ~11.4%%", p10)
	}
	if p100 < 1.0 || p100 > 2.4 {
		t.Errorf(">100x = %.1f%%, want ~1.6%%", p100)
	}
}

func TestComputeStats(t *testing.T) {
	corpus := []Expr{
		{Name: "a", F: ir.MustParse("%x:i8 = var\n%0:i8 = add %x, 1:i8\ninfer %0"), Freq: 1},
		{Name: "b", F: ir.MustParse("%x:i8 = var\n%0:i8 = add %x, %x\n%1:i8 = mul %0, %0\ninfer %1"), Freq: 200},
		{Name: "c", F: ir.MustParse("%x:i8 = var\n%0:i8 = xor %x, 3:i8\ninfer %0"), Freq: 11},
		{Name: "d", F: ir.MustParse("%x:i8 = var\ninfer %x"), Freq: 2},
	}
	s := ComputeStats(corpus)
	if s.Unique != 4 {
		t.Errorf("unique = %d", s.Unique)
	}
	if s.TotalEncounters != 214 {
		t.Errorf("total = %d", s.TotalEncounters)
	}
	if s.PctMoreThan1 != 75 {
		t.Errorf(">1 = %.1f", s.PctMoreThan1)
	}
	if s.PctMoreThan10 != 50 {
		t.Errorf(">10 = %.1f", s.PctMoreThan10)
	}
	if s.PctMoreThan100 != 25 {
		t.Errorf(">100 = %.1f", s.PctMoreThan100)
	}
	if s.MaxInsts != 2 {
		t.Errorf("max insts = %d", s.MaxInsts)
	}
	if s.AvgInsts != 1.0 {
		t.Errorf("avg insts = %.2f", s.AvgInsts)
	}
	if s.String() == "" {
		t.Error("empty render")
	}
	if got := ComputeStats(nil); got.Unique != 0 {
		t.Error("empty corpus stats wrong")
	}
}

func TestGenerateWithCustomWidths(t *testing.T) {
	// Small widths for solver-friendly corpora.
	corpus := Generate(Config{
		Seed: 2, NumExprs: 60,
		Widths:   []WidthWeight{{4, 1}},
		MaxInsts: 6,
	})
	for _, e := range corpus {
		if w := e.F.Width(); w != 4 && w != 1 {
			// Casts can move width, but the root should mostly be the
			// base; allow i1 (comparison roots) and cast targets.
			if e.F.Width() > 8 {
				t.Errorf("%s: unexpected root width %d\n%s", e.Name, w, e.F)
			}
		}
	}
}

func TestAllAnalysesOrder(t *testing.T) {
	want := []Analysis{KnownBits, SignBits, NonZero, Negative, NonNegative, PowerOfTwo, IntegerRange, DemandedBits}
	if len(AllAnalyses) != len(want) {
		t.Fatalf("AllAnalyses = %v", AllAnalyses)
	}
	for i := range want {
		if AllAnalyses[i] != want[i] {
			t.Errorf("AllAnalyses[%d] = %v, want %v (paper order)", i, AllAnalyses[i], want[i])
		}
	}
}

func TestStreamingStatsMatchesGenerate(t *testing.T) {
	cfg := Config{Seed: 31, NumExprs: 400, MaxInsts: 20}
	streamed := StreamingStats(cfg)
	batch := ComputeStats(Generate(cfg))
	if streamed != batch {
		t.Errorf("streaming stats %+v != batch stats %+v", streamed, batch)
	}
}

func TestCorpusRoundTrip(t *testing.T) {
	corpus := Generate(Config{Seed: 17, NumExprs: 80, MaxInsts: 8})
	var buf strings.Builder
	if err := WriteCorpus(&buf, corpus); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCorpus(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(corpus) {
		t.Fatalf("round trip count = %d, want %d", len(back), len(corpus))
	}
	for i := range corpus {
		if back[i].Name != corpus[i].Name || back[i].Freq != corpus[i].Freq {
			t.Fatalf("record %d metadata differs", i)
		}
		if back[i].F.String() != corpus[i].F.String() {
			t.Fatalf("record %d expression differs:\n%s\nvs\n%s", i, back[i].F, corpus[i].F)
		}
	}
}

func TestReadCorpusErrors(t *testing.T) {
	cases := []struct{ name, src, wantErr string }{
		{"nested", "expr a 1\nexpr b 1\n", "nested"},
		{"bad freq", "expr a zero\n", "bad frequency"},
		{"neg freq", "expr a -2\n", "bad frequency"},
		{"end without expr", "end\n", "end without expr"},
		{"unterminated", "expr a 1\n\t%x:i8 = var\n\tinfer %x\n", "unterminated"},
		{"bad body", "expr a 1\n\tgarbage\nend\n", "record \"a\""},
		{"stray text", "hello\n", "unexpected text"},
	}
	for _, c := range cases {
		_, err := ReadCorpus(strings.NewReader(c.src))
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error = %v, want substring %q", c.name, err, c.wantErr)
		}
	}
	// Comments and blank lines between records are fine.
	ok := "# a comment\n\nexpr a 3\n\t%x:i8 = var\n\tinfer %x\nend\n"
	corpus, err := ReadCorpus(strings.NewReader(ok))
	if err != nil || len(corpus) != 1 || corpus[0].Freq != 3 {
		t.Errorf("comment handling: %v, %d records", err, len(corpus))
	}
}

func TestMutateProducesValidVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	corpus := Generate(Config{Seed: 21, NumExprs: 80, MaxInsts: 8})
	differed := 0
	for _, e := range corpus {
		for i := 0; i < 5; i++ {
			m := Mutate(e.F, rng)
			if err := ir.Verify(m); err != nil {
				t.Fatalf("%s: mutant invalid: %v\n%s", e.Name, err, m)
			}
			if m.String() != e.F.String() {
				differed++
			}
			// Mutants must be evaluable without panics.
			for j := 0; j < 5; j++ {
				eval.Eval(m, eval.RandomEnv(m, rng))
			}
		}
	}
	if differed == 0 {
		t.Error("no mutation ever changed an expression")
	}
}

func TestMutateVarOnlyFunctionIsIdentity(t *testing.T) {
	f := ir.MustParse("%x:i8 = var\ninfer %x")
	m := Mutate(f, rand.New(rand.NewSource(1)))
	if m.String() != f.String() {
		t.Errorf("var-only mutation changed the function:\n%s", m)
	}
}
