package campaign

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dfcheck/internal/compare"
)

// TestFingerprintCoversResultKnobs is the checkpoint-safety contract:
// every knob that can change what the remaining batches compute must
// change the fingerprint, so -resume under a changed knob is rejected
// instead of silently continuing a different experiment. The two
// documented exclusions — Workers and PortfolioSeed — are asserted
// result-equivalent elsewhere (TestParallelRunMatchesSequential and the
// portfolio-seed equivalence tests) and must NOT change it.
func TestFingerprintCoversResultKnobs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	base := New(testConfig(11, 2), testComparator())
	if err := base.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}

	knobs := []struct {
		name   string
		mutate func(cfg *Config, c *compare.Comparator)
	}{
		{"seed", func(cfg *Config, c *compare.Comparator) { cfg.Seed++ }},
		{"batches", func(cfg *Config, c *compare.Comparator) { cfg.Batches++ }},
		{"num-exprs", func(cfg *Config, c *compare.Comparator) { cfg.NumExprs++ }},
		{"max-insts", func(cfg *Config, c *compare.Comparator) { cfg.MaxInsts++ }},
		{"widths", func(cfg *Config, c *compare.Comparator) { cfg.Widths[0].Weight++ }},
		{"max-cast-width", func(cfg *Config, c *compare.Comparator) { cfg.MaxCastWidth = 16 }},
		{"mutants", func(cfg *Config, c *compare.Comparator) { cfg.Mutants++ }},
		{"canaries", func(cfg *Config, c *compare.Comparator) { cfg.Canaries = !cfg.Canaries }},
		{"budget", func(cfg *Config, c *compare.Comparator) { c.Budget++ }},
		{"expr-timeout", func(cfg *Config, c *compare.Comparator) { c.ExprTimeout++ }},
		{"bug1", func(cfg *Config, c *compare.Comparator) { c.Analyzer.Bugs.NonZeroAdd = true }},
		{"bug2", func(cfg *Config, c *compare.Comparator) { c.Analyzer.Bugs.SRemSignBits = true }},
		{"bug3", func(cfg *Config, c *compare.Comparator) { c.Analyzer.Bugs.SRemKnownBits = false }},
		{"modern", func(cfg *Config, c *compare.Comparator) { c.Analyzer.Modern = true }},
		{"consistency", func(cfg *Config, c *compare.Comparator) { c.Consistency = true }},
		{"no-seed", func(cfg *Config, c *compare.Comparator) { c.NoSeed = true }},
		{"no-strash", func(cfg *Config, c *compare.Comparator) { c.NoStrash = true }},
		{"enum-cutoff", func(cfg *Config, c *compare.Comparator) { c.EnumCutoff = -1 }},
		{"portfolio", func(cfg *Config, c *compare.Comparator) { c.Portfolio = 3 }},
		{"portfolio-after", func(cfg *Config, c *compare.Comparator) { c.PortfolioAfter = 1 }},
		{"nway", func(cfg *Config, c *compare.Comparator) { c.NWay = true }},
		{"reduce", func(cfg *Config, c *compare.Comparator) { c.Reduce = true }},
		// The serving knobs: external fact-service traffic warms the
		// cache nondeterministically between batches, so a checkpoint
		// written while serving must not resume unserved (and a changed
		// shard count records a changed serving setup).
		{"factsvc", func(cfg *Config, c *compare.Comparator) { cfg.FactSvc = true }},
		{"shards", func(cfg *Config, c *compare.Comparator) { cfg.CacheShards = 8 }},
	}
	baseFP := base.Fingerprint()
	for _, k := range knobs {
		cfg := testConfig(11, 2)
		cmp := testComparator()
		k.mutate(&cfg, cmp)
		changed := New(cfg, cmp)
		if changed.Fingerprint() == baseFP {
			t.Errorf("%s: knob change did not change the fingerprint", k.name)
			continue
		}
		if err := changed.Resume(path); err == nil || !strings.Contains(err.Error(), "different configuration") {
			t.Errorf("%s: resume under changed knob not rejected: %v", k.name, err)
		}
	}

	// Documented exclusions: scheduling and clone-racing seeds do not
	// affect results, so changing them must keep checkpoints resumable.
	for _, k := range []struct {
		name   string
		mutate func(c *compare.Comparator)
	}{
		{"workers", func(c *compare.Comparator) { c.Workers = 1 }},
		{"portfolio-seed", func(c *compare.Comparator) { c.PortfolioSeed = 42 }},
	} {
		cmp := testComparator()
		k.mutate(cmp)
		same := New(testConfig(11, 2), cmp)
		if same.Fingerprint() != baseFP {
			t.Errorf("%s: result-equivalent knob changed the fingerprint", k.name)
		}
		if err := same.Resume(path); err != nil {
			t.Errorf("%s: resume under result-equivalent knob rejected: %v", k.name, err)
		}
	}
}

// nwayComparator is the bug-3 test comparator with the n-way pre-filter
// and the reducer on: canary-bug3 yields a variant-contradiction finding
// with a reduced reproducer in every batch.
func nwayComparator() *compare.Comparator {
	c := testComparator()
	c.NWay = true
	c.Reduce = true
	return c
}

// TestCheckpointPreservesNWayState: variant findings, their reduced
// reproducers, and the cumulative pre-filter totals must survive a
// save/resume round-trip unreclassified.
func TestCheckpointPreservesNWayState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	c := New(testConfig(11, 1), nwayComparator())
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var planted *compare.Finding
	for i := range c.Totals.Findings {
		if c.Totals.Findings[i].Kind == compare.FindingVariant {
			planted = &c.Totals.Findings[i]
		}
	}
	if planted == nil {
		t.Fatal("n-way campaign produced no variant finding; canaries+bug3 broken")
	}
	if planted.Reduced == "" {
		t.Fatalf("variant finding not reduced: %+v", *planted)
	}
	if c.Totals.NWay == nil || c.Totals.NWay.Exprs == 0 {
		t.Fatalf("n-way totals not accumulated: %+v", c.Totals.NWay)
	}
	if err := c.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}

	r := New(testConfig(11, 1), nwayComparator())
	if err := r.Resume(path); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Totals.NWay, c.Totals.NWay) {
		t.Fatalf("n-way totals did not round-trip: %+v vs %+v", r.Totals.NWay, c.Totals.NWay)
	}
	var got *compare.Finding
	for i := range r.Totals.Findings {
		if r.Totals.Findings[i].Kind == compare.FindingVariant {
			got = &r.Totals.Findings[i]
		}
	}
	if got == nil {
		t.Fatalf("variant finding lost in round-trip: %+v", r.Totals.Findings)
	}
	if got.Result.Outcome != compare.VariantsContradict {
		t.Fatalf("variant finding reclassified on resume: %+v", *got)
	}
	if got.Reduced != planted.Reduced || got.ReduceSteps != planted.ReduceSteps {
		t.Fatalf("reduced reproducer lost on resume:\nsaved:   %q (%d steps)\nresumed: %q (%d steps)",
			planted.Reduced, planted.ReduceSteps, got.Reduced, got.ReduceSteps)
	}

	// Resuming an n-way checkpoint without -nway changes what the
	// remaining batches test and must be rejected.
	plain := New(testConfig(11, 1), testComparator())
	if err := plain.Resume(path); err == nil || !strings.Contains(err.Error(), "configuration") {
		t.Fatalf("resume without -nway not rejected: %v", err)
	}
}

// TestCampaignPortfolioSeedEquivalence runs the same campaign (EnumCutoff
// -1 so the SAT engine is always in the loop, PortfolioAfter 1 so nearly
// every query races clones) under two portfolio seeds: tallies and
// findings must be identical — only which clone wins a race may vary —
// which is what justifies excluding the seed from the fingerprint.
func TestCampaignPortfolioSeedEquivalence(t *testing.T) {
	run := func(seed int64) *Campaign {
		cmp := testComparator()
		cmp.Budget = 0 // default budget: equivalence needs to stay off budget edges
		cmp.EnumCutoff = -1
		cmp.Portfolio = 3
		cmp.PortfolioAfter = 1
		cmp.PortfolioSeed = seed
		c := New(testConfig(17, 1), cmp)
		if err := c.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := run(0), run(99)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("portfolio seed leaked into the fingerprint:\n%s\nvs\n%s", a.Fingerprint(), b.Fingerprint())
	}
	if !reflect.DeepEqual(comparableTotals(a.Totals), comparableTotals(b.Totals)) {
		t.Fatalf("portfolio seed changed campaign results:\nseed 0:  %+v\nseed 99: %+v",
			comparableTotals(a.Totals), comparableTotals(b.Totals))
	}
	for _, row := range a.Totals.Rows {
		if row.Exhausted != 0 {
			t.Fatalf("%s: %d expressions exhausted; the equivalence corpus must stay off budget edges",
				row.Analysis, row.Exhausted)
		}
	}
}
