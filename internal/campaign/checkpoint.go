package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dfcheck/internal/compare"
	"dfcheck/internal/harvest"
	"dfcheck/internal/llvmport"
)

// The checkpoint file is one JSON document: a version/tool header, the
// configuration fingerprint it was produced under, the next batch to
// run, and the cumulative tallies and findings. Like the result cache it
// is written atomically (temp file + rename) so a kill mid-write leaves
// the previous checkpoint intact, and loading validates everything
// before touching the campaign.

// CheckpointVersion identifies the state-file layout. Any other version
// fails to load rather than being misinterpreted.
const CheckpointVersion = 1

const checkpointTool = "dfcheck-campaign"

type wireRow struct {
	Analysis  string `json:"analysis"`
	Same      int    `json:"same"`
	OracleMP  int    `json:"oracle_more_precise"`
	LLVMMP    int    `json:"llvm_more_precise"`
	Exhausted int    `json:"resource_exhausted"`
	Exprs     int    `json:"exprs"`
	CPUTimeNs int64  `json:"cpu_time_ns"`
}

type wireFinding struct {
	Expr string `json:"expr"`
	// Kind is "soundness" (oracle disagreement; also the meaning of an
	// absent field in pre-consistency checkpoints), "consistency"
	// (cross-domain contradiction), or "nway" (variant contradiction).
	Kind       string `json:"kind,omitempty"`
	Source     string `json:"source"`
	Analysis   string `json:"analysis"`
	Var        string `json:"var,omitempty"`
	OracleFact string `json:"oracle_fact"`
	LLVMFact   string `json:"llvm_fact"`
	// Reduced carries the 1-minimal reproducer when the campaign ran with
	// the reducer enabled.
	Reduced     string `json:"reduced,omitempty"`
	ReduceSteps int    `json:"reduce_steps,omitempty"`
}

// wireNWay persists the cumulative n-way pre-filter totals.
type wireNWay struct {
	Exprs          int `json:"exprs"`
	Agreed         int `json:"agreed"`
	Escalated      int `json:"escalated"`
	Dead           int `json:"dead"`
	Comparisons    int `json:"comparisons"`
	Disagreements  int `json:"disagreements"`
	Contradictions int `json:"contradictions"`
}

type wireCheckpoint struct {
	Version           int           `json:"version"`
	Tool              string        `json:"tool"`
	Config            string        `json:"config"`
	Seed              int64         `json:"seed"`
	NextBatch         int           `json:"next_batch"`
	Batches           int           `json:"batches_done"`
	Exprs             int           `json:"exprs"`
	ConsistencyChecks int           `json:"consistency_checks,omitempty"`
	NWay              *wireNWay     `json:"nway,omitempty"`
	Rows              []wireRow     `json:"rows"`
	Findings          []wireFinding `json:"findings"`
}

// Fingerprint renders every configuration knob that determines the
// campaign's results. A checkpoint only resumes under the fingerprint it
// was written with: resuming a -bug3 campaign without -bug3 would
// silently change what the remaining batches test — and the same holds
// for the ablation flags (-no-seed, -no-strash, -enum-cutoff,
// -portfolio, -portfolio-after), the n-way/reducer modes, and the
// extended-lint domain set (-domains), all of which change which
// results and findings the remaining batches can produce.
//
// Deliberately excluded, with the tests that justify each exclusion:
// Workers (scheduling only; TestParallelRunMatchesSequential in
// internal/compare) and PortfolioSeed (perturbs which portfolio clone
// wins, never what it concludes; TestPortfolioSeedEquivalence in
// internal/compare and TestCampaignPortfolioSeedEquivalence here).
//
// The serving knobs (FactSvc, CacheShards) are conservatively INCLUDED:
// they have no equivalence test, and a serving campaign admits external
// query traffic that warms the cache nondeterministically between
// batches — resuming a served checkpoint unserved (or vice versa) is a
// different experiment.
func (c *Campaign) Fingerprint() string {
	var an llvmport.Analyzer
	if c.Comparator != nil && c.Comparator.Analyzer != nil {
		an = *c.Comparator.Analyzer
	}
	cmp := c.Comparator
	if cmp == nil {
		cmp = &compare.Comparator{}
	}
	var budget int64 = cmp.Budget
	var exprTimeout time.Duration = cmp.ExprTimeout
	widths := ""
	for _, w := range c.Widths {
		widths += fmt.Sprintf("%d:%d,", w.Width, w.Weight)
	}
	return fmt.Sprintf("seed=%d;batches=%d;n=%d;max-insts=%d;widths=%s;max-width=%d;mutants=%d;canaries=%t;"+
		"budget=%d;expr-timeout=%s;bug-nonzero=%t;bug-sremsign=%t;bug-sremknown=%t;modern=%t;consistency=%t;"+
		"domains=%s;"+
		"no-seed=%t;no-strash=%t;enum-cutoff=%d;portfolio=%d;portfolio-after=%d;nway=%t;reduce=%t;"+
		"factsvc=%t;shards=%d",
		c.Seed, c.Batches, c.NumExprs, c.MaxInsts, widths, c.MaxCastWidth, c.Mutants, c.Canaries,
		budget, exprTimeout, an.Bugs.NonZeroAdd, an.Bugs.SRemSignBits, an.Bugs.SRemKnownBits, an.Modern,
		cmp.Consistency, cmp.DomainNames(),
		cmp.NoSeed, cmp.NoStrash, cmp.EnumCutoff, cmp.Portfolio, cmp.PortfolioAfter, cmp.NWay, cmp.Reduce,
		c.FactSvc, c.CacheShards)
}

// SaveCheckpoint writes the campaign state to path atomically: the file
// either holds the previous checkpoint or the new one, never a torn mix.
func (c *Campaign) SaveCheckpoint(path string) error {
	w := wireCheckpoint{
		Version:   CheckpointVersion,
		Tool:      checkpointTool,
		Config:    c.Fingerprint(),
		Seed:      c.Seed,
		NextBatch: c.NextBatch,
		Batches:   c.Totals.Batches,
		Exprs:     c.Totals.Exprs,
		Findings:  []wireFinding{},

		ConsistencyChecks: c.Totals.ConsistencyChecks,
	}
	if n := c.Totals.NWay; n != nil {
		w.NWay = &wireNWay{
			Exprs:          n.Exprs,
			Agreed:         n.Agreed,
			Escalated:      n.Escalated,
			Dead:           n.Dead,
			Comparisons:    n.Comparisons,
			Disagreements:  n.Disagreements,
			Contradictions: n.Contradictions,
		}
	}
	for _, a := range harvest.AllAnalyses {
		row := c.Totals.Rows[a]
		if row == nil {
			continue
		}
		w.Rows = append(w.Rows, wireRow{
			Analysis:  string(a),
			Same:      row.Same,
			OracleMP:  row.OracleMP,
			LLVMMP:    row.LLVMMP,
			Exhausted: row.Exhausted,
			Exprs:     row.Exprs,
			CPUTimeNs: int64(row.CPUTime),
		})
	}
	for _, f := range c.Totals.Findings {
		kind := f.Kind
		if kind == "" {
			kind = compare.FindingSoundness
		}
		w.Findings = append(w.Findings, wireFinding{
			Expr:        f.ExprName,
			Kind:        string(kind),
			Source:      f.Source,
			Analysis:    string(f.Result.Analysis),
			Var:         f.Result.Var,
			OracleFact:  f.Result.OracleFact,
			LLVMFact:    f.Result.LLVMFact,
			Reduced:     f.Reduced,
			ReduceSteps: f.ReduceSteps,
		})
	}
	data, err := json.MarshalIndent(w, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	data = append(data, '\n')

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Resume restores the campaign state from a checkpoint file written by
// SaveCheckpoint. The checkpoint's configuration fingerprint must match
// this campaign's exactly; a mismatch is an error, not a silent restart
// under different settings. Resume validates the whole file before
// modifying the campaign.
func (c *Campaign) Resume(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	var w wireCheckpoint
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if w.Tool != checkpointTool {
		return fmt.Errorf("checkpoint %s: not a %s state file (tool %q)", path, checkpointTool, w.Tool)
	}
	if w.Version != CheckpointVersion {
		return fmt.Errorf("checkpoint %s: version %d, want %d", path, w.Version, CheckpointVersion)
	}
	if got := c.Fingerprint(); w.Config != got {
		return fmt.Errorf("checkpoint %s was written under a different configuration:\n  checkpoint: %s\n  current:    %s",
			path, w.Config, got)
	}
	valid := make(map[string]bool, len(harvest.AllAnalyses))
	for _, a := range harvest.AllAnalyses {
		valid[string(a)] = true
	}
	for _, row := range w.Rows {
		if !valid[row.Analysis] {
			return fmt.Errorf("checkpoint %s: unknown analysis %q", path, row.Analysis)
		}
	}
	// Findings may additionally be labeled with the consistency lint or
	// the transfer domains (n-way contradictions in tnum/stride carry
	// those names); none of these ever contributes a Table 1 row.
	valid[string(compare.ConsistencyAnalysis)] = true
	valid[string(harvest.Tnum)] = true
	valid[string(harvest.Stride)] = true
	for _, f := range w.Findings {
		if !valid[f.Analysis] {
			return fmt.Errorf("checkpoint %s: unknown analysis %q in finding", path, f.Analysis)
		}
	}

	t := newTotals()
	t.Batches = w.Batches
	t.Exprs = w.Exprs
	t.ConsistencyChecks = w.ConsistencyChecks
	for _, row := range w.Rows {
		t.Rows[harvest.Analysis(row.Analysis)] = &compare.Row{
			Analysis:  harvest.Analysis(row.Analysis),
			Same:      row.Same,
			OracleMP:  row.OracleMP,
			LLVMMP:    row.LLVMMP,
			Exhausted: row.Exhausted,
			Exprs:     row.Exprs,
			CPUTime:   time.Duration(row.CPUTimeNs),
		}
	}
	for _, f := range w.Findings {
		kind := compare.FindingKind(f.Kind)
		if kind == "" {
			kind = compare.FindingSoundness // pre-consistency checkpoints
		}
		outcome := compare.LLVMMorePrecise
		switch kind {
		case compare.FindingInconsistent:
			outcome = compare.Inconsistent
		case compare.FindingVariant:
			outcome = compare.VariantsContradict
		}
		t.Findings = append(t.Findings, compare.Finding{
			ExprName:    f.Expr,
			Source:      f.Source,
			Kind:        kind,
			Reduced:     f.Reduced,
			ReduceSteps: f.ReduceSteps,
			Result: compare.Result{
				Analysis:   harvest.Analysis(f.Analysis),
				Outcome:    outcome,
				Var:        f.Var,
				OracleFact: f.OracleFact,
				LLVMFact:   f.LLVMFact,
			},
		})
	}
	if w.NWay != nil {
		t.NWay = &compare.NWayStats{
			Exprs:          w.NWay.Exprs,
			Agreed:         w.NWay.Agreed,
			Escalated:      w.NWay.Escalated,
			Dead:           w.NWay.Dead,
			Comparisons:    w.NWay.Comparisons,
			Disagreements:  w.NWay.Disagreements,
			Contradictions: w.NWay.Contradictions,
		}
	}
	c.Totals = t
	c.NextBatch = w.NextBatch
	return nil
}
