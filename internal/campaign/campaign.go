// Package campaign is the long-running testing loop of §4.7, extracted
// from the dfcheck-fuzz binary so it can be tested: deterministic batch
// corpus construction, cumulative Table 1 tallies, checkpoint files that
// let an interrupted campaign resume exactly where it stopped, and the
// metrics/event stream a multi-day run needs. The authors ran their loop
// unattended for weeks; anything that long must survive being killed.
package campaign

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"dfcheck/internal/compare"
	"dfcheck/internal/harvest"
	"dfcheck/internal/ir"
	"dfcheck/internal/metrics"
	"dfcheck/internal/trace"
)

// Config fixes everything that determines a campaign's corpus. Two
// campaigns with equal Configs and Comparator settings produce identical
// batches, which is what makes checkpoint/resume exact.
type Config struct {
	// Seed is the campaign master seed. Batch b generates with
	// Seed+b and mutates with Seed+b*7919, so batches are independent
	// and reproducible from (Seed, b) alone.
	Seed int64
	// Batches is the number of batches to run; 0 means run until
	// cancelled.
	Batches int
	// NumExprs is the generated expressions per batch.
	NumExprs int
	// MaxInsts bounds instructions per generated expression.
	MaxInsts int
	// Widths are the generator's base-width weights.
	Widths []harvest.WidthWeight
	// MaxCastWidth caps zext/sext target widths.
	MaxCastWidth uint
	// Mutants is the number of mutated variants appended per generated
	// expression (Csmith-style seed mutation).
	Mutants int
	// Canaries appends the §4.7 trigger expressions to every batch.
	Canaries bool

	// FactSvc records that the campaign process also serves external
	// fact queries (-factsvc) through the comparator's cache and
	// single-flight layers, and CacheShards records the result cache's
	// stripe count (-shards). Neither changes what a batch computes in
	// isolation, but serving traffic interleaves nondeterministically
	// with batches (external queries warm the cache mid-campaign), so —
	// unlike Workers, which has a result-equivalence test — they fold
	// into the fingerprint: a checkpoint resumes only under the serving
	// setup it was written with.
	FactSvc     bool
	CacheShards int

	// CheckpointPath, when set, is where the campaign state file is
	// written: every CheckpointEvery batches, on interruption, and at
	// the end of the run.
	CheckpointPath string
	// CheckpointEvery is the batch interval between periodic checkpoint
	// saves (0 disables periodic saves; interruption still saves).
	CheckpointEvery int

	// Events, when non-nil, receives one "batch" record per completed
	// batch and one self-contained "finding" record per soundness
	// finding. A nil log is a no-op.
	Events *metrics.EventLog
	// Metrics, when non-nil, is shared with the comparator and gains
	// campaign-level counters (batches, checkpoint saves).
	Metrics *metrics.Registry
	// Progress, when non-nil, receives one line per completed batch and
	// any non-fatal warnings (checkpoint write failures).
	Progress io.Writer
	// AfterBatch, when non-nil, runs after each completed batch with the
	// batch index just finished — the hook tests use to cancel a
	// campaign at a deterministic point.
	AfterBatch func(batch int)
	// Tracer, when non-nil, records one batch span per batch, under
	// which the comparator nests expression, analysis, iteration, and
	// solver-query spans (the -trace flag).
	Tracer *trace.Tracer
}

// Totals is the campaign's cumulative Table 1 state: what a final report
// is printed from, and what a checkpoint persists. CPU times are carried
// along but are the only fields not reproducible across runs.
type Totals struct {
	Batches  int
	Exprs    int
	Rows     map[harvest.Analysis]*compare.Row
	Findings []compare.Finding
	// ConsistencyChecks accumulates the cross-domain lint checks run by
	// batches with the consistency lint enabled.
	ConsistencyChecks int
	// NWay accumulates the n-way pre-filter totals of batches run with
	// -nway (nil when the mode was never on).
	NWay *compare.NWayStats
}

func newTotals() Totals {
	rows := make(map[harvest.Analysis]*compare.Row, len(harvest.AllAnalyses))
	for _, a := range harvest.AllAnalyses {
		rows[a] = &compare.Row{Analysis: a}
	}
	return Totals{Rows: rows}
}

// add folds one completed batch's report into the totals.
func (t *Totals) add(rep *compare.Report, exprs int) {
	t.Batches++
	t.Exprs += exprs
	for a, row := range rep.Rows {
		acc := t.Rows[a]
		if acc == nil {
			acc = &compare.Row{Analysis: a}
			t.Rows[a] = acc
		}
		acc.Same += row.Same
		acc.OracleMP += row.OracleMP
		acc.LLVMMP += row.LLVMMP
		acc.Exhausted += row.Exhausted
		acc.CPUTime += row.CPUTime
		acc.Exprs += row.Exprs
	}
	t.Findings = append(t.Findings, rep.Findings...)
	t.ConsistencyChecks += rep.ConsistencyChecks
	if rep.NWay != nil {
		if t.NWay == nil {
			t.NWay = &compare.NWayStats{}
		}
		t.NWay.Exprs += rep.NWay.Exprs
		t.NWay.Agreed += rep.NWay.Agreed
		t.NWay.Escalated += rep.NWay.Escalated
		t.NWay.Dead += rep.NWay.Dead
		t.NWay.Comparisons += rep.NWay.Comparisons
		t.NWay.Disagreements += rep.NWay.Disagreements
		t.NWay.Contradictions += rep.NWay.Contradictions
	}
}

// Campaign is one (possibly resumed) run of the testing loop.
type Campaign struct {
	Config
	Comparator *compare.Comparator

	// Totals accumulates across batches; NextBatch is the first batch
	// not yet folded in. Both are restored by Resume.
	Totals    Totals
	NextBatch int

	start time.Time
}

// New returns a campaign at batch zero.
func New(cfg Config, c *compare.Comparator) *Campaign {
	return &Campaign{Config: cfg, Comparator: c, Totals: newTotals()}
}

// Corpus builds batch b's corpus. It is a pure function of (Config, b):
// generation seeds with Seed+b, mutation with Seed+b*7919, and canaries
// append in fixed order — so a resumed campaign rebuilds exactly the
// batches an uninterrupted one would have run.
func (c *Campaign) Corpus(b int) []harvest.Expr {
	corpus := harvest.Generate(harvest.Config{
		Seed:         c.Seed + int64(b),
		NumExprs:     c.NumExprs,
		MaxInsts:     c.MaxInsts,
		Widths:       c.Widths,
		MaxCastWidth: c.MaxCastWidth,
	})
	if c.Mutants > 0 {
		mrng := rand.New(rand.NewSource(c.Seed + int64(b)*7919))
		base := corpus
		for _, e := range base {
			for m := 0; m < c.Mutants; m++ {
				corpus = append(corpus, harvest.Expr{
					Name: fmt.Sprintf("%s-mut%d", e.Name, m),
					F:    harvest.Mutate(e.F, mrng),
					Freq: 1,
				})
			}
		}
	}
	if c.Canaries {
		for _, tr := range harvest.SoundnessTriggers {
			corpus = append(corpus, harvest.Expr{Name: "canary-" + tr.Name, F: ir.MustParse(tr.Source), Freq: 1})
		}
	}
	return corpus
}

// BatchSeed returns the generation seed batch b runs under (printed in
// progress lines and finding records so a batch is reproducible alone).
func (c *Campaign) BatchSeed(b int) int64 { return c.Seed + int64(b) }

func (c *Campaign) warnf(format string, args ...any) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, "warning: "+format+"\n", args...)
	}
}

// checkpoint saves the state file if one is configured, warning (not
// failing) on write errors: a full disk should cost the checkpoint, not
// the campaign.
func (c *Campaign) checkpoint() {
	if c.CheckpointPath == "" {
		return
	}
	if err := c.SaveCheckpoint(c.CheckpointPath); err != nil {
		c.warnf("checkpoint not saved: %v", err)
		return
	}
	if c.Metrics != nil {
		c.Metrics.Counter("checkpoints_saved").Inc()
	}
}

// emitBatch writes the batch summary event and progress line.
func (c *Campaign) emitBatch(b int, rep *compare.Report, exprs int, elapsed time.Duration) {
	var exhausted int
	for _, row := range rep.Rows {
		exhausted += row.Exhausted
	}
	ev := map[string]any{
		"batch":      b,
		"seed":       c.BatchSeed(b),
		"exprs":      exprs,
		"findings":   len(rep.Findings),
		"exhausted":  exhausted,
		"elapsed_ms": elapsed.Milliseconds(),
	}
	if rep.ConsistencyChecks > 0 {
		ev["consistency_checks"] = rep.ConsistencyChecks
	}
	if rep.NWay != nil {
		ev["nway_agreed"] = rep.NWay.Agreed
		ev["nway_escalated"] = rep.NWay.Escalated
	}
	c.Events.Emit("batch", ev)
	if m := c.Metrics; m != nil {
		// Campaign progress for /metricsz and /dashboardz. Rates are
		// published in milli-units (exprs/sec × 1000) because gauges are
		// integers; ETA is -1 for endless campaigns.
		m.Gauge("campaign_batches_done").Set(int64(c.Totals.Batches))
		m.Gauge("campaign_batches_total").Set(int64(c.Batches))
		m.Counter("campaign_exprs_total").Add(int64(exprs))
		perSec := float64(c.Totals.Exprs) / time.Since(c.start).Seconds()
		m.Gauge("campaign_exprs_per_sec_milli").Set(int64(perSec * 1000))
		eta := int64(-1)
		if c.Batches > 0 && c.Totals.Batches > 0 {
			remaining := c.Batches - c.Totals.Batches
			perBatch := time.Since(c.start) / time.Duration(c.Totals.Batches)
			eta = int64((time.Duration(remaining) * perBatch).Seconds())
		}
		m.Gauge("campaign_eta_seconds").Set(eta)
	}
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, "batch %4d seed %8d: %4d exprs, %2d findings, %3d exhausted, %6.1f exprs/min\n",
			b, c.BatchSeed(b), exprs, len(rep.Findings), exhausted,
			float64(c.Totals.Exprs)/time.Since(c.start).Minutes())
	}
}

// emitFindings writes one self-contained event per finding: everything
// needed to reproduce it — the batch seed, the expression source, and
// both facts — lives in the record, so a finding survives even if the
// checkpoint and cache files do not. Findings also print to Progress as
// they are found; a week-long campaign should not sit on them until exit.
func (c *Campaign) emitFindings(b int, rep *compare.Report) {
	for _, f := range rep.Findings {
		label, kind := "SOUNDNESS", compare.FindingSoundness
		switch f.Kind {
		case compare.FindingInconsistent:
			label, kind = "INCONSISTENT", compare.FindingInconsistent
		case compare.FindingVariant:
			label, kind = "NWAY", compare.FindingVariant
		}
		if c.Progress != nil {
			fmt.Fprintf(c.Progress, "=== %s FINDING (batch %d, %s) ===\n%s\n", label, b, f.ExprName, f)
		}
		ev := map[string]any{
			"batch":       b,
			"seed":        c.BatchSeed(b),
			"expr":        f.ExprName,
			"kind":        string(kind),
			"analysis":    string(f.Result.Analysis),
			"var":         f.Result.Var,
			"oracle_fact": f.Result.OracleFact,
			"llvm_fact":   f.Result.LLVMFact,
			"source":      f.Source,
		}
		if f.Reduced != "" {
			ev["reduced"] = f.Reduced
			ev["reduce_steps"] = f.ReduceSteps
		}
		if c.Metrics != nil {
			c.Metrics.CounterL("campaign_findings", metrics.Labels{"kind": string(kind)}).Inc()
		}
		c.Events.Emit("finding", ev)
	}
}

// Run executes batches NextBatch..Batches-1 (or forever when Batches is
// 0) until done or ctx is cancelled. A batch interrupted mid-corpus is
// discarded whole — its partial report is never folded into the totals,
// so Totals only ever contains complete batches and a resumed campaign
// reproduces them identically. Returns ctx.Err() when interrupted, nil
// when the campaign ran to completion.
func (c *Campaign) Run(ctx context.Context) error {
	if c.start.IsZero() {
		c.start = time.Now()
	}
	for b := c.NextBatch; c.Batches == 0 || b < c.Batches; b++ {
		if ctx.Err() != nil {
			c.checkpoint()
			return ctx.Err()
		}
		corpus := c.Corpus(b)
		batchStart := time.Now()
		bctx := ctx
		bsp := c.Tracer.Start(nil, trace.KindBatch, "batch")
		if bsp != nil {
			bsp.SetInt("batch", int64(b))
			bsp.SetInt("seed", c.BatchSeed(b))
			bctx = trace.NewContext(ctx, bsp)
		}
		rep := c.Comparator.RunContext(bctx, corpus)
		bsp.End()
		if rep.Interrupted || ctx.Err() != nil {
			// Partial batch: discard, checkpoint at the last complete
			// batch boundary, and report the interruption.
			c.checkpoint()
			if err := ctx.Err(); err != nil {
				return err
			}
			return context.Canceled
		}
		c.Totals.add(rep, len(corpus))
		c.NextBatch = b + 1
		if c.Metrics != nil {
			c.Metrics.Counter("batches").Inc()
		}
		c.emitBatch(b, rep, len(corpus), time.Since(batchStart))
		c.emitFindings(b, rep)
		if c.CheckpointEvery > 0 && (b+1)%c.CheckpointEvery == 0 {
			c.checkpoint()
		}
		if c.AfterBatch != nil {
			c.AfterBatch(b)
		}
	}
	c.checkpoint()
	return nil
}

// Report assembles the cumulative Table 1 report from the totals, in the
// same shape batch reports use, so the existing renderers apply.
func (c *Campaign) Report() *compare.Report {
	rep := &compare.Report{Rows: make(map[harvest.Analysis]*compare.Row, len(c.Totals.Rows))}
	for a, row := range c.Totals.Rows {
		cp := *row
		rep.Rows[a] = &cp
	}
	rep.Findings = append(rep.Findings, c.Totals.Findings...)
	rep.ConsistencyChecks = c.Totals.ConsistencyChecks
	if c.Totals.NWay != nil {
		cp := *c.Totals.NWay
		rep.NWay = &cp
	}
	return rep
}
