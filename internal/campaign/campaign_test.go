package campaign

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dfcheck/internal/absint"
	"dfcheck/internal/compare"
	"dfcheck/internal/harvest"
	"dfcheck/internal/llvmport"
	"dfcheck/internal/metrics"
	"dfcheck/internal/rescache"
)

// testConfig is a small, fast campaign: narrow widths keep solver
// queries trivial, and bug3+canaries guarantee at least one finding per
// batch so the findings path is exercised.
func testConfig(seed int64, batches int) Config {
	return Config{
		Seed:     seed,
		Batches:  batches,
		NumExprs: 4,
		MaxInsts: 3,
		Widths:   []harvest.WidthWeight{{Width: 4, Weight: 2}, {Width: 8, Weight: 1}},
		Mutants:  1,
		Canaries: true,
	}
}

func testComparator() *compare.Comparator {
	return &compare.Comparator{
		Analyzer: &llvmport.Analyzer{Bugs: llvmport.BugConfig{SRemKnownBits: true}},
		// A small conflict budget keeps hard queries cheap while staying
		// deterministic (unlike a wall-clock timeout): exhaustion counts
		// must agree between the runs the tests compare.
		Budget:  500,
		Workers: 4,
	}
}

// comparableTotals strips CPU time — the only non-deterministic part of
// the tallies — so interrupted-and-resumed totals can be compared to
// uninterrupted ones with reflect.DeepEqual.
func comparableTotals(t Totals) Totals {
	rows := make(map[harvest.Analysis]*compare.Row, len(t.Rows))
	for a, row := range t.Rows {
		cp := *row
		cp.CPUTime = 0
		rows[a] = &cp
	}
	findings := make([]compare.Finding, len(t.Findings))
	for i, f := range t.Findings {
		f.Result.Elapsed = 0
		// Outcome is implied (every finding is LLVMMorePrecise) and is
		// reconstructed, not stored, by Resume.
		f.Result.Outcome = compare.LLVMMorePrecise
		findings[i] = f
	}
	return Totals{Batches: t.Batches, Exprs: t.Exprs, Rows: rows, Findings: findings}
}

func TestCorpusDeterministic(t *testing.T) {
	a := New(testConfig(7, 3), testComparator())
	b := New(testConfig(7, 3), testComparator())
	for batch := 0; batch < 3; batch++ {
		ca, cb := a.Corpus(batch), b.Corpus(batch)
		if len(ca) != len(cb) {
			t.Fatalf("batch %d: corpus sizes %d vs %d", batch, len(ca), len(cb))
		}
		for i := range ca {
			if ca[i].Name != cb[i].Name || ca[i].F.String() != cb[i].F.String() {
				t.Fatalf("batch %d entry %d differs:\n%s\nvs\n%s", batch, i, ca[i].F, cb[i].F)
			}
		}
	}
	if got := a.Corpus(0)[0].F.String(); got == b.Corpus(1)[0].F.String() {
		t.Fatal("different batches generated identical corpora; batch seed not applied")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	c := New(testConfig(11, 2), testComparator())
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(c.Totals.Findings) == 0 {
		t.Fatal("test campaign produced no findings; canaries+bug3 broken")
	}
	if err := c.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}

	r := New(testConfig(11, 2), testComparator())
	if err := r.Resume(path); err != nil {
		t.Fatal(err)
	}
	if r.NextBatch != c.NextBatch {
		t.Fatalf("NextBatch = %d, want %d", r.NextBatch, c.NextBatch)
	}
	if !reflect.DeepEqual(comparableTotals(r.Totals), comparableTotals(c.Totals)) {
		t.Fatalf("totals did not round-trip:\nsaved:   %+v\nresumed: %+v", c.Totals, r.Totals)
	}
	// CPU time is preserved byte-for-byte through the checkpoint too.
	for a, row := range c.Totals.Rows {
		if r.Totals.Rows[a].CPUTime != row.CPUTime {
			t.Fatalf("row %s CPU time %v != %v", a, r.Totals.Rows[a].CPUTime, row.CPUTime)
		}
	}
}

func TestResumeRejectsConfigMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	c := New(testConfig(11, 2), testComparator())
	if err := c.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}

	other := New(testConfig(12, 2), testComparator()) // different seed
	err := other.Resume(path)
	if err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("seed mismatch not rejected: %v", err)
	}

	sameCfg := New(testConfig(11, 2), &compare.Comparator{
		Analyzer: &llvmport.Analyzer{}, // bug flag dropped
	})
	err = sameCfg.Resume(path)
	if err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("bug-flag mismatch not rejected: %v", err)
	}
}

func TestResumeRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	c := New(testConfig(11, 1), testComparator())

	if err := c.Resume(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file not rejected")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := writeFile(bad, `{"version":1,"tool":"dfcheck-campaign","config":`); err != nil {
		t.Fatal(err)
	}
	if err := c.Resume(bad); err == nil {
		t.Fatal("truncated JSON not rejected")
	}
	wrongTool := filepath.Join(dir, "tool.json")
	if err := writeFile(wrongTool, `{"version":1,"tool":"other"}`); err != nil {
		t.Fatal(err)
	}
	if err := c.Resume(wrongTool); err == nil || !strings.Contains(err.Error(), "tool") {
		t.Fatalf("wrong tool not rejected: %v", err)
	}
	// A failed Resume leaves the campaign untouched.
	if c.NextBatch != 0 || c.Totals.Batches != 0 {
		t.Fatalf("failed resume modified campaign: next=%d totals=%+v", c.NextBatch, c.Totals)
	}
}

// TestInterruptResumeEquivalence is the acceptance test for
// checkpoint/resume: a campaign killed mid-run and resumed from its
// checkpoint produces the identical final report — tallies and findings
// — to one that was never interrupted.
func TestInterruptResumeEquivalence(t *testing.T) {
	const seed, batches = 20260806, 3

	// Reference: uninterrupted run.
	ref := New(testConfig(seed, batches), testComparator())
	if err := ref.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ref.Totals.Batches != batches || len(ref.Totals.Findings) == 0 {
		t.Fatalf("reference run: %d batches, %d findings", ref.Totals.Batches, len(ref.Totals.Findings))
	}

	// Interrupted run: cancel after batch 1 completes, so batch 2 is
	// dispatched under a cancelled context and discarded whole.
	path := filepath.Join(t.TempDir(), "ckpt.json")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := testConfig(seed, batches)
	cfg.CheckpointPath = path
	cfg.AfterBatch = func(b int) {
		if b == 1 {
			cancel()
		}
	}
	interrupted := New(cfg, testComparator())
	if err := interrupted.Run(ctx); err != context.Canceled {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	if got := interrupted.Totals.Batches; got != 2 {
		t.Fatalf("interrupted run folded %d batches, want 2", got)
	}
	if got := len(interrupted.Totals.Findings); got == 0 {
		t.Fatal("interrupted run carried no findings into the checkpoint")
	}

	// Resumed run: a fresh campaign restores the checkpoint and runs
	// the remaining batches.
	rcfg := testConfig(seed, batches)
	rcfg.CheckpointPath = path
	resumed := New(rcfg, testComparator())
	if err := resumed.Resume(path); err != nil {
		t.Fatal(err)
	}
	if resumed.NextBatch != 2 {
		t.Fatalf("resumed at batch %d, want 2", resumed.NextBatch)
	}
	if err := resumed.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(comparableTotals(resumed.Totals), comparableTotals(ref.Totals)) {
		t.Fatalf("resumed final report differs from uninterrupted run:\nresumed:      %+v\nuninterrupted: %+v",
			comparableTotals(resumed.Totals), comparableTotals(ref.Totals))
	}
	// And the rendered reports agree too (modulo CPU-time columns, so
	// compare the findings sections, which are timing-free).
	refRep, resRep := ref.Report(), resumed.Report()
	if len(refRep.Findings) != len(resRep.Findings) {
		t.Fatalf("findings: %d vs %d", len(refRep.Findings), len(resRep.Findings))
	}
	for i := range refRep.Findings {
		if refRep.Findings[i].String() != resRep.Findings[i].String() {
			t.Fatalf("finding %d differs:\n%s\nvs\n%s", i, refRep.Findings[i], resRep.Findings[i])
		}
	}
}

// TestInterruptResumeEquivalenceCached runs the same equivalence check
// through the duplication-aware cached path, where the
// never-memoize-cancelled guard is what keeps the resumed run honest.
func TestInterruptResumeEquivalenceCached(t *testing.T) {
	const seed, batches = 31337, 3

	mk := func() *compare.Comparator {
		c := testComparator()
		c.Cache = rescache.New()
		return c
	}
	ref := New(testConfig(seed, batches), mk())
	if err := ref.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "ckpt.json")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := testConfig(seed, batches)
	cfg.CheckpointPath = path
	cfg.AfterBatch = func(b int) {
		if b == 0 {
			cancel()
		}
	}
	interrupted := New(cfg, mk())
	if err := interrupted.Run(ctx); err != context.Canceled {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}

	rcfg := testConfig(seed, batches)
	resumed := New(rcfg, mk())
	if err := resumed.Resume(path); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(comparableTotals(resumed.Totals), comparableTotals(ref.Totals)) {
		t.Fatalf("cached resumed report differs:\nresumed:      %+v\nuninterrupted: %+v",
			comparableTotals(resumed.Totals), comparableTotals(ref.Totals))
	}
}

// TestRunEmitsEvents checks the JSONL stream: one batch record per
// batch, one self-contained finding record per finding.
func TestRunEmitsEvents(t *testing.T) {
	var sb strings.Builder
	cfg := testConfig(5, 2)
	cfg.Events = metrics.NewEventLog(&sb)
	cfg.Metrics = metrics.NewRegistry()
	c := New(cfg, testComparator())
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	var batchEvents, findingEvents int
	for _, line := range lines {
		switch {
		case strings.Contains(line, `"event":"batch"`):
			batchEvents++
		case strings.Contains(line, `"event":"finding"`):
			findingEvents++
			// Self-contained: seed and source present.
			if !strings.Contains(line, `"seed"`) || !strings.Contains(line, `"source"`) {
				t.Fatalf("finding record not self-contained: %s", line)
			}
		}
	}
	if batchEvents != 2 {
		t.Fatalf("%d batch events, want 2", batchEvents)
	}
	if findingEvents != len(c.Totals.Findings) {
		t.Fatalf("%d finding events, want %d", findingEvents, len(c.Totals.Findings))
	}
	if got := cfg.Metrics.Counter("batches").Value(); got != 2 {
		t.Fatalf("batches counter = %d, want 2", got)
	}
}

func TestCheckpointSaveErrorIsWarning(t *testing.T) {
	var out strings.Builder
	cfg := testConfig(5, 1)
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "no-such-dir", "ckpt.json")
	cfg.Progress = &out
	c := New(cfg, testComparator())
	if err := c.Run(context.Background()); err != nil {
		t.Fatalf("checkpoint failure aborted campaign: %v", err)
	}
	if !strings.Contains(out.String(), "warning: checkpoint not saved") {
		t.Fatalf("checkpoint failure not surfaced:\n%s", out.String())
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// consistencyComparator is a comparator with the cross-domain lint on
// and a bug the lint can catch without oracle help (bug 1 proves values
// non-zero that other domains prove zero).
func consistencyComparator() *compare.Comparator {
	return &compare.Comparator{
		Analyzer:    &llvmport.Analyzer{Bugs: llvmport.BugConfig{NonZeroAdd: true}},
		Consistency: true,
		Budget:      500,
		Workers:     4,
	}
}

// TestCheckpointPreservesInconsistentFindings: a checkpoint must carry
// the finding kind and the consistency-check tally, so a resumed
// campaign reports inconsistent findings as such rather than silently
// reclassifying them as soundness findings.
func TestCheckpointPreservesInconsistentFindings(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	c := New(testConfig(13, 1), consistencyComparator())
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The generated corpus need not hit the lint's trigger shape, so
	// plant one inconsistent finding deterministically before saving.
	c.Totals.Findings = append(c.Totals.Findings, compare.Finding{
		ExprName: "planted",
		Source:   "%0:i8 = add 0:i8, 0:i8\ninfer %0",
		Kind:     compare.FindingInconsistent,
		Result: compare.Result{
			Analysis: compare.ConsistencyAnalysis,
			Outcome:  compare.Inconsistent,
			Var:      "add:i8",
			LLVMFact: "non-zero proved but known bits 00000000 and range [0,1) admit only zero",
		},
	})
	c.Totals.ConsistencyChecks += 9
	if err := c.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}

	r := New(testConfig(13, 1), consistencyComparator())
	if err := r.Resume(path); err != nil {
		t.Fatal(err)
	}
	if r.Totals.ConsistencyChecks != c.Totals.ConsistencyChecks {
		t.Fatalf("consistency checks = %d, want %d", r.Totals.ConsistencyChecks, c.Totals.ConsistencyChecks)
	}
	var got *compare.Finding
	for i := range r.Totals.Findings {
		if r.Totals.Findings[i].Kind == compare.FindingInconsistent {
			got = &r.Totals.Findings[i]
		}
	}
	if got == nil {
		t.Fatalf("inconsistent finding lost in round-trip: %+v", r.Totals.Findings)
	}
	if got.Result.Outcome != compare.Inconsistent || got.Result.Analysis != compare.ConsistencyAnalysis {
		t.Fatalf("finding reclassified on resume: %+v", *got)
	}
	if got.Result.Var != "add:i8" || got.Result.LLVMFact == "" {
		t.Fatalf("finding detail lost on resume: %+v", *got)
	}

	// The lint flag is part of the fingerprint: resuming without it must
	// be rejected, like any other configuration change.
	plain := New(testConfig(13, 1), testComparator())
	if err := plain.Resume(path); err == nil || !strings.Contains(err.Error(), "configuration") {
		t.Fatalf("resume under different consistency setting not rejected: %v", err)
	}
}

// TestCheckpointTransferDomainFindings: n-way contradictions in the
// transfer domains are labeled "tnum"/"stride" — names outside Table 1 —
// and a checkpoint carrying one must resume cleanly. The extended-lint
// domain list is part of the fingerprint, so dropping it invalidates the
// checkpoint like any other configuration change.
func TestCheckpointTransferDomainFindings(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	mk := func(doms []absint.Domain) *Campaign {
		return New(testConfig(17, 1), &compare.Comparator{
			Analyzer:    &llvmport.Analyzer{},
			Consistency: true,
			Domains:     doms,
			Budget:      500,
			Workers:     4,
		})
	}
	c := mk(absint.AllInputDomains())
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A clean analyzer contradicts nothing, so plant the finding shape
	// the n-way cross-check emits for a broken tnum multiply.
	c.Totals.Findings = append(c.Totals.Findings, compare.Finding{
		ExprName: "planted",
		Source:   "%x:i1 = var\n%0:i1 = mul %x, 1:i1\ninfer %0",
		Kind:     compare.FindingVariant,
		Result: compare.Result{
			Analysis:   harvest.Tnum,
			Outcome:    compare.VariantsContradict,
			Var:        "exact vs domain-interp",
			OracleFact: "{value 0 mask 1}",
			LLVMFact:   "{value 0 mask 0}",
		},
	})
	if err := c.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}

	r := mk(absint.AllInputDomains())
	if err := r.Resume(path); err != nil {
		t.Fatalf("resume rejected tnum-labeled finding: %v", err)
	}
	var got *compare.Finding
	for i := range r.Totals.Findings {
		if r.Totals.Findings[i].Result.Analysis == harvest.Tnum {
			got = &r.Totals.Findings[i]
		}
	}
	if got == nil || got.Kind != compare.FindingVariant || got.Result.Outcome != compare.VariantsContradict {
		t.Fatalf("tnum finding lost or reclassified: %+v", r.Totals.Findings)
	}

	plain := mk(nil)
	if err := plain.Resume(path); err == nil || !strings.Contains(err.Error(), "configuration") {
		t.Fatalf("resume under different domain list not rejected: %v", err)
	}
}
