// Package trace is the attribution layer the metrics registry cannot be:
// where metrics answer "how much, in total", trace answers "which batch,
// which expression, which oracle algorithm step, which SAT query". It
// records a hierarchy of timed spans — campaign batch → expression →
// per-analysis oracle run → algorithm iteration → individual SAT/enum
// query — with each leaf span carrying the solver internals (decisions,
// conflicts, propagations, restarts, learned clauses, CNF size) that the
// paper's Table 4-style cost accounting needs.
//
// Spans export in the Chrome trace-event format (a JSON array of
// "complete" events), loadable directly in Perfetto or chrome://tracing,
// and optionally mirror coarse spans into the campaign's JSONL event log.
// cmd/trace-report aggregates the same files offline into hotspot tables.
//
// A nil *Tracer (and the nil *Span every call on it yields) is the
// untraced path: every method nil-checks and returns immediately, with no
// allocation and no locking, so instrumented code carries no guards and
// the hot path pays only a predictable branch (see BenchmarkNilSpan and
// TestNilSpanAllocates).
//
// Concurrency: a Tracer is safe for concurrent use by the comparator's
// worker pool; an individual Span must be started, annotated, and ended
// by one goroutine (concurrent *sibling* spans are the supported shape).
package trace

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dfcheck/internal/metrics"
)

// Kind is a span's level in the hierarchy. Smaller is coarser; the kind
// doubles as the event's category and as the mirror-to-event-log cutoff.
type Kind uint8

// The span hierarchy, coarsest first.
const (
	KindBatch    Kind = iota // one campaign batch (or one whole run)
	KindExpr                 // one expression's oracle computation
	KindAnalysis             // one of the eight oracle algorithms
	KindIter                 // one algorithm iteration (a bit, a CEGIS round)
	KindQuery                // one SAT solve or enumeration query
)

func (k Kind) String() string {
	switch k {
	case KindBatch:
		return "batch"
	case KindExpr:
		return "expr"
	case KindAnalysis:
		return "analysis"
	case KindIter:
		return "iter"
	case KindQuery:
		return "query"
	}
	return "unknown"
}

// Tracer writes spans as Chrome trace events. The zero value is not
// usable; call New or NewFile. A nil Tracer is the no-op tracer.
type Tracer struct {
	epoch time.Time
	ids   atomic.Uint64

	mu        sync.Mutex
	w         *bufio.Writer
	file      *os.File // non-nil for NewFile tracers (enables rotation)
	path      string
	maxBytes  int64
	written   int64
	rotations int
	first     bool
	closed    bool
	err       error
	lanes     []bool // lane i busy ⇒ some live span renders on tid i

	events    *metrics.EventLog
	mirrorMax Kind
}

// New returns a tracer writing the Chrome trace-event JSON array to w.
// The caller owns w; Close flushes but does not close it.
func New(w io.Writer) *Tracer {
	t := &Tracer{epoch: time.Now(), w: bufio.NewWriter(w), first: true}
	t.writeHeader()
	return t
}

// NewFile returns a tracer writing to path. When maxBytes > 0 and the
// current file grows past it, the tracer finalizes the file (keeping it a
// well-formed JSON array) and rolls over to path.1, path.2, … — the size
// cap that keeps a week-long campaign from filling the disk silently.
// Every rolled file is independently loadable, and cmd/trace-report
// accepts them all at once.
func NewFile(path string, maxBytes int64) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	t := &Tracer{
		epoch:    time.Now(),
		w:        bufio.NewWriter(f),
		file:     f,
		path:     path,
		maxBytes: maxBytes,
		first:    true,
	}
	t.writeHeader()
	return t, nil
}

// MirrorEvents additionally emits every span of kind at or coarser than
// max as a "span" record on the JSONL event log, so batch- and
// expression-level timings land in the same stream as findings.
func (t *Tracer) MirrorEvents(l *metrics.EventLog, max Kind) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = l
	t.mirrorMax = max
	t.mu.Unlock()
}

// event is one Chrome trace event. Args carries the span's id/parent
// links and annotations; ts/dur are microseconds from the tracer epoch.
type event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// writeHeader opens the JSON array and names the process, so Perfetto
// shows "dfcheck" instead of "pid 1". Callers hold no lock yet (header
// writes happen before the tracer is shared).
func (t *Tracer) writeHeader() {
	t.written = 0
	t.first = true
	if _, err := t.w.WriteString("[\n"); err != nil {
		t.err = err
		return
	}
	t.written += 2
	t.writeEvent(event{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": "dfcheck"},
	})
}

// writeEvent marshals and appends one event. Caller must hold mu (or be
// in single-goroutine setup/teardown).
func (t *Tracer) writeEvent(ev event) {
	if t.err != nil {
		return
	}
	data, err := json.Marshal(ev)
	if err != nil {
		t.err = fmt.Errorf("trace: %w", err)
		return
	}
	if !t.first {
		if _, err := t.w.WriteString(",\n"); err != nil {
			t.err = err
			return
		}
		t.written += 2
	}
	t.first = false
	n, err := t.w.Write(data)
	t.written += int64(n)
	if err != nil {
		t.err = err
	}
}

// rotate finalizes the current file and opens the next one in the
// sequence. Caller holds mu.
func (t *Tracer) rotate() {
	if t.err != nil {
		return
	}
	t.w.WriteString("\n]\n")
	if err := t.w.Flush(); err != nil {
		t.err = err
		return
	}
	if err := t.file.Close(); err != nil {
		t.err = err
		return
	}
	t.rotations++
	next := fmt.Sprintf("%s.%d", t.path, t.rotations)
	f, err := os.Create(next)
	if err != nil {
		t.err = err
		return
	}
	t.file = f
	t.w = bufio.NewWriter(f)
	t.writeHeader()
}

// Rotations reports how many times the size cap rolled the trace file —
// surfaced by the CLIs so a capped campaign is loud about it.
func (t *Tracer) Rotations() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rotations
}

// Err returns the first write error, if any; like the event log, a full
// disk surfaces once instead of per span.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close finalizes the JSON array and flushes (closing the file for
// NewFile tracers). Spans ended after Close are dropped.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.err
	}
	t.closed = true
	if t.err == nil {
		t.w.WriteString("\n]\n")
		if err := t.w.Flush(); err != nil {
			t.err = err
		}
	}
	if t.file != nil {
		if err := t.file.Close(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}

// acquireLane reserves the lowest free display lane (Perfetto tid).
// Caller holds mu.
func (t *Tracer) acquireLane() int {
	for i, busy := range t.lanes {
		if !busy {
			t.lanes[i] = true
			return i
		}
	}
	t.lanes = append(t.lanes, true)
	return len(t.lanes) - 1
}

// kv is one span annotation; a slice keeps Set allocation-light and
// preserves insertion order until serialization.
type kv struct {
	k string
	v any
}

// Span is one timed region. A nil Span is the no-op span: Child returns
// nil, Set and End return immediately.
type Span struct {
	t       *Tracer
	id      uint64
	parent  uint64
	kind    Kind
	name    string
	tid     int
	ownLane bool
	start   time.Duration
	args    []kv
}

// Start begins a span. parent may be nil (a root span). Root spans and
// expression spans get their own display lane — with one expression per
// worker, the trace renders as one row per worker — while finer spans
// nest on their parent's lane.
func (t *Tracer) Start(parent *Span, kind Kind, name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{t: t, id: t.ids.Add(1), kind: kind, name: name, start: time.Since(t.epoch)}
	if parent != nil {
		s.parent = parent.id
		s.tid = parent.tid
	}
	if parent == nil || kind == KindExpr {
		t.mu.Lock()
		s.tid = t.acquireLane()
		t.mu.Unlock()
		s.ownLane = true
	}
	return s
}

// Child starts a sub-span of s. Nil-safe: the no-op span begets no-op
// spans, so call chains need no guards.
func (s *Span) Child(kind Kind, name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.Start(s, kind, name)
}

// Set annotates the span; keys "id" and "parent" are reserved. Values
// must JSON-marshal. Nil-safe, but note the value is boxed at the call
// site even for a nil span — hot paths use SetInt/SetStr, whose typed
// parameters keep the untraced path allocation-free.
func (s *Span) Set(key string, v any) {
	if s == nil {
		return
	}
	s.args = append(s.args, kv{key, v})
}

// SetInt annotates the span with an integer. Nil-safe with zero
// allocation on the nil path.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.args = append(s.args, kv{key, v})
}

// SetStr annotates the span with a string. Nil-safe with zero allocation
// on the nil path.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.args = append(s.args, kv{key, v})
}

// Tracer returns the tracer that owns s (nil for the no-op span), so code
// handed only a span can start independent root spans.
func (s *Span) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.t
}

// End emits the span as one complete ("X") trace event and releases its
// display lane. Nil-safe. End must be called exactly once, after every
// child span has ended.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	dur := time.Since(t.epoch) - s.start
	args := make(map[string]any, len(s.args)+2)
	args["id"] = s.id
	if s.parent != 0 {
		args["parent"] = s.parent
	}
	for _, a := range s.args {
		args[a.k] = a.v
	}
	ev := event{
		Name: s.name,
		Cat:  s.kind.String(),
		Ph:   "X",
		TS:   float64(s.start.Nanoseconds()) / 1e3,
		Dur:  float64(dur.Nanoseconds()) / 1e3,
		PID:  1,
		TID:  s.tid,
		Args: args,
	}
	t.mu.Lock()
	if !t.closed {
		t.writeEvent(ev)
		if t.file != nil && t.maxBytes > 0 && t.written >= t.maxBytes {
			if err := t.w.Flush(); err != nil && t.err == nil {
				t.err = err
			}
			t.rotate()
		}
	}
	if s.ownLane && s.tid < len(t.lanes) {
		t.lanes[s.tid] = false
	}
	mirror := t.events != nil && s.kind <= t.mirrorMax
	l := t.events
	t.mu.Unlock()

	if mirror {
		fields := make(map[string]any, len(s.args)+5)
		for _, a := range s.args {
			fields[a.k] = a.v
		}
		fields["span"] = s.name
		fields["kind"] = s.kind.String()
		fields["id"] = s.id
		if s.parent != 0 {
			fields["parent"] = s.parent
		}
		fields["dur_us"] = float64(dur.Nanoseconds()) / 1e3
		l.Emit("span", fields)
	}
}

// Record emits one complete root span with explicit, possibly backdated
// timing. It is the escape hatch for after-the-fact emission: the slow-
// solve log discovers only at solve *end* that a span the 1-in-N serve-
// mode sampler skipped was worth keeping, and by then Start is too late —
// Record reconstructs the event from the measured start and duration
// instead. The span lands on its own display lane like any root span.
// Nil-safe.
func (t *Tracer) Record(kind Kind, name string, start time.Time, dur time.Duration, args map[string]any) {
	if t == nil {
		return
	}
	ts := start.Sub(t.epoch)
	if ts < 0 {
		ts = 0
	}
	a := make(map[string]any, len(args)+1)
	for k, v := range args {
		if k == "id" || k == "parent" { // reserved, as in Span.Set
			continue
		}
		a[k] = v
	}
	a["id"] = t.ids.Add(1)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	tid := t.acquireLane()
	t.writeEvent(event{
		Name: name,
		Cat:  kind.String(),
		Ph:   "X",
		TS:   float64(ts.Nanoseconds()) / 1e3,
		Dur:  float64(dur.Nanoseconds()) / 1e3,
		PID:  1,
		TID:  tid,
		Args: a,
	})
	if tid < len(t.lanes) {
		t.lanes[tid] = false // the span is already over; free its lane
	}
	if t.file != nil && t.maxBytes > 0 && t.written >= t.maxBytes {
		if err := t.w.Flush(); err != nil && t.err == nil {
			t.err = err
		}
		t.rotate()
	}
}

// ctxKey keys the span carried by a context.
type ctxKey struct{}

// NewContext returns ctx carrying s, the way batch spans flow from the
// campaign loop into the comparator's workers. A nil span returns ctx
// unchanged, so the untraced path adds no context nesting.
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
