package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dfcheck/internal/metrics"
)

// parseEvents unmarshals a Chrome trace JSON array, failing the test on
// malformed output. It is the schema round-trip every test goes through.
func parseEvents(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var evs []map[string]any
	if err := json.Unmarshal(data, &evs); err != nil {
		t.Fatalf("trace output is not a JSON array: %v\n%s", err, data)
	}
	return evs
}

// spanEvents filters out metadata records, leaving the "X" span events.
func spanEvents(evs []map[string]any) []map[string]any {
	var out []map[string]any
	for _, ev := range evs {
		if ev["ph"] == "X" {
			out = append(out, ev)
		}
	}
	return out
}

func TestChromeTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf)

	batch := tr.Start(nil, KindBatch, "batch")
	batch.Set("batch", 0)
	expr := batch.Child(KindExpr, "add")
	expr.Set("width", 8)
	expr.Set("hash", "00000000deadbeef")
	q := expr.Child(KindQuery, "feasible")
	q.Set("class", "model-existence")
	q.SetInt("conflicts", int64(3))
	q.End()
	expr.End()
	batch.End()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	evs := parseEvents(t, buf.Bytes())
	spans := spanEvents(evs)
	if len(spans) != 3 {
		t.Fatalf("got %d span events, want 3:\n%s", len(spans), buf.String())
	}
	// Events are emitted at End, so the leaf comes first.
	byName := map[string]map[string]any{}
	ids := map[float64]bool{}
	for _, ev := range spans {
		name := ev["name"].(string)
		byName[name] = ev
		for _, field := range []string{"cat", "ts", "pid", "tid", "args"} {
			if _, ok := ev[field]; !ok {
				t.Errorf("span %q missing %q", name, field)
			}
		}
		args := ev["args"].(map[string]any)
		id, ok := args["id"].(float64)
		if !ok {
			t.Fatalf("span %q has no numeric id", name)
		}
		if ids[id] {
			t.Errorf("duplicate span id %v", id)
		}
		ids[id] = true
	}
	if cat := byName["feasible"]["cat"]; cat != "query" {
		t.Errorf("leaf cat = %v, want query", cat)
	}
	// Parent links reconstruct the hierarchy.
	qargs := byName["feasible"]["args"].(map[string]any)
	eargs := byName["add"]["args"].(map[string]any)
	bargs := byName["batch"]["args"].(map[string]any)
	if qargs["parent"] != eargs["id"] {
		t.Errorf("query parent = %v, want expr id %v", qargs["parent"], eargs["id"])
	}
	if eargs["parent"] != bargs["id"] {
		t.Errorf("expr parent = %v, want batch id %v", eargs["parent"], bargs["id"])
	}
	if _, ok := bargs["parent"]; ok {
		t.Errorf("root span has a parent: %v", bargs["parent"])
	}
	if qargs["conflicts"].(float64) != 3 {
		t.Errorf("query conflicts = %v, want 3", qargs["conflicts"])
	}
	// Containment: children lie within the parent's [ts, ts+dur].
	within := func(inner, outer map[string]any) bool {
		its, idur := inner["ts"].(float64), inner["dur"].(float64)
		ots, odur := outer["ts"].(float64), outer["dur"].(float64)
		return its >= ots && its+idur <= ots+odur+0.001
	}
	if !within(byName["feasible"], byName["add"]) || !within(byName["add"], byName["batch"]) {
		t.Errorf("span times do not nest:\n%s", buf.String())
	}
	// Expression spans render on their own lane, nested spans inherit it.
	if byName["feasible"]["tid"] != byName["add"]["tid"] {
		t.Errorf("query tid %v != expr tid %v", byName["feasible"]["tid"], byName["add"]["tid"])
	}
	if byName["add"]["tid"] == byName["batch"]["tid"] {
		t.Errorf("expr should not share the batch lane")
	}
}

func TestConcurrentSpans(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf)
	root := tr.Start(nil, KindBatch, "batch")

	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := root.Child(KindExpr, fmt.Sprintf("w%d-e%d", w, i))
				q := sp.Child(KindQuery, "q")
				q.Set("class", "validity")
				q.End()
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	spans := spanEvents(parseEvents(t, buf.Bytes()))
	want := workers*perWorker*2 + 1
	if len(spans) != want {
		t.Fatalf("got %d span events, want %d", len(spans), want)
	}
	// With at most `workers` expressions alive at once, lane recycling
	// must keep the tid space small (root lane + one per live worker).
	for _, ev := range spans {
		if tid := ev["tid"].(float64); tid > workers {
			t.Errorf("tid %v exceeds worker count %d: lanes are leaking", tid, workers)
		}
	}
}

func TestFileRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	tr, err := NewFile(path, 2048)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		sp := tr.Start(nil, KindExpr, "expr")
		sp.Set("i", i)
		sp.End()
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if tr.Rotations() == 0 {
		t.Fatalf("expected rotation under a 2KiB cap")
	}
	files, _ := filepath.Glob(path + "*")
	if len(files) != tr.Rotations()+1 {
		t.Fatalf("got %d files, want %d", len(files), tr.Rotations()+1)
	}
	total := 0
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		// Every rolled file must be independently well-formed.
		total += len(spanEvents(parseEvents(t, data)))
	}
	if total != 200 {
		t.Fatalf("got %d spans across %d files, want 200", total, len(files))
	}
}

func TestMirrorEvents(t *testing.T) {
	var traceBuf, logBuf bytes.Buffer
	tr := New(&traceBuf)
	tr.MirrorEvents(metrics.NewEventLog(&logBuf), KindExpr)

	b := tr.Start(nil, KindBatch, "batch")
	e := b.Child(KindExpr, "mul")
	q := e.Child(KindQuery, "bit") // finer than the cutoff: not mirrored
	q.End()
	e.End()
	b.End()
	tr.Close()

	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d mirrored events, want 2 (expr+batch):\n%s", len(lines), logBuf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("mirrored line is not JSON: %v", err)
	}
	if rec["event"] != "span" || rec["span"] != "mul" || rec["kind"] != "expr" {
		t.Errorf("unexpected mirror record: %v", rec)
	}
	if _, ok := rec["dur_us"]; !ok {
		t.Errorf("mirror record missing dur_us: %v", rec)
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	sp := tr.Start(nil, KindBatch, "x")
	if sp != nil {
		t.Fatalf("nil tracer returned a live span")
	}
	child := sp.Child(KindQuery, "q")
	if child != nil {
		t.Fatalf("nil span returned a live child")
	}
	// All of these must be no-ops, not panics.
	child.Set("k", 1)
	child.End()
	sp.End()
	if sp.Tracer() != nil {
		t.Fatalf("nil span has a tracer")
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	if tr.Err() != nil || tr.Rotations() != 0 {
		t.Fatalf("nil accessors returned non-zero")
	}
	ctx := NewContext(context.Background(), nil)
	if ctx != context.Background() {
		t.Fatalf("NewContext(nil span) should return ctx unchanged")
	}
	if FromContext(ctx) != nil {
		t.Fatalf("FromContext on bare context should be nil")
	}
}

// TestNilSpanAllocates pins the "near-zero overhead" claim to something
// deterministic: the untraced path allocates nothing, ever. (The timing
// side is BenchmarkNilSpan, compared against BenchmarkSpanEnabled.)
func TestNilSpanAllocates(t *testing.T) {
	var sp *Span
	allocs := testing.AllocsPerRun(1000, func() {
		c := sp.Child(KindQuery, "q")
		c.SetInt("conflicts", int64(1))
		c.End()
	})
	if allocs != 0 {
		t.Fatalf("nil span path allocates %v times per op, want 0", allocs)
	}
}

func TestContextCarriesSpan(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf)
	sp := tr.Start(nil, KindBatch, "b")
	ctx := NewContext(context.Background(), sp)
	if got := FromContext(ctx); got != sp {
		t.Fatalf("FromContext = %v, want the stored span", got)
	}
	sp.End()
	tr.Close()
}

func TestWriteErrorSurfacesOnce(t *testing.T) {
	tr := New(failWriter{})
	// Enough spans to overflow the buffered writer and reach the sink.
	for i := 0; i < 200; i++ {
		sp := tr.Start(nil, KindExpr, "e")
		sp.End()
	}
	tr.Close()
	if tr.Err() == nil {
		t.Fatalf("expected a retained write error")
	}
}

// failWriter rejects every write, exercising the retained-error path the
// way a full disk would.
type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) {
	return 0, fmt.Errorf("disk full")
}

// BenchmarkNilSpan is the untraced hot path: what every solver query pays
// when no -trace flag is given. Compare against BenchmarkSpanEnabled; the
// acceptance bar is that this is within noise of free (single-digit ns,
// zero allocs).
func BenchmarkNilSpan(b *testing.B) {
	var sp *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := sp.Child(KindQuery, "q")
		c.SetInt("conflicts", int64(i))
		c.End()
	}
}

// BenchmarkSpanEnabled is the traced path writing to an in-memory sink,
// for the overhead ratio.
func BenchmarkSpanEnabled(b *testing.B) {
	tr := New(discard{})
	root := tr.Start(nil, KindBatch, "b")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := root.Child(KindQuery, "q")
		c.SetInt("conflicts", int64(i))
		c.End()
	}
	b.StopTimer()
	root.End()
	tr.Close()
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestSpanTimestampsMonotonic guards the epoch arithmetic: a span ended
// immediately still has non-negative ts and dur.
func TestSpanTimestampsMonotonic(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf)
	sp := tr.Start(nil, KindQuery, "q")
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Close()
	spans := spanEvents(parseEvents(t, buf.Bytes()))
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	ts := spans[0]["ts"].(float64)
	dur := spans[0]["dur"].(float64)
	if ts < 0 || dur < 900 {
		t.Fatalf("ts=%v dur=%v, want ts>=0 and dur>=~1000us", ts, dur)
	}
}
