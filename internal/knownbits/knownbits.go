// Package knownbits implements the known-bits abstract domain: for each bit
// position, a value is known zero, known one, or unknown. This is the
// domain of LLVM's computeKnownBits and of the paper's Algorithm 1, and the
// lattice of the paper's Figure 2 (a cross product of per-bit three-point
// semilattices, which is what makes bit-by-bit oracle search maximally
// precise — the separability argument of §3.3.1).
package knownbits

import (
	"strings"

	"dfcheck/internal/apint"
)

// Bits is a known-bits fact for a value of a fixed width, in LLVM's
// representation: Zero has a bit set where the value is known to be 0, One
// where it is known to be 1. A position set in both is a conflict (bottom:
// no concrete value satisfies the fact).
type Bits struct {
	Zero apint.Int
	One  apint.Int
}

// Unknown returns the top element: nothing known.
func Unknown(w uint) Bits {
	return Bits{Zero: apint.Zero(w), One: apint.Zero(w)}
}

// FromConst returns the exact fact for a constant.
func FromConst(v apint.Int) Bits {
	return Bits{Zero: v.Not(), One: v}
}

// Make builds a fact from explicit zero/one masks.
func Make(zero, one apint.Int) Bits {
	if zero.Width() != one.Width() {
		panic("knownbits: mask width mismatch")
	}
	return Bits{Zero: zero, One: one}
}

// Parse reads the paper's notation: a string of '0', '1', 'x' characters,
// most significant bit first (e.g. "xxx00000").
func Parse(s string) Bits {
	w := uint(len(s))
	zero, one := apint.Zero(w), apint.Zero(w)
	for i, c := range s {
		bit := w - 1 - uint(i)
		switch c {
		case '0':
			zero = zero.SetBit(bit)
		case '1':
			one = one.SetBit(bit)
		case 'x', 'X', '?':
			// unknown
		default:
			panic("knownbits: bad character " + string(c))
		}
	}
	return Bits{Zero: zero, One: one}
}

// Width returns the fact's bit width.
func (k Bits) Width() uint { return k.Zero.Width() }

// HasConflict reports whether some bit is claimed both zero and one.
func (k Bits) HasConflict() bool { return !k.Zero.And(k.One).IsZero() }

// IsUnknown reports whether nothing is known.
func (k Bits) IsUnknown() bool { return k.Zero.IsZero() && k.One.IsZero() }

// IsConstant reports whether every bit is known (and consistent).
func (k Bits) IsConstant() bool {
	return !k.HasConflict() && k.Zero.Or(k.One).IsAllOnes()
}

// Constant returns the single concrete value of a fully-known fact.
func (k Bits) Constant() apint.Int {
	if !k.IsConstant() {
		panic("knownbits: Constant on non-constant fact")
	}
	return k.One
}

// NumKnown returns how many bits are known; the paper's precision measure.
func (k Bits) NumKnown() uint { return k.Zero.Or(k.One).PopCount() }

// Contains reports whether concrete value v is consistent with the fact;
// the soundness criterion of §2.2.
func (k Bits) Contains(v apint.Int) bool {
	return v.And(k.Zero).IsZero() && v.Not().And(k.One).IsZero()
}

// Join returns the least upper bound: what is known in both facts and
// agrees. This is LLVM's KnownBits::commonBits / intersectWith, and the
// lattice join of Figure 2.
func (k Bits) Join(o Bits) Bits {
	return Bits{Zero: k.Zero.And(o.Zero), One: k.One.And(o.One)}
}

// Meet combines two facts about the same value, keeping everything known in
// either (LLVM's unionWith). Conflicting claims yield a conflict fact.
func (k Bits) Meet(o Bits) Bits {
	return Bits{Zero: k.Zero.Or(o.Zero), One: k.One.Or(o.One)}
}

// AtLeastAsPreciseAs reports k ⊑ o: everything o knows, k also knows with
// the same polarity. Facts with conflicts are maximal precision (bottom).
func (k Bits) AtLeastAsPreciseAs(o Bits) bool {
	if k.HasConflict() {
		return true
	}
	return o.Zero.And(k.Zero.Not()).IsZero() && o.One.And(k.One.Not()).IsZero()
}

// Eq reports exact equality of facts.
func (k Bits) Eq(o Bits) bool { return k.Zero.Eq(o.Zero) && k.One.Eq(o.One) }

// KnownBit reports the state of bit i: (known, value).
func (k Bits) KnownBit(i uint) (known, one bool) {
	switch {
	case k.Zero.Bit(i):
		return true, false
	case k.One.Bit(i):
		return true, true
	}
	return false, false
}

// IsNonNegative reports whether the sign bit is known zero.
func (k Bits) IsNonNegative() bool { return k.Zero.Bit(k.Width() - 1) }

// IsNegative reports whether the sign bit is known one.
func (k Bits) IsNegative() bool { return k.One.Bit(k.Width() - 1) }

// UMax returns the largest unsigned value consistent with the fact
// (unknown bits set to one).
func (k Bits) UMax() apint.Int { return k.Zero.Not() }

// UMin returns the smallest unsigned value consistent with the fact
// (unknown bits cleared).
func (k Bits) UMin() apint.Int { return k.One }

// CountMinTrailingZeros returns the number of low bits known to be zero.
func (k Bits) CountMinTrailingZeros() uint {
	n := k.Zero.Not().CountTrailingZeros()
	if n > k.Width() {
		return k.Width()
	}
	return n
}

// CountMinLeadingZeros returns the number of high bits known to be zero.
func (k Bits) CountMinLeadingZeros() uint { return k.Zero.Not().CountLeadingZeros() }

// CountMinLeadingOnes returns the number of high bits known to be one.
func (k Bits) CountMinLeadingOnes() uint { return k.One.CountLeadingOnes() }

// CountMaxTrailingZeros returns an upper bound on trailing zeros (bits not
// known one).
func (k Bits) CountMaxTrailingZeros() uint {
	if k.One.IsZero() {
		return k.Width()
	}
	return k.One.CountTrailingZeros()
}

// String renders the fact in the paper's msb-first notation, e.g.
// "xxx00000"; conflicted positions render as '!'.
func (k Bits) String() string {
	var sb strings.Builder
	w := k.Width()
	for i := uint(0); i < w; i++ {
		bit := w - 1 - i
		z, o := k.Zero.Bit(bit), k.One.Bit(bit)
		switch {
		case z && o:
			sb.WriteByte('!')
		case z:
			sb.WriteByte('0')
		case o:
			sb.WriteByte('1')
		default:
			sb.WriteByte('x')
		}
	}
	return sb.String()
}

// ForEach enumerates every concrete value consistent with the fact, calling
// fn until it returns false. The number of values is 2^(unknown bits);
// callers must ensure that is acceptable.
func (k Bits) ForEach(fn func(v apint.Int) bool) {
	if k.HasConflict() {
		return
	}
	w := k.Width()
	unknown := k.Zero.Or(k.One).Not()
	// Iterate subsets of the unknown mask with the standard trick.
	sub := apint.Zero(w)
	for {
		if !fn(k.One.Or(sub)) {
			return
		}
		// next subset
		sub = sub.Sub(unknown).And(unknown)
		if sub.IsZero() {
			return
		}
	}
}
