package knownbits

import (
	"testing"
	"testing/quick"

	"dfcheck/internal/apint"
)

func TestParseAndString(t *testing.T) {
	cases := []string{"xxx00000", "00000x0x", "11111111", "xxxxxxxx", "10000000", "0000xxxx"}
	for _, s := range cases {
		if got := Parse(s).String(); got != s {
			t.Errorf("Parse(%q).String() = %q", s, got)
		}
	}
	k := Parse("x01x")
	if k.Width() != 4 {
		t.Errorf("width = %d", k.Width())
	}
	known, one := k.KnownBit(2)
	if !known || one {
		t.Error("bit 2 should be known zero")
	}
	known, one = k.KnownBit(1)
	if !known || !one {
		t.Error("bit 1 should be known one")
	}
	if known, _ := k.KnownBit(3); known {
		t.Error("bit 3 should be unknown")
	}
}

func TestFromConstAndConstant(t *testing.T) {
	v := apint.New(8, 0xA5)
	k := FromConst(v)
	if !k.IsConstant() {
		t.Error("FromConst not constant")
	}
	if k.Constant().Ne(v) {
		t.Errorf("Constant = %v", k.Constant())
	}
	if k.NumKnown() != 8 {
		t.Errorf("NumKnown = %d", k.NumKnown())
	}
	if !k.Contains(v) || k.Contains(apint.New(8, 0xA4)) {
		t.Error("Contains wrong")
	}
}

func TestUnknownTop(t *testing.T) {
	k := Unknown(8)
	if !k.IsUnknown() || k.NumKnown() != 0 || k.HasConflict() {
		t.Error("Unknown is not top")
	}
	for v := 0; v < 256; v++ {
		if !k.Contains(apint.New(8, uint64(v))) {
			t.Errorf("top does not contain %d", v)
		}
	}
}

func TestConflict(t *testing.T) {
	k := Make(apint.New(4, 0b0001), apint.New(4, 0b0001))
	if !k.HasConflict() {
		t.Error("conflict not detected")
	}
	if k.IsConstant() {
		t.Error("conflicted fact reported constant")
	}
	if !k.AtLeastAsPreciseAs(Unknown(4)) {
		t.Error("bottom should be at least as precise as everything")
	}
	if got := k.String(); got != "xxx!" {
		t.Errorf("conflict string = %q", got)
	}
}

func TestJoinLattice(t *testing.T) {
	a := Parse("00xx")
	b := Parse("0x1x")
	j := a.Join(b)
	if got := j.String(); got != "0xxx" {
		t.Errorf("join = %q, want 0xxx", got)
	}
	// Figure 2 laws on the 1-bit lattice: 0 ⊔ 1 = ⊤, x ⊑ ⊤.
	zero, one, top := Parse("0"), Parse("1"), Parse("x")
	if !zero.Join(one).Eq(top) {
		t.Error("0 ⊔ 1 != ⊤")
	}
	if !zero.AtLeastAsPreciseAs(top) || !one.AtLeastAsPreciseAs(top) {
		t.Error("0,1 not ⊑ ⊤")
	}
	if top.AtLeastAsPreciseAs(zero) {
		t.Error("⊤ ⊑ 0 should be false")
	}
}

func TestMeet(t *testing.T) {
	a := Parse("0xxx")
	b := Parse("xx1x")
	m := a.Meet(b)
	if got := m.String(); got != "0x1x" {
		t.Errorf("meet = %q", got)
	}
	// Conflicting meet produces a conflict.
	c := Parse("1xxx").Meet(Parse("0xxx"))
	if !c.HasConflict() {
		t.Error("conflicting meet did not produce conflict")
	}
}

func TestPrecisionOrder(t *testing.T) {
	precise := Parse("xxx00000")
	vague := Parse("xxxxxxxx")
	if !precise.AtLeastAsPreciseAs(vague) {
		t.Error("precise not ⊑ vague")
	}
	if vague.AtLeastAsPreciseAs(precise) {
		t.Error("vague ⊑ precise should fail")
	}
	// Incomparable facts (different polarities) are not ordered.
	p1, p2 := Parse("0xxx"), Parse("1xxx")
	if p1.AtLeastAsPreciseAs(p2) || p2.AtLeastAsPreciseAs(p1) {
		t.Error("incomparable facts ordered")
	}
	// Same-position different polarity counts as not-at-least-as-precise.
	if Parse("0x").AtLeastAsPreciseAs(Parse("1x")) {
		t.Error("polarity mismatch accepted")
	}
}

func TestBoundsAndCounts(t *testing.T) {
	k := Parse("00x1x100")
	if got := k.UMax().Uint64(); got != 0b00111100 {
		t.Errorf("UMax = %08b", got)
	}
	if got := k.UMin().Uint64(); got != 0b00010100 {
		t.Errorf("UMin = %08b", got)
	}
	if got := k.CountMinTrailingZeros(); got != 2 {
		t.Errorf("min trailing zeros = %d", got)
	}
	if got := k.CountMinLeadingZeros(); got != 2 {
		t.Errorf("min leading zeros = %d", got)
	}
	if got := k.CountMaxTrailingZeros(); got != 2 {
		t.Errorf("max trailing zeros = %d", got)
	}
	if got := FromConst(apint.Zero(8)).CountMinTrailingZeros(); got != 8 {
		t.Errorf("all-zero min trailing zeros = %d", got)
	}
	if got := Unknown(8).CountMaxTrailingZeros(); got != 8 {
		t.Errorf("unknown max trailing zeros = %d", got)
	}
	if got := Parse("111x0000").CountMinLeadingOnes(); got != 3 {
		t.Errorf("min leading ones = %d", got)
	}
}

func TestSignPredicates(t *testing.T) {
	if !Parse("0xxx").IsNonNegative() || Parse("0xxx").IsNegative() {
		t.Error("IsNonNegative wrong")
	}
	if !Parse("1xxx").IsNegative() || Parse("1xxx").IsNonNegative() {
		t.Error("IsNegative wrong")
	}
	if Parse("xxxx").IsNegative() || Parse("xxxx").IsNonNegative() {
		t.Error("unknown sign misreported")
	}
}

func TestForEachEnumeratesConcretization(t *testing.T) {
	k := Parse("0x1x")
	var got []uint64
	k.ForEach(func(v apint.Int) bool {
		got = append(got, v.Uint64())
		return true
	})
	want := map[uint64]bool{0b0010: true, 0b0011: true, 0b0110: true, 0b0111: true}
	if len(got) != len(want) {
		t.Fatalf("enumerated %d values, want %d: %v", len(got), len(want), got)
	}
	for _, v := range got {
		if !want[v] {
			t.Errorf("unexpected value %04b", v)
		}
	}
	// Constant fact enumerates exactly one value.
	n := 0
	FromConst(apint.New(8, 42)).ForEach(func(v apint.Int) bool { n++; return true })
	if n != 1 {
		t.Errorf("constant enumerated %d values", n)
	}
	// Conflict enumerates nothing.
	n = 0
	Make(apint.One(4), apint.One(4)).ForEach(func(v apint.Int) bool { n++; return true })
	if n != 0 {
		t.Errorf("conflict enumerated %d values", n)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	n := 0
	Unknown(8).ForEach(func(v apint.Int) bool { n++; return n < 5 })
	if n != 5 {
		t.Errorf("early stop at %d", n)
	}
}

// Property: Join is the least upper bound wrt AtLeastAsPreciseAs, and
// Contains is monotone: if a ⊑ b then γ(a) ⊆ γ(b).
func TestQuickLatticeLaws(t *testing.T) {
	mk := func(zero, one uint8) Bits {
		// Avoid conflicts for this test.
		return Make(apint.New(8, uint64(zero&^one)), apint.New(8, uint64(one)))
	}
	f := func(z1, o1, z2, o2, v uint8) bool {
		a, b := mk(z1, o1), mk(z2, o2)
		j := a.Join(b)
		// join is an upper bound
		if !a.AtLeastAsPreciseAs(j) || !b.AtLeastAsPreciseAs(j) {
			return false
		}
		// join is idempotent, commutative
		if !a.Join(a).Eq(a) || !a.Join(b).Eq(b.Join(a)) {
			return false
		}
		// concretization monotone: a ⊑ j, so Contains(a) ⊆ Contains(j)
		val := apint.New(8, uint64(v))
		if a.Contains(val) && !j.Contains(val) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSeparability(t *testing.T) {
	// Property 3.3.1 of the paper: the order is element-wise over bits.
	f := func(z1, o1, z2, o2 uint8) bool {
		a := Make(apint.New(8, uint64(z1)), apint.New(8, uint64(o1&^z1)))
		b := Make(apint.New(8, uint64(z2)), apint.New(8, uint64(o2&^z2)))
		whole := a.AtLeastAsPreciseAs(b)
		bitwise := true
		for i := uint(0); i < 8; i++ {
			ka, oa := a.KnownBit(i)
			kb, ob := b.KnownBit(i)
			// per-bit order: b known => a known with same value
			if kb && (!ka || oa != ob) {
				bitwise = false
			}
		}
		return whole == bitwise
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParsePanicsOnBadChar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Parse of bad char did not panic")
		}
	}()
	Parse("01z")
}

func TestMakePanicsOnWidthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Make width mismatch did not panic")
		}
	}()
	Make(apint.Zero(4), apint.Zero(8))
}
