package knownbits_test

import (
	"fmt"

	"dfcheck/internal/apint"
	"dfcheck/internal/knownbits"
)

// The paper's msb-first notation: '0' and '1' are known bits, 'x' unknown.
func ExampleParse() {
	k := knownbits.Parse("xxx00000")
	fmt.Println(k)
	fmt.Println("known bits:", k.NumKnown())
	fmt.Println("contains 32:", k.Contains(apint.New(8, 32)))
	fmt.Println("contains 33:", k.Contains(apint.New(8, 33)))
	// Output:
	// xxx00000
	// known bits: 5
	// contains 32: true
	// contains 33: false
}

// Figure 2's lattice: join is the least upper bound; 0 ⊔ 1 = ⊤.
func ExampleBits_Join() {
	zero := knownbits.Parse("0")
	one := knownbits.Parse("1")
	fmt.Println(zero.Join(one))
	// Output:
	// x
}
