package apint

import (
	"math/big"
	"math/rand"
	"testing"
)

// Reference semantics via math/big: every operation is computed in
// arbitrary precision and reduced mod 2^w, then compared against apint.
// This pins the 64-bit boundary behaviour that native-int tests at width
// 8 cannot reach.

func bigMask(w uint) *big.Int {
	one := big.NewInt(1)
	m := new(big.Int).Lsh(one, w)
	return m.Sub(m, one)
}

func toBig(a Int) *big.Int {
	return new(big.Int).SetUint64(a.Uint64())
}

func toBigSigned(a Int) *big.Int {
	return big.NewInt(a.Int64())
}

func fromBig(w uint, v *big.Int) Int {
	r := new(big.Int).And(v, bigMask(w))
	if r.Sign() < 0 {
		r.Add(r, new(big.Int).Lsh(big.NewInt(1), w))
		r.And(r, bigMask(w))
	}
	return New(w, r.Uint64())
}

func randWidths(rng *rand.Rand) uint {
	widths := []uint{1, 7, 8, 13, 31, 32, 33, 63, 64}
	return widths[rng.Intn(len(widths))]
}

func TestBigRefArithmetic(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 5000; trial++ {
		w := randWidths(rng)
		a := New(w, rng.Uint64())
		b := New(w, rng.Uint64())
		ba, bb := toBig(a), toBig(b)

		if got, want := a.Add(b), fromBig(w, new(big.Int).Add(ba, bb)); got.Ne(want) {
			t.Fatalf("w=%d: %v + %v = %v, want %v", w, a, b, got, want)
		}
		if got, want := a.Sub(b), fromBig(w, new(big.Int).Sub(ba, bb)); got.Ne(want) {
			t.Fatalf("w=%d: %v - %v = %v, want %v", w, a, b, got, want)
		}
		if got, want := a.Mul(b), fromBig(w, new(big.Int).Mul(ba, bb)); got.Ne(want) {
			t.Fatalf("w=%d: %v * %v = %v, want %v", w, a, b, got, want)
		}
		if got, want := a.Neg(), fromBig(w, new(big.Int).Neg(ba)); got.Ne(want) {
			t.Fatalf("w=%d: -%v = %v, want %v", w, a, got, want)
		}
		if !b.IsZero() {
			if got, want := a.UDiv(b), fromBig(w, new(big.Int).Quo(ba, bb)); got.Ne(want) {
				t.Fatalf("w=%d: %v /u %v = %v, want %v", w, a, b, got, want)
			}
			if got, want := a.URem(b), fromBig(w, new(big.Int).Rem(ba, bb)); got.Ne(want) {
				t.Fatalf("w=%d: %v %%u %v = %v, want %v", w, a, b, got, want)
			}
			if !(a.IsMinSigned() && b.IsAllOnes()) {
				sa, sb := toBigSigned(a), toBigSigned(b)
				if got, want := a.SDiv(b), fromBig(w, new(big.Int).Quo(sa, sb)); got.Ne(want) {
					t.Fatalf("w=%d: %v /s %v = %v, want %v", w, a, b, got, want)
				}
				if got, want := a.SRem(b), fromBig(w, new(big.Int).Rem(sa, sb)); got.Ne(want) {
					t.Fatalf("w=%d: %v %%s %v = %v, want %v", w, a, b, got, want)
				}
			}
		}
	}
}

func TestBigRefComparisons(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	for trial := 0; trial < 5000; trial++ {
		w := randWidths(rng)
		a := New(w, rng.Uint64())
		b := New(w, rng.Uint64())
		ba, bb := toBig(a), toBig(b)
		sa, sb := toBigSigned(a), toBigSigned(b)

		if a.ULT(b) != (ba.Cmp(bb) < 0) {
			t.Fatalf("w=%d: ULT(%v,%v) wrong", w, a, b)
		}
		if a.SLT(b) != (sa.Cmp(sb) < 0) {
			t.Fatalf("w=%d: SLT(%v,%v) wrong", w, a, b)
		}
		if a.Eq(b) != (ba.Cmp(bb) == 0) {
			t.Fatalf("w=%d: Eq(%v,%v) wrong", w, a, b)
		}
	}
}

func TestBigRefShiftsAndBits(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 5000; trial++ {
		w := randWidths(rng)
		a := New(w, rng.Uint64())
		s := uint(rng.Intn(int(w)))
		ba := toBig(a)

		if got, want := a.Shl(s), fromBig(w, new(big.Int).Lsh(ba, s)); got.Ne(want) {
			t.Fatalf("w=%d: %v << %d = %v, want %v", w, a, s, got, want)
		}
		if got, want := a.LShr(s), fromBig(w, new(big.Int).Rsh(ba, s)); got.Ne(want) {
			t.Fatalf("w=%d: %v >>u %d = %v, want %v", w, a, s, got, want)
		}
		sa := toBigSigned(a)
		if got, want := a.AShr(s), fromBig(w, new(big.Int).Rsh(sa, s)); got.Ne(want) {
			t.Fatalf("w=%d: %v >>s %d = %v, want %v", w, a, s, got, want)
		}
		// Bit access agrees with big.Int.Bit.
		i := uint(rng.Intn(int(w)))
		if a.Bit(i) != (ba.Bit(int(i)) == 1) {
			t.Fatalf("w=%d: Bit(%d) of %v wrong", w, i, a)
		}
	}
}

func TestBigRefOverflowPredicates(t *testing.T) {
	rng := rand.New(rand.NewSource(2027))
	for trial := 0; trial < 5000; trial++ {
		w := randWidths(rng)
		a := New(w, rng.Uint64())
		b := New(w, rng.Uint64())
		maxS := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), w-1), big.NewInt(1))
		minS := new(big.Int).Neg(new(big.Int).Lsh(big.NewInt(1), w-1))
		maxU := bigMask(w)

		sum := new(big.Int).Add(toBig(a), toBig(b))
		if a.UAddOverflow(b) != (sum.Cmp(maxU) > 0) {
			t.Fatalf("w=%d: UAddOverflow(%v,%v) wrong", w, a, b)
		}
		ssum := new(big.Int).Add(toBigSigned(a), toBigSigned(b))
		if a.SAddOverflow(b) != (ssum.Cmp(maxS) > 0 || ssum.Cmp(minS) < 0) {
			t.Fatalf("w=%d: SAddOverflow(%v,%v) wrong", w, a, b)
		}
		sdiff := new(big.Int).Sub(toBigSigned(a), toBigSigned(b))
		if a.SSubOverflow(b) != (sdiff.Cmp(maxS) > 0 || sdiff.Cmp(minS) < 0) {
			t.Fatalf("w=%d: SSubOverflow(%v,%v) wrong", w, a, b)
		}
		prod := new(big.Int).Mul(toBig(a), toBig(b))
		if a.UMulOverflow(b) != (prod.Cmp(maxU) > 0) {
			t.Fatalf("w=%d: UMulOverflow(%v,%v) wrong", w, a, b)
		}
		sprod := new(big.Int).Mul(toBigSigned(a), toBigSigned(b))
		if a.SMulOverflow(b) != (sprod.Cmp(maxS) > 0 || sprod.Cmp(minS) < 0) {
			t.Fatalf("w=%d: SMulOverflow(%v,%v) wrong", w, a, b)
		}
	}
}
