package apint

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstructors(t *testing.T) {
	if got := New(8, 300).Uint64(); got != 44 {
		t.Errorf("New(8,300) = %d, want 44", got)
	}
	if got := NewSigned(8, -1).Uint64(); got != 255 {
		t.Errorf("NewSigned(8,-1) = %d, want 255", got)
	}
	if got := AllOnes(4).Uint64(); got != 15 {
		t.Errorf("AllOnes(4) = %d, want 15", got)
	}
	if got := MaxSigned(8).Int64(); got != 127 {
		t.Errorf("MaxSigned(8) = %d, want 127", got)
	}
	if got := MinSigned(8).Int64(); got != -128 {
		t.Errorf("MinSigned(8) = %d, want -128", got)
	}
	if got := MaxUnsigned(64).Uint64(); got != math.MaxUint64 {
		t.Errorf("MaxUnsigned(64) = %d", got)
	}
}

func TestInvalidWidthPanics(t *testing.T) {
	for _, w := range []uint{0, 65, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, 0) did not panic", w)
				}
			}()
			New(w, 0)
		}()
	}
}

func TestInt64SignExtension(t *testing.T) {
	cases := []struct {
		w    uint
		v    uint64
		want int64
	}{
		{1, 1, -1},
		{1, 0, 0},
		{4, 8, -8},
		{4, 7, 7},
		{8, 128, -128},
		{8, 255, -1},
		{32, 0x80000000, math.MinInt32},
		{64, 0xFFFFFFFFFFFFFFFF, -1},
	}
	for _, c := range cases {
		if got := New(c.w, c.v).Int64(); got != c.want {
			t.Errorf("New(%d,%d).Int64() = %d, want %d", c.w, c.v, got, c.want)
		}
	}
}

func TestPredicates(t *testing.T) {
	if !Zero(8).IsZero() || One(8).IsZero() {
		t.Error("IsZero wrong")
	}
	if !New(8, 128).IsNegative() || New(8, 127).IsNegative() {
		t.Error("IsNegative wrong")
	}
	if !New(8, 64).IsPowerOfTwo() || New(8, 0).IsPowerOfTwo() || New(8, 3).IsPowerOfTwo() {
		t.Error("IsPowerOfTwo wrong")
	}
	if !New(8, 1).IsStrictlyPositive() || Zero(8).IsStrictlyPositive() || New(8, 200).IsStrictlyPositive() {
		t.Error("IsStrictlyPositive wrong")
	}
	if !MinSigned(16).IsMinSigned() || !MaxSigned(16).IsMaxSigned() {
		t.Error("min/max signed predicates wrong")
	}
}

func TestBitOps(t *testing.T) {
	a := Zero(8)
	a = a.SetBit(3)
	if a.Uint64() != 8 || !a.Bit(3) || a.Bit(2) {
		t.Errorf("SetBit/Bit wrong: %v", a)
	}
	a = a.FlipBit(3).FlipBit(0)
	if a.Uint64() != 1 {
		t.Errorf("FlipBit wrong: %v", a)
	}
	a = a.ClearBit(0)
	if !a.IsZero() {
		t.Errorf("ClearBit wrong: %v", a)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Bit out of range did not panic")
			}
		}()
		Zero(8).Bit(8)
	}()
}

func TestArithmeticWrapping(t *testing.T) {
	if got := New(8, 255).Add(One(8)); !got.IsZero() {
		t.Errorf("255+1 at i8 = %v, want 0", got)
	}
	if got := Zero(8).Sub(One(8)); !got.IsAllOnes() {
		t.Errorf("0-1 at i8 = %v, want 255", got)
	}
	if got := New(8, 16).Mul(New(8, 16)); !got.IsZero() {
		t.Errorf("16*16 at i8 = %v, want 0", got)
	}
	if got := New(8, 200).Neg().Uint64(); got != 56 {
		t.Errorf("-200 at i8 = %d, want 56", got)
	}
}

func TestDivRem(t *testing.T) {
	if got := New(8, 200).UDiv(New(8, 7)).Uint64(); got != 28 {
		t.Errorf("200/7 = %d, want 28", got)
	}
	if got := New(8, 200).URem(New(8, 7)).Uint64(); got != 4 {
		t.Errorf("200%%7 = %d, want 4", got)
	}
	if got := NewSigned(8, -7).SDiv(NewSigned(8, 2)).Int64(); got != -3 {
		t.Errorf("-7 sdiv 2 = %d, want -3 (truncate toward zero)", got)
	}
	if got := NewSigned(8, -7).SRem(NewSigned(8, 2)).Int64(); got != -1 {
		t.Errorf("-7 srem 2 = %d, want -1", got)
	}
	if got := NewSigned(8, 7).SRem(NewSigned(8, -2)).Int64(); got != 1 {
		t.Errorf("7 srem -2 = %d, want 1", got)
	}
	if got := MinSigned(8).SDiv(AllOnes(8)); !got.IsMinSigned() {
		t.Errorf("MinSigned sdiv -1 = %v, want MinSigned wrap", got)
	}
	if got := MinSigned(8).SRem(AllOnes(8)); !got.IsZero() {
		t.Errorf("MinSigned srem -1 = %v, want 0", got)
	}
	for _, f := range []func(){
		func() { One(8).UDiv(Zero(8)) },
		func() { One(8).URem(Zero(8)) },
		func() { One(8).SDiv(Zero(8)) },
		func() { One(8).SRem(Zero(8)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("division by zero did not panic")
				}
			}()
			f()
		}()
	}
}

func TestShifts(t *testing.T) {
	if got := New(8, 32).Shl(2).Uint64(); got != 128 {
		t.Errorf("32<<2 = %d, want 128", got)
	}
	if got := New(8, 32).Shl(3).Uint64(); got != 0 {
		t.Errorf("32<<3 at i8 = %d, want 0 (wrapped)", got)
	}
	if got := New(8, 32).Shl(8); !got.IsZero() {
		t.Errorf("shl by width = %v, want 0", got)
	}
	if got := New(8, 0x80).LShr(7).Uint64(); got != 1 {
		t.Errorf("0x80 lshr 7 = %d, want 1", got)
	}
	if got := New(8, 0x80).AShr(7); !got.IsAllOnes() {
		t.Errorf("0x80 ashr 7 = %v, want all ones", got)
	}
	if got := New(8, 0x40).AShr(3).Uint64(); got != 8 {
		t.Errorf("0x40 ashr 3 = %d, want 8", got)
	}
	if got := New(8, 0x80).AShr(100); !got.IsAllOnes() {
		t.Errorf("negative ashr >= width = %v, want all ones", got)
	}
	if got := New(8, 0x40).AShr(100); !got.IsZero() {
		t.Errorf("positive ashr >= width = %v, want zero", got)
	}
}

func TestRotates(t *testing.T) {
	if got := New(8, 0b10000001).RotL(1).Uint64(); got != 0b00000011 {
		t.Errorf("rotl = %b", got)
	}
	if got := New(8, 0b10000001).RotR(1).Uint64(); got != 0b11000000 {
		t.Errorf("rotr = %b", got)
	}
	if got := New(8, 0xAB).RotL(8); got.Uint64() != 0xAB {
		t.Errorf("rotl by width = %x, want identity", got.Uint64())
	}
	if got := New(5, 0b10001).RotL(1).Uint64(); got != 0b00011 {
		t.Errorf("rotl width 5 = %b", got)
	}
}

func TestCasts(t *testing.T) {
	if got := New(32, 0x1234).Trunc(8).Uint64(); got != 0x34 {
		t.Errorf("trunc = %x", got)
	}
	if got := New(4, 0xF).ZExt(8).Uint64(); got != 0xF {
		t.Errorf("zext = %x", got)
	}
	if got := New(4, 0xF).SExt(8).Uint64(); got != 0xFF {
		t.Errorf("sext = %x", got)
	}
	if got := New(4, 0x7).SExt(8).Uint64(); got != 0x7 {
		t.Errorf("sext positive = %x", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("trunc to larger width did not panic")
			}
		}()
		New(8, 0).Trunc(16)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zext to smaller width did not panic")
			}
		}()
		New(8, 0).ZExt(4)
	}()
}

func TestComparisons(t *testing.T) {
	a, b := New(8, 200), New(8, 100) // signed: -56 vs 100
	if !a.UGT(b) || !b.ULT(a) || !a.UGE(b) || !b.ULE(a) {
		t.Error("unsigned comparisons wrong")
	}
	if !a.SLT(b) || !b.SGT(a) || !a.SLE(b) || !b.SGE(a) {
		t.Error("signed comparisons wrong")
	}
	if !a.Eq(a) || a.Eq(b) || !a.Ne(b) {
		t.Error("eq/ne wrong")
	}
	if got := a.UMax(b); got.Ne(a) {
		t.Error("umax wrong")
	}
	if got := a.SMax(b); got.Ne(b) {
		t.Error("smax wrong")
	}
	if got := a.UMin(b); got.Ne(b) {
		t.Error("umin wrong")
	}
	if got := a.SMin(b); got.Ne(a) {
		t.Error("smin wrong")
	}
}

func TestCounts(t *testing.T) {
	a := New(8, 0b00110100)
	if got := a.PopCount(); got != 3 {
		t.Errorf("popcount = %d, want 3", got)
	}
	if got := a.CountLeadingZeros(); got != 2 {
		t.Errorf("clz = %d, want 2", got)
	}
	if got := a.CountTrailingZeros(); got != 2 {
		t.Errorf("ctz = %d, want 2", got)
	}
	if got := Zero(8).CountTrailingZeros(); got != 8 {
		t.Errorf("ctz(0) = %d, want 8", got)
	}
	if got := Zero(8).CountLeadingZeros(); got != 8 {
		t.Errorf("clz(0) = %d, want 8", got)
	}
	if got := New(8, 0b11100000).CountLeadingOnes(); got != 3 {
		t.Errorf("clo = %d, want 3", got)
	}
}

func TestNumSignBits(t *testing.T) {
	cases := []struct {
		w    uint
		v    int64
		want uint
	}{
		{8, 0, 8},
		{8, -1, 8},
		{8, 1, 7},
		{8, -2, 7},
		{8, 127, 1},
		{8, -128, 1},
		{32, 5, 29},
		{16, -3, 14},
		{1, 0, 1},
		{1, -1, 1},
	}
	for _, c := range cases {
		if got := NewSigned(c.w, c.v).NumSignBits(); got != c.want {
			t.Errorf("NumSignBits(%d:i%d) = %d, want %d", c.v, c.w, got, c.want)
		}
	}
}

func TestByteSwapAndReverse(t *testing.T) {
	if got := New(32, 0x12345678).ByteSwap().Uint64(); got != 0x78563412 {
		t.Errorf("bswap = %x", got)
	}
	if got := New(16, 0x1234).ByteSwap().Uint64(); got != 0x3412 {
		t.Errorf("bswap16 = %x", got)
	}
	if got := New(8, 0b10000010).ReverseBits().Uint64(); got != 0b01000001 {
		t.Errorf("bitreverse = %b", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bswap of non-byte width did not panic")
			}
		}()
		New(4, 0).ByteSwap()
	}()
}

func TestAbsValue(t *testing.T) {
	if got := NewSigned(8, -5).AbsValue().Int64(); got != 5 {
		t.Errorf("abs(-5) = %d", got)
	}
	if got := NewSigned(8, 5).AbsValue().Int64(); got != 5 {
		t.Errorf("abs(5) = %d", got)
	}
	if got := MinSigned(8).AbsValue(); !got.IsMinSigned() {
		t.Errorf("abs(MinSigned) = %v, want MinSigned", got)
	}
}

func TestOverflowPredicates(t *testing.T) {
	if !New(8, 200).UAddOverflow(New(8, 100)) || New(8, 100).UAddOverflow(New(8, 100)) {
		t.Error("UAddOverflow wrong")
	}
	if !New(8, 100).SAddOverflow(New(8, 100)) || New(8, 100).SAddOverflow(New(8, 27)) {
		t.Error("SAddOverflow wrong")
	}
	if !NewSigned(8, -100).SAddOverflow(NewSigned(8, -100)) {
		t.Error("SAddOverflow negative wrong")
	}
	if !New(8, 1).USubOverflow(New(8, 2)) || New(8, 2).USubOverflow(New(8, 2)) {
		t.Error("USubOverflow wrong")
	}
	if !MinSigned(8).SSubOverflow(One(8)) || MaxSigned(8).SSubOverflow(One(8)) {
		t.Error("SSubOverflow wrong")
	}
	if !New(8, 16).UMulOverflow(New(8, 16)) || New(8, 15).UMulOverflow(New(8, 17)) {
		t.Error("UMulOverflow wrong")
	}
	if !New(8, 16).SMulOverflow(New(8, 8)) || NewSigned(8, 11).SMulOverflow(NewSigned(8, 11)) {
		t.Error("SMulOverflow wrong")
	}
	if !MinSigned(8).SMulOverflow(AllOnes(8)) {
		t.Error("SMulOverflow MinSigned*-1 should overflow")
	}
	if !New(8, 3).UShlOverflow(7) || New(8, 1).UShlOverflow(7) {
		t.Error("UShlOverflow wrong")
	}
	if !New(8, 1).SShlOverflow(7) || New(8, 1).SShlOverflow(6) {
		t.Error("SShlOverflow wrong")
	}
}

func TestOverflow64(t *testing.T) {
	big := New(64, math.MaxInt64)
	if !big.SMulOverflow(New(64, 2)) {
		t.Error("SMulOverflow at 64 bits wrong")
	}
	if New(64, 3).SMulOverflow(New(64, 5)) {
		t.Error("small 64-bit SMulOverflow wrong")
	}
	if !MinSigned(64).SMulOverflow(AllOnes(64)) {
		t.Error("MinSigned64 * -1 should overflow")
	}
	if AllOnes(64).SMulOverflow(One(64)) {
		t.Error("-1 * 1 should not overflow")
	}
}

func TestStrings(t *testing.T) {
	if got := New(8, 255).String(); got != "255:i8" {
		t.Errorf("String = %q", got)
	}
	if got := New(8, 255).SignedString(); got != "-1" {
		t.Errorf("SignedString = %q", got)
	}
	if got := New(8, 0b10100101).BitString(); got != "10100101" {
		t.Errorf("BitString = %q", got)
	}
	if got := New(4, 0b0101).BitString(); got != "0101" {
		t.Errorf("BitString width 4 = %q", got)
	}
}

// Property tests: cross-check width-8 arithmetic against native Go integers.

func TestQuickAddSubMul(t *testing.T) {
	f := func(x, y uint8) bool {
		a, b := New(8, uint64(x)), New(8, uint64(y))
		return a.Add(b).Uint64() == uint64(x+y) &&
			a.Sub(b).Uint64() == uint64(x-y) &&
			a.Mul(b).Uint64() == uint64(x*y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDivRem(t *testing.T) {
	f := func(x, y uint8) bool {
		if y == 0 {
			return true
		}
		a, b := New(8, uint64(x)), New(8, uint64(y))
		if a.UDiv(b).Uint64() != uint64(x/y) || a.URem(b).Uint64() != uint64(x%y) {
			return false
		}
		sx, sy := int8(x), int8(y)
		if sx == math.MinInt8 && sy == -1 {
			return true // wrap case checked separately
		}
		return a.SDiv(b).Int64() == int64(sx/sy) && a.SRem(b).Int64() == int64(sx%sy)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBitwise(t *testing.T) {
	f := func(x, y uint8) bool {
		a, b := New(8, uint64(x)), New(8, uint64(y))
		return a.And(b).Uint64() == uint64(x&y) &&
			a.Or(b).Uint64() == uint64(x|y) &&
			a.Xor(b).Uint64() == uint64(x^y) &&
			a.Not().Uint64() == uint64(^x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickShifts(t *testing.T) {
	f := func(x uint8, s uint8) bool {
		a := New(8, uint64(x))
		sh := uint(s % 8)
		return a.Shl(sh).Uint64() == uint64(x<<sh) &&
			a.LShr(sh).Uint64() == uint64(x>>sh) &&
			a.AShr(sh).Int64() == int64(int8(x)>>sh)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickNumSignBitsMatchesDefinition(t *testing.T) {
	f := func(x uint16) bool {
		a := New(16, uint64(x))
		// Count high-order bits equal to the sign bit directly.
		sign := a.Bit(15)
		n := uint(0)
		for i := uint(0); i < 16; i++ {
			if a.Bit(15-i) == sign {
				n++
			} else {
				break
			}
		}
		return a.NumSignBits() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickRotateInverse(t *testing.T) {
	f := func(x uint8, s uint8) bool {
		a := New(8, uint64(x))
		sh := uint(s)
		return a.RotL(sh).RotR(sh).Eq(a) && a.RotR(sh).RotL(sh).Eq(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickOverflowConsistency(t *testing.T) {
	f := func(x, y uint8) bool {
		a, b := New(8, uint64(x)), New(8, uint64(y))
		wideS := int64(int8(x)) + int64(int8(y))
		wideU := uint64(x) + uint64(y)
		if a.SAddOverflow(b) != (wideS < -128 || wideS > 127) {
			return false
		}
		if a.UAddOverflow(b) != (wideU > 255) {
			return false
		}
		wideP := int64(int8(x)) * int64(int8(y))
		if a.SMulOverflow(b) != (wideP < -128 || wideP > 127) {
			return false
		}
		return a.UMulOverflow(b) == (uint64(x)*uint64(y) > 255)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
