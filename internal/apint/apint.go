// Package apint implements fixed-width two's-complement integers of 1 to 64
// bits, modeled on LLVM's APInt. Values are immutable: every operation
// returns a new value. The representation invariant is that the stored
// uint64 never has bits set above the width.
//
// apint is the arithmetic substrate for the IR interpreter, the abstract
// domains (known bits, constant ranges), and the bit-blaster's constant
// folding, so its semantics must agree exactly across all of them. Division
// and remainder by zero panic here; callers that need total semantics (the
// interpreter's UB tracking, the solver's side conditions) check first.
package apint

import (
	"fmt"
	"math/bits"
	"strconv"
)

// MaxWidth is the largest supported bit width.
const MaxWidth = 64

// Int is a fixed-width two's-complement integer.
type Int struct {
	width uint
	val   uint64 // invariant: val&^mask(width) == 0
}

func mask(w uint) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

func checkWidth(w uint) {
	if w == 0 || w > MaxWidth {
		panic(fmt.Sprintf("apint: invalid width %d", w))
	}
}

// New returns an Int of the given width holding v truncated to that width.
func New(w uint, v uint64) Int {
	checkWidth(w)
	return Int{width: w, val: v & mask(w)}
}

// NewSigned returns an Int of the given width holding the two's-complement
// encoding of v truncated to that width.
func NewSigned(w uint, v int64) Int {
	return New(w, uint64(v))
}

// Zero returns the zero value of the given width.
func Zero(w uint) Int { return New(w, 0) }

// One returns 1 at the given width.
func One(w uint) Int { return New(w, 1) }

// AllOnes returns the value with every bit set (-1) at the given width.
func AllOnes(w uint) Int { return New(w, ^uint64(0)) }

// MaxUnsigned returns the largest unsigned value at the given width.
func MaxUnsigned(w uint) Int { return AllOnes(w) }

// MaxSigned returns the largest signed value (0111...1) at the given width.
func MaxSigned(w uint) Int {
	checkWidth(w)
	return Int{width: w, val: mask(w) >> 1}
}

// MinSigned returns the smallest signed value (1000...0) at the given width.
func MinSigned(w uint) Int {
	checkWidth(w)
	return Int{width: w, val: uint64(1) << (w - 1)}
}

// SignBitValue returns the value with only the sign bit set, identical to
// MinSigned but named for bit-mask use.
func SignBitValue(w uint) Int { return MinSigned(w) }

// Width returns the bit width.
func (a Int) Width() uint { return a.width }

// Uint64 returns the raw (zero-extended) value.
func (a Int) Uint64() uint64 { return a.val }

// Int64 returns the sign-extended value.
func (a Int) Int64() int64 {
	if a.width == 64 {
		return int64(a.val)
	}
	shift := 64 - a.width
	return int64(a.val<<shift) >> shift
}

// IsZero reports whether the value is zero.
func (a Int) IsZero() bool { return a.val == 0 }

// IsOne reports whether the value is one.
func (a Int) IsOne() bool { return a.val == 1 }

// IsAllOnes reports whether every bit is set.
func (a Int) IsAllOnes() bool { return a.val == mask(a.width) }

// IsMaxSigned reports whether the value is the largest signed value.
func (a Int) IsMaxSigned() bool { return a.val == MaxSigned(a.width).val }

// IsMinSigned reports whether the value is the smallest signed value.
func (a Int) IsMinSigned() bool { return a.val == MinSigned(a.width).val }

// IsNegative reports whether the sign bit is set.
func (a Int) IsNegative() bool { return a.val>>(a.width-1) == 1 }

// IsNonNegative reports whether the sign bit is clear.
func (a Int) IsNonNegative() bool { return !a.IsNegative() }

// IsStrictlyPositive reports whether the value is > 0 in signed order.
func (a Int) IsStrictlyPositive() bool { return !a.IsZero() && a.IsNonNegative() }

// IsPowerOfTwo reports whether exactly one bit is set.
func (a Int) IsPowerOfTwo() bool { return a.val != 0 && a.val&(a.val-1) == 0 }

// Bit returns bit i (0 = least significant).
func (a Int) Bit(i uint) bool {
	if i >= a.width {
		panic(fmt.Sprintf("apint: bit %d out of range for width %d", i, a.width))
	}
	return a.val>>i&1 == 1
}

// SetBit returns a copy with bit i set.
func (a Int) SetBit(i uint) Int {
	if i >= a.width {
		panic(fmt.Sprintf("apint: bit %d out of range for width %d", i, a.width))
	}
	return Int{width: a.width, val: a.val | uint64(1)<<i}
}

// ClearBit returns a copy with bit i cleared.
func (a Int) ClearBit(i uint) Int {
	if i >= a.width {
		panic(fmt.Sprintf("apint: bit %d out of range for width %d", i, a.width))
	}
	return Int{width: a.width, val: a.val &^ (uint64(1) << i)}
}

// FlipBit returns a copy with bit i inverted.
func (a Int) FlipBit(i uint) Int {
	if i >= a.width {
		panic(fmt.Sprintf("apint: bit %d out of range for width %d", i, a.width))
	}
	return Int{width: a.width, val: a.val ^ uint64(1)<<i}
}

func (a Int) sameWidth(b Int, op string) {
	if a.width != b.width {
		panic(fmt.Sprintf("apint: %s width mismatch %d vs %d", op, a.width, b.width))
	}
}

// Add returns a+b mod 2^w.
func (a Int) Add(b Int) Int {
	a.sameWidth(b, "add")
	return New(a.width, a.val+b.val)
}

// Sub returns a-b mod 2^w.
func (a Int) Sub(b Int) Int {
	a.sameWidth(b, "sub")
	return New(a.width, a.val-b.val)
}

// Neg returns -a mod 2^w.
func (a Int) Neg() Int { return New(a.width, -a.val) }

// Mul returns a*b mod 2^w.
func (a Int) Mul(b Int) Int {
	a.sameWidth(b, "mul")
	return New(a.width, a.val*b.val)
}

// UDiv returns the unsigned quotient a/b. Panics if b is zero.
func (a Int) UDiv(b Int) Int {
	a.sameWidth(b, "udiv")
	if b.val == 0 {
		panic("apint: unsigned division by zero")
	}
	return New(a.width, a.val/b.val)
}

// URem returns the unsigned remainder a%b. Panics if b is zero.
func (a Int) URem(b Int) Int {
	a.sameWidth(b, "urem")
	if b.val == 0 {
		panic("apint: unsigned remainder by zero")
	}
	return New(a.width, a.val%b.val)
}

// SDiv returns the signed quotient truncated toward zero. Panics if b is
// zero. MinSigned/-1 wraps to MinSigned (matching two's-complement hardware;
// LLVM calls that case UB and the interpreter flags it separately).
func (a Int) SDiv(b Int) Int {
	a.sameWidth(b, "sdiv")
	if b.val == 0 {
		panic("apint: signed division by zero")
	}
	if a.IsMinSigned() && b.IsAllOnes() {
		return a
	}
	return NewSigned(a.width, a.Int64()/b.Int64())
}

// SRem returns the signed remainder (sign follows the dividend). Panics if b
// is zero. MinSigned%-1 is 0.
func (a Int) SRem(b Int) Int {
	a.sameWidth(b, "srem")
	if b.val == 0 {
		panic("apint: signed remainder by zero")
	}
	if a.IsMinSigned() && b.IsAllOnes() {
		return Zero(a.width)
	}
	return NewSigned(a.width, a.Int64()%b.Int64())
}

// And returns the bitwise conjunction.
func (a Int) And(b Int) Int {
	a.sameWidth(b, "and")
	return Int{width: a.width, val: a.val & b.val}
}

// Or returns the bitwise disjunction.
func (a Int) Or(b Int) Int {
	a.sameWidth(b, "or")
	return Int{width: a.width, val: a.val | b.val}
}

// Xor returns the bitwise exclusive or.
func (a Int) Xor(b Int) Int {
	a.sameWidth(b, "xor")
	return Int{width: a.width, val: a.val ^ b.val}
}

// Not returns the bitwise complement.
func (a Int) Not() Int { return Int{width: a.width, val: ^a.val & mask(a.width)} }

// Shl returns a << s. Shift amounts >= width yield zero (callers that model
// LLVM poison must check separately).
func (a Int) Shl(s uint) Int {
	if s >= a.width {
		return Zero(a.width)
	}
	return New(a.width, a.val<<s)
}

// LShr returns the logical right shift a >> s, zero for s >= width.
func (a Int) LShr(s uint) Int {
	if s >= a.width {
		return Zero(a.width)
	}
	return Int{width: a.width, val: a.val >> s}
}

// AShr returns the arithmetic right shift; s >= width yields all sign bits.
func (a Int) AShr(s uint) Int {
	if s >= a.width {
		if a.IsNegative() {
			return AllOnes(a.width)
		}
		return Zero(a.width)
	}
	return NewSigned(a.width, a.Int64()>>s)
}

// RotL rotates left by s (mod width).
func (a Int) RotL(s uint) Int {
	s %= a.width
	if s == 0 {
		return a
	}
	return Int{width: a.width, val: (a.val<<s | a.val>>(a.width-s)) & mask(a.width)}
}

// RotR rotates right by s (mod width).
func (a Int) RotR(s uint) Int {
	return a.RotL(a.width - s%a.width)
}

// Trunc truncates to a smaller (or equal) width.
func (a Int) Trunc(w uint) Int {
	checkWidth(w)
	if w > a.width {
		panic(fmt.Sprintf("apint: trunc from %d to larger width %d", a.width, w))
	}
	return New(w, a.val)
}

// ZExt zero-extends to a larger (or equal) width.
func (a Int) ZExt(w uint) Int {
	checkWidth(w)
	if w < a.width {
		panic(fmt.Sprintf("apint: zext from %d to smaller width %d", a.width, w))
	}
	return Int{width: w, val: a.val}
}

// SExt sign-extends to a larger (or equal) width.
func (a Int) SExt(w uint) Int {
	checkWidth(w)
	if w < a.width {
		panic(fmt.Sprintf("apint: sext from %d to smaller width %d", a.width, w))
	}
	return New(w, uint64(a.Int64()))
}

// Eq reports a == b.
func (a Int) Eq(b Int) bool { a.sameWidth(b, "eq"); return a.val == b.val }

// Ne reports a != b.
func (a Int) Ne(b Int) bool { return !a.Eq(b) }

// ULT reports a < b unsigned.
func (a Int) ULT(b Int) bool { a.sameWidth(b, "ult"); return a.val < b.val }

// ULE reports a <= b unsigned.
func (a Int) ULE(b Int) bool { a.sameWidth(b, "ule"); return a.val <= b.val }

// UGT reports a > b unsigned.
func (a Int) UGT(b Int) bool { return b.ULT(a) }

// UGE reports a >= b unsigned.
func (a Int) UGE(b Int) bool { return b.ULE(a) }

// SLT reports a < b signed.
func (a Int) SLT(b Int) bool { a.sameWidth(b, "slt"); return a.Int64() < b.Int64() }

// SLE reports a <= b signed.
func (a Int) SLE(b Int) bool { a.sameWidth(b, "sle"); return a.Int64() <= b.Int64() }

// SGT reports a > b signed.
func (a Int) SGT(b Int) bool { return b.SLT(a) }

// SGE reports a >= b signed.
func (a Int) SGE(b Int) bool { return b.SLE(a) }

// UMin returns the unsigned minimum of a and b.
func (a Int) UMin(b Int) Int {
	if a.ULT(b) {
		return a
	}
	return b
}

// UMax returns the unsigned maximum of a and b.
func (a Int) UMax(b Int) Int {
	if a.UGT(b) {
		return a
	}
	return b
}

// SMin returns the signed minimum of a and b.
func (a Int) SMin(b Int) Int {
	if a.SLT(b) {
		return a
	}
	return b
}

// SMax returns the signed maximum of a and b.
func (a Int) SMax(b Int) Int {
	if a.SGT(b) {
		return a
	}
	return b
}

// PopCount returns the number of set bits.
func (a Int) PopCount() uint { return uint(bits.OnesCount64(a.val)) }

// CountLeadingZeros returns the number of zero bits above the highest set
// bit, within the value's width.
func (a Int) CountLeadingZeros() uint {
	return uint(bits.LeadingZeros64(a.val)) - (64 - a.width)
}

// CountTrailingZeros returns the number of zero bits below the lowest set
// bit; equal to the width when the value is zero.
func (a Int) CountTrailingZeros() uint {
	if a.val == 0 {
		return a.width
	}
	return uint(bits.TrailingZeros64(a.val))
}

// CountLeadingOnes returns the number of consecutive set high-order bits.
func (a Int) CountLeadingOnes() uint { return a.Not().CountLeadingZeros() }

// NumSignBits returns the number of leading bits equal to the sign bit;
// always at least 1.
func (a Int) NumSignBits() uint {
	if a.IsNegative() {
		return a.CountLeadingOnes()
	}
	n := a.CountLeadingZeros()
	if n == 0 {
		// Unreachable: a non-negative value has its top bit clear.
		panic("apint: non-negative value with no leading zeros")
	}
	return n
}

// ByteSwap reverses byte order. Panics unless the width is a multiple of 8.
func (a Int) ByteSwap() Int {
	if a.width%8 != 0 {
		panic(fmt.Sprintf("apint: bswap of non-byte width %d", a.width))
	}
	return Int{width: a.width, val: bits.ReverseBytes64(a.val) >> (64 - a.width)}
}

// ReverseBits reverses bit order.
func (a Int) ReverseBits() Int {
	return Int{width: a.width, val: bits.Reverse64(a.val) >> (64 - a.width)}
}

// AbsValue returns |a| mod 2^w (MinSigned maps to itself).
func (a Int) AbsValue() Int {
	if a.IsNegative() {
		return a.Neg()
	}
	return a
}

// UAddOverflow reports whether a+b overflows unsigned.
func (a Int) UAddOverflow(b Int) bool {
	a.sameWidth(b, "uadd.ov")
	return a.Add(b).ULT(a)
}

// SAddOverflow reports whether a+b overflows signed.
func (a Int) SAddOverflow(b Int) bool {
	a.sameWidth(b, "sadd.ov")
	s := a.Add(b)
	// Overflow iff the operands share a sign that differs from the result's.
	return a.IsNegative() == b.IsNegative() && s.IsNegative() != a.IsNegative()
}

// USubOverflow reports whether a-b underflows unsigned.
func (a Int) USubOverflow(b Int) bool {
	a.sameWidth(b, "usub.ov")
	return a.ULT(b)
}

// SSubOverflow reports whether a-b overflows signed.
func (a Int) SSubOverflow(b Int) bool {
	a.sameWidth(b, "ssub.ov")
	d := a.Sub(b)
	return a.IsNegative() != b.IsNegative() && d.IsNegative() != a.IsNegative()
}

// UMulOverflow reports whether a*b overflows unsigned.
func (a Int) UMulOverflow(b Int) bool {
	a.sameWidth(b, "umul.ov")
	hi, lo := bits.Mul64(a.val, b.val)
	return hi != 0 || lo&^mask(a.width) != 0
}

// SMulOverflow reports whether a*b overflows signed.
func (a Int) SMulOverflow(b Int) bool {
	a.sameWidth(b, "smul.ov")
	x, y := a.Int64(), b.Int64()
	if a.width <= 32 {
		// The exact product fits in int64.
		p := x * y
		return p != NewSigned(a.width, p).Int64()
	}
	if x == 0 || y == 0 {
		return false
	}
	// First decide whether x*y overflows int64 itself; if it does, its
	// magnitude is at least 2^63 >= 2^(width-1), so it overflows at any
	// supported width too.
	p := x * y
	if x == -1 {
		if y == int64(-1)<<63 {
			return true
		}
	} else if p/x != y {
		return true
	}
	return p != NewSigned(a.width, p).Int64()
}

// UShlOverflow reports whether a<<s loses set bits (unsigned overflow).
func (a Int) UShlOverflow(s uint) bool {
	if s >= a.width {
		return !a.IsZero()
	}
	return a.Shl(s).LShr(s).Ne(a)
}

// SShlOverflow reports whether a<<s changes value when interpreted signed.
func (a Int) SShlOverflow(s uint) bool {
	if s >= a.width {
		return !a.IsZero()
	}
	return a.Shl(s).AShr(s).Ne(a)
}

// String renders the value as an unsigned decimal with width suffix,
// matching Souper constant syntax (e.g. "255:i8").
func (a Int) String() string {
	return strconv.FormatUint(a.val, 10) + ":i" + strconv.FormatUint(uint64(a.width), 10)
}

// SignedString renders the value as a signed decimal.
func (a Int) SignedString() string {
	return strconv.FormatInt(a.Int64(), 10)
}

// BitString renders the value as a width-length binary string, most
// significant bit first (the notation used in the paper's examples).
func (a Int) BitString() string {
	buf := make([]byte, a.width)
	for i := uint(0); i < a.width; i++ {
		if a.Bit(a.width - 1 - i) {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}
