// Package eval interprets ir Functions on concrete inputs, tracking
// LLVM-style undefined behaviour. A dataflow fact is quantified over
// well-defined executions only, so the interpreter, the bit-blaster's side
// conditions, and the abstract transfer functions must all agree on exactly
// which inputs those are. This package is the executable definition.
//
// An execution is ill-defined (Eval returns ok=false) when:
//   - any division or remainder has a zero divisor,
//   - sdiv/srem overflows (MinSigned divided by -1),
//   - a shl/lshr/ashr amount is >= the bit width,
//   - an nsw/nuw-flagged add/sub/mul/shl wraps,
//   - an exact-flagged udiv/sdiv has a non-zero remainder, or an exact
//     lshr/ashr shifts out a set bit,
//   - an input lies outside its declared range metadata.
//
// cttz/ctlz of zero are defined (they return the width), and rotate amounts
// wrap, matching Souper.
package eval

import (
	"fmt"
	"math/rand"

	"dfcheck/internal/apint"
	"dfcheck/internal/ir"
)

// Env assigns a concrete value to each input variable.
type Env map[*ir.Inst]apint.Int

// EnvFromNames builds an Env for f from variable names. Missing or
// wrong-width entries are an error.
func EnvFromNames(f *ir.Function, vals map[string]uint64) (Env, error) {
	env := make(Env, len(f.Vars))
	for _, v := range f.Vars {
		val, ok := vals[v.Name]
		if !ok {
			return nil, fmt.Errorf("eval: no value for %%%s", v.Name)
		}
		env[v] = apint.New(v.Width, val)
	}
	return env, nil
}

// InRange reports whether every variable's value satisfies its range
// metadata. The range [lo,hi) may wrap; lo == hi denotes the full set.
func InRange(f *ir.Function, env Env) bool {
	for _, v := range f.Vars {
		if !v.HasRange {
			continue
		}
		if !rangeContains(env[v], v.Lo, v.Hi) {
			return false
		}
	}
	return true
}

func rangeContains(v, lo, hi apint.Int) bool {
	if lo.Eq(hi) {
		return true // full set
	}
	if lo.ULT(hi) {
		return v.UGE(lo) && v.ULT(hi)
	}
	return v.UGE(lo) || v.ULT(hi) // wrapped
}

// Eval runs f on env. ok is false when the execution is ill-defined; the
// returned value is meaningless in that case. For repeated evaluation of
// one function (enumeration sweeps), Compile amortizes the per-call setup.
func Eval(f *ir.Function, env Env) (result apint.Int, ok bool) {
	if !InRange(f, env) {
		return apint.Int{}, false
	}
	vals := make(map[*ir.Inst]apint.Int)
	for _, n := range f.Insts() {
		v, ok := evalInst(n, env, vals)
		if !ok {
			return apint.Int{}, false
		}
		vals[n] = v
	}
	return vals[f.Root], true
}

func evalInst(n *ir.Inst, env Env, vals map[*ir.Inst]apint.Int) (apint.Int, bool) {
	switch n.Op {
	case ir.OpVar:
		v, ok := env[n]
		if !ok {
			panic(fmt.Sprintf("eval: unbound var %%%s", n.Name))
		}
		if v.Width() != n.Width {
			panic(fmt.Sprintf("eval: %%%s bound at width %d, want %d", n.Name, v.Width(), n.Width))
		}
		return v, true
	case ir.OpConst:
		return n.Val, true
	}
	var a0, a1, a2 apint.Int
	switch len(n.Args) {
	case 3:
		a2 = vals[n.Args[2]]
		fallthrough
	case 2:
		a1 = vals[n.Args[1]]
		fallthrough
	case 1:
		a0 = vals[n.Args[0]]
	}
	return evalOp(n, a0, a1, a2)
}

// evalOp evaluates a non-leaf instruction on already-computed operand
// values (unused trailing operands are ignored).
func evalOp(n *ir.Inst, a0, a1, a2 apint.Int) (apint.Int, bool) {
	arg := func(i int) apint.Int {
		switch i {
		case 0:
			return a0
		case 1:
			return a1
		default:
			return a2
		}
	}
	switch n.Op {
	case ir.OpAdd:
		a, b := arg(0), arg(1)
		if n.Flags&ir.FlagNSW != 0 && a.SAddOverflow(b) {
			return apint.Int{}, false
		}
		if n.Flags&ir.FlagNUW != 0 && a.UAddOverflow(b) {
			return apint.Int{}, false
		}
		return a.Add(b), true
	case ir.OpSub:
		a, b := arg(0), arg(1)
		if n.Flags&ir.FlagNSW != 0 && a.SSubOverflow(b) {
			return apint.Int{}, false
		}
		if n.Flags&ir.FlagNUW != 0 && a.USubOverflow(b) {
			return apint.Int{}, false
		}
		return a.Sub(b), true
	case ir.OpMul:
		a, b := arg(0), arg(1)
		if n.Flags&ir.FlagNSW != 0 && a.SMulOverflow(b) {
			return apint.Int{}, false
		}
		if n.Flags&ir.FlagNUW != 0 && a.UMulOverflow(b) {
			return apint.Int{}, false
		}
		return a.Mul(b), true

	case ir.OpUDiv:
		a, b := arg(0), arg(1)
		if b.IsZero() {
			return apint.Int{}, false
		}
		q := a.UDiv(b)
		if n.Flags&ir.FlagExact != 0 && !a.URem(b).IsZero() {
			return apint.Int{}, false
		}
		return q, true
	case ir.OpSDiv:
		a, b := arg(0), arg(1)
		if b.IsZero() || (a.IsMinSigned() && b.IsAllOnes()) {
			return apint.Int{}, false
		}
		if n.Flags&ir.FlagExact != 0 && !a.SRem(b).IsZero() {
			return apint.Int{}, false
		}
		return a.SDiv(b), true
	case ir.OpURem:
		a, b := arg(0), arg(1)
		if b.IsZero() {
			return apint.Int{}, false
		}
		return a.URem(b), true
	case ir.OpSRem:
		a, b := arg(0), arg(1)
		if b.IsZero() || (a.IsMinSigned() && b.IsAllOnes()) {
			return apint.Int{}, false
		}
		return a.SRem(b), true

	case ir.OpAnd:
		return arg(0).And(arg(1)), true
	case ir.OpOr:
		return arg(0).Or(arg(1)), true
	case ir.OpXor:
		return arg(0).Xor(arg(1)), true

	case ir.OpShl:
		a, s := arg(0), arg(1)
		if s.Uint64() >= uint64(n.Width) {
			return apint.Int{}, false
		}
		sh := uint(s.Uint64())
		if n.Flags&ir.FlagNSW != 0 && a.SShlOverflow(sh) {
			return apint.Int{}, false
		}
		if n.Flags&ir.FlagNUW != 0 && a.UShlOverflow(sh) {
			return apint.Int{}, false
		}
		return a.Shl(sh), true
	case ir.OpLShr:
		a, s := arg(0), arg(1)
		if s.Uint64() >= uint64(n.Width) {
			return apint.Int{}, false
		}
		sh := uint(s.Uint64())
		if n.Flags&ir.FlagExact != 0 && a.LShr(sh).Shl(sh).Ne(a) {
			return apint.Int{}, false
		}
		return a.LShr(sh), true
	case ir.OpAShr:
		a, s := arg(0), arg(1)
		if s.Uint64() >= uint64(n.Width) {
			return apint.Int{}, false
		}
		sh := uint(s.Uint64())
		if n.Flags&ir.FlagExact != 0 && a.AShr(sh).Shl(sh).Ne(a) {
			return apint.Int{}, false
		}
		return a.AShr(sh), true

	case ir.OpEq:
		return boolToInt(arg(0).Eq(arg(1))), true
	case ir.OpNe:
		return boolToInt(arg(0).Ne(arg(1))), true
	case ir.OpULT:
		return boolToInt(arg(0).ULT(arg(1))), true
	case ir.OpULE:
		return boolToInt(arg(0).ULE(arg(1))), true
	case ir.OpSLT:
		return boolToInt(arg(0).SLT(arg(1))), true
	case ir.OpSLE:
		return boolToInt(arg(0).SLE(arg(1))), true

	case ir.OpSelect:
		if arg(0).IsOne() {
			return arg(1), true
		}
		return arg(2), true

	case ir.OpZExt:
		return arg(0).ZExt(n.Width), true
	case ir.OpSExt:
		return arg(0).SExt(n.Width), true
	case ir.OpTrunc:
		return arg(0).Trunc(n.Width), true

	case ir.OpCtPop:
		return apint.New(n.Width, uint64(arg(0).PopCount())), true
	case ir.OpBSwap:
		return arg(0).ByteSwap(), true
	case ir.OpBitReverse:
		return arg(0).ReverseBits(), true
	case ir.OpCttz:
		return apint.New(n.Width, uint64(arg(0).CountTrailingZeros())), true
	case ir.OpCtlz:
		return apint.New(n.Width, uint64(arg(0).CountLeadingZeros())), true

	case ir.OpRotL:
		return arg(0).RotL(uint(arg(1).Uint64() % uint64(n.Width))), true
	case ir.OpRotR:
		return arg(0).RotR(uint(arg(1).Uint64() % uint64(n.Width))), true

	case ir.OpUMin:
		return arg(0).UMin(arg(1)), true
	case ir.OpUMax:
		return arg(0).UMax(arg(1)), true
	case ir.OpSMin:
		return arg(0).SMin(arg(1)), true
	case ir.OpSMax:
		return arg(0).SMax(arg(1)), true
	case ir.OpAbs:
		return arg(0).AbsValue(), true

	case ir.OpFshl, ir.OpFshr:
		a, bv, s := arg(0), arg(1), uint(arg(2).Uint64()%uint64(n.Width))
		if n.Op == ir.OpFshl {
			if s == 0 {
				return a, true
			}
			return a.Shl(s).Or(bv.LShr(n.Width - s)), true
		}
		if s == 0 {
			return bv, true
		}
		return a.Shl(n.Width - s).Or(bv.LShr(s)), true

	case ir.OpUAddO:
		return boolToInt(arg(0).UAddOverflow(arg(1))), true
	case ir.OpSAddO:
		return boolToInt(arg(0).SAddOverflow(arg(1))), true
	case ir.OpUSubO:
		return boolToInt(arg(0).USubOverflow(arg(1))), true
	case ir.OpSSubO:
		return boolToInt(arg(0).SSubOverflow(arg(1))), true
	case ir.OpUMulO:
		return boolToInt(arg(0).UMulOverflow(arg(1))), true
	case ir.OpSMulO:
		return boolToInt(arg(0).SMulOverflow(arg(1))), true
	}
	panic(fmt.Sprintf("eval: unhandled op %v", n.Op))
}

func boolToInt(b bool) apint.Int {
	if b {
		return apint.One(1)
	}
	return apint.Zero(1)
}

// Program is a Function compiled for repeated evaluation: the topological
// order is computed once and instruction values live in a dense scratch
// slice instead of a per-call map, so an enumeration sweep pays the
// per-call cost of Eval's setup exactly once. A Program is not safe for
// concurrent use (the scratch is reused across Eval calls); compile one
// per goroutine.
type Program struct {
	f    *ir.Function
	code []progInst
	vals []apint.Int
}

type progInst struct {
	n          *ir.Inst
	a0, a1, a2 int // operand slots in vals (unused trail left at 0)
}

// Compile builds the evaluation program for f.
func Compile(f *ir.Function) *Program {
	order := f.Insts()
	slot := make(map[*ir.Inst]int, len(order))
	code := make([]progInst, len(order))
	for i, n := range order {
		slot[n] = i
		pc := progInst{n: n}
		switch len(n.Args) {
		case 3:
			pc.a2 = slot[n.Args[2]]
			fallthrough
		case 2:
			pc.a1 = slot[n.Args[1]]
			fallthrough
		case 1:
			pc.a0 = slot[n.Args[0]]
		}
		code[i] = pc
	}
	return &Program{f: f, code: code, vals: make([]apint.Int, len(order))}
}

// Eval runs the program on env, with exactly the semantics of the
// package-level Eval.
func (p *Program) Eval(env Env) (apint.Int, bool) {
	if !InRange(p.f, env) {
		return apint.Int{}, false
	}
	vals := p.vals
	for i := range p.code {
		pc := &p.code[i]
		n := pc.n
		switch n.Op {
		case ir.OpVar:
			v := env[n]
			if v.Width() != n.Width {
				panic(fmt.Sprintf("eval: %%%s bound at width %d, want %d", n.Name, v.Width(), n.Width))
			}
			vals[i] = v
		case ir.OpConst:
			vals[i] = n.Val
		default:
			v, ok := evalOp(n, vals[pc.a0], vals[pc.a1], vals[pc.a2])
			if !ok {
				return apint.Int{}, false
			}
			vals[i] = v
		}
	}
	// The root is last in topological order.
	return vals[len(vals)-1], true
}

// TotalInputBits returns the summed width of all input variables; exhaustive
// enumeration is feasible when this is small.
func TotalInputBits(f *ir.Function) uint {
	var total uint
	for _, v := range f.Vars {
		total += v.Width
	}
	return total
}

// MaxEnumBits is the largest total input width ForEachInput will enumerate.
const MaxEnumBits = 24

// ForEachInput enumerates every input assignment (including ill-defined
// ones; callers see ok=false from Eval for those) and calls fn. Enumeration
// stops early if fn returns false. It panics when the input space exceeds
// 2^MaxEnumBits assignments.
func ForEachInput(f *ir.Function, fn func(env Env) bool) {
	total := TotalInputBits(f)
	if total > MaxEnumBits {
		panic(fmt.Sprintf("eval: input space of %d bits too large to enumerate", total))
	}
	env := make(Env, len(f.Vars))
	var count uint64 = 1 << total
	for x := uint64(0); x < count; x++ {
		bits := x
		for _, v := range f.Vars {
			env[v] = apint.New(v.Width, bits)
			bits >>= v.Width
		}
		if !fn(env) {
			return
		}
	}
}

// RandomEnv draws a uniformly random input assignment.
func RandomEnv(f *ir.Function, rng *rand.Rand) Env {
	env := make(Env, len(f.Vars))
	for _, v := range f.Vars {
		env[v] = apint.New(v.Width, rng.Uint64())
	}
	return env
}

// RandomWellDefinedEnv draws random assignments until one yields a
// well-defined execution, up to tries attempts.
func RandomWellDefinedEnv(f *ir.Function, rng *rand.Rand, tries int) (Env, bool) {
	for i := 0; i < tries; i++ {
		env := RandomEnv(f, rng)
		if _, ok := Eval(f, env); ok {
			return env, true
		}
	}
	return nil, false
}
