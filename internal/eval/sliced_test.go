package eval_test

import (
	"fmt"
	"math/rand"
	"testing"

	"dfcheck/internal/apint"
	"dfcheck/internal/eval"
	"dfcheck/internal/harvest"
	"dfcheck/internal/ir"
)

// checkExhaustive sweeps f's entire input space through EvalIndexed and
// demands per-lane agreement with the scalar Program on both the ok bit
// and (on ok lanes) the value.
func checkExhaustive(t *testing.T, name string, f *ir.Function) {
	t.Helper()
	total := eval.TotalInputBits(f)
	if total > 16 {
		t.Fatalf("%s: %d input bits is too large for an exhaustive check", name, total)
	}
	sp := eval.CompileSliced(f)
	p := eval.Compile(f)
	count := uint64(1) << total
	lanes := uint64(64)
	if count < 64 {
		lanes = count
	}
	env := make(eval.Env, len(f.Vars))
	for base := uint64(0); base < count; base += 64 {
		planes, ok := sp.EvalIndexed(base)
		for l := uint64(0); l < lanes; l++ {
			idx := base + l
			bits := idx
			for _, v := range f.Vars {
				env[v] = apint.New(v.Width, bits)
				bits >>= v.Width
			}
			want, wantOK := p.Eval(env)
			gotOK := ok>>l&1 == 1
			if gotOK != wantOK {
				t.Fatalf("%s: input %#x: sliced ok=%v, scalar ok=%v", name, idx, gotOK, wantOK)
			}
			if gotOK {
				if got := eval.Lane(planes, uint(l)); got != want.Uint64() {
					t.Fatalf("%s: input %#x: sliced %#x, scalar %#x", name, idx, got, want.Uint64())
				}
			}
		}
	}
}

// singleOpFuncs builds every (op, width, flags) single-instruction
// function worth sweeping, covering the full instruction set — including
// OpSSubO/OpUMulO, which the harvest generator's op mix omits.
func singleOpFuncs() map[string]*ir.Function {
	out := make(map[string]*ir.Function)
	add := func(name string, root func(b *ir.Builder) *ir.Inst) {
		b := ir.NewBuilder()
		out[name] = b.Function(root(b))
	}
	flagSets := func(valid ir.Flags) []ir.Flags {
		sets := []ir.Flags{0}
		for _, fl := range []ir.Flags{ir.FlagNSW, ir.FlagNUW, ir.FlagExact} {
			if valid&fl != 0 {
				sets = append(sets, fl)
			}
		}
		if valid&(ir.FlagNSW|ir.FlagNUW) == ir.FlagNSW|ir.FlagNUW {
			sets = append(sets, ir.FlagNSW|ir.FlagNUW)
		}
		return sets
	}
	for _, op := range ir.AllOps() {
		op := op
		switch {
		case op.IsCast():
			from, to := uint(3), uint(8)
			if op == ir.OpTrunc {
				from, to = 8, 3
			}
			add(fmt.Sprintf("%v_i%d_i%d", op, from, to), func(b *ir.Builder) *ir.Inst {
				return b.BuildCast(op, to, b.Var("x", from))
			})
			add(fmt.Sprintf("%v_i1", op), func(b *ir.Builder) *ir.Inst {
				if op == ir.OpTrunc {
					return b.BuildCast(op, 1, b.Var("x", 4))
				}
				return b.BuildCast(op, 4, b.Var("x", 1))
			})
		case op.Arity() == 1:
			widths := []uint{1, 4, 8}
			if op == ir.OpBSwap {
				widths = []uint{8, 16}
			}
			for _, w := range widths {
				w := w
				add(fmt.Sprintf("%v_i%d", op, w), func(b *ir.Builder) *ir.Inst {
					return b.Build(op, 0, b.Var("x", w))
				})
			}
		case op == ir.OpSelect:
			for _, w := range []uint{1, 4, 7} {
				w := w
				add(fmt.Sprintf("%v_i%d", op, w), func(b *ir.Builder) *ir.Inst {
					return b.Build(op, 0, b.Var("c", 1), b.Var("x", w), b.Var("y", w))
				})
			}
		case op == ir.OpFshl || op == ir.OpFshr:
			for _, w := range []uint{1, 3, 4, 5} {
				w := w
				add(fmt.Sprintf("%v_i%d", op, w), func(b *ir.Builder) *ir.Inst {
					return b.Build(op, 0, b.Var("x", w), b.Var("y", w), b.Var("s", w))
				})
			}
		default: // arity-2 ops, including comparisons and overflow predicates
			for _, w := range []uint{1, 3, 4, 8} {
				for _, fl := range flagSets(op.ValidFlags()) {
					w, fl := w, fl
					add(fmt.Sprintf("%v%v_i%d", op, fl, w), func(b *ir.Builder) *ir.Inst {
						return b.Build(op, fl, b.Var("x", w), b.Var("y", w))
					})
				}
			}
		}
	}
	return out
}

// TestSlicedAllOpsExhaustive sweeps every opcode at several widths and
// every legal flag combination over the full input space.
func TestSlicedAllOpsExhaustive(t *testing.T) {
	for name, f := range singleOpFuncs() {
		checkExhaustive(t, name, f)
	}
}

// TestSlicedRangeMetadata checks that range-constrained variables (both
// ordinary and wrapped ranges, and the lo==hi full set) disqualify
// exactly the lanes the scalar interpreter rejects.
func TestSlicedRangeMetadata(t *testing.T) {
	cases := []struct {
		name   string
		lo, hi uint64
	}{
		{"plain", 3, 11},
		{"wrapped", 200, 9},
		{"full", 5, 5},
		{"singleton", 7, 8},
	}
	for _, c := range cases {
		b := ir.NewBuilder()
		x := b.VarRange("x", 8, apint.New(8, c.lo), apint.New(8, c.hi))
		y := b.Var("y", 4)
		f := b.Function(b.Add(x, b.ZExt(y, 8)))
		checkExhaustive(t, "range_"+c.name, f)
	}
}

// TestSlicedMatchesScalarRandomFunctions drives random harvested
// functions (which include ranged variables and poison flags) through
// EvalBlock on random 64-environment blocks, demanding lane-for-lane
// agreement with scalar Eval on the (value, ok) pair.
func TestSlicedMatchesScalarRandomFunctions(t *testing.T) {
	exprs := harvest.Generate(harvest.Config{
		Seed:     1234,
		NumExprs: 120,
		MaxInsts: 7,
		Widths:   []harvest.WidthWeight{{Width: 4, Weight: 2}, {Width: 8, Weight: 3}, {Width: 13, Weight: 1}, {Width: 32, Weight: 1}},
	})
	rng := rand.New(rand.NewSource(99))
	for _, e := range exprs {
		sp := eval.CompileSliced(e.F)
		p := eval.Compile(e.F)
		for round := 0; round < 4; round++ {
			n := 64
			if round == 3 {
				n = 17 // partial block: lanes past len(envs) must read not-ok
			}
			envs := make([]eval.Env, n)
			for i := range envs {
				envs[i] = eval.RandomEnv(e.F, rng)
			}
			planes, ok := sp.EvalBlock(envs)
			if n < 64 && ok>>uint(n) != 0 {
				t.Fatalf("%s: lanes beyond len(envs)=%d marked ok (mask %#x)", e.Name, n, ok)
			}
			for l, env := range envs {
				want, wantOK := p.Eval(env)
				gotOK := ok>>uint(l)&1 == 1
				if gotOK != wantOK {
					t.Fatalf("%s: lane %d: sliced ok=%v, scalar ok=%v", e.Name, l, gotOK, wantOK)
				}
				if gotOK {
					if got := eval.Lane(planes, uint(l)); got != want.Uint64() {
						t.Fatalf("%s: lane %d: sliced %#x, scalar %#x", e.Name, l, got, want.Uint64())
					}
				}
			}
		}
	}
}

// TestSlicedEvalIndexedRandomFunctions runs full-space EvalIndexed sweeps
// on harvested functions small enough to enumerate.
func TestSlicedEvalIndexedRandomFunctions(t *testing.T) {
	exprs := harvest.Generate(harvest.Config{
		Seed:     555,
		NumExprs: 150,
		MaxInsts: 6,
		Widths:   []harvest.WidthWeight{{Width: 3, Weight: 1}, {Width: 4, Weight: 2}, {Width: 5, Weight: 1}},
	})
	checked := 0
	for _, e := range exprs {
		if eval.TotalInputBits(e.F) > 14 {
			continue
		}
		checkExhaustive(t, e.Name, e.F)
		checked++
	}
	if checked < 20 {
		t.Fatalf("only %d functions were small enough to sweep; corpus too thin", checked)
	}
}

// TestEvalBlockAlignmentPanics pins the EvalIndexed preconditions.
func TestEvalBlockAlignmentPanics(t *testing.T) {
	f := ir.MustParse("%x:i8 = var\n%0:i8 = add %x, %x\ninfer %0")
	sp := eval.CompileSliced(f)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("unaligned base", func() { sp.EvalIndexed(3) })
	small := ir.MustParse("%x:i3 = var\n%0:i3 = add %x, %x\ninfer %0")
	ssp := eval.CompileSliced(small)
	mustPanic("nonzero base on small space", func() { ssp.EvalIndexed(64) })
	if got := ssp.NumLanes(); got != 8 {
		t.Errorf("NumLanes on a 3-bit space: got %d, want 8", got)
	}
}
