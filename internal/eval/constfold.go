package eval

import (
	"dfcheck/internal/apint"
	"dfcheck/internal/ir"
)

// ConstFold evaluates one non-leaf operation on concrete operand values
// under the same UB/poison semantics as Eval: ok is false when the
// execution is ill-defined (division by zero, poison-flag violation,
// oversized shift amount). Abstract interpreters use it to fold
// all-singleton operand tuples exactly instead of duplicating the
// concrete semantics per domain.
func ConstFold(op ir.Op, flags ir.Flags, dstW uint, args []apint.Int) (apint.Int, bool) {
	n := &ir.Inst{Op: op, Flags: flags, Width: dstW}
	var a0, a1, a2 apint.Int
	switch len(args) {
	case 3:
		a2 = args[2]
		fallthrough
	case 2:
		a1 = args[1]
		fallthrough
	case 1:
		a0 = args[0]
	}
	return evalOp(n, a0, a1, a2)
}
