package eval

import (
	"math/rand"
	"testing"

	"dfcheck/internal/harvest"
	"dfcheck/internal/ir"
)

// TestProgramMatchesEval cross-checks the compiled evaluator against the
// map-based reference on the whole input space of small random DAGs, and
// on sampled inputs of wide ones. The scratch reuse must not leak state
// between calls, so each program is run over many inputs.
func TestProgramMatchesEval(t *testing.T) {
	small := harvest.Generate(harvest.Config{
		Seed:     7,
		NumExprs: 40,
		MaxInsts: 6,
		Widths:   []harvest.WidthWeight{{Width: 4, Weight: 1}},
	})
	for _, e := range small {
		if TotalInputBits(e.F) > 12 {
			continue
		}
		p := Compile(e.F)
		ForEachInput(e.F, func(env Env) bool {
			want, wantOK := Eval(e.F, env)
			got, gotOK := p.Eval(env)
			if gotOK != wantOK || (wantOK && got.Ne(want)) {
				t.Fatalf("%s: program = (%v, %v), eval = (%v, %v) for %v\n%s",
					e.Name, got, gotOK, want, wantOK, env, e.F)
			}
			return true
		})
	}

	wide := harvest.Generate(harvest.Config{
		Seed:         8,
		NumExprs:     30,
		MaxInsts:     6,
		Widths:       []harvest.WidthWeight{{Width: 16, Weight: 1}, {Width: 24, Weight: 1}},
		MaxCastWidth: 32,
	})
	rng := rand.New(rand.NewSource(9))
	for _, e := range wide {
		p := Compile(e.F)
		for trial := 0; trial < 50; trial++ {
			env := RandomEnv(e.F, rng)
			want, wantOK := Eval(e.F, env)
			got, gotOK := p.Eval(env)
			if gotOK != wantOK || (wantOK && got.Ne(want)) {
				t.Fatalf("%s: program = (%v, %v), eval = (%v, %v)\n%s",
					e.Name, got, gotOK, want, wantOK, e.F)
			}
		}
	}
}

// TestProgramRangeMetadata checks the compiled evaluator honours variable
// range metadata exactly like Eval.
func TestProgramRangeMetadata(t *testing.T) {
	f := ir.MustParse("%x:i4 = var (range=[2,9))\n%0:i4 = add %x, 1:i4\ninfer %0")
	p := Compile(f)
	ForEachInput(f, func(env Env) bool {
		want, wantOK := Eval(f, env)
		got, gotOK := p.Eval(env)
		if gotOK != wantOK || (wantOK && got.Ne(want)) {
			t.Fatalf("program = (%v, %v), eval = (%v, %v) for %v", got, gotOK, want, wantOK, env)
		}
		return true
	})
}
