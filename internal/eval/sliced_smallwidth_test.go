package eval_test

import (
	"fmt"
	"testing"

	"dfcheck/internal/apint"
	"dfcheck/internal/eval"
	"dfcheck/internal/ir"
)

// smallWidthFuncs builds, for one width w, expression shapes whose whole
// input space fits inside a single 64-lane block: the regime where
// EvalIndexed must mask out the phantom lanes at indices ≥ 2^total,
// which otherwise duplicate the low lanes' input patterns (LaneIndex
// planes repeat with period 2^total) and would leak duplicate — or, on
// UB-carrying expressions, garbage — values into any output-set sweep.
func smallWidthFuncs(w uint) map[string]*ir.Function {
	out := map[string]*ir.Function{
		"mul-self": ir.MustParse(fmt.Sprintf("%%x:i%d = var\n%%0:i%d = mul %%x, %%x\ninfer %%0", w, w)),
		"udiv-ub":  ir.MustParse(fmt.Sprintf("%%x:i%d = var\n%%0:i%d = udiv 1:i%d, %%x\ninfer %%0", w, w, w)),
		"addnsw":   ir.MustParse(fmt.Sprintf("%%x:i%d = var\n%%0:i%d = addnsw %%x, 1:i%d\ninfer %%0", w, w, w)),
	}
	if w >= 2 {
		out["range"] = ir.MustParse(fmt.Sprintf("%%x:i%d = var (range=[1,3))\n%%0:i%d = add %%x, %%x\ninfer %%0", w, w))
	}
	if 2*w <= 5 {
		out["two-vars"] = ir.MustParse(fmt.Sprintf("%%x:i%d = var\n%%y:i%d = var\n%%0:i%d = urem %%x, %%y\ninfer %%0", w, w, w))
	}
	return out
}

// TestEvalIndexedSmallWidthMasking exhaustively checks widths 1..5: the
// ok mask must cover exactly the lanes below 2^total that the scalar
// interpreter accepts — never a phantom lane above the input space — and
// the set of values gathered from ok lanes must equal the scalar
// enumeration's achievable-output set exactly.
func TestEvalIndexedSmallWidthMasking(t *testing.T) {
	for w := uint(1); w <= 5; w++ {
		for name, f := range smallWidthFuncs(w) {
			name := fmt.Sprintf("w%d/%s", w, name)
			total := eval.TotalInputBits(f)
			if total >= 6 {
				t.Fatalf("%s: %d input bits does not fit one block", name, total)
			}
			sp := eval.CompileSliced(f)
			if got, want := sp.NumLanes(), uint(1)<<total; got != want {
				t.Errorf("%s: NumLanes = %d, want %d", name, got, want)
			}
			planes, ok := sp.EvalIndexed(0)
			if hi := ok >> (1 << total); hi != 0 {
				t.Errorf("%s: phantom lanes above 2^%d leaked into the ok mask: %#x", name, total, ok)
			}

			p := eval.Compile(f)
			env := make(eval.Env, len(f.Vars))
			wantSet := make(map[uint64]bool)
			for idx := uint64(0); idx < 1<<total; idx++ {
				bits := idx
				for _, v := range f.Vars {
					env[v] = apint.New(v.Width, bits)
					bits >>= v.Width
				}
				want, wantOK := p.Eval(env)
				if gotOK := ok>>idx&1 == 1; gotOK != wantOK {
					t.Fatalf("%s: input %#x: sliced ok=%v, scalar ok=%v", name, idx, gotOK, wantOK)
				}
				if !wantOK {
					continue
				}
				wantSet[want.Uint64()] = true
				if got := eval.Lane(planes, uint(idx)); got != want.Uint64() {
					t.Fatalf("%s: input %#x: sliced %#x, scalar %#x", name, idx, got, want.Uint64())
				}
			}

			gotSet := make(map[uint64]bool)
			for m := ok; m != 0; m &= m - 1 {
				l := uint(0)
				for ; m>>l&1 == 0; l++ {
				}
				gotSet[eval.Lane(planes, l)] = true
			}
			if len(gotSet) != len(wantSet) {
				t.Fatalf("%s: output set %v, scalar set %v", name, gotSet, wantSet)
			}
			for v := range wantSet {
				if !gotSet[v] {
					t.Fatalf("%s: achievable value %#x missing from sliced output set", name, v)
				}
			}
		}
	}
}

// TestEvalIndexedZeroInputBits: a constant expression has a one-lane
// input space; the other 63 lanes must be masked.
func TestEvalIndexedZeroInputBits(t *testing.T) {
	f := ir.MustParse("%0:i4 = add 3:i4, 6:i4\ninfer %0")
	sp := eval.CompileSliced(f)
	if got := sp.NumLanes(); got != 1 {
		t.Fatalf("NumLanes = %d, want 1", got)
	}
	planes, ok := sp.EvalIndexed(0)
	if ok != 1 {
		t.Fatalf("ok mask = %#x, want exactly lane 0", ok)
	}
	if got := eval.Lane(planes, 0); got != 9 {
		t.Fatalf("lane 0 = %d, want 9", got)
	}
}
