package eval

import (
	"math/rand"
	"testing"

	"dfcheck/internal/apint"
	"dfcheck/internal/ir"
)

func evalOn(t *testing.T, src string, vals map[string]uint64) (apint.Int, bool) {
	t.Helper()
	f := ir.MustParse(src)
	env, err := EnvFromNames(f, vals)
	if err != nil {
		t.Fatal(err)
	}
	return Eval(f, env)
}

func mustEval(t *testing.T, src string, vals map[string]uint64) apint.Int {
	t.Helper()
	v, ok := evalOn(t, src, vals)
	if !ok {
		t.Fatalf("unexpected UB for %v on %s", vals, src)
	}
	return v
}

func mustUB(t *testing.T, src string, vals map[string]uint64) {
	t.Helper()
	if _, ok := evalOn(t, src, vals); ok {
		t.Errorf("expected UB for %v on %s", vals, src)
	}
}

func TestArithmetic(t *testing.T) {
	if got := mustEval(t, "%x:i8 = var\n%0:i8 = add %x, 200:i8\ninfer %0", map[string]uint64{"x": 100}); got.Uint64() != 44 {
		t.Errorf("wrapping add = %v", got)
	}
	if got := mustEval(t, "%x:i8 = var\n%0:i8 = mul %x, 3:i8\ninfer %0", map[string]uint64{"x": 100}); got.Uint64() != 44 {
		t.Errorf("wrapping mul = %v", got)
	}
	if got := mustEval(t, "%x:i8 = var\n%0:i8 = sub 0:i8, %x\ninfer %0", map[string]uint64{"x": 1}); !got.IsAllOnes() {
		t.Errorf("neg = %v", got)
	}
}

func TestDivRemUB(t *testing.T) {
	mustUB(t, "%x:i8 = var\n%0:i8 = udiv 10:i8, %x\ninfer %0", map[string]uint64{"x": 0})
	mustUB(t, "%x:i8 = var\n%0:i8 = urem 10:i8, %x\ninfer %0", map[string]uint64{"x": 0})
	mustUB(t, "%x:i8 = var\n%0:i8 = sdiv %x, 255:i8\ninfer %0", map[string]uint64{"x": 128}) // MinSigned / -1
	mustUB(t, "%x:i8 = var\n%0:i8 = srem %x, 255:i8\ninfer %0", map[string]uint64{"x": 128})
	if got := mustEval(t, "%x:i8 = var\n%0:i8 = sdiv %x, 2:i8\ninfer %0", map[string]uint64{"x": 0xF9}); got.Int64() != -3 {
		t.Errorf("-7 sdiv 2 = %v", got.Int64())
	}
	if got := mustEval(t, "%x:i8 = var\n%0:i8 = srem %x, 2:i8\ninfer %0", map[string]uint64{"x": 0xF9}); got.Int64() != -1 {
		t.Errorf("-7 srem 2 = %v", got.Int64())
	}
}

func TestShiftUB(t *testing.T) {
	mustUB(t, "%x:i8 = var\n%0:i8 = shl 1:i8, %x\ninfer %0", map[string]uint64{"x": 8})
	mustUB(t, "%x:i8 = var\n%0:i8 = lshr 1:i8, %x\ninfer %0", map[string]uint64{"x": 200})
	mustUB(t, "%x:i8 = var\n%0:i8 = ashr 1:i8, %x\ninfer %0", map[string]uint64{"x": 8})
	if got := mustEval(t, "%x:i8 = var\n%0:i8 = shl 1:i8, %x\ninfer %0", map[string]uint64{"x": 7}); got.Uint64() != 128 {
		t.Errorf("1<<7 = %v", got)
	}
}

func TestFlagUB(t *testing.T) {
	mustUB(t, "%x:i8 = var\n%0:i8 = addnsw %x, 1:i8\ninfer %0", map[string]uint64{"x": 127})
	mustUB(t, "%x:i8 = var\n%0:i8 = addnuw %x, 1:i8\ninfer %0", map[string]uint64{"x": 255})
	mustUB(t, "%x:i8 = var\n%0:i8 = subnuw 0:i8, %x\ninfer %0", map[string]uint64{"x": 1})
	mustUB(t, "%x:i8 = var\n%0:i8 = subnsw %x, 1:i8\ninfer %0", map[string]uint64{"x": 128})
	mustUB(t, "%x:i8 = var\n%0:i8 = mulnsw %x, 10:i8\ninfer %0", map[string]uint64{"x": 13})
	mustUB(t, "%x:i8 = var\n%0:i8 = mulnuw %x, 2:i8\ninfer %0", map[string]uint64{"x": 128})
	mustUB(t, "%x:i8 = var\n%0:i8 = shlnuw %x, 1:i8\ninfer %0", map[string]uint64{"x": 128})
	mustUB(t, "%x:i8 = var\n%0:i8 = shlnsw %x, 1:i8\ninfer %0", map[string]uint64{"x": 64})
	mustUB(t, "%x:i8 = var\n%0:i8 = udivexact %x, 2:i8\ninfer %0", map[string]uint64{"x": 3})
	mustUB(t, "%x:i8 = var\n%0:i8 = sdivexact %x, 2:i8\ninfer %0", map[string]uint64{"x": 255})
	mustUB(t, "%x:i8 = var\n%0:i8 = lshrexact %x, 1:i8\ninfer %0", map[string]uint64{"x": 3})
	mustUB(t, "%x:i8 = var\n%0:i8 = ashrexact %x, 1:i8\ninfer %0", map[string]uint64{"x": 255})
	// Well-defined counterparts.
	if got := mustEval(t, "%x:i8 = var\n%0:i8 = addnsw %x, 1:i8\ninfer %0", map[string]uint64{"x": 126}); got.Uint64() != 127 {
		t.Errorf("nsw add = %v", got)
	}
	if got := mustEval(t, "%x:i8 = var\n%0:i8 = udivexact %x, 2:i8\ninfer %0", map[string]uint64{"x": 4}); got.Uint64() != 2 {
		t.Errorf("exact udiv = %v", got)
	}
	if got := mustEval(t, "%x:i8 = var\n%0:i8 = ashrexact %x, 1:i8\ninfer %0", map[string]uint64{"x": 0xFE}); got.Int64() != -1 {
		t.Errorf("exact ashr = %v", got.Int64())
	}
}

func TestRangeMetadata(t *testing.T) {
	src := "%x:i8 = var (range=[1,7))\ninfer %x"
	if got := mustEval(t, src, map[string]uint64{"x": 3}); got.Uint64() != 3 {
		t.Errorf("in-range = %v", got)
	}
	mustUB(t, src, map[string]uint64{"x": 0})
	mustUB(t, src, map[string]uint64{"x": 7})

	// Wrapped range [1,0): everything except zero.
	wrapped := "%x:i8 = var (range=[1,0))\ninfer %x"
	if got := mustEval(t, wrapped, map[string]uint64{"x": 255}); got.Uint64() != 255 {
		t.Errorf("wrapped in-range = %v", got)
	}
	mustUB(t, wrapped, map[string]uint64{"x": 0})
}

func TestComparisonsAndSelect(t *testing.T) {
	src := `
		%x:i8 = var
		%0:i1 = slt %x, 0:i8
		%1:i8 = select %0, 1:i8, 2:i8
		infer %1
	`
	if got := mustEval(t, src, map[string]uint64{"x": 200}); got.Uint64() != 1 {
		t.Errorf("select true arm = %v", got)
	}
	if got := mustEval(t, src, map[string]uint64{"x": 100}); got.Uint64() != 2 {
		t.Errorf("select false arm = %v", got)
	}
	cmps := []struct {
		op   string
		x, y uint64
		want uint64
	}{
		{"eq", 5, 5, 1}, {"eq", 5, 6, 0},
		{"ne", 5, 6, 1}, {"ne", 5, 5, 0},
		{"ult", 5, 200, 1}, {"ult", 200, 5, 0},
		{"ule", 5, 5, 1}, {"ule", 6, 5, 0},
		{"slt", 200, 5, 1}, {"slt", 5, 200, 0}, // 200 is -56 signed
		{"sle", 200, 200, 1}, {"sle", 5, 200, 0},
	}
	for _, c := range cmps {
		src := "%x:i8 = var\n%y:i8 = var\n%0:i1 = " + c.op + " %x, %y\ninfer %0"
		if got := mustEval(t, src, map[string]uint64{"x": c.x, "y": c.y}); got.Uint64() != c.want {
			t.Errorf("%s %d,%d = %v, want %d", c.op, c.x, c.y, got, c.want)
		}
	}
}

func TestCastsAndIntrinsics(t *testing.T) {
	if got := mustEval(t, "%x:i4 = var\n%0:i8 = zext %x\ninfer %0", map[string]uint64{"x": 0xF}); got.Uint64() != 0xF {
		t.Errorf("zext = %v", got)
	}
	if got := mustEval(t, "%x:i4 = var\n%0:i8 = sext %x\ninfer %0", map[string]uint64{"x": 0xF}); got.Uint64() != 0xFF {
		t.Errorf("sext = %v", got)
	}
	if got := mustEval(t, "%x:i16 = var\n%0:i8 = trunc %x\ninfer %0", map[string]uint64{"x": 0x1234}); got.Uint64() != 0x34 {
		t.Errorf("trunc = %v", got)
	}
	if got := mustEval(t, "%x:i8 = var\n%0:i8 = ctpop %x\ninfer %0", map[string]uint64{"x": 0xB5}); got.Uint64() != 5 {
		t.Errorf("ctpop = %v", got)
	}
	if got := mustEval(t, "%x:i16 = var\n%0:i16 = bswap %x\ninfer %0", map[string]uint64{"x": 0x1234}); got.Uint64() != 0x3412 {
		t.Errorf("bswap = %v", got)
	}
	if got := mustEval(t, "%x:i8 = var\n%0:i8 = bitreverse %x\ninfer %0", map[string]uint64{"x": 0x01}); got.Uint64() != 0x80 {
		t.Errorf("bitreverse = %v", got)
	}
	if got := mustEval(t, "%x:i8 = var\n%0:i8 = cttz %x\ninfer %0", map[string]uint64{"x": 0}); got.Uint64() != 8 {
		t.Errorf("cttz(0) = %v, want 8 (defined)", got)
	}
	if got := mustEval(t, "%x:i8 = var\n%0:i8 = ctlz %x\ninfer %0", map[string]uint64{"x": 1}); got.Uint64() != 7 {
		t.Errorf("ctlz(1) = %v", got)
	}
	if got := mustEval(t, "%x:i8 = var\n%0:i8 = rotl %x, 12:i8\ninfer %0", map[string]uint64{"x": 0x81}); got.Uint64() != 0x18 {
		t.Errorf("rotl by 12 (mod 8 = 4) = %#x", got.Uint64())
	}
}

func TestForEachInputExhaustive(t *testing.T) {
	f := ir.MustParse("%x:i4 = var\n%y:i4 = var\n%0:i4 = add %x, %y\ninfer %0")
	count := 0
	ForEachInput(f, func(env Env) bool {
		count++
		v, ok := Eval(f, env)
		if !ok {
			t.Fatal("add should never be UB")
		}
		want := (env[f.Vars[0]].Uint64() + env[f.Vars[1]].Uint64()) & 0xF
		if v.Uint64() != want {
			t.Fatalf("add = %d, want %d", v.Uint64(), want)
		}
		return true
	})
	if count != 256 {
		t.Errorf("enumerated %d inputs, want 256", count)
	}
}

func TestForEachInputEarlyStop(t *testing.T) {
	f := ir.MustParse("%x:i8 = var\ninfer %x")
	count := 0
	ForEachInput(f, func(env Env) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop at %d, want 10", count)
	}
}

func TestForEachInputTooLargePanics(t *testing.T) {
	f := ir.MustParse("%x:i32 = var\ninfer %x")
	defer func() {
		if recover() == nil {
			t.Error("ForEachInput on 32-bit space did not panic")
		}
	}()
	ForEachInput(f, func(Env) bool { return true })
}

func TestRandomEnvAndWellDefined(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := ir.MustParse("%x:i8 = var\n%y:i8 = var\n%0:i8 = udiv %x, %y\ninfer %0")
	env, ok := RandomWellDefinedEnv(f, rng, 100)
	if !ok {
		t.Fatal("no well-defined env found in 100 tries")
	}
	if _, ok := Eval(f, env); !ok {
		t.Error("RandomWellDefinedEnv returned an ill-defined env")
	}
	// A function that is UB on every input.
	dead := ir.MustParse("%x:i8 = var\n%0:i8 = udiv %x, 0:i8\ninfer %0")
	if _, ok := RandomWellDefinedEnv(dead, rng, 50); ok {
		t.Error("found well-defined env for always-UB function")
	}
}

func TestEnvFromNamesErrors(t *testing.T) {
	f := ir.MustParse("%x:i8 = var\ninfer %x")
	if _, err := EnvFromNames(f, map[string]uint64{}); err == nil {
		t.Error("missing binding not reported")
	}
}

func TestTotalInputBits(t *testing.T) {
	f := ir.MustParse("%x:i8 = var\n%y:i4 = var\n%0:i1 = ult %y, 3:i4\n%1:i8 = select %0, %x, 0:i8\ninfer %1")
	if got := TotalInputBits(f); got != 12 {
		t.Errorf("TotalInputBits = %d, want 12", got)
	}
}

func TestDAGSharingEvaluatedOnce(t *testing.T) {
	// (x+1) used twice must evaluate consistently.
	b := ir.NewBuilder()
	x := b.Var("x", 8)
	inc := b.Add(x, b.ConstInt(8, 1))
	f := b.Function(b.Sub(inc, inc))
	v, ok := Eval(f, Env{x: apint.New(8, 41)})
	if !ok || !v.IsZero() {
		t.Errorf("shared sub = %v ok=%v, want 0", v, ok)
	}
}

func TestMinMaxAbsOps(t *testing.T) {
	cases := []struct {
		op   string
		x, y uint64
		want uint64
	}{
		{"umin", 200, 5, 5},
		{"umax", 200, 5, 200},
		{"smin", 200, 5, 200}, // 200 is -56 signed
		{"smax", 200, 5, 5},
	}
	for _, c := range cases {
		src := "%x:i8 = var\n%y:i8 = var\n%0:i8 = " + c.op + " %x, %y\ninfer %0"
		if got := mustEval(t, src, map[string]uint64{"x": c.x, "y": c.y}); got.Uint64() != c.want {
			t.Errorf("%s(%d,%d) = %d, want %d", c.op, c.x, c.y, got.Uint64(), c.want)
		}
	}
	if got := mustEval(t, "%x:i8 = var\n%0:i8 = abs %x\ninfer %0", map[string]uint64{"x": 0xFB}); got.Uint64() != 5 {
		t.Errorf("abs(-5) = %d", got.Uint64())
	}
	if got := mustEval(t, "%x:i8 = var\n%0:i8 = abs %x\ninfer %0", map[string]uint64{"x": 0x80}); got.Uint64() != 0x80 {
		t.Errorf("abs(MinSigned) = %#x, want MinSigned wrap", got.Uint64())
	}
}

func TestFunnelShifts(t *testing.T) {
	// fshl(a, b, s) takes the high w bits of (a:b) << s.
	src := "%a:i8 = var\n%b:i8 = var\n%s:i8 = var\n%0:i8 = fshl %a, %b, %s\ninfer %0"
	if got := mustEval(t, src, map[string]uint64{"a": 0x12, "b": 0x34, "s": 4}); got.Uint64() != 0x23 {
		t.Errorf("fshl(0x12,0x34,4) = %#x, want 0x23", got.Uint64())
	}
	if got := mustEval(t, src, map[string]uint64{"a": 0x12, "b": 0x34, "s": 0}); got.Uint64() != 0x12 {
		t.Errorf("fshl by 0 = %#x, want a", got.Uint64())
	}
	if got := mustEval(t, src, map[string]uint64{"a": 0x12, "b": 0x34, "s": 8}); got.Uint64() != 0x12 {
		t.Errorf("fshl by width = %#x, want a (amount mod width)", got.Uint64())
	}
	srcR := "%a:i8 = var\n%b:i8 = var\n%s:i8 = var\n%0:i8 = fshr %a, %b, %s\ninfer %0"
	if got := mustEval(t, srcR, map[string]uint64{"a": 0x12, "b": 0x34, "s": 4}); got.Uint64() != 0x23 {
		t.Errorf("fshr(0x12,0x34,4) = %#x, want 0x23", got.Uint64())
	}
	if got := mustEval(t, srcR, map[string]uint64{"a": 0x12, "b": 0x34, "s": 0}); got.Uint64() != 0x34 {
		t.Errorf("fshr by 0 = %#x, want b", got.Uint64())
	}
	// fshl(x, x, s) == rotl(x, s) for all inputs.
	fsh := ir.MustParse("%x:i8 = var\n%s:i8 = var\n%0:i8 = fshl %x, %x, %s\ninfer %0")
	rot := ir.MustParse("%x:i8 = var\n%s:i8 = var\n%0:i8 = rotl %x, %s\ninfer %0")
	ForEachInput(fsh, func(env Env) bool {
		env2 := Env{rot.Vars[0]: env[fsh.Vars[0]], rot.Vars[1]: env[fsh.Vars[1]]}
		a, ok1 := Eval(fsh, env)
		b, ok2 := Eval(rot, env2)
		if !ok1 || !ok2 || a.Ne(b) {
			t.Fatalf("fshl(x,x,s) != rotl(x,s) at %v: %v vs %v", env, a, b)
		}
		return true
	})
}

func TestOverflowPredicateOps(t *testing.T) {
	cases := []struct {
		op   string
		x, y uint64
		want uint64
	}{
		{"uaddo", 200, 100, 1}, {"uaddo", 100, 100, 0},
		{"saddo", 100, 100, 1}, {"saddo", 100, 27, 0},
		{"usubo", 1, 2, 1}, {"usubo", 2, 1, 0},
		{"ssubo", 0x80, 1, 1}, {"ssubo", 0x7F, 1, 0},
		{"umulo", 16, 16, 1}, {"umulo", 15, 17, 0},
		{"smulo", 16, 8, 1}, {"smulo", 11, 11, 0},
	}
	for _, c := range cases {
		src := "%x:i8 = var\n%y:i8 = var\n%0:i1 = " + c.op + " %x, %y\ninfer %0"
		if got := mustEval(t, src, map[string]uint64{"x": c.x, "y": c.y}); got.Uint64() != c.want {
			t.Errorf("%s(%d,%d) = %d, want %d", c.op, c.x, c.y, got.Uint64(), c.want)
		}
	}
}
