package eval

import (
	"fmt"
	"math/bits"

	"dfcheck/internal/apint"
	"dfcheck/internal/ir"
)

// This file implements the transposed, bit-sliced execution mode: 64
// concrete input environments are evaluated per call, with each IR value
// held as `width` machine words — word i carries bit i of all 64 lanes —
// so every plane operation acts on 64 environments at once. Per-lane
// well-definedness is tracked in a single 64-bit mask with exactly the
// rules of the scalar interpreter (div-by-zero, poison wraps, oversized
// shifts, range metadata); a lane whose bit is clear in the mask carries a
// meaningless value, just like Eval's ok=false.
//
// The enumeration sweeps (solver.EnumEngine, absint's concrete tables)
// use EvalIndexed: because ForEachInput packs the input vector LSB-first
// into the sweep index, an aligned 64-lane block needs no input transpose
// at all — plane i of a variable is either one of six fixed alternating
// masks (index bits 0..5, which vary within the block) or a constant
// all-zeros/all-ones word taken from the block base. Only the output is
// ever transposed back, lane by lane.

// LaneIndex[k] has bit l set iff bit k of the lane number l is set: the
// input planes of an aligned block, precomputed once for all sweeps.
var LaneIndex = [6]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// SlicedProgram is a Function compiled for 64-lane bit-sliced evaluation.
// Like Program, it reuses internal scratch across calls and is not safe
// for concurrent use; compile one per goroutine.
type SlicedProgram struct {
	f        *ir.Function
	code     []progInst
	vals     [][]uint64 // per slot: Width planes
	varSlots []int      // slot of each f.Vars entry, in declaration order
	total    uint       // summed input width (the packed-index bit count)

	// Scratch planes for the op kernels; each holds up to 2*MaxWidth+1
	// planes (the widest intermediate is a double-width product).
	t0, t1, t2, t3, t4, t5, t6, t7 []uint64
}

// CompileSliced builds the bit-sliced evaluation program for f.
func CompileSliced(f *ir.Function) *SlicedProgram {
	order := f.Insts()
	slot := make(map[*ir.Inst]int, len(order))
	code := make([]progInst, len(order))
	vals := make([][]uint64, len(order))
	for i, n := range order {
		slot[n] = i
		pc := progInst{n: n}
		switch len(n.Args) {
		case 3:
			pc.a2 = slot[n.Args[2]]
			fallthrough
		case 2:
			pc.a1 = slot[n.Args[1]]
			fallthrough
		case 1:
			pc.a0 = slot[n.Args[0]]
		}
		code[i] = pc
		vals[i] = make([]uint64, n.Width)
	}
	p := &SlicedProgram{f: f, code: code, vals: vals, total: TotalInputBits(f)}
	p.varSlots = make([]int, len(f.Vars))
	for i, v := range f.Vars {
		p.varSlots[i] = slot[v]
	}
	scratch := make([]uint64, 8*(2*apint.MaxWidth+1))
	step := 2*apint.MaxWidth + 1
	p.t0, p.t1, p.t2, p.t3 = scratch[:step], scratch[step:2*step], scratch[2*step:3*step], scratch[3*step:4*step]
	p.t4, p.t5, p.t6, p.t7 = scratch[4*step:5*step], scratch[5*step:6*step], scratch[6*step:7*step], scratch[7*step:]
	return p
}

// NumLanes reports how many lanes of an EvalIndexed block are meaningful:
// 64, or the whole (smaller) input space when it fits inside one block.
func (p *SlicedProgram) NumLanes() uint {
	if p.total < 6 {
		return 1 << p.total
	}
	return 64
}

// EvalIndexed evaluates the 64 packed input indices base..base+63 (the
// same LSB-first packing as ForEachInput: variable k occupies the next
// Width bits above variable k-1). base must be 64-aligned; when the whole
// input space is smaller than a block, base must be 0 and only the low
// 2^total lanes are marked ok. Returns the root's planes (valid until the
// next Eval* call) and the well-defined-lane mask.
func (p *SlicedProgram) EvalIndexed(base uint64) ([]uint64, uint64) {
	valid := ^uint64(0)
	if p.total < 6 {
		if base != 0 {
			panic("eval: EvalIndexed base must be 0 when the input space fits one block")
		}
		valid = 1<<(1<<p.total) - 1
	} else if base&63 != 0 {
		panic("eval: EvalIndexed base must be 64-aligned")
	}
	off := uint(0)
	for i, v := range p.f.Vars {
		planes := p.vals[p.varSlots[i]]
		for j := uint(0); j < v.Width; j++ {
			pos := off + j
			switch {
			case pos < 6:
				planes[j] = LaneIndex[pos]
			case base>>pos&1 == 1:
				planes[j] = ^uint64(0)
			default:
				planes[j] = 0
			}
		}
		off += v.Width
	}
	return p.run(valid)
}

// EvalBlock evaluates up to 64 arbitrary environments, envs[l] feeding
// lane l. Lanes at or beyond len(envs) come back with ok clear. Each env
// must bind every variable at its declared width, as Eval requires.
func (p *SlicedProgram) EvalBlock(envs []Env) ([]uint64, uint64) {
	if len(envs) > 64 {
		panic("eval: EvalBlock of more than 64 environments")
	}
	valid := ^uint64(0)
	if len(envs) < 64 {
		valid = 1<<uint(len(envs)) - 1
	}
	for i, v := range p.f.Vars {
		planes := p.vals[p.varSlots[i]]
		for j := range planes {
			planes[j] = 0
		}
		for l, env := range envs {
			val, ok := env[v]
			if !ok {
				panic(fmt.Sprintf("eval: unbound var %%%s", v.Name))
			}
			if val.Width() != v.Width {
				panic(fmt.Sprintf("eval: %%%s bound at width %d, want %d", v.Name, val.Width(), v.Width))
			}
			bits := val.Uint64()
			for j := uint(0); j < v.Width; j++ {
				planes[j] |= (bits >> j & 1) << uint(l)
			}
		}
	}
	return p.run(valid)
}

// Lane gathers one lane's value back out of a plane slice.
func Lane(planes []uint64, l uint) uint64 {
	var v uint64
	for i, pl := range planes {
		v |= (pl >> l & 1) << uint(i)
	}
	return v
}

// run executes the compiled code over the current input planes, returning
// the root planes and the ok mask. Lanes drop out of ok exactly when the
// scalar interpreter would return ok=false.
func (p *SlicedProgram) run(valid uint64) ([]uint64, uint64) {
	ok := valid
	root := p.vals[len(p.vals)-1]
	// Range metadata disqualifies lanes before any instruction runs,
	// mirroring the InRange pre-check.
	for i, v := range p.f.Vars {
		if !v.HasRange {
			continue
		}
		ok &= p.rangeMask(p.vals[p.varSlots[i]], v.Lo, v.Hi)
	}
	for ci := range p.code {
		if ok == 0 {
			return root, 0
		}
		pc := &p.code[ci]
		n := pc.n
		dst := p.vals[ci]
		switch n.Op {
		case ir.OpVar:
			continue // planes were set by the caller
		case ir.OpConst:
			constPlanes(dst, n.Val.Uint64())
			continue
		}
		a := p.vals[pc.a0]
		b := p.vals[pc.a1]
		c := p.vals[pc.a2]
		w := uint(len(a)) // operand width (n.Width for most ops)
		switch n.Op {
		case ir.OpAdd:
			carry := addPlanes(dst, a, b)
			if n.Flags&ir.FlagNSW != 0 {
				ok &^= ^(a[w-1] ^ b[w-1]) & (dst[w-1] ^ a[w-1])
			}
			if n.Flags&ir.FlagNUW != 0 {
				ok &^= carry
			}
		case ir.OpSub:
			borrow := subPlanes(dst, a, b)
			if n.Flags&ir.FlagNSW != 0 {
				ok &^= (a[w-1] ^ b[w-1]) & (dst[w-1] ^ a[w-1])
			}
			if n.Flags&ir.FlagNUW != 0 {
				ok &^= borrow
			}
		case ir.OpMul:
			prod := p.t0[:2*w]
			mulPlanes(prod, a, b)
			copy(dst, prod[:w])
			if n.Flags&ir.FlagNUW != 0 {
				ok &^= orPlanes(prod[w:])
			}
			if n.Flags&ir.FlagNSW != 0 {
				ok &^= p.smulOverflow(a, b)
			}
		case ir.OpUDiv:
			rem := p.t1[:w]
			p.udivrem(dst, rem, a, b)
			ok &^= zeroMask(b)
			if n.Flags&ir.FlagExact != 0 {
				ok &^= orPlanes(rem)
			}
		case ir.OpURem:
			quo := p.t1[:w]
			p.udivrem(quo, dst, a, b)
			ok &^= zeroMask(b)
		case ir.OpSDiv, ir.OpSRem:
			sa, sb := a[w-1], b[w-1]
			absA, absB := p.t2[:w], p.t3[:w]
			condNeg(absA, a, sa)
			condNeg(absB, b, sb)
			quo, rem := p.t4[:w], p.t5[:w]
			p.udivrem(quo, rem, absA, absB)
			// UB: zero divisor, or MinSigned / -1.
			minA := a[w-1]
			allB := b[w-1]
			for i := uint(0); i < w-1; i++ {
				minA &^= a[i]
				allB &= b[i]
			}
			ok &^= zeroMask(b) | (minA & allB)
			if n.Op == ir.OpSDiv {
				condNeg(dst, quo, sa^sb)
				if n.Flags&ir.FlagExact != 0 {
					ok &^= orPlanes(rem)
				}
			} else {
				condNeg(dst, rem, sa) // remainder sign follows the dividend
			}
		case ir.OpAnd:
			for i := range dst {
				dst[i] = a[i] & b[i]
			}
		case ir.OpOr:
			for i := range dst {
				dst[i] = a[i] | b[i]
			}
		case ir.OpXor:
			for i := range dst {
				dst[i] = a[i] ^ b[i]
			}
		case ir.OpShl, ir.OpLShr, ir.OpAShr:
			wc := p.t1[:w]
			constPlanes(wc, uint64(w))
			ok &^= ^ultPlanes(b, wc) // shift amount >= width is UB
			copy(dst, a)
			switch n.Op {
			case ir.OpShl:
				shlLanes(dst, b)
				if n.Flags&ir.FlagNUW != 0 || n.Flags&ir.FlagNSW != 0 {
					back := p.t2[:w]
					copy(back, dst)
					if n.Flags&ir.FlagNUW != 0 {
						lshrLanes(back, b)
						ok &^= neqMask(back, a)
					}
					if n.Flags&ir.FlagNSW != 0 {
						copy(back, dst)
						ashrLanes(back, b)
						ok &^= neqMask(back, a)
					}
				}
			case ir.OpLShr:
				lshrLanes(dst, b)
			default:
				ashrLanes(dst, b)
			}
			if n.Op != ir.OpShl && n.Flags&ir.FlagExact != 0 {
				back := p.t2[:w]
				copy(back, dst)
				shlLanes(back, b)
				ok &^= neqMask(back, a)
			}
		case ir.OpEq:
			dst[0] = eqMask(a, b)
		case ir.OpNe:
			dst[0] = ^eqMask(a, b)
		case ir.OpULT:
			dst[0] = ultPlanes(a, b)
		case ir.OpULE:
			dst[0] = ^ultPlanes(b, a)
		case ir.OpSLT:
			dst[0] = sltPlanes(a, b)
		case ir.OpSLE:
			dst[0] = ^sltPlanes(b, a)
		case ir.OpSelect:
			// Mirror the scalar rule cond == 1, not merely "non-zero".
			m := a[0]
			m &^= orPlanes(a[1:])
			for i := range dst {
				dst[i] = (b[i] & m) | (c[i] &^ m)
			}
		case ir.OpZExt:
			copy(dst, a)
			for i := w; i < uint(len(dst)); i++ {
				dst[i] = 0
			}
		case ir.OpSExt:
			copy(dst, a)
			for i := w; i < uint(len(dst)); i++ {
				dst[i] = a[w-1]
			}
		case ir.OpTrunc:
			copy(dst, a[:len(dst)])
		case ir.OpCtPop:
			popCountPlanes(dst, a)
		case ir.OpBSwap:
			for i := uint(0); i < w; i++ {
				byteIdx := i / 8
				dst[i] = a[(w/8-1-byteIdx)*8+i%8]
			}
		case ir.OpBitReverse:
			for i := uint(0); i < w; i++ {
				dst[i] = a[w-1-i]
			}
		case ir.OpCttz:
			// cttz(x) = popcount(^x & (x-1)); cttz(0) = width falls out.
			t := p.t1[:w]
			decPlanes(t, a)
			for i := range t {
				t[i] &^= a[i]
			}
			popCountPlanes(dst, t)
		case ir.OpCtlz:
			rev := p.t2[:w]
			for i := uint(0); i < w; i++ {
				rev[i] = a[w-1-i]
			}
			t := p.t1[:w]
			decPlanes(t, rev)
			for i := range t {
				t[i] &^= rev[i]
			}
			popCountPlanes(dst, t)
		case ir.OpRotL, ir.OpRotR:
			r := p.t1[:w]
			p.modConst(r, b, w)
			if n.Op == ir.OpRotR {
				// rotr by r = rotl by (w - r) mod w; negate-then-mod keeps
				// one rotator. (w - r) mod w with r < w is w-r, or 0 at r=0.
				neg := p.t3[:w]
				constPlanes(neg, uint64(w))
				subPlanes(neg, neg, r)
				nz := orPlanes(r)
				for i := range r {
					r[i] = neg[i] & nz // r==0 stays 0 instead of w
				}
			}
			copy(dst, a)
			p.rotlLanes(dst, r)
		case ir.OpUMin:
			lt := ultPlanes(a, b)
			selectPlanes(dst, lt, a, b)
		case ir.OpUMax:
			lt := ultPlanes(a, b)
			selectPlanes(dst, lt, b, a)
		case ir.OpSMin:
			lt := sltPlanes(a, b)
			selectPlanes(dst, lt, a, b)
		case ir.OpSMax:
			lt := sltPlanes(a, b)
			selectPlanes(dst, lt, b, a)
		case ir.OpAbs:
			condNeg(dst, a, a[w-1])
		case ir.OpFshl, ir.OpFshr:
			// fshl/fshr are the two halves of rotating the 2w-bit concat
			// a:b by s mod w (s == 0 degenerates to a and b respectively).
			r := p.t1[:w]
			p.modConst(r, c, w)
			cat := p.t0[:2*w]
			copy(cat[:w], b)
			copy(cat[w:], a)
			if n.Op == ir.OpFshl {
				p.rotlLanes(cat, r)
				copy(dst, cat[w:])
			} else {
				// rotr of the concat by r: rotl by (2w - r) mod 2w.
				neg := p.t3[:w]
				constPlanes(neg, uint64(2*w))
				subPlanes(neg, neg, r)
				nz := orPlanes(r)
				for i := range neg {
					neg[i] &= nz
				}
				p.rotlLanes(cat, neg)
				copy(dst, cat[:w])
			}
		case ir.OpUAddO:
			sum := p.t0[:w]
			dst[0] = addPlanes(sum, a, b)
		case ir.OpSAddO:
			sum := p.t0[:w]
			addPlanes(sum, a, b)
			dst[0] = ^(a[w-1] ^ b[w-1]) & (sum[w-1] ^ a[w-1])
		case ir.OpUSubO:
			diff := p.t0[:w]
			dst[0] = subPlanes(diff, a, b)
		case ir.OpSSubO:
			diff := p.t0[:w]
			subPlanes(diff, a, b)
			dst[0] = (a[w-1] ^ b[w-1]) & (diff[w-1] ^ a[w-1])
		case ir.OpUMulO:
			prod := p.t0[:2*w]
			mulPlanes(prod, a, b)
			dst[0] = orPlanes(prod[w:])
		case ir.OpSMulO:
			dst[0] = p.smulOverflow(a, b)
		default:
			panic(fmt.Sprintf("eval: unhandled op %v in sliced mode", n.Op))
		}
	}
	return root, ok
}

// rangeMask reports per lane whether the value satisfies the (possibly
// wrapped) range [lo, hi); lo == hi denotes the full set.
func (p *SlicedProgram) rangeMask(v []uint64, lo, hi apint.Int) uint64 {
	if lo.Eq(hi) {
		return ^uint64(0)
	}
	loP, hiP := p.t0[:len(v)], p.t1[:len(v)]
	constPlanes(loP, lo.Uint64())
	constPlanes(hiP, hi.Uint64())
	uge := ^ultPlanes(v, loP)
	ult := ultPlanes(v, hiP)
	if lo.ULT(hi) {
		return uge & ult
	}
	return uge | ult
}

// constPlanes broadcasts a constant across all lanes.
func constPlanes(dst []uint64, val uint64) {
	for i := range dst {
		if val>>uint(i)&1 == 1 {
			dst[i] = ^uint64(0)
		} else {
			dst[i] = 0
		}
	}
}

// addPlanes computes dst = a + b with a ripple carry, returning the
// carry-out mask. dst may alias a or b.
func addPlanes(dst, a, b []uint64) uint64 {
	var carry uint64
	for i := range a {
		ai, bi := a[i], b[i]
		dst[i] = ai ^ bi ^ carry
		carry = (ai & bi) | (carry & (ai ^ bi))
	}
	return carry
}

// subPlanes computes dst = a - b with a ripple borrow, returning the
// borrow-out mask (a < b unsigned). dst may alias a or b.
func subPlanes(dst, a, b []uint64) uint64 {
	var borrow uint64
	for i := range a {
		ai, bi := a[i], b[i]
		dst[i] = ai ^ bi ^ borrow
		borrow = (^ai & bi) | ((^ai | bi) & borrow)
	}
	return borrow
}

// decPlanes computes dst = a - 1. dst must not alias a.
func decPlanes(dst, a []uint64) {
	borrow := ^uint64(0)
	dst[0] = ^a[0]
	borrow &= ^a[0]
	for i := 1; i < len(a); i++ {
		dst[i] = a[i] ^ borrow
		borrow &= ^a[i]
	}
}

// ultPlanes returns the mask of lanes where a < b unsigned.
func ultPlanes(a, b []uint64) uint64 {
	var borrow uint64
	for i := range a {
		ai, bi := a[i], b[i]
		borrow = (^ai & bi) | ((^ai | bi) & borrow)
	}
	return borrow
}

// sltPlanes returns the mask of lanes where a < b signed: an unsigned
// compare with both sign planes flipped.
func sltPlanes(a, b []uint64) uint64 {
	w := len(a)
	var borrow uint64
	for i := 0; i < w-1; i++ {
		ai, bi := a[i], b[i]
		borrow = (^ai & bi) | ((^ai | bi) & borrow)
	}
	ai, bi := ^a[w-1], ^b[w-1]
	return (^ai & bi) | ((^ai | bi) & borrow)
}

// eqMask returns the mask of lanes where a == b.
func eqMask(a, b []uint64) uint64 {
	var diff uint64
	for i := range a {
		diff |= a[i] ^ b[i]
	}
	return ^diff
}

// neqMask returns the mask of lanes where a != b.
func neqMask(a, b []uint64) uint64 {
	var diff uint64
	for i := range a {
		diff |= a[i] ^ b[i]
	}
	return diff
}

// orPlanes ORs all planes: the mask of lanes with any bit set.
func orPlanes(a []uint64) uint64 {
	var or uint64
	for _, p := range a {
		or |= p
	}
	return or
}

// zeroMask returns the mask of lanes whose value is zero.
func zeroMask(a []uint64) uint64 {
	return ^orPlanes(a)
}

// selectPlanes computes dst = m ? a : b per lane. dst may alias a or b.
func selectPlanes(dst []uint64, m uint64, a, b []uint64) {
	for i := range dst {
		dst[i] = (a[i] & m) | (b[i] &^ m)
	}
}

// condNeg computes dst = m ? -a : a per lane (two's complement; MinSigned
// maps to itself, as AbsValue does). dst may alias a.
func condNeg(dst, a []uint64, m uint64) {
	carry := m
	for i := range a {
		t := a[i] ^ m
		dst[i] = t ^ carry
		carry &= t
	}
}

// popCountPlanes computes dst = popcount(a) per lane by rippling an
// increment through dst for every set source plane. dst must not alias a.
func popCountPlanes(dst, a []uint64) {
	for i := range dst {
		dst[i] = 0
	}
	for _, carry := range a {
		for i := 0; carry != 0 && i < len(dst); i++ {
			x := dst[i]
			dst[i] = x ^ carry
			carry &= x
		}
	}
}

// mulPlanes computes the full double-width product dst = a * b by
// conditional shifted addition. dst has 2*len(a) planes and must not
// alias a or b.
func mulPlanes(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = 0
	}
	w := len(a)
	for j := 0; j < w; j++ {
		m := b[j]
		if m == 0 {
			continue
		}
		var carry uint64
		for i := 0; i < w; i++ {
			x, y := dst[j+i], a[i]&m
			dst[j+i] = x ^ y ^ carry
			carry = (x & y) | (carry & (x ^ y))
		}
		for p := j + w; carry != 0 && p < len(dst); p++ {
			x := dst[p]
			dst[p] = x ^ carry
			carry &= x
		}
	}
}

// smulOverflow returns the mask of lanes where a*b overflows signed: the
// magnitude product exceeds 2^(w-1)-1, except that exactly 2^(w-1) is
// representable when the result is negative.
func (p *SlicedProgram) smulOverflow(a, b []uint64) uint64 {
	w := uint(len(a))
	sa, sb := a[w-1], b[w-1]
	absA, absB := p.t1[:w], p.t2[:w]
	condNeg(absA, a, sa)
	condNeg(absB, b, sb)
	prod := p.t3[:2*w]
	mulPlanes(prod, absA, absB)
	neg := sa ^ sb
	hi := orPlanes(prod[w:])
	geHalf := hi | prod[w-1]
	exact := prod[w-1] &^ (orPlanes(prod[:w-1]) | hi)
	return geHalf &^ (exact & neg)
}

// udivrem computes quo = a / b and rem = a % b unsigned by lane-parallel
// restoring division. Lanes with b == 0 produce garbage (the caller masks
// them as UB). quo and rem must not alias a, b, or p.t0.
func (p *SlicedProgram) udivrem(quo, rem, a, b []uint64) {
	w := len(a)
	rx := p.t0[:w+1] // running remainder, one guard plane for the shift-in
	for i := range rx {
		rx[i] = 0
	}
	for i := w - 1; i >= 0; i-- {
		// rx = rx<<1 | a[i]
		copy(rx[1:], rx[:w])
		rx[0] = a[i]
		// ge = rx >= b (b zero-extended by one plane)
		var borrow uint64
		for j := 0; j < w; j++ {
			rj, bj := rx[j], b[j]
			borrow = (^rj & bj) | ((^rj | bj) & borrow)
		}
		ge := ^(^rx[w] & borrow)
		// rx -= b where ge
		borrow = 0
		for j := 0; j < w; j++ {
			rj, bj := rx[j], b[j]
			d := rj ^ bj ^ borrow
			borrow = (^rj & bj) | ((^rj | bj) & borrow)
			rx[j] = (d & ge) | (rj &^ ge)
		}
		rx[w] = ((rx[w] ^ borrow) & ge) | (rx[w] &^ ge)
		quo[i] = ge
	}
	copy(rem, rx[:w])
}

// shlLanes shifts each lane of dst left by its amount in amt, in place.
// Amounts >= width leave garbage (the caller marks those lanes UB).
func shlLanes(dst, amt []uint64) {
	w := len(dst)
	for k := 0; 1<<uint(k) < w; k++ {
		m := amt[k]
		if m == 0 {
			continue
		}
		c := 1 << uint(k)
		for i := w - 1; i >= c; i-- {
			dst[i] = (dst[i-c] & m) | (dst[i] &^ m)
		}
		for i := c - 1; i >= 0; i-- {
			dst[i] &^= m
		}
	}
}

// lshrLanes shifts each lane of dst right (logical) by its amount in amt.
func lshrLanes(dst, amt []uint64) {
	w := len(dst)
	for k := 0; 1<<uint(k) < w; k++ {
		m := amt[k]
		if m == 0 {
			continue
		}
		c := 1 << uint(k)
		for i := 0; i < w-c; i++ {
			dst[i] = (dst[i+c] & m) | (dst[i] &^ m)
		}
		for i := w - c; i < w; i++ {
			dst[i] &^= m
		}
	}
}

// ashrLanes shifts each lane of dst right (arithmetic) by its amount.
func ashrLanes(dst, amt []uint64) {
	w := len(dst)
	for k := 0; 1<<uint(k) < w; k++ {
		m := amt[k]
		if m == 0 {
			continue
		}
		c := 1 << uint(k)
		sign := dst[w-1]
		for i := 0; i < w-c; i++ {
			dst[i] = (dst[i+c] & m) | (dst[i] &^ m)
		}
		for i := w - c; i < w; i++ {
			dst[i] = (sign & m) | (dst[i] &^ m)
		}
	}
}

// rotlLanes rotates each lane of dst left by its amount in r, in place.
// Amounts must already be reduced below len(dst) (planes 6+ of r are
// ignored: a reduced amount never reaches them).
func (p *SlicedProgram) rotlLanes(dst, r []uint64) {
	w := len(dst)
	tmp := p.t7[:w]
	for k := 0; 1<<uint(k) < w && k < len(r); k++ {
		m := r[k]
		if m == 0 {
			continue
		}
		c := 1 << uint(k)
		for i := 0; i < w; i++ {
			tmp[i] = dst[(i+w-c)%w]
		}
		for i := 0; i < w; i++ {
			dst[i] = (tmp[i] & m) | (dst[i] &^ m)
		}
	}
}

// modConst computes dst = s mod m per lane (m >= 1), the rotate-amount
// reduction. dst must not alias s.
func (p *SlicedProgram) modConst(dst, s []uint64, m uint) {
	w := len(s)
	if m&(m-1) == 0 {
		// Power of two: keep the low log2(m) planes.
		lg := bits.TrailingZeros(m)
		for i := range dst {
			if i < lg {
				dst[i] = s[i]
			} else {
				dst[i] = 0
			}
		}
		return
	}
	copy(dst, s)
	mc, t := p.t6[:w], p.t7[:w]
	for k := w - bits.Len(m); k >= 0; k-- {
		constPlanes(mc, uint64(m)<<uint(k))
		borrow := subPlanes(t, dst, mc)
		ge := ^borrow
		for i := range dst {
			dst[i] = (t[i] & ge) | (dst[i] &^ ge)
		}
	}
}
