package solver

import (
	"dfcheck/internal/apint"
	"dfcheck/internal/bitblast"
	"dfcheck/internal/ir"
	"dfcheck/internal/sat"
)

// This file implements the incremental query path of SATEngine: instead of
// bit-blasting a fresh solver per query, one solver holds the circuit and
// each query is posed through assumptions, so learned clauses carry over
// between the 2w known-bits queries, the sign-bit ladder, and the range
// search — the same trick incremental SMT solvers play under the paper's
// algorithms.
//
// For ForcedBitMatters (Algorithm 2), the second program copy reads its
// inputs through per-bit selector muxes:
//
//	x2[i] = selLo[i] ? 0 : (selHi[i] ? 1 : x[i])
//
// so one miter circuit serves all 2·w queries for a variable, each query
// asserting exactly one selector through assumptions.

// outputSession is the shared circuit for queries about the root value.
type outputSession struct {
	s        *sat.Solver
	b        *bitblast.Blasted
	signEq   map[uint]sat.Lit // k -> "top k bits all equal"
	zeroLit  sat.Lit
	pow2Lit  sat.Lit
	haveZero bool
	havePow2 bool
}

func (e *SATEngine) output() *outputSession {
	if e.out == nil {
		s := sat.New()
		e.out = &outputSession{
			s:      s,
			b:      e.blast(s),
			signEq: make(map[uint]sat.Lit),
		}
	}
	return e.out
}

// solveAssuming runs one budgeted query on a shared solver, accumulating
// the per-query statistics deltas. The conflict budget is shared across
// the whole engine: each query may spend only what earlier queries left.
// name/class label the query's trace span; on the shared solver the span
// carries this query's counter deltas, not lifetime totals.
func (e *SATEngine) solveAssuming(name, class string, s *sat.Solver, assumptions ...sat.Lit) (bool, bool) {
	if e.pastDeadline() || e.outOfBudget() {
		return false, false
	}
	before := s.Stats()
	s.ConflictBudget = s.Conflicts + e.remaining()
	e.armAbort(s)
	e.armPortfolio(s)
	sp, _ := e.startQuery(name, class, s)
	st := s.Solve(assumptions...)
	endQuery(sp, s, before, st)
	delta := s.Stats().Sub(before)
	e.spent += delta.Conflicts
	e.stats.Queries++
	e.stats.Conflicts += delta.Conflicts
	e.stats.Propagations += delta.Propagations
	e.stats.Decisions += delta.Decisions
	e.stats.Restarts += delta.Restarts
	e.stats.Learned += delta.Learned
	e.stats.PortfolioRuns += delta.PortfolioRuns
	e.stats.PortfolioWins += cloneWinsTotal(delta)
	e.stats.UnitsImported += delta.UnitsImported
	e.stats.UnitsExported += delta.UnitsExported
	if st == sat.Unknown {
		e.stats.Exhausted++
		return false, false
	}
	return st == sat.Sat, true
}

// maxWitnesses caps the model-witness cache: beyond it, hits still prune
// but new models are no longer remembered.
const maxWitnesses = 128

// recordWitness saves the output value of the session's current model.
// Every model of an output query satisfies WellDefined, so its output is
// an achievable value — a reusable positive answer for any later
// existence query it happens to satisfy.
func (e *SATEngine) recordWitness(o *outputSession) apint.Int {
	v := o.b.C.Value(o.b.Output)
	if len(e.witnesses) < maxWitnesses {
		for _, w := range e.witnesses {
			if w.Eq(v) {
				return v
			}
		}
		e.witnesses = append(e.witnesses, v)
	}
	return v
}

// witness scans cached model outputs for one satisfying pred; a hit
// decides an output-existence query with zero solver work (counted as
// pruned by the callers).
func (e *SATEngine) witness(pred func(apint.Int) bool) (apint.Int, bool) {
	for _, w := range e.witnesses {
		if pred(w) {
			return w, true
		}
	}
	return apint.Int{}, false
}

func (e *SATEngine) incFeasible() (bool, bool) {
	if e.feasKnown {
		e.stats.Pruned++
		return e.feasible, true
	}
	o := e.output()
	r, ok := e.solveAssuming("feasible", classExistence, o.s, o.b.WellDefined)
	if ok {
		e.feasible, e.feasKnown = r, true
		if r {
			e.recordWitness(o)
		}
	}
	return r, ok
}

func (e *SATEngine) incOutputBitCanBe(i uint, val bool) (bool, bool) {
	if _, hit := e.witness(func(v apint.Int) bool { return v.Bit(i) == val }); hit {
		e.stats.Pruned++
		return true, true
	}
	o := e.output()
	l := o.b.Output[i]
	if !val {
		l = l.Not()
	}
	res, ok := e.solveAssuming("output-bit", classValidity, o.s, o.b.WellDefined, l)
	if ok && res {
		e.recordWitness(o)
	}
	return res, ok
}

func (e *SATEngine) incSignBitsViolated(k uint) (bool, bool) {
	if _, hit := e.witness(func(v apint.Int) bool { return v.NumSignBits() < k }); hit {
		e.stats.Pruned++
		return true, true
	}
	o := e.output()
	eq, ok := o.signEq[k]
	if !ok {
		w := uint(len(o.b.Output))
		sign := o.b.Output[w-1]
		eq = o.b.C.True()
		for i := w - k; i < w-1; i++ {
			eq = o.b.C.And(eq, o.b.C.Xnor(o.b.Output[i], sign))
		}
		o.signEq[k] = eq
	}
	res, ok := e.solveAssuming("sign-bits", classValidity, o.s, o.b.WellDefined, eq.Not())
	if ok && res {
		e.recordWitness(o)
	}
	return res, ok
}

func (e *SATEngine) incCanBeZero() (bool, bool) {
	if _, hit := e.witness(apint.Int.IsZero); hit {
		e.stats.Pruned++
		return true, true
	}
	o := e.output()
	if !o.haveZero {
		o.zeroLit = o.b.C.OrN(o.b.Output...).Not()
		o.haveZero = true
	}
	res, ok := e.solveAssuming("zero", classValidity, o.s, o.b.WellDefined, o.zeroLit)
	if ok && res {
		e.recordWitness(o)
	}
	return res, ok
}

func (e *SATEngine) incCanBeNonPowerOfTwo() (bool, bool) {
	if _, hit := e.witness(func(v apint.Int) bool { return !v.IsPowerOfTwo() }); hit {
		e.stats.Pruned++
		return true, true
	}
	o := e.output()
	if !o.havePow2 {
		c := o.b.C
		w := uint(len(o.b.Output))
		nonZero := c.OrN(o.b.Output...)
		minusOne, _ := c.Sub(o.b.Output, c.ConstWord(apint.One(w)))
		masked := c.AndWord(o.b.Output, minusOne)
		o.pow2Lit = c.And(nonZero, c.OrN(masked...).Not())
		o.havePow2 = true
	}
	res, ok := e.solveAssuming("non-pow2", classValidity, o.s, o.b.WellDefined, o.pow2Lit.Not())
	if ok && res {
		e.recordWitness(o)
	}
	return res, ok
}

// outsideWindow reports v ∉ [lo, lo+size) with the engine's wrapping
// conventions (size 0 = empty window, lo+size == lo = full window).
func outsideWindow(v, lo, size apint.Int) bool {
	if size.IsZero() {
		return true
	}
	hi := lo.Add(size)
	if hi.Eq(lo) {
		return false
	}
	if lo.ULT(hi) {
		return !(v.UGE(lo) && v.ULT(hi))
	}
	return !(v.UGE(lo) || v.ULT(hi))
}

func (e *SATEngine) incOutputOutside(lo, size apint.Int) (apint.Int, bool, bool) {
	if w, hit := e.witness(func(v apint.Int) bool { return outsideWindow(v, lo, size) }); hit {
		e.stats.Pruned++
		return w, true, true
	}
	o := e.output()
	c := o.b.C
	var outside sat.Lit
	if size.IsZero() {
		outside = c.True() // empty window: everything is outside
	} else {
		hi := lo.Add(size)
		if hi.Eq(lo) {
			return apint.Int{}, false, true // full window: nothing outside
		}
		geLo := c.ULT(o.b.Output, c.ConstWord(lo)).Not()
		ltHi := c.ULT(o.b.Output, c.ConstWord(hi))
		if lo.ULT(hi) {
			outside = c.And(geLo, ltHi).Not()
		} else {
			outside = c.Or(geLo, ltHi).Not()
		}
	}
	res, ok := e.solveAssuming("outside", classExistence, o.s, o.b.WellDefined, outside)
	if !ok || !res {
		return apint.Int{}, res, ok
	}
	return e.recordWitness(o), true, true
}

// miterSession is the per-variable shared circuit for demanded-bits
// queries: a second copy of the function whose inputs run through
// selector muxes.
type miterSession struct {
	s      *sat.Solver
	c      *bitblast.Circuit
	differ sat.Lit // outputs differ ∧ both copies well-defined
	selLo  []sat.Lit
	selHi  []sat.Lit
	allSel []sat.Lit // every selector, for building assumption sets
}

func (e *SATEngine) miter(v *ir.Inst) *miterSession {
	if m, ok := e.miters[v]; ok {
		return m
	}
	s := sat.New()
	b1 := e.blast(s)
	c := b1.C

	w := v.Width
	selLo := make([]sat.Lit, w)
	selHi := make([]sat.Lit, w)
	forced := make(bitblast.Word, w)
	orig := b1.Inputs[v]
	for i := uint(0); i < w; i++ {
		selLo[i] = c.Lit()
		selHi[i] = c.Lit()
		forced[i] = c.Mux(selLo[i], c.False(), c.Mux(selHi[i], c.True(), orig[i]))
	}
	inputs2 := make(map[*ir.Inst]bitblast.Word, len(b1.Inputs))
	for iv, word := range b1.Inputs {
		inputs2[iv] = word
	}
	inputs2[v] = forced
	b2 := bitblast.BlastWith(c, e.f, inputs2)

	m := &miterSession{
		s:      s,
		c:      c,
		differ: c.AndN(b1.WellDefined, b2.WellDefined, c.Eq(b1.Output, b2.Output).Not()),
		selLo:  selLo,
		selHi:  selHi,
	}
	m.allSel = append(append([]sat.Lit{}, selLo...), selHi...)
	if e.miters == nil {
		e.miters = make(map[*ir.Inst]*miterSession)
	}
	e.miters[v] = m
	return m
}

func (e *SATEngine) incForcedBitMatters(v *ir.Inst, bit uint, val bool) (bool, bool) {
	m := e.miter(v)
	assumptions := make([]sat.Lit, 0, len(m.allSel)+1)
	assumptions = append(assumptions, m.differ)
	for i := range m.selLo {
		lo, hi := m.selLo[i].Not(), m.selHi[i].Not()
		if uint(i) == bit {
			if val {
				hi = m.selHi[i]
			} else {
				lo = m.selLo[i]
			}
		}
		assumptions = append(assumptions, lo, hi)
	}
	return e.solveAssuming("forced-bit", classValidity, m.s, assumptions...)
}
