package solver

import (
	"fmt"
	"testing"

	"dfcheck/internal/apint"
	"dfcheck/internal/eval"
	"dfcheck/internal/ir"
)

// smallRef is the scalar ground truth for one function: the achievable
// output set and each variable's demanded-bit vector, computed by plain
// per-index interpretation with no bit-slicing involved.
type smallRef struct {
	outputs  map[uint64]bool
	demanded map[*ir.Inst][]bool
}

func smallRefOf(f *ir.Function) smallRef {
	total := eval.TotalInputBits(f)
	p := eval.Compile(f)
	evalIdx := func(idx uint64) (uint64, bool) {
		env := make(eval.Env, len(f.Vars))
		bits := idx
		for _, v := range f.Vars {
			env[v] = apint.New(v.Width, bits)
			bits >>= v.Width
		}
		v, ok := p.Eval(env)
		return v.Uint64(), ok
	}
	ref := smallRef{outputs: make(map[uint64]bool), demanded: make(map[*ir.Inst][]bool)}
	for idx := uint64(0); idx < 1<<total; idx++ {
		if v, ok := evalIdx(idx); ok {
			ref.outputs[v] = true
		}
	}
	var off uint
	for _, v := range f.Vars {
		m := make([]bool, v.Width)
		for bit := uint(0); bit < v.Width; bit++ {
			pos := off + bit
			for idx := uint64(0); idx < 1<<total; idx++ {
				if idx>>pos&1 == 1 {
					continue
				}
				a, aok := evalIdx(idx)
				b, bok := evalIdx(idx | 1<<pos)
				if aok && bok && a != b {
					m[bit] = true
					break
				}
			}
		}
		ref.demanded[v] = m
		off += v.Width
	}
	return ref
}

// smallWidthFuncs mirrors the eval-package small-width shapes: whole
// input space inside one 64-lane block, with UB lanes, range-masked
// lanes, and correlated operands in the mix.
func smallWidthFuncs(w uint) map[string]*ir.Function {
	out := map[string]*ir.Function{
		"mul-self": ir.MustParse(fmt.Sprintf("%%x:i%d = var\n%%0:i%d = mul %%x, %%x\ninfer %%0", w, w)),
		"udiv-ub":  ir.MustParse(fmt.Sprintf("%%x:i%d = var\n%%0:i%d = udiv 1:i%d, %%x\ninfer %%0", w, w, w)),
	}
	if w >= 2 {
		out["range"] = ir.MustParse(fmt.Sprintf("%%x:i%d = var (range=[1,3))\n%%0:i%d = add %%x, %%x\ninfer %%0", w, w))
	}
	if 2*w <= 5 {
		out["two-vars"] = ir.MustParse(fmt.Sprintf("%%x:i%d = var\n%%y:i%d = var\n%%0:i%d = urem %%x, %%y\ninfer %%0", w, w, w))
	}
	return out
}

// TestEnumSmallWidthQueries exhaustively checks the enumeration engine's
// whole query surface at widths 1..5 against scalar ground truth. The
// engine's sweeps run bit-sliced with the input space inside a single
// block, so any phantom-lane leak (a masked lane's garbage value entering
// the memoized output set or a demanded-bit matrix) shows up here as a
// wrong query answer.
func TestEnumSmallWidthQueries(t *testing.T) {
	for w := uint(1); w <= 5; w++ {
		for name, f := range smallWidthFuncs(w) {
			name := fmt.Sprintf("w%d/%s", w, name)
			ref := smallRefOf(f)
			e := NewEnum(f)

			feasible, ok := e.Feasible()
			if !ok || feasible != (len(ref.outputs) > 0) {
				t.Fatalf("%s: Feasible = (%v,%v), want (%v,true)", name, feasible, ok, len(ref.outputs) > 0)
			}
			for i := uint(0); i < w; i++ {
				for _, val := range []bool{false, true} {
					want := false
					for v := range ref.outputs {
						if (v>>i&1 == 1) == val {
							want = true
						}
					}
					if got, ok := e.OutputBitCanBe(i, val); !ok || got != want {
						t.Errorf("%s: OutputBitCanBe(%d,%v) = (%v,%v), want (%v,true)", name, i, val, got, ok, want)
					}
				}
			}
			for k := uint(1); k <= w; k++ {
				want := false
				for v := range ref.outputs {
					if apint.New(w, v).NumSignBits() < k {
						want = true
					}
				}
				if got, ok := e.SignBitsViolated(k); !ok || got != want {
					t.Errorf("%s: SignBitsViolated(%d) = (%v,%v), want (%v,true)", name, k, got, ok, want)
				}
			}
			if got, ok := e.CanBeZero(); !ok || got != ref.outputs[0] {
				t.Errorf("%s: CanBeZero = (%v,%v), want (%v,true)", name, got, ok, ref.outputs[0])
			}
			wantNonPow2 := false
			for v := range ref.outputs {
				if !apint.New(w, v).IsPowerOfTwo() {
					wantNonPow2 = true
				}
			}
			if got, ok := e.CanBeNonPowerOfTwo(); !ok || got != wantNonPow2 {
				t.Errorf("%s: CanBeNonPowerOfTwo = (%v,%v), want (%v,true)", name, got, ok, wantNonPow2)
			}

			// Every expressible [lo, lo+size) window over the width,
			// including the wrapped ones (size 0 is the empty window; the
			// full window is not expressible in w bits): a witness must
			// exist iff some achievable value falls outside the window.
			for lo := uint64(0); lo < 1<<w; lo++ {
				for size := uint64(0); size < 1<<w; size++ {
					wantOutside := false
					for v := range ref.outputs {
						hi := (lo + size) & (1<<w - 1)
						inside := false
						if size != 0 {
							if lo < hi {
								inside = v >= lo && v < hi
							} else {
								inside = v >= lo || v < hi
							}
						}
						if !inside {
							wantOutside = true
						}
					}
					wit, found, ok := e.OutputOutside(apint.New(w, lo), apint.New(w, size))
					if !ok || found != wantOutside {
						t.Fatalf("%s: OutputOutside(%d,%d) = (%v,%v), want found=%v", name, lo, size, found, ok, wantOutside)
					}
					if found && !ref.outputs[wit.Uint64()] {
						t.Fatalf("%s: OutputOutside(%d,%d) witness %d is not achievable", name, lo, size, wit.Uint64())
					}
				}
			}

			for _, v := range f.Vars {
				for bit := uint(0); bit < v.Width; bit++ {
					for _, val := range []bool{false, true} {
						got, ok := e.ForcedBitMatters(v, bit, val)
						if !ok || got != ref.demanded[v][bit] {
							t.Errorf("%s: ForcedBitMatters(%%%s,%d,%v) = (%v,%v), want (%v,true)",
								name, v.Name, bit, val, got, ok, ref.demanded[v][bit])
						}
					}
				}
			}
		}
	}
}
