package solver

import (
	"testing"

	"dfcheck/internal/ir"
)

// portfolioProbe is a 16-bit-input expression (routed to SAT at the
// default cutoff) whose validity queries take real search.
func portfolioProbe() *ir.Function {
	return ir.MustParse(`
		%x:i8 = var
		%y:i8 = var
		%0:i8 = mul %x, %y
		%1:i8 = mul %y, %x
		%2:i8 = xor %0, %1
		%3:i8 = add %2, %x
		infer %3
	`)
}

// TestPortfolioEngineEquivalence runs the same query sequence through a
// portfolio engine (threshold 1, so every nontrivial query fans out) and
// a sequential one, and requires identical answers plus evidence the
// portfolio actually engaged.
func TestPortfolioEngineEquivalence(t *testing.T) {
	seqE := NewEngine(portfolioProbe(), Config{Portfolio: -1}).(*SATEngine)
	porE := NewEngine(portfolioProbe(), Config{Portfolio: 3, PortfolioAfter: 1}).(*SATEngine)

	type answer struct {
		res, ok bool
	}
	ask := func(e *SATEngine) []answer {
		var out []answer
		r, ok := e.Feasible()
		out = append(out, answer{r, ok})
		for i := uint(0); i < 8; i++ {
			r, ok = e.OutputBitCanBe(i, true)
			out = append(out, answer{r, ok})
			r, ok = e.OutputBitCanBe(i, false)
			out = append(out, answer{r, ok})
		}
		r, ok = e.CanBeZero()
		out = append(out, answer{r, ok})
		return out
	}

	seq := ask(seqE)
	por := ask(porE)
	for i := range seq {
		if seq[i] != por[i] {
			t.Errorf("query %d: sequential %+v, portfolio %+v", i, seq[i], por[i])
		}
	}

	sst, pst := seqE.Stats(), porE.Stats()
	if sst.PortfolioRuns != 0 {
		t.Errorf("sequential engine ran %d portfolios", sst.PortfolioRuns)
	}
	if pst.PortfolioRuns == 0 {
		t.Error("portfolio engine never escalated despite threshold 1")
	}
	if pst.PortfolioWins == 0 {
		t.Error("no portfolio run produced a winner")
	}
	if pst.PortfolioWins > pst.PortfolioRuns {
		t.Errorf("wins %d > runs %d", pst.PortfolioWins, pst.PortfolioRuns)
	}
	if sst.Exhausted != 0 || pst.Exhausted != 0 {
		t.Fatalf("probe exhausted its budget (seq %d, portfolio %d); equivalence not meaningful",
			sst.Exhausted, pst.Exhausted)
	}
}
