package solver

import (
	"testing"

	"dfcheck/internal/ir"
)

// TestNewEngineRouting checks the cutoff logic: small summed input widths
// go to enumeration, everything else (and a disabled cutoff) to SAT.
func TestNewEngineRouting(t *testing.T) {
	small := ir.MustParse("%x:i4 = var\n%y:i4 = var\n%0:i4 = add %x, %y\ninfer %0")    // 8 bits
	large := ir.MustParse("%x:i16 = var\n%y:i16 = var\n%0:i16 = add %x, %y\ninfer %0") // 32 bits

	if _, ok := NewEngine(small, Config{}).(*EnumEngine); !ok {
		t.Errorf("8 input bits at default cutoff %d: want EnumEngine", DefaultEnumCutoff)
	}
	if _, ok := NewEngine(large, Config{}).(*SATEngine); !ok {
		t.Error("32 input bits: want SATEngine")
	}

	// The sliced-evaluation default is 14: a 12-bit space enumerates, a
	// 16-bit one still bit-blasts.
	if DefaultEnumCutoff != 14 {
		t.Errorf("DefaultEnumCutoff = %d, want 14", DefaultEnumCutoff)
	}
	twelve := ir.MustParse("%x:i8 = var\n%y:i4 = var\n%0:i4 = trunc %x\n%1:i4 = add %0, %y\ninfer %1")
	if _, ok := NewEngine(twelve, Config{}).(*EnumEngine); !ok {
		t.Error("12 input bits at the default cutoff: want EnumEngine")
	}
	sixteen := ir.MustParse("%x:i8 = var\n%y:i8 = var\n%0:i8 = add %x, %y\ninfer %0")
	if _, ok := NewEngine(sixteen, Config{}).(*SATEngine); !ok {
		t.Error("16 input bits at the default cutoff: want SATEngine")
	}
	if _, ok := NewEngine(small, Config{EnumCutoff: -1}).(*SATEngine); !ok {
		t.Error("negative cutoff must disable the enumeration path")
	}
	if _, ok := NewEngine(small, Config{EnumCutoff: 7}).(*SATEngine); !ok {
		t.Error("8 input bits above explicit cutoff 7: want SATEngine")
	}
	mid := ir.MustParse("%x:i12 = var\n%y:i12 = var\n%0:i12 = add %x, %y\ninfer %0") // 24 bits
	if _, ok := NewEngine(mid, Config{EnumCutoff: 24}).(*EnumEngine); !ok {
		t.Error("24 input bits at explicit cutoff 24: want EnumEngine")
	}
	if _, ok := NewEngine(large, Config{EnumCutoff: 32}).(*SATEngine); !ok {
		t.Error("32 input bits: want SATEngine (cutoff clamps to MaxEnumBits)")
	}

	// An absurd cutoff is clamped to what enumeration can actually do.
	huge := ir.MustParse("%x:i32 = var\n%y:i32 = var\n%0:i32 = add %x, %y\ninfer %0")
	if _, ok := NewEngine(huge, Config{EnumCutoff: 1 << 20}).(*SATEngine); !ok {
		t.Error("64 input bits: want SATEngine no matter the cutoff")
	}

	// Config plumbing must reach the SAT engine.
	e := NewEngine(large, Config{NoStrash: true}).(*SATEngine)
	if !e.NoStrash {
		t.Error("NoStrash not plumbed through NewEngine")
	}

	// Portfolio follows the EnumCutoff convention: 0 = default,
	// negative = disabled, positive = explicit clone count.
	if e.Portfolio != DefaultPortfolio {
		t.Errorf("default Portfolio = %d, want %d", e.Portfolio, DefaultPortfolio)
	}
	if p := NewEngine(large, Config{Portfolio: -1}).(*SATEngine).Portfolio; p >= 2 {
		t.Errorf("Portfolio -1 must disable the portfolio, got %d", p)
	}
	if p := NewEngine(large, Config{Portfolio: 2}).(*SATEngine).Portfolio; p != 2 {
		t.Errorf("Portfolio 2 not plumbed through, got %d", p)
	}
}

// TestSharedBudgetBoundsTotalConflicts checks the per-engine budget really
// is shared across queries: total conflicts spent stays within the budget
// plus at most one query's overshoot (the in-flight restart batch).
func TestSharedBudgetBoundsTotalConflicts(t *testing.T) {
	f := ir.MustParse(`
		%x:i24 = var
		%y:i24 = var
		%0:i24 = mul %x, %y
		%1:i24 = mul %y, %x
		%2:i24 = xor %0, %1
		%3:i24 = mul %2, %2
		infer %3
	`)
	const budget = 500
	e := NewSAT(f, budget)
	for i := uint(0); i < 24; i++ {
		e.OutputBitCanBe(i, true)
		e.OutputBitCanBe(i, false)
	}
	st := e.Stats()
	if st.Exhausted == 0 {
		t.Fatal("expected exhaustion under a 500-conflict budget")
	}
	// One Luby batch may overshoot the per-query ceiling; anything beyond
	// 2x means queries are not drawing from a shared pool.
	if st.Conflicts > 2*budget {
		t.Errorf("spent %d conflicts against a shared budget of %d", st.Conflicts, budget)
	}
}
