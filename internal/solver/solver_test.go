package solver

import (
	"testing"
	"time"

	"dfcheck/internal/apint"
	"dfcheck/internal/ir"
)

var crossCheckCorpus = []string{
	"%x:i4 = var\n%0:i4 = shl 8:i4, %x\ninfer %0",
	"%x:i4 = var\n%0:i4 = and 1:i4, %x\n%1:i4 = add %x, %0\ninfer %1",
	"%x:i4 = var\n%0:i4 = srem %x, 3:i4\ninfer %0",
	"%x:i4 = var\n%0:i4 = udiv 8:i4, %x\ninfer %0",
	"%x:i4 = var (range=[1,3))\ninfer %x",
	"%x:i4 = var\n%0:i4 = sub 0:i4, %x\n%1:i4 = and %x, %0\ninfer %1",
	"%x:i4 = var\n%y:i4 = var\n%0:i1 = ult %x, %y\n%1:i4 = select %0, %x, %y\ninfer %1",
	"%x:i4 = var\n%0:i4 = mulnsw 3:i4, %x\ninfer %0",
	"%x:i4 = var\n%0:i2 = trunc %x\n%1:i4 = zext %0\ninfer %1",
	"%x:i4 = var\n%0:i4 = udiv %x, 0:i4\ninfer %0", // never well-defined
	"%x:i6 = var\n%0:i6 = srem 4:i6, %x\ninfer %0",
	"%x:i5 = var\n%0:i5 = ctpop %x\ninfer %0",
}

func fixCorpus(src string) string {
	// A typo guard: the corpus strings are parsed; invalid ones panic in
	// MustParse during the test, which is what we want to catch.
	return src
}

func engines(t *testing.T, src string) (*SATEngine, *EnumEngine, *ir.Function) {
	t.Helper()
	f := ir.MustParse(src)
	return NewSAT(f, 0), NewEnum(f), f
}

func TestEnginesAgreeOnCorpus(t *testing.T) {
	for _, src := range crossCheckCorpus {
		src := fixCorpus(src)
		se, ee, f := engines(t, src)
		w := f.Width()

		sf, ok1 := se.Feasible()
		ef, ok2 := ee.Feasible()
		if !ok1 || !ok2 {
			t.Fatalf("%s: Feasible exhausted", src)
		}
		if sf != ef {
			t.Fatalf("%s: Feasible disagree sat=%v enum=%v", src, sf, ef)
		}

		for i := uint(0); i < w; i++ {
			for _, val := range []bool{false, true} {
				sr, _ := se.OutputBitCanBe(i, val)
				er, _ := ee.OutputBitCanBe(i, val)
				if sr != er {
					t.Fatalf("%s: OutputBitCanBe(%d,%v) disagree sat=%v enum=%v", src, i, val, sr, er)
				}
			}
		}

		for k := uint(1); k <= w; k++ {
			sr, _ := se.SignBitsViolated(k)
			er, _ := ee.SignBitsViolated(k)
			if sr != er {
				t.Fatalf("%s: SignBitsViolated(%d) disagree sat=%v enum=%v", src, k, sr, er)
			}
		}

		sr, _ := se.CanBeZero()
		er, _ := ee.CanBeZero()
		if sr != er {
			t.Fatalf("%s: CanBeZero disagree sat=%v enum=%v", src, sr, er)
		}

		sr, _ = se.CanBeNonPowerOfTwo()
		er, _ = ee.CanBeNonPowerOfTwo()
		if sr != er {
			t.Fatalf("%s: CanBeNonPowerOfTwo disagree sat=%v enum=%v", src, sr, er)
		}

		// Ranges: a handful of (lo, size) probes.
		for _, probe := range []struct{ lo, size uint64 }{
			{0, 1}, {0, 5}, {3, 4}, {13, 6}, {1, 15}, {8, 0}, {15, 1},
		} {
			lo := apint.New(w, probe.lo)
			size := apint.New(w, probe.size)
			_, srOut, _ := se.OutputOutside(lo, size)
			_, erOut, _ := ee.OutputOutside(lo, size)
			if srOut != erOut {
				t.Fatalf("%s: OutputOutside(%v,%v) disagree sat=%v enum=%v", src, lo, size, srOut, erOut)
			}
		}

		// Demanded-bit queries on every input bit.
		for _, v := range f.Vars {
			for i := uint(0); i < v.Width; i++ {
				for _, val := range []bool{false, true} {
					sr, _ := se.ForcedBitMatters(v, i, val)
					er, _ := ee.ForcedBitMatters(v, i, val)
					if sr != er {
						t.Fatalf("%s: ForcedBitMatters(%%%s,%d,%v) disagree sat=%v enum=%v",
							src, v.Name, i, val, sr, er)
					}
				}
			}
		}
	}
}

func TestOutputOutsideExampleIsReal(t *testing.T) {
	// When SAT finds an outside example, it must actually be an
	// achievable output outside the interval.
	f := ir.MustParse("%x:i4 = var\n%0:i4 = and 7:i4, %x\ninfer %0")
	se := NewSAT(f, 0)
	lo, size := apint.New(4, 0), apint.New(4, 4) // [0,4): outputs 4..7 outside
	ex, found, ok := se.OutputOutside(lo, size)
	if !ok || !found {
		t.Fatalf("expected an outside example, found=%v ok=%v", found, ok)
	}
	if ex.ULT(apint.New(4, 4)) || ex.UGT(apint.New(4, 7)) {
		t.Errorf("example %v is not an achievable outside output", ex)
	}
}

func TestInfeasibleFunction(t *testing.T) {
	// Division by literal zero is UB on every input.
	f := ir.MustParse("%x:i4 = var\n%0:i4 = udiv %x, 0:i4\ninfer %0")
	se := NewSAT(f, 0)
	feasible, ok := se.Feasible()
	if !ok || feasible {
		t.Errorf("Feasible = (%v,%v), want (false,true)", feasible, ok)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	// 24-bit multiply equivalence is hard enough to blow a 10-conflict
	// budget.
	f := ir.MustParse(`
		%x:i24 = var
		%y:i24 = var
		%0:i24 = mul %x, %y
		%1:i24 = mul %y, %x
		%2:i24 = xor %0, %1
		%3:i24 = mul %2, %2
		%4:i24 = add %3, %0
		infer %4
	`)
	se := NewSAT(f, 10)
	done := 0
	for i := uint(0); i < 24; i++ {
		if _, ok := se.OutputBitCanBe(i, true); ok {
			done++
		}
	}
	st := se.Stats()
	if st.Exhausted == 0 {
		t.Errorf("no queries exhausted with budget 10 (done=%d)", done)
	}
	if st.Queries != 24 {
		t.Errorf("queries = %d, want 24", st.Queries)
	}
}

func TestStatsAccumulate(t *testing.T) {
	f := ir.MustParse("%x:i8 = var\n%0:i8 = mul %x, %x\ninfer %0")
	se := NewSAT(f, 0)
	se.CanBeZero()
	se.CanBeNonPowerOfTwo()
	st := se.Stats()
	// The CanBeZero model has output 0, which is also a non-power-of-two
	// witness: the second query is answered from the witness cache.
	if st.Queries != 1 || st.Pruned != 1 {
		t.Errorf("queries = %d, pruned = %d, want 1 and 1", st.Queries, st.Pruned)
	}
	if st.Propagations == 0 {
		t.Error("propagations not recorded")
	}
}

func TestEnumEngineRejectsWideFunctions(t *testing.T) {
	f := ir.MustParse("%x:i32 = var\ninfer %x")
	defer func() {
		if recover() == nil {
			t.Error("NewEnum on 32-bit input did not panic")
		}
	}()
	NewEnum(f)
}

// TestIncrementalMatchesFresh cross-checks the incremental (shared-solver,
// assumption-based) query path against the fresh-solver path on every
// query type.
func TestIncrementalMatchesFresh(t *testing.T) {
	for _, src := range crossCheckCorpus {
		f := ir.MustParse(src)
		inc := NewSAT(f, 0)
		fresh := NewSAT(f, 0)
		fresh.Fresh = true
		w := f.Width()

		check := func(what string, a, b bool, ok1, ok2 bool) {
			t.Helper()
			if !ok1 || !ok2 {
				t.Fatalf("%s: %s exhausted (inc ok=%v fresh ok=%v)", src, what, ok1, ok2)
			}
			if a != b {
				t.Fatalf("%s: %s disagree inc=%v fresh=%v", src, what, a, b)
			}
		}

		a, ok1 := inc.Feasible()
		b, ok2 := fresh.Feasible()
		check("Feasible", a, b, ok1, ok2)

		for i := uint(0); i < w; i++ {
			for _, val := range []bool{false, true} {
				a, ok1 = inc.OutputBitCanBe(i, val)
				b, ok2 = fresh.OutputBitCanBe(i, val)
				check("OutputBitCanBe", a, b, ok1, ok2)
			}
		}
		for k := uint(2); k <= w; k++ {
			a, ok1 = inc.SignBitsViolated(k)
			b, ok2 = fresh.SignBitsViolated(k)
			check("SignBitsViolated", a, b, ok1, ok2)
		}
		a, ok1 = inc.CanBeZero()
		b, ok2 = fresh.CanBeZero()
		check("CanBeZero", a, b, ok1, ok2)
		a, ok1 = inc.CanBeNonPowerOfTwo()
		b, ok2 = fresh.CanBeNonPowerOfTwo()
		check("CanBeNonPowerOfTwo", a, b, ok1, ok2)

		for _, probe := range []struct{ lo, size uint64 }{{0, 1}, {3, 4}, {13, 6}, {8, 0}, {1, 15}} {
			_, ra, ok1 := inc.OutputOutside(apint.New(w, probe.lo), apint.New(w, probe.size))
			_, rb, ok2 := fresh.OutputOutside(apint.New(w, probe.lo), apint.New(w, probe.size))
			check("OutputOutside", ra, rb, ok1, ok2)
		}

		for _, v := range f.Vars {
			for i := uint(0); i < v.Width; i++ {
				for _, val := range []bool{false, true} {
					a, ok1 = inc.ForcedBitMatters(v, i, val)
					b, ok2 = fresh.ForcedBitMatters(v, i, val)
					check("ForcedBitMatters", a, b, ok1, ok2)
				}
			}
		}
	}
}

func TestDeadlineExhaustsQueries(t *testing.T) {
	f := ir.MustParse("%x:i8 = var\n%0:i8 = add %x, 1:i8\ninfer %0")
	e := NewSAT(f, 0)
	e.Deadline = time.Now().Add(-time.Second)
	if _, ok := e.Feasible(); ok {
		t.Error("query past deadline should be unknown")
	}
	if _, ok := e.OutputBitCanBe(0, true); ok {
		t.Error("bit query past deadline should be unknown")
	}
	if _, ok := e.ForcedBitMatters(f.Vars[0], 0, true); ok {
		t.Error("miter query past deadline should be unknown")
	}
	if st := e.Stats(); st.Exhausted != 3 || st.Queries != 3 {
		t.Errorf("stats = %+v, want 3 exhausted of 3", st)
	}
	// Future deadline: queries run normally.
	e2 := NewSAT(f, 0)
	e2.Deadline = time.Now().Add(time.Hour)
	if feasible, ok := e2.Feasible(); !ok || !feasible {
		t.Error("query before deadline should succeed")
	}
}
