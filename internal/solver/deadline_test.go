package solver

import (
	"context"
	"testing"
	"time"

	"dfcheck/internal/ir"
)

// factoringSrc encodes 20-bit factoring of the semiprime
// 389311259137 = 576287 * 675551: CanBeZero on the xor is satisfiable
// only by the nontrivial factorization, which takes the CDCL solver
// minutes (the 16-bit analog already takes seconds). It is the
// "constructed slow query" of the deadline-overshoot regression: before
// the in-flight abort existed, this single query ran to completion no
// matter how far past the per-expression deadline it went.
const factoringSrc = `%a:i20 = var
%b:i20 = var
%x:i40 = zext %a
%y:i40 = zext %b
%0:i40 = mul %x, %y
%1:i40 = xor %0, 389311259137:i40
infer %1`

func runDeadlineTest(t *testing.T, e *SATEngine) {
	t.Helper()
	start := time.Now()
	_, ok := e.CanBeZero()
	elapsed := time.Since(start)
	if ok {
		t.Fatalf("slow query completed in %v; expected a deadline abort", elapsed)
	}
	st := e.Stats()
	if st.Exhausted == 0 {
		t.Fatalf("aborted in-flight query not counted as exhausted: %+v", st)
	}
	// The abort fires within one sat check interval of the deadline —
	// sub-millisecond of search work. Allow generous CI slack; running
	// the query to completion takes far longer than this bound.
	if elapsed > 5*time.Second {
		t.Fatalf("query overshot the 20ms deadline by %v", elapsed)
	}
}

// TestDeadlineAbortsInFlightQuery pins the overshoot of a query already
// running when the per-expression deadline expires (incremental path).
func TestDeadlineAbortsInFlightQuery(t *testing.T) {
	e := NewSAT(ir.MustParse(factoringSrc), 0)
	e.Deadline = time.Now().Add(20 * time.Millisecond)
	runDeadlineTest(t, e)
}

// TestDeadlineAbortsInFlightQueryFresh covers the fresh-solver path.
func TestDeadlineAbortsInFlightQueryFresh(t *testing.T) {
	e := NewSAT(ir.MustParse(factoringSrc), 0)
	e.Fresh = true
	e.Deadline = time.Now().Add(20 * time.Millisecond)
	runDeadlineTest(t, e)
}

// TestContextCancelAbortsInFlightQuery checks cancellation reaches a
// query mid-search, the mechanism RunContext uses to stop workers.
func TestContextCancelAbortsInFlightQuery(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(20*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()

	e := NewSAT(ir.MustParse(factoringSrc), 0)
	e.Ctx = ctx
	runDeadlineTest(t, e)
}

// TestExpiredDeadlineFailsFast: queries issued after expiry return
// immediately and count as exhausted (the pre-existing behavior).
func TestExpiredDeadlineFailsFast(t *testing.T) {
	e := NewSAT(ir.MustParse("%x:i8 = var\ninfer %x"), 0)
	e.Deadline = time.Now().Add(-time.Second)
	if _, ok := e.Feasible(); ok {
		t.Fatal("expired deadline did not fail the query")
	}
	if st := e.Stats(); st.Queries != 1 || st.Exhausted != 1 {
		t.Fatalf("stats = %+v, want 1 query, 1 exhausted", st)
	}
}
