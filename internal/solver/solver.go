// Package solver answers the dataflow queries the oracle algorithms pose,
// in terms of a single abstract Engine interface with two implementations:
//
//   - SATEngine bit-blasts the function and decides each query with the
//     CDCL solver — the production path, standing in for the paper's Z3.
//   - EnumEngine decides queries by exhaustive input enumeration — usable
//     only at small widths, and used to cross-check SATEngine in tests.
//
// Every query is implicitly conjoined with "the execution is well-defined"
// (no UB, range metadata satisfied), mirroring Souper's UB-aware
// quantification. Answers carry an ok flag: ok=false means the engine's
// resource budget was exhausted (the paper's 30-second solver timeout,
// surfaced in Table 1's "resource exhaustion" column).
package solver

import (
	"context"
	"time"

	"dfcheck/internal/apint"
	"dfcheck/internal/bitblast"
	"dfcheck/internal/eval"
	"dfcheck/internal/ir"
	"dfcheck/internal/sat"
)

// Engine answers existential queries about a function's output over
// well-defined inputs. Each method's first result is meaningful only when
// ok is true.
type Engine interface {
	// Feasible reports whether any well-defined input exists.
	Feasible() (feasible, ok bool)

	// OutputBitCanBe reports whether some well-defined input makes
	// output bit i equal to val.
	OutputBitCanBe(i uint, val bool) (sat, ok bool)

	// SignBitsViolated reports whether some well-defined input makes the
	// top k bits of the output not all equal (i.e. refutes "at least k
	// sign bits").
	SignBitsViolated(k uint) (sat, ok bool)

	// CanBeZero reports whether the output can be zero.
	CanBeZero() (sat, ok bool)

	// CanBeNonPowerOfTwo reports whether the output can be anything
	// other than a power of two (zero included).
	CanBeNonPowerOfTwo() (sat, ok bool)

	// OutputOutside reports whether the output can lie outside the
	// wrapped interval [lo, lo+size), and if so returns one such output
	// value (the CEGIS counterexample for Algorithm 3).
	OutputOutside(lo, size apint.Int) (example apint.Int, sat, ok bool)

	// ForcedBitMatters reports whether forcing bit `bit` of input v to
	// val can change the output, comparing only executions where both
	// the original and the forced run are well-defined (Algorithm 2's
	// equivalence check).
	ForcedBitMatters(v *ir.Inst, bit uint, val bool) (sat, ok bool)

	// Stats returns cumulative query statistics.
	Stats() Stats
}

// Stats are cumulative per-engine counters.
type Stats struct {
	Queries      int64
	Conflicts    int64
	Propagations int64
	Exhausted    int64 // queries that ran out of budget or were aborted
}

// Add accumulates o into s, for rolling per-engine counters up into
// per-expression or per-campaign totals.
func (s *Stats) Add(o Stats) {
	s.Queries += o.Queries
	s.Conflicts += o.Conflicts
	s.Propagations += o.Propagations
	s.Exhausted += o.Exhausted
}

// DefaultConflictBudget bounds each SAT query, standing in for the paper's
// 30-second Z3 timeout.
const DefaultConflictBudget = 200000

// SATEngine decides queries by bit-blasting. By default it runs
// incrementally: one shared solver holds the circuit, each query is posed
// through assumptions, and learned clauses carry over between the many
// related queries an oracle algorithm issues (see incremental.go). Set
// Fresh to give every query its own solver instead (the simpler mode the
// incremental path is cross-checked against).
type SATEngine struct {
	f      *ir.Function
	budget int64
	stats  Stats

	// Fresh disables incremental solving.
	Fresh bool

	// Deadline, when non-zero, bounds the total dataflow computation per
	// expression — the paper's five-minute cap (§4.1). Queries issued
	// after it return unknown immediately, and a query *in flight* when
	// it expires is aborted within one solver check interval
	// (sat.DefaultAbortCheckEvery propagations); both count as exhausted.
	Deadline time.Time

	// Ctx, when non-nil, cancels queries the same way the deadline does:
	// new queries fail fast and in-flight ones abort at the next check
	// interval. It is how Comparator.RunContext stops workers mid-search.
	Ctx context.Context

	out    *outputSession
	miters map[*ir.Inst]*miterSession
}

// NewSAT returns a SAT-backed engine. budget <= 0 selects
// DefaultConflictBudget.
func NewSAT(f *ir.Function, budget int64) *SATEngine {
	if budget <= 0 {
		budget = DefaultConflictBudget
	}
	return &SATEngine{f: f, budget: budget}
}

// Stats returns cumulative counters.
func (e *SATEngine) Stats() Stats { return e.stats }

// cancelled reports whether the deadline has passed or the context is
// done, i.e. no further solver work may start.
func (e *SATEngine) cancelled() bool {
	if e.Ctx != nil && e.Ctx.Err() != nil {
		return true
	}
	return !e.Deadline.IsZero() && !time.Now().Before(e.Deadline)
}

// pastDeadline reports (and counts as an exhausted query) a query issued
// after the per-expression budget ran out or the context was cancelled.
func (e *SATEngine) pastDeadline() bool {
	if !e.cancelled() {
		return false
	}
	e.stats.Queries++
	e.stats.Exhausted++
	return true
}

// armAbort wires the engine's deadline and context into the solver's
// periodic abort poll, so a query in flight when either fires stops
// within one check interval instead of running to completion.
func (e *SATEngine) armAbort(s *sat.Solver) {
	if e.Deadline.IsZero() && e.Ctx == nil {
		s.Abort = nil
		return
	}
	s.Abort = e.cancelled
}

// query solves WellDefined ∧ pred(blasted) on a fresh solver.
func (e *SATEngine) query(pred func(c *bitblast.Circuit, b *bitblast.Blasted) sat.Lit) (*bitblast.Blasted, bool, bool) {
	if e.pastDeadline() {
		return nil, false, false
	}
	s := sat.New()
	s.ConflictBudget = e.budget
	e.armAbort(s)
	b := bitblast.Blast(s, e.f)
	cond := b.C.And(b.WellDefined, pred(b.C, b))
	s.AddClause(cond)
	st := s.Solve()
	e.stats.Queries++
	e.stats.Conflicts += s.Conflicts
	e.stats.Propagations += s.Propagations
	if st == sat.Unknown {
		e.stats.Exhausted++
		return nil, false, false
	}
	return b, st == sat.Sat, true
}

// Feasible implements Engine.
func (e *SATEngine) Feasible() (bool, bool) {
	if !e.Fresh {
		return e.incFeasible()
	}
	_, res, ok := e.query(func(c *bitblast.Circuit, b *bitblast.Blasted) sat.Lit {
		return c.True()
	})
	return res, ok
}

// OutputBitCanBe implements Engine.
func (e *SATEngine) OutputBitCanBe(i uint, val bool) (bool, bool) {
	if !e.Fresh {
		return e.incOutputBitCanBe(i, val)
	}
	_, res, ok := e.query(func(c *bitblast.Circuit, b *bitblast.Blasted) sat.Lit {
		l := b.Output[i]
		if !val {
			l = l.Not()
		}
		return l
	})
	return res, ok
}

// SignBitsViolated implements Engine.
func (e *SATEngine) SignBitsViolated(k uint) (bool, bool) {
	if !e.Fresh {
		return e.incSignBitsViolated(k)
	}
	_, res, ok := e.query(func(c *bitblast.Circuit, b *bitblast.Blasted) sat.Lit {
		w := uint(len(b.Output))
		sign := b.Output[w-1]
		allEq := c.True()
		for i := w - k; i < w-1; i++ {
			allEq = c.And(allEq, c.Xnor(b.Output[i], sign))
		}
		return allEq.Not()
	})
	return res, ok
}

// CanBeZero implements Engine.
func (e *SATEngine) CanBeZero() (bool, bool) {
	if !e.Fresh {
		return e.incCanBeZero()
	}
	_, res, ok := e.query(func(c *bitblast.Circuit, b *bitblast.Blasted) sat.Lit {
		return c.OrN(b.Output...).Not()
	})
	return res, ok
}

// CanBeNonPowerOfTwo implements Engine.
func (e *SATEngine) CanBeNonPowerOfTwo() (bool, bool) {
	if !e.Fresh {
		return e.incCanBeNonPowerOfTwo()
	}
	_, res, ok := e.query(func(c *bitblast.Circuit, b *bitblast.Blasted) sat.Lit {
		// pow2(x): x != 0 and x & (x-1) == 0.
		w := uint(len(b.Output))
		nonZero := c.OrN(b.Output...)
		minusOne, _ := c.Sub(b.Output, c.ConstWord(apint.One(w)))
		masked := c.AndWord(b.Output, minusOne)
		isPow2 := c.And(nonZero, c.OrN(masked...).Not())
		return isPow2.Not()
	})
	return res, ok
}

// OutputOutside implements Engine.
func (e *SATEngine) OutputOutside(lo, size apint.Int) (apint.Int, bool, bool) {
	if !e.Fresh {
		return e.incOutputOutside(lo, size)
	}
	if size.IsZero() {
		// [lo, lo+0) is empty: everything is outside; find any output.
		b, res, ok := e.query(func(c *bitblast.Circuit, b *bitblast.Blasted) sat.Lit {
			return c.True()
		})
		if !ok || !res {
			return apint.Int{}, res, ok
		}
		return b.C.Value(b.Output), true, true
	}
	hi := lo.Add(size) // exclusive; lo == hi means the full set
	if hi.Eq(lo) {
		return apint.Int{}, false, true // full set: nothing outside
	}
	b, res, ok := e.query(func(c *bitblast.Circuit, bl *bitblast.Blasted) sat.Lit {
		geLo := c.ULT(bl.Output, c.ConstWord(lo)).Not()
		ltHi := c.ULT(bl.Output, c.ConstWord(hi))
		var inside sat.Lit
		if lo.ULT(hi) {
			inside = c.And(geLo, ltHi)
		} else {
			inside = c.Or(geLo, ltHi)
		}
		return inside.Not()
	})
	if !ok || !res {
		return apint.Int{}, res, ok
	}
	return b.C.Value(b.Output), true, true
}

// ForcedBitMatters implements Engine.
func (e *SATEngine) ForcedBitMatters(v *ir.Inst, bit uint, val bool) (bool, bool) {
	if !e.Fresh {
		return e.incForcedBitMatters(v, bit, val)
	}
	if e.pastDeadline() {
		return false, false
	}
	s := sat.New()
	s.ConflictBudget = e.budget
	e.armAbort(s)
	b1 := bitblast.Blast(s, e.f)
	c := b1.C

	inputs2 := make(map[*ir.Inst]bitblast.Word, len(b1.Inputs))
	for iv, word := range b1.Inputs {
		inputs2[iv] = word
	}
	forced := append(bitblast.Word{}, b1.Inputs[v]...)
	forced[bit] = c.LitFromBool(val)
	inputs2[v] = forced
	b2 := bitblast.BlastWith(c, e.f, inputs2)

	differ := c.Eq(b1.Output, b2.Output).Not()
	cond := c.AndN(b1.WellDefined, b2.WellDefined, differ)
	s.AddClause(cond)
	st := s.Solve()
	e.stats.Queries++
	e.stats.Conflicts += s.Conflicts
	e.stats.Propagations += s.Propagations
	if st == sat.Unknown {
		e.stats.Exhausted++
		return false, false
	}
	return st == sat.Sat, true
}

// EnumEngine answers queries by exhaustive enumeration; only usable when
// the summed input width is small (eval.MaxEnumBits).
type EnumEngine struct {
	f     *ir.Function
	stats Stats
}

// NewEnum returns an enumeration-backed engine.
func NewEnum(f *ir.Function) *EnumEngine {
	if eval.TotalInputBits(f) > eval.MaxEnumBits {
		panic("solver: function too wide for EnumEngine")
	}
	return &EnumEngine{f: f}
}

// Stats returns cumulative counters.
func (e *EnumEngine) Stats() Stats { return e.stats }

// exists scans for a well-defined input whose output satisfies pred.
func (e *EnumEngine) exists(pred func(v apint.Int) bool) (found bool) {
	e.stats.Queries++
	eval.ForEachInput(e.f, func(env eval.Env) bool {
		if v, ok := eval.Eval(e.f, env); ok && pred(v) {
			found = true
			return false
		}
		return true
	})
	return found
}

// Feasible implements Engine.
func (e *EnumEngine) Feasible() (bool, bool) {
	return e.exists(func(apint.Int) bool { return true }), true
}

// OutputBitCanBe implements Engine.
func (e *EnumEngine) OutputBitCanBe(i uint, val bool) (bool, bool) {
	return e.exists(func(v apint.Int) bool { return v.Bit(i) == val }), true
}

// SignBitsViolated implements Engine.
func (e *EnumEngine) SignBitsViolated(k uint) (bool, bool) {
	return e.exists(func(v apint.Int) bool { return v.NumSignBits() < k }), true
}

// CanBeZero implements Engine.
func (e *EnumEngine) CanBeZero() (bool, bool) {
	return e.exists(apint.Int.IsZero), true
}

// CanBeNonPowerOfTwo implements Engine.
func (e *EnumEngine) CanBeNonPowerOfTwo() (bool, bool) {
	return e.exists(func(v apint.Int) bool { return !v.IsPowerOfTwo() }), true
}

// OutputOutside implements Engine.
func (e *EnumEngine) OutputOutside(lo, size apint.Int) (apint.Int, bool, bool) {
	hi := lo.Add(size)
	var example apint.Int
	found := e.exists(func(v apint.Int) bool {
		if !size.IsZero() && hi.Eq(lo) {
			return false // full interval
		}
		inside := false
		if size.IsZero() {
			inside = false // empty interval
		} else if lo.ULT(hi) {
			inside = v.UGE(lo) && v.ULT(hi)
		} else {
			inside = v.UGE(lo) || v.ULT(hi)
		}
		if !inside {
			example = v
			return true
		}
		return false
	})
	return example, found, true
}

// ForcedBitMatters implements Engine.
func (e *EnumEngine) ForcedBitMatters(v *ir.Inst, bit uint, val bool) (bool, bool) {
	e.stats.Queries++
	found := false
	eval.ForEachInput(e.f, func(env eval.Env) bool {
		orig, ok1 := eval.Eval(e.f, env)
		env2 := make(eval.Env, len(env))
		for k, x := range env {
			env2[k] = x
		}
		if val {
			env2[v] = env[v].SetBit(bit)
		} else {
			env2[v] = env[v].ClearBit(bit)
		}
		forced, ok2 := eval.Eval(e.f, env2)
		if ok1 && ok2 && orig.Ne(forced) {
			found = true
			return false
		}
		return true
	})
	return found, true
}
