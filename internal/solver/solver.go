// Package solver answers the dataflow queries the oracle algorithms pose,
// in terms of a single abstract Engine interface with two implementations:
//
//   - SATEngine bit-blasts the function and decides each query with the
//     CDCL solver — the production path, standing in for the paper's Z3.
//   - EnumEngine decides queries by exhaustive input enumeration — usable
//     only at small widths, and used to cross-check SATEngine in tests.
//
// Every query is implicitly conjoined with "the execution is well-defined"
// (no UB, range metadata satisfied), mirroring Souper's UB-aware
// quantification. Answers carry an ok flag: ok=false means the engine's
// resource budget was exhausted (the paper's 30-second solver timeout,
// surfaced in Table 1's "resource exhaustion" column).
package solver

import (
	"context"
	mathbits "math/bits"
	"time"

	"dfcheck/internal/apint"
	"dfcheck/internal/bitblast"
	"dfcheck/internal/eval"
	"dfcheck/internal/ir"
	"dfcheck/internal/sat"
	"dfcheck/internal/trace"
)

// Engine answers existential queries about a function's output over
// well-defined inputs. Each method's first result is meaningful only when
// ok is true.
type Engine interface {
	// Feasible reports whether any well-defined input exists.
	Feasible() (feasible, ok bool)

	// OutputBitCanBe reports whether some well-defined input makes
	// output bit i equal to val.
	OutputBitCanBe(i uint, val bool) (sat, ok bool)

	// SignBitsViolated reports whether some well-defined input makes the
	// top k bits of the output not all equal (i.e. refutes "at least k
	// sign bits").
	SignBitsViolated(k uint) (sat, ok bool)

	// CanBeZero reports whether the output can be zero.
	CanBeZero() (sat, ok bool)

	// CanBeNonPowerOfTwo reports whether the output can be anything
	// other than a power of two (zero included).
	CanBeNonPowerOfTwo() (sat, ok bool)

	// OutputOutside reports whether the output can lie outside the
	// wrapped interval [lo, lo+size), and if so returns one such output
	// value (the CEGIS counterexample for Algorithm 3).
	OutputOutside(lo, size apint.Int) (example apint.Int, sat, ok bool)

	// ForcedBitMatters reports whether forcing bit `bit` of input v to
	// val can change the output, comparing only executions where both
	// the original and the forced run are well-defined (Algorithm 2's
	// equivalence check).
	ForcedBitMatters(v *ir.Inst, bit uint, val bool) (sat, ok bool)

	// AddPruned records n queries the caller never issued because their
	// answer was already fixed without solving (a sound abstract seed, or
	// an engine-level memo). The oracle algorithms call this so Table-1
	// CPU-time deltas stay attributable.
	AddPruned(n int64)

	// SetTraceSpan sets the span subsequent queries nest under — the
	// comparator points it at each per-analysis span in turn, and the
	// oracle algorithms re-root it at their iteration spans. Nil (the
	// default) is the untraced path.
	SetTraceSpan(sp *trace.Span)

	// TraceSpan returns the current span (nil when untraced).
	TraceSpan() *trace.Span

	// Stats returns cumulative query statistics.
	Stats() Stats
}

// Stats are cumulative per-engine counters.
type Stats struct {
	Queries      int64
	Conflicts    int64
	Propagations int64
	Decisions    int64
	Restarts     int64
	Learned      int64 // learnt clauses derived across all queries
	Exhausted    int64 // queries that ran out of budget or were aborted

	// Pruned counts queries eliminated before any solving: answers fixed
	// by a sound abstract seed (oracle.Seed) or by an engine memo.
	Pruned int64
	// PortfolioRuns counts hard queries that escalated to a clone
	// portfolio; PortfolioWins counts those a clone answered definitively
	// (the rest exhausted their budget or were aborted). UnitsImported /
	// UnitsExported total the level-0 unit literals exchanged between
	// clones during those runs.
	PortfolioRuns int64
	PortfolioWins int64
	UnitsImported int64
	UnitsExported int64
	// EnumQueries counts queries answered by exhaustive enumeration
	// rather than SAT (the small-width fast path).
	EnumQueries int64
	// GatesBuilt / GatesDeduped / Clauses roll up the bit-blaster's
	// construction counters over every circuit the engine touched:
	// Tseitin gates actually encoded, gate requests the structural hash
	// (or a rewrite rule) absorbed, and problem clauses handed to SAT.
	GatesBuilt   int64
	GatesDeduped int64
	Clauses      int64
}

// Add accumulates o into s, for rolling per-engine counters up into
// per-expression or per-campaign totals.
func (s *Stats) Add(o Stats) {
	s.Queries += o.Queries
	s.Conflicts += o.Conflicts
	s.Propagations += o.Propagations
	s.Decisions += o.Decisions
	s.Restarts += o.Restarts
	s.Learned += o.Learned
	s.Exhausted += o.Exhausted
	s.Pruned += o.Pruned
	s.PortfolioRuns += o.PortfolioRuns
	s.PortfolioWins += o.PortfolioWins
	s.UnitsImported += o.UnitsImported
	s.UnitsExported += o.UnitsExported
	s.EnumQueries += o.EnumQueries
	s.GatesBuilt += o.GatesBuilt
	s.GatesDeduped += o.GatesDeduped
	s.Clauses += o.Clauses
}

// addCircuit rolls one circuit's construction counters into the stats.
func (s *Stats) addCircuit(cs bitblast.CircuitStats) {
	s.GatesBuilt += cs.Gates
	s.GatesDeduped += cs.Deduped + cs.Rewrites
	s.Clauses += cs.Clauses
}

// DefaultConflictBudget bounds the conflicts a SATEngine may spend across
// all of its queries, standing in for the paper's 30-second Z3 timeout.
// The budget is shared per engine (and so, with one engine per expression,
// per expression): an oracle run can no longer spend N× the intended
// budget by issuing N queries.
const DefaultConflictBudget = 200000

// DefaultEnumCutoff is the summed-input-width at or below which NewEngine
// prefers exhaustive enumeration over bit-blasting. The bit-sliced
// evaluator sweeps 64 inputs per call, so a full 2^14 pass costs ~256
// block evaluations — still cheaper than a single CNF construction. On
// the Table-1 corpus the break-even for the sliced sweeps sits at 14–16
// summed bits (the scalar interpreter's was 8–10); demanded bits, the
// worst case, now pays one 64-lane sweep per input variable instead of a
// scalar sweep per variable bit.
const DefaultEnumCutoff = 14

// DefaultPortfolio is the clone count for the portfolio escalation of
// hard SAT queries (sat.Solver.Portfolio). Three clones cover the three
// classic diversification axes — the parent's own trajectory, a
// random-phase restart-happy explorer, and an activity-jittered variant —
// while staying well inside the worker-parallel campaign's core budget.
const DefaultPortfolio = 3

// Config parameterizes NewEngine.
type Config struct {
	// Budget is the engine-wide conflict budget (0 selects
	// DefaultConflictBudget).
	Budget int64
	// Deadline and Ctx cancel queries; see the SATEngine fields.
	Deadline time.Time
	Ctx      context.Context
	// NoStrash disables structural hashing in the bit-blaster — the
	// ablation path behind the -no-strash flag.
	NoStrash bool
	// EnumCutoff routes functions whose summed input width is at or
	// below the cutoff to the enumeration engine. 0 selects
	// DefaultEnumCutoff; negative disables the fast path entirely.
	EnumCutoff int
	// Portfolio is the clone count for hard-query portfolio solving.
	// 0 selects DefaultPortfolio; negative disables the portfolio (the
	// -no-portfolio ablation), mirroring the EnumCutoff convention.
	Portfolio int
	// PortfolioAfter overrides the conflict threshold before a query
	// escalates to the portfolio (0 selects sat.DefaultPortfolioAfter).
	PortfolioAfter int64
	// PortfolioSeed perturbs the clones' decision heuristics
	// (sat.Solver.PortfolioSeed). Results are seed-independent; only
	// which clone wins the race varies.
	PortfolioSeed int64
}

// NewEngine selects the fastest engine for f under cfg: the enumeration
// engine below the small-width cutoff, the (strashed, incremental) SAT
// engine otherwise. Both decide exactly the same queries, a property the
// cross-check tests enforce on every query type.
func NewEngine(f *ir.Function, cfg Config) Engine {
	cut := cfg.EnumCutoff
	if cut == 0 {
		cut = DefaultEnumCutoff
	}
	if cut > eval.MaxEnumBits {
		cut = eval.MaxEnumBits
	}
	if cut > 0 && eval.TotalInputBits(f) <= uint(cut) {
		en := NewEnum(f)
		en.Ctx = cfg.Ctx
		en.Deadline = cfg.Deadline
		return en
	}
	e := NewSAT(f, cfg.Budget)
	e.Deadline = cfg.Deadline
	e.Ctx = cfg.Ctx
	e.NoStrash = cfg.NoStrash
	e.Portfolio = cfg.Portfolio
	if e.Portfolio == 0 {
		e.Portfolio = DefaultPortfolio
	}
	e.PortfolioAfter = cfg.PortfolioAfter
	e.PortfolioSeed = cfg.PortfolioSeed
	return e
}

// SATEngine decides queries by bit-blasting. By default it runs
// incrementally: one shared solver holds the circuit, each query is posed
// through assumptions, and learned clauses carry over between the many
// related queries an oracle algorithm issues (see incremental.go). Set
// Fresh to give every query its own solver instead (the simpler mode the
// incremental path is cross-checked against).
type SATEngine struct {
	f      *ir.Function
	budget int64
	spent  int64 // conflicts consumed so far, against the shared budget
	stats  Stats

	// Memoized feasibility: the first query of all eight oracle
	// algorithms is the same "any well-defined input?" check, so with one
	// engine per expression the answer is computed once (incremental path
	// only; the Fresh ablation stays memo-free).
	feasKnown bool
	feasible  bool

	// witnesses caches output values read from satisfying models: each is
	// an achievable well-defined output, so any later existence query one
	// of them satisfies is answered without the solver (incremental path
	// only; see recordWitness).
	witnesses []apint.Int

	// Fresh disables incremental solving.
	Fresh bool

	// NoStrash disables structural hashing in the bit-blaster — the
	// ablation path cross-checked against the default strashed circuits.
	NoStrash bool

	// Portfolio is the clone count passed to every solver this engine
	// creates (sat.Solver.Portfolio): queries still undecided after
	// sat.DefaultPortfolioAfter conflicts escalate to that many perturbed
	// clones racing in parallel. Values below 2 keep solving sequential.
	// NewSAT leaves it 0 (off); NewEngine resolves the Config default.
	Portfolio int

	// PortfolioAfter overrides the per-query conflict threshold before the
	// portfolio engages (0 selects sat.DefaultPortfolioAfter).
	PortfolioAfter int64

	// PortfolioSeed perturbs clone decision heuristics (see Config).
	PortfolioSeed int64

	// Deadline, when non-zero, bounds the total dataflow computation per
	// expression — the paper's five-minute cap (§4.1). Queries issued
	// after it return unknown immediately, and a query *in flight* when
	// it expires is aborted within one solver check interval
	// (sat.DefaultAbortCheckEvery propagations); both count as exhausted.
	Deadline time.Time

	// Ctx, when non-nil, cancels queries the same way the deadline does:
	// new queries fail fast and in-flight ones abort at the next check
	// interval. It is how Comparator.RunContext stops workers mid-search.
	Ctx context.Context

	out    *outputSession
	miters map[*ir.Inst]*miterSession

	// span is the trace span queries currently nest under (nil when
	// untraced); see Engine.SetTraceSpan.
	span *trace.Span
}

// SetTraceSpan implements Engine.
func (e *SATEngine) SetTraceSpan(sp *trace.Span) { e.span = sp }

// TraceSpan implements Engine.
func (e *SATEngine) TraceSpan() *trace.Span { return e.span }

// Query classes, the trace dimension cmd/trace-report groups by: validity
// queries prove a fact by UNSAT, model-existence queries want a model
// back (feasibility, CEGIS counterexamples, hull probes), and enum
// queries bypass SAT entirely.
const (
	classValidity  = "validity"
	classExistence = "model-existence"
	classEnum      = "enum"
)

// startQuery opens a leaf query span under the engine's current span and
// snapshots the solver counters it will attribute. Nil when untraced.
func (e *SATEngine) startQuery(name, class string, s *sat.Solver) (*trace.Span, sat.Stats) {
	sp := e.span.Child(trace.KindQuery, name)
	if sp == nil {
		return nil, sat.Stats{}
	}
	sp.SetStr("class", class)
	return sp, s.Stats()
}

// endQuery attributes one query's solver internals — the counter deltas
// since startQuery plus the circuit's CNF size — to its leaf span.
func endQuery(sp *trace.Span, s *sat.Solver, before sat.Stats, st sat.Status) {
	if sp == nil {
		return
	}
	now := s.Stats()
	d := now.Sub(before)
	sp.SetStr("result", st.String())
	sp.SetInt("decisions", d.Decisions)
	sp.SetInt("conflicts", d.Conflicts)
	sp.SetInt("propagations", d.Propagations)
	sp.SetInt("restarts", d.Restarts)
	sp.SetInt("learned", d.Learned)
	sp.SetInt("vars", now.Vars)
	sp.SetInt("clauses", now.Clauses)
	if d.PortfolioRuns > 0 {
		sp.SetInt("portfolio-runs", d.PortfolioRuns)
		sp.SetInt("portfolio-winner", now.LastWinner)
		sp.SetInt("units-imported", d.UnitsImported)
		sp.SetInt("units-exported", d.UnitsExported)
	}
	sp.End()
}

// cloneWinsTotal sums a sat stats delta's per-clone win histogram — the
// number of portfolio runs in the delta that a clone answered.
func cloneWinsTotal(d sat.Stats) int64 {
	var n int64
	for _, w := range d.CloneWins {
		n += w
	}
	return n
}

// armPortfolio applies the engine's portfolio policy to a solver it is
// about to search on.
func (e *SATEngine) armPortfolio(s *sat.Solver) {
	s.Portfolio = e.Portfolio
	s.PortfolioAfter = e.PortfolioAfter
	s.PortfolioSeed = e.PortfolioSeed
}

// NewSAT returns a SAT-backed engine. budget <= 0 selects
// DefaultConflictBudget. The budget bounds the total conflicts spent
// across every query the engine answers; once it is gone, further queries
// fail fast as exhausted.
func NewSAT(f *ir.Function, budget int64) *SATEngine {
	if budget <= 0 {
		budget = DefaultConflictBudget
	}
	return &SATEngine{f: f, budget: budget}
}

// Stats returns cumulative counters, including the construction counters
// of the live incremental sessions' circuits.
func (e *SATEngine) Stats() Stats {
	st := e.stats
	if e.out != nil {
		st.addCircuit(e.out.b.C.Stats())
	}
	for _, m := range e.miters {
		st.addCircuit(m.c.Stats())
	}
	return st
}

// AddPruned implements Engine.
func (e *SATEngine) AddPruned(n int64) { e.stats.Pruned += n }

// remaining returns the unconsumed part of the shared conflict budget.
func (e *SATEngine) remaining() int64 { return e.budget - e.spent }

// outOfBudget reports (and counts as an exhausted query) a query issued
// after the engine's shared conflict budget was used up.
func (e *SATEngine) outOfBudget() bool {
	if e.remaining() > 0 {
		return false
	}
	e.stats.Queries++
	e.stats.Exhausted++
	return true
}

// blast compiles the engine's function onto s, honoring NoStrash.
func (e *SATEngine) blast(s *sat.Solver) *bitblast.Blasted {
	c := bitblast.NewCircuit(s)
	if e.NoStrash {
		c.DisableStrash()
	}
	return bitblast.BlastCircuit(c, e.f)
}

// cancelled reports whether the deadline has passed or the context is
// done, i.e. no further solver work may start.
func (e *SATEngine) cancelled() bool {
	if e.Ctx != nil && e.Ctx.Err() != nil {
		return true
	}
	return !e.Deadline.IsZero() && !time.Now().Before(e.Deadline)
}

// pastDeadline reports (and counts as an exhausted query) a query issued
// after the per-expression budget ran out or the context was cancelled.
func (e *SATEngine) pastDeadline() bool {
	if !e.cancelled() {
		return false
	}
	e.stats.Queries++
	e.stats.Exhausted++
	return true
}

// armAbort wires the engine's deadline and context into the solver's
// periodic abort poll, so a query in flight when either fires stops
// within one check interval instead of running to completion.
func (e *SATEngine) armAbort(s *sat.Solver) {
	if e.Deadline.IsZero() && e.Ctx == nil {
		s.Abort = nil
		return
	}
	s.Abort = e.cancelled
}

// query solves WellDefined ∧ pred(blasted) on a fresh solver.
func (e *SATEngine) query(name, class string, pred func(c *bitblast.Circuit, b *bitblast.Blasted) sat.Lit) (*bitblast.Blasted, bool, bool) {
	if e.pastDeadline() || e.outOfBudget() {
		return nil, false, false
	}
	s := sat.New()
	s.ConflictBudget = e.remaining()
	e.armAbort(s)
	e.armPortfolio(s)
	b := e.blast(s)
	cond := b.C.And(b.WellDefined, pred(b.C, b))
	s.AddClause(cond)
	sp, before := e.startQuery(name, class, s)
	st := s.Solve()
	endQuery(sp, s, before, st)
	e.stats.Queries++
	e.spent += s.Conflicts
	e.addSolve(s.Stats())
	e.stats.addCircuit(b.C.Stats())
	if st == sat.Unknown {
		e.stats.Exhausted++
		return nil, false, false
	}
	return b, st == sat.Sat, true
}

// addSolve rolls one fresh solver's whole-run counters into the engine
// stats (the fresh-path analog of solveAssuming's delta accounting).
func (e *SATEngine) addSolve(st sat.Stats) {
	e.stats.Conflicts += st.Conflicts
	e.stats.Propagations += st.Propagations
	e.stats.Decisions += st.Decisions
	e.stats.Restarts += st.Restarts
	e.stats.Learned += st.Learned
	e.stats.PortfolioRuns += st.PortfolioRuns
	e.stats.PortfolioWins += cloneWinsTotal(st)
	e.stats.UnitsImported += st.UnitsImported
	e.stats.UnitsExported += st.UnitsExported
}

// Feasible implements Engine.
func (e *SATEngine) Feasible() (bool, bool) {
	if !e.Fresh {
		return e.incFeasible()
	}
	_, res, ok := e.query("feasible", classExistence, func(c *bitblast.Circuit, b *bitblast.Blasted) sat.Lit {
		return c.True()
	})
	return res, ok
}

// OutputBitCanBe implements Engine.
func (e *SATEngine) OutputBitCanBe(i uint, val bool) (bool, bool) {
	if !e.Fresh {
		return e.incOutputBitCanBe(i, val)
	}
	_, res, ok := e.query("output-bit", classValidity, func(c *bitblast.Circuit, b *bitblast.Blasted) sat.Lit {
		l := b.Output[i]
		if !val {
			l = l.Not()
		}
		return l
	})
	return res, ok
}

// SignBitsViolated implements Engine.
func (e *SATEngine) SignBitsViolated(k uint) (bool, bool) {
	if !e.Fresh {
		return e.incSignBitsViolated(k)
	}
	_, res, ok := e.query("sign-bits", classValidity, func(c *bitblast.Circuit, b *bitblast.Blasted) sat.Lit {
		w := uint(len(b.Output))
		sign := b.Output[w-1]
		allEq := c.True()
		for i := w - k; i < w-1; i++ {
			allEq = c.And(allEq, c.Xnor(b.Output[i], sign))
		}
		return allEq.Not()
	})
	return res, ok
}

// CanBeZero implements Engine.
func (e *SATEngine) CanBeZero() (bool, bool) {
	if !e.Fresh {
		return e.incCanBeZero()
	}
	_, res, ok := e.query("zero", classValidity, func(c *bitblast.Circuit, b *bitblast.Blasted) sat.Lit {
		return c.OrN(b.Output...).Not()
	})
	return res, ok
}

// CanBeNonPowerOfTwo implements Engine.
func (e *SATEngine) CanBeNonPowerOfTwo() (bool, bool) {
	if !e.Fresh {
		return e.incCanBeNonPowerOfTwo()
	}
	_, res, ok := e.query("non-pow2", classValidity, func(c *bitblast.Circuit, b *bitblast.Blasted) sat.Lit {
		// pow2(x): x != 0 and x & (x-1) == 0.
		w := uint(len(b.Output))
		nonZero := c.OrN(b.Output...)
		minusOne, _ := c.Sub(b.Output, c.ConstWord(apint.One(w)))
		masked := c.AndWord(b.Output, minusOne)
		isPow2 := c.And(nonZero, c.OrN(masked...).Not())
		return isPow2.Not()
	})
	return res, ok
}

// OutputOutside implements Engine.
func (e *SATEngine) OutputOutside(lo, size apint.Int) (apint.Int, bool, bool) {
	if !e.Fresh {
		return e.incOutputOutside(lo, size)
	}
	if size.IsZero() {
		// [lo, lo+0) is empty: everything is outside; find any output.
		b, res, ok := e.query("outside", classExistence, func(c *bitblast.Circuit, b *bitblast.Blasted) sat.Lit {
			return c.True()
		})
		if !ok || !res {
			return apint.Int{}, res, ok
		}
		return b.C.Value(b.Output), true, true
	}
	hi := lo.Add(size) // exclusive; lo == hi means the full set
	if hi.Eq(lo) {
		return apint.Int{}, false, true // full set: nothing outside
	}
	b, res, ok := e.query("outside", classExistence, func(c *bitblast.Circuit, bl *bitblast.Blasted) sat.Lit {
		geLo := c.ULT(bl.Output, c.ConstWord(lo)).Not()
		ltHi := c.ULT(bl.Output, c.ConstWord(hi))
		var inside sat.Lit
		if lo.ULT(hi) {
			inside = c.And(geLo, ltHi)
		} else {
			inside = c.Or(geLo, ltHi)
		}
		return inside.Not()
	})
	if !ok || !res {
		return apint.Int{}, res, ok
	}
	return b.C.Value(b.Output), true, true
}

// ForcedBitMatters implements Engine.
func (e *SATEngine) ForcedBitMatters(v *ir.Inst, bit uint, val bool) (bool, bool) {
	if !e.Fresh {
		return e.incForcedBitMatters(v, bit, val)
	}
	if e.pastDeadline() || e.outOfBudget() {
		return false, false
	}
	s := sat.New()
	s.ConflictBudget = e.remaining()
	e.armAbort(s)
	e.armPortfolio(s)
	b1 := e.blast(s)
	c := b1.C

	inputs2 := make(map[*ir.Inst]bitblast.Word, len(b1.Inputs))
	for iv, word := range b1.Inputs {
		inputs2[iv] = word
	}
	forced := append(bitblast.Word{}, b1.Inputs[v]...)
	forced[bit] = c.LitFromBool(val)
	inputs2[v] = forced
	b2 := bitblast.BlastWith(c, e.f, inputs2)

	differ := c.Eq(b1.Output, b2.Output).Not()
	cond := c.AndN(b1.WellDefined, b2.WellDefined, differ)
	s.AddClause(cond)
	sp, before := e.startQuery("forced-bit", classValidity, s)
	st := s.Solve()
	endQuery(sp, s, before, st)
	e.stats.Queries++
	e.spent += s.Conflicts
	e.addSolve(s.Stats())
	e.stats.addCircuit(c.Stats())
	if st == sat.Unknown {
		e.stats.Exhausted++
		return false, false
	}
	return st == sat.Sat, true
}

// EnumEngine answers queries by exhaustive enumeration; only usable when
// the summed input width is small (eval.MaxEnumBits). It enumerates the
// input space once, memoizing the set of achievable outputs, so each of
// the oracle's many output queries is a scan over at most 2^w values
// instead of a fresh 2^inputs interpreter sweep; demanded-bits queries
// similarly compute one per-variable matrix in a single pass.
type EnumEngine struct {
	f      *ir.Function
	sliced *eval.SlicedProgram
	stats  Stats
	span   *trace.Span

	// Ctx, when non-nil, cancels enumeration: queries issued after it is
	// done (or interrupted mid-sweep) return not-ok, counted exhausted.
	Ctx context.Context
	// Deadline, when non-zero, bounds enumeration the same way the SAT
	// engine's deadline bounds solving.
	Deadline time.Time

	enumerated bool
	feasible   bool
	outputs    []apint.Int // achievable outputs, first-seen order
	demanded   map[*ir.Inst][]bool
}

// enumCancelBlockMask polls the context every 64 sliced blocks (4096
// evaluations) during an enumeration sweep.
const enumCancelBlockMask = 63

// NewEnum returns an enumeration-backed engine. Sweeps run on the
// bit-sliced evaluator: 64 input vectors per call, so the whole space
// costs 2^total/64 block evaluations.
func NewEnum(f *ir.Function) *EnumEngine {
	if eval.TotalInputBits(f) > eval.MaxEnumBits {
		panic("solver: function too wide for EnumEngine")
	}
	return &EnumEngine{f: f, sliced: eval.CompileSliced(f)}
}

// Stats returns cumulative counters.
func (e *EnumEngine) Stats() Stats { return e.stats }

// AddPruned implements Engine.
func (e *EnumEngine) AddPruned(n int64) { e.stats.Pruned += n }

// SetTraceSpan implements Engine.
func (e *EnumEngine) SetTraceSpan(sp *trace.Span) { e.span = sp }

// TraceSpan implements Engine.
func (e *EnumEngine) TraceSpan() *trace.Span { return e.span }

// startEnum opens a per-query span on the enumeration path. The sweep
// spans (enum-sweep, demanded-sweep) nest under it, so a Perfetto view
// shows exactly which query paid for the one-time 2^n pass.
func (e *EnumEngine) startEnum(name string) *trace.Span {
	sp := e.span.Child(trace.KindQuery, name)
	sp.SetStr("class", classEnum)
	return sp
}

func endEnum(sp *trace.Span, found, ok bool) {
	if sp == nil {
		return
	}
	switch {
	case !ok:
		sp.SetStr("result", "exhausted")
	case found:
		sp.SetStr("result", "sat")
	default:
		sp.SetStr("result", "unsat")
	}
	sp.End()
}

func (e *EnumEngine) cancelled() bool {
	if e.Ctx != nil && e.Ctx.Err() != nil {
		return true
	}
	return !e.Deadline.IsZero() && !time.Now().Before(e.Deadline)
}

// ensureOutputs runs the one-time enumeration of achievable outputs. It
// returns false (without caching a partial result) when the context
// cancels the sweep.
func (e *EnumEngine) ensureOutputs(parent *trace.Span) bool {
	if e.enumerated {
		return true
	}
	if e.cancelled() {
		return false
	}
	sweep := parent.Child(trace.KindIter, "enum-sweep")
	w := e.f.Root.Width
	count := uint64(1) << eval.TotalInputBits(e.f)
	// Dedup through a bitset: the root is at most 64 bits wide, but any
	// enumerable function's achievable-output count is bounded by the
	// input count, so a map fallback only matters for wide roots.
	var seenSet []uint64
	var seenMap map[uint64]bool
	if w <= 16 {
		seenSet = make([]uint64, (uint64(1)<<w+63)/64)
	} else {
		seenMap = make(map[uint64]bool)
	}
	var outs []apint.Int
	var n int64
	ok := true
	for base, blocks := uint64(0), 0; base < count; base += 64 {
		if blocks++; blocks&enumCancelBlockMask == 0 && e.cancelled() {
			ok = false
			break
		}
		planes, okm := e.sliced.EvalIndexed(base)
		n += 64
		for ; okm != 0; okm &= okm - 1 {
			l := uint(mathbits.TrailingZeros64(okm))
			v := eval.Lane(planes, l)
			if seenSet != nil {
				if seenSet[v>>6]>>(v&63)&1 == 1 {
					continue
				}
				seenSet[v>>6] |= 1 << (v & 63)
			} else {
				if seenMap[v] {
					continue
				}
				seenMap[v] = true
			}
			outs = append(outs, apint.New(w, v))
		}
	}
	if sweep != nil {
		sweep.SetInt("evals", n)
		sweep.End()
	}
	if !ok {
		return false
	}
	e.outputs = outs
	e.feasible = len(outs) > 0
	e.enumerated = true
	return true
}

// exists scans the memoized achievable outputs for one satisfying pred.
func (e *EnumEngine) exists(name string, pred func(v apint.Int) bool) (found, ok bool) {
	e.stats.Queries++
	e.stats.EnumQueries++
	sp := e.startEnum(name)
	if !e.ensureOutputs(sp) {
		e.stats.Exhausted++
		endEnum(sp, false, false)
		return false, false
	}
	for _, v := range e.outputs {
		if pred(v) {
			endEnum(sp, true, true)
			return true, true
		}
	}
	endEnum(sp, false, true)
	return false, true
}

// Feasible implements Engine.
func (e *EnumEngine) Feasible() (bool, bool) {
	return e.exists("feasible", func(apint.Int) bool { return true })
}

// OutputBitCanBe implements Engine.
func (e *EnumEngine) OutputBitCanBe(i uint, val bool) (bool, bool) {
	return e.exists("output-bit", func(v apint.Int) bool { return v.Bit(i) == val })
}

// SignBitsViolated implements Engine.
func (e *EnumEngine) SignBitsViolated(k uint) (bool, bool) {
	return e.exists("sign-bits", func(v apint.Int) bool { return v.NumSignBits() < k })
}

// CanBeZero implements Engine.
func (e *EnumEngine) CanBeZero() (bool, bool) {
	return e.exists("zero", apint.Int.IsZero)
}

// CanBeNonPowerOfTwo implements Engine.
func (e *EnumEngine) CanBeNonPowerOfTwo() (bool, bool) {
	return e.exists("non-pow2", func(v apint.Int) bool { return !v.IsPowerOfTwo() })
}

// OutputOutside implements Engine.
func (e *EnumEngine) OutputOutside(lo, size apint.Int) (apint.Int, bool, bool) {
	e.stats.Queries++
	e.stats.EnumQueries++
	sp := e.startEnum("outside")
	if !e.ensureOutputs(sp) {
		e.stats.Exhausted++
		endEnum(sp, false, false)
		return apint.Int{}, false, false
	}
	hi := lo.Add(size)
	full := !size.IsZero() && hi.Eq(lo)
	for _, v := range e.outputs {
		inside := full
		if !full && !size.IsZero() {
			if lo.ULT(hi) {
				inside = v.UGE(lo) && v.ULT(hi)
			} else {
				inside = v.UGE(lo) || v.ULT(hi)
			}
		}
		if !inside {
			endEnum(sp, true, true)
			return v, true, true
		}
	}
	endEnum(sp, false, true)
	return apint.Int{}, false, true
}

// ForcedBitMatters implements Engine. Forcing bit i of v to 0 can change
// the output iff forcing it to 1 can — either way the witness is a pair of
// well-defined inputs differing only in that bit with different outputs —
// so one memoized per-variable matrix answers both polarities.
func (e *EnumEngine) ForcedBitMatters(v *ir.Inst, bit uint, val bool) (bool, bool) {
	e.stats.Queries++
	e.stats.EnumQueries++
	sp := e.startEnum("forced-bit")
	m, ok := e.demandedFor(sp, v)
	if !ok {
		e.stats.Exhausted++
		endEnum(sp, false, false)
		return false, false
	}
	endEnum(sp, m[bit], true)
	return m[bit], true
}

// demandedFor computes whether each bit of v can change the output: a bit
// is demanded iff some pair of well-defined inputs differing only in that
// bit produces different outputs (the two-copy well-definedness condition
// of Algorithm 2). On the sliced evaluator a bit's two sides are either
// lanes of the same block (packed position < 6: one sweep decides all
// such bits via in-register butterflies) or corresponding lanes of two
// sibling blocks (position ≥ 6: one sweep per bit over the bit-clear half
// of the space, evaluating each sibling pair once).
func (e *EnumEngine) demandedFor(parent *trace.Span, v *ir.Inst) ([]bool, bool) {
	if m, ok := e.demanded[v]; ok {
		return m, true
	}
	if e.cancelled() {
		return nil, false
	}
	sweep := parent.Child(trace.KindIter, "demanded-sweep")
	sweep.SetStr("var", v.Name)

	var varOff uint // packed-index offset of v's bits (LSB-first layout)
	for _, u := range e.f.Vars {
		if u == v {
			break
		}
		varOff += u.Width
	}
	count := uint64(1) << eval.TotalInputBits(e.f)
	m := make([]bool, v.Width)
	undecided := int(v.Width) // bits not yet proven demanded
	var n int64
	ok := true

	// Pass 1: bits whose packed position lands inside a block. The
	// sibling of lane l is lane l^(1<<pos) of the same block, so one
	// sweep decides every such bit at once.
	if lowBits := int(6 - varOff); lowBits > 0 {
		if lowBits > int(v.Width) {
			lowBits = int(v.Width)
		}
		lowUndecided := lowBits
		for base, blocks := uint64(0), 0; base < count && lowUndecided > 0; base += 64 {
			if blocks++; blocks&enumCancelBlockMask == 0 && e.cancelled() {
				ok = false
				break
			}
			planes, okm := e.sliced.EvalIndexed(base)
			n += 64
			if okm == 0 {
				continue
			}
			for bit := uint(0); bit < uint(lowBits); bit++ {
				if m[bit] {
					continue
				}
				pos := varOff + bit
				d := uint(1) << pos
				mSet := eval.LaneIndex[pos]
				okSib := ((okm >> d) &^ mSet) | ((okm << d) & mSet)
				both := okm & okSib
				if both == 0 {
					continue
				}
				var diff uint64
				for _, p := range planes {
					q := ((p >> d) &^ mSet) | ((p << d) & mSet)
					diff |= p ^ q
				}
				if diff&both != 0 {
					m[bit] = true
					undecided--
					lowUndecided--
				}
			}
		}
	}

	// Pass 2: bits at packed positions ≥ 6 pair corresponding lanes of
	// sibling blocks base and base^(1<<pos); visit each pair once from
	// the bit-clear side. EvalIndexed reuses its buffers, so block A's
	// root and ok mask are copied out before evaluating block B.
	rootA := make([]uint64, e.f.Root.Width)
	blocks := 0
	for bit := uint(0); ok && undecided > 0 && bit < v.Width; bit++ {
		pos := varOff + bit
		if pos < 6 || m[bit] {
			continue
		}
		step := uint64(1) << pos
	pairSweep:
		for hi := uint64(0); hi < count && !m[bit]; hi += 2 * step {
			for base := hi; base < hi+step && !m[bit]; base += 64 {
				if blocks++; blocks&(enumCancelBlockMask>>1) == 0 && e.cancelled() {
					ok = false
					break pairSweep
				}
				pA, okA := e.sliced.EvalIndexed(base)
				copy(rootA, pA)
				pB, okB := e.sliced.EvalIndexed(base ^ step)
				n += 128
				both := okA & okB
				if both == 0 {
					continue
				}
				var diff uint64
				for i, p := range pB {
					diff |= rootA[i] ^ p
				}
				if diff&both != 0 {
					m[bit] = true
					undecided--
				}
			}
		}
	}

	if sweep != nil {
		sweep.SetInt("evals", n)
		sweep.End()
	}
	if !ok {
		return nil, false
	}
	if e.demanded == nil {
		e.demanded = make(map[*ir.Inst][]bool)
	}
	e.demanded[v] = m
	return m, true
}
