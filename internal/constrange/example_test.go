package constrange_test

import (
	"fmt"

	"dfcheck/internal/apint"
	"dfcheck/internal/constrange"
)

// The four forms of §2.2: empty, full, regular, and wrapped.
func ExampleRange_String() {
	fmt.Println(constrange.Empty(8))
	fmt.Println(constrange.Full(8))
	fmt.Println(constrange.New(apint.New(8, 5), apint.New(8, 10)))
	// The paper's "[1,0)": every value except zero.
	fmt.Println(constrange.New(apint.One(8), apint.Zero(8)))
	// Output:
	// empty set
	// full set
	// [5,10)
	// [1,0)
}

// §2.1's example transfer: addition over integer ranges is the easy case.
func ExampleRange_Add() {
	a := constrange.New(apint.New(8, 6), apint.New(8, 11)) // [6,10]
	b := constrange.New(apint.New(8, 1), apint.New(8, 3))  // [1,2]
	fmt.Println(a.Add(b))
	// Output:
	// [7,13)
}

// §2.2's comparison folding: [0,100) < [200,205) simplifies to true.
func ExampleICmpDecide() {
	a := constrange.New(apint.Zero(8), apint.New(8, 100))
	b := constrange.New(apint.New(8, 200), apint.New(8, 205))
	result, known := constrange.ICmpDecide(constrange.ULT, a, b)
	fmt.Println(result, known)
	// Output:
	// true true
}
