package constrange

import (
	"sort"

	"dfcheck/internal/apint"
)

// AbstractSet returns the smallest Range containing every value in vs:
// the best abstraction (α) of a concrete set in the constant-range
// domain. The minimal circular interval is found by excluding the
// largest gap between consecutive members on the unsigned circle, so
// wrapped sets come out wrapped: {15, 0, 1} at width 4 abstracts to
// [15,2), not the full range. An empty set abstracts to Empty.
func AbstractSet(w uint, vs []apint.Int) Range {
	if len(vs) == 0 {
		return Empty(w)
	}
	vals := make([]uint64, 0, len(vs))
	for _, v := range vs {
		if v.Width() != w {
			panic("constrange: AbstractSet width mismatch")
		}
		vals = append(vals, v.Uint64())
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	uniq := vals[:1]
	for _, x := range vals[1:] {
		if x != uniq[len(uniq)-1] {
			uniq = append(uniq, x)
		}
	}
	if len(uniq) == 1 {
		return Single(apint.New(w, uniq[0]))
	}
	mask := ^uint64(0) >> (64 - w)
	if w < 64 && uint64(len(uniq)) == mask+1 {
		return Full(w)
	}
	// The gap after uniq[i] runs to the next member on the circle; the
	// resulting range starts after the largest gap and ends at the
	// member that precedes it.
	bestGap, bestIdx := uint64(0), 0
	for i, x := range uniq {
		next := uniq[(i+1)%len(uniq)]
		gap := (next - x) & mask
		if gap > bestGap {
			bestGap, bestIdx = gap, i
		}
	}
	lo := uniq[(bestIdx+1)%len(uniq)]
	hi := (uniq[bestIdx] + 1) & mask
	return New(apint.New(w, lo), apint.New(w, hi))
}
