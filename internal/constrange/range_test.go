package constrange

import (
	"testing"

	"dfcheck/internal/apint"
)

// allRanges enumerates every representable range at width w: full, empty,
// and every [lo,hi) with lo != hi.
func allRanges(w uint) []Range {
	out := []Range{Full(w), Empty(w)}
	n := uint64(1) << w
	for lo := uint64(0); lo < n; lo++ {
		for hi := uint64(0); hi < n; hi++ {
			if lo == hi {
				continue
			}
			out = append(out, New(apint.New(w, lo), apint.New(w, hi)))
		}
	}
	return out
}

// elems materializes a range's concretization set.
func elems(r Range) map[uint64]bool {
	s := make(map[uint64]bool)
	r.ForEach(func(v apint.Int) bool { s[v.Uint64()] = true; return true })
	return s
}

func TestFourForms(t *testing.T) {
	// §2.2: empty, full, regular [a,b) with a <u b, wrapped with a >u b.
	w := uint(8)
	if !Full(w).IsFull() || Full(w).IsEmpty() || Full(w).IsWrapped() {
		t.Error("full set misclassified")
	}
	if !Empty(w).IsEmpty() || Empty(w).IsFull() {
		t.Error("empty set misclassified")
	}
	reg := New(apint.New(w, 5), apint.New(w, 10))
	if reg.IsWrapped() || reg.IsFull() || reg.IsEmpty() {
		t.Error("regular range misclassified")
	}
	wrap := New(apint.New(w, 200), apint.New(w, 5))
	if !wrap.IsWrapped() {
		t.Error("wrapped range misclassified")
	}
	// [lo, 0) is lo..MAX, not considered wrapped.
	high := New(apint.New(w, 200), apint.Zero(w))
	if high.IsWrapped() {
		t.Error("[200,0) should not be wrapped")
	}
	if n, _ := high.Size(); n != 56 {
		t.Errorf("[200,0) size = %d, want 56", n)
	}
}

func TestNewRejectsAmbiguous(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with lo==hi did not panic")
		}
	}()
	New(apint.New(8, 5), apint.New(8, 5))
}

func TestNonEmptyFullConvention(t *testing.T) {
	if !NonEmpty(apint.New(8, 5), apint.New(8, 5)).IsFull() {
		t.Error("NonEmpty(x,x) should be full")
	}
}

func TestContains(t *testing.T) {
	w := uint(8)
	r := New(apint.New(w, 200), apint.New(w, 5)) // wrapped: 200..255, 0..4
	for _, v := range []uint64{200, 255, 0, 4} {
		if !r.Contains(apint.New(w, v)) {
			t.Errorf("wrapped should contain %d", v)
		}
	}
	for _, v := range []uint64{5, 100, 199} {
		if r.Contains(apint.New(w, v)) {
			t.Errorf("wrapped should not contain %d", v)
		}
	}
	// The paper's [1,0): everything except 0.
	nz := New(apint.One(w), apint.Zero(w))
	if nz.Contains(apint.Zero(w)) || !nz.Contains(apint.New(w, 255)) || !nz.Contains(apint.One(w)) {
		t.Error("[1,0) membership wrong")
	}
}

func TestSingle(t *testing.T) {
	s := Single(apint.New(8, 42))
	if !s.IsSingle() || s.SingleValue().Uint64() != 42 {
		t.Error("singleton wrong")
	}
	if n, _ := s.Size(); n != 1 {
		t.Errorf("singleton size = %d", n)
	}
	// Singleton at the top wraps its upper bound to 0.
	top := Single(apint.New(8, 255))
	if !top.IsSingle() || !top.Contains(apint.New(8, 255)) || top.Contains(apint.Zero(8)) {
		t.Error("singleton at max wrong")
	}
}

func TestMinMaxExhaustive(t *testing.T) {
	for _, r := range allRanges(4) {
		if r.IsEmpty() {
			continue
		}
		var umin, umax, smin, smax *apint.Int
		r.ForEach(func(val apint.Int) bool {
			v := val
			if umin == nil {
				umin, umax, smin, smax = &v, &v, &v, &v
				return true
			}
			if v.ULT(*umin) {
				umin = &v
			}
			if v.UGT(*umax) {
				umax = &v
			}
			if v.SLT(*smin) {
				smin = &v
			}
			if v.SGT(*smax) {
				smax = &v
			}
			return true
		})
		if r.UnsignedMin().Ne(*umin) || r.UnsignedMax().Ne(*umax) {
			t.Fatalf("%v: unsigned bounds [%v,%v], want [%v,%v]", r, r.UnsignedMin(), r.UnsignedMax(), *umin, *umax)
		}
		if r.SignedMin().Ne(*smin) || r.SignedMax().Ne(*smax) {
			t.Fatalf("%v: signed bounds [%v,%v], want [%v,%v]", r, r.SignedMin(), r.SignedMax(), *smin, *smax)
		}
	}
}

func TestSizeExhaustive(t *testing.T) {
	for _, r := range allRanges(4) {
		n, huge := r.Size()
		if huge {
			t.Fatalf("%v reported huge at width 4", r)
		}
		if want := uint64(len(elems(r))); n != want {
			t.Fatalf("%v: size %d, want %d", r, n, want)
		}
	}
}

func TestIntersectSoundAndExactWhenContiguous(t *testing.T) {
	ranges := allRanges(3)
	for _, a := range ranges {
		for _, b := range ranges {
			got := a.Intersect(b)
			ea, eb, eg := elems(a), elems(b), elems(got)
			// Soundness: got ⊇ a∩b.
			inter := make(map[uint64]bool)
			for v := range ea {
				if eb[v] {
					inter[v] = true
					if !eg[v] {
						t.Fatalf("Intersect(%v,%v) = %v missing %d", a, b, got, v)
					}
				}
			}
			// Precision: got ⊆ a and (when the result is not forced to
			// over-approximate) no larger than needed: every extra
			// element must lie between two intersection pieces.
			if len(inter) == 0 && !got.IsEmpty() {
				t.Fatalf("Intersect(%v,%v) = %v, want empty", a, b, got)
			}
			// got must always be within the union of inputs' hulls: at
			// minimum check got ⊆ a ∪ b hull isn't violated grossly:
			// every element of got must be in a or b when result is
			// exact-size.
			if uint64(len(eg)) == uint64(len(inter)) {
				for v := range eg {
					if !inter[v] {
						t.Fatalf("Intersect(%v,%v) exact-size but wrong members", a, b)
					}
				}
			}
		}
	}
}

func TestUnionIsMinimalHull(t *testing.T) {
	ranges := allRanges(3)
	for _, a := range ranges {
		for _, b := range ranges {
			got := a.Union(b)
			ea, eb, eg := elems(a), elems(b), elems(got)
			for v := range ea {
				if !eg[v] {
					t.Fatalf("Union(%v,%v) = %v missing %d from a", a, b, got, v)
				}
			}
			for v := range eb {
				if !eg[v] {
					t.Fatalf("Union(%v,%v) = %v missing %d from b", a, b, got, v)
				}
			}
			// Minimality: no strictly smaller range contains both.
			for _, c := range ranges {
				if c.SizeLT(got) && c.ContainsRange(a) && c.ContainsRange(b) {
					t.Fatalf("Union(%v,%v) = %v but %v is smaller", a, b, got, c)
				}
			}
		}
	}
}

func TestContainsRangeExhaustive(t *testing.T) {
	ranges := allRanges(3)
	for _, a := range ranges {
		for _, b := range ranges {
			got := a.ContainsRange(b)
			ea, eb := elems(a), elems(b)
			want := true
			for v := range eb {
				if !ea[v] {
					want = false
					break
				}
			}
			if got != want {
				t.Fatalf("ContainsRange(%v,%v) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestString(t *testing.T) {
	if got := Full(8).String(); got != "full set" {
		t.Errorf("full = %q", got)
	}
	if got := Empty(8).String(); got != "empty set" {
		t.Errorf("empty = %q", got)
	}
	r := New(apint.NewSigned(8, -7), apint.NewSigned(8, 8))
	if got := r.String(); got != "[-7,8)" {
		t.Errorf("range = %q", got)
	}
	if got := r.UnsignedString(); got != "[249,8)" {
		t.Errorf("unsigned = %q", got)
	}
}

func TestICmpDecide(t *testing.T) {
	w := uint(8)
	lo := New(apint.Zero(w), apint.New(w, 100))     // [0,100)
	hi := New(apint.New(w, 200), apint.New(w, 205)) // [200,205)
	// The paper's §2.2 example: [0,100) < [200,205) is always true
	// (unsigned).
	if res, known := ICmpDecide(ULT, lo, hi); !known || !res {
		t.Errorf("ULT = (%v,%v), want (true,true)", res, known)
	}
	if res, known := ICmpDecide(UGT, hi, lo); !known || !res {
		t.Errorf("UGT = (%v,%v), want (true,true)", res, known)
	}
	if res, known := ICmpDecide(ULT, hi, lo); !known || res {
		t.Errorf("ULT rev = (%v,%v), want (false,true)", res, known)
	}
	if _, known := ICmpDecide(ULT, lo, lo); known {
		t.Error("overlapping ULT should be unknown")
	}
	// Signed: [200,205) is negative at i8, so SLT is inverted.
	if res, known := ICmpDecide(SLT, hi, lo); !known || !res {
		t.Errorf("SLT = (%v,%v), want (true,true)", res, known)
	}
	// EQ/NE.
	if res, known := ICmpDecide(EQ, Single(apint.New(w, 5)), Single(apint.New(w, 5))); !known || !res {
		t.Errorf("EQ singles = (%v,%v)", res, known)
	}
	if res, known := ICmpDecide(EQ, lo, hi); !known || res {
		t.Errorf("EQ disjoint = (%v,%v), want (false,true)", res, known)
	}
	if res, known := ICmpDecide(NE, lo, hi); !known || !res {
		t.Errorf("NE disjoint = (%v,%v), want (true,true)", res, known)
	}
	if _, known := ICmpDecide(EQ, lo, lo); known {
		t.Error("EQ same non-single range should be unknown")
	}
	if _, known := ICmpDecide(EQ, Empty(w), lo); known {
		t.Error("EQ with empty should be unknown")
	}
	// ULE/SLE/SGE boundaries.
	if res, known := ICmpDecide(ULE, Single(apint.New(w, 99)), Single(apint.New(w, 99))); !known || !res {
		t.Errorf("ULE equal singles = (%v,%v)", res, known)
	}
	if res, known := ICmpDecide(SGE, lo, hi); !known || !res {
		t.Errorf("SGE = (%v,%v), want (true,true)", res, known)
	}
}

func TestICmpDecideExhaustive(t *testing.T) {
	ranges := allRanges(3)
	preds := []Pred{EQ, NE, ULT, ULE, UGT, UGE, SLT, SLE, SGT, SGE}
	check := func(p Pred, x, y apint.Int) bool {
		switch p {
		case EQ:
			return x.Eq(y)
		case NE:
			return x.Ne(y)
		case ULT:
			return x.ULT(y)
		case ULE:
			return x.ULE(y)
		case UGT:
			return x.UGT(y)
		case UGE:
			return x.UGE(y)
		case SLT:
			return x.SLT(y)
		case SLE:
			return x.SLE(y)
		case SGT:
			return x.SGT(y)
		case SGE:
			return x.SGE(y)
		}
		panic("bad pred")
	}
	for _, a := range ranges {
		for _, b := range ranges {
			if a.IsEmpty() || b.IsEmpty() {
				continue
			}
			for _, p := range preds {
				res, known := ICmpDecide(p, a, b)
				if !known {
					continue
				}
				a.ForEach(func(x apint.Int) bool {
					ok := true
					b.ForEach(func(y apint.Int) bool {
						if check(p, x, y) != res {
							t.Errorf("ICmpDecide(%v, %v, %v) claimed %v but %v,%v differs", p, a, b, res, x, y)
							ok = false
						}
						return ok
					})
					return ok
				})
			}
		}
	}
}
