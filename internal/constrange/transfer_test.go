package constrange

import (
	"math/rand"
	"testing"

	"dfcheck/internal/apint"
	"dfcheck/internal/knownbits"
)

// concreteOp mirrors eval's semantics: ok=false marks an ill-defined pair
// that transfer functions may exclude.
type concreteOp func(x, y apint.Int) (apint.Int, bool)

var concreteOps = map[string]concreteOp{
	"add": func(x, y apint.Int) (apint.Int, bool) { return x.Add(y), true },
	"sub": func(x, y apint.Int) (apint.Int, bool) { return x.Sub(y), true },
	"mul": func(x, y apint.Int) (apint.Int, bool) { return x.Mul(y), true },
	"udiv": func(x, y apint.Int) (apint.Int, bool) {
		if y.IsZero() {
			return apint.Int{}, false
		}
		return x.UDiv(y), true
	},
	"urem": func(x, y apint.Int) (apint.Int, bool) {
		if y.IsZero() {
			return apint.Int{}, false
		}
		return x.URem(y), true
	},
	"srem": func(x, y apint.Int) (apint.Int, bool) {
		if y.IsZero() || (x.IsMinSigned() && y.IsAllOnes()) {
			return apint.Int{}, false
		}
		return x.SRem(y), true
	},
	"and": func(x, y apint.Int) (apint.Int, bool) { return x.And(y), true },
	"or":  func(x, y apint.Int) (apint.Int, bool) { return x.Or(y), true },
	"xor": func(x, y apint.Int) (apint.Int, bool) { return x.Xor(y), true },
	"shl": func(x, y apint.Int) (apint.Int, bool) {
		if y.Uint64() >= uint64(x.Width()) {
			return apint.Int{}, false
		}
		return x.Shl(uint(y.Uint64())), true
	},
	"lshr": func(x, y apint.Int) (apint.Int, bool) {
		if y.Uint64() >= uint64(x.Width()) {
			return apint.Int{}, false
		}
		return x.LShr(uint(y.Uint64())), true
	},
	"ashr": func(x, y apint.Int) (apint.Int, bool) {
		if y.Uint64() >= uint64(x.Width()) {
			return apint.Int{}, false
		}
		return x.AShr(uint(y.Uint64())), true
	},
}

var transferOps = map[string]func(a, b Range) Range{
	"add":  Range.Add,
	"sub":  Range.Sub,
	"mul":  Range.Mul,
	"udiv": Range.UDiv,
	"urem": Range.URem,
	"srem": Range.SRem,
	"and":  Range.And,
	"or":   Range.Or,
	"xor":  Range.Xor,
	"shl":  Range.Shl,
	"lshr": Range.LShr,
	"ashr": Range.AShr,
}

// TestTransferSoundnessExhaustive checks every binary transfer function
// against brute force over all width-3 range pairs: the abstract result
// must contain every concrete result of well-defined input pairs.
func TestTransferSoundnessExhaustive(t *testing.T) {
	ranges := allRanges(3)
	for name, xfer := range transferOps {
		conc := concreteOps[name]
		t.Run(name, func(t *testing.T) {
			for _, a := range ranges {
				for _, b := range ranges {
					got := xfer(a, b)
					a.ForEach(func(x apint.Int) bool {
						sound := true
						b.ForEach(func(y apint.Int) bool {
							v, ok := conc(x, y)
							if ok && !got.Contains(v) {
								t.Errorf("%s(%v,%v) = %v missing %s %s -> %v",
									name, a, b, got, x, y, v)
								sound = false
							}
							return sound
						})
						return sound
					})
				}
			}
		})
	}
}

// TestTransferSoundnessRandom8 repeats the soundness check at width 8 on
// random ranges, sampling concrete pairs.
func TestTransferSoundnessRandom8(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randRange := func() Range {
		switch rng.Intn(10) {
		case 0:
			return Full(8)
		case 1:
			return Single(apint.New(8, rng.Uint64()))
		}
		lo, hi := rng.Uint64()&0xFF, rng.Uint64()&0xFF
		if lo == hi {
			return Full(8)
		}
		return New(apint.New(8, lo), apint.New(8, hi))
	}
	for name, xfer := range transferOps {
		conc := concreteOps[name]
		for trial := 0; trial < 300; trial++ {
			a, b := randRange(), randRange()
			got := xfer(a, b)
			for s := 0; s < 50; s++ {
				x := sample(a, rng)
				y := sample(b, rng)
				if x == nil || y == nil {
					continue
				}
				v, ok := conc(*x, *y)
				if ok && !got.Contains(v) {
					t.Fatalf("%s(%v,%v) = %v missing %v op %v -> %v", name, a, b, got, *x, *y, v)
				}
			}
		}
	}
}

func sample(r Range, rng *rand.Rand) *apint.Int {
	if r.IsEmpty() {
		return nil
	}
	if r.IsFull() {
		v := apint.New(8, rng.Uint64())
		return &v
	}
	n, _ := r.Size()
	off := rng.Uint64() % n
	v := r.Lower().Add(apint.New(8, off))
	return &v
}

func TestAddPrecision(t *testing.T) {
	// §2.1's easy case: [6,10] + [1,2] = [7,12].
	a := New(apint.New(8, 6), apint.New(8, 11))
	b := New(apint.New(8, 1), apint.New(8, 3))
	got := a.Add(b)
	want := New(apint.New(8, 7), apint.New(8, 13))
	if !got.Eq(want) {
		t.Errorf("[6,10]+[1,2] = %v, want %v", got, want)
	}
}

func TestAddOverflowToFull(t *testing.T) {
	a := New(apint.Zero(8), apint.New(8, 200))
	got := a.Add(a)
	if !got.IsFull() {
		t.Errorf("overflowing add = %v, want full", got)
	}
}

func TestSRemPaperShape(t *testing.T) {
	// §4.5: srem i32 %x, 8 with full %x. The maximally precise result is
	// [-7,8); our transfer should achieve it (LLVM 8's [-8,8) imprecision
	// is reproduced separately in llvmport).
	x := Full(32)
	eight := Single(apint.New(32, 8))
	got := x.SRem(eight)
	want := New(apint.NewSigned(32, -7), apint.NewSigned(32, 8))
	if !got.Eq(want) {
		t.Errorf("full srem 8 = %v, want %v", got, want)
	}
}

func TestSRemNonNegativeDividend(t *testing.T) {
	x := New(apint.Zero(8), apint.New(8, 100)) // [0,100)
	three := Single(apint.New(8, 3))
	got := x.SRem(three)
	want := New(apint.Zero(8), apint.New(8, 3))
	if !got.Eq(want) {
		t.Errorf("[0,100) srem 3 = %v, want %v", got, want)
	}
	// Dividend smaller than divisor bound: limited by dividend.
	small := New(apint.Zero(8), apint.New(8, 2))
	got = small.SRem(Single(apint.New(8, 100)))
	want = New(apint.Zero(8), apint.New(8, 2))
	if !got.Eq(want) {
		t.Errorf("[0,2) srem 100 = %v, want %v", got, want)
	}
}

func TestSRemZeroDivisorOnly(t *testing.T) {
	if got := Full(8).SRem(Single(apint.Zero(8))); !got.IsEmpty() {
		t.Errorf("srem by {0} = %v, want empty", got)
	}
}

func TestUDivPaperShape(t *testing.T) {
	// §4.5: udiv i64 128, %x has precise range [0,129).
	lhs := Single(apint.New(64, 128))
	got := lhs.UDiv(Full(64))
	want := New(apint.Zero(64), apint.New(64, 129))
	if !got.Eq(want) {
		t.Errorf("128 udiv full = %v, want %v", got, want)
	}
}

func TestAndPaperShape(t *testing.T) {
	// §4.5: and i32 0xFFFFFFFF, %x with %x in [1,7): the LLVM-style
	// approximation yields [0,7) (the precise result is [1,7)).
	all := Single(apint.AllOnes(32))
	x := New(apint.One(32), apint.New(32, 7))
	got := all.And(x)
	want := New(apint.Zero(32), apint.New(32, 7))
	if !got.Eq(want) {
		t.Errorf("0xffffffff and [1,7) = %v, want %v", got, want)
	}
}

func TestSDivConst(t *testing.T) {
	r := New(apint.NewSigned(8, -10), apint.NewSigned(8, 11)) // [-10,10]
	got := r.SDivConst(apint.New(8, 2))
	want := New(apint.NewSigned(8, -5), apint.NewSigned(8, 6)) // [-5,5]
	if !got.Eq(want) {
		t.Errorf("[-10,10] sdiv 2 = %v, want %v", got, want)
	}
	got = r.SDivConst(apint.NewSigned(8, -2))
	if !got.Eq(want) {
		t.Errorf("[-10,10] sdiv -2 = %v, want %v", got, want)
	}
	if got := r.SDivConst(apint.Zero(8)); !got.IsEmpty() {
		t.Errorf("sdiv 0 = %v, want empty", got)
	}
	// MinSigned / -1 is excluded, not wrapped.
	m := New(apint.MinSigned(8), apint.MinSigned(8).Add(apint.New(8, 2)))
	got = m.SDivConst(apint.AllOnes(8))
	if got.Contains(apint.MinSigned(8)) {
		t.Errorf("sdiv -1 included wrapped quotient: %v", got)
	}
	if !got.Contains(apint.New(8, 127)) {
		t.Errorf("sdiv -1 = %v missing 127", got)
	}
	// SDivConst soundness, exhaustive at width 4.
	for _, a := range allRanges(4) {
		for c := uint64(0); c < 16; c++ {
			cv := apint.New(4, c)
			got := a.SDivConst(cv)
			a.ForEach(func(x apint.Int) bool {
				if cv.IsZero() || (x.IsMinSigned() && cv.IsAllOnes()) {
					return true
				}
				if q := x.SDiv(cv); !got.Contains(q) {
					t.Fatalf("SDivConst(%v,%v) = %v missing %v", a, cv, got, q)
				}
				return true
			})
		}
	}
}

func TestNegNot(t *testing.T) {
	r := New(apint.New(8, 1), apint.New(8, 5)) // {1..4}
	neg := r.Neg()
	for v := int64(-4); v <= -1; v++ {
		if !neg.Contains(apint.NewSigned(8, v)) {
			t.Errorf("Neg missing %d", v)
		}
	}
	if neg.Contains(apint.Zero(8)) {
		t.Error("Neg contains 0")
	}
	not := r.Not()
	for v := int64(-5); v <= -2; v++ {
		if !not.Contains(apint.NewSigned(8, v)) {
			t.Errorf("Not missing %d", v)
		}
	}
}

func TestCastsExhaustive(t *testing.T) {
	for _, r := range allRanges(4) {
		tr := r.Trunc(2)
		ze := r.ZExt(7)
		se := r.SExt(7)
		r.ForEach(func(v apint.Int) bool {
			if !tr.Contains(v.Trunc(2)) {
				t.Fatalf("Trunc(%v) = %v missing %v", r, tr, v.Trunc(2))
			}
			if !ze.Contains(v.ZExt(7)) {
				t.Fatalf("ZExt(%v) = %v missing %v", r, ze, v.ZExt(7))
			}
			if !se.Contains(v.SExt(7)) {
				t.Fatalf("SExt(%v) = %v missing %v", r, se, v.SExt(7))
			}
			return true
		})
	}
}

func TestZExtTight(t *testing.T) {
	r := New(apint.New(4, 3), apint.New(4, 9))
	got := r.ZExt(8)
	want := New(apint.New(8, 3), apint.New(8, 9))
	if !got.Eq(want) {
		t.Errorf("zext = %v, want %v", got, want)
	}
	// Wrapped source covers 0..15 values: [0,16) at width 8.
	wrapped := New(apint.New(4, 12), apint.New(4, 3))
	got = wrapped.ZExt(8)
	want = New(apint.Zero(8), apint.New(8, 16))
	if !got.Eq(want) {
		t.Errorf("zext wrapped = %v, want %v", got, want)
	}
}

func TestSExtTight(t *testing.T) {
	r := New(apint.NewSigned(4, -3), apint.NewSigned(4, 4)) // [-3,3]
	got := r.SExt(8)
	want := New(apint.NewSigned(8, -3), apint.NewSigned(8, 4))
	if !got.Eq(want) {
		t.Errorf("sext = %v, want %v", got, want)
	}
	if got := Full(4).SExt(8); !got.Eq(New(apint.NewSigned(8, -8), apint.NewSigned(8, 8))) {
		t.Errorf("sext full = %v, want [-8,8)", got)
	}
}

func TestTruncLongArcIsFull(t *testing.T) {
	r := New(apint.Zero(8), apint.New(8, 200))
	if got := r.Trunc(4); !got.IsFull() {
		t.Errorf("trunc of 200-long arc to 16 values = %v, want full", got)
	}
}

func TestFromKnownBits(t *testing.T) {
	k := knownbits.Parse("00xx")
	got := FromKnownBits(k, false)
	want := New(apint.Zero(4), apint.New(4, 4))
	if !got.Eq(want) {
		t.Errorf("unsigned fromKnownBits = %v, want %v", got, want)
	}
	// Signed with unknown sign bit: [-8..7] essentially full.
	k2 := knownbits.Parse("xxx0")
	got2 := FromKnownBits(k2, true)
	k2.ForEach(func(v apint.Int) bool {
		if !got2.Contains(v) {
			t.Errorf("signed fromKnownBits %v missing %v", got2, v)
		}
		return true
	})
	if got := FromKnownBits(knownbits.Make(apint.One(4), apint.One(4)), false); !got.IsEmpty() {
		t.Errorf("conflict fromKnownBits = %v, want empty", got)
	}
}

func TestToKnownBits(t *testing.T) {
	r := New(apint.New(8, 0x40), apint.New(8, 0x48)) // 0b01000000..0b01000111
	k := r.ToKnownBits()
	if got := k.String(); got != "01000xxx" {
		t.Errorf("ToKnownBits = %q", got)
	}
	r.ForEach(func(v apint.Int) bool {
		if !k.Contains(v) {
			t.Errorf("known bits %v excludes %v", k, v)
		}
		return true
	})
	if got := Full(8).ToKnownBits(); got.NumKnown() != 0 {
		t.Errorf("full ToKnownBits = %v", got)
	}
}

func TestMinMaxTransfersSoundExhaustive(t *testing.T) {
	ops := map[string]struct {
		xfer func(a, b Range) Range
		conc func(x, y apint.Int) apint.Int
	}{
		"umin": {Range.UMin, apint.Int.UMin},
		"umax": {Range.UMax, apint.Int.UMax},
		"smin": {Range.SMin, apint.Int.SMin},
		"smax": {Range.SMax, apint.Int.SMax},
	}
	ranges := allRanges(3)
	for name, op := range ops {
		for _, a := range ranges {
			for _, b := range ranges {
				got := op.xfer(a, b)
				a.ForEach(func(x apint.Int) bool {
					ok := true
					b.ForEach(func(y apint.Int) bool {
						if v := op.conc(x, y); !got.Contains(v) {
							t.Errorf("%s(%v,%v) = %v missing %v", name, a, b, got, v)
							ok = false
						}
						return ok
					})
					return ok
				})
			}
		}
	}
}

func TestAbsTransferSoundExhaustive(t *testing.T) {
	for _, r := range allRanges(4) {
		got := r.Abs()
		r.ForEach(func(x apint.Int) bool {
			if v := x.AbsValue(); !got.Contains(v) {
				t.Fatalf("Abs(%v) = %v missing |%v| = %v", r, got, x, v)
			}
			return true
		})
	}
	// Tightness spot checks.
	nn := New(apint.New(8, 3), apint.New(8, 10))
	if !nn.Abs().Eq(nn) {
		t.Errorf("Abs of non-negative range = %v, want unchanged", nn.Abs())
	}
	neg := New(apint.NewSigned(8, -10), apint.NewSigned(8, -2)) // -10..-3
	want := New(apint.New(8, 3), apint.New(8, 11))
	if !neg.Abs().Eq(want) {
		t.Errorf("Abs([-10,-3]) = %v, want %v", neg.Abs(), want)
	}
}
