// Package constrange implements LLVM-style constant ranges: half-open,
// possibly wrapping intervals [Lower, Upper) over fixed-width unsigned
// integers. This is the abstract domain of LLVM's Lazy Value Info and of
// the paper's Algorithm 3 (§2.2 lists the four forms: empty, full, regular
// [a,b) with a <u b, and wrapped [a,b) with a >u b).
//
// Representation follows LLVM's convention: Lower == Upper is reserved for
// the full set (both equal to the maximum value) and the empty set (both
// equal to zero); any other equal pair is rejected.
package constrange

import (
	"fmt"

	"dfcheck/internal/apint"
)

// Range is a set of width-W integers of one of the four forms above.
type Range struct {
	lo, hi apint.Int
}

// Full returns the full set at width w.
func Full(w uint) Range {
	m := apint.MaxUnsigned(w)
	return Range{lo: m, hi: m}
}

// Empty returns the empty set at width w.
func Empty(w uint) Range {
	z := apint.Zero(w)
	return Range{lo: z, hi: z}
}

// New builds [lo, hi). lo == hi is rejected (use Full or Empty).
func New(lo, hi apint.Int) Range {
	if lo.Width() != hi.Width() {
		panic("constrange: bound width mismatch")
	}
	if lo.Eq(hi) {
		panic(fmt.Sprintf("constrange: ambiguous bounds [%v,%v); use Full or Empty", lo, hi))
	}
	return Range{lo: lo, hi: hi}
}

// NonEmpty builds [lo, hi), mapping lo == hi to the full set. This is the
// convention of Souper's range metadata and of LLVM's getNonEmpty.
func NonEmpty(lo, hi apint.Int) Range {
	if lo.Eq(hi) {
		return Full(lo.Width())
	}
	return New(lo, hi)
}

// Single returns the singleton {v}.
func Single(v apint.Int) Range {
	return Range{lo: v, hi: v.Add(apint.One(v.Width()))}
}

// Width returns the bit width.
func (r Range) Width() uint { return r.lo.Width() }

// Lower returns the inclusive lower bound (meaningless for full/empty).
func (r Range) Lower() apint.Int { return r.lo }

// Upper returns the exclusive upper bound (meaningless for full/empty).
func (r Range) Upper() apint.Int { return r.hi }

// IsFull reports whether the range is the full set.
func (r Range) IsFull() bool { return r.lo.Eq(r.hi) && r.lo.IsAllOnes() }

// IsEmpty reports whether the range is the empty set.
func (r Range) IsEmpty() bool { return r.lo.Eq(r.hi) && r.lo.IsZero() }

// IsWrapped reports whether the set wraps past the unsigned maximum
// (lo >u hi, hi != 0). [lo, 0) is not considered wrapped: it is lo..MAX.
func (r Range) IsWrapped() bool {
	return !r.lo.Eq(r.hi) && r.lo.UGT(r.hi) && !r.hi.IsZero()
}

// IsSingle reports whether the set has exactly one element.
func (r Range) IsSingle() bool {
	return !r.lo.Eq(r.hi) && r.hi.Sub(r.lo).IsOne()
}

// SingleValue returns the element of a singleton range.
func (r Range) SingleValue() apint.Int {
	if !r.IsSingle() {
		panic("constrange: SingleValue on non-singleton")
	}
	return r.lo
}

// Contains reports set membership.
func (r Range) Contains(v apint.Int) bool {
	if v.Width() != r.Width() {
		panic("constrange: Contains width mismatch")
	}
	switch {
	case r.IsFull():
		return true
	case r.IsEmpty():
		return false
	case r.lo.ULT(r.hi):
		return v.UGE(r.lo) && v.ULT(r.hi)
	default: // wrapped (including hi == 0)
		return v.UGE(r.lo) || v.ULT(r.hi)
	}
}

// ContainsRange reports whether every element of o is in r.
func (r Range) ContainsRange(o Range) bool {
	if o.IsEmpty() || r.IsFull() {
		return true
	}
	if r.IsEmpty() || o.IsFull() {
		return false
	}
	// Every element of o is in r iff o's endpoints are in r and r does not
	// "end" strictly inside o. Checking via segments is simplest.
	for _, s := range o.segments() {
		if !r.containsSegment(s) {
			return false
		}
	}
	return true
}

// Size returns the number of elements and whether that count overflows
// uint64 (only the full set at width 64 does).
func (r Range) Size() (n uint64, huge bool) {
	if r.IsFull() {
		if r.Width() == 64 {
			return 0, true
		}
		return uint64(1) << r.Width(), false
	}
	if r.IsEmpty() {
		return 0, false
	}
	d := r.hi.Sub(r.lo).Uint64()
	if d == 0 {
		// [lo, lo) with lo not 0/max cannot be constructed; wrapped
		// difference of zero would mean full, handled above.
		panic("constrange: inconsistent size")
	}
	return d, false
}

// SizeLT reports |r| < |o|.
func (r Range) SizeLT(o Range) bool {
	rn, rh := r.Size()
	on, oh := o.Size()
	if rh {
		return false
	}
	if oh {
		return true
	}
	return rn < on
}

// UnsignedMax returns the largest element under unsigned order.
func (r Range) UnsignedMax() apint.Int {
	if r.IsEmpty() {
		panic("constrange: UnsignedMax of empty set")
	}
	m := apint.MaxUnsigned(r.Width())
	if r.Contains(m) {
		return m
	}
	return r.hi.Sub(apint.One(r.Width()))
}

// UnsignedMin returns the smallest element under unsigned order.
func (r Range) UnsignedMin() apint.Int {
	if r.IsEmpty() {
		panic("constrange: UnsignedMin of empty set")
	}
	z := apint.Zero(r.Width())
	if r.Contains(z) {
		return z
	}
	return r.lo
}

// SignedMax returns the largest element under signed order.
func (r Range) SignedMax() apint.Int {
	if r.IsEmpty() {
		panic("constrange: SignedMax of empty set")
	}
	m := apint.MaxSigned(r.Width())
	if r.Contains(m) {
		return m
	}
	return r.hi.Sub(apint.One(r.Width()))
}

// SignedMin returns the smallest element under signed order.
func (r Range) SignedMin() apint.Int {
	if r.IsEmpty() {
		panic("constrange: SignedMin of empty set")
	}
	m := apint.MinSigned(r.Width())
	if r.Contains(m) {
		return m
	}
	return r.lo
}

// Eq reports representation equality (which coincides with set equality).
func (r Range) Eq(o Range) bool { return r.lo.Eq(o.lo) && r.hi.Eq(o.hi) }

// String renders the range as in the paper: "full set", "empty set", or
// "[lo,hi)". Non-wrapped ranges print unsigned bounds (the paper's
// "[0,129)"); wrapped ranges print signed bounds (the paper's "[-7,8)").
func (r Range) String() string {
	switch {
	case r.IsFull():
		return "full set"
	case r.IsEmpty():
		return "empty set"
	case r.lo.ULT(r.hi):
		return fmt.Sprintf("[%d,%d)", r.lo.Uint64(), r.hi.Uint64())
	}
	return fmt.Sprintf("[%d,%d)", r.lo.Int64(), r.hi.Int64())
}

// UnsignedString renders with unsigned bounds.
func (r Range) UnsignedString() string {
	switch {
	case r.IsFull():
		return "full set"
	case r.IsEmpty():
		return "empty set"
	}
	return fmt.Sprintf("[%d,%d)", r.lo.Uint64(), r.hi.Uint64())
}

// segment is an inclusive, non-wrapping [lo, last] interval.
type segment struct {
	lo, last uint64
}

// segments decomposes the range into 1 or 2 sorted non-wrapping segments.
func (r Range) segments() []segment {
	maxv := apint.MaxUnsigned(r.Width()).Uint64()
	switch {
	case r.IsEmpty():
		return nil
	case r.IsFull():
		return []segment{{0, maxv}}
	case r.lo.ULT(r.hi):
		return []segment{{r.lo.Uint64(), r.hi.Uint64() - 1}}
	case r.hi.IsZero():
		return []segment{{r.lo.Uint64(), maxv}}
	default: // wrapped
		return []segment{{0, r.hi.Uint64() - 1}, {r.lo.Uint64(), maxv}}
	}
}

func (r Range) containsSegment(s segment) bool {
	w := r.Width()
	return r.Contains(apint.New(w, s.lo)) && r.Contains(apint.New(w, s.last)) &&
		r.containsAllBetween(s)
}

// containsAllBetween checks no gap of r lies strictly inside segment s.
// Since r is one or two segments, it suffices to check that s is inside a
// single segment of r.
func (r Range) containsAllBetween(s segment) bool {
	for _, rs := range r.segments() {
		if rs.lo <= s.lo && s.last <= rs.last {
			return true
		}
	}
	return false
}

// fromSegments rebuilds the smallest Range containing all the given
// disjoint, sorted, non-adjacent segments. One segment maps exactly
// (including a prefix+suffix pair, which maps to the exact wrapped arc);
// disconnected pieces take the smallest circular hull covering everything
// — a sound over-approximation, mirroring LLVM's preference for smaller
// results.
func fromSegments(w uint, segs []segment) Range {
	maxv := apint.MaxUnsigned(w).Uint64()
	switch len(segs) {
	case 0:
		return Empty(w)
	case 1:
		s := segs[0]
		if s.lo == 0 && s.last == maxv {
			return Full(w)
		}
		return New(apint.New(w, s.lo), apint.New(w, s.last+1))
	}
	// Try excluding each inter-segment gap: the hull runs from the next
	// segment's start around to this segment's end. The smallest covering
	// candidate wins; excluding the gap between a suffix ending at maxv
	// and a prefix starting at 0 yields the exact wrapped arc.
	best := Full(w)
	for i := range segs {
		lo := segs[(i+1)%len(segs)].lo
		hull := NonEmpty(apint.New(w, lo), apint.New(w, segs[i].last+1))
		covers := true
		for _, s := range segs {
			if !hull.containsSegment(s) {
				covers = false
				break
			}
		}
		if covers && hull.SizeLT(best) {
			best = hull
		}
	}
	return best
}

// normalizeSegments sorts, merges overlapping/adjacent segments, and
// returns at most two segments by merging greedily (inputs here only ever
// produce ≤ 4 raw segments from intersect/union of two ranges).
func normalizeSegments(segs []segment, maxv uint64) []segment {
	if len(segs) == 0 {
		return nil
	}
	// Insertion sort by lo; tiny inputs.
	for i := 1; i < len(segs); i++ {
		for j := i; j > 0 && segs[j].lo < segs[j-1].lo; j-- {
			segs[j], segs[j-1] = segs[j-1], segs[j]
		}
	}
	out := segs[:1]
	for _, s := range segs[1:] {
		last := &out[len(out)-1]
		if s.lo <= last.last || (last.last < maxv && s.lo == last.last+1) {
			if s.last > last.last {
				last.last = s.last
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// Intersect returns a range containing the exact intersection; exact when
// the intersection is contiguous (circularly), otherwise the smaller
// circular hull of the pieces.
func (r Range) Intersect(o Range) Range {
	if r.Width() != o.Width() {
		panic("constrange: Intersect width mismatch")
	}
	w := r.Width()
	maxv := apint.MaxUnsigned(w).Uint64()
	var pieces []segment
	for _, a := range r.segments() {
		for _, b := range o.segments() {
			lo := a.lo
			if b.lo > lo {
				lo = b.lo
			}
			last := a.last
			if b.last < last {
				last = b.last
			}
			if lo <= last {
				pieces = append(pieces, segment{lo, last})
			}
		}
	}
	return fromSegments(w, normalizeSegments(pieces, maxv))
}

// Union returns the smallest range containing both sets (the circular
// convex hull), mirroring LLVM's unionWith.
func (r Range) Union(o Range) Range {
	if r.Width() != o.Width() {
		panic("constrange: Union width mismatch")
	}
	w := r.Width()
	maxv := apint.MaxUnsigned(w).Uint64()
	segs := append(r.segments(), o.segments()...)
	return fromSegments(w, normalizeSegments(segs, maxv))
}

// ForEach enumerates the elements in unsigned order (wrapped ranges visit
// the low piece first), stopping early if fn returns false. Use only on
// small widths.
func (r Range) ForEach(fn func(v apint.Int) bool) {
	w := r.Width()
	for _, s := range r.segments() {
		for x := s.lo; ; x++ {
			if !fn(apint.New(w, x)) {
				return
			}
			if x == s.last {
				break
			}
		}
	}
}
