package constrange

import (
	"dfcheck/internal/apint"
	"dfcheck/internal/knownbits"
)

// This file ports the ConstantRange transfer functions used by LLVM's
// value analyses (ConstantRange.cpp). Each function returns a sound
// over-approximation of { op(x, y) : x ∈ r, y ∈ o, execution well-defined }.
// UB-only inputs (e.g. dividing by a range containing just zero) produce
// the empty set, matching LLVM.

// Add returns the range of x+y.
func (r Range) Add(o Range) Range {
	if r.IsEmpty() || o.IsEmpty() {
		return Empty(r.Width())
	}
	if r.IsFull() || o.IsFull() {
		return Full(r.Width())
	}
	one := apint.One(r.Width())
	newLo := r.lo.Add(o.lo)
	newHi := r.hi.Sub(one).Add(o.hi.Sub(one)).Add(one)
	if newLo.Eq(newHi) {
		return Full(r.Width())
	}
	x := New(newLo, newHi)
	// If the result is smaller than an input, the interval arithmetic
	// wrapped all the way around: give up.
	if x.SizeLT(r) || x.SizeLT(o) {
		return Full(r.Width())
	}
	return x
}

// Sub returns the range of x-y.
func (r Range) Sub(o Range) Range {
	if r.IsEmpty() || o.IsEmpty() {
		return Empty(r.Width())
	}
	if r.IsFull() || o.IsFull() {
		return Full(r.Width())
	}
	one := apint.One(r.Width())
	newLo := r.lo.Sub(o.hi.Sub(one))
	newHi := r.hi.Sub(one).Sub(o.lo).Add(one)
	if newLo.Eq(newHi) {
		return Full(r.Width())
	}
	x := New(newLo, newHi)
	if x.SizeLT(r) || x.SizeLT(o) {
		return Full(r.Width())
	}
	return x
}

// Neg returns the range of -x.
func (r Range) Neg() Range {
	return Single(apint.Zero(r.Width())).Sub(r)
}

// Not returns the range of ^x (= -1 - x).
func (r Range) Not() Range {
	return Single(apint.AllOnes(r.Width())).Sub(r)
}

// Mul returns the range of x*y: the smaller of an unsigned-endpoint and a
// signed-endpoint candidate, full when both may wrap.
func (r Range) Mul(o Range) Range {
	if r.IsEmpty() || o.IsEmpty() {
		return Empty(r.Width())
	}
	w := r.Width()
	best := Full(w)

	// Unsigned candidate: valid when the max product does not wrap
	// (unsigned multiplication is then monotone in both operands).
	ua, ub := r.UnsignedMax(), o.UnsignedMax()
	if !ua.UMulOverflow(ub) {
		lo := r.UnsignedMin().Mul(o.UnsignedMin())
		hi := ua.Mul(ub).Add(apint.One(w))
		cand := NonEmpty(lo, hi)
		if cand.SizeLT(best) {
			best = cand
		}
	}

	// Signed candidate: valid when no endpoint product wraps signed.
	sa, sb := r.SignedMin(), r.SignedMax()
	oa, ob := o.SignedMin(), o.SignedMax()
	overflow := false
	var min, max apint.Int
	first := true
	for _, x := range []apint.Int{sa, sb} {
		for _, y := range []apint.Int{oa, ob} {
			if x.SMulOverflow(y) {
				overflow = true
				break
			}
			p := x.Mul(y)
			if first {
				min, max, first = p, p, false
				continue
			}
			min, max = min.SMin(p), max.SMax(p)
		}
	}
	if !overflow && !first {
		cand := NonEmpty(min, max.Add(apint.One(w)))
		if cand.SizeLT(best) {
			best = cand
		}
	}
	return best
}

// UDiv returns the range of the unsigned quotient x/y, excluding y = 0.
func (r Range) UDiv(o Range) Range {
	w := r.Width()
	if r.IsEmpty() || o.IsEmpty() || o.UnsignedMax().IsZero() {
		return Empty(w)
	}
	lo := r.UnsignedMin().UDiv(o.UnsignedMax())
	den := o.UnsignedMin()
	if den.IsZero() {
		den = apint.One(w)
	}
	hi := r.UnsignedMax().UDiv(den).Add(apint.One(w))
	return NonEmpty(lo, hi)
}

// URem returns the range of the unsigned remainder x%y, excluding y = 0.
func (r Range) URem(o Range) Range {
	w := r.Width()
	if r.IsEmpty() || o.IsEmpty() || o.UnsignedMax().IsZero() {
		return Empty(w)
	}
	// If x is always smaller than every y, the remainder is x itself.
	if r.UnsignedMax().ULT(o.UnsignedMin()) {
		return r
	}
	hi := r.UnsignedMax().UMin(o.UnsignedMax().Sub(apint.One(w)))
	return NonEmpty(apint.Zero(w), hi.Add(apint.One(w)))
}

// SRem returns the range of the signed remainder, excluding y = 0. The
// remainder's sign follows the dividend and its magnitude is strictly less
// than max|y|.
func (r Range) SRem(o Range) Range {
	w := r.Width()
	if r.IsEmpty() || o.IsEmpty() {
		return Empty(w)
	}
	one := apint.One(w)
	// Largest divisor magnitude, as unsigned (MinSigned's magnitude is
	// 2^(w-1), which still fits unsigned).
	dmax := o.SignedMin().AbsValue().UMax(o.SignedMax().AbsValue())
	if dmax.IsZero() {
		return Empty(w) // divisor can only be zero: always UB
	}
	bound := dmax.Sub(one) // |result| <= dmax-1
	smin, smax := r.SignedMin(), r.SignedMax()
	switch {
	case smin.IsNonNegative():
		// Non-negative dividend: result in [0, min(smax, bound)].
		hi := smax
		if bound.SLT(hi) && bound.IsNonNegative() {
			hi = bound
		}
		return NonEmpty(apint.Zero(w), hi.Add(one))
	case smax.IsNegative():
		// Negative dividend: result in [max(smin, -bound), 0].
		lo := smin
		nb := bound.Neg()
		if nb.SGT(lo) {
			lo = nb
		}
		return NonEmpty(lo, one)
	default:
		// Mixed signs: [-bound', bound'] where bound' also limited by
		// the dividend's own magnitude.
		hiMag := bound
		if smax.SLT(hiMag) {
			hiMag = smax
		}
		loMag := bound.Neg()
		if smin.SGT(loMag) {
			loMag = smin
		}
		return NonEmpty(loMag, hiMag.Add(one))
	}
}

// SDivConst returns the range of x sdiv c for a constant divisor; empty for
// c = 0 (always UB). The UB case MinSigned/-1 is excluded from the inputs.
func (r Range) SDivConst(c apint.Int) Range {
	w := r.Width()
	if r.IsEmpty() || c.IsZero() {
		return Empty(w)
	}
	smin, smax := r.SignedMin(), r.SignedMax()
	if c.IsAllOnes() && smin.IsMinSigned() {
		if smax.IsMinSigned() {
			return Empty(w) // only input is UB
		}
		smin = smin.Add(apint.One(w))
	}
	q1, q2 := smin.SDiv(c), smax.SDiv(c)
	lo, hi := q1.SMin(q2), q1.SMax(q2)
	return NonEmpty(lo, hi.Add(apint.One(w)))
}

// Shl returns the range of x << s, excluding s >= width.
func (r Range) Shl(o Range) Range {
	w := r.Width()
	if r.IsEmpty() || o.IsEmpty() {
		return Empty(w)
	}
	if o.UnsignedMin().Uint64() >= uint64(w) {
		return Empty(w) // every shift amount is poison
	}
	sMin := o.UnsignedMin()
	sMax := o.UnsignedMax()
	limit := apint.New(w, uint64(w-1))
	if sMax.UGT(limit) {
		sMax = limit
	}
	// No high bit may be shifted out for endpoint reasoning to be valid.
	if uint(r.UnsignedMax().CountLeadingZeros()) < uint(sMax.Uint64()) {
		return Full(w)
	}
	lo := r.UnsignedMin().Shl(uint(sMin.Uint64()))
	hi := r.UnsignedMax().Shl(uint(sMax.Uint64())).Add(apint.One(w))
	return NonEmpty(lo, hi)
}

// LShr returns the range of x >>u s, excluding s >= width.
func (r Range) LShr(o Range) Range {
	w := r.Width()
	if r.IsEmpty() || o.IsEmpty() {
		return Empty(w)
	}
	if o.UnsignedMin().Uint64() >= uint64(w) {
		return Empty(w)
	}
	sMin := uint(o.UnsignedMin().Uint64())
	sMax := uint(o.UnsignedMax().Uint64())
	if sMax > w-1 {
		sMax = w - 1
	}
	lo := r.UnsignedMin().LShr(sMax)
	hi := r.UnsignedMax().LShr(sMin).Add(apint.One(w))
	return NonEmpty(lo, hi)
}

// AShr returns the range of x >>s s, excluding s >= width.
func (r Range) AShr(o Range) Range {
	w := r.Width()
	if r.IsEmpty() || o.IsEmpty() {
		return Empty(w)
	}
	if o.UnsignedMin().Uint64() >= uint64(w) {
		return Empty(w)
	}
	sMin := uint(o.UnsignedMin().Uint64())
	sMax := uint(o.UnsignedMax().Uint64())
	if sMax > w-1 {
		sMax = w - 1
	}
	smin, smax := r.SignedMin(), r.SignedMax()
	cands := []apint.Int{
		smin.AShr(sMin), smin.AShr(sMax),
		smax.AShr(sMin), smax.AShr(sMax),
	}
	lo, hi := cands[0], cands[0]
	for _, c := range cands[1:] {
		lo, hi = lo.SMin(c), hi.SMax(c)
	}
	return NonEmpty(lo, hi.Add(apint.One(w)))
}

// And returns a sound range for x & y: [0, min(umax(x), umax(y))], plus
// exact handling of singletons. This is the LLVM-style approximation the
// paper's §4.5 "and" example exercises.
func (r Range) And(o Range) Range {
	w := r.Width()
	if r.IsEmpty() || o.IsEmpty() {
		return Empty(w)
	}
	if r.IsSingle() && o.IsSingle() {
		return Single(r.SingleValue().And(o.SingleValue()))
	}
	hi := r.UnsignedMax().UMin(o.UnsignedMax())
	return NonEmpty(apint.Zero(w), hi.Add(apint.One(w)))
}

// Or returns a sound range for x | y: at least max(umin(x), umin(y)), at
// most the all-ones value of the highest bit position either side can set.
func (r Range) Or(o Range) Range {
	w := r.Width()
	if r.IsEmpty() || o.IsEmpty() {
		return Empty(w)
	}
	if r.IsSingle() && o.IsSingle() {
		return Single(r.SingleValue().Or(o.SingleValue()))
	}
	lo := r.UnsignedMin().UMax(o.UnsignedMin())
	leadZeros := r.UnsignedMax().CountLeadingZeros()
	if oz := o.UnsignedMax().CountLeadingZeros(); oz < leadZeros {
		leadZeros = oz
	}
	hi := apint.AllOnes(w).LShr(leadZeros)
	if lo.UGT(hi) {
		return NonEmpty(lo, apint.Zero(w))
	}
	return NonEmpty(lo, hi.Add(apint.One(w)))
}

// Xor returns a sound range for x ^ y (exact only for singletons).
func (r Range) Xor(o Range) Range {
	w := r.Width()
	if r.IsEmpty() || o.IsEmpty() {
		return Empty(w)
	}
	if r.IsSingle() && o.IsSingle() {
		return Single(r.SingleValue().Xor(o.SingleValue()))
	}
	return Full(w)
}

// UMin returns the range of the unsigned minimum min_u(x, y).
func (r Range) UMin(o Range) Range {
	w := r.Width()
	if r.IsEmpty() || o.IsEmpty() {
		return Empty(w)
	}
	lo := r.UnsignedMin().UMin(o.UnsignedMin())
	hi := r.UnsignedMax().UMin(o.UnsignedMax())
	return NonEmpty(lo, hi.Add(apint.One(w)))
}

// UMax returns the range of the unsigned maximum max_u(x, y).
func (r Range) UMax(o Range) Range {
	w := r.Width()
	if r.IsEmpty() || o.IsEmpty() {
		return Empty(w)
	}
	lo := r.UnsignedMin().UMax(o.UnsignedMin())
	hi := r.UnsignedMax().UMax(o.UnsignedMax())
	return NonEmpty(lo, hi.Add(apint.One(w)))
}

// SMin returns the range of the signed minimum min_s(x, y).
func (r Range) SMin(o Range) Range {
	w := r.Width()
	if r.IsEmpty() || o.IsEmpty() {
		return Empty(w)
	}
	lo := r.SignedMin().SMin(o.SignedMin())
	hi := r.SignedMax().SMin(o.SignedMax())
	return NonEmpty(lo, hi.Add(apint.One(w)))
}

// SMax returns the range of the signed maximum max_s(x, y).
func (r Range) SMax(o Range) Range {
	w := r.Width()
	if r.IsEmpty() || o.IsEmpty() {
		return Empty(w)
	}
	lo := r.SignedMin().SMax(o.SignedMin())
	hi := r.SignedMax().SMax(o.SignedMax())
	return NonEmpty(lo, hi.Add(apint.One(w)))
}

// Abs returns the range of |x| (with |MinSigned| wrapping to MinSigned,
// which as an unsigned value is the true magnitude 2^(w-1)).
func (r Range) Abs() Range {
	w := r.Width()
	if r.IsEmpty() {
		return Empty(w)
	}
	one := apint.One(w)
	smin, smax := r.SignedMin(), r.SignedMax()
	switch {
	case smin.IsNonNegative():
		return r // already non-negative, and must be signed-contiguous
	case smax.IsNegative():
		// All negative: |x| ∈ [-smax, -smin], both magnitudes unsigned.
		return NonEmpty(smax.Neg(), smin.Neg().Add(one))
	default:
		hi := smin.Neg().UMax(smax)
		return NonEmpty(apint.Zero(w), hi.Add(one))
	}
}

// Trunc returns the range of trunc(x) to width w.
func (r Range) Trunc(w uint) Range {
	if r.IsEmpty() {
		return Empty(w)
	}
	if r.IsFull() {
		return Full(w)
	}
	// A contiguous arc no longer than 2^w truncates to a contiguous arc;
	// anything longer covers every residue.
	n, huge := r.Size()
	if huge || (w < 64 && n > uint64(1)<<w) {
		return Full(w)
	}
	return NonEmpty(r.lo.Trunc(w), r.hi.Trunc(w))
}

// ZExt returns the range of zext(x) to width w.
func (r Range) ZExt(w uint) Range {
	srcW := r.Width()
	if r.IsEmpty() {
		return Empty(w)
	}
	if r.IsFull() || r.IsWrapped() || r.hi.IsZero() {
		// Values span up to the source maximum; the tightest arc in the
		// wider space is [0, 2^srcW) — except [lo, 0), which is exactly
		// lo..MAXsrc.
		if !r.IsFull() && !r.IsWrapped() {
			lo := r.lo.ZExt(w)
			hi := apint.MaxUnsigned(srcW).ZExt(w).Add(apint.One(w))
			return New(lo, hi)
		}
		return New(apint.Zero(w), apint.One(w).Shl(srcW))
	}
	return New(r.lo.ZExt(w), r.hi.ZExt(w))
}

// SExt returns the range of sext(x) to width w.
func (r Range) SExt(w uint) Range {
	srcW := r.Width()
	if r.IsEmpty() {
		return Empty(w)
	}
	one := apint.One(w)
	if r.IsFull() || (r.Contains(apint.MaxSigned(srcW)) && r.Contains(apint.MinSigned(srcW))) {
		// The arc crosses the signed discontinuity: all we know is the
		// source-width signed bounds.
		return New(apint.MinSigned(srcW).SExt(w), apint.MaxSigned(srcW).SExt(w).Add(one))
	}
	return New(r.SignedMin().SExt(w), r.SignedMax().SExt(w).Add(one))
}

// Exclude removes a single value from the range when the representation
// allows (the value sits at an edge, or the range is full); interior
// exclusions return the range unchanged (still sound).
func (r Range) Exclude(v apint.Int) Range {
	w := r.Width()
	one := apint.One(w)
	switch {
	case !r.Contains(v):
		return r
	case r.IsFull():
		return NonEmpty(v.Add(one), v) // everything except v
	case r.IsSingle():
		return Empty(w)
	case r.lo.Eq(v):
		return NonEmpty(v.Add(one), r.hi)
	case r.hi.Sub(one).Eq(v):
		return NonEmpty(r.lo, v)
	}
	return r
}

// FromKnownBits converts a known-bits fact to a range: [umin, umax] for the
// unsigned interpretation, [smin, smax] for the signed one.
func FromKnownBits(k knownbits.Bits, signed bool) Range {
	w := k.Width()
	if k.HasConflict() {
		return Empty(w)
	}
	one := apint.One(w)
	if !signed {
		return NonEmpty(k.UMin(), k.UMax().Add(one))
	}
	// Signed bounds: force the sign bit when unknown.
	smin, smax := k.UMin(), k.UMax()
	if known, _ := k.KnownBit(w - 1); !known {
		smin = smin.SetBit(w - 1)   // most negative: sign bit on
		smax = smax.ClearBit(w - 1) // most positive: sign bit off
	}
	return NonEmpty(smin, smax.Add(one))
}

// ToKnownBits converts a range to the known-bits fact implied by its
// unsigned bounds: the common leading bits of umin and umax are known.
func (r Range) ToKnownBits() knownbits.Bits {
	w := r.Width()
	if r.IsEmpty() {
		// Bottom: claim everything (conflict-free convention: all zero).
		return knownbits.FromConst(apint.Zero(w))
	}
	lo, hi := r.UnsignedMin(), r.UnsignedMax()
	diff := lo.Xor(hi)
	common := diff.CountLeadingZeros()
	zero, one := apint.Zero(w), apint.Zero(w)
	for i := uint(0); i < common; i++ {
		bit := w - 1 - i
		if lo.Bit(bit) {
			one = one.SetBit(bit)
		} else {
			zero = zero.SetBit(bit)
		}
	}
	return knownbits.Make(zero, one)
}

// Pred is an icmp predicate for ICmpDecide.
type Pred uint8

// Predicates.
const (
	EQ Pred = iota
	NE
	ULT
	ULE
	UGT
	UGE
	SLT
	SLE
	SGT
	SGE
)

// ICmpDecide reports whether "x pred y" has the same outcome for every
// x ∈ r, y ∈ o. known is false when both outcomes are possible (or a range
// is empty).
func ICmpDecide(pred Pred, r, o Range) (result, known bool) {
	if r.IsEmpty() || o.IsEmpty() {
		return false, false
	}
	switch pred {
	case EQ:
		if r.IsSingle() && o.IsSingle() && r.SingleValue().Eq(o.SingleValue()) {
			return true, true
		}
		if r.Intersect(o).IsEmpty() {
			return false, true
		}
	case NE:
		res, k := ICmpDecide(EQ, r, o)
		return !res, k
	case ULT:
		if r.UnsignedMax().ULT(o.UnsignedMin()) {
			return true, true
		}
		if r.UnsignedMin().UGE(o.UnsignedMax()) {
			return false, true
		}
	case ULE:
		if r.UnsignedMax().ULE(o.UnsignedMin()) {
			return true, true
		}
		if r.UnsignedMin().UGT(o.UnsignedMax()) {
			return false, true
		}
	case UGT:
		return ICmpDecide(ULT, o, r)
	case UGE:
		return ICmpDecide(ULE, o, r)
	case SLT:
		if r.SignedMax().SLT(o.SignedMin()) {
			return true, true
		}
		if r.SignedMin().SGE(o.SignedMax()) {
			return false, true
		}
	case SLE:
		if r.SignedMax().SLE(o.SignedMin()) {
			return true, true
		}
		if r.SignedMin().SGT(o.SignedMax()) {
			return false, true
		}
	case SGT:
		return ICmpDecide(SLT, o, r)
	case SGE:
		return ICmpDecide(SLE, o, r)
	}
	return false, false
}
