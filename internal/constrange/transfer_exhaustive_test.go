package constrange_test

// Exhaustive width-4 soundness tests for every transfer function in
// transfer.go, graded against the concrete image and the AbstractSet
// best-abstraction helper: for EVERY pair of width-4 ranges (wrapped
// ones included — all 241 non-empty ranges, 58k pairs per op) and every
// concrete value pair drawn from them, the transfer output must contain
// the concrete result of each well-defined evaluation. UB evaluations
// (division by zero, MinSigned/-1, shift amounts >= width) are excluded
// from the image, matching the contract stated at the top of transfer.go.

import (
	"testing"

	"dfcheck/internal/apint"
	"dfcheck/internal/constrange"
)

const exW = 4

// allRanges enumerates every non-empty width-w range: each lo != hi pair
// plus Full. The list necessarily includes every wrapped range.
func allRanges(w uint) []constrange.Range {
	var out []constrange.Range
	max := uint64(1) << w
	for lo := uint64(0); lo < max; lo++ {
		for hi := uint64(0); hi < max; hi++ {
			if lo == hi {
				continue
			}
			out = append(out, constrange.New(apint.New(w, lo), apint.New(w, hi)))
		}
	}
	return append(out, constrange.Full(w))
}

// vals materializes a range's members once so the per-pair sweeps stay
// cheap.
func vals(r constrange.Range) []apint.Int {
	var out []apint.Int
	r.ForEach(func(v apint.Int) bool {
		out = append(out, v)
		return true
	})
	return out
}

type binOp struct {
	name string
	tf   func(a, b constrange.Range) constrange.Range
	// op returns (result, well-defined).
	op func(x, y apint.Int) (apint.Int, bool)
}

func defined(f func(x, y apint.Int) apint.Int) func(x, y apint.Int) (apint.Int, bool) {
	return func(x, y apint.Int) (apint.Int, bool) { return f(x, y), true }
}

func shiftOp(f func(x apint.Int, s uint) apint.Int) func(x, y apint.Int) (apint.Int, bool) {
	return func(x, y apint.Int) (apint.Int, bool) {
		if y.Uint64() >= uint64(x.Width()) {
			return apint.Int{}, false // poison, per LLVM shift semantics
		}
		return f(x, uint(y.Uint64())), true
	}
}

var binOps = []binOp{
	{"add", constrange.Range.Add, defined(apint.Int.Add)},
	{"sub", constrange.Range.Sub, defined(apint.Int.Sub)},
	{"mul", constrange.Range.Mul, defined(apint.Int.Mul)},
	{"udiv", constrange.Range.UDiv, func(x, y apint.Int) (apint.Int, bool) {
		if y.IsZero() {
			return apint.Int{}, false
		}
		return x.UDiv(y), true
	}},
	{"urem", constrange.Range.URem, func(x, y apint.Int) (apint.Int, bool) {
		if y.IsZero() {
			return apint.Int{}, false
		}
		return x.URem(y), true
	}},
	{"srem", constrange.Range.SRem, func(x, y apint.Int) (apint.Int, bool) {
		if y.IsZero() {
			return apint.Int{}, false
		}
		return x.SRem(y), true
	}},
	{"shl", constrange.Range.Shl, shiftOp(apint.Int.Shl)},
	{"lshr", constrange.Range.LShr, shiftOp(apint.Int.LShr)},
	{"ashr", constrange.Range.AShr, shiftOp(apint.Int.AShr)},
	{"and", constrange.Range.And, defined(apint.Int.And)},
	{"or", constrange.Range.Or, defined(apint.Int.Or)},
	{"xor", constrange.Range.Xor, defined(apint.Int.Xor)},
	{"umin", constrange.Range.UMin, defined(apint.Int.UMin)},
	{"umax", constrange.Range.UMax, defined(apint.Int.UMax)},
	{"smin", constrange.Range.SMin, defined(apint.Int.SMin)},
	{"smax", constrange.Range.SMax, defined(apint.Int.SMax)},
}

// TestBinaryTransfersSoundExhaustive sweeps every (range, range) pair at
// width 4 through every binary transfer function. The wrapped-range and
// srem/udiv edge cases the transfers special-case (sign splitting,
// divisor ranges straddling zero) are all inside this sweep.
func TestBinaryTransfersSoundExhaustive(t *testing.T) {
	rs := allRanges(exW)
	members := make([][]apint.Int, len(rs))
	for i, r := range rs {
		members[i] = vals(r)
	}
	for _, bo := range binOps {
		bo := bo
		t.Run(bo.name, func(t *testing.T) {
			for i, ra := range rs {
				for j, rb := range rs {
					got := bo.tf(ra, rb)
					for _, x := range members[i] {
						for _, y := range members[j] {
							v, ok := bo.op(x, y)
							if ok && !got.Contains(v) {
								t.Fatalf("%s(%s, %s) = %s does not contain %s %s %s = %s",
									bo.name, ra, rb, got, x, bo.name, y, v)
							}
						}
					}
				}
			}
		})
	}
}

// TestSDivConstSoundExhaustive covers the constant-divisor signed
// division transfer, excluding the UB pairs (zero divisor and the
// MinSigned/-1 overflow, which eval also treats as UB).
func TestSDivConstSoundExhaustive(t *testing.T) {
	rs := allRanges(exW)
	for _, ra := range rs {
		mem := vals(ra)
		for c := uint64(0); c < 1<<exW; c++ {
			cv := apint.New(exW, c)
			if cv.IsZero() {
				continue
			}
			got := ra.SDivConst(cv)
			for _, x := range mem {
				if x.IsMinSigned() && cv.IsAllOnes() {
					continue
				}
				if v := x.SDiv(cv); !got.Contains(v) {
					t.Fatalf("SDivConst(%s, %s) = %s does not contain %s", ra, cv, got, v)
				}
			}
		}
	}
}

// TestUnaryAndCastTransfersSoundExhaustive covers Neg, Not, Abs, and the
// three width-changing casts for every width-4 range.
func TestUnaryAndCastTransfersSoundExhaustive(t *testing.T) {
	rs := allRanges(exW)
	unary := []struct {
		name string
		tf   func(r constrange.Range) constrange.Range
		op   func(x apint.Int) apint.Int
	}{
		{"neg", constrange.Range.Neg, apint.Int.Neg},
		{"not", constrange.Range.Not, apint.Int.Not},
		{"abs", constrange.Range.Abs, apint.Int.AbsValue},
		{"trunc", func(r constrange.Range) constrange.Range { return r.Trunc(2) },
			func(x apint.Int) apint.Int { return x.Trunc(2) }},
		{"zext", func(r constrange.Range) constrange.Range { return r.ZExt(6) },
			func(x apint.Int) apint.Int { return x.ZExt(6) }},
		{"sext", func(r constrange.Range) constrange.Range { return r.SExt(6) },
			func(x apint.Int) apint.Int { return x.SExt(6) }},
	}
	for _, u := range unary {
		u := u
		t.Run(u.name, func(t *testing.T) {
			for _, ra := range rs {
				got := u.tf(ra)
				for _, x := range vals(ra) {
					if v := u.op(x); !got.Contains(v) {
						t.Fatalf("%s(%s) = %s does not contain %s(%s) = %s", u.name, ra, got, u.name, x, v)
					}
				}
			}
		})
	}
}

// TestAbstractSetMinimalCover checks AbstractSet against a brute-force
// minimal circular cover over every non-empty width-4 value set (65535
// subsets): the result must contain every member, and its size must
// equal the minimum over all circular intervals that do.
func TestAbstractSetMinimalCover(t *testing.T) {
	const w = exW
	mask := uint64(1)<<w - 1
	for set := uint64(1); set < uint64(1)<<(1<<w); set++ {
		var members []apint.Int
		for x := uint64(0); x <= mask; x++ {
			if set&(1<<x) != 0 {
				members = append(members, apint.New(w, x))
			}
		}
		got := constrange.AbstractSet(w, members)
		for _, v := range members {
			if !got.Contains(v) {
				t.Fatalf("AbstractSet(%v) = %s misses member %s", members, got, v)
			}
		}
		gotSize, _ := got.Size()
		// Brute-force minimal circular cover: try each member as the
		// cover's first element.
		best := uint64(1) << w
		for _, lo := range members {
			span := uint64(0)
			for _, v := range members {
				if d := (v.Uint64() - lo.Uint64()) & mask; d > span {
					span = d
				}
			}
			if span+1 < best {
				best = span + 1
			}
		}
		if gotSize != best {
			t.Fatalf("AbstractSet(%v) = %s has size %d, minimal circular cover has %d",
				members, got, gotSize, best)
		}
	}
}

// TestAbstractSetWrapped pins the wrapped behavior the doc comment
// promises: {15, 0, 1} abstracts to [15,2), not the full range.
func TestAbstractSetWrapped(t *testing.T) {
	got := constrange.AbstractSet(4, []apint.Int{
		apint.New(4, 15), apint.New(4, 0), apint.New(4, 1),
	})
	want := constrange.New(apint.New(4, 15), apint.New(4, 2))
	if !got.Eq(want) {
		t.Fatalf("AbstractSet({15,0,1}) = %s, want %s", got, want)
	}
	if constrange.AbstractSet(4, nil).IsEmpty() != true {
		t.Fatalf("AbstractSet(empty) should be Empty")
	}
	single := constrange.AbstractSet(4, []apint.Int{apint.New(4, 7)})
	if !single.IsSingle() || !single.SingleValue().Eq(apint.New(4, 7)) {
		t.Fatalf("AbstractSet({7}) = %s, want the singleton 7", single)
	}
}
