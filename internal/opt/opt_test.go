package opt

import (
	"math/rand"
	"testing"

	"dfcheck/internal/eval"
	"dfcheck/internal/harvest"
	"dfcheck/internal/ir"
)

// checkRefines verifies the optimizer's contract: on every input where the
// original executes without UB, the optimized program is also well-defined
// and computes the same value.
func checkRefines(t *testing.T, orig, opt *ir.Function, samples int) {
	t.Helper()
	varByName := make(map[string]*ir.Inst)
	for _, v := range opt.Vars {
		varByName[v.Name] = v
	}
	check := func(env eval.Env) {
		want, ok := eval.Eval(orig, env)
		if !ok {
			return
		}
		env2 := make(eval.Env, len(opt.Vars))
		for _, v := range orig.Vars {
			if nv, used := varByName[v.Name]; used {
				env2[nv] = env[v]
			}
		}
		got, ok2 := eval.Eval(opt, env2)
		if !ok2 {
			t.Fatalf("optimized program UB where original defined\norig:\n%sopt:\n%s", orig, opt)
		}
		if got.Ne(want) {
			t.Fatalf("optimized %v != original %v\norig:\n%sopt:\n%s", got, want, orig, opt)
		}
	}
	if eval.TotalInputBits(orig) <= 14 {
		eval.ForEachInput(orig, func(env eval.Env) bool { check(env); return true })
		return
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < samples; i++ {
		check(eval.RandomEnv(orig, rng))
	}
}

func TestOptimizeBaselineFoldsIdentities(t *testing.T) {
	cases := []struct {
		src      string
		maxInsts int
	}{
		{"%x:i8 = var\n%0:i8 = add %x, 0:i8\ninfer %0", 0},
		{"%x:i8 = var\n%0:i8 = mul %x, 1:i8\ninfer %0", 0},
		{"%x:i8 = var\n%0:i8 = and %x, 255:i8\ninfer %0", 0},
		{"%x:i8 = var\n%0:i8 = or %x, 0:i8\ninfer %0", 0},
		{"%x:i8 = var\n%0:i8 = xor %x, %x\ninfer %0", 0},
		{"%x:i8 = var\n%0:i8 = sub %x, %x\ninfer %0", 0},
		{"%x:i8 = var\n%0:i8 = mul %x, 0:i8\ninfer %0", 0},
		{"%x:i8 = var\n%0:i8 = udiv %x, 1:i8\ninfer %0", 0},
		{"%x:i8 = var\n%0:i8 = shl %x, 0:i8\ninfer %0", 0},
		{"%0:i8 = add 3:i8, 4:i8\ninfer %0", 0},
		{"%c:i1 = var\n%x:i8 = var\n%0:i8 = select %c, %x, %x\ninfer %0", 0},
	}
	for _, c := range cases {
		f := ir.MustParse(c.src)
		got := Optimize(f, NewBaselineSource(f))
		if n := got.NumInsts(); n > c.maxInsts {
			t.Errorf("%s: %d instructions remain, want <= %d:\n%s", c.src, n, c.maxInsts, got)
		}
		checkRefines(t, f, got, 100)
	}
}

func TestOptimizeUsesRangeFacts(t *testing.T) {
	// [0,100) < [200,205) folds via LVI even in the baseline.
	f := ir.MustParse(`
		%a:i8 = var (range=[0,100))
		%b:i8 = var (range=[200,205))
		%0:i1 = ult %a, %b
		infer %0
	`)
	got := Optimize(f, NewBaselineSource(f))
	if !got.Root.IsConst() || !got.Root.ConstValue().IsOne() {
		t.Errorf("comparison not folded to true:\n%s", got)
	}
}

func TestOptimizePreciseFoldsMore(t *testing.T) {
	// The §4.2.1 mul/srem cluster folds with oracle facts only.
	src := "%x:i8 = var\n%0:i8 = mulnsw 10:i8, %x\n%1:i8 = srem %0, 10:i8\n%2:i8 = or %x, %1\ninfer %2"
	f := ir.MustParse(src)
	base := Optimize(f, NewBaselineSource(f))
	if base.NumInsts() < 3 {
		t.Errorf("baseline unexpectedly folded the cluster:\n%s", base)
	}
	f2 := ir.MustParse(src)
	prec := Optimize(f2, NewOracleSource(f2, 0))
	if prec.NumInsts() != 0 {
		t.Errorf("precise facts should reduce to %%x alone:\n%s", prec)
	}
	checkRefines(t, f, prec, 0)
}

func TestOptimizeIdempotent(t *testing.T) {
	for _, k := range Kernels {
		f := k.F()
		once := Optimize(f, NewBaselineSource(f))
		twice := Optimize(once, NewBaselineSource(once))
		if once.String() != twice.String() {
			t.Errorf("%s: baseline optimization not idempotent:\n%s\nvs\n%s", k.Name, once, twice)
		}
	}
}

func TestOptimizeKernelsRefine(t *testing.T) {
	for _, k := range Kernels {
		f := k.F()
		base := Optimize(f, NewBaselineSource(f))
		checkRefines(t, f, base, 300)
		f2 := k.F()
		prec := Optimize(f2, NewOracleSource(f2, 0))
		checkRefines(t, f2, prec, 300)
	}
}

func TestOptimizeRandomCorpusRefines(t *testing.T) {
	corpus := harvest.Generate(harvest.Config{
		Seed: 77, NumExprs: 120, MaxInsts: 6,
		Widths: []harvest.WidthWeight{{Width: 8, Weight: 1}},
	})
	for _, e := range corpus {
		got := Optimize(e.F, NewBaselineSource(e.F))
		checkRefines(t, e.F, got, 100)
	}
}

func TestMachineModels(t *testing.T) {
	amd, intel := AMD(), Intel()
	f := ir.MustParse("%x:i8 = var\n%0:i8 = udiv %x, 3:i8\n%1:i8 = add %0, 1:i8\ninfer %1")
	if amd.StaticCycles(f) >= intel.StaticCycles(f) {
		t.Errorf("AMD division should be cheaper: amd=%d intel=%d",
			amd.StaticCycles(f), intel.StaticCycles(f))
	}
	// Constants and vars are free.
	free := ir.MustParse("%x:i8 = var\ninfer %x")
	if amd.StaticCycles(free) != 0 {
		t.Errorf("var-only kernel costs %d", amd.StaticCycles(free))
	}
}

func TestRunWorkloadRejectsUB(t *testing.T) {
	f := ir.MustParse("%x:i8 = var\n%0:i8 = udiv 1:i8, %x\ninfer %0")
	_, _, err := AMD().RunWorkload(f, []WorkloadEnv{{"x": 0}})
	if err == nil {
		t.Error("UB workload input not rejected")
	}
	_, outs, err := AMD().RunWorkload(f, []WorkloadEnv{{"x": 2}})
	if err != nil || outs[0] != 0 {
		t.Errorf("workload = %v, %v", outs, err)
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle-driven optimization is slow")
	}
	rows, err := RunTable2(0, 50)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Table2Row{}
	for _, r := range rows {
		byKey[r.Benchmark+"/"+r.Machine] = r
	}
	if len(byKey) != 12 {
		t.Fatalf("rows = %d, want 12 (6 benchmarks x 2 machines)", len(byKey))
	}

	for _, m := range []string{"AMD", "Intel"} {
		bc := byKey["bzip2 compress/"+m]
		bd := byKey["bzip2 decompress/"+m]
		gz := byKey["gzip compress/"+m]
		gd := byKey["gzip decompress/"+m]
		sf := byKey["Stockfish/"+m]
		sq := byKey["SQLite/"+m]

		// Paper shape: bzip2 compress wins big; SQLite and Stockfish
		// small positive; gzip and decompression neutral.
		if bc.SpeedupPct < 5 {
			t.Errorf("%s: bzip2 compress speedup = %.2f%%, want substantial", m, bc.SpeedupPct)
		}
		if bc.SpeedupPct <= sq.SpeedupPct || bc.SpeedupPct <= sf.SpeedupPct {
			t.Errorf("%s: bzip2 compress (%.2f%%) should dominate SQLite (%.2f%%) and Stockfish (%.2f%%)",
				m, bc.SpeedupPct, sq.SpeedupPct, sf.SpeedupPct)
		}
		if sq.SpeedupPct <= 0 || sf.SpeedupPct <= 0 {
			t.Errorf("%s: SQLite (%.2f%%) and Stockfish (%.2f%%) should see small wins",
				m, sq.SpeedupPct, sf.SpeedupPct)
		}
		if sq.SpeedupPct < sf.SpeedupPct {
			t.Errorf("%s: SQLite (%.2f%%) should beat Stockfish (%.2f%%) as in the paper",
				m, sq.SpeedupPct, sf.SpeedupPct)
		}
		for name, r := range map[string]Table2Row{"bzip2 decompress": bd, "gzip compress": gz, "gzip decompress": gd} {
			if r.SpeedupPct != 0 {
				t.Errorf("%s: %s speedup = %.2f%%, want 0 (no foldable redundancy)", m, name, r.SpeedupPct)
			}
		}
		// The precise compiler is the slow one (§4.6: hours per build).
		if bc.PreciseOptTime <= bc.BaselineOptTime {
			t.Errorf("%s: precise compile time %v should exceed baseline %v",
				m, bc.PreciseOptTime, bc.BaselineOptTime)
		}
	}
	// AMD's bzip2-compress win exceeds Intel's, as in Table 2.
	if byKey["bzip2 compress/AMD"].SpeedupPct <= byKey["bzip2 compress/Intel"].SpeedupPct {
		t.Errorf("AMD bzip2 compress (%.2f%%) should exceed Intel (%.2f%%)",
			byKey["bzip2 compress/AMD"].SpeedupPct, byKey["bzip2 compress/Intel"].SpeedupPct)
	}
}

func TestInstcombineRules(t *testing.T) {
	cases := []struct {
		name, src string
		maxInsts  int
	}{
		{"reassoc add", "%x:i8 = var\n%0:i8 = add %x, 3:i8\n%1:i8 = add %0, 4:i8\ninfer %1", 1},
		{"reassoc xor cancel", "%x:i8 = var\n%0:i8 = xor %x, 255:i8\n%1:i8 = xor %0, 255:i8\ninfer %1", 0},
		{"reassoc and", "%x:i8 = var\n%0:i8 = and %x, 240:i8\n%1:i8 = and %0, 60:i8\ninfer %1", 1},
		{"reassoc or const first", "%x:i8 = var\n%0:i8 = or 1:i8, %x\n%1:i8 = or 2:i8, %0\ninfer %1", 1},
		{"shl then lshr", "%x:i8 = var\n%0:i8 = shl %x, 3:i8\n%1:i8 = lshr %0, 3:i8\ninfer %1", 1},
		{"lshr then shl", "%x:i8 = var\n%0:i8 = lshr %x, 2:i8\n%1:i8 = shl %0, 2:i8\ninfer %1", 1},
		{"trunc of zext to source", "%x:i8 = var\n%0:i16 = zext %x\n%1:i8 = trunc %0\ninfer %1", 0},
		{"trunc of sext below source", "%x:i8 = var\n%0:i16 = sext %x\n%1:i4 = trunc %0\ninfer %1", 1},
		{"trunc of zext to intermediate", "%x:i4 = var\n%0:i16 = zext %x\n%1:i8 = trunc %0\ninfer %1", 1},
		{"zext of zext", "%x:i4 = var\n%0:i8 = zext %x\n%1:i16 = zext %0\ninfer %1", 1},
		{"sext of sext", "%x:i4 = var\n%0:i8 = sext %x\n%1:i16 = sext %0\ninfer %1", 1},
		{"sext of zext", "%x:i4 = var\n%0:i8 = zext %x\n%1:i16 = sext %0\ninfer %1", 1},
		{"trunc of trunc", "%x:i32 = var\n%0:i16 = trunc %x\n%1:i8 = trunc %0\ninfer %1", 1},
	}
	for _, c := range cases {
		f := ir.MustParse(c.src)
		got := Optimize(f, NewBaselineSource(f))
		if n := got.NumInsts(); n > c.maxInsts {
			t.Errorf("%s: %d instructions remain, want <= %d:\n%s", c.name, n, c.maxInsts, got)
		}
		checkRefines(t, f, got, 200)
	}
	// Flagged ops must not reassociate (the rule drops flags only when
	// there are none to drop).
	f := ir.MustParse("%x:i8 = var\n%0:i8 = addnsw %x, 3:i8\n%1:i8 = addnsw %0, 4:i8\ninfer %1")
	got := Optimize(f, NewBaselineSource(f))
	checkRefines(t, f, got, 200)
}

// TestConstantFoldMatchesInterpreter pins evalConst (the optimizer's
// folder) to eval.Eval (the semantics of record): for every op, random
// constant operands must fold to exactly what execution produces, and be
// rejected exactly when execution is ill-defined.
func TestConstantFoldMatchesInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	ops := []struct {
		src   string
		nVars int
	}{
		{"%a:i8 = var\n%b:i8 = var\n%0:i8 = add %a, %b\ninfer %0", 2},
		{"%a:i8 = var\n%b:i8 = var\n%0:i8 = addnsw %a, %b\ninfer %0", 2},
		{"%a:i8 = var\n%b:i8 = var\n%0:i8 = subnuw %a, %b\ninfer %0", 2},
		{"%a:i8 = var\n%b:i8 = var\n%0:i8 = mulnw %a, %b\ninfer %0", 2},
		{"%a:i8 = var\n%b:i8 = var\n%0:i8 = udiv %a, %b\ninfer %0", 2},
		{"%a:i8 = var\n%b:i8 = var\n%0:i8 = sdiv %a, %b\ninfer %0", 2},
		{"%a:i8 = var\n%b:i8 = var\n%0:i8 = urem %a, %b\ninfer %0", 2},
		{"%a:i8 = var\n%b:i8 = var\n%0:i8 = srem %a, %b\ninfer %0", 2},
		{"%a:i8 = var\n%b:i8 = var\n%0:i8 = shl %a, %b\ninfer %0", 2},
		{"%a:i8 = var\n%b:i8 = var\n%0:i8 = lshrexact %a, %b\ninfer %0", 2},
		{"%a:i8 = var\n%b:i8 = var\n%0:i8 = ashr %a, %b\ninfer %0", 2},
		{"%a:i8 = var\n%b:i8 = var\n%0:i1 = slt %a, %b\ninfer %0", 2},
		{"%a:i8 = var\n%b:i8 = var\n%0:i8 = umin %a, %b\ninfer %0", 2},
		{"%a:i8 = var\n%b:i8 = var\n%0:i8 = smax %a, %b\ninfer %0", 2},
		{"%a:i8 = var\n%0:i8 = abs %a\ninfer %0", 1},
		{"%a:i8 = var\n%0:i8 = ctpop %a\ninfer %0", 1},
		{"%a:i8 = var\n%0:i8 = bitreverse %a\ninfer %0", 1},
		{"%a:i8 = var\n%b:i8 = var\n%0:i8 = rotl %a, %b\ninfer %0", 2},
		{"%a:i8 = var\n%b:i8 = var\n%0:i1 = uaddo %a, %b\ninfer %0", 2},
		{"%a:i8 = var\n%b:i8 = var\n%0:i1 = smulo %a, %b\ninfer %0", 2},
		{"%a:i8 = var\n%b:i8 = var\n%s:i8 = var\n%0:i8 = fshr %a, %b, %s\ninfer %0", 3},
	}
	names := []string{"a", "b", "s"}
	for _, op := range ops {
		f := ir.MustParse(op.src)
		for trial := 0; trial < 300; trial++ {
			vals := map[string]uint64{}
			for i := 0; i < op.nVars; i++ {
				vals[names[i]] = rng.Uint64() & 0xFF
			}
			env, err := eval.EnvFromNames(f, vals)
			if err != nil {
				t.Fatal(err)
			}
			want, wantOK := eval.Eval(f, env)

			// Rebuild the root with constant operands and fold it.
			b := ir.NewBuilder()
			args := make([]*ir.Inst, len(f.Root.Args))
			for i, a := range f.Root.Args {
				if a.IsVar() {
					args[i] = b.Const(env[a])
				} else {
					args[i] = b.Const(a.ConstValue())
				}
			}
			got, ok := foldConstants(f.Root, args)
			if ok != wantOK {
				t.Fatalf("%s on %v: fold ok=%v, eval ok=%v", op.src, vals, ok, wantOK)
			}
			if ok && got.Ne(want) {
				t.Fatalf("%s on %v: fold=%v, eval=%v", op.src, vals, got, want)
			}
		}
	}
}

// TestSimplifyDemandedBits: instructions whose influence is masked away
// downstream collapse (SimplifyDemandedBits-lite).
func TestSimplifyDemandedBits(t *testing.T) {
	cases := []struct {
		name, src string
		maxInsts  int
	}{
		// High-byte junk OR'd in, then truncated away.
		{"or above trunc", "%x:i16 = var\n%y:i16 = var\n%0:i16 = shl %y, 8:i16\n%1:i16 = or %x, %0\n%2:i8 = trunc %1\ninfer %2", 1},
		// XOR with bits that the final mask clears.
		{"xor masked off", "%x:i8 = var\n%y:i8 = var\n%0:i8 = shl %y, 4:i8\n%1:i8 = xor %x, %0\n%2:i8 = and %1, 15:i8\ninfer %2", 2},
		// Adding a 256-aligned value cannot change the low byte.
		{"add aligned", "%x:i16 = var\n%y:i16 = var\n%0:i16 = shl %y, 8:i16\n%1:i16 = add %x, %0\n%2:i8 = trunc %1\ninfer %2", 1},
	}
	for _, c := range cases {
		f := ir.MustParse(c.src)
		got := Optimize(f, NewBaselineSource(f))
		if n := got.NumInsts(); n > c.maxInsts {
			t.Errorf("%s: %d instructions remain, want <= %d:\n%s", c.name, n, c.maxInsts, got)
		}
		checkRefines(t, f, got, 300)
	}
	// A demanded operand must NOT be dropped.
	f := ir.MustParse("%x:i16 = var\n%y:i16 = var\n%0:i16 = shl %y, 4:i16\n%1:i16 = or %x, %0\n%2:i8 = trunc %1\ninfer %2")
	got := Optimize(f, NewBaselineSource(f))
	if got.NumInsts() < 3 {
		t.Errorf("overlapping or was incorrectly dropped:\n%s", got)
	}
	checkRefines(t, f, got, 300)
}
