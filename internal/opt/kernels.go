package opt

import (
	"fmt"
	"math/rand"
	"time"

	"dfcheck/internal/ir"
)

// Kernel is one Table 2 benchmark: a synthetic straight-line integer
// kernel named after the application whose hot loop it is shaped like,
// plus a workload generator. The compression-side kernels deliberately
// contain the §4.2.1 imprecision patterns where the paper found wins, so
// that the precise compiler folds strictly more than the baseline; the
// decompression kernels contain nothing foldable, matching the paper's
// near-zero deltas there.
type Kernel struct {
	Name     string
	Source   string
	workload func(rng *rand.Rand) WorkloadEnv
}

// F parses the kernel.
func (k Kernel) F() *ir.Function { return ir.MustParse(k.Source) }

// Workload generates n deterministic inputs.
func (k Kernel) Workload(n int) []WorkloadEnv {
	rng := rand.New(rand.NewSource(int64(len(k.Name)) * 7919))
	envs := make([]WorkloadEnv, n)
	for i := range envs {
		envs[i] = k.workload(rng)
	}
	return envs
}

// Kernels are the Table 2 rows, in the paper's order.
var Kernels = []Kernel{
	{
		// Huffman bit-packing step from the compression side: hash the
		// symbol, mix into the accumulator, emit bits. Contains two
		// §4.2.1 clusters foldable only with maximally precise known
		// bits: the low-bit-of-x-plus-its-own-low-bit pattern, and the
		// zero-extended-byte-shifted-right pattern.
		Name: "bzip2 compress",
		Source: `
			%sym:i16 = var (range=[0,256))
			%run:i16 = var (range=[1,8))
			%acc:i16 = var
			; irreducible hash / bit-emit work
			%c0:i16 = mul %sym, 31:i16
			%c1:i16 = xor %c0, %acc
			%c2:i16 = urem %c1, 257:i16
			%c3:i16 = shl %c1, %run
			%c4:i16 = or %c2, %c3
			%c5:i16 = rotl %c4, 5:i16
			%c6:i16 = add %c5, %sym
			%c7:i16 = xor %c6, %c3
			%c8:i16 = add %c7, %acc
			%c9:i16 = rotl %c8, 3:i16
			%c10:i16 = xor %c9, %c2
			%c11:i16 = add %c10, %c6
			%c12:i16 = rotr %c11, 7:i16
			%c13:i16 = xor %c12, %c8
			%c14:i16 = add %c13, %c4
			%c15:i16 = xor %c14, %c10
			%c16:i16 = add %c15, %c12
			%c17:i16 = rotl %c16, 1:i16
			; cluster A (§4.2.1): x + (x & 1) has a clear low bit
			%a0:i16 = and 1:i16, %sym
			%a1:i16 = add %sym, %a0
			%a2:i16 = and %a1, 1:i16
			%a3:i16 = or %c17, %a2
			; cluster B (§4.2.1): a zero-extended byte shifted right has
			; no bits above bit 7
			%b0:i8 = trunc %sym
			%b1:i16 = zext %b0
			%b2:i16 = lshr %b1, %run
			%b3:i16 = and %b2, 65280:i16
			%b4:i16 = add %a3, %b3
			infer %b4
		`,
		workload: func(rng *rand.Rand) WorkloadEnv {
			return WorkloadEnv{
				"sym": uint64(rng.Intn(256)),
				"run": uint64(1 + rng.Intn(7)),
				"acc": uint64(rng.Intn(1 << 16)),
			}
		},
	},
	{
		// Inverse transform: table-walk arithmetic with no redundancy
		// for the precise analyses to exploit.
		Name: "bzip2 decompress",
		Source: `
			%code:i16 = var
			%state:i16 = var
			%0:i16 = xor %code, %state
			%1:i16 = rotr %0, 7:i16
			%2:i16 = add %1, %code
			%3:i16 = urem %2, 255:i16
			%4:i16 = shl %3, 2:i16
			%5:i16 = xor %4, %state
			%6:i16 = add %5, %2
			%7:i16 = rotl %6, 3:i16
			%8:i16 = xor %7, %1
			infer %8
		`,
		workload: func(rng *rand.Rand) WorkloadEnv {
			return WorkloadEnv{
				"code":  uint64(rng.Intn(1 << 16)),
				"state": uint64(rng.Intn(1 << 16)),
			}
		},
	},
	{
		// CRC-and-match step; straight-line with nothing precise-only
		// (the paper's gzip deltas are within noise).
		Name: "gzip compress",
		Source: `
			%byte:i16 = var (range=[0,256))
			%crc:i16 = var
			%len:i16 = var (range=[3,259))
			%0:i16 = xor %crc, %byte
			%1:i16 = lshr %0, 4:i16
			%2:i16 = xor %1, %crc
			%3:i16 = mul %2, 33:i16
			%4:i16 = add %3, %byte
			%5:i16 = rotl %4, 9:i16
			%6:i16 = xor %5, %2
			%7:i16 = add %6, %len
			infer %7
		`,
		workload: func(rng *rand.Rand) WorkloadEnv {
			return WorkloadEnv{
				"byte": uint64(rng.Intn(256)),
				"crc":  uint64(rng.Intn(1 << 16)),
				"len":  uint64(3 + rng.Intn(256)),
			}
		},
	},
	{
		// Output-window copy arithmetic: nothing precise-only.
		Name: "gzip decompress",
		Source: `
			%dist:i16 = var
			%pos:i16 = var
			%0:i16 = sub %pos, %dist
			%1:i16 = and %0, 32767:i16
			%2:i16 = add %1, %pos
			%3:i16 = xor %2, %dist
			%4:i16 = rotr %3, 5:i16
			%5:i16 = add %4, %0
			infer %5
		`,
		workload: func(rng *rand.Rand) WorkloadEnv {
			return WorkloadEnv{
				"dist": uint64(rng.Intn(1 << 15)),
				"pos":  uint64(rng.Intn(1 << 16)),
			}
		},
	},
	{
		// Bitboard evaluation: popcount scoring plus the §4.3 x & -x
		// lowest-set-bit idiom; masking that bit against itself minus
		// one is always zero, which only the oracle proves (the isolated
		// bit itself stays live in the final mix).
		Name: "Stockfish",
		Source: `
			%bb:i16 = var (range=[1,0))
			%occ:i16 = var
			%w:i16 = var (range=[0,64))
			%0:i16 = and %bb, %occ
			%1:i16 = ctpop %0
			%2:i16 = mul %1, 13:i16
			%3:i16 = add %2, %w
			%e0:i16 = xor %3, %occ
			%e1:i16 = rotl %e0, 6:i16
			%e2:i16 = add %e1, %1
			%e3:i16 = xor %e2, %w
			%e4:i16 = add %e3, %0
			%e5:i16 = rotr %e4, 2:i16
			%e6:i16 = xor %e5, %3
			%e7:i16 = add %e6, %e1
			%e8:i16 = xor %e7, %e4
			%e9:i16 = rotl %e8, 11:i16
			%e10:i16 = add %e9, %e2
			%e11:i16 = xor %e10, %e5
			%e12:i16 = add %e11, %e0
			%e13:i16 = rotr %e12, 3:i16
			%e14:i16 = xor %e13, %e9
			%e15:i16 = add %e14, %e6
			%e16:i16 = xor %e15, %e10
			%e17:i16 = rotl %e16, 4:i16
			%e18:i16 = add %e17, %e13
			%e19:i16 = xor %e18, %e14
			%e20:i16 = add %e19, %e3
			%e21:i16 = rotr %e20, 9:i16
			%e22:i16 = xor %e21, %e17
			%e23:i16 = add %e22, %e19
			%e24:i16 = xor %e23, %e20
			%e25:i16 = rotl %e24, 7:i16
			%e26:i16 = add %e25, %e21
			%e27:i16 = xor %e26, %e22
			%e28:i16 = add %e27, %e24
			%e29:i16 = rotr %e28, 1:i16
			%e30:i16 = xor %e29, %e25
			%e31:i16 = add %e30, %e26
			%e32:i16 = xor %e31, %e28
			%e33:i16 = rotl %e32, 10:i16
			%e34:i16 = add %e33, %e29
			%e35:i16 = xor %e34, %e31
			%4:i16 = sub 0:i16, %bb
			%5:i16 = and %bb, %4
			%6:i16 = sub %5, 1:i16
			%7:i16 = and %5, %6
			%8:i16 = add %e35, %7
			%9:i16 = rotl %8, 2:i16
			%10:i16 = xor %9, %5
			%11:i16 = add %10, %6
			infer %11
		`,
		workload: func(rng *rand.Rand) WorkloadEnv {
			return WorkloadEnv{
				"bb":  uint64(1 + rng.Intn((1<<16)-1)),
				"occ": uint64(rng.Intn(1 << 16)),
				"w":   uint64(rng.Intn(64)),
			}
		},
	},
	{
		// Varint decode plus rowid hashing; the remainder's sign test
		// folds only with the maximally precise [-7,8) range (the
		// baseline's LLVM-8-shaped [-8,8) cannot exclude -8, §4.5).
		Name: "SQLite",
		Source: `
			%b0:i16 = var (range=[0,128))
			%b1:i16 = var (range=[0,128))
			%key:i16 = var
			%0:i16 = shl %b0, 7:i16
			%1:i16 = or %0, %b1
			%2:i16 = add %1, %key
			%3:i16 = urem %2, 1021:i16
			%4:i16 = xor %3, %1
			%5:i16 = add %4, %key
			%h0:i16 = rotl %5, 3:i16
			%h1:i16 = xor %h0, %3
			%h2:i16 = add %h1, %1
			%h3:i16 = rotr %h2, 6:i16
			%h4:i16 = xor %h3, %h0
			%h5:i16 = add %h4, %4
			%r0:i16 = srem %2, 8:i16
			; low-bit cluster (§4.2.1), foldable only with precise facts
			%p0:i16 = and 1:i16, %2
			%p1:i16 = add %2, %p0
			%p2:i16 = and %p1, 1:i16
			%p3:i16 = or %h5, %p2
			%s0:i1 = slt %r0, -7:i16
			%s1:i16 = select %s0, 0:i16, %p3
			%6:i16 = rotl %s1, 4:i16
			%7:i16 = xor %6, %r0
			infer %7
		`,
		workload: func(rng *rand.Rand) WorkloadEnv {
			return WorkloadEnv{
				"b0":  uint64(rng.Intn(128)),
				"b1":  uint64(rng.Intn(128)),
				"key": uint64(rng.Intn(1 << 16)),
			}
		},
	},
}

// Table2Row is one (benchmark, machine) measurement.
type Table2Row struct {
	Benchmark       string
	Machine         string
	BaselineCycles  int64
	PreciseCycles   int64
	SpeedupPct      float64
	BaselineOptTime time.Duration
	PreciseOptTime  time.Duration
}

// RunTable2 optimizes every kernel with baseline and oracle facts,
// validates both against each other on the workload, and measures cycle
// counts under both machine models.
func RunTable2(budget int64, workloadSize int) ([]Table2Row, error) {
	var rows []Table2Row
	machines := []Machine{AMD(), Intel()}
	for _, k := range Kernels {
		f := k.F()
		envs := k.Workload(workloadSize)

		t0 := time.Now()
		baseOpt := Optimize(f, NewBaselineSource(f))
		baseTime := time.Since(t0)

		t0 = time.Now()
		precOpt := Optimize(f, NewOracleSource(f, budget))
		precTime := time.Since(t0)

		for _, m := range machines {
			bc, bOut, err := m.RunWorkload(baseOpt, envs)
			if err != nil {
				return nil, fmt.Errorf("%s/%s baseline: %w", k.Name, m.Name, err)
			}
			pc, pOut, err := m.RunWorkload(precOpt, envs)
			if err != nil {
				return nil, fmt.Errorf("%s/%s precise: %w", k.Name, m.Name, err)
			}
			for i := range bOut {
				if bOut[i] != pOut[i] {
					return nil, fmt.Errorf("%s: optimizers disagree on input %d: %d vs %d",
						k.Name, i, bOut[i], pOut[i])
				}
			}
			speedup := 0.0
			if pc > 0 {
				speedup = 100 * (float64(bc) - float64(pc)) / float64(pc)
			}
			rows = append(rows, Table2Row{
				Benchmark:       k.Name,
				Machine:         m.Name,
				BaselineCycles:  bc,
				PreciseCycles:   pc,
				SpeedupPct:      speedup,
				BaselineOptTime: baseTime,
				PreciseOptTime:  precTime,
			})
		}
	}
	return rows, nil
}
