// Package opt is the Table 2 substrate: a small fact-driven middle-end
// plus a cycle-model interpreter. The paper built an LLVM 8 whose forward
// bit-level analyses were replaced by the maximally precise oracle and
// measured generated-code quality on bzip2, gzip, Stockfish, and SQLite;
// here the same comparison runs between the LLVM-port facts (baseline) and
// oracle facts (precise) over synthetic integer kernels named after those
// applications, executed under per-machine cycle models.
package opt

import (
	"dfcheck/internal/apint"
	"dfcheck/internal/constrange"
	"dfcheck/internal/ir"
	"dfcheck/internal/knownbits"
	"dfcheck/internal/llvmport"
	"dfcheck/internal/oracle"
	"dfcheck/internal/solver"
)

// FactSource supplies per-instruction dataflow facts to the optimizer.
type FactSource interface {
	KnownBits(n *ir.Inst) knownbits.Bits
	Range(n *ir.Inst) constrange.Range
	// Demanded returns the bits of n that can influence the function's
	// result (bit-level liveness from the root).
	Demanded(n *ir.Inst) apint.Int
}

// BaselineSource answers from the LLVM-port analyses — the stock compiler.
type BaselineSource struct {
	fa       *llvmport.Facts
	demanded map[*ir.Inst]apint.Int
}

// NewBaselineSource analyzes f with the (clean) LLVM port.
func NewBaselineSource(f *ir.Function) *BaselineSource {
	var an llvmport.Analyzer
	fa := an.Analyze(f)
	return &BaselineSource{fa: fa, demanded: fa.InstDemandedBits()}
}

// KnownBits implements FactSource.
func (s *BaselineSource) KnownBits(n *ir.Inst) knownbits.Bits { return s.fa.KnownBitsOf(n) }

// Range implements FactSource.
func (s *BaselineSource) Range(n *ir.Inst) constrange.Range { return s.fa.RangeOf(n) }

// Demanded implements FactSource.
func (s *BaselineSource) Demanded(n *ir.Inst) apint.Int {
	if d, ok := s.demanded[n]; ok {
		return d
	}
	return apint.AllOnes(n.Width)
}

// OracleSource answers from the solver-based oracle, running it once per
// queried instruction (each interior value becomes the root of its own
// query). This is the "very slow" compiler of §4.6.
type OracleSource struct {
	f        *ir.Function
	budget   int64
	vars     []*ir.Inst
	kbs      map[*ir.Inst]knownbits.Bits
	rgs      map[*ir.Inst]constrange.Range
	demanded map[*ir.Inst]apint.Int
}

// NewOracleSource prepares oracle-backed facts for f's instructions. The
// per-instruction demanded masks come from the LLVM-port backward pass
// (sound; the oracle's Algorithm 2 defines demanded bits per input
// variable, not per interior value).
func NewOracleSource(f *ir.Function, budget int64) *OracleSource {
	var an llvmport.Analyzer
	return &OracleSource{
		f:        f,
		budget:   budget,
		vars:     f.Vars,
		kbs:      make(map[*ir.Inst]knownbits.Bits),
		rgs:      make(map[*ir.Inst]constrange.Range),
		demanded: an.Analyze(f).InstDemandedBits(),
	}
}

// Demanded implements FactSource.
func (s *OracleSource) Demanded(n *ir.Inst) apint.Int {
	if d, ok := s.demanded[n]; ok {
		return d
	}
	return apint.AllOnes(n.Width)
}

// subFunction wraps an interior instruction as its own inferable root,
// keeping only the variables it reaches.
func (s *OracleSource) subFunction(n *ir.Inst) *ir.Function {
	reach := make(map[*ir.Inst]bool)
	var visit func(m *ir.Inst)
	visit = func(m *ir.Inst) {
		if reach[m] {
			return
		}
		reach[m] = true
		for _, a := range m.Args {
			visit(a)
		}
	}
	visit(n)
	var vars []*ir.Inst
	for _, v := range s.vars {
		if reach[v] {
			vars = append(vars, v)
		}
	}
	return &ir.Function{Root: n, Vars: vars}
}

// KnownBits implements FactSource.
func (s *OracleSource) KnownBits(n *ir.Inst) knownbits.Bits {
	if kb, ok := s.kbs[n]; ok {
		return kb
	}
	sub := s.subFunction(n)
	res := oracle.KnownBits(solver.NewSAT(sub, s.budget), sub)
	kb := res.Bits
	if !res.Feasible {
		// Dead code: any fact is sound; stay neutral for the optimizer.
		kb = knownbits.Unknown(n.Width)
	}
	s.kbs[n] = kb
	return kb
}

// Range implements FactSource. Maximally precise known bits already pin
// every value the optimizer could fold through ranges — a comparison that
// any range analysis decides is a constant i1, which the known-bits oracle
// proves directly — so the expensive range synthesis is skipped and the
// known-bits fact is converted instead.
func (s *OracleSource) Range(n *ir.Inst) constrange.Range {
	if rg, ok := s.rgs[n]; ok {
		return rg
	}
	rg := constrange.Full(n.Width)
	if kb := s.KnownBits(n); kb.IsConstant() {
		rg = constrange.Single(kb.Constant())
	}
	s.rgs[n] = rg
	return rg
}
