package opt

import (
	"fmt"

	"dfcheck/internal/eval"
	"dfcheck/internal/ir"
)

// Machine is a per-operation cycle model standing in for the paper's two
// benchmark hosts (an AMD Threadripper 2990WX and an Intel Core
// i7-5820K). Latencies are in the right relative regime: logic ops are
// cheap, multiplies cost a few cycles, divisions tens.
type Machine struct {
	Name  string
	costs map[ir.Op]int64
	deflt int64
}

// AMD returns the Threadripper-flavored cost model.
func AMD() Machine {
	return Machine{
		Name:  "AMD",
		deflt: 1,
		costs: map[ir.Op]int64{
			ir.OpMul:        3,
			ir.OpUDiv:       20,
			ir.OpSDiv:       22,
			ir.OpURem:       21,
			ir.OpSRem:       23,
			ir.OpCtPop:      1,
			ir.OpCttz:       1,
			ir.OpCtlz:       1,
			ir.OpBSwap:      1,
			ir.OpBitReverse: 4,
			ir.OpSelect:     1,
			ir.OpRotL:       1,
			ir.OpRotR:       1,
		},
	}
}

// Intel returns the Core-i7-flavored cost model: slightly slower divides
// and multiplies, marginally different intrinsics.
func Intel() Machine {
	return Machine{
		Name:  "Intel",
		deflt: 1,
		costs: map[ir.Op]int64{
			ir.OpMul:        4,
			ir.OpUDiv:       26,
			ir.OpSDiv:       28,
			ir.OpURem:       27,
			ir.OpSRem:       29,
			ir.OpCtPop:      1,
			ir.OpCttz:       2,
			ir.OpCtlz:       2,
			ir.OpBSwap:      1,
			ir.OpBitReverse: 5,
			ir.OpSelect:     1,
			ir.OpRotL:       1,
			ir.OpRotR:       1,
		},
	}
}

// Cost returns the cycle cost of one instruction.
func (m Machine) Cost(n *ir.Inst) int64 {
	if n.IsConst() || n.IsVar() {
		return 0
	}
	if c, ok := m.costs[n.Op]; ok {
		return c
	}
	return m.deflt
}

// StaticCycles sums the cost of every instruction — the cycle count of one
// straight-line execution of the kernel.
func (m Machine) StaticCycles(f *ir.Function) int64 {
	var total int64
	for _, n := range f.Insts() {
		total += m.Cost(n)
	}
	return total
}

// RunWorkload executes f on every input environment, charging the static
// cycle cost per execution, and returns (total cycles, outputs). Inputs
// whose execution is ill-defined are an error: workloads must exercise
// defined behaviour only.
func (m Machine) RunWorkload(f *ir.Function, envs []WorkloadEnv) (int64, []uint64, error) {
	per := m.StaticCycles(f)
	outs := make([]uint64, len(envs))
	for i, we := range envs {
		env, err := bind(f, we)
		if err != nil {
			return 0, nil, err
		}
		v, ok := eval.Eval(f, env)
		if !ok {
			return 0, nil, fmt.Errorf("opt: workload input %d triggers UB", i)
		}
		outs[i] = v.Uint64()
	}
	return per * int64(len(envs)), outs, nil
}

// WorkloadEnv is one kernel input, by variable name.
type WorkloadEnv map[string]uint64

func bind(f *ir.Function, we WorkloadEnv) (eval.Env, error) {
	return eval.EnvFromNames(f, we)
}
