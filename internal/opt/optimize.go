package opt

import (
	"dfcheck/internal/apint"
	"dfcheck/internal/constrange"
	"dfcheck/internal/ir"
)

// Optimize rewrites f using facts from src: instructions whose fact pins
// them to a single value fold to constants, comparisons decided by ranges
// fold, algebraic identities simplify, and everything unreachable from the
// new root disappears. The rewrite refines the program: on every input
// where f executes without UB, the result is unchanged (it may define
// previously-UB inputs, which is the allowed direction).
func Optimize(f *ir.Function, src FactSource) *ir.Function {
	b := ir.NewBuilder()
	rewritten := make(map[*ir.Inst]*ir.Inst)
	for _, n := range f.Insts() {
		rewritten[n] = rewrite(b, n, rewritten, src)
	}
	return b.Function(rewritten[f.Root])
}

func rewrite(b *ir.Builder, n *ir.Inst, done map[*ir.Inst]*ir.Inst, src FactSource) *ir.Inst {
	switch n.Op {
	case ir.OpConst:
		return b.Const(n.Val)
	case ir.OpVar:
		if n.HasRange {
			return b.VarRange(n.Name, n.Width, n.Lo, n.Hi)
		}
		return b.Var(n.Name, n.Width)
	}

	args := make([]*ir.Inst, len(n.Args))
	for i, a := range n.Args {
		args[i] = done[a]
	}

	// Facts about the original instruction pin the rewritten one: the
	// rewrite so far is value-preserving on well-defined inputs.
	if kb := src.KnownBits(n); kb.IsConstant() {
		return b.Const(kb.Constant())
	}
	if rg := src.Range(n); rg.IsSingle() {
		return b.Const(rg.SingleValue())
	}

	// Comparison decided by operand ranges.
	if n.Op.IsCmp() {
		if res, known := constrange.ICmpDecide(predOf(n.Op), src.Range(n.Args[0]), src.Range(n.Args[1])); known {
			return b.Const(boolConst(res))
		}
	}

	// All-constant operands: fold through the interpreter when defined.
	if folded, ok := foldConstants(n, args); ok {
		return b.Const(folded)
	}

	// Algebraic identities (checked on the rewritten operands).
	if simplified := simplify(b, n, args, src); simplified != nil {
		return simplified
	}

	if n.Op.IsCast() {
		return b.BuildCast(n.Op, n.Width, args[0])
	}
	return b.Build(n.Op, n.Flags, args...)
}

func predOf(op ir.Op) constrange.Pred {
	switch op {
	case ir.OpEq:
		return constrange.EQ
	case ir.OpNe:
		return constrange.NE
	case ir.OpULT:
		return constrange.ULT
	case ir.OpULE:
		return constrange.ULE
	case ir.OpSLT:
		return constrange.SLT
	case ir.OpSLE:
		return constrange.SLE
	}
	panic("opt: not a comparison")
}

func boolConst(v bool) apint.Int {
	if v {
		return apint.One(1)
	}
	return apint.Zero(1)
}

// foldConstants evaluates an instruction whose rewritten operands are all
// literals, when the evaluation is well-defined.
func foldConstants(n *ir.Inst, args []*ir.Inst) (apint.Int, bool) {
	for _, a := range args {
		if !a.IsConst() {
			return apint.Int{}, false
		}
	}
	vals := make([]apint.Int, len(args))
	for i, a := range args {
		vals[i] = a.ConstValue()
	}
	return evalConst(n, vals)
}

// simplify applies algebraic identities; nil means no rule fired.
func simplify(b *ir.Builder, n *ir.Inst, args []*ir.Inst, src FactSource) *ir.Inst {
	isZero := func(a *ir.Inst) bool { return a.IsConst() && a.ConstValue().IsZero() }
	isOne := func(a *ir.Inst) bool { return a.IsConst() && a.ConstValue().IsOne() }
	isAllOnes := func(a *ir.Inst) bool { return a.IsConst() && a.ConstValue().IsAllOnes() }

	if folded := simplifyDemanded(n, args, src); folded != nil {
		return folded
	}
	if folded := reassociateConst(b, n, args); folded != nil {
		return folded
	}
	if folded := shiftMaskPair(b, n, args); folded != nil {
		return folded
	}
	if folded := castPair(b, n, args); folded != nil {
		return folded
	}

	switch n.Op {
	case ir.OpAdd, ir.OpOr, ir.OpXor:
		if isZero(args[0]) {
			return args[1]
		}
		if isZero(args[1]) {
			return args[0]
		}
		if n.Op == ir.OpXor && args[0] == args[1] {
			return b.Const(apint.Zero(n.Width))
		}
		if n.Op == ir.OpOr {
			if isAllOnes(args[0]) || isAllOnes(args[1]) {
				return b.Const(apint.AllOnes(n.Width))
			}
			// x | c == x when every set bit of c is already known set.
			for i, a := range args {
				if a.IsConst() {
					other := n.Args[1-i]
					if a.ConstValue().And(src.KnownBits(other).One.Not()).IsZero() {
						return args[1-i]
					}
				}
			}
		}
	case ir.OpSub:
		if isZero(args[1]) {
			return args[0]
		}
		if args[0] == args[1] {
			return b.Const(apint.Zero(n.Width))
		}
	case ir.OpMul:
		if isZero(args[0]) || isZero(args[1]) {
			return b.Const(apint.Zero(n.Width))
		}
		if isOne(args[0]) {
			return args[1]
		}
		if isOne(args[1]) {
			return args[0]
		}
	case ir.OpAnd:
		if isZero(args[0]) || isZero(args[1]) {
			return b.Const(apint.Zero(n.Width))
		}
		if isAllOnes(args[0]) {
			return args[1]
		}
		if isAllOnes(args[1]) {
			return args[0]
		}
		if args[0] == args[1] {
			return args[0]
		}
		// x & c == x when every bit cleared by c is already known zero.
		for i, a := range args {
			if a.IsConst() {
				other := n.Args[1-i]
				if a.ConstValue().Not().And(src.KnownBits(other).Zero.Not()).IsZero() {
					return args[1-i]
				}
			}
		}
	case ir.OpShl, ir.OpLShr, ir.OpAShr:
		if isZero(args[1]) {
			return args[0]
		}
		if isZero(args[0]) {
			return b.Const(apint.Zero(n.Width))
		}
	case ir.OpUDiv, ir.OpSDiv:
		if isOne(args[1]) {
			return args[0]
		}
	case ir.OpURem:
		if isOne(args[1]) {
			return b.Const(apint.Zero(n.Width))
		}
	case ir.OpSelect:
		if args[0].IsConst() {
			if args[0].ConstValue().IsOne() {
				return args[1]
			}
			return args[2]
		}
		if args[1] == args[2] {
			return args[1]
		}
	}
	return nil
}

// simplifyDemanded is a SimplifyDemandedBits-lite: when one operand of an
// instruction cannot influence any bit the function's result observes
// (per the backward demanded-bits masks), the instruction collapses to
// its other operand. The replacement may change the instruction's
// non-demanded bits, which by construction no user observes.
func simplifyDemanded(n *ir.Inst, args []*ir.Inst, src FactSource) *ir.Inst {
	if n.Flags != 0 {
		return nil // flags make overflow on dead bits observable as poison
	}
	demanded := src.Demanded(n)
	if demanded.IsAllOnes() {
		return nil // the common case: everything observed
	}
	switch n.Op {
	case ir.OpOr, ir.OpXor:
		// An operand whose settable bits miss the demanded mask is inert.
		for i := 0; i < 2; i++ {
			other := src.KnownBits(n.Args[1-i])
			if demanded.And(other.UMax()).IsZero() {
				return args[i]
			}
		}
	case ir.OpAnd:
		// An operand that is known one on every demanded bit passes the
		// other operand through.
		for i := 0; i < 2; i++ {
			other := src.KnownBits(n.Args[1-i])
			if demanded.And(other.One).Eq(demanded) {
				return args[i]
			}
		}
	case ir.OpAdd:
		// Carries travel upward only: an operand whose lowest possible
		// set bit lies above every demanded bit cannot affect them.
		high := demanded.Width() - demanded.CountLeadingZeros() // highest demanded bit + 1
		for i := 0; i < 2; i++ {
			other := src.KnownBits(n.Args[1-i])
			if other.CountMinTrailingZeros() >= high {
				return args[i]
			}
		}
	}
	return nil
}

// reassociateConst folds (x op c1) op c2 into x op (c1 op c2) for the
// associative-commutative ops, dropping poison flags (which only widens
// the set of defined inputs — the allowed refinement direction).
func reassociateConst(b *ir.Builder, n *ir.Inst, args []*ir.Inst) *ir.Inst {
	switch n.Op {
	case ir.OpAdd, ir.OpAnd, ir.OpOr, ir.OpXor:
	default:
		return nil
	}
	if n.Flags != 0 {
		return nil
	}
	for i := 0; i < 2; i++ {
		outer, inner := args[i], args[1-i]
		if !outer.IsConst() || inner.Op != n.Op || inner.Flags != 0 {
			continue
		}
		for j := 0; j < 2; j++ {
			if !inner.Args[j].IsConst() {
				continue
			}
			c1 := inner.Args[j].ConstValue()
			c2 := outer.ConstValue()
			x := inner.Args[1-j]
			var combined apint.Int
			switch n.Op {
			case ir.OpAdd:
				combined = c1.Add(c2)
			case ir.OpAnd:
				combined = c1.And(c2)
			case ir.OpOr:
				combined = c1.Or(c2)
			case ir.OpXor:
				combined = c1.Xor(c2)
			}
			// Apply the identity the combined constant may expose.
			switch {
			case combined.IsZero() && n.Op != ir.OpAnd:
				return x
			case combined.IsZero() && n.Op == ir.OpAnd:
				return b.Const(combined)
			case combined.IsAllOnes() && n.Op == ir.OpAnd:
				return x
			case combined.IsAllOnes() && n.Op == ir.OpOr:
				return b.Const(combined)
			}
			return b.Build(n.Op, 0, x, b.Const(combined))
		}
	}
	return nil
}

// shiftMaskPair rewrites (x << c) >> c and (x >> c) << c into single AND
// masks (always valid for logical shifts at matching constant amounts).
func shiftMaskPair(b *ir.Builder, n *ir.Inst, args []*ir.Inst) *ir.Inst {
	w := n.Width
	if n.Flags != 0 {
		return nil
	}
	constAmount := func(m *ir.Inst) (uint, bool) {
		if m.Args[1].IsConst() {
			c := m.Args[1].ConstValue().Uint64()
			if c < uint64(w) {
				return uint(c), true
			}
		}
		return 0, false
	}
	switch n.Op {
	case ir.OpLShr:
		inner := args[0]
		if inner.Op == ir.OpShl && inner.Flags == 0 {
			cOut, ok1 := constAmount(n)
			cIn, ok2 := constAmount(inner)
			if ok1 && ok2 && cOut == cIn {
				mask := apint.AllOnes(w).LShr(cOut)
				return b.And(inner.Args[0], b.Const(mask))
			}
		}
	case ir.OpShl:
		inner := args[0]
		if inner.Op == ir.OpLShr && inner.Flags == 0 {
			cOut, ok1 := constAmount(n)
			cIn, ok2 := constAmount(inner)
			if ok1 && ok2 && cOut == cIn {
				mask := apint.AllOnes(w).Shl(cOut)
				return b.And(inner.Args[0], b.Const(mask))
			}
		}
	}
	return nil
}

// castPair collapses chained width casts: trunc(zext/sext x) back to (or
// below) the source width, and nested exts/truncs of the same kind.
func castPair(b *ir.Builder, n *ir.Inst, args []*ir.Inst) *ir.Inst {
	if !n.Op.IsCast() {
		return nil
	}
	inner := args[0]
	switch n.Op {
	case ir.OpTrunc:
		switch inner.Op {
		case ir.OpZExt, ir.OpSExt:
			src := inner.Args[0]
			switch {
			case n.Width == src.Width:
				return src
			case n.Width < src.Width:
				return b.Trunc(src, n.Width)
			}
			// Truncating an extension to an intermediate width keeps
			// the same extension kind from the source.
			if inner.Op == ir.OpZExt {
				return b.ZExt(src, n.Width)
			}
			return b.SExt(src, n.Width)
		case ir.OpTrunc:
			return b.Trunc(inner.Args[0], n.Width)
		}
	case ir.OpZExt:
		if inner.Op == ir.OpZExt {
			return b.ZExt(inner.Args[0], n.Width)
		}
	case ir.OpSExt:
		if inner.Op == ir.OpSExt {
			return b.SExt(inner.Args[0], n.Width)
		}
		if inner.Op == ir.OpZExt {
			// zext already pinned the top bit to zero: sign extension
			// of it is zero extension from the original source.
			return b.ZExt(inner.Args[0], n.Width)
		}
	}
	return nil
}

// evalConst mirrors eval's per-instruction semantics for literal operands.
func evalConst(n *ir.Inst, v []apint.Int) (apint.Int, bool) {
	switch n.Op {
	case ir.OpAdd:
		if n.Flags&ir.FlagNSW != 0 && v[0].SAddOverflow(v[1]) {
			return apint.Int{}, false
		}
		if n.Flags&ir.FlagNUW != 0 && v[0].UAddOverflow(v[1]) {
			return apint.Int{}, false
		}
		return v[0].Add(v[1]), true
	case ir.OpSub:
		if n.Flags&ir.FlagNSW != 0 && v[0].SSubOverflow(v[1]) {
			return apint.Int{}, false
		}
		if n.Flags&ir.FlagNUW != 0 && v[0].USubOverflow(v[1]) {
			return apint.Int{}, false
		}
		return v[0].Sub(v[1]), true
	case ir.OpMul:
		if n.Flags&ir.FlagNSW != 0 && v[0].SMulOverflow(v[1]) {
			return apint.Int{}, false
		}
		if n.Flags&ir.FlagNUW != 0 && v[0].UMulOverflow(v[1]) {
			return apint.Int{}, false
		}
		return v[0].Mul(v[1]), true
	case ir.OpUDiv:
		if v[1].IsZero() {
			return apint.Int{}, false
		}
		if n.Flags&ir.FlagExact != 0 && !v[0].URem(v[1]).IsZero() {
			return apint.Int{}, false
		}
		return v[0].UDiv(v[1]), true
	case ir.OpURem:
		if v[1].IsZero() {
			return apint.Int{}, false
		}
		return v[0].URem(v[1]), true
	case ir.OpSDiv:
		if v[1].IsZero() || (v[0].IsMinSigned() && v[1].IsAllOnes()) {
			return apint.Int{}, false
		}
		if n.Flags&ir.FlagExact != 0 && !v[0].SRem(v[1]).IsZero() {
			return apint.Int{}, false
		}
		return v[0].SDiv(v[1]), true
	case ir.OpSRem:
		if v[1].IsZero() || (v[0].IsMinSigned() && v[1].IsAllOnes()) {
			return apint.Int{}, false
		}
		return v[0].SRem(v[1]), true
	case ir.OpAnd:
		return v[0].And(v[1]), true
	case ir.OpOr:
		return v[0].Or(v[1]), true
	case ir.OpXor:
		return v[0].Xor(v[1]), true
	case ir.OpShl:
		if v[1].Uint64() >= uint64(n.Width) {
			return apint.Int{}, false
		}
		sh := uint(v[1].Uint64())
		if n.Flags&ir.FlagNSW != 0 && v[0].SShlOverflow(sh) {
			return apint.Int{}, false
		}
		if n.Flags&ir.FlagNUW != 0 && v[0].UShlOverflow(sh) {
			return apint.Int{}, false
		}
		return v[0].Shl(sh), true
	case ir.OpLShr:
		if v[1].Uint64() >= uint64(n.Width) {
			return apint.Int{}, false
		}
		sh := uint(v[1].Uint64())
		if n.Flags&ir.FlagExact != 0 && v[0].LShr(sh).Shl(sh).Ne(v[0]) {
			return apint.Int{}, false
		}
		return v[0].LShr(sh), true
	case ir.OpAShr:
		if v[1].Uint64() >= uint64(n.Width) {
			return apint.Int{}, false
		}
		sh := uint(v[1].Uint64())
		if n.Flags&ir.FlagExact != 0 && v[0].AShr(sh).Shl(sh).Ne(v[0]) {
			return apint.Int{}, false
		}
		return v[0].AShr(sh), true
	case ir.OpEq:
		return boolConst(v[0].Eq(v[1])), true
	case ir.OpNe:
		return boolConst(v[0].Ne(v[1])), true
	case ir.OpULT:
		return boolConst(v[0].ULT(v[1])), true
	case ir.OpULE:
		return boolConst(v[0].ULE(v[1])), true
	case ir.OpSLT:
		return boolConst(v[0].SLT(v[1])), true
	case ir.OpSLE:
		return boolConst(v[0].SLE(v[1])), true
	case ir.OpSelect:
		if v[0].IsOne() {
			return v[1], true
		}
		return v[2], true
	case ir.OpZExt:
		return v[0].ZExt(n.Width), true
	case ir.OpSExt:
		return v[0].SExt(n.Width), true
	case ir.OpTrunc:
		return v[0].Trunc(n.Width), true
	case ir.OpCtPop:
		return apint.New(n.Width, uint64(v[0].PopCount())), true
	case ir.OpBSwap:
		return v[0].ByteSwap(), true
	case ir.OpBitReverse:
		return v[0].ReverseBits(), true
	case ir.OpCttz:
		return apint.New(n.Width, uint64(v[0].CountTrailingZeros())), true
	case ir.OpCtlz:
		return apint.New(n.Width, uint64(v[0].CountLeadingZeros())), true
	case ir.OpRotL:
		return v[0].RotL(uint(v[1].Uint64() % uint64(n.Width))), true
	case ir.OpRotR:
		return v[0].RotR(uint(v[1].Uint64() % uint64(n.Width))), true
	case ir.OpUMin:
		return v[0].UMin(v[1]), true
	case ir.OpUMax:
		return v[0].UMax(v[1]), true
	case ir.OpSMin:
		return v[0].SMin(v[1]), true
	case ir.OpSMax:
		return v[0].SMax(v[1]), true
	case ir.OpAbs:
		return v[0].AbsValue(), true
	case ir.OpFshl, ir.OpFshr:
		s := uint(v[2].Uint64() % uint64(n.Width))
		if n.Op == ir.OpFshl {
			if s == 0 {
				return v[0], true
			}
			return v[0].Shl(s).Or(v[1].LShr(n.Width - s)), true
		}
		if s == 0 {
			return v[1], true
		}
		return v[0].Shl(n.Width - s).Or(v[1].LShr(s)), true
	case ir.OpUAddO:
		return boolConst(v[0].UAddOverflow(v[1])), true
	case ir.OpSAddO:
		return boolConst(v[0].SAddOverflow(v[1])), true
	case ir.OpUSubO:
		return boolConst(v[0].USubOverflow(v[1])), true
	case ir.OpSSubO:
		return boolConst(v[0].SSubOverflow(v[1])), true
	case ir.OpUMulO:
		return boolConst(v[0].UMulOverflow(v[1])), true
	case ir.OpSMulO:
		return boolConst(v[0].SMulOverflow(v[1])), true
	}
	return apint.Int{}, false
}
