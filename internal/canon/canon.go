// Package canon computes a deterministic canonical form and stable
// structural hash for ir.Function DAGs. Two expressions that differ only
// in input variable names or in the operand order of commutative
// instructions canonicalize to the same form and hash.
//
// This is the keying layer for the duplication-aware result cache
// (internal/rescache): the paper's corpus statistics (§3.1) show that
// 71.6% of harvested expressions recur, so the comparison pipeline groups
// a corpus by canonical key and analyzes each unique expression once —
// the same trick the original artifact played with a Redis store of
// solver results keyed by the Souper text.
//
// Canonicalization proceeds in three steps:
//
//  1. Color refinement. Every instruction gets a structural color: leaves
//     from their width (plus value for constants and range metadata for
//     variables, but never the variable name), interior nodes from their
//     op/width/flags and child colors, with commutative operand colors
//     sorted. Variable colors are then refined Weisfeiler–Leman-style
//     from the multiset of their use sites (user color plus operand slot,
//     with commutative slots collapsed), so that variables playing
//     different roles — e.g. the two inputs of a sub — get distinct
//     colors even when their widths agree. Refinement repeats until the
//     variable partition stabilizes.
//  2. Normalization. Operands of commutative instructions are ordered by
//     color (ties keep the original order, which only happens for
//     genuinely interchangeable operands).
//  3. Alpha-renaming. The DAG is rebuilt through a fresh ir.Builder in
//     normalized traversal order, renaming inputs x0, x1, ... by first
//     occurrence while preserving widths, flags, and range [lo,hi)
//     metadata.
//
// The canonical Key is the Souper text of the rebuilt function — an
// exact structural identity, immune to hash collisions — and Hash is its
// FNV-64a digest for cheap grouping and statistics.
package canon

import (
	"fmt"
	"hash/fnv"
	"sort"

	"dfcheck/internal/ir"
)

// Canon is the canonicalization of one function.
type Canon struct {
	// F is the canonical function: alpha-renamed inputs, commutative
	// operands in canonical order, hash-consed through a fresh builder.
	F *ir.Function
	// Key is the canonical Souper text, an exact structural identity.
	Key string
	// Hash is the FNV-64a digest of Key.
	Hash uint64

	toCanon map[string]string // original variable name -> canonical
	toOrig  map[string]string // canonical variable name -> original
}

// CanonName maps an original input variable name to its canonical name
// (x0, x1, ...). Unknown names map to themselves.
func (c *Canon) CanonName(orig string) string {
	if n, ok := c.toCanon[orig]; ok {
		return n
	}
	return orig
}

// OrigName maps a canonical input variable name back to the original.
// Unknown names map to themselves.
func (c *Canon) OrigName(canonical string) string {
	if n, ok := c.toOrig[canonical]; ok {
		return n
	}
	return canonical
}

// Hash-mixing seeds, one per leaf kind so a var and a const of equal
// width never start from the same color.
const (
	seedVar   = 0x7c6f_76a1_9e4b_0d31
	seedConst = 0x51af_83e2_44c9_7b15
	seedOp    = 0x2bd8_1f3c_66e0_a947
	seedUse   = 0x9137_c2ab_5d08_ef63
)

// splitmix is the splitmix64 finalizer; it gives the cheap FNV-style
// folding below enough diffusion that child-color permutations and
// near-identical constants land in different colors.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func mix(h, v uint64) uint64 { return splitmix(h ^ splitmix(v)) }

// use records one operand position of a user instruction.
type use struct {
	user *ir.Inst
	slot int
}

// Canonicalize computes the canonical form, key, and hash of f. The input
// function is not modified.
func Canonicalize(f *ir.Function) *Canon {
	nodes := f.Insts() // topological: operands before users
	users := make(map[*ir.Inst][]use)
	var vars []*ir.Inst
	for _, n := range nodes {
		for i, a := range n.Args {
			users[a] = append(users[a], use{user: n, slot: i})
		}
		if n.IsVar() {
			vars = append(vars, n)
		}
	}

	color := make(map[*ir.Inst]uint64, len(nodes))
	for _, n := range nodes {
		switch {
		case n.IsVar():
			c := mix(seedVar, uint64(n.Width))
			if n.HasRange {
				c = mix(mix(mix(c, 1), n.Lo.Uint64()), n.Hi.Uint64())
			}
			color[n] = c
		case n.IsConst():
			color[n] = mix(mix(seedConst, uint64(n.Width)), n.Val.Uint64())
		}
	}

	// down recomputes interior colors bottom-up from the current leaf
	// colors, sorting commutative child colors.
	down := func() {
		for _, n := range nodes {
			if n.IsVar() || n.IsConst() {
				continue
			}
			h := mix(mix(mix(seedOp, uint64(n.Op)), uint64(n.Width)), uint64(n.Flags))
			if n.Op.IsCommutative() {
				c0, c1 := color[n.Args[0]], color[n.Args[1]]
				if c1 < c0 {
					c0, c1 = c1, c0
				}
				h = mix(mix(h, c0), c1)
			} else {
				for _, a := range n.Args {
					h = mix(h, color[a])
				}
			}
			color[n] = h
		}
	}
	down()

	// refine updates variable colors from their use contexts until the
	// partition of variables into color classes stops changing. Each
	// round either splits a class or stabilizes, so len(vars)+1 rounds
	// always suffice.
	refine := func() {
		prev := varPartition(vars, color)
		for iter := 0; iter <= len(vars); iter++ {
			next := make([]uint64, len(vars))
			for i, v := range vars {
				sigs := make([]uint64, 0, len(users[v]))
				for _, u := range users[v] {
					slot := uint64(u.slot)
					if u.user.Op.IsCommutative() {
						slot = ^uint64(0) // both slots are the same role
					}
					sigs = append(sigs, mix(mix(seedUse, color[u.user]), slot))
				}
				sort.Slice(sigs, func(a, b int) bool { return sigs[a] < sigs[b] })
				h := color[v]
				for _, s := range sigs {
					h = mix(h, s)
				}
				next[i] = h
			}
			for i, v := range vars {
				color[v] = next[i]
			}
			down()
			part := varPartition(vars, color)
			if samePartition(prev, part) {
				return
			}
			prev = part
		}
	}
	if len(vars) > 1 {
		refine()
		// Individualization: a color class that refinement cannot split
		// holds variables in interchangeable positions (in these DAGs,
		// automorphic ones — e.g. the two inputs of add(x,y) when x and y
		// have no distinguishing uses). Left tied, each commutative node
		// would break the tie by its own original operand order, which
		// varies between alpha-variants. Force one member apart and
		// re-refine until every class is a singleton: for automorphic
		// ties the choice of member is irrelevant (any choice yields the
		// same canonical text), and a theoretical WL-undetected non-
		// automorphic tie can only split equivalent expressions into two
		// cache groups, never merge distinct ones — the Key is the full
		// rebuilt text.
		for {
			classes := make(map[uint64][]*ir.Inst, len(vars))
			for _, v := range vars {
				classes[color[v]] = append(classes[color[v]], v)
			}
			var tied *ir.Inst
			var tiedColor uint64
			for c, members := range classes {
				if len(members) > 1 && (tied == nil || c < tiedColor) {
					tied, tiedColor = members[0], c
				}
			}
			if tied == nil {
				break
			}
			color[tied] = mix(tiedColor, uint64(len(vars)))
			down()
			refine()
		}
	}

	// Rebuild in normalized order, alpha-renaming inputs by first
	// occurrence. The fresh builder hash-conses, so operand-order twins
	// inside the DAG (add(x,y) and add(y,x)) collapse to one node.
	cn := &Canon{
		toCanon: make(map[string]string, len(vars)),
		toOrig:  make(map[string]string, len(vars)),
	}
	b := ir.NewBuilder()
	memo := make(map[*ir.Inst]*ir.Inst, len(nodes))
	var build func(n *ir.Inst) *ir.Inst
	build = func(n *ir.Inst) *ir.Inst {
		if m, ok := memo[n]; ok {
			return m
		}
		var m *ir.Inst
		switch {
		case n.IsVar():
			name := fmt.Sprintf("x%d", len(cn.toCanon))
			cn.toCanon[n.Name] = name
			cn.toOrig[name] = n.Name
			if n.HasRange {
				m = b.VarRange(name, n.Width, n.Lo, n.Hi)
			} else {
				m = b.Var(name, n.Width)
			}
		case n.IsConst():
			m = b.Const(n.Val)
		case n.Op.IsCast():
			m = b.BuildCast(n.Op, n.Width, build(n.Args[0]))
		default:
			args := append([]*ir.Inst(nil), n.Args...)
			if n.Op.IsCommutative() && color[args[1]] < color[args[0]] {
				args[0], args[1] = args[1], args[0]
			}
			built := make([]*ir.Inst, len(args))
			for i, a := range args {
				built[i] = build(a)
			}
			m = b.Build(n.Op, n.Flags, built...)
		}
		memo[n] = m
		return m
	}
	cn.F = b.Function(build(f.Root))
	cn.Key = cn.F.String()
	cn.Hash = HashKey(cn.Key)
	return cn
}

// HashKey digests a canonical key with FNV-64a.
func HashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// varPartition maps each variable to the index of the first variable
// sharing its color, giving a name-free description of the color classes.
func varPartition(vars []*ir.Inst, color map[*ir.Inst]uint64) []int {
	first := make(map[uint64]int, len(vars))
	out := make([]int, len(vars))
	for i, v := range vars {
		c := color[v]
		if j, ok := first[c]; ok {
			out[i] = j
		} else {
			first[c] = i
			out[i] = i
		}
	}
	return out
}

func samePartition(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
