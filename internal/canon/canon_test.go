package canon

import (
	"fmt"
	"math/rand"
	"testing"

	"dfcheck/internal/harvest"
	"dfcheck/internal/ir"
)

func mustCanon(t *testing.T, src string) *Canon {
	t.Helper()
	return Canonicalize(ir.MustParse(src))
}

func requireSameKey(t *testing.T, a, b string) {
	t.Helper()
	ca, cb := mustCanon(t, a), mustCanon(t, b)
	if ca.Key != cb.Key {
		t.Errorf("keys differ:\n%q\n  -> %q\n%q\n  -> %q", a, ca.Key, b, cb.Key)
	}
	if ca.Hash != cb.Hash {
		t.Errorf("hashes differ: %#x vs %#x", ca.Hash, cb.Hash)
	}
}

func requireDifferentKey(t *testing.T, a, b string) {
	t.Helper()
	ca, cb := mustCanon(t, a), mustCanon(t, b)
	if ca.Key == cb.Key {
		t.Errorf("keys equal (%q) for:\n%q\n%q", ca.Key, a, b)
	}
}

func TestCommutativeSwapInvariance(t *testing.T) {
	cases := [][2]string{
		{
			"%x:i8 = var\n%y:i8 = var\n%0:i8 = add %x, %y\ninfer %0",
			"%x:i8 = var\n%y:i8 = var\n%0:i8 = add %y, %x\ninfer %0",
		},
		{
			"%x:i8 = var\n%0:i8 = mul 10:i8, %x\ninfer %0",
			"%x:i8 = var\n%0:i8 = mul %x, 10:i8\ninfer %0",
		},
		{
			"%x:i8 = var\n%y:i8 = var\n%0:i1 = eq %x, %y\ninfer %0",
			"%x:i8 = var\n%y:i8 = var\n%0:i1 = eq %y, %x\ninfer %0",
		},
		{
			"%x:i8 = var\n%y:i8 = var\n%0:i8 = umax %x, %y\ninfer %0",
			"%x:i8 = var\n%y:i8 = var\n%0:i8 = umax %y, %x\ninfer %0",
		},
		{
			// Nested swaps at both levels.
			"%a:i8 = var\n%b:i8 = var\n%c:i8 = var\n%0:i8 = and %a, %b\n%1:i8 = or %0, %c\ninfer %1",
			"%a:i8 = var\n%b:i8 = var\n%c:i8 = var\n%0:i8 = and %b, %a\n%1:i8 = or %c, %0\ninfer %1",
		},
	}
	for i, c := range cases {
		t.Run(fmt.Sprint(i), func(t *testing.T) { requireSameKey(t, c[0], c[1]) })
	}
}

func TestVariableRenameInvariance(t *testing.T) {
	requireSameKey(t,
		"%x:i8 = var\n%y:i8 = var\n%0:i8 = sub %x, %y\ninfer %0",
		"%p:i8 = var\n%q:i8 = var\n%0:i8 = sub %p, %q\ninfer %0")
	requireSameKey(t,
		"%x:i8 = var (range=[0,5))\n%0:i8 = add 1:i8, %x\ninfer %0",
		"%zzz:i8 = var (range=[0,5))\n%0:i8 = add 1:i8, %zzz\ninfer %0")
}

// The adversarial case: the add's operands are interchangeable on their
// own, but the sub's use sites distinguish x from y, so the swapped add
// must still land on the same canonical form.
func TestSwapUnderDistinguishingSibling(t *testing.T) {
	requireSameKey(t,
		"%x:i8 = var\n%y:i8 = var\n%0:i8 = add %x, %y\n%1:i8 = sub %x, %y\n%2:i8 = xor %0, %1\ninfer %2",
		"%x:i8 = var\n%y:i8 = var\n%0:i8 = add %y, %x\n%1:i8 = sub %x, %y\n%2:i8 = xor %0, %1\ninfer %2")
	// And the renamed+swapped combination.
	requireSameKey(t,
		"%x:i8 = var\n%y:i8 = var\n%0:i8 = add %x, %y\n%1:i8 = sub %x, %y\n%2:i8 = xor %0, %1\ninfer %2",
		"%q:i8 = var\n%p:i8 = var\n%0:i8 = add %p, %q\n%1:i8 = sub %q, %p\n%2:i8 = xor %1, %0\ninfer %2")
}

func TestStructuralDifferencesDistinguished(t *testing.T) {
	// Different op.
	requireDifferentKey(t,
		"%x:i8 = var\n%y:i8 = var\n%0:i8 = add %x, %y\ninfer %0",
		"%x:i8 = var\n%y:i8 = var\n%0:i8 = sub %x, %y\ninfer %0")
	// Different flags.
	requireDifferentKey(t,
		"%x:i8 = var\n%0:i8 = add %x, 1:i8\ninfer %0",
		"%x:i8 = var\n%0:i8 = addnsw %x, 1:i8\ninfer %0")
	// Different width.
	requireDifferentKey(t,
		"%x:i8 = var\n%0:i8 = add %x, 1:i8\ninfer %0",
		"%x:i16 = var\n%0:i16 = add %x, 1:i16\ninfer %0")
	// Different constant.
	requireDifferentKey(t,
		"%x:i8 = var\n%0:i8 = add %x, 1:i8\ninfer %0",
		"%x:i8 = var\n%0:i8 = add %x, 2:i8\ninfer %0")
	// Range metadata present vs absent, and different ranges.
	requireDifferentKey(t,
		"%x:i8 = var\ninfer %x",
		"%x:i8 = var (range=[0,5))\ninfer %x")
	requireDifferentKey(t,
		"%x:i8 = var (range=[0,5))\ninfer %x",
		"%x:i8 = var (range=[0,6))\ninfer %x")
	// Non-commutative operand order matters. (Note xor(sub(x,y),x) vs
	// xor(sub(y,x),x): no renaming maps one to the other.)
	requireDifferentKey(t,
		"%x:i8 = var\n%y:i8 = var\n%0:i8 = sub %x, %y\n%1:i8 = xor %0, %x\ninfer %1",
		"%x:i8 = var\n%y:i8 = var\n%0:i8 = sub %y, %x\n%1:i8 = xor %0, %x\ninfer %1")
}

func TestVarNameMappingBijective(t *testing.T) {
	cn := mustCanon(t, "%b:i8 = var\n%a:i8 = var\n%0:i8 = sub %b, %a\ninfer %0")
	if len(cn.F.Vars) != 2 {
		t.Fatalf("canonical function has %d vars, want 2", len(cn.F.Vars))
	}
	for _, v := range cn.F.Vars {
		orig := cn.OrigName(v.Name)
		if cn.CanonName(orig) != v.Name {
			t.Errorf("round trip %q -> %q -> %q", v.Name, orig, cn.CanonName(orig))
		}
	}
	if cn.CanonName("nosuch") != "nosuch" || cn.OrigName("nosuch") != "nosuch" {
		t.Error("unknown names should map to themselves")
	}
}

func TestCanonicalizeIdempotent(t *testing.T) {
	srcs := []string{
		"%x:i8 = var\n%y:i8 = var\n%0:i8 = add %y, %x\n%1:i8 = sub %x, %y\n%2:i8 = xor %0, %1\ninfer %2",
		"%x:i4 = var\n%y:i8 = var\n%0:i8 = zext %x\n%1:i8 = lshr %0, %y\ninfer %1",
	}
	for _, src := range srcs {
		cn := mustCanon(t, src)
		again := Canonicalize(cn.F)
		if again.Key != cn.Key {
			t.Errorf("not idempotent:\n%q\n%q", cn.Key, again.Key)
		}
	}
}

func TestCanonicalFunctionsVerify(t *testing.T) {
	for _, fr := range harvest.PaperFragments {
		cn := Canonicalize(fr.TestF())
		if err := ir.Verify(cn.F); err != nil {
			t.Errorf("%s: canonical form fails Verify: %v", fr.Name, err)
		}
	}
}

// generated builds a deterministic pile of DAGs covering the whole op mix.
func generated(n int) []harvest.Expr {
	return harvest.Generate(harvest.Config{
		Seed:     7,
		NumExprs: n,
		MaxInsts: 10,
		Widths:   []harvest.WidthWeight{{Width: 8, Weight: 3}, {Width: 16, Weight: 1}, {Width: 4, Weight: 1}},
	})
}

// Property: the canonical key is invariant under ShuffledCopy (variable
// renaming plus random commutative swaps) across 1k generated DAGs.
func TestShuffleInvarianceProperty(t *testing.T) {
	exprs := generated(1000)
	rng := rand.New(rand.NewSource(99))
	for _, e := range exprs {
		want := Canonicalize(e.F).Key
		for trial := 0; trial < 3; trial++ {
			got := Canonicalize(harvest.ShuffledCopy(e.F, rng)).Key
			if got != want {
				t.Fatalf("%s trial %d: shuffled copy canonicalizes differently:\n%s\nwant %q\ngot  %q",
					e.Name, trial, e.F, want, got)
			}
		}
	}
}

// Property: distinct canonical keys never collide in the 64-bit hash
// across the paper fragments, the soundness triggers, and 1k DAGs.
func TestHashCollisionFree(t *testing.T) {
	byHash := make(map[uint64]string)
	check := func(name string, f *ir.Function) {
		cn := Canonicalize(f)
		if prev, ok := byHash[cn.Hash]; ok && prev != cn.Key {
			t.Fatalf("%s: hash %#x collides:\n%q\n%q", name, cn.Hash, prev, cn.Key)
		}
		byHash[cn.Hash] = cn.Key
	}
	for _, fr := range harvest.PaperFragments {
		check("paper-"+fr.Name, fr.TestF())
	}
	for _, tr := range harvest.SoundnessTriggers {
		check("trigger-"+tr.Name, ir.MustParse(tr.Source))
	}
	for _, e := range generated(1000) {
		check(e.Name, e.F)
	}
	if len(byHash) < 500 {
		t.Fatalf("only %d distinct canonical forms — generator or canonicalizer is collapsing too much", len(byHash))
	}
}

func BenchmarkCanonHash(b *testing.B) {
	exprs := generated(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Canonicalize(exprs[i%len(exprs)].F)
	}
}
