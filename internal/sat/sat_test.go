package sat

import (
	"math/rand"
	"testing"
)

// refSolve is a brute-force reference: tries all assignments.
func refSolve(numVars int, clauses [][]Lit, assumptions []Lit) bool {
	if numVars > 24 {
		panic("refSolve: too many variables")
	}
	for m := uint64(0); m < 1<<numVars; m++ {
		val := func(l Lit) bool {
			bit := m>>uint(l.Var())&1 == 1
			if l.IsNeg() {
				return !bit
			}
			return bit
		}
		ok := true
		for _, a := range assumptions {
			if !val(a) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				if val(l) {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func newWithVars(n int) (*Solver, []Var) {
	s := New()
	vars := make([]Var, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	return s, vars
}

func TestLitEncoding(t *testing.T) {
	v := Var(3)
	if PosLit(v).Var() != v || NegLit(v).Var() != v {
		t.Error("Var() roundtrip wrong")
	}
	if PosLit(v).IsNeg() || !NegLit(v).IsNeg() {
		t.Error("IsNeg wrong")
	}
	if PosLit(v).Not() != NegLit(v) || NegLit(v).Not() != PosLit(v) {
		t.Error("Not wrong")
	}
	if PosLit(v).String() != "x3" || NegLit(v).String() != "~x3" {
		t.Error("String wrong")
	}
}

func TestTrivial(t *testing.T) {
	s, vs := newWithVars(1)
	s.AddClause(PosLit(vs[0]))
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v", got)
	}
	if !s.Value(vs[0]) {
		t.Error("model wrong")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s, vs := newWithVars(1)
	s.AddClause(PosLit(vs[0]))
	if !s.AddClause(NegLit(vs[0])) {
		// AddClause may already detect the conflict.
		if got := s.Solve(); got != Unsat {
			t.Fatalf("Solve = %v, want unsat", got)
		}
		return
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want unsat", got)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s, _ := newWithVars(1)
	if s.AddClause() {
		t.Error("empty clause accepted")
	}
	if got := s.Solve(); got != Unsat {
		t.Errorf("Solve = %v", got)
	}
}

func TestUnitPropagationChain(t *testing.T) {
	// x0 and a chain x_i -> x_{i+1}.
	s, vs := newWithVars(20)
	s.AddClause(PosLit(vs[0]))
	for i := 0; i < 19; i++ {
		s.AddClause(NegLit(vs[i]), PosLit(vs[i+1]))
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v", got)
	}
	for i := range vs {
		if !s.Value(vs[i]) {
			t.Fatalf("x%d should be true", i)
		}
	}
	if s.Decisions != 0 {
		t.Errorf("chain needed %d decisions, want 0", s.Decisions)
	}
}

func TestXorChain(t *testing.T) {
	// XOR constraints force search; parity makes it UNSAT.
	// x0 ^ x1 = 1, x1 ^ x2 = 1, x2 ^ x0 = 1 is unsatisfiable (odd cycle).
	s, vs := newWithVars(3)
	addXor := func(a, b Var) {
		s.AddClause(PosLit(a), PosLit(b))
		s.AddClause(NegLit(a), NegLit(b))
	}
	addXor(vs[0], vs[1])
	addXor(vs[1], vs[2])
	addXor(vs[2], vs[0])
	if got := s.Solve(); got != Unsat {
		t.Fatalf("odd xor cycle = %v, want unsat", got)
	}
}

// pigeonhole n+1 pigeons, n holes: classic hard UNSAT family (the
// encoding lives in abort_test.go, which also uses it to keep a solve
// busy past a deadline).
func pigeonhole(t *testing.T, n int) {
	t.Helper()
	s := New()
	addPigeonhole(s, n+1, n)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("PHP(%d) = %v, want unsat", n, got)
	}
}

func TestPigeonhole(t *testing.T) {
	for n := 2; n <= 7; n++ {
		pigeonhole(t, n)
	}
}

func TestAssumptions(t *testing.T) {
	s, vs := newWithVars(3)
	// (x0 | x1) & (~x0 | x2)
	s.AddClause(PosLit(vs[0]), PosLit(vs[1]))
	s.AddClause(NegLit(vs[0]), PosLit(vs[2]))
	if got := s.Solve(PosLit(vs[0]), NegLit(vs[2])); got != Unsat {
		t.Errorf("assumptions x0,~x2 = %v, want unsat", got)
	}
	// The solver is reusable after an assumption-unsat.
	if got := s.Solve(PosLit(vs[0])); got != Sat {
		t.Errorf("assumption x0 = %v, want sat", got)
	}
	if !s.Value(vs[0]) || !s.Value(vs[2]) {
		t.Error("model under assumptions wrong")
	}
	if got := s.Solve(NegLit(vs[0]), NegLit(vs[1])); got != Unsat {
		t.Errorf("assumptions ~x0,~x1 = %v, want unsat", got)
	}
	if got := s.Solve(); got != Sat {
		t.Errorf("no assumptions = %v, want sat", got)
	}
}

func TestContradictoryAssumptions(t *testing.T) {
	s, vs := newWithVars(2)
	s.AddClause(PosLit(vs[0]), PosLit(vs[1]))
	if got := s.Solve(PosLit(vs[0]), NegLit(vs[0])); got != Unsat {
		t.Errorf("contradictory assumptions = %v, want unsat", got)
	}
}

func TestModelValidRandom3SAT(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 5 + rng.Intn(13)
		numClauses := 2 + rng.Intn(5*n)
		clauses := make([][]Lit, numClauses)
		for i := range clauses {
			c := make([]Lit, 3)
			for j := range c {
				v := Var(rng.Intn(n))
				if rng.Intn(2) == 0 {
					c[j] = PosLit(v)
				} else {
					c[j] = NegLit(v)
				}
			}
			clauses[i] = c
		}
		s := New()
		for i := 0; i < n; i++ {
			s.NewVar()
		}
		ok := true
		for _, c := range clauses {
			if !s.AddClause(c...) {
				ok = false
				break
			}
		}
		want := refSolve(n, clauses, nil)
		if !ok {
			if want {
				t.Fatalf("trial %d: AddClause says unsat, reference says sat", trial)
			}
			continue
		}
		got := s.Solve()
		if (got == Sat) != want {
			t.Fatalf("trial %d: Solve = %v, reference = %v", trial, got, want)
		}
		if got == Sat {
			// The model must satisfy every clause.
			for _, c := range clauses {
				sat := false
				for _, l := range c {
					v := s.Value(l.Var())
					if (v && !l.IsNeg()) || (!v && l.IsNeg()) {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("trial %d: model does not satisfy %v", trial, c)
				}
			}
		}
	}
}

func TestRandomWithAssumptions(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(8)
		clauses := make([][]Lit, 3*n)
		for i := range clauses {
			c := make([]Lit, 1+rng.Intn(3))
			for j := range c {
				v := Var(rng.Intn(n))
				if rng.Intn(2) == 0 {
					c[j] = PosLit(v)
				} else {
					c[j] = NegLit(v)
				}
			}
			clauses[i] = c
		}
		s := New()
		for i := 0; i < n; i++ {
			s.NewVar()
		}
		ok := true
		for _, c := range clauses {
			if !s.AddClause(c...) {
				ok = false
				break
			}
		}
		// Try three different assumption sets against the reference.
		for k := 0; k < 3; k++ {
			var asm []Lit
			seen := map[Var]bool{}
			for j := 0; j < rng.Intn(3); j++ {
				v := Var(rng.Intn(n))
				if seen[v] {
					continue
				}
				seen[v] = true
				if rng.Intn(2) == 0 {
					asm = append(asm, PosLit(v))
				} else {
					asm = append(asm, NegLit(v))
				}
			}
			want := refSolve(n, clauses, asm)
			var got Status
			if !ok {
				got = Unsat
			} else {
				got = s.Solve(asm...)
			}
			if (got == Sat) != want {
				t.Fatalf("trial %d asm %v: Solve = %v, reference = %v", trial, asm, got, want)
			}
		}
	}
}

func TestConflictBudget(t *testing.T) {
	s := New()
	// A hard instance: PHP(8) without enough budget.
	n := 8
	vars := make([][]Var, n+1)
	for p := range vars {
		vars[p] = make([]Var, n)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		lits := make([]Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = PosLit(vars[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(NegLit(vars[p1][h]), NegLit(vars[p2][h]))
			}
		}
	}
	s.ConflictBudget = 50
	if got := s.Solve(); got != Unknown {
		t.Errorf("budgeted PHP(8) = %v, want unknown", got)
	}
	if s.Conflicts < 50 {
		t.Errorf("conflicts = %d, want >= 50", s.Conflicts)
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s, vs := newWithVars(2)
	if !s.AddClause(PosLit(vs[0]), NegLit(vs[0])) {
		t.Error("tautology rejected")
	}
	if !s.AddClause(PosLit(vs[1]), PosLit(vs[1]), PosLit(vs[1])) {
		t.Error("duplicate literals rejected")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v", got)
	}
	if !s.Value(vs[1]) {
		t.Error("deduplicated unit not propagated")
	}
}

func TestStatsPopulated(t *testing.T) {
	s, _ := newWithVars(0)
	_ = s
	s2 := New()
	vs := make([]Var, 30)
	for i := range vs {
		vs[i] = s2.NewVar()
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 120; i++ {
		a, b, c := Var(rng.Intn(30)), Var(rng.Intn(30)), Var(rng.Intn(30))
		s2.AddClause(PosLit(a), NegLit(b), PosLit(c))
		s2.AddClause(NegLit(a), PosLit(b), NegLit(c))
	}
	s2.Solve()
	if s2.Propagations == 0 {
		t.Error("no propagations recorded")
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestClauseDBReduction(t *testing.T) {
	// Force aggressive reduction and cross-check answers against the
	// reference on instances hard enough to learn many clauses.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		n := 12 + rng.Intn(8)
		var clauses [][]Lit
		for i := 0; i < 8*n; i++ {
			c := make([]Lit, 3)
			for j := range c {
				v := Var(rng.Intn(n))
				if rng.Intn(2) == 0 {
					c[j] = PosLit(v)
				} else {
					c[j] = NegLit(v)
				}
			}
			clauses = append(clauses, c)
		}
		s := New()
		s.maxLearn = 20 // reduce constantly
		for i := 0; i < n; i++ {
			s.NewVar()
		}
		ok := true
		for _, c := range clauses {
			if !s.AddClause(c...) {
				ok = false
				break
			}
		}
		want := refSolve(n, clauses, nil)
		var got Status
		if !ok {
			got = Unsat
		} else {
			got = s.Solve()
		}
		if (got == Sat) != want {
			t.Fatalf("trial %d: Solve = %v, reference = %v", trial, got, want)
		}
		if got == Sat {
			for _, c := range clauses {
				satisfied := false
				for _, l := range c {
					v := s.Value(l.Var())
					if (v && !l.IsNeg()) || (!v && l.IsNeg()) {
						satisfied = true
					}
				}
				if !satisfied {
					t.Fatalf("trial %d: model violates clause after reduction", trial)
				}
			}
		}
	}
}

func TestReductionActuallyFires(t *testing.T) {
	// PHP(7) learns far more than 30 clauses; with maxLearn 30 the DB must
	// shrink at least once and the result stay unsat.
	s := New()
	s.maxLearn = 30
	n := 7
	vars := make([][]Var, n+1)
	for p := range vars {
		vars[p] = make([]Var, n)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		lits := make([]Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = PosLit(vars[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(NegLit(vars[p1][h]), NegLit(vars[p2][h]))
			}
		}
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("PHP(7) = %v", got)
	}
	deleted := 0
	for _, d := range s.deleted {
		if d {
			deleted++
		}
	}
	if deleted == 0 {
		t.Error("no clauses were reduced despite tiny maxLearn")
	}
}
