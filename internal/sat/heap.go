package sat

// varHeap is a binary max-heap of variables ordered by activity, with an
// index map for decrease/increase-key updates (MiniSat's order heap).
type varHeap struct {
	data []Var
	pos  []int32 // pos[v] = index in data, or -1
}

func (h *varHeap) ensure(v Var) {
	for int(v) >= len(h.pos) {
		h.pos = append(h.pos, -1)
	}
}

func (h *varHeap) inHeap(v Var) bool {
	return int(v) < len(h.pos) && h.pos[v] >= 0
}

func (h *varHeap) push(v Var, act []float64) {
	h.ensure(v)
	if h.pos[v] >= 0 {
		return
	}
	h.data = append(h.data, v)
	h.pos[v] = int32(len(h.data) - 1)
	h.siftUp(int(h.pos[v]), act)
}

func (h *varHeap) pushIfAbsent(v Var, act []float64) { h.push(v, act) }

func (h *varHeap) popMax(act []float64) (Var, bool) {
	if len(h.data) == 0 {
		return 0, false
	}
	top := h.data[0]
	last := h.data[len(h.data)-1]
	h.data = h.data[:len(h.data)-1]
	h.pos[top] = -1
	if len(h.data) > 0 {
		h.data[0] = last
		h.pos[last] = 0
		h.siftDown(0, act)
	}
	return top, true
}

func (h *varHeap) update(v Var, act []float64) {
	if !h.inHeap(v) {
		return
	}
	i := int(h.pos[v])
	h.siftUp(i, act)
	h.siftDown(int(h.pos[v]), act)
}

func (h *varHeap) siftUp(i int, act []float64) {
	v := h.data[i]
	for i > 0 {
		parent := (i - 1) / 2
		if act[h.data[parent]] >= act[v] {
			break
		}
		h.data[i] = h.data[parent]
		h.pos[h.data[i]] = int32(i)
		i = parent
	}
	h.data[i] = v
	h.pos[v] = int32(i)
}

func (h *varHeap) siftDown(i int, act []float64) {
	v := h.data[i]
	n := len(h.data)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if child+1 < n && act[h.data[child+1]] > act[h.data[child]] {
			child++
		}
		if act[h.data[child]] <= act[v] {
			break
		}
		h.data[i] = h.data[child]
		h.pos[h.data[i]] = int32(i)
		i = child
	}
	h.data[i] = v
	h.pos[v] = int32(i)
}
