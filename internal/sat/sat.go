// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver in the MiniSat tradition: two-watched-literal propagation, first
// unique implication point learning, VSIDS branching with phase saving,
// and Luby restarts. Together with the bitblast package it forms the
// QF_BV decision procedure standing in for the paper's use of Z3.
//
// Budgets stand in for the paper's 30-second solver timeouts: a solve that
// exceeds its conflict or propagation budget returns Unknown, which the
// oracle reports as resource exhaustion (Table 1's fourth column).
package sat

import (
	"fmt"
	"sort"
)

// Var is a propositional variable index (0-based).
type Var int32

// Lit is a literal: variable with polarity. The encoding is 2*v for the
// positive literal and 2*v+1 for the negation.
type Lit int32

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return Lit(v << 1) }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return Lit(v<<1 | 1) }

// Not negates the literal.
func (l Lit) Not() Lit { return l ^ 1 }

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// IsNeg reports whether the literal is negated.
func (l Lit) IsNeg() bool { return l&1 == 1 }

func (l Lit) String() string {
	if l.IsNeg() {
		return fmt.Sprintf("~x%d", l.Var())
	}
	return fmt.Sprintf("x%d", l.Var())
}

// Status is a solve outcome.
type Status int8

// Solve outcomes.
const (
	Unknown Status = iota // budget exhausted
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func boolToLbool(b bool) lbool {
	if b {
		return lTrue
	}
	return lFalse
}

type clauseRef int32

const nilReason clauseRef = -1

type watcher struct {
	cref    clauseRef
	blocker Lit
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	clauses  [][]Lit // clause database (problem + learnt)
	deleted  []bool  // tombstones for reduced learnt clauses
	learnts  []clauseRef
	claAct   map[clauseRef]float64
	claInc   float64
	maxLearn int
	watches  [][]watcher
	assigns  []lbool
	phase    []bool // saved phases
	level    []int32
	reason   []clauseRef
	activity []float64
	varInc   float64
	heap     varHeap
	trail    []Lit
	trailLim []int
	qhead    int
	seen     []bool
	litSlab  []Lit // bump allocator backing problem-clause literal slices

	unsat bool   // a conflict at level 0 was derived
	model []bool // snapshot of the last satisfying assignment

	// Budgets; zero or negative means unlimited.
	ConflictBudget    int64
	PropagationBudget int64

	// Abort, when non-nil, is polled during search every AbortCheckEvery
	// propagations; a true return stops the solve with Unknown. Unlike the
	// budgets — which are checked only between restarts' conflict batches —
	// the abort poll bounds how far a single solve can overrun an external
	// deadline: at most one check interval of propagation work. The
	// callback must be cheap (it is called from the search hot loop) and
	// must keep returning true once it has fired. When Portfolio is
	// active every clone polls the same callback concurrently, so it must
	// also be safe to call from multiple goroutines.
	Abort func() bool

	// AbortCheckEvery is the abort poll interval in propagations;
	// zero or negative selects DefaultAbortCheckEvery.
	AbortCheckEvery int64

	// Portfolio, when >= 2, escalates a Solve that is still undecided
	// after PortfolioAfter conflicts to a portfolio of that many
	// perturbed solver clones racing in parallel (capped at MaxClones);
	// the first definitive answer wins and cancels the rest. See
	// portfolio.go.
	Portfolio int
	// PortfolioAfter is the conflict threshold before fan-out; zero or
	// negative selects DefaultPortfolioAfter.
	PortfolioAfter int64
	// PortfolioSeed perturbs the clones' decision randomization, for
	// reproducing a specific portfolio run.
	PortfolioSeed int64

	nextAbortCheck int64
	aborted        bool

	// Clone perturbation state (zero on a solver that is not a portfolio
	// clone): rng drives occasional random decisions at rate randFreq,
	// and restartBase scales the Luby restart sequence.
	rng         *rng
	randFreq    float64
	restartBase int64

	// Statistics.
	Conflicts    int64
	Propagations int64
	Decisions    int64
	Restarts     int64

	learned      int64 // learnt clauses attached (units included)
	addedClauses int64 // problem clauses accepted by AddClause

	// Portfolio attribution (see Stats).
	portfolioRuns int64
	unitsImported int64
	unitsExported int64
	cloneWins     [MaxClones]int64
	lastWinner    int64
}

// Stats is a point-in-time snapshot of the solver's cumulative search
// counters and problem size — the per-query internals the trace layer
// attaches to leaf spans so solver effort stays attributable (the
// Souper-style per-query cost accounting).
type Stats struct {
	Decisions    int64 `json:"decisions"`
	Conflicts    int64 `json:"conflicts"`
	Propagations int64 `json:"propagations"`
	Restarts     int64 `json:"restarts"`
	Learned      int64 `json:"learned"` // learnt clauses derived (units included)
	Vars         int64 `json:"vars"`    // variables allocated
	Clauses      int64 `json:"clauses"` // problem clauses accepted

	// Portfolio attribution: fan-outs run, learned-unit exchange volume,
	// per-clone win histogram, and the winning clone of the most recent
	// portfolio run (-1 when no portfolio has produced an answer).
	PortfolioRuns int64            `json:"portfolio_runs,omitempty"`
	UnitsImported int64            `json:"units_imported,omitempty"`
	UnitsExported int64            `json:"units_exported,omitempty"`
	CloneWins     [MaxClones]int64 `json:"clone_wins,omitempty"`
	LastWinner    int64            `json:"last_winner"`
}

// Stats snapshots the solver's counters. Cheap enough to call around
// every query.
func (s *Solver) Stats() Stats {
	return Stats{
		Decisions:     s.Decisions,
		Conflicts:     s.Conflicts,
		Propagations:  s.Propagations,
		Restarts:      s.Restarts,
		Learned:       s.learned,
		Vars:          int64(len(s.assigns)),
		Clauses:       s.addedClauses,
		PortfolioRuns: s.portfolioRuns,
		UnitsImported: s.unitsImported,
		UnitsExported: s.unitsExported,
		CloneWins:     s.cloneWins,
		LastWinner:    s.lastWinner,
	}
}

// Sub returns the counter deltas a - b, for attributing one query's work
// on a shared incremental solver (sizes subtract too: the delta's Vars and
// Clauses are what the query added). LastWinner is not a counter and
// carries a's value.
func (a Stats) Sub(b Stats) Stats {
	out := Stats{
		Decisions:     a.Decisions - b.Decisions,
		Conflicts:     a.Conflicts - b.Conflicts,
		Propagations:  a.Propagations - b.Propagations,
		Restarts:      a.Restarts - b.Restarts,
		Learned:       a.Learned - b.Learned,
		Vars:          a.Vars - b.Vars,
		Clauses:       a.Clauses - b.Clauses,
		PortfolioRuns: a.PortfolioRuns - b.PortfolioRuns,
		UnitsImported: a.UnitsImported - b.UnitsImported,
		UnitsExported: a.UnitsExported - b.UnitsExported,
		LastWinner:    a.LastWinner,
	}
	for i := range out.CloneWins {
		out.CloneWins[i] = a.CloneWins[i] - b.CloneWins[i]
	}
	return out
}

// DefaultAbortCheckEvery is the default abort poll interval. Propagation
// runs at tens of millions per second, so polling every few thousand
// keeps the callback overhead unmeasurable while bounding deadline
// overshoot to well under a millisecond of search work.
const DefaultAbortCheckEvery = 4096

// New returns an empty solver.
func New() *Solver {
	return &Solver{
		varInc:     1.0,
		claInc:     1.0,
		claAct:     make(map[clauseRef]float64),
		maxLearn:   4000,
		lastWinner: -1,
	}
}

// NewVar adds a fresh variable.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	s.assigns = append(s.assigns, lUndef)
	s.phase = append(s.phase, false)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nilReason)
	s.activity = append(s.activity, 0)
	s.watches = append(s.watches, nil, nil)
	s.seen = append(s.seen, false)
	s.heap.push(v, s.activity)
	return v
}

// NumVars returns the number of variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of problem clauses accepted by AddClause
// (after level-0 simplification; learnt clauses are not counted). It is
// the CNF-size figure the bit-blaster's Circuit.Stats reports.
func (s *Solver) NumClauses() int64 { return s.addedClauses }

func (s *Solver) litValue(l Lit) lbool {
	v := s.assigns[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.IsNeg() {
		if v == lTrue {
			return lFalse
		}
		return lTrue
	}
	return v
}

// AddClause adds a clause. Returns false if the formula became trivially
// unsatisfiable. Must be called before Solve (no incremental clause adding
// mid-search, but adding between Solve calls is fine at level 0).
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.unsat {
		return false
	}
	if len(s.trailLim) != 0 {
		panic("sat: AddClause during search")
	}
	// Simplify: drop duplicate/false literals; detect tautology and
	// satisfied clauses. The scratch buffer keeps typical clauses off the
	// heap; the survivors are copied into the slab only once attached.
	var buf [16]Lit
	out := buf[:0]
	if len(lits) > len(buf) {
		out = make([]Lit, 0, len(lits))
	}
	for _, l := range lits {
		switch s.litValue(l) {
		case lTrue:
			return true // already satisfied at level 0
		case lFalse:
			continue
		}
		dup, taut := false, false
		for _, o := range out {
			if o == l {
				dup = true
			}
			if o == l.Not() {
				taut = true
			}
		}
		if taut {
			return true
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.unsat = true
		return false
	case 1:
		if !s.enqueue(out[0], nilReason) {
			s.unsat = true
			return false
		}
		if s.propagate() != nilClauseIdx {
			s.unsat = true
			return false
		}
		s.addedClauses++
		return true
	}
	s.attachClause(s.allocLits(out))
	s.addedClauses++
	return true
}

// litSlabSize is the chunk size of the clause-literal bump allocator.
// Problem clauses are never freed individually (reduceDB only tombstones
// learnts), so carving them out of shared slabs is safe and turns the
// dominant alloc-per-clause pattern into one allocation per ~4096
// literals. In-place writes to lits[0]/lits[1] during propagation stay
// confined to each clause's own region.
const litSlabSize = 4096

func (s *Solver) allocLits(lits []Lit) []Lit {
	n := len(lits)
	if n > litSlabSize/4 {
		return append([]Lit(nil), lits...)
	}
	if cap(s.litSlab)-len(s.litSlab) < n {
		s.litSlab = make([]Lit, 0, litSlabSize)
	}
	off := len(s.litSlab)
	s.litSlab = s.litSlab[: off+n : cap(s.litSlab)]
	out := s.litSlab[off : off+n : off+n]
	copy(out, lits)
	return out
}

const nilClauseIdx = clauseRef(-1)

func (s *Solver) attachClause(lits []Lit) clauseRef {
	cref := clauseRef(len(s.clauses))
	s.clauses = append(s.clauses, lits)
	s.deleted = append(s.deleted, false)
	s.watchClause(lits[0].Not(), watcher{cref, lits[1]})
	s.watchClause(lits[1].Not(), watcher{cref, lits[0]})
	return cref
}

// watchClause appends to a watcher list, giving fresh lists a capacity of
// four up front: nearly every literal watches at least a couple of
// clauses, and the default 1→2→4 growth sequence was a fifth of all
// allocation in clause-construction-heavy workloads.
func (s *Solver) watchClause(l Lit, w watcher) {
	if ws := s.watches[l]; ws == nil {
		s.watches[l] = append(make([]watcher, 0, 4), w)
	} else {
		s.watches[l] = append(ws, w)
	}
}

func (s *Solver) attachLearnt(lits []Lit) clauseRef {
	cref := s.attachClause(lits)
	s.learnts = append(s.learnts, cref)
	s.claAct[cref] = s.claInc
	s.learned++
	return cref
}

func (s *Solver) bumpClause(cref clauseRef) {
	if _, ok := s.claAct[cref]; !ok {
		return // problem clause
	}
	s.claAct[cref] += s.claInc
	if s.claAct[cref] > 1e20 {
		for k := range s.claAct {
			s.claAct[k] *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

// reduceDB tombstones the lower-activity half of the learnt clauses. It
// runs at decision level 0, so the only reason-locked clauses are those
// backing level-0 implied units.
func (s *Solver) reduceDB() {
	if s.decisionLevel() != 0 {
		return
	}
	locked := make(map[clauseRef]bool)
	for _, l := range s.trail {
		if r := s.reason[l.Var()]; r != nilReason {
			locked[r] = true
		}
	}
	// Sort learnt refs by activity, ascending (insertion sort would be
	// quadratic; use the stdlib).
	live := s.learnts[:0]
	for _, c := range s.learnts {
		if !s.deleted[c] {
			live = append(live, c)
		}
	}
	s.learnts = live
	sort.Slice(s.learnts, func(i, j int) bool {
		return s.claAct[s.learnts[i]] < s.claAct[s.learnts[j]]
	})
	target := len(s.learnts) / 2
	removed := 0
	for _, c := range s.learnts {
		if removed >= target {
			break
		}
		if locked[c] || len(s.clauses[c]) <= 2 {
			continue
		}
		s.deleted[c] = true
		delete(s.claAct, c)
		s.clauses[c] = nil // release memory; watchers are pruned lazily
		removed++
	}
	live = s.learnts[:0]
	for _, c := range s.learnts {
		if !s.deleted[c] {
			live = append(live, c)
		}
	}
	s.learnts = live
	s.maxLearn += s.maxLearn / 10
}

func (s *Solver) enqueue(l Lit, from clauseRef) bool {
	switch s.litValue(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	s.assigns[v] = boolToLbool(!l.IsNeg())
	s.phase[v] = !l.IsNeg()
	s.level[v] = int32(len(s.trailLim))
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// propagate performs unit propagation; returns the conflicting clause or
// nilClauseIdx.
func (s *Solver) propagate() clauseRef {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Propagations++
		ws := s.watches[p]
		kept := ws[:0]
		var conflict clauseRef = nilClauseIdx
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.deleted[w.cref] {
				continue // lazily drop watchers of reduced clauses
			}
			if s.litValue(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			lits := s.clauses[w.cref]
			// Ensure the falsified literal is at position 1.
			if lits[0] == p.Not() {
				lits[0], lits[1] = lits[1], lits[0]
			}
			first := lits[0]
			if first != w.blocker && s.litValue(first) == lTrue {
				kept = append(kept, watcher{w.cref, first})
				continue
			}
			// Find a new literal to watch.
			found := false
			for k := 2; k < len(lits); k++ {
				if s.litValue(lits[k]) != lFalse {
					lits[1], lits[k] = lits[k], lits[1]
					s.watches[lits[1].Not()] = append(s.watches[lits[1].Not()], watcher{w.cref, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Unit or conflicting.
			kept = append(kept, watcher{w.cref, first})
			if s.litValue(first) == lFalse {
				conflict = w.cref
				s.qhead = len(s.trail)
				// Keep the remaining watchers.
				kept = append(kept, ws[i+1:]...)
				break
			}
			s.enqueue(first, w.cref)
		}
		s.watches[p] = kept
		if conflict != nilClauseIdx {
			return conflict
		}
	}
	return nilClauseIdx
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) newDecisionLevel() {
	s.trailLim = append(s.trailLim, len(s.trail))
}

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[lvl]; i-- {
		v := s.trail[i].Var()
		s.assigns[v] = lUndef
		s.reason[v] = nilReason
		s.heap.pushIfAbsent(v, s.activity)
	}
	s.qhead = s.trailLim[lvl]
	s.trail = s.trail[:s.trailLim[lvl]]
	s.trailLim = s.trailLim[:lvl]
}

func (s *Solver) bumpVar(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v, s.activity)
}

const varDecay = 1.0 / 0.95

// analyze performs 1UIP conflict analysis. Returns the learnt clause
// (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl clauseRef) ([]Lit, int) {
	learnt := []Lit{0} // slot 0 for the asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		s.bumpClause(confl)
		lits := s.clauses[confl]
		start := 0
		if p != -1 {
			start = 1 // skip the asserting literal slot of the reason
		}
		for _, q := range lits[start:] {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if int(s.level[v]) == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find the next literal on the trail that is marked.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		counter--
		if counter == 0 {
			learnt[0] = p.Not()
			break
		}
		confl = s.reason[v]
		if confl == nilReason {
			panic("sat: missing reason during conflict analysis")
		}
		// Reorder reason so p is first (by construction the asserting
		// literal of a reason clause is the enqueued one).
		rlits := s.clauses[confl]
		if rlits[0] != p {
			for k := 1; k < len(rlits); k++ {
				if rlits[k] == p {
					rlits[0], rlits[k] = rlits[k], rlits[0]
					break
				}
			}
		}
	}

	// Clause minimization (local self-subsumption): a literal whose
	// entire reason is already among the collected literals (or fixed at
	// level 0) is implied by the rest and can be dropped. The seen marks
	// of dropped literals stay in place during the pass — redundancy is
	// judged against the originally collected set, which is sound by
	// induction — and are cleared afterwards.
	kept := 1
	var dropped []Var
	for i := 1; i < len(learnt); i++ {
		v := learnt[i].Var()
		redundant := false
		if r := s.reason[v]; r != nilReason {
			redundant = true
			for _, q := range s.clauses[r][1:] {
				if !s.seen[q.Var()] && s.level[q.Var()] != 0 {
					redundant = false
					break
				}
			}
		}
		if !redundant {
			learnt[kept] = learnt[i]
			kept++
		} else {
			dropped = append(dropped, v)
		}
	}
	learnt = learnt[:kept]
	for _, v := range dropped {
		s.seen[v] = false
	}

	// Backtrack level: highest level among learnt[1:].
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].Var()])
	}
	for _, l := range learnt {
		s.seen[l.Var()] = false
	}
	return learnt, btLevel
}

// pickBranchLit selects the unassigned variable with highest activity,
// using its saved phase. A portfolio clone occasionally decides on a
// random variable instead (MiniSat's random_var_freq), which is what
// diversifies the clones' search trajectories.
func (s *Solver) pickBranchLit() Lit {
	if s.rng != nil && s.rng.float64() < s.randFreq {
		// A few random probes; on miss, fall through to VSIDS. The
		// variable stays in the heap — popMax skips assigned variables
		// lazily, exactly as after a backtrack re-push.
		for try := 0; try < 8; try++ {
			v := Var(s.rng.intn(len(s.assigns)))
			if s.assigns[v] == lUndef {
				s.Decisions++
				if s.phase[v] {
					return PosLit(v)
				}
				return NegLit(v)
			}
		}
	}
	for {
		v, ok := s.heap.popMax(s.activity)
		if !ok {
			return -1
		}
		if s.assigns[v] == lUndef {
			s.Decisions++
			if s.phase[v] {
				return PosLit(v)
			}
			return NegLit(v)
		}
	}
}

// luby computes the Luby restart sequence.
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i+1 == 1<<uint(k)-1 {
			return 1 << uint(k-1)
		}
		if i+1 >= 1<<uint(k) {
			continue
		}
		return luby(i - (1<<uint(k-1) - 1))
	}
}

// Solve determines satisfiability under the given assumptions. After Sat,
// Value reports the model. Unknown means a budget was exhausted or the
// Abort callback fired. With Portfolio >= 2, a query still undecided
// after PortfolioAfter conflicts fans out to a clone portfolio.
func (s *Solver) Solve(assumptions ...Lit) Status {
	if s.unsat {
		return Unsat
	}
	if s.Portfolio < 2 {
		return s.solveLoop(assumptions, 0, nil)
	}
	after := s.PortfolioAfter
	if after <= 0 {
		after = DefaultPortfolioAfter
	}
	st := s.solveLoop(assumptions, s.Conflicts+after, nil)
	if st != Unknown || s.aborted || s.budgetExceeded() {
		return st
	}
	return s.solvePortfolio(assumptions)
}

// solveLoop is the restart loop shared by the sequential path, the
// pre-portfolio probe, and portfolio clones. stopAfter, when positive,
// returns Unknown once total conflicts reach it (the fan-out threshold —
// distinct from the budgets, which make Unknown final). exch, when
// non-nil, exchanges learned level-0 unit clauses with the other
// portfolio clones at every restart.
func (s *Solver) solveLoop(assumptions []Lit, stopAfter int64, exch *unitPool) Status {
	if s.unsat {
		return Unsat
	}
	defer s.cancelUntil(0)
	s.aborted = false
	s.nextAbortCheck = s.Propagations // poll before the first batch

	base := s.restartBase
	if base == 0 {
		base = 100
	}
	var restartNum int64
	for {
		limit := s.Conflicts + base*luby(restartNum)
		if stopAfter > 0 && limit > stopAfter {
			limit = stopAfter
		}
		st := s.search(assumptions, limit)
		if st == Sat {
			s.model = s.modelSnapshot()
			return Sat
		}
		if st == Unsat {
			return Unsat
		}
		if s.aborted || s.budgetExceeded() {
			return Unknown
		}
		if stopAfter > 0 && s.Conflicts >= stopAfter {
			return Unknown
		}
		restartNum++
		s.Restarts++
		s.cancelUntil(0)
		if exch != nil && !s.exchangeUnits(exch) {
			s.unsat = true
			return Unsat
		}
		if len(s.learnts) > s.maxLearn {
			s.reduceDB()
		}
	}
}

func (s *Solver) budgetExceeded() bool {
	return (s.ConflictBudget > 0 && s.Conflicts >= s.ConflictBudget) ||
		(s.PropagationBudget > 0 && s.Propagations >= s.PropagationBudget)
}

// pollAbort invokes the Abort callback once enough propagations have
// accumulated since the last poll, reporting true when the solve must
// stop. Every search iteration runs at least one propagation, so the poll
// comes due regardless of how the search is progressing.
func (s *Solver) pollAbort() bool {
	if s.Abort == nil || s.Propagations < s.nextAbortCheck {
		return false
	}
	every := s.AbortCheckEvery
	if every <= 0 {
		every = DefaultAbortCheckEvery
	}
	s.nextAbortCheck = s.Propagations + every
	if s.Abort() {
		s.aborted = true
		return true
	}
	return false
}

// search runs CDCL until a result, a restart point, budget exhaustion, or
// an abort.
func (s *Solver) search(assumptions []Lit, conflictLimit int64) Status {
	for {
		if s.pollAbort() {
			return Unknown
		}
		confl := s.propagate()
		if confl != nilClauseIdx {
			s.Conflicts++
			if s.decisionLevel() == 0 {
				s.unsat = true
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			// Never backtrack past the assumptions: if the learnt
			// clause asserts below the assumption levels, the
			// assumptions themselves are contradictory.
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.learned++ // a learnt unit never enters the clause DB
				if !s.enqueue(learnt[0], nilReason) {
					s.unsat = true
					return Unsat
				}
			} else {
				cref := s.attachLearnt(learnt)
				s.enqueue(learnt[0], cref)
			}
			s.varInc *= varDecay
			s.claInc *= 1.0 / 0.999
			if s.Conflicts >= conflictLimit || s.budgetExceeded() {
				return Unknown
			}
			continue
		}

		// Place assumptions as pseudo-decisions.
		if s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.litValue(a) {
			case lTrue:
				s.newDecisionLevel() // already satisfied; dummy level
				continue
			case lFalse:
				return Unsat // conflicts with forced values
			}
			s.newDecisionLevel()
			s.enqueue(a, nilReason)
			continue
		}

		l := s.pickBranchLit()
		if l == -1 {
			return Sat // all variables assigned
		}
		s.newDecisionLevel()
		s.enqueue(l, nilReason)
	}
}

// Value reports the model value of v after a Sat result.
func (s *Solver) Value(v Var) bool {
	if s.model == nil {
		panic("sat: Value called without a satisfying model")
	}
	return s.model[v]
}

// modelSnapshot copies the satisfying assignment before Solve's deferred
// backtrack erases it.
func (s *Solver) modelSnapshot() []bool {
	m := make([]bool, len(s.assigns))
	for i := range s.assigns {
		m[i] = s.assigns[i] == lTrue
	}
	return m
}
