package sat

import "testing"

// The PHP(7,6) instance (addPigeonhole in abort_test.go) forces real
// search — conflicts, learning, restarts — which is what a Stats test
// needs to observe.
func TestStatsSnapshot(t *testing.T) {
	s := New()
	before := s.Stats()
	if before != (Stats{LastWinner: -1}) {
		t.Fatalf("fresh solver stats = %+v, want zero (no portfolio winner)", before)
	}
	addPigeonhole(s, 7, 6)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("PHP(7,6) = %v, want unsat", st)
	}
	after := s.Stats()
	if after.Conflicts == 0 || after.Propagations == 0 || after.Decisions == 0 {
		t.Fatalf("no search recorded: %+v", after)
	}
	if after.Learned == 0 {
		t.Fatalf("unsat CDCL run learned no clauses: %+v", after)
	}
	if after.Vars != 42 {
		t.Fatalf("Vars = %d, want 42", after.Vars)
	}
	if after.Clauses == 0 {
		t.Fatalf("no problem clauses recorded: %+v", after)
	}
	// The snapshot must agree with the exported legacy counters.
	if after.Conflicts != s.Conflicts || after.Propagations != s.Propagations ||
		after.Decisions != s.Decisions || after.Restarts != s.Restarts {
		t.Fatalf("snapshot %+v disagrees with exported counters", after)
	}

	delta := after.Sub(before)
	if delta != after {
		t.Fatalf("Sub(zero) = %+v, want %+v", delta, after)
	}
	// A second solve on the (now level-0 unsat) instance does no work.
	s.Solve()
	if d := s.Stats().Sub(after); d.Conflicts != 0 && d.Conflicts < 0 {
		t.Fatalf("negative delta: %+v", d)
	}
}

func TestStatsLearnedCountsUnits(t *testing.T) {
	// A chain a→b→…→z with a forced contradiction at the end produces
	// unit learnt clauses that never enter the clause database; Learned
	// must count them anyway.
	s := New()
	const n = 8
	vs := make([]Var, n)
	for i := range vs {
		vs[i] = s.NewVar()
	}
	for i := 0; i+1 < n; i++ {
		s.AddClause(NegLit(vs[i]), PosLit(vs[i+1]))
	}
	s.AddClause(NegLit(vs[0]), NegLit(vs[n-1]))
	if st := s.Solve(); st != Sat {
		t.Fatalf("chain = %v, want sat", st)
	}
	// The instance is satisfiable without conflicts only if the solver
	// guesses right; either way Learned must never exceed Conflicts.
	st := s.Stats()
	if st.Learned > st.Conflicts {
		t.Fatalf("Learned %d > Conflicts %d", st.Learned, st.Conflicts)
	}
}
