package sat

import (
	"sync"
	"sync/atomic"
)

// This file implements the clause-sharing portfolio: when a query is
// still undecided after PortfolioAfter conflicts, the solver forks
// Portfolio clones of itself, perturbs every clone but the first (random
// phase initialization, a small random-decision rate, jittered VSIDS
// activities, a different Luby restart base), and races them on separate
// goroutines. The first definitive answer wins; the losers are cancelled
// through the clones' shared abort callback. At every restart each clone
// publishes its newly derived level-0 unit clauses to a shared pool and
// imports the other clones' — learnt clauses are resolvents of the clause
// database alone (assumptions only ever act as decisions, never as
// reasons), so a level-0 unit holds in every clone and in the parent
// regardless of which assumptions were active when it was derived.
//
// Only the winner's counter deltas are charged to the parent, so the
// engine-level shared conflict budget keeps its meaning (the portfolio
// buys wall-clock speed with cores, not with budget).

// MaxClones caps the portfolio size (and sizes the per-clone win
// histogram in Stats).
const MaxClones = 4

// DefaultPortfolioAfter is the conflict threshold before a Solve fans
// out: most queries finish well under it, so the portfolio machinery only
// engages on the hard tail where a second search trajectory pays.
const DefaultPortfolioAfter = 4000

// rng is a tiny splitmix64 generator: portfolio perturbation needs speed
// and determinism-per-seed, not statistical perfection.
type rng struct{ state uint64 }

func newRng(seed int64) *rng {
	return &rng{state: uint64(seed)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9}
}

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// unitPool is the clause-exchange channel between clones: level-0 unit
// literals, deduplicated, with exchange-volume counters.
type unitPool struct {
	mu       sync.Mutex
	units    []Lit
	seen     map[Lit]bool
	exported int64
	imported int64
}

// exchangeUnits publishes this solver's level-0 trail literals that the
// pool has not seen and enqueues the pool's literals this solver does not
// have yet. Must be called at decision level 0. Returns false when an
// imported unit (or its propagation) contradicts the level-0 trail —
// since both sides are implied by the shared clause database, that means
// the database itself is unsatisfiable.
func (s *Solver) exchangeUnits(pool *unitPool) bool {
	pool.mu.Lock()
	for _, l := range s.trail {
		if !pool.seen[l] {
			pool.seen[l] = true
			pool.units = append(pool.units, l)
			pool.exported++
			s.unitsExported++
		}
	}
	incoming := make([]Lit, len(pool.units))
	copy(incoming, pool.units)
	pool.mu.Unlock()

	var took int64
	for _, l := range incoming {
		switch s.litValue(l) {
		case lTrue:
			continue
		case lFalse:
			return false
		}
		took++
		s.unitsImported++
		if !s.enqueue(l, nilReason) {
			return false
		}
	}
	if took > 0 {
		pool.mu.Lock()
		pool.imported += took
		pool.mu.Unlock()
	}
	return s.propagate() == nilClauseIdx
}

// clone deep-copies the solver's search state for a portfolio run. The
// solver must be at decision level 0 with propagation complete (the state
// solveLoop leaves behind). Clause slices are copied individually —
// propagation reorders a clause's first two literals in place — and the
// watcher lists are rebuilt from the first two positions, which is
// exactly the two-watched-literal invariant.
func (s *Solver) clone() *Solver {
	if len(s.trailLim) != 0 {
		panic("sat: clone above decision level 0")
	}
	c := &Solver{
		claInc:            s.claInc,
		varInc:            s.varInc,
		maxLearn:          s.maxLearn,
		ConflictBudget:    s.ConflictBudget,
		PropagationBudget: s.PropagationBudget,
		Conflicts:         s.Conflicts,
		Propagations:      s.Propagations,
		Decisions:         s.Decisions,
		Restarts:          s.Restarts,
		learned:           s.learned,
		addedClauses:      s.addedClauses,
		unsat:             s.unsat,
		qhead:             len(s.trail),
		lastWinner:        -1,
	}
	c.clauses = make([][]Lit, len(s.clauses))
	for i, lits := range s.clauses {
		if lits != nil {
			c.clauses[i] = append([]Lit(nil), lits...)
		}
	}
	c.deleted = append([]bool(nil), s.deleted...)
	c.learnts = append([]clauseRef(nil), s.learnts...)
	c.claAct = make(map[clauseRef]float64, len(s.claAct))
	for k, v := range s.claAct {
		c.claAct[k] = v
	}
	c.assigns = append([]lbool(nil), s.assigns...)
	c.phase = append([]bool(nil), s.phase...)
	c.level = append([]int32(nil), s.level...)
	c.reason = append([]clauseRef(nil), s.reason...)
	c.activity = append([]float64(nil), s.activity...)
	c.trail = append([]Lit(nil), s.trail...)
	c.seen = make([]bool, len(s.seen))
	c.watches = make([][]watcher, len(s.watches))
	for i, lits := range c.clauses {
		cref := clauseRef(i)
		if lits == nil || c.deleted[cref] {
			continue
		}
		c.watchClause(lits[0].Not(), watcher{cref, lits[1]})
		c.watchClause(lits[1].Not(), watcher{cref, lits[0]})
	}
	for v := Var(0); int(v) < len(c.assigns); v++ {
		c.heap.push(v, c.activity)
	}
	return c
}

// perturb diversifies a clone's search: fresh random phases for the
// unassigned variables, a 2% random-decision rate, a multiplicative
// jitter on the VSIDS activities (breaking popMax ties differently per
// clone), and a clone-specific Luby restart base.
func (c *Solver) perturb(seed int64) {
	c.rng = newRng(seed)
	c.randFreq = 0.02
	for v := range c.phase {
		if c.assigns[v] == lUndef {
			c.phase[v] = c.rng.next()&1 == 0
		}
	}
	for v := range c.activity {
		c.activity[v] *= 1 + 0.2*c.rng.float64()
	}
	// The heap was built against the unjittered activities; rebuild.
	c.heap = varHeap{}
	for v := Var(0); int(v) < len(c.assigns); v++ {
		c.heap.push(v, c.activity)
	}
	c.restartBase = 50 + int64(c.rng.intn(150))
}

// solvePortfolio races Portfolio perturbed clones of s on the query.
// Clone 0 continues the parent's exact trajectory, so the portfolio never
// answers later than the sequential solver would have (modulo clause
// exchange, which only adds derived facts). The parent adopts the
// winner's answer, imports the exchanged units permanently, and charges
// itself only the winner's counter deltas.
func (s *Solver) solvePortfolio(assumptions []Lit) Status {
	n := s.Portfolio
	if n > MaxClones {
		n = MaxClones
	}
	s.portfolioRuns++
	fork := s.Stats()

	pool := &unitPool{seen: make(map[Lit]bool, len(s.trail))}
	for _, l := range s.trail {
		pool.seen[l] = true // pre-seed: the shared trail is not news
	}

	var done atomic.Bool
	parentAbort := s.Abort
	abort := func() bool {
		return done.Load() || (parentAbort != nil && parentAbort())
	}

	clones := make([]*Solver, n)
	for k := range clones {
		c := s.clone()
		c.Abort = abort
		c.AbortCheckEvery = 1024 // poll tighter: cancellation latency
		if k > 0 {
			c.perturb(s.PortfolioSeed + int64(k))
		}
		clones[k] = c
	}

	results := make([]Status, n)
	var winnerIdx atomic.Int32
	winnerIdx.Store(-1)
	var wg sync.WaitGroup
	for k := range clones {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			st := clones[k].solveLoop(assumptions, 0, pool)
			results[k] = st
			if st != Unknown && winnerIdx.CompareAndSwap(-1, int32(k)) {
				done.Store(true)
			}
		}(k)
	}
	wg.Wait()

	pool.mu.Lock()
	s.unitsExported += pool.exported
	s.unitsImported += pool.imported
	pool.mu.Unlock()

	win := winnerIdx.Load()
	if win < 0 {
		// All clones exhausted a budget or the parent abort fired: charge
		// the largest clone spend (the wall-clock-equivalent work).
		var maxDelta Stats
		for _, c := range clones {
			if d := c.Stats().Sub(fork); d.Conflicts > maxDelta.Conflicts {
				maxDelta = d
			}
		}
		s.chargeDelta(maxDelta)
		s.aborted = parentAbort != nil && parentAbort()
		s.adoptUnits(pool)
		return Unknown
	}

	w := clones[win]
	s.chargeDelta(w.Stats().Sub(fork))
	s.cloneWins[win]++
	s.lastWinner = int64(win)
	s.aborted = false
	// An Unsat under assumptions is relative; only the clone's own
	// level-0-derived unsat flag transfers to the parent's database.
	s.unsat = s.unsat || w.unsat
	if results[win] == Sat {
		s.model = append([]bool(nil), w.model...)
	}
	s.adoptUnits(pool)
	return results[win]
}

// chargeDelta adds one clone's search-counter deltas to the parent.
func (s *Solver) chargeDelta(d Stats) {
	s.Conflicts += d.Conflicts
	s.Propagations += d.Propagations
	s.Decisions += d.Decisions
	s.Restarts += d.Restarts
	s.learned += d.Learned
}

// adoptUnits permanently installs the portfolio's exchanged level-0 units
// into the parent (which sits at decision level 0 after solveLoop): every
// one is implied by the clause database, so later queries inherit them
// like any other level-0 fact.
func (s *Solver) adoptUnits(pool *unitPool) {
	if s.unsat {
		return
	}
	for _, l := range pool.units {
		switch s.litValue(l) {
		case lTrue:
			continue
		case lFalse:
			s.unsat = true
			return
		}
		if !s.enqueue(l, nilReason) {
			s.unsat = true
			return
		}
	}
	if s.propagate() != nilClauseIdx {
		s.unsat = true
	}
}
