package sat

import (
	"sync/atomic"
	"testing"
)

// addParity constrains x0 ^ x1 ^ ... ^ x(n-1) = parity over fresh
// variables via the standard chain encoding, returning the variables.
// Parity chains produce long propagation-heavy searches — a good Sat/
// Unsat workload that, unlike pigeonhole, has models to find.
func addParity(s *Solver, n int, parity bool) []Var {
	vars := make([]Var, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	acc := vars[0]
	for i := 1; i < n; i++ {
		nxt := s.NewVar()
		// nxt = acc XOR vars[i]
		s.AddClause(NegLit(nxt), PosLit(acc), PosLit(vars[i]))
		s.AddClause(NegLit(nxt), NegLit(acc), NegLit(vars[i]))
		s.AddClause(PosLit(nxt), NegLit(acc), PosLit(vars[i]))
		s.AddClause(PosLit(nxt), PosLit(acc), NegLit(vars[i]))
		acc = nxt
	}
	if parity {
		s.AddClause(PosLit(acc))
	} else {
		s.AddClause(NegLit(acc))
	}
	return vars
}

// TestPortfolioMatchesSequentialUnsat races a portfolio on PHP(7,6),
// with a threshold of 1 conflict so the fan-out machinery always
// engages, and demands the sequential answer.
func TestPortfolioMatchesSequentialUnsat(t *testing.T) {
	seq := New()
	addPigeonhole(seq, 7, 6)
	if st := seq.Solve(); st != Unsat {
		t.Fatalf("sequential PHP(7,6) = %v, want unsat", st)
	}

	for clones := 2; clones <= 4; clones++ {
		p := New()
		addPigeonhole(p, 7, 6)
		p.Portfolio = clones
		p.PortfolioAfter = 1
		p.PortfolioSeed = int64(clones)
		if st := p.Solve(); st != Unsat {
			t.Fatalf("portfolio(%d) PHP(7,6) = %v, want unsat", clones, st)
		}
		st := p.Stats()
		if st.PortfolioRuns != 1 {
			t.Fatalf("portfolio(%d): runs = %d, want 1", clones, st.PortfolioRuns)
		}
		if st.LastWinner < 0 || st.LastWinner >= int64(clones) {
			t.Fatalf("portfolio(%d): winner %d out of range", clones, st.LastWinner)
		}
		var wins int64
		for _, w := range st.CloneWins {
			wins += w
		}
		if wins != 1 {
			t.Fatalf("portfolio(%d): clone wins sum to %d, want 1", clones, wins)
		}
	}
}

// TestPortfolioMatchesSequentialSat checks the satisfiable side: the
// portfolio must return Sat with a genuine model of the formula.
func TestPortfolioMatchesSequentialSat(t *testing.T) {
	p := New()
	vars := addParity(p, 40, true)
	// A small pigeonhole that is satisfiable (3 pigeons, 3 holes) for
	// extra search structure.
	addPigeonhole(p, 3, 3)
	p.Portfolio = 3
	p.PortfolioAfter = 1
	if st := p.Solve(); st != Sat {
		t.Fatalf("portfolio parity = %v, want sat", st)
	}
	par := false
	for _, v := range vars {
		par = par != p.Value(v)
	}
	if !par {
		t.Fatalf("portfolio model violates the parity constraint")
	}
}

// TestPortfolioUnderAssumptions: an Unsat under assumptions must not
// poison the solver's clause database — the same solver must still
// answer Sat when the assumptions are dropped.
func TestPortfolioUnderAssumptions(t *testing.T) {
	s := New()
	vars := addParity(s, 30, true)
	s.Portfolio = 3
	s.PortfolioAfter = 1
	// Assume all inputs false: forces parity 0, contradicting the chain.
	assumptions := make([]Lit, len(vars))
	for i, v := range vars {
		assumptions[i] = NegLit(v)
	}
	if st := s.Solve(assumptions...); st != Unsat {
		t.Fatalf("assumed-all-false parity = %v, want unsat", st)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("after relative unsat, unconstrained solve = %v, want sat", st)
	}
}

// TestPortfolioRespectsAbort: a portfolio run under a fired abort
// callback returns Unknown and reports no winner.
func TestPortfolioRespectsAbort(t *testing.T) {
	s := New()
	addPigeonhole(s, 9, 8)
	s.Portfolio = 3
	s.PortfolioAfter = 1
	s.AbortCheckEvery = 64
	// Under a portfolio the abort callback is polled concurrently by
	// every clone, so it must be thread-safe.
	var calls atomic.Int64
	s.Abort = func() bool {
		return calls.Add(1) > 4
	}
	if st := s.Solve(); st != Unknown {
		t.Fatalf("aborted portfolio = %v, want unknown", st)
	}
	if st := s.Stats(); st.LastWinner != -1 {
		t.Fatalf("aborted portfolio recorded winner %d", st.LastWinner)
	}
}

// TestCloneEquivalence: an unperturbed clone must behave exactly like
// its parent — same answer, and (being a faithful state copy) a legal
// model on the satisfiable side.
func TestCloneEquivalence(t *testing.T) {
	s := New()
	addParity(s, 25, false)
	addPigeonhole(s, 4, 4)
	// Put the solver through a bounded solve so the clone starts from a
	// mid-search state with learnt clauses and level-0 facts.
	s.ConflictBudget = 30
	_ = s.Solve()
	s.ConflictBudget = 0

	c := s.clone()
	stSeq := s.Solve()
	stClone := c.Solve()
	if stSeq != stClone {
		t.Fatalf("clone answered %v, parent %v", stClone, stSeq)
	}
}
