package sat

import (
	"testing"
	"time"
)

// addPigeonhole encodes PHP(pigeons, holes): every pigeon sits in some
// hole, no hole holds two pigeons. Unsatisfiable when pigeons > holes,
// and exponentially hard for resolution-based solvers — a reliable way to
// keep the search busy far past any test deadline.
func addPigeonhole(s *Solver, pigeons, holes int) {
	vars := make([][]Var, pigeons)
	for i := range vars {
		vars[i] = make([]Var, holes)
		for j := range vars[i] {
			vars[i][j] = s.NewVar()
		}
	}
	for i := 0; i < pigeons; i++ {
		lits := make([]Lit, holes)
		for j := 0; j < holes; j++ {
			lits[j] = PosLit(vars[i][j])
		}
		s.AddClause(lits...)
	}
	for j := 0; j < holes; j++ {
		for i := 0; i < pigeons; i++ {
			for k := i + 1; k < pigeons; k++ {
				s.AddClause(NegLit(vars[i][j]), NegLit(vars[k][j]))
			}
		}
	}
}

// TestAbortStopsInFlightSolve pins the deadline-overshoot bound: a solve
// that would run for minutes stops with Unknown within one abort check
// interval of the deadline firing.
func TestAbortStopsInFlightSolve(t *testing.T) {
	s := New()
	addPigeonhole(s, 12, 11)
	// Backstop so a broken abort fails the test instead of hanging it.
	s.PropagationBudget = 2_000_000_000

	deadline := time.Now().Add(50 * time.Millisecond)
	polls := 0
	s.Abort = func() bool {
		polls++
		return !time.Now().Before(deadline)
	}

	start := time.Now()
	st := s.Solve()
	elapsed := time.Since(start)

	if st != Unknown {
		t.Fatalf("Solve = %v, want Unknown (aborted)", st)
	}
	if polls == 0 {
		t.Fatalf("abort callback never polled")
	}
	// One check interval is DefaultAbortCheckEvery propagations — well
	// under a second of work even on a slow machine. Allow generous CI
	// slack; the pre-fix behavior was minutes.
	if elapsed > 5*time.Second {
		t.Fatalf("aborted solve took %v, want within one check interval of the 50ms deadline", elapsed)
	}
}

// TestAbortThatNeverFiresIsHarmless checks a wired-but-idle abort callback
// does not perturb results.
func TestAbortThatNeverFiresIsHarmless(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	s.AddClause(NegLit(a))
	s.Abort = func() bool { return false }
	if st := s.Solve(); st != Sat {
		t.Fatalf("Solve = %v, want Sat", st)
	}
	if !s.Value(b) {
		t.Fatalf("model: b = false, want true")
	}
}

// TestAbortCheckEveryOverride checks the poll interval is honored: a
// one-propagation interval polls on (nearly) every search iteration,
// while the default interval — wider than this instance's whole
// propagation count — polls only a handful of times.
func TestAbortCheckEveryOverride(t *testing.T) {
	solve := func(every int64) (polls, props int64) {
		s := New()
		addPigeonhole(s, 6, 5)
		s.AbortCheckEvery = every
		s.Abort = func() bool { polls++; return false }
		if st := s.Solve(); st != Unsat {
			t.Fatalf("Solve = %v, want Unsat", st)
		}
		return polls, s.Propagations
	}
	tight, props := solve(1)
	loose, _ := solve(0) // default interval, larger than props
	if tight < 10 {
		t.Fatalf("interval 1: only %d polls over %d propagations", tight, props)
	}
	if loose >= tight {
		t.Fatalf("default interval polled %d times, tight interval %d; interval not honored", loose, tight)
	}
}
