package stride

import (
	"math/bits"

	"dfcheck/internal/apint"
	"dfcheck/internal/eval"
	"dfcheck/internal/ir"
)

// Analysis is the stride abstract interpreter: a per-op transfer-function
// suite over S plus a per-instruction DAG walk. The zero value is the
// full (clean) suite — unlike tnum there is no seeded bug here; stride is
// the reference partner of the differential pair.
type Analysis struct{}

// cutPow2 canonicalizes a value known only modulo 2^k. k ≥ w means the
// value is fully determined inside the window, i.e. a singleton.
func cutPow2(w uint, r uint64, k uint) S {
	if k >= w {
		return S{W: w, R: r & limit(w)}
	}
	g := uint64(1) << k
	return Make(w, r&(g-1), g)
}

func addMod(a, b, m uint64) uint64 {
	a %= m
	b %= m
	s, c := bits.Add64(a, b, 0)
	if c != 0 || s >= m {
		s -= m
	}
	return s
}

func subMod(a, b, m uint64) uint64 {
	d := b % m
	if d != 0 {
		d = m - d
	}
	return addMod(a%m, d, m)
}

// mulMod computes a·b mod m without overflow: after reducing the factors
// the 128-bit product's high word is below m, so Div64 is safe.
func mulMod(a, b, m uint64) uint64 {
	if m == 1 {
		return 0
	}
	hi, lo := bits.Mul64(a%m, b%m)
	_, rem := bits.Div64(hi, lo, m)
	return rem
}

func constBool(v bool) S {
	if v {
		return S{W: 1, R: 1}
	}
	return S{W: 1}
}

// constSide splits a binary operand pair into a singleton side and the
// other element when exactly the commutative-identity patterns need it.
func constSide(a, b S) (uint64, S, bool) {
	switch {
	case a.IsConst():
		return a.R, b, true
	case b.IsConst():
		return b.R, a, true
	}
	return 0, S{}, false
}

// mulTz returns the number of trailing zeros of
// gcd(a.M·b.R, b.M·a.R, a.M·b.M) without computing the (possibly
// overflowing) products, or -1 when every term vanishes and the product
// is a true constant.
func mulTz(a, b S) int {
	k := -1
	upd := func(x, y uint64) {
		if x == 0 || y == 0 {
			return
		}
		if t := bits.TrailingZeros64(x) + bits.TrailingZeros64(y); k < 0 || t < k {
			k = t
		}
	}
	upd(a.M, b.R)
	upd(b.M, a.R)
	upd(a.M, b.M)
	return k
}

// shlConst maps a through a left shift by the constant c < w.
func shlConst(a S, c, w uint) S {
	if a.M == 0 {
		return S{W: w, R: (a.R << c) & limit(w)}
	}
	if a.Max() <= limit(w)>>c {
		return Make(w, a.R<<c, a.M<<c)
	}
	return cutPow2(w, a.R<<c, uint(bits.TrailingZeros64(a.M))+c)
}

// Transfer is the per-op transfer-function suite. Operand tuples that
// admit no well-defined execution produce bottom; ops where congruence
// information does not survive (bit scans, most divisions, signed
// comparisons) fall back to the always-sound top. Arithmetic stays sound
// under wraparound by cutting the modulus to its largest power-of-two
// divisor not exceeding 2^w whenever the concrete computation can exceed
// the window.
func (an Analysis) Transfer(op ir.Op, flags ir.Flags, dstW uint, args []S) S {
	for _, a := range args {
		if a.Empty {
			return Bottom(dstW)
		}
	}
	allConst := true
	for _, a := range args {
		allConst = allConst && a.IsConst()
	}
	if allConst {
		vals := make([]apint.Int, len(args))
		for i, a := range args {
			vals[i] = apint.New(a.W, a.R)
		}
		if v, ok := eval.ConstFold(op, flags, dstW, vals); ok {
			return Const(v)
		}
		return Bottom(dstW)
	}

	w := dstW
	switch op {
	case ir.OpAdd:
		a, b := args[0], args[1]
		g := gcd(a.M, b.M)
		if s, c := bits.Add64(a.Max(), b.Max(), 0); c != 0 || s > limit(w) {
			return cutPow2(w, a.R+b.R, uint(bits.TrailingZeros64(g)))
		}
		return Make(w, addMod(a.R, b.R, g), g)

	case ir.OpSub:
		a, b := args[0], args[1]
		g := gcd(a.M, b.M)
		if a.Min() < b.Max() {
			return cutPow2(w, a.R-b.R, uint(bits.TrailingZeros64(g)))
		}
		return Make(w, subMod(a.R, b.R, g), g)

	case ir.OpMul:
		a, b := args[0], args[1]
		if hi, lo := bits.Mul64(a.Max(), b.Max()); hi != 0 || lo > limit(w) {
			k := mulTz(a, b)
			if k < 0 {
				return S{W: w, R: (a.R * b.R) & limit(w)}
			}
			return cutPow2(w, a.R*b.R, uint(k))
		}
		// No wrap anywhere, so every gcd term fits in 64 bits.
		g := gcd(gcd(a.M*b.R, b.M*a.R), a.M*b.M)
		if g == 0 {
			return S{W: w, R: a.R * b.R}
		}
		return Make(w, mulMod(a.R, b.R, g), g)

	case ir.OpShl:
		a, s := args[0], args[1]
		out := Bottom(w)
		for c := uint(0); c < w; c++ {
			if s.Contains(apint.New(s.W, uint64(c))) {
				out = out.Join(shlConst(a, c, w))
			}
		}
		return out

	case ir.OpLShr, ir.OpAShr:
		// Only a zero shift preserves congruences; amounts at or above
		// the width are poison and excluded.
		s := args[1]
		for c := uint(1); c < w; c++ {
			if s.Contains(apint.New(s.W, uint64(c))) {
				return Top(w)
			}
		}
		if s.Contains(apint.New(s.W, 0)) {
			return args[0]
		}
		return Bottom(w)

	case ir.OpRotL, ir.OpRotR:
		// Rotation amounts wrap modulo the width; when every feasible
		// amount is a multiple of the width the rotation is the identity.
		s := args[1]
		if wv := uint64(w); s.R%wv == 0 && s.M%wv == 0 {
			return args[0]
		}
		return Top(w)

	case ir.OpZExt:
		return Make(dstW, args[0].R, args[0].M)
	case ir.OpSExt:
		// Sign extension adds a multiple of 2^srcW, so the congruence
		// survives modulo gcd(M, 2^srcW).
		a := args[0]
		k := uint(bits.TrailingZeros64(a.M))
		if k > a.W {
			k = a.W
		}
		return cutPow2(dstW, a.R, k)
	case ir.OpTrunc:
		a := args[0]
		return cutPow2(dstW, a.R, uint(bits.TrailingZeros64(a.M)))

	case ir.OpSelect:
		cond, tv, fv := args[0], args[1], args[2]
		if cond.IsConst() {
			if cond.R == 1 {
				return tv
			}
			return fv
		}
		return tv.Join(fv)

	case ir.OpEq, ir.OpNe:
		if args[0].Meet(args[1]).Empty {
			return constBool(op == ir.OpNe)
		}
		return Top(1)
	case ir.OpULT:
		switch {
		case args[0].Max() < args[1].Min():
			return constBool(true)
		case args[0].Min() >= args[1].Max():
			return constBool(false)
		}
		return Top(1)
	case ir.OpULE:
		switch {
		case args[0].Max() <= args[1].Min():
			return constBool(true)
		case args[0].Min() > args[1].Max():
			return constBool(false)
		}
		return Top(1)

	case ir.OpUAddO:
		ow := args[0].W
		if s, c := bits.Add64(args[0].Max(), args[1].Max(), 0); c == 0 && s <= limit(ow) {
			return constBool(false)
		}
		if s, c := bits.Add64(args[0].Min(), args[1].Min(), 0); c != 0 || s > limit(ow) {
			return constBool(true)
		}
		return Top(1)
	case ir.OpUSubO:
		switch {
		case args[0].Min() >= args[1].Max():
			return constBool(false)
		case args[0].Max() < args[1].Min():
			return constBool(true)
		}
		return Top(1)
	case ir.OpUMulO:
		ow := args[0].W
		if hi, lo := bits.Mul64(args[0].Max(), args[1].Max()); hi == 0 && lo <= limit(ow) {
			return constBool(false)
		}
		if hi, lo := bits.Mul64(args[0].Min(), args[1].Min()); hi != 0 || lo > limit(ow) {
			return constBool(true)
		}
		return Top(1)

	case ir.OpUDiv, ir.OpSDiv, ir.OpSRem:
		if args[1].IsConst() && args[1].R == 0 {
			return Bottom(w) // the divisor is the constant 0: pure UB
		}
		return Top(w)
	case ir.OpURem:
		a, b := args[0], args[1]
		if b.IsConst() && b.R == 0 {
			return Bottom(w)
		}
		// x mod d drops multiples of d, and every feasible divisor is a
		// multiple of gcd(b.R, b.M), so the residue survives modulo
		// gcd(a.M, b.M, b.R). No wrap: remainders stay inside the window.
		g := gcd(gcd(a.M, b.M), b.R)
		return Make(w, a.R%g, g)

	case ir.OpAnd:
		if c, o, ok := constSide(args[0], args[1]); ok {
			switch {
			case c == limit(w):
				return o
			case c == 0:
				return S{W: w}
			case (c+1)&c == 0:
				// A low mask of k bits is reduction modulo 2^k.
				k := uint(bits.TrailingZeros64(c + 1))
				mk := uint(bits.TrailingZeros64(o.M))
				if mk > k {
					mk = k
				}
				return cutPow2(w, o.R, mk)
			}
		}
		return Top(w)
	case ir.OpOr:
		if c, o, ok := constSide(args[0], args[1]); ok {
			switch {
			case c == 0:
				return o
			case c == limit(w):
				return S{W: w, R: limit(w)}
			}
		}
		return Top(w)
	case ir.OpXor:
		if c, o, ok := constSide(args[0], args[1]); ok {
			switch {
			case c == 0:
				return o
			case c == limit(w):
				// Bit complement is 2^w-1 - x: an exact reflection of the
				// progression.
				return Make(w, (limit(w)-o.R)%o.M, o.M)
			}
		}
		return Top(w)

	case ir.OpAbs:
		// abs(x) is x or its two's-complement negation; negation modulo
		// 2^w preserves the congruence modulo gcd(M, 2^w).
		a := args[0]
		neg := cutPow2(w, -a.R, uint(bits.TrailingZeros64(a.M)))
		return a.Join(neg)

	case ir.OpUMin, ir.OpUMax, ir.OpSMin, ir.OpSMax:
		return args[0].Join(args[1])
	}
	return Top(dstW)
}

// Analyze abstract-interprets f, returning the stride element computed
// for every instruction. Variables seed from their range metadata when it
// pins a single value, otherwise from top.
func (an Analysis) Analyze(f *ir.Function) map[*ir.Inst]S {
	out := make(map[*ir.Inst]S)
	for _, n := range f.Insts() {
		switch {
		case n.IsConst():
			out[n] = Const(n.Val)
		case n.IsVar():
			if n.HasRange && n.Lo.ULT(n.Hi) && n.Hi.Sub(n.Lo).IsOne() {
				out[n] = Const(n.Lo)
			} else {
				out[n] = Top(n.Width)
			}
		default:
			args := make([]S, len(n.Args))
			for i, a := range n.Args {
				args[i] = out[a]
			}
			out[n] = an.Transfer(n.Op, n.Flags, n.Width, args)
		}
	}
	return out
}

// Root returns the fact Analyze computes for f's root.
func (an Analysis) Root(f *ir.Function) S { return an.Analyze(f)[f.Root] }
